// Adaptive decay intervals (paper Sec. 5.4): run gated-Vss with a fixed
// interval, with the runtime feedback controller, and with the oracle
// best interval, and show how much of the oracle's benefit feedback
// recovers on a benchmark whose best interval is far from the default.
//
// Usage: ./examples/adaptive_decay [benchmark]   (default: gzip — its best
// gated interval is near the top of the sweep range, so a fixed 4k
// interval costs it dearly)
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/report_json.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = harness::parse_report_cli(argc, argv);
  const char* bench = argc > 1 ? argv[1] : "gzip";
  const workload::BenchmarkProfile* profile = nullptr;
  try {
    profile = &workload::profile_by_name(bench);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench);
    return 1;
  }

  const harness::ExperimentConfig cfg =
      harness::ExperimentConfig::make()
          .l2_latency(11)
          .temperature(85.0)
          .instructions(800'000)
          .technique(leakctl::TechniqueParams::gated_vss())
          .decay_interval(4096)
          .build();

  std::printf("adaptive decay on %s (gated-Vss, 85 C, L2=11)\n\n", bench);

  // 1. Fixed default interval.
  const auto fixed = harness::run_experiment(*profile, cfg);
  std::printf("fixed 4k interval:   savings %6.2f %%, perf loss %5.2f %%, "
              "induced misses %llu\n",
              fixed.energy.net_savings_frac * 100.0,
              fixed.energy.perf_loss_frac * 100.0,
              fixed.control.induced_misses);

  // 2. Runtime feedback controller (tags stay awake so induced misses are
  //    observable).
  harness::ExperimentConfig fb_cfg = cfg;
  fb_cfg.adaptive = harness::ExperimentConfig::AdaptiveScheme::feedback;
  const auto feedback = harness::run_experiment(*profile, fb_cfg);
  std::printf("feedback control:    savings %6.2f %%, perf loss %5.2f %%, "
              "induced misses %llu\n",
              feedback.energy.net_savings_frac * 100.0,
              feedback.energy.perf_loss_frac * 100.0,
              feedback.control.induced_misses);

  // 3. Oracle: sweep the paper's interval grid and keep the best.
  const auto sweep = harness::best_interval_sweep(
      *profile, cfg, harness::paper_interval_grid());
  std::printf("oracle interval %-4s: savings %6.2f %%, perf loss %5.2f %%, "
              "induced misses %llu\n",
              harness::format_interval(sweep.best_interval).c_str(),
              sweep.best.energy.net_savings_frac * 100.0,
              sweep.best.energy.perf_loss_frac * 100.0,
              sweep.best.control.induced_misses);

  std::printf("\nfull sweep:\n");
  for (const auto& r : sweep.sweep) {
    std::printf("  interval %-4s savings %6.2f %%  perf loss %5.2f %%  "
                "turnoff %5.1f %%\n",
                harness::format_interval(r.config.decay_interval).c_str(),
                r.energy.net_savings_frac * 100.0,
                r.energy.perf_loss_frac * 100.0,
                r.energy.turnoff_ratio * 100.0);
  }
  harness::Series fixed_series{"fixed-4k", {}};
  fixed_series.results.push_back(fixed);
  harness::Series fb_series{"feedback", {}};
  fb_series.results.push_back(feedback);
  harness::Series oracle_series{"oracle", {}};
  oracle_series.results.push_back(sweep.best);
  harness::write_reports(report,
                         std::string("example: adaptive decay on ") + bench,
                         {fixed_series, fb_series, oracle_series});
  return 0;
}
