// HotLeakage's signature capability: recomputing leakage as temperature
// and voltage change at runtime (the Butts-Sohi fixed-unit-leakage model
// cannot do this).
//
// This example simulates a simple thermal + DVS scenario: the core heats
// up under load, a thermal manager throttles voltage when a trigger
// temperature is crossed, and the leakage of the L1 D-cache is re-evaluated
// every millisecond — a miniature of the DTM studies the paper cites.
#include <cstdio>

#include "harness/report_json.h"
#include "hotleakage/model.h"

namespace {

/// First-order thermal RC: dT/dt = (P_total * Rth - (T - T_amb)) / tau.
struct ThermalRc {
  double t_celsius = 45.0;
  double t_ambient = 45.0;
  double rth = 2.2;   ///< K/W (package)
  double tau = 0.010; ///< s

  void step(double power_w, double dt) {
    const double t_target = t_ambient + power_w * rth;
    t_celsius += (t_target - t_celsius) * (dt / tau);
  }
};

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = harness::parse_report_cli(argc, argv);
  using namespace hotleakage;
  const CacheGeometry l1d{.lines = 1024, .line_bytes = 64, .tag_bits = 28,
                          .assoc = 2};
  LeakageModel model(TechNode::nm70);

  ThermalRc thermal;
  double vdd = 0.9;
  const double trigger_c = 100.0; // DTM trigger
  const double release_c = 90.0;
  // Core dynamic power: quadratic in Vdd, plus phase behaviour (a hot loop
  // between 10 and 35 ms).
  std::printf("%6s %8s %7s %9s %11s %9s\n", "t[ms]", "T[C]", "Vdd",
              "Pdyn[W]", "Pleak[mW]", "DTM");
  for (int ms = 0; ms <= 50; ++ms) {
    const bool hot_phase = ms >= 10 && ms < 35;
    const double p_dyn = (hot_phase ? 32.0 : 14.0) * (vdd / 0.9) * (vdd / 0.9);

    model.set_operating_point(
        OperatingPoint::at_celsius(thermal.t_celsius, vdd));
    const double p_leak = model.structure_power(l1d);

    // Thermal manager: throttle on trigger, restore on release.
    const char* action = "-";
    if (thermal.t_celsius > trigger_c && vdd > 0.7) {
      vdd = 0.7;
      action = "throttle";
    } else if (thermal.t_celsius < release_c && vdd < 0.9) {
      vdd = 0.9;
      action = "restore";
    }

    if (ms % 2 == 0) {
      std::printf("%6d %8.1f %7.2f %9.1f %11.1f %9s\n", ms,
                  thermal.t_celsius, vdd, p_dyn, p_leak * 1e3, action);
    }
    // The chip-level power driving the RC includes a chip-wide leakage
    // share, approximated as 30x the L1's (caches dominate area).
    thermal.step(p_dyn + 30.0 * p_leak, 0.001);
  }

  std::printf("\nNote how leakage tracks the temperature exponentially and "
              "collapses under the DVS throttle: exactly the coupling "
              "HotLeakage was built to expose.\n");
  harness::write_reports(report, "example: DVS thermal tracking", {});
  return 0;
}
