// Trace capture and replay: freeze a synthetic workload into a portable
// binary artifact (SimpleScalar EIO-style) and prove the replay drives a
// bit-identical simulation.
//
// Usage: ./examples/trace_capture [benchmark] [instructions] [path]
//                                 [--json <path>]
#include <cstdio>
#include <cstdlib>

#include "harness/report_json.h"
#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/tracefile.h"

namespace {

sim::RunStats simulate(sim::TraceSource& source, uint64_t insts) {
  sim::ProcessorConfig cfg = sim::ProcessorConfig::table2(11);
  sim::Processor proc(cfg);
  sim::BaselineDataPort dport(cfg.l1d, proc.l2(), nullptr);
  return proc.run(source, dport, insts);
}

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = harness::parse_report_cli(argc, argv);
  const char* bench = argc > 1 ? argv[1] : "gcc";
  const uint64_t insts =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;
  const char* path = argc > 3 ? argv[3] : "/tmp/hlcc_example.trc";

  const workload::BenchmarkProfile* profile = nullptr;
  try {
    profile = &workload::profile_by_name(bench);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench);
    return 1;
  }

  // 1. Capture.
  workload::Generator recorder(*profile, 1);
  const uint64_t written = workload::write_trace(path, recorder, insts);
  std::printf("captured %llu instructions of %s to %s\n",
              static_cast<unsigned long long>(written), bench, path);

  // 2. Simulate from a fresh generator and from the replayed trace.
  workload::Generator fresh(*profile, 1);
  const sim::RunStats live = simulate(fresh, insts);
  workload::TraceFileReader reader(path);
  const sim::RunStats replay = simulate(reader, insts);

  std::printf("live run:   %llu cycles, IPC %.3f, %llu loads\n",
              static_cast<unsigned long long>(live.cycles), live.ipc(),
              static_cast<unsigned long long>(live.loads));
  std::printf("replay run: %llu cycles, IPC %.3f, %llu loads\n",
              static_cast<unsigned long long>(replay.cycles), replay.ipc(),
              static_cast<unsigned long long>(replay.loads));
  std::printf(live.cycles == replay.cycles && live.loads == replay.loads
                  ? "bit-identical: yes\n"
                  : "bit-identical: NO (bug!)\n");
  std::remove(path);
  harness::write_reports(report, "example: trace capture/replay", {});
  return live.cycles == replay.cycles ? 0 : 1;
}
