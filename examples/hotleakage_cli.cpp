// hotleakage_cli — the command-line face of the model (paper Sec. 3.4).
//
//   ./examples/hotleakage_cli [key=value ...]
//   ./examples/hotleakage_cli tech=70 temp=110 vdd=0.9
//   ./examples/hotleakage_cli tech=100 temp=85 variation=off
//   ./examples/hotleakage_cli --help
//
// Prints unit leakages, k_design factors for the built-in cells, structure
// leakage for the paper's caches and register file, and the standby
// residuals of the three leakage-control techniques, all at the configured
// operating point.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "harness/report_json.h"
#include "hotleakage/gate_leakage.h"
#include "hotleakage/kdesign.h"
#include "hotleakage/options.h"

namespace {

int run(const std::vector<std::string>& args,
        const harness::ReportOptions& report) {
  const hotleakage::Options opts = hotleakage::parse_options(args);

  using namespace hotleakage;
  const TechParams& tech = tech_params(opts.node);
  const OperatingPoint op = opts.operating_point();
  const LeakageModel model = opts.build();

  std::printf("HotLeakage @ %s, %.1f C, %.2f V%s\n",
              std::string(to_string(opts.node)).c_str(), opts.temperature_c,
              opts.resolved_vdd(),
              opts.variation.enabled ? " (with inter-die variation)" : "");

  std::printf("\nunit leakage (W/L = 1, off device):\n");
  std::printf("  NMOS %.4e A    PMOS %.4e A\n",
              unit_leakage(tech, DeviceType::nmos, op),
              unit_leakage(tech, DeviceType::pmos, op));
  std::printf("  gate tunnelling density %.3e A/m\n",
              gate_current_density(tech, op));

  std::printf("\nk_design factors (Eq. 5-8):\n");
  for (const Cell& cell :
       {cells::inverter(tech), cells::nand2(tech), cells::nand3(tech),
        cells::nor2(tech), cells::sram6t(tech), cells::sense_amp(tech)}) {
    const KDesign k = compute_kdesign(tech, cell, op);
    const CellLeakage leak = cell_leakage(tech, cell, op);
    std::printf("  %-10s kn %.3f  kp %.3f  I_cell %.3e A\n",
                cell.name.c_str(), k.kn, k.kp, leak.total());
  }

  const CacheGeometry l1{.lines = 1024, .line_bytes = 64, .tag_bits = 28,
                         .assoc = 2};
  const CacheGeometry l2{.lines = 32768, .line_bytes = 64, .tag_bits = 17,
                         .assoc = 2};
  std::printf("\nstructure leakage:\n");
  std::printf("  L1 cache (64 KB)       %8.1f mW\n",
              model.structure_power(l1) * 1e3);
  std::printf("  L2 cache (2 MB)        %8.1f mW\n",
              model.structure_power(l2) * 1e3);
  std::printf("  register file (80x64)  %8.3f mW\n",
              model.register_file_power(80, 64) * 1e3);

  std::printf("\nstandby residual vs active (per line):\n");
  std::printf("  drowsy %.2f %%   gated-Vss %.2f %%   RBB %.2f %%\n",
              model.standby_ratio(StandbyMode::drowsy) * 100.0,
              model.standby_ratio(StandbyMode::gated) * 100.0,
              model.standby_ratio(StandbyMode::rbb) * 100.0);
  if (opts.variation.enabled) {
    std::printf("\ninter-die variation factor: %.3fx\n",
                model.variation_factor());
  }
  harness::write_reports(report, "example: hotleakage cli", {});
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  harness::ReportOptions report;
  try {
    report = harness::parse_report_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::fputs(hotleakage::options_help().c_str(), stdout);
      return 0;
    }
    args.emplace_back(argv[i]);
  }
  // Malformed options must exit cleanly with a diagnostic, never reach
  // std::terminate: this binary is driven from scripts.
  try {
    return run(args, report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "error: unknown failure\n");
    return 1;
  }
}
