// fault_injection — what does "state-preserving" cost once state
// preservation must be guaranteed?
//
//   ./examples/fault_injection [benchmark] [instructions] [--json <path>]
//
// Drowsy standby holds cells at ~1.5x Vt, where the soft-error rate is
// exponentially higher; gated-Vss destroys the state up front and so has
// nothing left to corrupt.  This demo runs one benchmark under both
// techniques with no protection, parity, and SECDED ECC, and reports net
// leakage savings next to the corruption counts — the drowsy-vs-gated
// comparison under a reliability constraint (zero corruptions).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/report_json.h"

namespace {

const char* protection_name(faults::Protection p) {
  switch (p) {
  case faults::Protection::none:
    return "none";
  case faults::Protection::parity:
    return "parity";
  case faults::Protection::secded:
    return "secded";
  }
  return "?";
}

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = harness::parse_report_cli(argc, argv);
  const std::string benchmark = argc > 1 ? argv[1] : "gcc";
  const uint64_t instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300'000;

  // Raw per-bit-cycle upset probability at nominal Vdd / 300 K; the
  // harness scales it up at the drowsy retention voltage.  Exaggerated vs.
  // terrestrial SER so a short demo run shows the mechanics.
  faults::FaultConfig fault_cfg;
  fault_cfg.enabled = true;
  fault_cfg.standby_rate_per_bit_cycle = 2e-9;
  fault_cfg.seed = 42;
  const harness::ExperimentConfig base = harness::ExperimentConfig::make()
                                             .instructions(instructions)
                                             .variation(false)
                                             .faults(fault_cfg)
                                             .build();

  const workload::BenchmarkProfile& profile =
      workload::profile_by_name(benchmark);

  std::printf("== soft errors in standby: %s, %llu instructions ==\n\n",
              benchmark.c_str(),
              static_cast<unsigned long long>(instructions));
  std::printf("%-10s %-8s %9s %9s %9s %9s %9s %7s\n", "technique", "prot",
              "injected", "detected", "corrected", "recovered", "corrupt",
              "net%");

  double best_reliable_savings = -1.0;
  std::string best_reliable;
  std::vector<harness::Series> series;
  for (const leakctl::TechniqueParams& tech :
       {leakctl::TechniqueParams::drowsy(),
        leakctl::TechniqueParams::gated_vss()}) {
    for (const faults::Protection prot :
         {faults::Protection::none, faults::Protection::parity,
          faults::Protection::secded}) {
      harness::ExperimentConfig cfg = base;
      cfg.technique = tech;
      cfg.faults.protection = prot;
      const harness::ExperimentResult r =
          harness::run_experiment(profile, cfg);
      const leakctl::ControlStats& c = r.control;
      std::printf("%-10s %-8s %9llu %9llu %9llu %9llu %9llu %6.1f%%\n",
                  std::string(tech.name).c_str(), protection_name(prot),
                  c.faults_injected, c.fault_detections, c.fault_corrections,
                  c.fault_recoveries, c.corruptions(),
                  r.energy.net_savings_frac * 100.0);
      if (c.corruptions() == 0 &&
          r.energy.net_savings_frac > best_reliable_savings) {
        best_reliable_savings = r.energy.net_savings_frac;
        best_reliable = std::string(tech.name) + " + " +
                        protection_name(prot);
      }
      harness::Series s{std::string(tech.name) + "/" + protection_name(prot),
                        {}};
      s.results.push_back(r);
      series.push_back(std::move(s));
    }
  }

  std::printf("\nbest net savings with zero corruptions: %s (%.1f%%)\n",
              best_reliable.c_str(), best_reliable_savings * 100.0);
  std::printf("Drowsy's raw advantage shrinks once its state must be "
              "protected; gated-Vss pays nothing because its standby holds "
              "no state.\n");
  harness::write_reports(
      report, std::string("example: fault injection on ") + benchmark,
      series);
  return 0;
}
