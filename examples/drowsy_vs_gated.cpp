// The paper's headline experiment on one benchmark: drowsy vs gated-Vss
// on the L1 D-cache, swept over L2 latency.  The 4x2 grid goes through
// harness::SweepRunner, so the cells run in parallel (HLCC_THREADS).
//
// Usage: ./examples/drowsy_vs_gated [benchmark] [instructions]
//                                    [--json <path>] [--csv <path>]
//   benchmark    one of gcc gzip parser vortex gap perl twolf bzip2 vpr
//                mcf crafty          (default: gcc)
//   instructions committed instructions to simulate (default: 500000)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "harness/report.h"
#include "harness/report_json.h"
#include "harness/sweep.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = harness::parse_report_cli(argc, argv);
  const char* bench = argc > 1 ? argv[1] : "gcc";
  const uint64_t insts =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;

  const workload::BenchmarkProfile* profile = nullptr;
  try {
    profile = &workload::profile_by_name(bench);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench);
    return 1;
  }

  const std::vector<unsigned> l2_lats = {5, 8, 11, 17};
  harness::SweepRunner runner;
  for (const unsigned l2 : l2_lats) {
    runner.submit(*profile, harness::ExperimentConfig::make()
                                .l2_latency(l2)
                                .instructions(insts)
                                .technique(leakctl::TechniqueParams::drowsy())
                                .build());
    runner.submit(*profile,
                  harness::ExperimentConfig::make()
                      .l2_latency(l2)
                      .instructions(insts)
                      .technique(leakctl::TechniqueParams::gated_vss())
                      .build());
  }
  const std::vector<harness::ExperimentResult> results =
      harness::values(runner.run(), runner.options().fail_fast);

  harness::Series drowsy{"drowsy", {}};
  harness::Series gated{"gated-vss", {}};
  for (std::size_t i = 0; i < l2_lats.size(); ++i) {
    drowsy.results.push_back(results[2 * i]);
    gated.results.push_back(results[2 * i + 1]);
  }

  std::printf("drowsy vs gated-Vss on %s (%llu instructions, 110 C, "
              "noaccess decay @4k cycles)\n\n",
              bench, static_cast<unsigned long long>(insts));
  std::printf("%-8s %18s %18s\n", "L2 lat", "drowsy", "gated-vss");
  std::printf("%-8s %9s %8s %9s %8s\n", "", "savings", "loss", "savings",
              "loss");
  for (std::size_t i = 0; i < l2_lats.size(); ++i) {
    const auto& d = results[2 * i];
    const auto& g = results[2 * i + 1];
    std::printf("%-8u %8.2f%% %7.2f%% %8.2f%% %7.2f%%\n", l2_lats[i],
                d.energy.net_savings_frac * 100.0,
                d.energy.perf_loss_frac * 100.0,
                g.energy.net_savings_frac * 100.0,
                g.energy.perf_loss_frac * 100.0);
  }

  // Full detail at the baseline latency.
  std::printf("\ndetail at L2=11 (gated-vss):\n");
  harness::print_result_detail(
      std::cout,
      harness::run_experiment(
          *profile, harness::ExperimentConfig::make()
                        .instructions(insts)
                        .technique(leakctl::TechniqueParams::gated_vss())));
  harness::write_reports(report, std::string("example: drowsy vs gated on ") +
                                     bench,
                         {drowsy, gated});
  return 0;
}
