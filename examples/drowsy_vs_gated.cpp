// The paper's headline experiment on one benchmark: drowsy vs gated-Vss
// on the L1 D-cache, swept over L2 latency.
//
// Usage: ./examples/drowsy_vs_gated [benchmark] [instructions]
//   benchmark    one of gcc gzip parser vortex gap perl twolf bzip2 vpr
//                mcf crafty          (default: gcc)
//   instructions committed instructions to simulate (default: 500000)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  const char* bench = argc > 1 ? argv[1] : "gcc";
  const uint64_t insts =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;

  const workload::BenchmarkProfile* profile = nullptr;
  try {
    profile = &workload::profile_by_name(bench);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench);
    return 1;
  }

  std::printf("drowsy vs gated-Vss on %s (%llu instructions, 110 C, "
              "noaccess decay @4k cycles)\n\n",
              bench, static_cast<unsigned long long>(insts));
  std::printf("%-8s %18s %18s\n", "L2 lat", "drowsy", "gated-vss");
  std::printf("%-8s %9s %8s %9s %8s\n", "", "savings", "loss", "savings",
              "loss");
  for (unsigned l2 : {5u, 8u, 11u, 17u}) {
    harness::ExperimentConfig cfg;
    cfg.l2_latency = l2;
    cfg.instructions = insts;
    cfg.technique = leakctl::TechniqueParams::drowsy();
    const auto d = harness::run_experiment(*profile, cfg);
    cfg.technique = leakctl::TechniqueParams::gated_vss();
    const auto g = harness::run_experiment(*profile, cfg);
    std::printf("%-8u %8.2f%% %7.2f%% %8.2f%% %7.2f%%\n", l2,
                d.energy.net_savings_frac * 100.0,
                d.energy.perf_loss_frac * 100.0,
                g.energy.net_savings_frac * 100.0,
                g.energy.perf_loss_frac * 100.0);
  }

  // Full detail at the baseline latency.
  harness::ExperimentConfig cfg;
  cfg.instructions = insts;
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  std::printf("\ndetail at L2=11 (gated-vss):\n");
  harness::print_result_detail(std::cout,
                               harness::run_experiment(*profile, cfg));
  return 0;
}
