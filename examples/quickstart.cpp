// Quickstart: the HotLeakage public API in ~60 lines.
//
//   1. Build a LeakageModel for a technology node.
//   2. Query leakage power for a cache at different operating points
//      (temperature / DVS) — the model recomputes currents on the fly.
//   3. Compare the standby modes of the three leakage-control techniques.
//
// Build & run:  ./examples/quickstart [--json <path>]
#include <cstdio>

#include "harness/report_json.h"
#include "hotleakage/model.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = harness::parse_report_cli(argc, argv);
  using namespace hotleakage;

  // A 64 KB, 2-way, 64 B-line L1 data cache (the paper's Table 2 L1D).
  const CacheGeometry l1d{.lines = 1024, .line_bytes = 64, .tag_bits = 28,
                          .assoc = 2};

  // 70 nm technology with inter-die variation modelling enabled.
  LeakageModel model(TechNode::nm70);

  std::printf("L1 D-cache leakage power across operating points (70 nm):\n");
  for (double celsius : {27.0, 60.0, 85.0, 110.0}) {
    model.set_operating_point(OperatingPoint::at_celsius(celsius, 0.9));
    std::printf("  %5.0f C, 0.9 V : %7.1f mW\n", celsius,
                model.structure_power(l1d) * 1e3);
  }

  // DVS: drop the supply and leakage falls with it (DIBL).
  model.set_operating_point(OperatingPoint::at_celsius(110.0, 0.7));
  std::printf("  110 C, 0.7 V : %7.1f mW  (dynamic voltage scaling)\n",
              model.structure_power(l1d) * 1e3);

  // What each leakage-control technique leaves behind in standby.
  model.set_operating_point(OperatingPoint::at_celsius(110.0, 0.9));
  std::printf("\nresidual leakage of a standby line, vs active:\n");
  std::printf("  drowsy     %5.2f %%  (state preserved at ~1.5x Vth)\n",
              model.standby_ratio(StandbyMode::drowsy) * 100.0);
  std::printf("  gated-Vss  %5.2f %%  (state lost, high-Vt footer)\n",
              model.standby_ratio(StandbyMode::gated) * 100.0);
  std::printf("  RBB        %5.2f %%  (state preserved, GIDL-limited)\n",
              model.standby_ratio(StandbyMode::rbb) * 100.0);

  std::printf("\ninter-die variation factor at this point: %.2fx\n",
              model.variation_factor());
  harness::write_reports(report, "example: quickstart", {});
  return 0;
}
