// Cooperative cancellation for long simulations.
//
// A hung or over-budget sweep cell cannot be killed from outside without
// taking its worker thread (and the process's determinism guarantees)
// with it.  Instead the simulation loop polls a CancellationToken at
// epoch boundaries (every kCancelPollInterval committed instructions in
// OooCore::run) and unwinds with CancelledError when the owner — the
// sweep engine's watchdog — has flagged it.  The token is a single
// relaxed atomic: the poll costs one predictable branch per epoch and is
// safe to read from the simulation thread while the watchdog writes it.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sim {

/// Thrown out of the simulation loop when its token is cancelled; the
/// sweep engine classifies it as a cell timeout.
class CancelledError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

class CancellationToken {
public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Request cancellation; safe from any thread, idempotent.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Rearm for another attempt.  Only call while no simulation is
  /// polling this token.
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

  /// Throw CancelledError (tagged with @p where) if cancelled.
  void poll(const char* where) const {
    if (cancelled()) {
      throw CancelledError(std::string("cancelled during ") + where);
    }
  }

private:
  std::atomic<bool> cancelled_{false};
};

/// Committed instructions between cancellation polls in the core loop —
/// the simulation's epoch granularity for cooperative timeouts.
inline constexpr uint64_t kCancelPollInterval = 4096;

} // namespace sim
