// Memory-hierarchy plumbing: ports the core model uses, stackable cache
// levels, the fixed-latency memory backend, and the baseline (no leakage
// control) L1 D-cache port.  A hierarchy is assembled bottom-up —
// MemoryBackend, then one CacheLevel (or leakctl::ControlledCache) per
// level, then a DataPort/FetchPort pair on top — so leakage control can
// interpose at *any* level, not just the L1-D (the decay papers cover L2
// as well as L1; see leakctl/controlled_cache.h).
#pragma once

#include <cstdint>

#include "sim/cache.h"
#include "wattch/power.h"

namespace sim {

/// Abstract D-side port: the core calls this for every load/store and gets
/// back the access latency in cycles.
class DataPort {
public:
  virtual ~DataPort() = default;
  virtual unsigned access(uint64_t addr, bool is_store, uint64_t cycle) = 0;
};

/// Whatever sits behind a cache level: the next cache level, or memory.
/// Letting leakage-controlled caches stack at any level (the decay papers
/// cover L2 as well as L1).
class BackingStore {
public:
  virtual ~BackingStore() = default;
  /// Access beyond this level; returns the additional latency.
  virtual unsigned access(uint64_t addr, bool is_store, uint64_t cycle) = 0;
  /// Absorb a dirty victim (off the critical path).
  virtual void writeback(uint64_t addr, uint64_t cycle) = 0;
};

/// Off-chip memory: fixed latency, energy-counted.
class MemoryBackend final : public BackingStore {
public:
  MemoryBackend(unsigned latency, wattch::Activity* activity)
      : latency_(latency), activity_(activity) {}

  unsigned access(uint64_t, bool, uint64_t) override {
    if (activity_ != nullptr) {
      activity_->memory_accesses++;
    }
    return latency_;
  }
  void writeback(uint64_t, uint64_t) override {
    if (activity_ != nullptr) {
      activity_->memory_accesses++;
    }
  }

private:
  unsigned latency_;
  wattch::Activity* activity_; ///< not owned; may be null
};

/// One plain (non-controlled) cache level stacked over whatever backs it:
/// another CacheLevel, a leakctl::ControlledCache, or MemoryBackend.
/// The unified L2 of Table 2 is simply `CacheLevel{l2cfg, memory, act}`;
/// both the I-side and D-side miss paths share it.
class CacheLevel final : public BackingStore {
public:
  CacheLevel(const CacheConfig& cfg, BackingStore& next,
             wattch::Activity* activity);

  /// Access from the level above; returns the additional latency (this
  /// level's hit latency, plus the backing store's latency on a miss).
  unsigned access(uint64_t addr, bool is_store, uint64_t cycle) override;

  /// Absorb a dirty victim from the level above (no latency on the
  /// critical path; counts energy and keeps contents coherent).  On a
  /// writeback miss the line is fetched from the backing store so the
  /// dirty data has somewhere to live — one backing access, and (as in
  /// the original shared-L2 accounting) the fill's own victim is not
  /// forwarded further down.
  void writeback(uint64_t addr, uint64_t cycle) override;

  Cache& cache() { return cache_; }
  const Cache& cache() const { return cache_; }
  unsigned hit_latency() const { return cache_.config().hit_latency; }

private:
  Cache cache_;
  BackingStore& next_;
  wattch::Activity* activity_; ///< not owned; may be null
};

/// Baseline L1 D-cache port: plain cache in front of the shared L2.
class BaselineDataPort final : public DataPort {
public:
  BaselineDataPort(const CacheConfig& l1cfg, BackingStore& next_level,
                   wattch::Activity* activity);

  unsigned access(uint64_t addr, bool is_store, uint64_t cycle) override;

  Cache& cache() { return l1_; }
  const Cache& cache() const { return l1_; }

private:
  Cache l1_;
  BackingStore& next_;
  wattch::Activity* activity_;
};

/// Abstract I-side port: the core fetches lines through this.  The
/// leakage-control layer can interpose on it just like on the D-side
/// (drowsy I-caches are part of the original drowsy-cache proposal).
class FetchPort {
public:
  virtual ~FetchPort() = default;
  /// Fetch the line containing @p pc; returns fetch latency in cycles.
  virtual unsigned fetch(uint64_t pc, uint64_t cycle) = 0;
};

/// Plain L1 I-cache in front of the shared L2 (1-cycle hit, Table 2).
class InstrPort final : public FetchPort {
public:
  InstrPort(const CacheConfig& l1icfg, BackingStore& next_level,
            wattch::Activity* activity);

  unsigned fetch(uint64_t pc, uint64_t cycle) override;

  Cache& cache() { return l1i_; }

private:
  Cache l1i_;
  BackingStore& next_;
  wattch::Activity* activity_;
};

} // namespace sim
