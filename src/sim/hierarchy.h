// Memory-hierarchy plumbing: ports the core model uses, the shared
// L2 + memory backend, and the baseline (no leakage control) L1 D-cache
// port.  The leakage-control layer provides an alternative DataPort that
// wraps the L1 D-cache with decay machinery (leakctl/controlled_cache.h).
#pragma once

#include <cstdint>

#include "sim/cache.h"
#include "wattch/power.h"

namespace sim {

/// Abstract D-side port: the core calls this for every load/store and gets
/// back the access latency in cycles.
class DataPort {
public:
  virtual ~DataPort() = default;
  virtual unsigned access(uint64_t addr, bool is_store, uint64_t cycle) = 0;
};

/// Whatever sits behind a cache level: the next cache level, or memory.
/// Letting leakage-controlled caches stack at any level (the decay papers
/// cover L2 as well as L1).
class BackingStore {
public:
  virtual ~BackingStore() = default;
  /// Access beyond this level; returns the additional latency.
  virtual unsigned access(uint64_t addr, bool is_store, uint64_t cycle) = 0;
  /// Absorb a dirty victim (off the critical path).
  virtual void writeback(uint64_t addr, uint64_t cycle) = 0;
};

/// Off-chip memory: fixed latency, energy-counted.
class MemoryBackend final : public BackingStore {
public:
  MemoryBackend(unsigned latency, wattch::Activity* activity)
      : latency_(latency), activity_(activity) {}

  unsigned access(uint64_t, bool, uint64_t) override {
    if (activity_ != nullptr) {
      activity_->memory_accesses++;
    }
    return latency_;
  }
  void writeback(uint64_t, uint64_t) override {
    if (activity_ != nullptr) {
      activity_->memory_accesses++;
    }
  }

private:
  unsigned latency_;
  wattch::Activity* activity_; ///< not owned; may be null
};

/// Unified L2 plus off-chip memory.  Both the I-side and D-side miss paths
/// share it (Table 2: unified 2 MB, 2-way, 11-cycle; memory 100 cycles).
class L2System : public BackingStore {
public:
  L2System(const CacheConfig& l2cfg, unsigned memory_latency,
           wattch::Activity* activity);

  /// Access beyond L1; returns the additional latency (L2 hit latency or
  /// L2 latency + memory latency).
  unsigned access(uint64_t addr, bool is_store, uint64_t cycle) override;

  /// Write back a dirty L1 victim (no latency on the critical path; counts
  /// energy and keeps L2 contents coherent).
  void writeback(uint64_t addr, uint64_t cycle) override;

  Cache& cache() { return l2_; }
  const Cache& cache() const { return l2_; }
  unsigned hit_latency() const { return l2_.config().hit_latency; }
  unsigned memory_latency() const { return memory_latency_; }

private:
  Cache l2_;
  unsigned memory_latency_;
  wattch::Activity* activity_; ///< not owned; may be null
};

/// Baseline L1 D-cache port: plain cache in front of the shared L2.
class BaselineDataPort final : public DataPort {
public:
  BaselineDataPort(const CacheConfig& l1cfg, BackingStore& next_level,
                   wattch::Activity* activity);

  unsigned access(uint64_t addr, bool is_store, uint64_t cycle) override;

  Cache& cache() { return l1_; }
  const Cache& cache() const { return l1_; }

private:
  Cache l1_;
  BackingStore& next_;
  wattch::Activity* activity_;
};

/// Abstract I-side port: the core fetches lines through this.  The
/// leakage-control layer can interpose on it just like on the D-side
/// (drowsy I-caches are part of the original drowsy-cache proposal).
class FetchPort {
public:
  virtual ~FetchPort() = default;
  /// Fetch the line containing @p pc; returns fetch latency in cycles.
  virtual unsigned fetch(uint64_t pc, uint64_t cycle) = 0;
};

/// Plain L1 I-cache in front of the shared L2 (1-cycle hit, Table 2).
class InstrPort final : public FetchPort {
public:
  InstrPort(const CacheConfig& l1icfg, BackingStore& next_level,
            wattch::Activity* activity);

  unsigned fetch(uint64_t pc, uint64_t cycle) override;

  Cache& cache() { return l1i_; }

private:
  Cache l1i_;
  BackingStore& next_;
  wattch::Activity* activity_;
};

} // namespace sim
