// Core instruction-stream types for the trace-driven simulator.
//
// The simulator is trace-driven: a workload generator (src/workload) emits
// a stream of MicroOps with explicit dependency distances, memory addresses,
// and branch outcomes; the out-of-order core model (src/sim/core.h) turns
// the stream into cycles.  This mirrors how the paper's experiments consume
// SimpleScalar's committed-instruction stream: only the 500 M committed
// instructions matter, and their dependency/locality structure determines
// ILP and cache behaviour.
#pragma once

#include <cstdint>

namespace sim {

/// Functional-unit classes of the simulated Alpha-21264-like core (Table 2).
enum class OpClass : uint8_t {
  int_alu,
  int_mult, ///< shares the IntMult/Div unit
  int_div,
  fp_alu,
  fp_mult, ///< shares the FPMult/Div unit
  fp_div,
  load,
  store,
  branch,
};

/// One committed instruction as the core model consumes it.
struct MicroOp {
  OpClass op = OpClass::int_alu;
  uint64_t pc = 0;
  /// Line-aligned-ish virtual address for loads/stores; 0 otherwise.
  uint64_t mem_addr = 0;
  /// Dependency distances: this op reads the results of the instructions
  /// committed src*_dist positions earlier (0 = no register dependence).
  uint16_t src1_dist = 0;
  uint16_t src2_dist = 0;
  /// Branch fields.
  bool taken = false;
  uint64_t target = 0;
};

/// Latency in cycles of each op class (Alpha-21264-like).
constexpr unsigned op_latency(OpClass op) {
  switch (op) {
  case OpClass::int_alu:
    return 1;
  case OpClass::int_mult:
    return 7;
  case OpClass::int_div:
    return 20;
  case OpClass::fp_alu:
    return 4;
  case OpClass::fp_mult:
    return 4;
  case OpClass::fp_div:
    return 12;
  case OpClass::load:
    return 0; // determined by the memory hierarchy
  case OpClass::store:
    return 1;
  case OpClass::branch:
    return 1;
  }
  return 1;
}

constexpr bool is_mem(OpClass op) {
  return op == OpClass::load || op == OpClass::store;
}

} // namespace sim
