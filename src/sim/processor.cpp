#include "sim/processor.h"

namespace sim {

ProcessorConfig ProcessorConfig::table2(unsigned l2_latency) {
  ProcessorConfig cfg;
  cfg.l2.hit_latency = l2_latency;
  return cfg;
}

Processor::Processor(const ProcessorConfig& cfg)
    : cfg_(cfg),
      mem_(cfg.memory_latency, &activity_),
      l2_(cfg.l2, mem_, &activity_),
      iport_(cfg.l1i, l2_, &activity_) {}

RunStats Processor::run(TraceSource& trace, DataPort& dport,
                        uint64_t max_instructions,
                        const CancellationToken* cancel) {
  return run(trace, dport, iport_, max_instructions, cancel);
}

RunStats Processor::run(TraceSource& trace, DataPort& dport, FetchPort& fport,
                        uint64_t max_instructions,
                        const CancellationToken* cancel) {
  OooCore core(cfg_.core, dport, fport, &activity_);
  RunStats stats = core.run(trace, max_instructions, cancel);
  activity_.cycles += stats.cycles;
  return stats;
}

} // namespace sim
