#include "sim/core.h"

#include "sim/lockstep.h"

namespace sim {
namespace {

/// Single-lane Io policy: the historical DataPort/FetchPort wiring.
struct ScalarIo {
  DataPort& dport;
  FetchPort& iport;
  wattch::Activity* act;

  unsigned ifetch(std::size_t, uint64_t pc, uint64_t cycle) {
    return iport.fetch(pc, cycle);
  }
  unsigned dmem(std::size_t, uint64_t addr, bool is_store, uint64_t cycle) {
    return dport.access(addr, is_store, cycle);
  }
  wattch::Activity* activity(std::size_t) { return act; }
};

} // namespace

OooCore::OooCore(const CoreConfig& cfg, DataPort& dport, FetchPort& iport,
                 wattch::Activity* activity)
    : cfg_(cfg), dport_(dport), iport_(iport), activity_(activity) {}

RunStats OooCore::run(TraceSource& trace, uint64_t max_instructions,
                      const CancellationToken* cancel) {
  ScalarIo io{dport_, iport_, activity_};
  std::vector<RunStats> stats;
  run_lockstep(cfg_, 1, io, trace, max_instructions, cancel, stats);
  return stats.front();
}

} // namespace sim
