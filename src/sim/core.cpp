#include "sim/core.h"

#include <algorithm>
#include <string>

namespace sim {

OooCore::OooCore(const CoreConfig& cfg, DataPort& dport, FetchPort& iport,
                 wattch::Activity* activity)
    : cfg_(cfg), dport_(dport), iport_(iport), activity_(activity) {
  ready_ring_.assign(kRing, 0);
  commit_ring_.assign(kRing, 0);
  lsq_ring_.assign(std::max<std::size_t>(cfg_.lsq_size + 1, 64), 0);
  issue_cycle_of_slot_.assign(kIssueRing, UINT64_MAX);
  issue_used_.assign(kIssueRing, 0);
  int_alu_free_.assign(cfg_.int_alu, 0);
  int_multdiv_free_.assign(cfg_.int_multdiv, 0);
  fp_alu_free_.assign(cfg_.fp_alu, 0);
  fp_multdiv_free_.assign(cfg_.fp_multdiv, 0);
  mem_port_free_.assign(cfg_.mem_ports, 0);
}

std::vector<uint64_t>& OooCore::units_for(OpClass op) {
  switch (op) {
  case OpClass::int_mult:
  case OpClass::int_div:
    return int_multdiv_free_;
  case OpClass::fp_alu:
    return fp_alu_free_;
  case OpClass::fp_mult:
  case OpClass::fp_div:
    return fp_multdiv_free_;
  case OpClass::load:
  case OpClass::store:
    return mem_port_free_;
  case OpClass::int_alu:
  case OpClass::branch:
  default:
    return int_alu_free_;
  }
}

uint64_t OooCore::schedule_issue(OpClass op, uint64_t earliest) {
  std::vector<uint64_t>& units = units_for(op);
  // Pick the unit that frees up first.
  auto unit_it = std::min_element(units.begin(), units.end());
  uint64_t cycle = std::max(earliest, *unit_it);

  // Find a cycle with spare issue bandwidth.
  for (;;) {
    const std::size_t slot = cycle % kIssueRing;
    if (issue_cycle_of_slot_[slot] != cycle) {
      issue_cycle_of_slot_[slot] = cycle;
      issue_used_[slot] = 0;
    }
    if (issue_used_[slot] < cfg_.issue_width) {
      issue_used_[slot]++;
      break;
    }
    ++cycle;
  }

  // Book the unit: divide units are unpipelined and busy for the full
  // latency; everything else accepts a new op next cycle.
  const bool unpipelined = op == OpClass::int_div || op == OpClass::fp_div;
  *unit_it = cycle + (unpipelined ? op_latency(op) : 1);
  return cycle;
}

RunStats OooCore::run(TraceSource& trace, uint64_t max_instructions,
                      const CancellationToken* cancel) {
  RunStats stats;
  MicroOp op;

  uint64_t fetch_cycle = 0;        // cycle the current fetch group starts
  unsigned fetched_in_group = 0;   // ops fetched this cycle
  uint64_t redirect_cycle = 0;     // earliest fetch after a mispredict
  uint64_t last_fetch_line = UINT64_MAX;
  uint64_t last_commit = 0;
  unsigned committed_in_cycle = 0;

  uint64_t mem_op_count = 0;
  const std::size_t lsq_ring_size = lsq_ring_.size();

  for (uint64_t i = 0; i < max_instructions && trace.next(op); ++i) {
    // ---- Cooperative cancellation (epoch boundary) ----
    if (cancel != nullptr && (i & (kCancelPollInterval - 1)) == 0 &&
        cancel->cancelled()) {
      throw CancelledError("simulation cancelled after " + std::to_string(i) +
                           " of " + std::to_string(max_instructions) +
                           " instructions");
    }

    // ---- Fetch ----
    if (fetch_cycle < redirect_cycle) {
      fetch_cycle = redirect_cycle;
      fetched_in_group = 0;
      last_fetch_line = UINT64_MAX; // refetch the line after redirect
    }
    if (fetched_in_group >= cfg_.fetch_width) {
      ++fetch_cycle;
      fetched_in_group = 0;
    }
    const uint64_t fetch_line = op.pc / 64;
    if (fetch_line != last_fetch_line) {
      const unsigned ilat = iport_.fetch(op.pc, fetch_cycle);
      if (ilat > 1) {
        fetch_cycle += ilat - 1; // stall beyond the pipelined 1-cycle hit
        fetched_in_group = 0;
      }
      last_fetch_line = fetch_line;
    }
    ++fetched_in_group;

    // ---- Dispatch: RUU/LSQ occupancy ----
    uint64_t dispatch = fetch_cycle + cfg_.front_pipeline_depth;
    const uint64_t ruu_blocker = commit_ring_[(i + kRing - cfg_.ruu_size) % kRing];
    if (i >= cfg_.ruu_size) {
      dispatch = std::max(dispatch, ruu_blocker);
    }
    const bool mem = is_mem(op.op);
    if (mem) {
      if (mem_op_count >= cfg_.lsq_size) {
        dispatch = std::max(
            dispatch, lsq_ring_[(mem_op_count - cfg_.lsq_size) % lsq_ring_size]);
      }
    }

    // ---- Operand readiness ----
    uint64_t ready = dispatch;
    if (op.src1_dist != 0 && op.src1_dist < kRing && op.src1_dist <= i) {
      ready = std::max(ready, ready_ring_[(i - op.src1_dist) % kRing]);
    }
    if (op.src2_dist != 0 && op.src2_dist < kRing && op.src2_dist <= i) {
      ready = std::max(ready, ready_ring_[(i - op.src2_dist) % kRing]);
    }

    // ---- Issue + execute ----
    // Full bypassing: a consumer can issue the cycle its last producer
    // completes; instructions with no pending operands wait one stage past
    // dispatch.
    const uint64_t issue =
        schedule_issue(op.op, std::max(ready, dispatch + 1));
    uint64_t complete;
    if (op.op == OpClass::load) {
      const unsigned lat = dport_.access(op.mem_addr, false, issue);
      complete = issue + lat;
      stats.loads++;
    } else if (op.op == OpClass::store) {
      // Stores retire through the store buffer; the cache write happens off
      // the critical path but still updates cache and decay state.
      (void)dport_.access(op.mem_addr, true, issue);
      complete = issue + 1;
      stats.stores++;
    } else {
      complete = issue + op_latency(op.op);
    }

    // ---- Branch resolution ----
    if (op.op == OpClass::branch) {
      const bool dir_pred = predictor_.predict(op.pc);
      const bool dir_correct = predictor_.update(op.pc, op.taken);
      bool target_ok = true;
      if (op.taken) {
        uint64_t predicted_target = 0;
        target_ok = btb_.lookup(op.pc, predicted_target) &&
                    predicted_target == op.target;
        btb_.update(op.pc, op.target);
      }
      (void)dir_pred;
      if (!dir_correct || (op.taken && !target_ok)) {
        redirect_cycle =
            std::max(redirect_cycle, complete + cfg_.mispredict_redirect);
      } else if (op.taken) {
        // Correctly predicted taken branch: fetch group breaks.
        fetched_in_group = cfg_.fetch_width;
        last_fetch_line = UINT64_MAX;
      }
    }

    // ---- Commit: in order, width-limited ----
    uint64_t commit = std::max(complete + 1, last_commit);
    if (commit == last_commit) {
      if (++committed_in_cycle >= cfg_.commit_width) {
        ++commit;
        committed_in_cycle = 0;
      }
    } else {
      committed_in_cycle = 1;
    }
    last_commit = commit;

    ready_ring_[i % kRing] = complete;
    commit_ring_[i % kRing] = commit;
    if (mem) {
      lsq_ring_[mem_op_count % lsq_ring_size] = commit;
      ++mem_op_count;
    }

    // ---- Wattch core-structure accounting ----
    if (activity_ != nullptr) {
      wattch::CoreActivity& c = activity_->core;
      c.fetched++;
      c.renamed++;
      c.window_inserts++;
      c.wakeups++; // every completing op broadcasts its tag
      if (mem) {
        c.lsq_inserts++;
      }
      c.regfile_reads += (op.src1_dist != 0 ? 1u : 0u) +
                         (op.src2_dist != 0 ? 1u : 0u);
      switch (op.op) {
      case OpClass::int_mult:
      case OpClass::int_div:
        c.mult_ops++;
        break;
      case OpClass::fp_alu:
      case OpClass::fp_mult:
      case OpClass::fp_div:
        c.fp_ops++;
        break;
      case OpClass::branch:
        c.branches++;
        c.int_alu_ops++;
        break;
      default:
        c.int_alu_ops++;
        break;
      }
      if (op.op != OpClass::store && op.op != OpClass::branch) {
        c.regfile_writes++;
        c.results++;
      }
    }

    stats.instructions++;
    stats.cycles = commit;
  }
  stats.branch = predictor_.stats();
  if (activity_ != nullptr) {
    activity_->core.cycles += stats.cycles;
  }
  return stats;
}

} // namespace sim
