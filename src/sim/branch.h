// Hybrid branch predictor and BTB (Table 2).
//
//   * 4 K-entry bimodal predictor (2-bit saturating counters, PC-indexed);
//   * GAg: 12-bit global history register indexing 4 K 2-bit counters;
//   * 4 K-entry bimod-style chooser picking between them per branch;
//   * 1 K-entry, 2-way BTB for targets.
//
// A misprediction (wrong direction, or predicted-taken with a BTB miss)
// forces the core to refetch after the branch resolves.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace sim {

/// 2-bit saturating counter helper.
class SatCounter2 {
public:
  bool taken() const { return value_ >= 2; }
  void update(bool outcome) {
    if (outcome) {
      if (value_ < 3) ++value_;
    } else {
      if (value_ > 0) --value_;
    }
  }
  uint8_t raw() const { return value_; }

private:
  uint8_t value_ = 2; // weakly taken
};

struct BranchStats {
  unsigned long long branches = 0;
  unsigned long long direction_mispredicts = 0;
  unsigned long long btb_misses = 0;
  double mispredict_rate() const {
    return branches ? static_cast<double>(direction_mispredicts) / branches
                    : 0.0;
  }
};

class HybridPredictor {
public:
  HybridPredictor();

  /// Predict the direction of the branch at @p pc.
  bool predict(uint64_t pc) const;

  /// Update all tables with the resolved @p outcome; returns true if the
  /// prediction was correct.
  bool update(uint64_t pc, bool outcome);

  const BranchStats& stats() const { return stats_; }

  /// Reset a range of counters to their power-on (weakly-taken) state.
  /// Used by decay-based leakage control, which loses row contents on
  /// deactivation (leakctl/predictor_decay.h).
  void reset_bimod(std::size_t begin, std::size_t count);
  void reset_gag(std::size_t begin, std::size_t count);
  void reset_chooser(std::size_t begin, std::size_t count);

  static constexpr std::size_t bimod_entries() { return kBimodEntries; }
  static constexpr std::size_t gag_entries() { return kGagEntries; }
  static constexpr std::size_t chooser_entries() { return kChooserEntries; }
  static constexpr unsigned history_bits() { return kHistoryBits; }

private:
  std::size_t bimod_index(uint64_t pc) const;
  std::size_t gag_index() const;
  std::size_t chooser_index(uint64_t pc) const;

  static constexpr std::size_t kBimodEntries = 4096;
  static constexpr std::size_t kGagEntries = 4096;
  static constexpr std::size_t kChooserEntries = 4096;
  static constexpr unsigned kHistoryBits = 12;

  std::vector<SatCounter2> bimod_;
  std::vector<SatCounter2> gag_;
  std::vector<SatCounter2> chooser_; ///< >=2 selects GAg
  uint32_t history_ = 0;
  BranchStats stats_;
};

/// 1 K-entry, 2-way branch target buffer.
class Btb {
public:
  Btb();

  /// Returns true and sets @p target on hit.
  bool lookup(uint64_t pc, uint64_t& target) const;
  void update(uint64_t pc, uint64_t target);

  /// Invalidate a range of sets (decay-based leakage control).
  void invalidate_sets(std::size_t set_begin, std::size_t count);

  static constexpr std::size_t sets() { return kSets; }

private:
  struct Entry {
    uint64_t tag = 0;
    uint64_t target = 0;
    bool valid = false;
    uint8_t lru = 0;
  };
  static constexpr std::size_t kSets = 512; // 1 K entries, 2-way
  static constexpr std::size_t kWays = 2;

  std::size_t set_of(uint64_t pc) const { return (pc >> 2) % kSets; }
  uint64_t tag_of(uint64_t pc) const { return (pc >> 2) / kSets; }

  std::vector<Entry> entries_;
};

} // namespace sim
