#include "sim/cache.h"

#include <string>

namespace sim {
namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

unsigned log2_exact(std::size_t v) {
  unsigned s = 0;
  while ((std::size_t{1} << s) < v) {
    ++s;
  }
  return s;
}

} // namespace

void CacheConfig::validate() const {
  if (line_bytes == 0) {
    throw std::invalid_argument("CacheConfig: line_bytes must be nonzero");
  }
  if (assoc == 0) {
    throw std::invalid_argument("CacheConfig: assoc must be nonzero");
  }
  if (size_bytes == 0) {
    throw std::invalid_argument("CacheConfig: size_bytes must be nonzero");
  }
  if (size_bytes % line_bytes != 0) {
    throw std::invalid_argument(
        "CacheConfig: size_bytes (" + std::to_string(size_bytes) +
        ") must be a multiple of line_bytes (" + std::to_string(line_bytes) +
        ")");
  }
  if (lines() % assoc != 0) {
    throw std::invalid_argument(
        "CacheConfig: " + std::to_string(lines()) + " lines (size_bytes / " +
        "line_bytes) not divisible by assoc " + std::to_string(assoc));
  }
  if (sets() == 0) {
    throw std::invalid_argument(
        "CacheConfig: geometry yields zero sets (size_bytes " +
        std::to_string(size_bytes) + ", line_bytes " +
        std::to_string(line_bytes) + ", assoc " + std::to_string(assoc) + ")");
  }
}

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  cfg.validate();
  lines_.resize(cfg.lines());
  sets_ = cfg.sets();
  pow2_ = is_pow2(cfg.line_bytes) && is_pow2(sets_);
  if (pow2_) {
    line_shift_ = log2_exact(cfg.line_bytes);
    tag_shift_ = line_shift_ + log2_exact(sets_);
    set_mask_ = sets_ - 1;
  }
}

Cache::AccessResult Cache::access(uint64_t addr, bool is_write,
                                  uint64_t cycle) {
  return access_decomposed(addr, decompose(addr), is_write, cycle);
}

Cache::AccessResult Cache::access_decomposed(uint64_t addr,
                                             const Decomposed& d,
                                             bool is_write, uint64_t cycle) {
  assert(d.set == set_index(addr) && d.tag == tag_of(addr));
  (void)addr;
  AccessResult result;
  result.set = d.set;
  const uint64_t tag = d.tag;
  (is_write ? stats_.writes : stats_.reads)++;

  // Lookup.
  std::size_t victim = 0;
  uint32_t victim_lru = UINT32_MAX;
  for (std::size_t way = 0; way < cfg_.assoc; ++way) {
    Line& ln = line_mut(result.set, way);
    if (ln.valid && ln.tag == tag) {
      result.hit = true;
      result.way = way;
      ln.lru = ++lru_clock_;
      ln.last_access_cycle = cycle;
      if (is_write) {
        ln.dirty = true;
      }
      return result;
    }
    if (!ln.valid) {
      victim = way;
      victim_lru = 0;
    } else if (ln.lru < victim_lru) {
      victim = way;
      victim_lru = ln.lru;
    }
  }

  // Miss: fill into the LRU (or an invalid) way.
  (is_write ? stats_.write_misses : stats_.read_misses)++;
  Line& ln = line_mut(result.set, victim);
  if (ln.valid && ln.dirty && cfg_.write_back) {
    result.writeback = true;
    result.writeback_addr = line_addr(result.set, victim);
    stats_.writebacks++;
  }
  ln.tag = tag;
  ln.valid = true;
  ln.dirty = is_write;
  ln.lru = ++lru_clock_;
  ln.last_access_cycle = cycle;
  result.way = victim;
  return result;
}

Cache::AccessResult Cache::access_known_hit(std::size_t set, std::size_t way,
                                            bool is_write, uint64_t cycle) {
  (is_write ? stats_.writes : stats_.reads)++;
  Line& ln = line_mut(set, way);
  assert(ln.valid);
  ln.lru = ++lru_clock_;
  ln.last_access_cycle = cycle;
  if (is_write) {
    ln.dirty = true;
  }
  AccessResult result;
  result.hit = true;
  result.set = set;
  result.way = way;
  return result;
}

bool Cache::probe(uint64_t addr) const {
  const std::size_t set = set_index(addr);
  const uint64_t tag = tag_of(addr);
  for (std::size_t way = 0; way < cfg_.assoc; ++way) {
    const Line& ln = line(set, way);
    if (ln.valid && ln.tag == tag) {
      return true;
    }
  }
  return false;
}

bool Cache::invalidate(std::size_t set, std::size_t way) {
  Line& ln = line_mut(set, way);
  const bool was_dirty = ln.valid && ln.dirty;
  if (was_dirty) {
    stats_.invalidation_writebacks++;
  }
  ln.valid = false;
  ln.dirty = false;
  return was_dirty;
}

uint64_t Cache::line_addr(std::size_t set, std::size_t way) const {
  const Line& ln = line(set, way);
  return (ln.tag * sets_ + set) * cfg_.line_bytes;
}

} // namespace sim
