// Out-of-order core timing model (Table 2: 80-RUU, 40-LSQ, 4-wide,
// Alpha-21264-like functional units).
//
// The model is a streaming dataflow/scoreboard hybrid: for each committed
// instruction it computes fetch, dispatch, issue, completion, and commit
// cycles subject to
//   * fetch bandwidth, I-cache latency, taken-branch fetch breaks, and
//     branch-misprediction redirects;
//   * RUU/LSQ occupancy (an instruction cannot dispatch until the
//     instruction RUU-size earlier has committed);
//   * register dependences (explicit distances in the trace);
//   * issue width and functional-unit counts (divide units unpipelined);
//   * memory latency from the D-side port (which is where leakage-control
//     techniques inject slow hits and induced misses);
//   * in-order, width-limited commit.
//
// This captures the mechanism the paper leans on in Sec. 5.1: an induced
// miss only costs what the window cannot hide, so modest L2 latencies are
// largely tolerated by an aggressive out-of-order machine.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/branch.h"
#include "sim/cancellation.h"
#include "sim/hierarchy.h"
#include "sim/types.h"

namespace sim {

struct CoreConfig {
  unsigned fetch_width = 4;
  unsigned issue_width = 4;
  unsigned commit_width = 4;
  unsigned ruu_size = 80;
  unsigned lsq_size = 40;
  unsigned front_pipeline_depth = 3; ///< fetch -> dispatch stages
  unsigned mispredict_redirect = 3;  ///< extra cycles after branch resolve
  unsigned int_alu = 4;
  unsigned int_multdiv = 1;
  unsigned fp_alu = 2;
  unsigned fp_multdiv = 1;
  unsigned mem_ports = 2;
};

/// Ops per block on the batched trace path (sim/lockstep.h and the other
/// hot consumers pull this many at a time).  Divides kCancelPollInterval,
/// so block starts land exactly on the scalar loop's cancellation-poll
/// epochs and block-granular polling observes the same instruction counts.
inline constexpr std::size_t kTraceBlockOps = 64;

/// A pull-based instruction source (implemented by workload generators).
class TraceSource {
public:
  virtual ~TraceSource() = default;
  /// Produce the next committed instruction; false at end of stream.
  virtual bool next(MicroOp& op) = 0;
  /// Batched pull: fill up to @p n ops into @p out and return how many
  /// were produced.  A short count means end of stream — a later call
  /// must return 0, never resume.  The default loops next(); hot sources
  /// override it natively so consumers pay one virtual dispatch per
  /// block instead of per op.
  virtual std::size_t next_block(MicroOp* out, std::size_t n) {
    std::size_t i = 0;
    while (i < n && next(out[i])) {
      ++i;
    }
    return i;
  }
};

struct RunStats {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  BranchStats branch;
  double ipc() const {
    return cycles ? static_cast<double>(instructions) / cycles : 0.0;
  }
};

/// The scalar (single-lane) core.  Since the batched-execution work the
/// scoreboard loop itself lives in sim/lockstep.h — one trace pass can
/// drive K lanes whose D-side memory systems differ — and OooCore is the
/// single-lane instantiation of that engine, wired to a DataPort/
/// FetchPort pair.  One lane executes the same operations in the same
/// order as the historical inline loop, so results are bit-identical.
class OooCore {
public:
  /// @p activity, when non-null, receives per-structure core activity
  /// counts (Wattch accounting).
  OooCore(const CoreConfig& cfg, DataPort& dport, FetchPort& iport,
          wattch::Activity* activity = nullptr);

  /// Run at most @p max_instructions from @p trace; returns the stats.
  /// When @p cancel is non-null it is polled every kCancelPollInterval
  /// committed instructions (the loop's epoch boundary); a cancelled
  /// token unwinds the run with sim::CancelledError, which is how the
  /// sweep engine's watchdog times out a hung or over-budget cell
  /// without killing the worker thread.
  RunStats run(TraceSource& trace, uint64_t max_instructions,
               const CancellationToken* cancel = nullptr);

private:
  CoreConfig cfg_;
  DataPort& dport_;
  FetchPort& iport_;
  wattch::Activity* activity_;
};

} // namespace sim
