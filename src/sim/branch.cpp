#include "sim/branch.h"

namespace sim {

HybridPredictor::HybridPredictor()
    : bimod_(kBimodEntries), gag_(kGagEntries), chooser_(kChooserEntries) {}

std::size_t HybridPredictor::bimod_index(uint64_t pc) const {
  return (pc >> 2) % kBimodEntries;
}

std::size_t HybridPredictor::gag_index() const {
  return history_ % kGagEntries;
}

std::size_t HybridPredictor::chooser_index(uint64_t pc) const {
  return (pc >> 2) % kChooserEntries;
}

bool HybridPredictor::predict(uint64_t pc) const {
  const bool use_gag = chooser_[chooser_index(pc)].taken();
  return use_gag ? gag_[gag_index()].taken() : bimod_[bimod_index(pc)].taken();
}

bool HybridPredictor::update(uint64_t pc, bool outcome) {
  const bool bimod_pred = bimod_[bimod_index(pc)].taken();
  const bool gag_pred = gag_[gag_index()].taken();
  const bool use_gag = chooser_[chooser_index(pc)].taken();
  const bool prediction = use_gag ? gag_pred : bimod_pred;

  // Chooser trains toward the component that was right (when they differ).
  if (bimod_pred != gag_pred) {
    chooser_[chooser_index(pc)].update(gag_pred == outcome);
  }
  bimod_[bimod_index(pc)].update(outcome);
  gag_[gag_index()].update(outcome);
  history_ = ((history_ << 1) | (outcome ? 1u : 0u)) &
             ((1u << kHistoryBits) - 1u);

  stats_.branches++;
  const bool correct = prediction == outcome;
  if (!correct) {
    stats_.direction_mispredicts++;
  }
  return correct;
}

void HybridPredictor::reset_bimod(std::size_t begin, std::size_t count) {
  for (std::size_t i = begin; i < begin + count && i < bimod_.size(); ++i) {
    bimod_[i] = SatCounter2{};
  }
}

void HybridPredictor::reset_gag(std::size_t begin, std::size_t count) {
  for (std::size_t i = begin; i < begin + count && i < gag_.size(); ++i) {
    gag_[i] = SatCounter2{};
  }
}

void HybridPredictor::reset_chooser(std::size_t begin, std::size_t count) {
  for (std::size_t i = begin; i < begin + count && i < chooser_.size(); ++i) {
    chooser_[i] = SatCounter2{};
  }
}

Btb::Btb() : entries_(kSets * kWays) {}

bool Btb::lookup(uint64_t pc, uint64_t& target) const {
  const std::size_t set = set_of(pc);
  const uint64_t tag = tag_of(pc);
  for (std::size_t w = 0; w < kWays; ++w) {
    const Entry& e = entries_[set * kWays + w];
    if (e.valid && e.tag == tag) {
      target = e.target;
      return true;
    }
  }
  return false;
}

void Btb::update(uint64_t pc, uint64_t target) {
  const std::size_t set = set_of(pc);
  const uint64_t tag = tag_of(pc);
  Entry* victim = nullptr;
  for (std::size_t w = 0; w < kWays; ++w) {
    Entry& e = entries_[set * kWays + w];
    if (e.valid && e.tag == tag) {
      e.target = target;
      e.lru = 1;
      entries_[set * kWays + (1 - w)].lru = 0;
      return;
    }
    if (victim == nullptr || !e.valid || e.lru == 0) {
      if (victim == nullptr || (!e.valid && victim->valid)) {
        victim = &e;
      } else if (victim->valid && e.valid && e.lru == 0) {
        victim = &e;
      }
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->target = target;
  victim->lru = 1;
}

void Btb::invalidate_sets(std::size_t set_begin, std::size_t count) {
  for (std::size_t s = set_begin; s < set_begin + count && s < kSets; ++s) {
    for (std::size_t w = 0; w < kWays; ++w) {
      entries_[s * kWays + w] = Entry{};
    }
  }
}

} // namespace sim
