#include "sim/hierarchy.h"

namespace sim {

CacheLevel::CacheLevel(const CacheConfig& cfg, BackingStore& next,
                       wattch::Activity* activity)
    : cache_(cfg), next_(next), activity_(activity) {}

unsigned CacheLevel::access(uint64_t addr, bool is_store, uint64_t cycle) {
  if (activity_ != nullptr) {
    activity_->l2_accesses++;
  }
  const Cache::AccessResult r = cache_.access(addr, is_store, cycle);
  unsigned latency = cache_.config().hit_latency;
  if (!r.hit) {
    if (r.writeback) {
      next_.writeback(r.writeback_addr, cycle);
    }
    latency += next_.access(addr, /*is_store=*/false, cycle);
  }
  return latency;
}

void CacheLevel::writeback(uint64_t addr, uint64_t cycle) {
  if (activity_ != nullptr) {
    activity_->l2_accesses++;
  }
  const Cache::AccessResult r = cache_.access(addr, /*is_write=*/true, cycle);
  if (!r.hit) {
    // Fill the line so the absorbed dirty data has somewhere to live:
    // exactly one backing access.  The fill's own dirty victim, if any, is
    // deliberately not forwarded — replicating the shared-L2 accounting
    // this level replaced, where an L1 writeback miss cost a single memory
    // access regardless of what it evicted.
    (void)next_.access(addr, /*is_store=*/true, cycle);
  }
}

BaselineDataPort::BaselineDataPort(const CacheConfig& l1cfg,
                                   BackingStore& next_level,
                                   wattch::Activity* activity)
    : l1_(l1cfg), next_(next_level), activity_(activity) {}

unsigned BaselineDataPort::access(uint64_t addr, bool is_store,
                                  uint64_t cycle) {
  if (activity_ != nullptr) {
    (is_store ? activity_->l1_writes : activity_->l1_reads)++;
  }
  const Cache::AccessResult r = l1_.access(addr, is_store, cycle);
  unsigned latency = l1_.config().hit_latency;
  if (!r.hit) {
    if (r.writeback) {
      next_.writeback(r.writeback_addr, cycle);
    }
    latency += next_.access(addr, /*is_store=*/false, cycle);
  }
  return latency;
}

InstrPort::InstrPort(const CacheConfig& l1icfg, BackingStore& next_level,
                     wattch::Activity* activity)
    : l1i_(l1icfg), next_(next_level), activity_(activity) {}

unsigned InstrPort::fetch(uint64_t pc, uint64_t cycle) {
  if (activity_ != nullptr) {
    activity_->l1_reads++;
  }
  const Cache::AccessResult r = l1i_.access(pc, /*is_write=*/false, cycle);
  unsigned latency = l1i_.config().hit_latency;
  if (!r.hit) {
    latency += next_.access(pc, /*is_store=*/false, cycle);
  }
  return latency;
}

} // namespace sim
