#include "sim/hierarchy.h"

namespace sim {

L2System::L2System(const CacheConfig& l2cfg, unsigned memory_latency,
                   wattch::Activity* activity)
    : l2_(l2cfg), memory_latency_(memory_latency), activity_(activity) {}

unsigned L2System::access(uint64_t addr, bool is_store, uint64_t cycle) {
  if (activity_ != nullptr) {
    activity_->l2_accesses++;
  }
  const Cache::AccessResult r = l2_.access(addr, is_store, cycle);
  if (r.hit) {
    return l2_.config().hit_latency;
  }
  if (activity_ != nullptr) {
    activity_->memory_accesses++;
    if (r.writeback) {
      activity_->memory_accesses++; // dirty L2 victim written to memory
    }
  }
  return l2_.config().hit_latency + memory_latency_;
}

void L2System::writeback(uint64_t addr, uint64_t cycle) {
  if (activity_ != nullptr) {
    activity_->l2_accesses++;
  }
  const Cache::AccessResult r = l2_.access(addr, /*is_write=*/true, cycle);
  if (!r.hit && activity_ != nullptr) {
    activity_->memory_accesses++;
  }
}

BaselineDataPort::BaselineDataPort(const CacheConfig& l1cfg,
                                   BackingStore& next_level,
                                   wattch::Activity* activity)
    : l1_(l1cfg), next_(next_level), activity_(activity) {}

unsigned BaselineDataPort::access(uint64_t addr, bool is_store,
                                  uint64_t cycle) {
  if (activity_ != nullptr) {
    (is_store ? activity_->l1_writes : activity_->l1_reads)++;
  }
  const Cache::AccessResult r = l1_.access(addr, is_store, cycle);
  unsigned latency = l1_.config().hit_latency;
  if (!r.hit) {
    if (r.writeback) {
      next_.writeback(r.writeback_addr, cycle);
    }
    latency += next_.access(addr, /*is_store=*/false, cycle);
  }
  return latency;
}

InstrPort::InstrPort(const CacheConfig& l1icfg, BackingStore& next_level,
                     wattch::Activity* activity)
    : l1i_(l1icfg), next_(next_level), activity_(activity) {}

unsigned InstrPort::fetch(uint64_t pc, uint64_t cycle) {
  if (activity_ != nullptr) {
    activity_->l1_reads++;
  }
  const Cache::AccessResult r = l1i_.access(pc, /*is_write=*/false, cycle);
  unsigned latency = l1i_.config().hit_latency;
  if (!r.hit) {
    latency += next_.access(pc, /*is_store=*/false, cycle);
  }
  return latency;
}

} // namespace sim
