// Tenant (address-space) tagging for multi-programmed traces.
//
// A multi-tenant workload interleaves several per-benchmark instruction
// streams onto one core (workload/interleaver.h).  Each stream carries a
// tenant id in the high bits of every address it emits — the same shape
// as a per-core owner[] array in a multi-core pintool, folded into the
// address so the whole single-core pipeline (branch tables, L1s, a
// shared L2) is tenant-aware without new plumbing:
//
//   * address spaces are disjoint by construction: two tenants can never
//     alias a cache line, a BTB entry, or an LSQ address;
//   * single-program addresses stay below 2^32 (the generator's code and
//     data bases plus any realistic footprint), so tenant 0's transform
//     is the exact identity — an N=1 interleaved run is bit-identical to
//     the single-stream path;
//   * set indices and predictor indices use low address bits only, so a
//     permutation of tenant ids permutes per-tenant statistics without
//     changing any global timing (tests/test_multitenant.cpp pins this).
//
// A shared leakctl::ControlledCache recovers the tenant of an access
// with tenant_of() to keep per-tenant occupancy and classification
// stats, and (under DecayPolicy::tenant_color) to pick the tenant's set
// partition.
#pragma once

#include <cstdint>

namespace sim {

/// Bit position of the tenant tag.  Bits [0, 32) are the tenant-local
/// address; a 64-tenant budget keeps tagged addresses within a 40-bit
/// physical space.
inline constexpr unsigned kTenantShift = 32;

/// Hard cap on tenant count (tag values), set by the address-bit budget.
inline constexpr unsigned kMaxTenants = 64;

/// Sentinel for "no tenant" in per-line owner arrays.
inline constexpr uint8_t kNoTenant = 0xFF;

/// The tenant id carried by a tagged address (0 for untagged addresses).
constexpr unsigned tenant_of(uint64_t addr) {
  return static_cast<unsigned>(addr >> kTenantShift);
}

/// The tag bits tenant @p tenant ORs into every address (0 for tenant 0).
constexpr uint64_t tenant_bits(unsigned tenant) {
  return static_cast<uint64_t>(tenant) << kTenantShift;
}

} // namespace sim
