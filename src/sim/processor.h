// Processor assembly per the paper's Table 2 configuration.
//
// The Processor owns the shared pieces (L2 + memory, I-side, activity
// counters); the D-side port is supplied by the caller so the same machine
// can run with a plain L1 D-cache (baseline) or with a leakage-controlled
// one (src/leakctl).  Each run() constructs a fresh core and predictor so
// repeated experiments are independent.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/core.h"
#include "sim/hierarchy.h"

namespace sim {

struct ProcessorConfig {
  CoreConfig core;
  CacheConfig l1d{.size_bytes = 64 * 1024, .assoc = 2, .line_bytes = 64,
                  .hit_latency = 2};
  CacheConfig l1i{.size_bytes = 64 * 1024, .assoc = 2, .line_bytes = 64,
                  .hit_latency = 1};
  CacheConfig l2{.size_bytes = 2 * 1024 * 1024, .assoc = 2, .line_bytes = 64,
                 .hit_latency = 11};
  unsigned memory_latency = 100;
  double clock_hz = 5.6e9; ///< 5600 MHz at 70 nm / 0.9 V

  /// The paper's baseline (Table 2).  @p l2_latency is the study's main
  /// sweep variable (5 / 8 / 11 / 17 cycles).
  static ProcessorConfig table2(unsigned l2_latency = 11);
};

/// Owns the shared memory system; runs traces against caller-supplied
/// D-side ports.
class Processor {
public:
  explicit Processor(const ProcessorConfig& cfg);

  /// Run @p max_instructions of @p trace with @p dport as the D-side.
  /// @p cancel, when non-null, is polled at epoch boundaries by the core
  /// loop; a cancelled token aborts the run with sim::CancelledError
  /// (see sim/cancellation.h).
  RunStats run(TraceSource& trace, DataPort& dport, uint64_t max_instructions,
               const CancellationToken* cancel = nullptr);

  /// Same, but also replace the I-side (e.g. a leakage-controlled I-cache).
  RunStats run(TraceSource& trace, DataPort& dport, FetchPort& fport,
               uint64_t max_instructions,
               const CancellationToken* cancel = nullptr);

  const ProcessorConfig& config() const { return cfg_; }
  CacheLevel& l2() { return l2_; }
  MemoryBackend& memory() { return mem_; }
  InstrPort& iport() { return iport_; }
  wattch::Activity& activity() { return activity_; }
  const wattch::Activity& activity() const { return activity_; }

private:
  ProcessorConfig cfg_;
  wattch::Activity activity_;
  MemoryBackend mem_;
  CacheLevel l2_;
  InstrPort iport_;
};

} // namespace sim
