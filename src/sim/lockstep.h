// Lockstep multi-lane core timing engine.
//
// One pass over a trace drives K independent "lanes" — replicas of the
// OooCore scoreboard whose D-side memory systems (and therefore cycle
// timings) differ, but whose instruction stream is identical.  The
// engine hoists everything that depends only on the *stream* out of the
// per-lane work and evaluates it once per instruction:
//
//   * trace decode/generation (one TraceSource::next_block per
//     kTraceBlockOps instructions — the per-op virtual dispatch and
//     cancellation poll of the historical loop are hoisted to block
//     granularity);
//   * the front-end fetch-group state machine (fetched_in_group,
//     last_fetch_line, redirect pending) — see the invariant notes below
//     for why these shared variables evolve identically in every lane;
//   * branch prediction and BTB state: the predictor sees the same
//     (pc, outcome) stream in every lane, so one shared structure
//     produces the per-lane-identical mispredict / group-break decision;
//   * Wattch per-structure core activity: the counts are a pure function
//     of the instruction mix, accumulated once and credited to every
//     lane at the end of the run.
//
// What stays per lane is exactly what the leakage-control techniques
// perturb: issue/complete/commit cycle arithmetic, the D-side access
// (latency feeds the scoreboard), the L2 fill on an I-side miss, and the
// resulting RunStats.  With one lane the engine executes the same
// operations in the same order as the historical OooCore::run loop, so
// OooCore delegates here and stays bit-identical.
//
// Shared front-end invariants (the reason lockstep is exact, not
// approximate):
//
//  - Redirect consumption.  The scalar loop re-checks
//    `fetch_cycle < redirect_cycle` each instruction.  After a mispredict
//    at instruction j, complete_j >= fetch_cycle_j + front_depth + 2 >
//    fetch_cycle_j in *every* lane, so the check fires at j+1 in every
//    lane; once consumed, fetch_cycle == redirect_cycle and only grows
//    until the next mispredict.  A single shared pending flag is
//    therefore equivalent to the per-lane comparison.
//  - Fetch-group evolution.  Group wrap depends on fetched_in_group and
//    fetch_width (shared); the I-fetch stall decision `ilat > 1` is an
//    L1I hit/miss outcome plus the (config-shared) hit latency — on a
//    hit every lane sees the same hit_latency, on a miss every lane pays
//    hit_latency plus a (possibly different) L2 latency >= 1, so the
//    *decision* agrees across lanes even when the stall length differs.
//  - Cache state is order-determined.  sim::Cache consumes the cycle
//    argument only to stamp `last_access_cycle` (never read back by
//    replacement), so a shared L1I fed the same pc stream holds the same
//    tags regardless of per-lane cycle skew.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/branch.h"
#include "sim/cancellation.h"
#include "sim/core.h"
#include "sim/types.h"
#include "wattch/power.h"

namespace sim {

/// Per-lane scoreboard state: the rings and unit free-lists of one
/// OooCore replica, plus its private fetch/commit cycle cursors.
///
/// Anything the instruction stream alone determines — retired-op
/// counters, LSQ occupancy, ring slot indices — lives in run_lockstep's
/// shared per-instruction state instead: it evolves identically in
/// every lane, and at K lanes hoisting it out of the lane loop is a
/// direct K-fold saving on the batched hot path.
class LockstepLane {
public:
  static constexpr std::size_t kRing = 1024; ///< > max dependency distance
  static constexpr std::size_t kIssueRing = 8192;

  /// Unit free-list classes (units_ index).
  enum UnitKind : unsigned {
    kIntAlu,
    kIntMultdiv,
    kFpAlu,
    kFpMultdiv,
    kMemPort,
    kUnitKindCount,
  };

  static constexpr unsigned unit_kind(OpClass op) {
    switch (op) {
    case OpClass::int_mult:
    case OpClass::int_div:
      return kIntMultdiv;
    case OpClass::fp_alu:
      return kFpAlu;
    case OpClass::fp_mult:
    case OpClass::fp_div:
      return kFpMultdiv;
    case OpClass::load:
    case OpClass::store:
      return kMemPort;
    case OpClass::int_alu:
    case OpClass::branch:
    default:
      return kIntAlu;
    }
  }

  explicit LockstepLane(const CoreConfig& cfg) {
    ready_ring_.assign(kRing, 0);
    commit_ring_.assign(kRing, 0);
    // Power-of-two capacity so the wrap is a mask, not a runtime
    // division.  Any capacity > lsq_size preserves the ring's contract
    // (an entry is re-read exactly lsq_size insertions after it was
    // written), so rounding up changes no observable value.
    lsq_ring_.assign(std::bit_ceil(std::max<std::size_t>(cfg.lsq_size + 1, 64)),
                     0);
    issue_cycle_of_slot_.assign(kIssueRing, UINT64_MAX);
    issue_used_.assign(kIssueRing, 0);
    units_[kIntAlu].assign(cfg.int_alu, 0);
    units_[kIntMultdiv].assign(cfg.int_multdiv, 0);
    units_[kFpAlu].assign(cfg.fp_alu, 0);
    units_[kFpMultdiv].assign(cfg.fp_multdiv, 0);
    units_[kMemPort].assign(cfg.mem_ports, 0);
  }

  uint64_t fetch_cycle = 0;      ///< cycle the current fetch group starts
  uint64_t redirect_cycle = 0;   ///< earliest fetch after a mispredict
  uint64_t last_commit = 0;
  unsigned committed_in_cycle = 0;
  uint64_t cycles = 0;

  /// Earliest cycle >= @p earliest with a free issue slot and a free
  /// unit of class @p kind; books both.  @p book_latency is how long the
  /// unit stays busy: divide units are unpipelined and busy for the full
  /// op latency, everything else accepts a new op next cycle (the caller
  /// precomputes this once per instruction).
  uint64_t schedule_issue(unsigned kind, unsigned issue_width,
                          uint64_t earliest, uint64_t book_latency) {
    std::vector<uint64_t>& units = units_[kind];
    // Pick the unit that frees up first.
    uint64_t* unit_it = units.data();
    uint64_t* const end_it = unit_it + units.size();
    for (uint64_t* it = unit_it + 1; it != end_it; ++it) {
      if (*it < *unit_it) {
        unit_it = it;
      }
    }
    uint64_t cycle = std::max(earliest, *unit_it);

    // Find a cycle with spare issue bandwidth.
    for (;;) {
      const std::size_t slot = cycle & (kIssueRing - 1);
      if (issue_cycle_of_slot_[slot] != cycle) {
        issue_cycle_of_slot_[slot] = cycle;
        issue_used_[slot] = 0;
      }
      if (issue_used_[slot] < issue_width) {
        issue_used_[slot]++;
        break;
      }
      ++cycle;
    }

    *unit_it = cycle + book_latency;
    return cycle;
  }

  std::vector<uint64_t> ready_ring_;  ///< result-ready cycle per instruction
  std::vector<uint64_t> commit_ring_; ///< commit cycle per instruction
  std::vector<uint64_t> lsq_ring_;    ///< commit cycle per memory op

  std::vector<uint64_t> issue_cycle_of_slot_;
  std::vector<uint8_t> issue_used_;

  std::array<std::vector<uint64_t>, kUnitKindCount> units_;
};

/// Drive @p nlanes lane replicas through one pass over @p trace.
///
/// The Io policy supplies the per-lane memory system:
///   unsigned ifetch(std::size_t lane, uint64_t pc, uint64_t fetch_cycle)
///     called once per front-end line fetch, lanes in ascending order;
///     returns the I-side latency for that lane.  An implementation
///     backed by a shared L1I does the tag lookup at lane 0 and replays
///     the hit/miss to the other lanes (see harness/batched.cpp).
///   unsigned dmem(std::size_t lane, uint64_t addr, bool is_store,
///                 uint64_t cycle)
///     the D-side access; the return latency feeds the lane's
///     scoreboard for loads (discarded for stores, as in OooCore).
///   wattch::Activity* activity(std::size_t lane)
///     per-lane activity sink (may be nullptr): receives the shared core
///     accounting plus the lane's core cycles at the end of the run.
///
/// Fills @p lanes (resized to @p nlanes) and @p stats_out (one RunStats
/// per lane).  Throws CancelledError at the next epoch boundary after
/// @p cancel is flagged, with the same message the scalar loop produces.
template <typename Io>
void run_lockstep(const CoreConfig& cfg, std::size_t nlanes, Io& io,
                  TraceSource& trace, uint64_t max_instructions,
                  const CancellationToken* cancel,
                  std::vector<RunStats>& stats_out) {
  std::vector<LockstepLane> lanes;
  lanes.reserve(nlanes);
  for (std::size_t l = 0; l < nlanes; ++l) {
    lanes.emplace_back(cfg);
  }

  HybridPredictor predictor;
  Btb btb;
  unsigned fetched_in_group = 0; ///< ops fetched this cycle (shared)
  uint64_t last_fetch_line = UINT64_MAX;
  bool pending_redirect = false;
  wattch::CoreActivity shared_core{};
  MicroOp block[kTraceBlockOps];

  // Stream-determined counters: every lane retires the same ops in the
  // same order, so these are shared, not per-lane.
  uint64_t instructions = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t mem_op_count = 0;
  const std::size_t lsq_mask =
      nlanes != 0 ? lanes[0].lsq_ring_.size() - 1 : 0;

  // The trace is consumed in kTraceBlockOps-sized blocks: one virtual
  // next_block() dispatch and one cancellation check replace the per-op
  // versions the historical loop paid.  Blocks start at multiples of 64
  // (only the final block is short), and kCancelPollInterval is a
  // multiple of the block size, so the poll below fires at exactly the
  // instruction indices — and with exactly the error message — the
  // per-op loop produced.
  static_assert(kCancelPollInterval % kTraceBlockOps == 0);
  uint64_t i = 0;
  while (i < max_instructions) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<uint64_t>(kTraceBlockOps, max_instructions - i));
    const std::size_t got = trace.next_block(block, want);
    if (got == 0) {
      break;
    }

    // ---- Cooperative cancellation (epoch boundary) ----
    if (cancel != nullptr && (i & (kCancelPollInterval - 1)) == 0 &&
        cancel->cancelled()) {
      throw CancelledError("simulation cancelled after " + std::to_string(i) +
                           " of " + std::to_string(max_instructions) +
                           " instructions");
    }

    for (std::size_t b = 0; b < got; ++b, ++i) {
      const MicroOp& op = block[b];
      // ---- Fetch (shared decisions, per-lane cycles) ----
      if (pending_redirect) {
        for (LockstepLane& lane : lanes) {
          lane.fetch_cycle = lane.redirect_cycle;
        }
        fetched_in_group = 0;
        last_fetch_line = UINT64_MAX; // refetch the line after redirect
        pending_redirect = false;
      }
      if (fetched_in_group >= cfg.fetch_width) {
        for (LockstepLane& lane : lanes) {
          ++lane.fetch_cycle;
        }
        fetched_in_group = 0;
      }
      const uint64_t fetch_line = op.pc / 64;
      if (fetch_line != last_fetch_line) {
        bool stall = false;
        for (std::size_t l = 0; l < nlanes; ++l) {
          const unsigned ilat = io.ifetch(l, op.pc, lanes[l].fetch_cycle);
          // The >1 stall decision is a shared L1I hit/miss outcome (see
          // header notes), so every lane agrees even when the stall
          // length differs.
          assert(l == 0 || (ilat > 1) == stall);
          if (ilat > 1) {
            // Stall beyond the pipelined 1-cycle hit.
            lanes[l].fetch_cycle += ilat - 1;
            stall = true;
          }
        }
        if (stall) {
          fetched_in_group = 0;
        }
        last_fetch_line = fetch_line;
      }
      ++fetched_in_group;

      const bool mem = is_mem(op.op);

      // ---- Branch resolution (shared structures, hoisted) ----
      // The predictor/BTB touch no lane state and no lane touches them, so
      // resolving before the per-lane scoreboard step reorders nothing
      // observable; only the per-lane redirect_cycle update below needs
      // the lane's completion cycle.
      bool mispredict = false;
      bool group_break = false;
      if (op.op == OpClass::branch) {
        const bool dir_pred = predictor.predict(op.pc);
        const bool dir_correct = predictor.update(op.pc, op.taken);
        bool target_ok = true;
        if (op.taken) {
          uint64_t predicted_target = 0;
          target_ok = btb.lookup(op.pc, predicted_target) &&
                      predicted_target == op.target;
          btb.update(op.pc, op.target);
        }
        (void)dir_pred;
        if (!dir_correct || (op.taken && !target_ok)) {
          mispredict = true;
        } else if (op.taken) {
          group_break = true;
        }
      }

      // ---- Per-lane scoreboard step ----
      // Everything the stream alone determines is computed once here —
      // ring slot indices, operand-check outcomes, unit class, execute
      // latency — so the lane loop is pure cycle arithmetic on lane state.
      const std::size_t slot = i % LockstepLane::kRing;
      const bool ruu_full = i >= cfg.ruu_size;
      const std::size_t ruu_slot =
          (i + LockstepLane::kRing - cfg.ruu_size) % LockstepLane::kRing;
      const bool lsq_full = mem && mem_op_count >= cfg.lsq_size;
      const std::size_t lsq_head_slot =
          lsq_full ? (mem_op_count - cfg.lsq_size) & lsq_mask : 0;
      const std::size_t lsq_tail_slot = mem_op_count & lsq_mask;
      const bool use_src1 = op.src1_dist != 0 &&
                            op.src1_dist < LockstepLane::kRing &&
                            op.src1_dist <= i;
      const std::size_t src1_slot =
          use_src1 ? (i - op.src1_dist) % LockstepLane::kRing : 0;
      const bool use_src2 = op.src2_dist != 0 &&
                            op.src2_dist < LockstepLane::kRing &&
                            op.src2_dist <= i;
      const std::size_t src2_slot =
          use_src2 ? (i - op.src2_dist) % LockstepLane::kRing : 0;
      const unsigned kind = LockstepLane::unit_kind(op.op);
      const unsigned exec_lat = op_latency(op.op);
      // Divide units are unpipelined and busy for the full latency;
      // everything else accepts a new op next cycle.
      const uint64_t book_lat =
          (op.op == OpClass::int_div || op.op == OpClass::fp_div) ? exec_lat : 1;

      for (std::size_t l = 0; l < nlanes; ++l) {
        LockstepLane& lane = lanes[l];

        // Dispatch: RUU/LSQ occupancy.
        uint64_t dispatch = lane.fetch_cycle + cfg.front_pipeline_depth;
        if (ruu_full) {
          dispatch = std::max(dispatch, lane.commit_ring_[ruu_slot]);
        }
        if (lsq_full) {
          dispatch = std::max(dispatch, lane.lsq_ring_[lsq_head_slot]);
        }

        // Operand readiness.
        uint64_t ready = dispatch;
        if (use_src1) {
          ready = std::max(ready, lane.ready_ring_[src1_slot]);
        }
        if (use_src2) {
          ready = std::max(ready, lane.ready_ring_[src2_slot]);
        }

        // Issue + execute.  Full bypassing: a consumer can issue the cycle
        // its last producer completes; instructions with no pending
        // operands wait one stage past dispatch.
        const uint64_t issue = lane.schedule_issue(
            kind, cfg.issue_width, std::max(ready, dispatch + 1), book_lat);
        uint64_t complete;
        if (op.op == OpClass::load) {
          complete = issue + io.dmem(l, op.mem_addr, false, issue);
        } else if (op.op == OpClass::store) {
          // Stores retire through the store buffer; the cache write happens
          // off the critical path but still updates cache and decay state.
          (void)io.dmem(l, op.mem_addr, true, issue);
          complete = issue + 1;
        } else {
          complete = issue + exec_lat;
        }

        if (mispredict) {
          lane.redirect_cycle =
              std::max(lane.redirect_cycle, complete + cfg.mispredict_redirect);
        }

        // Commit: in order, width-limited.
        uint64_t commit = std::max(complete + 1, lane.last_commit);
        if (commit == lane.last_commit) {
          if (++lane.committed_in_cycle >= cfg.commit_width) {
            ++commit;
            lane.committed_in_cycle = 0;
          }
        } else {
          lane.committed_in_cycle = 1;
        }
        lane.last_commit = commit;

        lane.ready_ring_[slot] = complete;
        lane.commit_ring_[slot] = commit;
        if (mem) {
          lane.lsq_ring_[lsq_tail_slot] = commit;
        }
        lane.cycles = commit;
      }

      ++instructions;
      if (op.op == OpClass::load) {
        ++loads;
      } else if (op.op == OpClass::store) {
        ++stores;
      }
      if (mem) {
        ++mem_op_count;
      }

      // ---- Shared front-end consequences of the branch ----
      if (mispredict) {
        pending_redirect = true;
      } else if (group_break) {
        // Correctly predicted taken branch: fetch group breaks.
        fetched_in_group = cfg.fetch_width;
        last_fetch_line = UINT64_MAX;
      }

      // ---- Wattch core-structure accounting (stream-determined) ----
      shared_core.fetched++;
      shared_core.renamed++;
      shared_core.window_inserts++;
      shared_core.wakeups++; // every completing op broadcasts its tag
      if (mem) {
        shared_core.lsq_inserts++;
      }
      shared_core.regfile_reads +=
          (op.src1_dist != 0 ? 1u : 0u) + (op.src2_dist != 0 ? 1u : 0u);
      switch (op.op) {
      case OpClass::int_mult:
      case OpClass::int_div:
        shared_core.mult_ops++;
        break;
      case OpClass::fp_alu:
      case OpClass::fp_mult:
      case OpClass::fp_div:
        shared_core.fp_ops++;
        break;
      case OpClass::branch:
        shared_core.branches++;
        shared_core.int_alu_ops++;
        break;
      default:
        shared_core.int_alu_ops++;
        break;
      }
      if (op.op != OpClass::store && op.op != OpClass::branch) {
        shared_core.regfile_writes++;
        shared_core.results++;
      }
    }

    if (got < want) {
      break; // end of stream (TraceSource::next_block contract)
    }
  }

  stats_out.clear();
  stats_out.resize(nlanes);
  for (std::size_t l = 0; l < nlanes; ++l) {
    RunStats& stats = stats_out[l];
    stats.instructions = instructions;
    stats.cycles = lanes[l].cycles;
    stats.loads = loads;
    stats.stores = stores;
    stats.branch = predictor.stats();
    if (wattch::Activity* act = io.activity(l)) {
      act->core += shared_core;
      act->core.cycles += stats.cycles;
    }
  }
}

} // namespace sim
