// Set-associative cache model (SimpleScalar-style, Table 2 configurations).
//
// True LRU replacement, write-back / write-allocate.  The cache exposes its
// per-line state (tag, valid, dirty, last-access cycle) so the
// leakage-control layer (src/leakctl) can deactivate lines, invalidate them
// (gated-Vss), and account active/standby residency.
//
// Address decomposition is precomputed at construction: power-of-two
// line sizes and set counts (every paper configuration) take a shift/mask
// fast path; other geometries are accepted and fall back to div/mod.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace sim {

/// Static configuration of one cache level.
struct CacheConfig {
  std::size_t size_bytes = 64 * 1024;
  std::size_t assoc = 2;
  std::size_t line_bytes = 64;
  unsigned hit_latency = 2;
  bool write_back = true;

  std::size_t lines() const { return size_bytes / line_bytes; }
  std::size_t sets() const { return lines() / assoc; }

  /// Reject inconsistent geometries with a std::invalid_argument naming
  /// the offending field.  Checked by the Cache constructor and by
  /// harness::ExperimentConfig::validate(); call it anywhere a geometry
  /// crosses an API boundary (an unchecked `sets()` of zero would
  /// otherwise surface as a division by zero deep in the hot path).
  void validate() const;

  bool operator==(const CacheConfig&) const = default;
};

/// Aggregate statistics.
struct CacheStats {
  unsigned long long reads = 0;
  unsigned long long writes = 0;
  unsigned long long read_misses = 0;
  unsigned long long write_misses = 0;
  unsigned long long writebacks = 0;
  unsigned long long invalidation_writebacks = 0; ///< from leakctl deactivation

  unsigned long long accesses() const { return reads + writes; }
  unsigned long long misses() const { return read_misses + write_misses; }
  double miss_rate() const {
    return accesses() ? static_cast<double>(misses()) / accesses() : 0.0;
  }
};

class Cache {
public:
  /// Per-line state, visible to the leakage-control layer.
  struct Line {
    uint64_t tag = 0;
    uint64_t last_access_cycle = 0;
    uint32_t lru = 0; ///< higher = more recently used
    bool valid = false;
    bool dirty = false;
  };

  /// Outcome of one access.
  struct AccessResult {
    bool hit = false;
    bool writeback = false;       ///< a dirty victim was evicted
    uint64_t writeback_addr = 0;  ///< line address of that victim
    std::size_t set = 0;
    std::size_t way = 0; ///< way hit or filled
  };

  /// An address split into its (set, tag) pair.  Decomposition depends
  /// only on the geometry, so a batched executor driving K same-geometry
  /// replicas can decompose once and fan the pair out (see
  /// harness/batched.h).
  struct Decomposed {
    std::size_t set = 0;
    uint64_t tag = 0;
  };

  explicit Cache(const CacheConfig& cfg);

  /// Look up and, on miss, fill (victim selected by LRU).  @p is_write
  /// marks the line dirty on hit or fill (write-allocate).
  AccessResult access(uint64_t addr, bool is_write, uint64_t cycle);

  /// access() with the shift/mask (or div/mod) work hoisted out: @p d
  /// must be decompose(addr) for *this cache's geometry*.  The batched
  /// hot loop pays the decomposition once per trace record instead of
  /// once per replica.
  AccessResult access_decomposed(uint64_t addr, const Decomposed& d,
                                 bool is_write, uint64_t cycle);

  /// access() when the caller has already found the matching way (a
  /// ControlledCache access pre-scans the set anyway): applies the same
  /// hit-path mutations — LRU touch, dirty mark, stats — without
  /// rescanning the ways.  @p way must hold a valid line whose tag
  /// matches the access.
  AccessResult access_known_hit(std::size_t set, std::size_t way,
                                bool is_write, uint64_t cycle);

  Decomposed decompose(uint64_t addr) const {
    return {set_index(addr), tag_of(addr)};
  }

  /// Look up without fill or LRU update (for inspection / adaptive
  /// controllers that probe tags).
  bool probe(uint64_t addr) const;

  /// Invalidate one line (used by gated-Vss deactivation).  Returns true
  /// if the line was dirty (a writeback is required).
  bool invalidate(std::size_t set, std::size_t way);

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  const Line& line(std::size_t set, std::size_t way) const {
    assert(set < sets_ && way < cfg_.assoc);
    return lines_[set * cfg_.assoc + way];
  }
  std::size_t set_index(uint64_t addr) const {
    if (pow2_) {
      return static_cast<std::size_t>((addr >> line_shift_) & set_mask_);
    }
    return static_cast<std::size_t>((addr / cfg_.line_bytes) % sets_);
  }
  uint64_t tag_of(uint64_t addr) const {
    if (pow2_) {
      return addr >> tag_shift_;
    }
    return (addr / cfg_.line_bytes) / sets_;
  }
  uint64_t line_addr(std::size_t set, std::size_t way) const;

private:
  Line& line_mut(std::size_t set, std::size_t way) {
    assert(set < sets_ && way < cfg_.assoc);
    return lines_[set * cfg_.assoc + way];
  }

  CacheConfig cfg_;
  CacheStats stats_;
  std::vector<Line> lines_;
  uint32_t lru_clock_ = 0;
  // Precomputed decomposition (constructor): hot-path set_index/tag_of
  // must not divide.
  std::size_t sets_ = 1;
  bool pow2_ = false;
  unsigned line_shift_ = 0;
  unsigned tag_shift_ = 0; ///< line_shift_ + log2(sets)
  uint64_t set_mask_ = 0;
};

} // namespace sim
