#include "leakctl/predictor_decay.h"

#include <algorithm>

#include "workload/generator.h"

namespace leakctl {

RowDomain::RowDomain(std::size_t rows, uint64_t interval)
    : counters_(rows, interval, DecayPolicy::noaccess),
      event_cycle_(rows, 0),
      off_(rows, 0) {}

void RowDomain::advance(uint64_t cycle) {
  max_cycle_ = std::max(max_cycle_, cycle);
  counters_.advance(max_cycle_, [this](std::size_t row, uint64_t boundary) {
    active_cycles_ += boundary > event_cycle_[row]
                          ? boundary - event_cycle_[row]
                          : 0;
    event_cycle_[row] = boundary;
    off_[row] = 1;
    ++decays_;
  });
}

bool RowDomain::touch(std::size_t row, uint64_t cycle) {
  advance(cycle);
  const bool was_off = off_[row] != 0;
  if (was_off) {
    standby_cycles_ +=
        cycle > event_cycle_[row] ? cycle - event_cycle_[row] : 0;
    event_cycle_[row] = cycle;
    off_[row] = 0;
    ++wakes_;
  }
  counters_.on_access(row);
  return was_off;
}

void RowDomain::finalize(uint64_t end_cycle) {
  advance(end_cycle);
  for (std::size_t row = 0; row < event_cycle_.size(); ++row) {
    const uint64_t span =
        max_cycle_ > event_cycle_[row] ? max_cycle_ - event_cycle_[row] : 0;
    (off_[row] ? standby_cycles_ : active_cycles_) += span;
  }
}

DecayedPredictor::DecayedPredictor(const PredictorDecayConfig& cfg)
    : cfg_(cfg),
      bimod_(sim::HybridPredictor::bimod_entries() / cfg.counters_per_row,
             cfg.decay_interval),
      gag_(sim::HybridPredictor::gag_entries() / cfg.counters_per_row,
           cfg.decay_interval),
      chooser_(sim::HybridPredictor::chooser_entries() / cfg.counters_per_row,
               cfg.decay_interval),
      btb_rows_(sim::Btb::sets() / cfg.btb_sets_per_row, cfg.decay_interval) {}

bool DecayedPredictor::update(uint64_t pc, bool outcome, uint64_t cycle) {
  const std::size_t cpr = cfg_.counters_per_row;
  const std::size_t bimod_idx =
      (pc >> 2) % sim::HybridPredictor::bimod_entries();
  const std::size_t gag_idx = history_ % sim::HybridPredictor::gag_entries();
  const std::size_t chooser_idx =
      (pc >> 2) % sim::HybridPredictor::chooser_entries();

  // A touch to a deactivated row wakes it with power-on contents: the
  // learned state is gone (gated-Vss semantics), so the wrapped tables are
  // reset lazily here.
  if (bimod_.touch(bimod_idx / cpr, cycle)) {
    predictor_.reset_bimod((bimod_idx / cpr) * cpr, cpr);
  }
  if (gag_.touch(gag_idx / cpr, cycle)) {
    predictor_.reset_gag((gag_idx / cpr) * cpr, cpr);
  }
  if (chooser_.touch(chooser_idx / cpr, cycle)) {
    predictor_.reset_chooser((chooser_idx / cpr) * cpr, cpr);
  }
  if (outcome) {
    const std::size_t set = (pc >> 2) % sim::Btb::sets();
    const std::size_t row = set / cfg_.btb_sets_per_row;
    if (btb_rows_.touch(row, cycle)) {
      btb_.invalidate_sets(row * cfg_.btb_sets_per_row,
                           cfg_.btb_sets_per_row);
    }
  }

  const bool correct = predictor_.update(pc, outcome);
  history_ = ((history_ << 1) | (outcome ? 1u : 0u)) &
             ((1u << sim::HybridPredictor::history_bits()) - 1u);
  return correct;
}

void DecayedPredictor::finalize(uint64_t end_cycle) {
  bimod_.finalize(end_cycle);
  gag_.finalize(end_cycle);
  chooser_.finalize(end_cycle);
  btb_rows_.finalize(end_cycle);
}

double DecayedPredictor::turnoff_ratio() const {
  const unsigned long long standby =
      bimod_.standby_cycles() + gag_.standby_cycles() +
      chooser_.standby_cycles() + btb_rows_.standby_cycles();
  const unsigned long long total =
      standby + bimod_.active_cycles() + gag_.active_cycles() +
      chooser_.active_cycles() + btb_rows_.active_cycles();
  return total ? static_cast<double>(standby) / total : 0.0;
}

unsigned long long DecayedPredictor::rows_decayed() const {
  return bimod_.decays() + gag_.decays() + chooser_.decays() +
         btb_rows_.decays();
}

unsigned long long DecayedPredictor::rows_reactivated() const {
  return bimod_.wakes() + gag_.wakes() + chooser_.wakes() + btb_rows_.wakes();
}

PredictorDecayResult run_predictor_decay_experiment(
    const workload::BenchmarkProfile& profile, const PredictorDecayConfig& cfg,
    const hotleakage::LeakageModel& model, uint64_t instructions,
    double cycles_per_instruction, uint64_t seed) {
  workload::Generator gen(profile, seed);
  sim::HybridPredictor plain;
  DecayedPredictor decayed(cfg);

  sim::MicroOp op;
  uint64_t end_cycle = 0;
  for (uint64_t i = 0; i < instructions && gen.next(op); ++i) {
    if (op.op != sim::OpClass::branch) {
      continue;
    }
    const uint64_t cycle =
        static_cast<uint64_t>(static_cast<double>(i) * cycles_per_instruction);
    plain.update(op.pc, op.taken);
    decayed.update(op.pc, op.taken, cycle);
    end_cycle = cycle;
  }
  decayed.finalize(end_cycle);

  PredictorDecayResult result;
  result.plain_mispredict_rate = plain.stats().mispredict_rate();
  result.decayed_mispredict_rate = decayed.stats().mispredict_rate();
  result.turnoff_ratio = decayed.turnoff_ratio();
  // Gross leakage saved in the predictor SRAM: standby residency weighted
  // by what gated-Vss leaves behind.
  const double gated_residual =
      model.standby_ratio(hotleakage::StandbyMode::gated);
  result.gross_leakage_savings =
      result.turnoff_ratio * (1.0 - gated_residual);
  return result;
}

} // namespace leakctl
