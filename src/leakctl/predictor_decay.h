// Decay applied to branch-predictor structures (extension).
//
// The paper's related work (Hu et al., "Applying decay strategies to branch
// predictors for leakage energy savings" [17]) decays rows of the predictor
// tables and the BTB exactly like cache lines: a row idle for the decay
// interval is deactivated; an access to a deactivated row reactivates it,
// loses its learned state (gated-Vss style), and falls back to the default
// prediction until retrained.  HotLeakage's generic abstraction covers this
// — a row is just another SRAM block.
//
// This module wraps the Table 2 hybrid predictor + BTB with row decay and
// provides a self-contained experiment comparing the decayed predictor
// against the plain one on a workload's branch stream.
#pragma once

#include <cstdint>
#include <vector>

#include "hotleakage/model.h"
#include "leakctl/decay.h"
#include "sim/branch.h"
#include "workload/profile.h"

namespace leakctl {

struct PredictorDecayConfig {
  uint64_t decay_interval = 65536; ///< predictor state is long-lived: use
                                   ///< longer intervals than D-cache lines
  unsigned counters_per_row = 64;  ///< SRAM row granularity of the tables
  unsigned btb_sets_per_row = 8;
};

/// One decayable SRAM-row domain (a predictor table or the BTB): decay
/// counters plus exact active/standby residency accounting.
class RowDomain {
public:
  RowDomain(std::size_t rows, uint64_t interval);

  /// Advance decay to @p cycle.
  void advance(uint64_t cycle);
  /// Touch @p row at @p cycle; returns true if the row was deactivated
  /// (its contents were lost and the caller must reset the state).
  bool touch(std::size_t row, uint64_t cycle);
  void finalize(uint64_t end_cycle);

  unsigned long long active_cycles() const { return active_cycles_; }
  unsigned long long standby_cycles() const { return standby_cycles_; }
  unsigned long long decays() const { return decays_; }
  unsigned long long wakes() const { return wakes_; }
  std::size_t rows() const { return event_cycle_.size(); }

private:
  DecayCounters counters_;
  std::vector<uint64_t> event_cycle_;
  std::vector<uint8_t> off_;
  unsigned long long active_cycles_ = 0;
  unsigned long long standby_cycles_ = 0;
  unsigned long long decays_ = 0;
  unsigned long long wakes_ = 0;
  uint64_t max_cycle_ = 0;
};

/// Hybrid predictor + BTB with gated-Vss row decay.
class DecayedPredictor {
public:
  explicit DecayedPredictor(const PredictorDecayConfig& cfg);

  /// Predict + train, with @p cycle driving the decay clock.  Returns true
  /// if the direction prediction was correct.
  bool update(uint64_t pc, bool outcome, uint64_t cycle);

  /// Close residency accounting.
  void finalize(uint64_t end_cycle);

  const sim::BranchStats& stats() const { return predictor_.stats(); }
  /// Fraction of table-row-cycles spent deactivated, over all domains.
  double turnoff_ratio() const;
  unsigned long long rows_decayed() const;
  unsigned long long rows_reactivated() const;

private:
  PredictorDecayConfig cfg_;
  sim::HybridPredictor predictor_;
  sim::Btb btb_;
  RowDomain bimod_;
  RowDomain gag_;
  RowDomain chooser_;
  RowDomain btb_rows_;
  uint64_t history_ = 0; ///< mirror of the GAg history for row indexing
};

/// Outcome of the predictor-decay experiment on one benchmark.
struct PredictorDecayResult {
  double plain_mispredict_rate = 0.0;
  double decayed_mispredict_rate = 0.0;
  double turnoff_ratio = 0.0;
  /// Gross predictor-leakage savings fraction (standby residency weighted
  /// by the gated-Vss residual); extra mispredicts are reported separately
  /// since this experiment has no timing model.
  double gross_leakage_savings = 0.0;
};

/// Feed @p instructions of the benchmark's branch stream through a plain
/// and a decayed predictor at an approximate @p cycles_per_instruction.
PredictorDecayResult run_predictor_decay_experiment(
    const workload::BenchmarkProfile& profile, const PredictorDecayConfig& cfg,
    const hotleakage::LeakageModel& model, uint64_t instructions,
    double cycles_per_instruction = 1.0, uint64_t seed = 1);

} // namespace leakctl
