#include "leakctl/energy.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace leakctl {

hotleakage::CacheGeometry geometry_of(const sim::CacheConfig& cfg,
                                      std::size_t physical_address_bits) {
  hotleakage::CacheGeometry geom;
  geom.lines = cfg.lines();
  geom.line_bytes = cfg.line_bytes;
  geom.assoc = cfg.assoc;
  const std::size_t offset_bits =
      static_cast<std::size_t>(std::log2(static_cast<double>(cfg.line_bytes)));
  const std::size_t index_bits =
      static_cast<std::size_t>(std::log2(static_cast<double>(cfg.sets())));
  const std::size_t tag = physical_address_bits - offset_bits - index_bits;
  geom.tag_bits = tag + 3; // + valid, dirty, LRU state
  return geom;
}

EnergyBreakdown compute_energy(const hotleakage::LeakageModel& model,
                               const hotleakage::CacheGeometry& geom,
                               const wattch::PowerParams& power,
                               const TechniqueParams& technique,
                               const RunPair& runs, double clock_hz,
                               const faults::FaultConfig& fault_cfg) {
  if (clock_hz <= 0.0) {
    throw std::invalid_argument("compute_energy: clock must be positive");
  }
  using hotleakage::StandbyMode;
  const double dt = 1.0 / clock_hz;
  const double t_base = static_cast<double>(runs.base_run.cycles) * dt;
  const double t_tech = static_cast<double>(runs.tech_run.cycles) * dt;

  const double p_data_active = model.data_line_power(geom, StandbyMode::active);
  const double p_tag_active = model.tag_line_power(geom, StandbyMode::active);
  const double p_data_standby = model.data_line_power(geom, technique.mode);
  const double p_tag_standby = model.tag_line_power(geom, technique.mode);
  const double p_edge = model.edge_logic_power(geom);
  const double lines = static_cast<double>(geom.lines);

  EnergyBreakdown e;
  e.baseline_leakage_j =
      (lines * (p_data_active + p_tag_active) + p_edge) * t_base;

  const ControlStats& c = runs.control;
  e.technique_leakage_j =
      (p_data_active * static_cast<double>(c.data_active_cycles) +
       p_data_standby * static_cast<double>(c.data_standby_cycles) +
       p_tag_active * static_cast<double>(c.tag_active_cycles) +
       p_tag_standby * static_cast<double>(c.tag_standby_cycles)) *
          dt +
      p_edge * t_tech;
  e.decay_hw_leakage_j = model.decay_hardware_power(geom) * t_tech;

  const double dyn_tech = runs.tech_activity.energy(power);
  const double dyn_base = runs.base_activity.energy(power);
  e.extra_dynamic_j = dyn_tech - dyn_base;

  if (fault_cfg.enabled && fault_cfg.protection != faults::Protection::none) {
    const faults::ProtectionParams prot =
        faults::ProtectionParams::for_scheme(fault_cfg.protection);
    const double check_bits = static_cast<double>(
        prot.check_bits_per_line(geom.data_bits_per_line()));
    // Check bits live in the data array and follow its standby mode.
    const double p_check_active =
        model.sram_power(check_bits, StandbyMode::active);
    const double p_check_standby = model.sram_power(check_bits, technique.mode);
    e.protection_leakage_j =
        (p_check_active * static_cast<double>(c.data_active_cycles) +
         p_check_standby * static_cast<double>(c.data_standby_cycles)) *
        dt;
    e.protection_dynamic_j =
        static_cast<double>(c.accesses()) * prot.check_energy_factor *
            power.l1_read +
        static_cast<double>(c.fault_corrections) *
            prot.correction_energy_factor * power.l1_read;
  }

  e.gross_savings_j = e.baseline_leakage_j - e.technique_leakage_j;
  e.net_savings_j = e.gross_savings_j - e.decay_hw_leakage_j -
                    e.extra_dynamic_j - e.protection_leakage_j -
                    e.protection_dynamic_j;
  e.net_savings_frac =
      e.baseline_leakage_j > 0.0 ? e.net_savings_j / e.baseline_leakage_j : 0.0;
  e.perf_loss_frac =
      runs.base_run.cycles
          ? (static_cast<double>(runs.tech_run.cycles) -
             static_cast<double>(runs.base_run.cycles)) /
                static_cast<double>(runs.base_run.cycles)
          : 0.0;
  e.turnoff_ratio = c.turnoff_ratio();
  return e;
}

HierarchyEnergy compute_hierarchy_energy(const hotleakage::LeakageModel& model,
                                         const std::vector<LevelInput>& levels,
                                         const RunPair& runs,
                                         const wattch::PowerParams& power,
                                         double clock_hz) {
  if (clock_hz <= 0.0) {
    throw std::invalid_argument(
        "compute_hierarchy_energy: clock must be positive");
  }
  using hotleakage::StandbyMode;
  const double dt = 1.0 / clock_hz;
  const double t_base = static_cast<double>(runs.base_run.cycles) * dt;
  const double t_tech = static_cast<double>(runs.tech_run.cycles) * dt;

  HierarchyEnergy h;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelInput& in = levels[i];
    const double data_bits =
        static_cast<double>(in.geom.data_bits_per_line());
    const double tag_bits = static_cast<double>(in.geom.tag_bits);
    const double lines = static_cast<double>(in.geom.lines);
    // Totals come straight from sram_power (so the controlled-L1 numbers
    // match compute_energy bit for bit); the split only supplies the gate
    // share.  Edge logic is gate-dominated differently (wide devices, no
    // storage), so it stays out of the gate decomposition.
    const double p_data_active = model.data_line_power(in.geom,
                                                       StandbyMode::active);
    const double p_tag_active = model.tag_line_power(in.geom,
                                                     StandbyMode::active);
    const double p_edge = model.edge_logic_power(in.geom);
    const double g_data_active =
        model.sram_power_split(data_bits, StandbyMode::active).gate_w;
    const double g_tag_active =
        model.sram_power_split(tag_bits, StandbyMode::active).gate_w;

    LevelEnergy le;
    le.name = in.name;
    le.controlled = in.controlled;
    le.baseline_leakage_j =
        (lines * (p_data_active + p_tag_active) + p_edge) * t_base;
    le.baseline_gate_j = lines * (g_data_active + g_tag_active) * t_base;

    if (in.controlled) {
      if (in.control == nullptr) {
        throw std::invalid_argument("compute_hierarchy_energy: level '" +
                                    in.name +
                                    "' is controlled but has no ControlStats");
      }
      const ControlStats& c = *in.control;
      const double p_data_standby =
          model.data_line_power(in.geom, in.technique.mode);
      const double p_tag_standby =
          model.tag_line_power(in.geom, in.technique.mode);
      const double g_data_standby =
          model.sram_power_split(data_bits, in.technique.mode).gate_w;
      const double g_tag_standby =
          model.sram_power_split(tag_bits, in.technique.mode).gate_w;
      le.technique_leakage_j =
          (p_data_active * static_cast<double>(c.data_active_cycles) +
           p_data_standby * static_cast<double>(c.data_standby_cycles) +
           p_tag_active * static_cast<double>(c.tag_active_cycles) +
           p_tag_standby * static_cast<double>(c.tag_standby_cycles)) *
              dt +
          p_edge * t_tech;
      le.technique_gate_j =
          (g_data_active * static_cast<double>(c.data_active_cycles) +
           g_data_standby * static_cast<double>(c.data_standby_cycles) +
           g_tag_active * static_cast<double>(c.tag_active_cycles) +
           g_tag_standby * static_cast<double>(c.tag_standby_cycles)) *
          dt;
      le.decay_hw_leakage_j = model.decay_hardware_power(in.geom) * t_tech;
      if (in.faults.enabled &&
          in.faults.protection != faults::Protection::none) {
        const faults::ProtectionParams prot =
            faults::ProtectionParams::for_scheme(in.faults.protection);
        const double check_bits = static_cast<double>(
            prot.check_bits_per_line(in.geom.data_bits_per_line()));
        const double p_check_active =
            model.sram_power(check_bits, StandbyMode::active);
        const double p_check_standby =
            model.sram_power(check_bits, in.technique.mode);
        // Check/encode energy is priced against this level's access
        // energy: the L1 read for the outermost level, the L2 access
        // deeper down.
        const double access_j = i == 0 ? power.l1_read : power.l2_access;
        le.protection_leakage_j =
            (p_check_active * static_cast<double>(c.data_active_cycles) +
             p_check_standby * static_cast<double>(c.data_standby_cycles)) *
            dt;
        le.protection_dynamic_j =
            static_cast<double>(c.accesses()) * prot.check_energy_factor *
                access_j +
            static_cast<double>(c.fault_corrections) *
                prot.correction_energy_factor * access_j;
      }
      le.induced_misses = c.induced_misses;
      le.slow_hits = c.slow_hits;
      le.wakes = c.wakes;
      le.decays = c.decays;
      le.decay_writebacks = c.decay_writebacks;
      le.turnoff_ratio = c.turnoff_ratio();
    } else {
      // A plain level is fully active for the whole (possibly slower)
      // technique run: it saves nothing and pays for the extra runtime.
      le.technique_leakage_j =
          (lines * (p_data_active + p_tag_active) + p_edge) * t_tech;
      le.technique_gate_j = lines * (g_data_active + g_tag_active) * t_tech;
    }

    le.net_savings_j = le.baseline_leakage_j - le.technique_leakage_j -
                       le.decay_hw_leakage_j - le.protection_leakage_j -
                       le.protection_dynamic_j;
    h.total_baseline_leakage_j += le.baseline_leakage_j;
    h.total_technique_leakage_j += le.technique_leakage_j;
    h.total_gate_leakage_j += le.technique_gate_j;
    h.total_net_savings_j += le.net_savings_j;
    h.levels.push_back(std::move(le));
  }

  h.extra_dynamic_j =
      runs.tech_activity.energy(power) - runs.base_activity.energy(power);
  h.total_net_savings_j -= h.extra_dynamic_j;
  h.total_net_savings_frac = h.total_baseline_leakage_j > 0.0
                                 ? h.total_net_savings_j /
                                       h.total_baseline_leakage_j
                                 : 0.0;
  return h;
}

} // namespace leakctl
