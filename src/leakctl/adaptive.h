// Adaptive decay-interval control (paper Sec. 5.4).
//
// The paper identifies three adaptive approaches; we implement the
// formal-feedback technique of Velusamy et al. [31]: a small state machine
// that periodically observes the induced-miss (or slow-hit) rate through
// the awake tags and multiplicatively adjusts the decay interval to hold
// that rate at a setpoint.  Adaptivity matters far more for gated-Vss,
// whose best static intervals spread over 1 k - 64 k cycles (Table 3),
// than for drowsy, which is insensitive to the interval.
//
// The oracle "best per-benchmark interval" of Figs. 12-13 is not a runtime
// controller; the harness produces it by sweeping intervals
// (harness::best_interval_sweep).
#pragma once

#include <cstdint>

#include "leakctl/controlled_cache.h"

namespace leakctl {

struct FeedbackConfig {
  uint64_t window_cycles = 50000;   ///< observation window
  double target_rate = 5.0e-4;      ///< induced events per cycle setpoint
  double deadband = 0.5;            ///< +/- fraction around the setpoint
  uint64_t min_interval = 1024;
  uint64_t max_interval = 65536;
  double gain = 2.0;                ///< multiplicative step
};

/// Integral-style multiplicative feedback controller.  Wire it to a
/// ControlledCache via attach(); it installs itself as the window hook.
class FeedbackController {
public:
  explicit FeedbackController(FeedbackConfig cfg = {});

  /// Install on @p cc.  The controller must outlive the cache's run.
  void attach(ControlledCache& cc);

  /// One observation window (exposed for unit tests).
  void on_window(ControlledCache& cc, uint64_t boundary_cycle);

  uint64_t adjustments_up() const { return ups_; }
  uint64_t adjustments_down() const { return downs_; }

private:
  FeedbackConfig cfg_;
  uint64_t ups_ = 0;
  uint64_t downs_ = 0;
};

} // namespace leakctl
