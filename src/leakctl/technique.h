// Leakage-control technique descriptors (paper Sec. 2).
//
// The generic abstraction: a technique puts individual cache lines (and,
// by default, their tags) into a standby mode after a decay interval of
// idleness.  A technique is characterized by
//   * its standby circuit (drowsy supply / gated-Vss footer / RBB), which
//     HotLeakage prices via hotleakage::StandbyMode;
//   * whether standby preserves state (drowsy, RBB) or destroys it
//     (gated-Vss);
//   * its wake and settle latencies (paper Table 1: low->high is 3 cycles
//     for both; high->low is 3 for drowsy but 30 for gated-Vss — the source
//     of gated-Vss's sensitivity to short decay intervals);
//   * whether tags decay with the data (paper Sec. 2.3/5.3: both schemes
//     decay tags in the main experiments).
#pragma once

#include <string_view>

#include "hotleakage/model.h"

namespace leakctl {

/// Decay policies from the drowsy-cache paper (Sec. 2.3), plus the
/// multitasking cache-coloring scheme (Mittal): instead of per-line idle
/// counters, a shared level is set-partitioned by tenant and an idle
/// tenant's whole partition is gated/drowsed at context-switch time.
enum class DecayPolicy {
  noaccess,     ///< per-line 2-bit counters + global counter (used throughout)
  simple,       ///< all lines deactivated every interval, no access history
  tenant_color, ///< set-partition by tenant; standby an idle tenant's colors
                ///< at switch-out (shared levels only; needs
                ///< ControlledCacheConfig::tenants >= 1 and a multi-tenant
                ///< trace, see sim/tenant.h)
};

struct TechniqueParams {
  std::string_view name;
  hotleakage::StandbyMode mode = hotleakage::StandbyMode::drowsy;
  bool state_preserving = true;
  bool decay_tags = true;

  /// Extra cycles to access a standby line whose state survived (slow hit);
  /// only meaningful for state-preserving techniques.  With decayed tags
  /// the tags must wake before they can even be checked (paper: "at least
  /// three cycles").
  unsigned wake_extra_tags_decayed = 3;
  unsigned wake_extra_tags_awake = 1;

  /// Extra cycles a *true* miss pays before the L2 access can start, when
  /// the set holds standby lines.  Drowsy must wake and check the tags
  /// first; gated-Vss knows standby ways cannot hit and starts L2
  /// immediately (the Sec. 5.1 "gated is faster on true misses" effect).
  unsigned true_miss_extra_tags_decayed = 3;

  /// Settling times (Table 1), in cycles.
  unsigned settle_to_low = 3;  ///< high-leak -> low-leak transition
  unsigned settle_to_high = 3; ///< low-leak -> high-leak transition

  /// Built-in techniques.
  static TechniqueParams drowsy();
  static TechniqueParams gated_vss();
  static TechniqueParams rbb();

  /// Member-wise; `name` compares by content (string_view ==), so two
  /// independently built drowsy() descriptors are equal.
  bool operator==(const TechniqueParams&) const = default;
};

} // namespace leakctl
