// A cache level wrapped with a leakage-control technique (paper Sec. 2.3).
//
// This is the paper's central artifact: a sim::DataPort that interposes the
// decay machinery between the core and the L1 D-cache, classifies every
// access (normal hit / slow hit / induced miss / true miss), injects the
// technique's latencies, and keeps exact per-line active/standby residency
// integrals for the energy accounting in energy.h.
//
// Classification:
//   * drowsy (state-preserving): a standby line still hits, paying the wake
//     penalty — a *slow hit*.  A true miss additionally pays the tag-wake
//     penalty when tags are decayed (wake, check, then go to L2).
//   * gated-Vss (non-state-preserving): deactivation invalidates the line
//     (dirty lines are written back at deactivation time).  A later access
//     that would have hit is an *induced miss* (full L2 access); an access
//     that would have missed anyway is a *true miss*, and is served at the
//     plain miss latency — standby ways are known misses, so no tag wake is
//     needed (the Sec. 5.1 effect that makes gated faster on true misses).
//
// Induced-vs-true classification for gated-Vss uses ghost tags: each
// deactivated way remembers its tag until the next fill into its set, at
// which point LRU would have evicted the (long-idle) line anyway.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "faults/fault_injector.h"
#include "leakctl/decay.h"
#include "leakctl/technique.h"
#include "sim/hierarchy.h"
#include "sim/tenant.h"

namespace leakctl {

/// Which hierarchy level a ControlledCache instance plays.  Decay logic is
/// level-agnostic; the role only selects which wattch::Activity counters the
/// instance charges (l1_reads/l1_writes vs l2_accesses), so a controlled L2
/// is priced like the plain CacheLevel it replaces rather than like an L1.
enum class LevelRole { l1d, l2 };

struct ControlledCacheConfig {
  sim::CacheConfig cache;
  LevelRole role = LevelRole::l1d;
  TechniqueParams technique = TechniqueParams::drowsy();
  DecayPolicy policy = DecayPolicy::noaccess;
  uint64_t decay_interval = 4096;
  /// Decay implementation: the event-driven timing wheel (default) or the
  /// naive per-epoch scan kept as the equivalence/benchmark oracle.  Both
  /// produce bit-identical statistics (see tests/test_decay_equivalence).
  DecayEngine decay_engine = DecayEngine::event;
  /// Soft-error injection + protection (disabled by default).  Rates are
  /// effective per-bit-cycle probabilities at the operating point; standby
  /// faults only apply to state-preserving techniques (gated-Vss standby
  /// holds no state to corrupt).
  faults::FaultConfig faults;
  /// Number of tenants sharing this level (0 = single-tenant: no
  /// per-tenant tracking, no behavioral change).  When nonzero, each
  /// access's tenant id is decoded from the address's high tag bits
  /// (sim/tenant.h) and per-tenant occupancy / classification stats are
  /// kept alongside the shared ControlStats.  DecayPolicy::tenant_color
  /// additionally set-partitions the cache: tenant t owns a contiguous
  /// range of sets ("colors"), its accesses are remapped injectively into
  /// that partition, and a context switch (first access by a different
  /// tenant) puts every line outside the incoming tenant's partition into
  /// standby — drowsy colors wake as slow hits, gated colors resurface as
  /// induced misses, all through the existing classification machinery.
  unsigned tenants = 0;
};

/// Access classification and residency statistics for one run.
struct ControlStats {
  unsigned long long hits = 0;           ///< active-line hits
  unsigned long long slow_hits = 0;      ///< standby hits (state-preserving)
  unsigned long long induced_misses = 0; ///< standby destroyed useful data
  unsigned long long true_misses = 0;
  unsigned long long true_misses_on_standby_set = 0; ///< paid/saved tag wake
  unsigned long long decays = 0;         ///< active -> standby transitions
  unsigned long long wakes = 0;          ///< standby -> active transitions
  unsigned long long decay_writebacks = 0;
  unsigned long long counter_ticks = 0;
  /// Residency integrals in line-cycles.
  unsigned long long data_active_cycles = 0;
  unsigned long long data_standby_cycles = 0;
  unsigned long long tag_active_cycles = 0;
  unsigned long long tag_standby_cycles = 0;

  /// Soft-error bookkeeping (all zero when fault injection is off).
  unsigned long long faults_injected = 0;   ///< bit flips materialized
  unsigned long long fault_checks = 0;      ///< residency spans examined
  unsigned long long fault_detections = 0;  ///< parity / SECDED-DED raises
  unsigned long long fault_corrections = 0; ///< SECDED words fixed in place
  unsigned long long fault_recoveries = 0;  ///< clean-line refetches from L2
  unsigned long long fault_corruptions_detected = 0; ///< detected, dirty: lost
  unsigned long long fault_corruptions_silent = 0;   ///< consumed undetected

  /// All data-corruption events, detected or not.
  unsigned long long corruptions() const {
    return fault_corruptions_detected + fault_corruptions_silent;
  }

  unsigned long long accesses() const {
    return hits + slow_hits + induced_misses + true_misses;
  }
  /// Fraction of line-cycles spent in standby (the paper's turnoff ratio).
  double turnoff_ratio() const {
    const unsigned long long total = data_active_cycles + data_standby_cycles;
    return total ? static_cast<double>(data_standby_cycles) / total : 0.0;
  }

  /// Visit every counter as a (name, value) pair, in declaration order.
  /// The single source of truth for serialization: the JSON export, the
  /// parse side, and the field-by-field regression tests all iterate this
  /// list, so a new counter added here is automatically round-tripped.
  template <typename F> void for_each_field(F&& f) const {
    const_cast<ControlStats*>(this)->for_each_field(
        [&f](const char* name, unsigned long long& v) {
          f(name, static_cast<const unsigned long long&>(v));
        });
  }
  template <typename F> void for_each_field(F&& f) {
    f("hits", hits);
    f("slow_hits", slow_hits);
    f("induced_misses", induced_misses);
    f("true_misses", true_misses);
    f("true_misses_on_standby_set", true_misses_on_standby_set);
    f("decays", decays);
    f("wakes", wakes);
    f("decay_writebacks", decay_writebacks);
    f("counter_ticks", counter_ticks);
    f("data_active_cycles", data_active_cycles);
    f("data_standby_cycles", data_standby_cycles);
    f("tag_active_cycles", tag_active_cycles);
    f("tag_standby_cycles", tag_standby_cycles);
    f("faults_injected", faults_injected);
    f("fault_checks", fault_checks);
    f("fault_detections", fault_detections);
    f("fault_corrections", fault_corrections);
    f("fault_recoveries", fault_recoveries);
    f("fault_corruptions_detected", fault_corruptions_detected);
    f("fault_corruptions_silent", fault_corruptions_silent);
  }
};

/// Per-tenant access and residency statistics for one run of a shared
/// (multi-tenant) level — the fairness breakdown behind the schema-4
/// "tenants" report section.  Kept separate from ControlStats: these are
/// per-tenant rows, not shared scalars.
struct TenantStats {
  unsigned long long accesses = 0;
  unsigned long long hits = 0;           ///< active-line hits
  unsigned long long slow_hits = 0;      ///< standby hits (state-preserving)
  unsigned long long induced_misses = 0; ///< standby destroyed useful data
  unsigned long long true_misses = 0;
  unsigned long long fills = 0;          ///< lines this tenant filled
  unsigned long long switch_outs = 0;    ///< times this tenant was switched
                                         ///< away from (coloring gates its
                                         ///< partition then)
  unsigned long long colors = 0;         ///< sets owned under tenant_color
                                         ///< (0 when uncolored)
  /// Residency integrals in line-cycles.  Occupancy runs from a line's
  /// fill by this tenant to the next fill by a different tenant (or end
  /// of run) — deactivation does not end ownership.  Standby cycles are
  /// attributed to the partition owner under coloring, and to the
  /// filling tenant otherwise (never-filled standby lines go
  /// unattributed).
  unsigned long long occupancy_line_cycles = 0;
  unsigned long long standby_line_cycles = 0;

  /// Visit every counter as a (name, value) pair, in declaration order —
  /// the single source of truth for serialization, exactly like
  /// ControlStats::for_each_field.
  template <typename F> void for_each_field(F&& f) const {
    const_cast<TenantStats*>(this)->for_each_field(
        [&f](const char* name, unsigned long long& v) {
          f(name, static_cast<const unsigned long long&>(v));
        });
  }
  template <typename F> void for_each_field(F&& f) {
    f("accesses", accesses);
    f("hits", hits);
    f("slow_hits", slow_hits);
    f("induced_misses", induced_misses);
    f("true_misses", true_misses);
    f("fills", fills);
    f("switch_outs", switch_outs);
    f("colors", colors);
    f("occupancy_line_cycles", occupancy_line_cycles);
    f("standby_line_cycles", standby_line_cycles);
  }
};

class ControlledCache final : public sim::DataPort,
                              public sim::BackingStore {
public:
  ControlledCache(const ControlledCacheConfig& cfg,
                  sim::BackingStore& next_level,
                  wattch::Activity* activity);

  /// Satisfies both DataPort (an L1 in front of the core) and
  /// BackingStore (an L2 in front of memory): decay applies at any level.
  unsigned access(uint64_t addr, bool is_store, uint64_t cycle) override;

  /// access() with the (set, tag) decomposition hoisted out.  The
  /// batched executor (harness/batched.h) decomposes each trace address
  /// once and fans the pair into K same-geometry replicas; @p d must be
  /// this cache's decompose(addr).  Non-virtual: the batched hot loop
  /// calls it directly on the concrete replica.  Multi-tenant instances
  /// (cfg.tenants != 0) re-route through access() — the tenant decode
  /// and coloring remap must see the original address — but never meet
  /// the batched path in practice (harness::batchable excludes them).
  unsigned access_decomposed(uint64_t addr, const sim::Cache::Decomposed& d,
                             bool is_store, uint64_t cycle);

  /// BackingStore: absorb a dirty victim from the level above (off the
  /// critical path; still updates contents and decay state).
  ///
  /// Writeback-absorption contract (what makes stacked controlled levels
  /// safe to compose without double-counting in wattch::Activity):
  ///   * The absorbed victim is replayed as a single store through this
  ///     level's normal access path, so it is classified (hit / induced /
  ///     true miss), warms or wakes the target line, resets its decay
  ///     counter, and charges exactly one access at this level's role
  ///     counter — never the level above's.
  ///   * Only a *miss* here propagates further down (one next_.access for
  ///     the fill, plus this level's own victim writeback if the fill
  ///     evicts dirty data).  A hit is fully absorbed: no memory_accesses
  ///     are charged, matching sim::CacheLevel::writeback.
  ///   * The returned latency is discarded — victim writebacks are off the
  ///     critical path, so absorption affects energy and contents, never
  ///     the upper level's access latency.
  ///   * Multi-tenant: the victim belongs to whichever tenant filled it
  ///     above, not necessarily the tenant running now, so absorption is
  ///     attributed (and color-remapped) by the victim's own tag but never
  ///     counts as a context switch — only demand accesses move
  ///     tenant_color's running-tenant state.
  /// tests/test_hierarchy_control.cpp pins this contract for L1->L2
  /// controlled stacks.
  void writeback(uint64_t addr, uint64_t cycle) override {
    absorbing_writeback_ = true;
    (void)access(addr, /*is_store=*/true, cycle);
    absorbing_writeback_ = false;
  }

  /// Close residency integrals at the end of the run.  Must be called once
  /// after the core finishes; access() must not be called afterwards.
  void finalize(uint64_t end_cycle);

  /// Adaptive-control hooks.
  void set_decay_interval(uint64_t interval);
  uint64_t decay_interval() const { return decay_.interval(); }

  const ControlStats& stats() const { return stats_; }
  const ControlledCacheConfig& config() const { return cfg_; }
  const sim::Cache& cache() const { return cache_; }
  /// Per-tenant stats, indexed by tenant id; empty when cfg.tenants == 0.
  /// Residency integrals are closed by finalize().
  const std::vector<TenantStats>& tenant_stats() const {
    return tenant_stats_;
  }

  /// Induced misses + slow hits since the last call (feedback-controller
  /// sensor; the tags identify induced misses when kept awake).
  unsigned long long drain_induced_events();

  /// Install a periodic hook: @p hook(self, boundary_cycle) runs every
  /// @p window_cycles.  Adaptive controllers use this to observe induced
  /// misses and retune the decay interval at runtime.
  using WindowHook = std::function<void(ControlledCache&, uint64_t)>;
  void set_window_hook(uint64_t window_cycles, WindowHook hook);

  /// True misses since the last call (AMC-style controllers use the
  /// induced-to-true miss ratio as their sensor).
  unsigned long long drain_true_misses();

  /// Per-event hook invoked with the line index of every induced event
  /// (induced miss or slow hit) — the sensor for Kaxiras-style per-line
  /// adaptive intervals.
  using InducedHook = std::function<void(std::size_t line_index)>;
  void set_induced_hook(InducedHook hook) { induced_hook_ = std::move(hook); }

  /// Per-line decay threshold in epochs (default 4 = one interval).
  void set_line_decay_threshold(std::size_t line_index, uint16_t epochs) {
    decay_.set_line_threshold(line_index, epochs);
  }
  uint16_t line_decay_threshold(std::size_t line_index) const {
    return decay_.line_threshold(line_index);
  }
  std::size_t lines() const { return event_cycle_.size(); }

private:
  // Per-line control state lives in parallel arrays split by access
  // temperature rather than in one struct: the hot pair (standby flag +
  // residency event cycle) is touched on every access, while the ghost
  // and fault fields are only read on the gated-Vss miss path or when
  // fault injection is on — keeping them out of the hot cache lines.
  std::size_t line_index(std::size_t set, std::size_t way) const {
    return set * cfg_.cache.assoc + way;
  }
  /// The shared access implementation behind access()/access_decomposed();
  /// @p tenant is the decoded tenant id (ignored when cfg_.tenants == 0),
  /// and @p addr / @p d are post-remap under tenant coloring.
  unsigned access_impl(uint64_t addr, const sim::Cache::Decomposed& d,
                       bool is_store, uint64_t cycle, unsigned tenant);
  /// Coloring: map @p addr injectively into @p tenant's set partition.
  uint64_t color_remap(uint64_t addr, unsigned tenant) const;
  /// Coloring context switch: gate/drowse every line outside the incoming
  /// tenant's partition (lazy wake brings its own colors back per-access).
  void switch_to(unsigned tenant, uint64_t cycle);
  /// Close the previous owner's occupancy span and hand the line over.
  void set_owner(std::size_t index, unsigned tenant, uint64_t cycle);
  /// Which tenant a standby span at @p index is charged to (kNoTenant =
  /// unattributed); see TenantStats for the attribution rule.
  uint8_t standby_attribution(std::size_t index) const {
    return coloring_ ? set_tenant_[index / cfg_.cache.assoc] : owner_[index];
  }
  void deactivate(std::size_t index, uint64_t boundary_cycle);
  void wake(std::size_t index, uint64_t cycle);
  bool any_standby_in_set(std::size_t set) const {
    return standby_in_set_[set] != 0;
  }
  void note_fill(std::size_t set, std::size_t filled_way, uint64_t cycle);
  /// Draw and classify the faults @p index accumulated over @p span cycles
  /// (standby or active residency); returns the extra latency charged on
  /// the critical path (@p on_critical_path false suppresses it, e.g. for
  /// victim writebacks).  @p addr is the line's address for the refetch.
  unsigned consume_faults(std::size_t index, uint64_t span, bool standby_span,
                          bool dirty, uint64_t addr, uint64_t cycle,
                          bool on_critical_path);

  ControlledCacheConfig cfg_;
  sim::Cache cache_;
  sim::BackingStore& next_;
  wattch::Activity* activity_;
  DecayCounters decay_;
  std::optional<faults::FaultInjector> injector_;
  faults::ProtectionParams prot_;
  // Hot per-line state (every access):
  std::vector<uint64_t> event_cycle_; ///< activation time (active) / decay time
  std::vector<uint8_t> standby_;
  std::vector<uint32_t> standby_in_set_; ///< per-set standby-way count
  // Cold per-line state (gated-Vss miss path / fault injection only):
  std::vector<uint64_t> fault_check_cycle_; ///< last active-residency draw
  std::vector<uint64_t> ghost_tag_;  ///< tag at deactivation (gated-Vss)
  std::vector<uint8_t> ghost_fresh_; ///< no fill into the set since decay
  ControlStats stats_;
  // Multi-tenant state (all empty / inert when cfg.tenants == 0):
  std::vector<TenantStats> tenant_stats_;
  std::vector<uint8_t> owner_;         ///< per-line filling tenant (kNoTenant)
  std::vector<uint64_t> owner_since_;  ///< open occupancy-span start cycle
  std::vector<uint32_t> partition_base_; ///< coloring: tenant's first set
  std::vector<uint32_t> partition_sets_; ///< coloring: tenant's set count
  std::vector<uint8_t> set_tenant_;      ///< coloring: set -> partition owner
  bool coloring_ = false;                ///< policy == tenant_color
  uint8_t current_tenant_ = sim::kNoTenant; ///< last demand tenant (coloring)
  bool absorbing_writeback_ = false; ///< inside writeback(): no switch
  uint64_t max_cycle_ = 0;
  unsigned long long induced_events_window_ = 0;
  unsigned long long true_misses_window_ = 0;
  uint64_t window_cycles_ = 0;
  uint64_t next_window_ = 0;
  WindowHook window_hook_;
  InducedHook induced_hook_;
  bool finalized_ = false;
};

} // namespace leakctl
