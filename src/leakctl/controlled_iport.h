// Leakage-controlled L1 instruction cache (extension).
//
// The paper studies the L1 D-cache, but the original drowsy-cache proposal
// also covers the I-cache, and the generic line-standby abstraction of
// Sec. 2.3 applies unchanged: this adapter runs the same ControlledCache
// machinery on the fetch path.  Instruction lines are never dirty, so
// gated-Vss deactivation needs no writebacks, and induced misses surface
// as fetch stalls instead of load latency.
#pragma once

#include "leakctl/controlled_cache.h"
#include "sim/hierarchy.h"

namespace leakctl {

class ControlledFetchPort final : public sim::FetchPort {
public:
  ControlledFetchPort(const ControlledCacheConfig& cfg,
                      sim::BackingStore& next_level,
                      wattch::Activity* activity)
      : cache_(cfg, next_level, activity) {}

  unsigned fetch(uint64_t pc, uint64_t cycle) override {
    return cache_.access(pc, /*is_store=*/false, cycle);
  }

  /// Close residency integrals at the end of the run.
  void finalize(uint64_t end_cycle) { cache_.finalize(end_cycle); }

  ControlledCache& cache() { return cache_; }
  const ControlStats& stats() const { return cache_.stats(); }

private:
  ControlledCache cache_;
};

} // namespace leakctl
