// Decay-counter machinery (paper Sec. 2.3, following Kaxiras et al.).
//
// A global counter counts up to one quarter of the decay interval (the
// "epoch"); each time it wraps, every active line's local 2-bit saturating
// counter is incremented.  A line whose counter saturates has been idle for
// the full decay interval (within one epoch of quantization error) and is
// deactivated.  Any access resets the line's counter.
//
// The `simple` policy (from the drowsy paper) keeps no per-line history:
// every full interval, all lines are deactivated unconditionally.
#pragma once

#include <cstdint>
#include <vector>

#include "leakctl/technique.h"

namespace leakctl {

class DecayCounters {
public:
  DecayCounters(std::size_t lines, uint64_t decay_interval, DecayPolicy policy);

  /// Advance the global counter to @p cycle, invoking
  /// @p on_decay(line_index, epoch_boundary_cycle) for every line that
  /// deactivates.  Idempotent for non-increasing cycles.
  template <typename F> void advance(uint64_t cycle, F&& on_decay) {
    while (next_epoch_ <= cycle) {
      tick_epoch(on_decay);
    }
  }

  /// An access to @p line at any cycle: resets its counter and marks it
  /// active (the caller handles the wake itself).
  void on_access(std::size_t line);

  /// True if the decay machinery currently considers @p line deactivated.
  bool decayed(std::size_t line) const { return !active_[line]; }

  /// Change the decay interval (adaptive schemes); takes effect for the
  /// next epoch.  Interval must be >= 4 cycles.
  void set_interval(uint64_t decay_interval);
  uint64_t interval() const { return interval_; }

  /// Per-line decay threshold in epochs (Kaxiras-style per-line adaptive
  /// intervals: "an array of bits to select from multiple possible decay
  /// intervals").  Default 4 epochs = one full interval.
  void set_line_threshold(std::size_t line, uint16_t epochs);
  uint16_t line_threshold(std::size_t line) const { return threshold_[line]; }

  /// Total local-counter increments so far (dynamic-energy accounting).
  unsigned long long counter_ticks() const { return counter_ticks_; }

  std::size_t lines() const { return active_.size(); }

private:
  template <typename F> void tick_epoch(F&& on_decay) {
    const uint64_t boundary = next_epoch_;
    ++epoch_index_;
    if (policy_ == DecayPolicy::noaccess) {
      for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (!active_[i]) {
          continue;
        }
        ++counter_ticks_;
        if (counters_[i] + 1 >= threshold_[i]) {
          active_[i] = 0;
          on_decay(i, boundary);
        } else {
          ++counters_[i];
        }
      }
    } else { // simple: all lines off every full interval
      if (epoch_index_ % 4 == 0) {
        for (std::size_t i = 0; i < counters_.size(); ++i) {
          if (active_[i]) {
            active_[i] = 0;
            on_decay(i, boundary);
          }
        }
      }
    }
    next_epoch_ += epoch_length();
  }

  uint64_t epoch_length() const { return interval_ / 4; }

  DecayPolicy policy_;
  uint64_t interval_;
  uint64_t next_epoch_;
  uint64_t epoch_index_ = 0;
  std::vector<uint16_t> counters_;
  std::vector<uint16_t> threshold_;
  std::vector<uint8_t> active_;
  unsigned long long counter_ticks_ = 0;
};

} // namespace leakctl
