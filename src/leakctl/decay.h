// Decay-counter machinery (paper Sec. 2.3, following Kaxiras et al.).
//
// A global counter counts up to one quarter of the decay interval (the
// "epoch"); each time it wraps, every active line's local 2-bit saturating
// counter is incremented.  A line whose counter saturates has been idle for
// the full decay interval (within one epoch of quantization error) and is
// deactivated.  Any access resets the line's counter.
//
// The `simple` policy (from the drowsy paper) keeps no per-line history:
// every full interval, all lines are deactivated unconditionally.
//
// Two engines implement those semantics:
//
//  * DecayEngine::event (default) — the formulation is lazily evaluable: a
//    line accessed at epoch E with threshold t deactivates at exactly epoch
//    E + t (noaccess), or at the next full-interval boundary (simple), so
//    its deadline is known the moment it is touched.  Lines are bucketed in
//    a timing wheel keyed by deadline epoch; an epoch boundary pops one
//    bucket and costs O(lines actually decaying), not O(cache size).
//    Stale wheel entries (a line re-accessed after being scheduled) are
//    skipped at pop time by checking the line's current deadline.
//
//  * DecayEngine::reference — the original O(lines)-per-epoch scan,
//    retained verbatim as the oracle for the equivalence tests
//    (tests/test_decay_equivalence.cpp) and as the baseline the decay
//    -stress micro-benchmarks measure the event engine against.
//
// Both engines report identical decay cycles, counter_ticks, and decayed()
// state for any access stream; the equivalence suite enforces this.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "leakctl/technique.h"

namespace leakctl {

/// Which implementation of the decay semantics to run (see file comment).
enum class DecayEngine {
  event,     ///< timing-wheel, O(decaying lines) per epoch (default)
  reference, ///< naive full scan per epoch (test / benchmark oracle)
};

class DecayCounters {
public:
  DecayCounters(std::size_t lines, uint64_t decay_interval, DecayPolicy policy,
                DecayEngine engine = DecayEngine::event);

  /// Advance the global counter to @p cycle, invoking
  /// @p on_decay(line_index, epoch_boundary_cycle) for every line that
  /// deactivates.  Within one boundary, lines are reported in ascending
  /// index order (both engines).  Idempotent for non-increasing cycles.
  template <typename F> void advance(uint64_t cycle, F&& on_decay) {
    while (next_epoch_ <= cycle) {
      tick_epoch(on_decay);
    }
  }

  /// An access to @p line at any cycle: resets its counter and marks it
  /// active (the caller handles the wake itself).
  void on_access(std::size_t line);

  /// True if the decay machinery currently considers @p line deactivated.
  bool decayed(std::size_t line) const { return !active_[line]; }

  /// Change the decay interval (adaptive schemes); takes effect for the
  /// next epoch, re-anchored at the last *completed* epoch boundary (which
  /// is cycle 0 before any boundary has been processed).  Interval must be
  /// >= 4 cycles.
  void set_interval(uint64_t decay_interval);
  uint64_t interval() const { return interval_; }

  /// Per-line decay threshold in epochs (Kaxiras-style per-line adaptive
  /// intervals: "an array of bits to select from multiple possible decay
  /// intervals").  Default 4 epochs = one full interval.  The line's
  /// partial idle time is kept: shrinking the threshold below the epochs
  /// already accumulated deactivates the line at the next boundary.
  void set_line_threshold(std::size_t line, uint16_t epochs);
  uint16_t line_threshold(std::size_t line) const { return threshold_[line]; }

  /// Total local-counter increments so far (dynamic-energy accounting).
  unsigned long long counter_ticks() const { return counter_ticks_; }

  std::size_t lines() const { return active_.size(); }
  DecayEngine engine() const { return engine_; }

private:
  template <typename F> void tick_epoch(F&& on_decay) {
    const uint64_t boundary = next_epoch_;
    ++epoch_index_;
    last_boundary_ = boundary;
    next_epoch_ = boundary + epoch_length();
    if (engine_ == DecayEngine::event) {
      tick_epoch_event(boundary, on_decay);
    } else {
      tick_epoch_reference(boundary, on_decay);
    }
  }

  template <typename F>
  void tick_epoch_event(uint64_t boundary, F&& on_decay) {
    const bool pop = policy_ == DecayPolicy::noaccess || epoch_index_ % 4 == 0;
    if (policy_ == DecayPolicy::noaccess) {
      // Every active line's local counter ticks once per epoch, including
      // the tick that deactivates it — one add instead of one scan.
      counter_ticks_ += active_count_;
    }
    if (!pop) {
      return;
    }
    std::vector<uint32_t>& bucket = wheel_[epoch_index_ & wheel_mask_];
    if (bucket.empty()) {
      return;
    }
    due_.clear();
    for (const uint32_t idx : bucket) {
      // Entries are left in place when a line is rescheduled; an entry is
      // live only if the line still holds this exact deadline.
      if (active_[idx] && deadline_[idx] == epoch_index_) {
        due_.push_back(idx);
      }
    }
    bucket.clear();
    // Match the reference scan's ascending-index callback order: the
    // deactivation writebacks it triggers reach the next level in a
    // defined order, which the bit-identical-stats guarantee depends on.
    std::sort(due_.begin(), due_.end());
    for (const uint32_t idx : due_) {
      if (!active_[idx]) {
        continue; // duplicate wheel entry, already deactivated above
      }
      active_[idx] = 0;
      --active_count_;
      on_decay(static_cast<std::size_t>(idx), boundary);
    }
  }

  template <typename F>
  void tick_epoch_reference(uint64_t boundary, F&& on_decay) {
    if (policy_ == DecayPolicy::noaccess) {
      for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (!active_[i]) {
          continue;
        }
        ++counter_ticks_;
        if (counters_[i] + 1 >= threshold_[i]) {
          active_[i] = 0;
          --active_count_;
          on_decay(i, boundary);
        } else {
          ++counters_[i];
        }
      }
    } else { // simple: all lines off every full interval
      if (epoch_index_ % 4 == 0) {
        for (std::size_t i = 0; i < counters_.size(); ++i) {
          if (active_[i]) {
            active_[i] = 0;
            --active_count_;
            on_decay(i, boundary);
          }
        }
      }
    }
  }

  uint64_t epoch_length() const { return interval_ / 4; }
  /// The epoch index at which a line touched *now* will deactivate.
  uint64_t deadline_after_access(std::size_t line) const {
    if (policy_ == DecayPolicy::noaccess) {
      return epoch_index_ + threshold_[line];
    }
    // simple: the next full-interval boundary strictly after this epoch.
    return epoch_index_ - epoch_index_ % 4 + 4;
  }
  void schedule(std::size_t line, uint64_t deadline_epoch);
  void grow_wheel(std::size_t min_span);

  DecayPolicy policy_;
  DecayEngine engine_;
  uint64_t interval_;
  uint64_t next_epoch_;
  uint64_t last_boundary_ = 0;
  uint64_t epoch_index_ = 0;
  std::vector<uint16_t> threshold_;
  std::vector<uint8_t> active_;
  std::size_t active_count_ = 0;
  unsigned long long counter_ticks_ = 0;

  // --- reference engine state ---
  std::vector<uint16_t> counters_;

  // --- event engine state ---
  std::vector<uint64_t> deadline_;    ///< per-line deactivation epoch
  std::vector<uint64_t> reset_epoch_; ///< epoch of the last counter reset
  /// Timing wheel: slot (deadline & wheel_mask_) holds the lines due at
  /// that deadline epoch.  Capacity exceeds the largest threshold, so two
  /// live deadlines can never share a slot.
  std::vector<std::vector<uint32_t>> wheel_;
  uint64_t wheel_mask_ = 0;
  std::vector<uint32_t> due_; ///< scratch for one boundary's pops
};

} // namespace leakctl
