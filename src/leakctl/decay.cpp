#include "leakctl/decay.h"

#include <limits>
#include <stdexcept>

namespace leakctl {
namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

} // namespace

DecayCounters::DecayCounters(std::size_t lines, uint64_t decay_interval,
                             DecayPolicy policy, DecayEngine engine)
    : policy_(policy), engine_(engine), interval_(decay_interval) {
  if (lines == 0) {
    throw std::invalid_argument("DecayCounters: zero lines");
  }
  if (lines > std::numeric_limits<uint32_t>::max()) {
    throw std::invalid_argument("DecayCounters: too many lines");
  }
  if (decay_interval < 4) {
    throw std::invalid_argument("DecayCounters: interval must be >= 4 cycles");
  }
  threshold_.assign(lines, 4);
  active_.assign(lines, 1);
  active_count_ = lines;
  next_epoch_ = epoch_length();
  if (engine_ == DecayEngine::reference) {
    counters_.assign(lines, 0);
    return;
  }
  // Every line starts active with a zeroed counter: all deadlines are the
  // default threshold (noaccess) or the first full interval (simple) —
  // epoch 4 either way.  Populate in index order so the first boundary
  // pops them in the same order the reference scan would.
  reset_epoch_.assign(lines, 0);
  deadline_.assign(lines, 4);
  grow_wheel(/*min_span=*/8); // re-slots the initial deadlines, in order
}

void DecayCounters::schedule(std::size_t line, uint64_t deadline_epoch) {
  wheel_[deadline_epoch & wheel_mask_].push_back(static_cast<uint32_t>(line));
}

void DecayCounters::grow_wheel(std::size_t min_span) {
  const std::size_t capacity = next_pow2(min_span);
  if (!wheel_.empty() && capacity <= wheel_.size()) {
    return;
  }
  wheel_.assign(capacity, {});
  wheel_mask_ = capacity - 1;
  // Re-slot every live deadline; stale entries are simply dropped (a live
  // line always has an entry at its current deadline's slot).
  for (std::size_t i = 0; i < deadline_.size(); ++i) {
    if (active_[i]) {
      schedule(i, deadline_[i]);
    }
  }
}

void DecayCounters::set_line_threshold(std::size_t line, uint16_t epochs) {
  if (epochs < 1) {
    throw std::invalid_argument("set_line_threshold: epochs must be >= 1");
  }
  threshold_[line] = epochs;
  if (engine_ == DecayEngine::reference) {
    return;
  }
  // Deadlines can now reach epochs ahead of the current epoch; the wheel
  // must keep distinct live deadlines in distinct slots.
  if (static_cast<std::size_t>(epochs) + 2 > wheel_.size()) {
    grow_wheel(static_cast<std::size_t>(epochs) + 2);
  }
  if (policy_ != DecayPolicy::noaccess || !active_[line]) {
    return; // simple ignores thresholds; inactive lines pick it up on wake
  }
  // The partial count survives a threshold change (reference semantics):
  // the line deactivates once `epochs` boundaries have passed since its
  // last reset — at the very next boundary if that is already overdue.
  const uint64_t deadline =
      std::max(epoch_index_ + 1, reset_epoch_[line] + epochs);
  if (deadline != deadline_[line]) {
    deadline_[line] = deadline;
    schedule(line, deadline);
  }
}

void DecayCounters::on_access(std::size_t line) {
  if (engine_ == DecayEngine::reference) {
    if (!active_[line]) {
      active_[line] = 1;
      ++active_count_;
    }
    counters_[line] = 0;
    return;
  }
  if (!active_[line]) {
    active_[line] = 1;
    ++active_count_;
  }
  reset_epoch_[line] = epoch_index_;
  const uint64_t deadline = deadline_after_access(line);
  // Repeated accesses inside one epoch leave the deadline unchanged: the
  // line is already scheduled in that bucket, so no wheel traffic.
  if (deadline != deadline_[line]) {
    deadline_[line] = deadline;
    schedule(line, deadline);
  }
}

void DecayCounters::set_interval(uint64_t decay_interval) {
  if (decay_interval < 4) {
    throw std::invalid_argument("DecayCounters: interval must be >= 4 cycles");
  }
  // Re-anchor at the last *completed* boundary, tracked explicitly: before
  // any boundary has been processed that anchor is cycle 0, so shrinking
  // or growing the interval mid-epoch can never push the next boundary
  // before the previous one (the old `next_epoch_ - epoch_length()`
  // reconstruction got this wrong when the two intervals disagreed about
  // the epoch in flight).
  interval_ = decay_interval;
  next_epoch_ = last_boundary_ + epoch_length();
}

} // namespace leakctl
