#include "leakctl/decay.h"

#include <stdexcept>

namespace leakctl {

DecayCounters::DecayCounters(std::size_t lines, uint64_t decay_interval,
                             DecayPolicy policy)
    : policy_(policy), interval_(decay_interval) {
  if (lines == 0) {
    throw std::invalid_argument("DecayCounters: zero lines");
  }
  if (decay_interval < 4) {
    throw std::invalid_argument("DecayCounters: interval must be >= 4 cycles");
  }
  counters_.assign(lines, 0);
  threshold_.assign(lines, 4);
  active_.assign(lines, 1);
  next_epoch_ = epoch_length();
}

void DecayCounters::set_line_threshold(std::size_t line, uint16_t epochs) {
  if (epochs < 1) {
    throw std::invalid_argument("set_line_threshold: epochs must be >= 1");
  }
  threshold_[line] = epochs;
}

void DecayCounters::on_access(std::size_t line) {
  counters_[line] = 0;
  active_[line] = 1;
}

void DecayCounters::set_interval(uint64_t decay_interval) {
  if (decay_interval < 4) {
    throw std::invalid_argument("DecayCounters: interval must be >= 4 cycles");
  }
  // Re-anchor the next epoch boundary without moving time backwards.
  const uint64_t last_boundary = next_epoch_ - epoch_length();
  interval_ = decay_interval;
  next_epoch_ = last_boundary + epoch_length();
}

} // namespace leakctl
