#include "leakctl/controlled_cache.h"

#include <algorithm>
#include <stdexcept>

namespace leakctl {

namespace {
// tenant_color replaces idle-counter decay with switch-time partition
// gating: the embedded DecayCounters is built as (and stays) a no-op
// noaccess instance so it prices zero counter ticks — every decay_ call
// site is additionally gated on !coloring_.
DecayPolicy counter_policy(DecayPolicy policy) {
  return policy == DecayPolicy::tenant_color ? DecayPolicy::noaccess : policy;
}
} // namespace

ControlledCache::ControlledCache(const ControlledCacheConfig& cfg,
                                 sim::BackingStore& next_level,
                                 wattch::Activity* activity)
    : cfg_(cfg),
      cache_(cfg.cache),
      next_(next_level),
      activity_(activity),
      decay_(cfg.cache.lines(), cfg.decay_interval, counter_policy(cfg.policy),
             cfg.decay_engine),
      prot_(faults::ProtectionParams::for_scheme(cfg.faults.protection)),
      event_cycle_(cfg.cache.lines(), 0),
      standby_(cfg.cache.lines(), 0),
      standby_in_set_(cfg.cache.sets(), 0),
      fault_check_cycle_(cfg.cache.lines(), 0),
      ghost_tag_(cfg.cache.lines(), 0),
      ghost_fresh_(cfg.cache.lines(), 0),
      coloring_(cfg.policy == DecayPolicy::tenant_color) {
  if (cfg.faults.enabled) {
    injector_.emplace(cfg.faults, cfg.cache.line_bytes * 8);
  }
  if (cfg.tenants > sim::kMaxTenants) {
    throw std::invalid_argument(
        "ControlledCacheConfig::tenants (" + std::to_string(cfg.tenants) +
        ") exceeds the " + std::to_string(sim::kMaxTenants) +
        "-tenant address-tag budget (sim/tenant.h)");
  }
  if (coloring_ && cfg.tenants == 0) {
    throw std::invalid_argument(
        "DecayPolicy::tenant_color requires ControlledCacheConfig::tenants "
        ">= 1 (no tenants to partition the sets among)");
  }
  if (cfg.tenants != 0) {
    tenant_stats_.resize(cfg.tenants);
    owner_.assign(cfg_.cache.lines(), sim::kNoTenant);
    owner_since_.assign(cfg_.cache.lines(), 0);
  }
  if (coloring_) {
    const std::size_t sets = cfg_.cache.sets();
    if (cfg.tenants > sets) {
      throw std::invalid_argument(
          "ControlledCacheConfig::tenants (" + std::to_string(cfg.tenants) +
          ") exceeds the cache's " + std::to_string(sets) +
          " sets: DecayPolicy::tenant_color has no colors left to hand out");
    }
    // Contiguous set partitions, remainder sets to the low tenants:
    // tenant t owns [base(t), base(t) + span(t)).
    const std::size_t spt = sets / cfg.tenants;
    const std::size_t rem = sets % cfg.tenants;
    partition_base_.resize(cfg.tenants);
    partition_sets_.resize(cfg.tenants);
    set_tenant_.resize(sets);
    for (unsigned t = 0; t < cfg.tenants; ++t) {
      const std::size_t base = t * spt + std::min<std::size_t>(t, rem);
      const std::size_t span = spt + (t < rem ? 1 : 0);
      partition_base_[t] = static_cast<uint32_t>(base);
      partition_sets_[t] = static_cast<uint32_t>(span);
      for (std::size_t s = base; s < base + span; ++s) {
        set_tenant_[s] = static_cast<uint8_t>(t);
      }
    }
  }
}

void ControlledCache::deactivate(std::size_t index, uint64_t boundary_cycle) {
  if (standby_[index]) {
    return;
  }
  const uint64_t active_span = boundary_cycle > event_cycle_[index]
                                   ? boundary_cycle - event_cycle_[index]
                                   : 0;
  // The settle period still leaks at the full rate (Table 1: 30 cycles for
  // gated-Vss — why it suffers at short intervals).
  stats_.data_active_cycles += active_span + cfg_.technique.settle_to_low;
  if (cfg_.technique.decay_tags) {
    stats_.tag_active_cycles += active_span + cfg_.technique.settle_to_low;
  }
  standby_[index] = 1;
  event_cycle_[index] = boundary_cycle + cfg_.technique.settle_to_low;
  const std::size_t set = index / cfg_.cache.assoc;
  ++standby_in_set_[set];
  stats_.decays++;
  if (activity_ != nullptr) {
    activity_->line_transitions++;
  }

  if (!cfg_.technique.state_preserving) {
    const std::size_t way = index % cfg_.cache.assoc;
    const sim::Cache::Line& line = cache_.line(set, way);
    if (line.valid) {
      ghost_tag_[index] = line.tag;
      ghost_fresh_[index] = 1;
      const uint64_t wb_addr = cache_.line_addr(set, way);
      if (cache_.invalidate(set, way)) {
        stats_.decay_writebacks++;
        next_.writeback(wb_addr, boundary_cycle);
      }
    } else {
      ghost_fresh_[index] = 0;
    }
  }
}

void ControlledCache::wake(std::size_t index, uint64_t cycle) {
  if (!standby_[index]) {
    return;
  }
  const uint64_t standby_span =
      cycle > event_cycle_[index] ? cycle - event_cycle_[index] : 0;
  stats_.data_standby_cycles += standby_span;
  if (cfg_.technique.decay_tags) {
    stats_.tag_standby_cycles += standby_span;
  }
  if (cfg_.tenants != 0) {
    const uint8_t t = standby_attribution(index);
    if (t != sim::kNoTenant) {
      tenant_stats_[t].standby_line_cycles += standby_span;
    }
  }
  standby_[index] = 0;
  --standby_in_set_[index / cfg_.cache.assoc];
  event_cycle_[index] = cycle;
  fault_check_cycle_[index] = cycle;
  ghost_fresh_[index] = 0;
  stats_.wakes++;
  if (activity_ != nullptr) {
    activity_->line_transitions++;
    activity_->drowsy_wakes++;
  }
}

void ControlledCache::note_fill(std::size_t set, std::size_t filled_way,
                                uint64_t cycle) {
  (void)cycle;
  (void)filled_way;
  if (cfg_.technique.state_preserving) {
    return; // ghosts exist only for gated-Vss
  }
  // A fill into the set means LRU would by now have evicted any line that
  // had been idle long enough to decay: their ghosts go stale.
  const std::size_t base = line_index(set, 0);
  for (std::size_t w = 0; w < cfg_.cache.assoc; ++w) {
    ghost_fresh_[base + w] = 0;
  }
}

unsigned ControlledCache::consume_faults(std::size_t index, uint64_t span,
                                         bool standby_span, bool dirty,
                                         uint64_t addr, uint64_t cycle,
                                         bool on_critical_path) {
  if (!injector_ || span == 0) {
    return 0;
  }
  // Gated-Vss standby holds no state: nothing to corrupt (the data was
  // already written back / invalidated at deactivation).
  if (standby_span && !cfg_.technique.state_preserving) {
    return 0;
  }
  const faults::WordFlipSummary flips =
      standby_span ? injector_->draw_standby(index, span)
                   : injector_->draw_active(index, span);
  stats_.fault_checks = injector_->checks();
  stats_.faults_injected = injector_->injected();
  if (flips.total_flips == 0) {
    return 0;
  }
  unsigned extra = 0;
  switch (faults::classify(prot_, flips, dirty)) {
  case faults::Outcome::clean:
    break;
  case faults::Outcome::corrected:
    stats_.fault_corrections += flips.words_single;
    extra = prot_.correction_latency;
    break;
  case faults::Outcome::recovered: {
    // Detected error, clean line: the L2 copy is authoritative.  Refetch
    // it — an induced-miss-style recovery on the critical path.
    stats_.fault_detections++;
    stats_.fault_recoveries++;
    extra = next_.access(addr, /*is_store=*/false, cycle);
    break;
  }
  case faults::Outcome::corruption_detected:
    // Detected but the only up-to-date copy was the flipped one: report
    // an uncorrectable error (machine-check territory).
    stats_.fault_detections++;
    stats_.fault_corruptions_detected++;
    break;
  case faults::Outcome::corruption_silent:
    stats_.fault_corruptions_silent++;
    break;
  }
  return on_critical_path ? extra : 0;
}

unsigned ControlledCache::access(uint64_t addr, bool is_store,
                                 uint64_t cycle) {
  if (cfg_.tenants == 0) {
    return access_impl(addr, cache_.decompose(addr), is_store, cycle, 0);
  }
  const unsigned tenant = sim::tenant_of(addr);
  if (tenant >= cfg_.tenants) {
    throw std::out_of_range(
        "ControlledCache: address tags tenant " + std::to_string(tenant) +
        " but the level is configured for " + std::to_string(cfg_.tenants) +
        " tenants (was the trace built by workload::Interleaver with a "
        "matching tenant count?)");
  }
  if (coloring_) {
    // A *demand* access by a different tenant than the last one is the
    // context switch: gate/drowse everything outside the incoming
    // partition, then serve the access remapped into its own colors.
    // Absorbed victim writebacks carry the victim owner's tag — that
    // tenant is not running, so they remap without switching.
    if (tenant != current_tenant_ && !absorbing_writeback_) {
      switch_to(tenant, cycle);
    }
    const uint64_t mapped = color_remap(addr, tenant);
    return access_impl(mapped, cache_.decompose(mapped), is_store, cycle,
                       tenant);
  }
  return access_impl(addr, cache_.decompose(addr), is_store, cycle, tenant);
}

unsigned ControlledCache::access_decomposed(uint64_t addr,
                                            const sim::Cache::Decomposed& d,
                                            bool is_store, uint64_t cycle) {
  if (cfg_.tenants != 0) {
    // Tenant decode / coloring remap must see the original address; the
    // caller's decomposition may not match the remapped set.  Batched
    // execution never reaches here (harness::batchable excludes
    // multi-tenant configs), so the re-decompose is off any hot path.
    return access(addr, is_store, cycle);
  }
  return access_impl(addr, d, is_store, cycle, 0);
}

uint64_t ControlledCache::color_remap(uint64_t addr, unsigned tenant) const {
  // Injective per tenant: fold the full line-address space into the
  // tenant's contiguous set range [base, base + span) while spilling the
  // quotient into the tag bits.  Recovering (line, tenant) from the
  // mapped address is exact — mapped_line % sets names the partition and
  // hence the tenant, the rest reconstructs the original line — so no
  // two addresses alias and correctness is untouched.
  const uint64_t line_bytes = cfg_.cache.line_bytes;
  const uint64_t offset = addr % line_bytes;
  const uint64_t line = addr / line_bytes;
  const uint64_t span = partition_sets_[tenant];
  const uint64_t sets = cfg_.cache.sets();
  const uint64_t mapped_line =
      (line / span) * sets + partition_base_[tenant] + (line % span);
  return mapped_line * line_bytes + offset;
}

void ControlledCache::switch_to(unsigned tenant, uint64_t cycle) {
  if (current_tenant_ != sim::kNoTenant) {
    tenant_stats_[current_tenant_].switch_outs++;
  }
  current_tenant_ = static_cast<uint8_t>(tenant);
  // Standby every line outside the incoming tenant's partition.  The
  // existing deactivate() semantics do the rest: drowsy colors come back
  // as slow hits when their tenant resumes, gated colors are invalidated
  // (dirty lines written back) and resurface as induced misses — all
  // through the normal classification machinery.  The incoming tenant's
  // own colors are left as they are and wake lazily, access by access.
  const std::size_t assoc = cfg_.cache.assoc;
  const std::size_t lo =
      static_cast<std::size_t>(partition_base_[tenant]) * assoc;
  const std::size_t hi =
      lo + static_cast<std::size_t>(partition_sets_[tenant]) * assoc;
  for (std::size_t i = 0; i < lo; ++i) {
    deactivate(i, cycle);
  }
  for (std::size_t i = hi; i < event_cycle_.size(); ++i) {
    deactivate(i, cycle);
  }
}

void ControlledCache::set_owner(std::size_t index, unsigned tenant,
                                uint64_t cycle) {
  const uint8_t prev = owner_[index];
  if (prev == static_cast<uint8_t>(tenant)) {
    return; // refill by the same tenant: the occupancy span continues
  }
  if (prev != sim::kNoTenant) {
    const uint64_t span =
        cycle > owner_since_[index] ? cycle - owner_since_[index] : 0;
    tenant_stats_[prev].occupancy_line_cycles += span;
  }
  owner_[index] = static_cast<uint8_t>(tenant);
  owner_since_[index] = cycle;
}

unsigned ControlledCache::access_impl(uint64_t addr,
                                      const sim::Cache::Decomposed& d,
                                      bool is_store, uint64_t cycle,
                                      unsigned tenant) {
  if (finalized_) {
    throw std::logic_error("ControlledCache::access after finalize");
  }
  max_cycle_ = std::max(max_cycle_, cycle);
  if (!coloring_) { // tenant_color gates at switch time, not by idle decay
    decay_.advance(
        max_cycle_,
        [this](std::size_t idx, uint64_t at) { deactivate(idx, at); });
  }
  while (window_cycles_ != 0 && max_cycle_ >= next_window_) {
    const uint64_t boundary = next_window_;
    next_window_ += window_cycles_;
    if (window_hook_) {
      window_hook_(*this, boundary);
    }
  }

  if (activity_ != nullptr) {
    if (cfg_.role == LevelRole::l2) {
      activity_->l2_accesses++; // priced like the plain CacheLevel it replaces
    } else {
      (is_store ? activity_->l1_writes : activity_->l1_reads)++;
    }
  }

  TenantStats* ts = cfg_.tenants != 0 ? &tenant_stats_[tenant] : nullptr;
  if (ts != nullptr) {
    ts->accesses++;
  }

  const std::size_t set = d.set;
  const uint64_t tag = d.tag;
  const TechniqueParams& tech = cfg_.technique;
  const std::size_t assoc = cfg_.cache.assoc;
  const std::size_t base = set * assoc;
  unsigned latency = cfg_.cache.hit_latency;
  if (injector_) {
    latency += prot_.check_latency; // syndrome/parity check on every access
  }

  // Pre-classify against the standby state *before* the cache mutates.
  // One pass over the ways covers both the tag match and the ghost scan;
  // the standby question is answered by the per-set count maintained at
  // wake/deactivate time.  A ghost can only matter on a miss, so a
  // provisional match found before a later way hits is simply unused.
  const bool set_has_standby = standby_in_set_[set] != 0;
  const bool scan_ghosts = !tech.state_preserving && set_has_standby;
  int hit_way = -1;
  bool pre_dirty = false;
  bool induced = false;
  std::size_t induced_line = 0;
  for (std::size_t w = 0; w < assoc; ++w) {
    const sim::Cache::Line& ln = cache_.line(set, w);
    if (ln.valid && ln.tag == tag) {
      hit_way = static_cast<int>(w);
      pre_dirty = ln.dirty;
      break;
    }
    if (scan_ghosts && !induced && standby_[base + w] &&
        ghost_fresh_[base + w] && ghost_tag_[base + w] == tag) {
      induced = true;
      induced_line = base + w;
    }
  }
  // The pre-classify pass already located the matching way; on a hit the
  // cache only needs the LRU/dirty/stat mutations, not a second scan.
  const sim::Cache::AccessResult r =
      hit_way >= 0
          ? cache_.access_known_hit(set, static_cast<std::size_t>(hit_way),
                                    is_store, cycle)
          : cache_.access_decomposed(addr, d, is_store, cycle);
  const std::size_t idx = base + r.way;
  const bool was_standby = standby_[idx] != 0;

  if (r.hit) {
    if (was_standby) {
      // State-preserving standby hit: slow hit, pay the wake penalty.
      stats_.slow_hits++;
      if (ts != nullptr) {
        ts->slow_hits++;
      }
      induced_events_window_++;
      if (induced_hook_) {
        induced_hook_(idx);
      }
      latency += tech.decay_tags ? tech.wake_extra_tags_decayed
                                 : tech.wake_extra_tags_awake;
      const uint64_t standby_span =
          cycle > event_cycle_[idx] ? cycle - event_cycle_[idx] : 0;
      wake(idx, cycle);
      // The line's contents sat at the retention voltage for the whole
      // standby span: check them as they are consumed.
      latency += consume_faults(idx, standby_span, /*standby_span=*/true,
                                pre_dirty, addr, cycle,
                                /*on_critical_path=*/true);
    } else {
      stats_.hits++;
      if (ts != nullptr) {
        ts->hits++;
      }
      if (injector_ && cfg_.faults.active_rate_per_bit_cycle > 0.0) {
        const uint64_t active_span = cycle > fault_check_cycle_[idx]
                                         ? cycle - fault_check_cycle_[idx]
                                         : 0;
        latency += consume_faults(idx, active_span, /*standby_span=*/false,
                                  pre_dirty, addr, cycle,
                                  /*on_critical_path=*/true);
      }
    }
  } else {
    // Miss path.
    if (induced) {
      stats_.induced_misses++;
      if (ts != nullptr) {
        ts->induced_misses++;
      }
      induced_events_window_++;
      if (induced_hook_) {
        induced_hook_(induced_line);
      }
    } else {
      stats_.true_misses++;
      if (ts != nullptr) {
        ts->true_misses++;
      }
      true_misses_window_++;
      if (set_has_standby) {
        stats_.true_misses_on_standby_set++;
        // Drowsy must wake the standby tags before it can conclude "miss";
        // gated-Vss pays nothing (standby ways are known misses).
        latency += tech.true_miss_extra_tags_decayed;
      }
    }
    if (r.writeback) {
      // A dirty victim's data is read out for the writeback; if it sat in
      // (state-preserving) standby, its flips travel with it — off the
      // critical path, but corruption all the same.
      if (injector_) {
        const uint64_t since =
            was_standby ? event_cycle_[idx] : fault_check_cycle_[idx];
        const uint64_t victim_span = cycle > since ? cycle - since : 0;
        consume_faults(idx, victim_span, /*standby_span=*/was_standby,
                       /*dirty=*/true, r.writeback_addr, cycle,
                       /*on_critical_path=*/false);
      }
      next_.writeback(r.writeback_addr, cycle);
    }
    latency += next_.access(addr, /*is_store=*/false, cycle);
    if (was_standby) {
      wake(idx, cycle); // fill powers the way back up (settle overlapped)
    }
    note_fill(r.set, r.way, cycle);
    if (ts != nullptr) {
      ts->fills++;
      set_owner(idx, tenant, cycle);
    }
  }

  if (!coloring_) {
    decay_.on_access(idx);
  }
  if (injector_) {
    fault_check_cycle_[idx] = cycle;
  }
  if (!tech.state_preserving) {
    ghost_fresh_[idx] = 0;
  }
  return latency;
}

void ControlledCache::finalize(uint64_t end_cycle) {
  if (finalized_) {
    return;
  }
  max_cycle_ = std::max(max_cycle_, end_cycle);
  if (!coloring_) {
    decay_.advance(
        max_cycle_,
        [this](std::size_t idx, uint64_t at) { deactivate(idx, at); });
  }
  for (std::size_t i = 0; i < event_cycle_.size(); ++i) {
    const uint64_t span =
        max_cycle_ > event_cycle_[i] ? max_cycle_ - event_cycle_[i] : 0;
    if (standby_[i]) {
      stats_.data_standby_cycles += span;
      if (cfg_.technique.decay_tags) {
        stats_.tag_standby_cycles += span;
      }
      if (cfg_.tenants != 0) {
        const uint8_t t = standby_attribution(i);
        if (t != sim::kNoTenant) {
          tenant_stats_[t].standby_line_cycles += span;
        }
      }
    } else {
      stats_.data_active_cycles += span;
      if (cfg_.technique.decay_tags) {
        stats_.tag_active_cycles += span;
      }
    }
  }
  if (!cfg_.technique.decay_tags) {
    // Tags never decayed: active for the whole run.
    stats_.tag_active_cycles =
        static_cast<unsigned long long>(event_cycle_.size()) * max_cycle_;
    stats_.tag_standby_cycles = 0;
  }
  // Close every open per-tenant occupancy span and record the partition
  // geometry (colors) so the fairness report carries it.
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] != sim::kNoTenant) {
      const uint64_t span =
          max_cycle_ > owner_since_[i] ? max_cycle_ - owner_since_[i] : 0;
      tenant_stats_[owner_[i]].occupancy_line_cycles += span;
    }
  }
  if (coloring_) {
    for (unsigned t = 0; t < cfg_.tenants; ++t) {
      tenant_stats_[t].colors = partition_sets_[t];
    }
  }
  stats_.counter_ticks = decay_.counter_ticks();
  if (activity_ != nullptr) {
    activity_->counter_ticks += decay_.counter_ticks();
  }
  finalized_ = true;
}

void ControlledCache::set_decay_interval(uint64_t interval) {
  decay_.set_interval(interval);
}

unsigned long long ControlledCache::drain_induced_events() {
  const unsigned long long v = induced_events_window_;
  induced_events_window_ = 0;
  return v;
}

unsigned long long ControlledCache::drain_true_misses() {
  const unsigned long long v = true_misses_window_;
  true_misses_window_ = 0;
  return v;
}

void ControlledCache::set_window_hook(uint64_t window_cycles,
                                      WindowHook hook) {
  window_cycles_ = window_cycles;
  next_window_ = max_cycle_ + window_cycles;
  window_hook_ = std::move(hook);
}

} // namespace leakctl
