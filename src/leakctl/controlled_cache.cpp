#include "leakctl/controlled_cache.h"

#include <algorithm>
#include <stdexcept>

namespace leakctl {

ControlledCache::ControlledCache(const ControlledCacheConfig& cfg,
                                 sim::BackingStore& next_level,
                                 wattch::Activity* activity)
    : cfg_(cfg),
      cache_(cfg.cache),
      next_(next_level),
      activity_(activity),
      decay_(cfg.cache.lines(), cfg.decay_interval, cfg.policy),
      ctl_(cfg.cache.lines()) {}

void ControlledCache::deactivate(std::size_t index, uint64_t boundary_cycle) {
  LineCtl& ln = ctl_[index];
  if (ln.standby) {
    return;
  }
  const uint64_t active_span =
      boundary_cycle > ln.event_cycle ? boundary_cycle - ln.event_cycle : 0;
  // The settle period still leaks at the full rate (Table 1: 30 cycles for
  // gated-Vss — why it suffers at short intervals).
  stats_.data_active_cycles += active_span + cfg_.technique.settle_to_low;
  if (cfg_.technique.decay_tags) {
    stats_.tag_active_cycles += active_span + cfg_.technique.settle_to_low;
  }
  ln.standby = true;
  ln.event_cycle = boundary_cycle + cfg_.technique.settle_to_low;
  stats_.decays++;
  if (activity_ != nullptr) {
    activity_->line_transitions++;
  }

  if (!cfg_.technique.state_preserving) {
    const std::size_t set = index / cfg_.cache.assoc;
    const std::size_t way = index % cfg_.cache.assoc;
    const sim::Cache::Line& line = cache_.line(set, way);
    if (line.valid) {
      ln.ghost_tag = line.tag;
      ln.ghost_fresh = true;
      const uint64_t wb_addr = cache_.line_addr(set, way);
      if (cache_.invalidate(set, way)) {
        stats_.decay_writebacks++;
        next_.writeback(wb_addr, boundary_cycle);
      }
    } else {
      ln.ghost_fresh = false;
    }
  }
}

void ControlledCache::wake(std::size_t index, uint64_t cycle) {
  LineCtl& ln = ctl_[index];
  if (!ln.standby) {
    return;
  }
  const uint64_t standby_span =
      cycle > ln.event_cycle ? cycle - ln.event_cycle : 0;
  stats_.data_standby_cycles += standby_span;
  if (cfg_.technique.decay_tags) {
    stats_.tag_standby_cycles += standby_span;
  }
  ln.standby = false;
  ln.event_cycle = cycle;
  ln.ghost_fresh = false;
  stats_.wakes++;
  if (activity_ != nullptr) {
    activity_->line_transitions++;
    activity_->drowsy_wakes++;
  }
}

bool ControlledCache::any_standby_in_set(std::size_t set) const {
  for (std::size_t w = 0; w < cfg_.cache.assoc; ++w) {
    if (ctl_[line_index(set, w)].standby) {
      return true;
    }
  }
  return false;
}

void ControlledCache::note_fill(std::size_t set, std::size_t filled_way,
                                uint64_t cycle) {
  (void)cycle;
  // A fill into the set means LRU would by now have evicted any line that
  // had been idle long enough to decay: their ghosts go stale.
  for (std::size_t w = 0; w < cfg_.cache.assoc; ++w) {
    ctl_[line_index(set, w)].ghost_fresh = false;
  }
  (void)filled_way;
}

unsigned ControlledCache::access(uint64_t addr, bool is_store,
                                 uint64_t cycle) {
  if (finalized_) {
    throw std::logic_error("ControlledCache::access after finalize");
  }
  max_cycle_ = std::max(max_cycle_, cycle);
  decay_.advance(max_cycle_,
                 [this](std::size_t idx, uint64_t at) { deactivate(idx, at); });
  while (window_cycles_ != 0 && max_cycle_ >= next_window_) {
    const uint64_t boundary = next_window_;
    next_window_ += window_cycles_;
    if (window_hook_) {
      window_hook_(*this, boundary);
    }
  }

  if (activity_ != nullptr) {
    (is_store ? activity_->l1_writes : activity_->l1_reads)++;
  }

  const std::size_t set = cache_.set_index(addr);
  const uint64_t tag = cache_.tag_of(addr);
  const TechniqueParams& tech = cfg_.technique;
  unsigned latency = cfg_.cache.hit_latency;

  // Pre-classify against the standby state *before* the cache mutates.
  int hit_way = -1;
  for (std::size_t w = 0; w < cfg_.cache.assoc; ++w) {
    const sim::Cache::Line& ln = cache_.line(set, w);
    if (ln.valid && ln.tag == tag) {
      hit_way = static_cast<int>(w);
      break;
    }
  }
  const bool set_has_standby = any_standby_in_set(set);
  bool induced = false;
  std::size_t induced_line = 0;
  if (hit_way < 0 && !tech.state_preserving) {
    for (std::size_t w = 0; w < cfg_.cache.assoc; ++w) {
      const LineCtl& ln = ctl_[line_index(set, w)];
      if (ln.standby && ln.ghost_fresh && ln.ghost_tag == tag) {
        induced = true;
        induced_line = line_index(set, w);
        break;
      }
    }
  }

  const sim::Cache::AccessResult r = cache_.access(addr, is_store, cycle);
  const std::size_t idx = line_index(r.set, r.way);
  const bool was_standby = ctl_[idx].standby;

  if (r.hit) {
    if (was_standby) {
      // State-preserving standby hit: slow hit, pay the wake penalty.
      stats_.slow_hits++;
      induced_events_window_++;
      if (induced_hook_) {
        induced_hook_(idx);
      }
      latency += tech.decay_tags ? tech.wake_extra_tags_decayed
                                 : tech.wake_extra_tags_awake;
      wake(idx, cycle);
    } else {
      stats_.hits++;
    }
  } else {
    // Miss path.
    if (induced) {
      stats_.induced_misses++;
      induced_events_window_++;
      if (induced_hook_) {
        induced_hook_(induced_line);
      }
    } else {
      stats_.true_misses++;
      true_misses_window_++;
      if (set_has_standby) {
        stats_.true_misses_on_standby_set++;
        // Drowsy must wake the standby tags before it can conclude "miss";
        // gated-Vss pays nothing (standby ways are known misses).
        latency += tech.true_miss_extra_tags_decayed;
      }
    }
    if (r.writeback) {
      next_.writeback(r.writeback_addr, cycle);
    }
    latency += next_.access(addr, /*is_store=*/false, cycle);
    if (was_standby) {
      wake(idx, cycle); // fill powers the way back up (settle overlapped)
    }
    note_fill(r.set, r.way, cycle);
  }

  decay_.on_access(idx);
  ctl_[idx].ghost_fresh = false;
  return latency;
}

void ControlledCache::finalize(uint64_t end_cycle) {
  if (finalized_) {
    return;
  }
  max_cycle_ = std::max(max_cycle_, end_cycle);
  decay_.advance(max_cycle_,
                 [this](std::size_t idx, uint64_t at) { deactivate(idx, at); });
  for (std::size_t i = 0; i < ctl_.size(); ++i) {
    const LineCtl& ln = ctl_[i];
    const uint64_t span =
        max_cycle_ > ln.event_cycle ? max_cycle_ - ln.event_cycle : 0;
    if (ln.standby) {
      stats_.data_standby_cycles += span;
      if (cfg_.technique.decay_tags) {
        stats_.tag_standby_cycles += span;
      }
    } else {
      stats_.data_active_cycles += span;
      if (cfg_.technique.decay_tags) {
        stats_.tag_active_cycles += span;
      }
    }
  }
  if (!cfg_.technique.decay_tags) {
    // Tags never decayed: active for the whole run.
    stats_.tag_active_cycles =
        static_cast<unsigned long long>(ctl_.size()) * max_cycle_;
    stats_.tag_standby_cycles = 0;
  }
  stats_.counter_ticks = decay_.counter_ticks();
  if (activity_ != nullptr) {
    activity_->counter_ticks += decay_.counter_ticks();
  }
  finalized_ = true;
}

void ControlledCache::set_decay_interval(uint64_t interval) {
  decay_.set_interval(interval);
}

unsigned long long ControlledCache::drain_induced_events() {
  const unsigned long long v = induced_events_window_;
  induced_events_window_ = 0;
  return v;
}

unsigned long long ControlledCache::drain_true_misses() {
  const unsigned long long v = true_misses_window_;
  true_misses_window_ = 0;
  return v;
}

void ControlledCache::set_window_hook(uint64_t window_cycles,
                                      WindowHook hook) {
  window_cycles_ = window_cycles;
  next_window_ = max_cycle_ + window_cycles;
  window_hook_ = std::move(hook);
}

} // namespace leakctl
