#include "leakctl/controlled_cache.h"

#include <algorithm>
#include <stdexcept>

namespace leakctl {

ControlledCache::ControlledCache(const ControlledCacheConfig& cfg,
                                 sim::BackingStore& next_level,
                                 wattch::Activity* activity)
    : cfg_(cfg),
      cache_(cfg.cache),
      next_(next_level),
      activity_(activity),
      decay_(cfg.cache.lines(), cfg.decay_interval, cfg.policy,
             cfg.decay_engine),
      prot_(faults::ProtectionParams::for_scheme(cfg.faults.protection)),
      event_cycle_(cfg.cache.lines(), 0),
      standby_(cfg.cache.lines(), 0),
      standby_in_set_(cfg.cache.sets(), 0),
      fault_check_cycle_(cfg.cache.lines(), 0),
      ghost_tag_(cfg.cache.lines(), 0),
      ghost_fresh_(cfg.cache.lines(), 0) {
  if (cfg.faults.enabled) {
    injector_.emplace(cfg.faults, cfg.cache.line_bytes * 8);
  }
}

void ControlledCache::deactivate(std::size_t index, uint64_t boundary_cycle) {
  if (standby_[index]) {
    return;
  }
  const uint64_t active_span = boundary_cycle > event_cycle_[index]
                                   ? boundary_cycle - event_cycle_[index]
                                   : 0;
  // The settle period still leaks at the full rate (Table 1: 30 cycles for
  // gated-Vss — why it suffers at short intervals).
  stats_.data_active_cycles += active_span + cfg_.technique.settle_to_low;
  if (cfg_.technique.decay_tags) {
    stats_.tag_active_cycles += active_span + cfg_.technique.settle_to_low;
  }
  standby_[index] = 1;
  event_cycle_[index] = boundary_cycle + cfg_.technique.settle_to_low;
  const std::size_t set = index / cfg_.cache.assoc;
  ++standby_in_set_[set];
  stats_.decays++;
  if (activity_ != nullptr) {
    activity_->line_transitions++;
  }

  if (!cfg_.technique.state_preserving) {
    const std::size_t way = index % cfg_.cache.assoc;
    const sim::Cache::Line& line = cache_.line(set, way);
    if (line.valid) {
      ghost_tag_[index] = line.tag;
      ghost_fresh_[index] = 1;
      const uint64_t wb_addr = cache_.line_addr(set, way);
      if (cache_.invalidate(set, way)) {
        stats_.decay_writebacks++;
        next_.writeback(wb_addr, boundary_cycle);
      }
    } else {
      ghost_fresh_[index] = 0;
    }
  }
}

void ControlledCache::wake(std::size_t index, uint64_t cycle) {
  if (!standby_[index]) {
    return;
  }
  const uint64_t standby_span =
      cycle > event_cycle_[index] ? cycle - event_cycle_[index] : 0;
  stats_.data_standby_cycles += standby_span;
  if (cfg_.technique.decay_tags) {
    stats_.tag_standby_cycles += standby_span;
  }
  standby_[index] = 0;
  --standby_in_set_[index / cfg_.cache.assoc];
  event_cycle_[index] = cycle;
  fault_check_cycle_[index] = cycle;
  ghost_fresh_[index] = 0;
  stats_.wakes++;
  if (activity_ != nullptr) {
    activity_->line_transitions++;
    activity_->drowsy_wakes++;
  }
}

void ControlledCache::note_fill(std::size_t set, std::size_t filled_way,
                                uint64_t cycle) {
  (void)cycle;
  (void)filled_way;
  if (cfg_.technique.state_preserving) {
    return; // ghosts exist only for gated-Vss
  }
  // A fill into the set means LRU would by now have evicted any line that
  // had been idle long enough to decay: their ghosts go stale.
  const std::size_t base = line_index(set, 0);
  for (std::size_t w = 0; w < cfg_.cache.assoc; ++w) {
    ghost_fresh_[base + w] = 0;
  }
}

unsigned ControlledCache::consume_faults(std::size_t index, uint64_t span,
                                         bool standby_span, bool dirty,
                                         uint64_t addr, uint64_t cycle,
                                         bool on_critical_path) {
  if (!injector_ || span == 0) {
    return 0;
  }
  // Gated-Vss standby holds no state: nothing to corrupt (the data was
  // already written back / invalidated at deactivation).
  if (standby_span && !cfg_.technique.state_preserving) {
    return 0;
  }
  const faults::WordFlipSummary flips =
      standby_span ? injector_->draw_standby(index, span)
                   : injector_->draw_active(index, span);
  stats_.fault_checks = injector_->checks();
  stats_.faults_injected = injector_->injected();
  if (flips.total_flips == 0) {
    return 0;
  }
  unsigned extra = 0;
  switch (faults::classify(prot_, flips, dirty)) {
  case faults::Outcome::clean:
    break;
  case faults::Outcome::corrected:
    stats_.fault_corrections += flips.words_single;
    extra = prot_.correction_latency;
    break;
  case faults::Outcome::recovered: {
    // Detected error, clean line: the L2 copy is authoritative.  Refetch
    // it — an induced-miss-style recovery on the critical path.
    stats_.fault_detections++;
    stats_.fault_recoveries++;
    extra = next_.access(addr, /*is_store=*/false, cycle);
    break;
  }
  case faults::Outcome::corruption_detected:
    // Detected but the only up-to-date copy was the flipped one: report
    // an uncorrectable error (machine-check territory).
    stats_.fault_detections++;
    stats_.fault_corruptions_detected++;
    break;
  case faults::Outcome::corruption_silent:
    stats_.fault_corruptions_silent++;
    break;
  }
  return on_critical_path ? extra : 0;
}

unsigned ControlledCache::access(uint64_t addr, bool is_store,
                                 uint64_t cycle) {
  return access_decomposed(addr, cache_.decompose(addr), is_store, cycle);
}

unsigned ControlledCache::access_decomposed(uint64_t addr,
                                            const sim::Cache::Decomposed& d,
                                            bool is_store, uint64_t cycle) {
  if (finalized_) {
    throw std::logic_error("ControlledCache::access after finalize");
  }
  max_cycle_ = std::max(max_cycle_, cycle);
  decay_.advance(max_cycle_,
                 [this](std::size_t idx, uint64_t at) { deactivate(idx, at); });
  while (window_cycles_ != 0 && max_cycle_ >= next_window_) {
    const uint64_t boundary = next_window_;
    next_window_ += window_cycles_;
    if (window_hook_) {
      window_hook_(*this, boundary);
    }
  }

  if (activity_ != nullptr) {
    if (cfg_.role == LevelRole::l2) {
      activity_->l2_accesses++; // priced like the plain CacheLevel it replaces
    } else {
      (is_store ? activity_->l1_writes : activity_->l1_reads)++;
    }
  }

  const std::size_t set = d.set;
  const uint64_t tag = d.tag;
  const TechniqueParams& tech = cfg_.technique;
  const std::size_t assoc = cfg_.cache.assoc;
  const std::size_t base = set * assoc;
  unsigned latency = cfg_.cache.hit_latency;
  if (injector_) {
    latency += prot_.check_latency; // syndrome/parity check on every access
  }

  // Pre-classify against the standby state *before* the cache mutates.
  // One pass over the ways covers both the tag match and the ghost scan;
  // the standby question is answered by the per-set count maintained at
  // wake/deactivate time.  A ghost can only matter on a miss, so a
  // provisional match found before a later way hits is simply unused.
  const bool set_has_standby = standby_in_set_[set] != 0;
  const bool scan_ghosts = !tech.state_preserving && set_has_standby;
  int hit_way = -1;
  bool pre_dirty = false;
  bool induced = false;
  std::size_t induced_line = 0;
  for (std::size_t w = 0; w < assoc; ++w) {
    const sim::Cache::Line& ln = cache_.line(set, w);
    if (ln.valid && ln.tag == tag) {
      hit_way = static_cast<int>(w);
      pre_dirty = ln.dirty;
      break;
    }
    if (scan_ghosts && !induced && standby_[base + w] &&
        ghost_fresh_[base + w] && ghost_tag_[base + w] == tag) {
      induced = true;
      induced_line = base + w;
    }
  }
  // The pre-classify pass already located the matching way; on a hit the
  // cache only needs the LRU/dirty/stat mutations, not a second scan.
  const sim::Cache::AccessResult r =
      hit_way >= 0
          ? cache_.access_known_hit(set, static_cast<std::size_t>(hit_way),
                                    is_store, cycle)
          : cache_.access_decomposed(addr, d, is_store, cycle);
  const std::size_t idx = base + r.way;
  const bool was_standby = standby_[idx] != 0;

  if (r.hit) {
    if (was_standby) {
      // State-preserving standby hit: slow hit, pay the wake penalty.
      stats_.slow_hits++;
      induced_events_window_++;
      if (induced_hook_) {
        induced_hook_(idx);
      }
      latency += tech.decay_tags ? tech.wake_extra_tags_decayed
                                 : tech.wake_extra_tags_awake;
      const uint64_t standby_span =
          cycle > event_cycle_[idx] ? cycle - event_cycle_[idx] : 0;
      wake(idx, cycle);
      // The line's contents sat at the retention voltage for the whole
      // standby span: check them as they are consumed.
      latency += consume_faults(idx, standby_span, /*standby_span=*/true,
                                pre_dirty, addr, cycle,
                                /*on_critical_path=*/true);
    } else {
      stats_.hits++;
      if (injector_ && cfg_.faults.active_rate_per_bit_cycle > 0.0) {
        const uint64_t active_span = cycle > fault_check_cycle_[idx]
                                         ? cycle - fault_check_cycle_[idx]
                                         : 0;
        latency += consume_faults(idx, active_span, /*standby_span=*/false,
                                  pre_dirty, addr, cycle,
                                  /*on_critical_path=*/true);
      }
    }
  } else {
    // Miss path.
    if (induced) {
      stats_.induced_misses++;
      induced_events_window_++;
      if (induced_hook_) {
        induced_hook_(induced_line);
      }
    } else {
      stats_.true_misses++;
      true_misses_window_++;
      if (set_has_standby) {
        stats_.true_misses_on_standby_set++;
        // Drowsy must wake the standby tags before it can conclude "miss";
        // gated-Vss pays nothing (standby ways are known misses).
        latency += tech.true_miss_extra_tags_decayed;
      }
    }
    if (r.writeback) {
      // A dirty victim's data is read out for the writeback; if it sat in
      // (state-preserving) standby, its flips travel with it — off the
      // critical path, but corruption all the same.
      if (injector_) {
        const uint64_t since =
            was_standby ? event_cycle_[idx] : fault_check_cycle_[idx];
        const uint64_t victim_span = cycle > since ? cycle - since : 0;
        consume_faults(idx, victim_span, /*standby_span=*/was_standby,
                       /*dirty=*/true, r.writeback_addr, cycle,
                       /*on_critical_path=*/false);
      }
      next_.writeback(r.writeback_addr, cycle);
    }
    latency += next_.access(addr, /*is_store=*/false, cycle);
    if (was_standby) {
      wake(idx, cycle); // fill powers the way back up (settle overlapped)
    }
    note_fill(r.set, r.way, cycle);
  }

  decay_.on_access(idx);
  if (injector_) {
    fault_check_cycle_[idx] = cycle;
  }
  if (!tech.state_preserving) {
    ghost_fresh_[idx] = 0;
  }
  return latency;
}

void ControlledCache::finalize(uint64_t end_cycle) {
  if (finalized_) {
    return;
  }
  max_cycle_ = std::max(max_cycle_, end_cycle);
  decay_.advance(max_cycle_,
                 [this](std::size_t idx, uint64_t at) { deactivate(idx, at); });
  for (std::size_t i = 0; i < event_cycle_.size(); ++i) {
    const uint64_t span =
        max_cycle_ > event_cycle_[i] ? max_cycle_ - event_cycle_[i] : 0;
    if (standby_[i]) {
      stats_.data_standby_cycles += span;
      if (cfg_.technique.decay_tags) {
        stats_.tag_standby_cycles += span;
      }
    } else {
      stats_.data_active_cycles += span;
      if (cfg_.technique.decay_tags) {
        stats_.tag_active_cycles += span;
      }
    }
  }
  if (!cfg_.technique.decay_tags) {
    // Tags never decayed: active for the whole run.
    stats_.tag_active_cycles =
        static_cast<unsigned long long>(event_cycle_.size()) * max_cycle_;
    stats_.tag_standby_cycles = 0;
  }
  stats_.counter_ticks = decay_.counter_ticks();
  if (activity_ != nullptr) {
    activity_->counter_ticks += decay_.counter_ticks();
  }
  finalized_ = true;
}

void ControlledCache::set_decay_interval(uint64_t interval) {
  decay_.set_interval(interval);
}

unsigned long long ControlledCache::drain_induced_events() {
  const unsigned long long v = induced_events_window_;
  induced_events_window_ = 0;
  return v;
}

unsigned long long ControlledCache::drain_true_misses() {
  const unsigned long long v = true_misses_window_;
  true_misses_window_ = 0;
  return v;
}

void ControlledCache::set_window_hook(uint64_t window_cycles,
                                      WindowHook hook) {
  window_cycles_ = window_cycles;
  next_window_ = max_cycle_ + window_cycles;
  window_hook_ = std::move(hook);
}

} // namespace leakctl
