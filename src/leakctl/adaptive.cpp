#include "leakctl/adaptive.h"

#include <algorithm>

namespace leakctl {

FeedbackController::FeedbackController(FeedbackConfig cfg) : cfg_(cfg) {}

void FeedbackController::attach(ControlledCache& cc) {
  cc.set_window_hook(cfg_.window_cycles,
                     [this](ControlledCache& cache, uint64_t boundary) {
                       on_window(cache, boundary);
                     });
}

void FeedbackController::on_window(ControlledCache& cc,
                                   uint64_t boundary_cycle) {
  (void)boundary_cycle;
  const double events = static_cast<double>(cc.drain_induced_events());
  const double rate = events / static_cast<double>(cfg_.window_cycles);
  const uint64_t current = cc.decay_interval();
  if (rate > cfg_.target_rate * (1.0 + cfg_.deadband)) {
    // Too many induced events: decay less aggressively.
    const uint64_t next = std::min<uint64_t>(
        cfg_.max_interval,
        static_cast<uint64_t>(static_cast<double>(current) * cfg_.gain));
    if (next != current) {
      cc.set_decay_interval(next);
      ++ups_;
    }
  } else if (rate < cfg_.target_rate * (1.0 - cfg_.deadband)) {
    // Few induced events: we can decay more aggressively and save more.
    const uint64_t next = std::max<uint64_t>(
        cfg_.min_interval,
        static_cast<uint64_t>(static_cast<double>(current) / cfg_.gain));
    if (next != current) {
      cc.set_decay_interval(next);
      ++downs_;
    }
  }
}

} // namespace leakctl
