// The other two adaptive-decay approaches the paper identifies (Sec. 5.4):
//
//  * Kaxiras et al. [19]: *per-line* adaptive decay intervals — each line
//    carries a few bits selecting among exponentially-spaced intervals;
//    a premature deactivation (induced event) promotes the line to a longer
//    interval, and a periodic forgetting step demotes all lines so the
//    intervals re-shorten when behaviour changes.
//
//  * Zhou et al. [33], *adaptive mode control* (AMC): the tags stay awake
//    and the controller holds the ratio of "sleep misses" (would-be hits on
//    deactivated lines, i.e. induced events) to real misses inside a target
//    band by adjusting the global decay interval.
//
// Both require awake tags to observe induced events, like the feedback
// controller in adaptive.h.
#pragma once

#include <cstdint>

#include "leakctl/controlled_cache.h"

namespace leakctl {

/// Kaxiras-style per-line interval adaptation.
struct PerLineAdaptiveConfig {
  uint16_t min_shift = 0;  ///< threshold = 4 << shift epochs
  uint16_t max_shift = 4;  ///< up to 16x the base interval
  uint64_t forget_window_cycles = 200'000; ///< demote everything periodically
};

class PerLineAdaptiveController {
public:
  explicit PerLineAdaptiveController(PerLineAdaptiveConfig cfg = {});

  /// Installs both the per-event induced hook (promotion) and the periodic
  /// window hook (forgetting) on @p cc.  Must outlive the run.
  void attach(ControlledCache& cc);

  /// Exposed for tests.
  void on_induced(ControlledCache& cc, std::size_t line_index);
  void on_forget(ControlledCache& cc);

  unsigned long long promotions() const { return promotions_; }
  unsigned long long demotions() const { return demotions_; }

private:
  PerLineAdaptiveConfig cfg_;
  std::vector<uint16_t> shift_;
  unsigned long long promotions_ = 0;
  unsigned long long demotions_ = 0;
};

/// Zhou-style adaptive mode control on the global interval.
struct AmcConfig {
  uint64_t window_cycles = 50'000;
  /// Target band for induced events as a fraction of real misses
  /// ("performance factor" in the AMC paper).
  double target_ratio = 0.05;
  double band = 0.5; ///< +/- fraction around the target
  uint64_t min_interval = 1024;
  uint64_t max_interval = 65536;
};

class AdaptiveModeControl {
public:
  explicit AdaptiveModeControl(AmcConfig cfg = {});

  void attach(ControlledCache& cc);
  void on_window(ControlledCache& cc, uint64_t boundary_cycle);

  unsigned long long adjustments() const { return ups_ + downs_; }
  unsigned long long ups() const { return ups_; }
  unsigned long long downs() const { return downs_; }

private:
  AmcConfig cfg_;
  unsigned long long ups_ = 0;
  unsigned long long downs_ = 0;
};

} // namespace leakctl
