#include "leakctl/adaptive_modes.h"

#include <algorithm>

namespace leakctl {

PerLineAdaptiveController::PerLineAdaptiveController(PerLineAdaptiveConfig cfg)
    : cfg_(cfg) {}

void PerLineAdaptiveController::attach(ControlledCache& cc) {
  shift_.assign(cc.lines(), cfg_.min_shift);
  for (std::size_t i = 0; i < shift_.size(); ++i) {
    cc.set_line_decay_threshold(i, static_cast<uint16_t>(4u << shift_[i]));
  }
  cc.set_induced_hook(
      [this, &cc](std::size_t line) { on_induced(cc, line); });
  cc.set_window_hook(cfg_.forget_window_cycles,
                     [this](ControlledCache& cache, uint64_t) {
                       on_forget(cache);
                     });
}

void PerLineAdaptiveController::on_induced(ControlledCache& cc,
                                           std::size_t line_index) {
  // Premature deactivation: this line's data was still live.  Give it a
  // longer leash.
  uint16_t& shift = shift_[line_index];
  if (shift < cfg_.max_shift) {
    ++shift;
    cc.set_line_decay_threshold(line_index,
                                static_cast<uint16_t>(4u << shift));
    ++promotions_;
  }
}

void PerLineAdaptiveController::on_forget(ControlledCache& cc) {
  // Forgetting: demote every line one step so intervals track phase
  // changes instead of ratcheting up forever.
  for (std::size_t i = 0; i < shift_.size(); ++i) {
    if (shift_[i] > cfg_.min_shift) {
      --shift_[i];
      cc.set_line_decay_threshold(i, static_cast<uint16_t>(4u << shift_[i]));
      ++demotions_;
    }
  }
}

AdaptiveModeControl::AdaptiveModeControl(AmcConfig cfg) : cfg_(cfg) {}

void AdaptiveModeControl::attach(ControlledCache& cc) {
  cc.set_window_hook(cfg_.window_cycles,
                     [this](ControlledCache& cache, uint64_t boundary) {
                       on_window(cache, boundary);
                     });
}

void AdaptiveModeControl::on_window(ControlledCache& cc,
                                    uint64_t boundary_cycle) {
  (void)boundary_cycle;
  const double induced = static_cast<double>(cc.drain_induced_events());
  const double real = static_cast<double>(cc.drain_true_misses());
  if (induced + real < 8.0) {
    return; // not enough signal this window
  }
  const double ratio = induced / std::max(real, 1.0);
  const uint64_t current = cc.decay_interval();
  if (ratio > cfg_.target_ratio * (1.0 + cfg_.band)) {
    const uint64_t next = std::min<uint64_t>(cfg_.max_interval, current * 2);
    if (next != current) {
      cc.set_decay_interval(next);
      ++ups_;
    }
  } else if (ratio < cfg_.target_ratio * (1.0 - cfg_.band)) {
    const uint64_t next = std::max<uint64_t>(cfg_.min_interval, current / 2);
    if (next != current) {
      cc.set_decay_interval(next);
      ++downs_;
    }
  }
}

} // namespace leakctl
