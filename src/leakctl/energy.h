// Net energy-savings accounting (paper Sec. 2.3 and Sec. 5.1).
//
// The paper's figure of merit is *net* cache-leakage savings: the gross
// leakage saved by standby residency, minus every cost the technique
// introduces:
//   1. dynamic power of the extra hardware (decay counters),
//   2. leakage of that extra hardware,
//   3. dynamic power of mode transitions (and drowsy wake-ups),
//   4. dynamic power of extra execution time and of extra L2 / tag
//      accesses — obtained, as in the paper, by differencing the dynamic
//      energy of the technique run against the baseline run.
//
// All leakage terms come from HotLeakage at the experiment's operating
// point; all dynamic terms from the Wattch-style event energies.
#pragma once

#include <string>
#include <vector>

#include "hotleakage/model.h"
#include "leakctl/controlled_cache.h"
#include "sim/core.h"
#include "wattch/power.h"

namespace leakctl {

/// Inputs describing one (baseline, technique) run pair.
struct RunPair {
  sim::RunStats base_run;
  wattch::Activity base_activity;
  sim::RunStats tech_run;
  wattch::Activity tech_activity;
  ControlStats control;
};

/// Energy breakdown in joules plus the paper's reported ratios.
struct EnergyBreakdown {
  double baseline_leakage_j = 0.0;  ///< whole L1D leakage, baseline run
  double technique_leakage_j = 0.0; ///< residual leakage, technique run
  double decay_hw_leakage_j = 0.0;  ///< cost #2
  double extra_dynamic_j = 0.0;     ///< costs #1, #3, #4 (activity delta)
  /// Reliability costs (zero unless fault protection is configured): the
  /// check-bit cells leak alongside the data array in whatever mode the
  /// line is in, and every access pays the encode/check energy.
  double protection_leakage_j = 0.0;
  double protection_dynamic_j = 0.0;
  double gross_savings_j = 0.0;
  double net_savings_j = 0.0;

  /// Paper's y-axes.
  double net_savings_frac = 0.0; ///< of baseline cache leakage energy
  double perf_loss_frac = 0.0;
  double turnoff_ratio = 0.0;
};

/// Compute the breakdown for one benchmark run pair.
/// @p model must already be at the experiment's operating point.
/// @p fault_cfg prices the protection scheme's storage leakage and
/// per-access energy against the net savings; the default (disabled)
/// config adds nothing.
EnergyBreakdown compute_energy(const hotleakage::LeakageModel& model,
                               const hotleakage::CacheGeometry& geom,
                               const wattch::PowerParams& power,
                               const TechniqueParams& technique,
                               const RunPair& runs, double clock_hz,
                               const faults::FaultConfig& fault_cfg = {});

/// The L1 D-cache geometry corresponding to a sim::CacheConfig.
hotleakage::CacheGeometry geometry_of(const sim::CacheConfig& cfg,
                                      std::size_t physical_address_bits = 40);

/// One hierarchy level as the total-leakage rollup sees it: geometry plus,
/// when the level is controlled, its technique and run statistics.
struct LevelInput {
  std::string name;                ///< "l1d", "l2", ...
  hotleakage::CacheGeometry geom;
  bool controlled = false;
  TechniqueParams technique{};        ///< meaningful when controlled
  const ControlStats* control = nullptr; ///< required when controlled
  faults::FaultConfig faults{};       ///< protection pricing when controlled
};

/// One level's share of the hierarchy's leakage energy, with the
/// subthreshold/gate decomposition (hotleakage sram_power_split) that the
/// multi-level trade-off turns on: gate leakage does not shrink in drowsy
/// standby the way subthreshold does, and large L2 arrays carry most of
/// the gate-oxide area (Bai et al., PAPERS.md).
struct LevelEnergy {
  std::string name;
  bool controlled = false;
  double baseline_leakage_j = 0.0;  ///< same geometry, fully active, t_base
  double technique_leakage_j = 0.0; ///< residual over the technique run
  double baseline_gate_j = 0.0;     ///< gate-tunnelling share of baseline
  double technique_gate_j = 0.0;    ///< gate-tunnelling share of residual
  double decay_hw_leakage_j = 0.0;  ///< controlled levels only
  double protection_leakage_j = 0.0;
  double protection_dynamic_j = 0.0;
  /// This level's own contribution: baseline - technique - its hw and
  /// protection costs.  Negative for an uncontrolled level on a slowed
  /// run (it leaks for longer) — the effect that can flip an L1-only
  /// ranking once the L2 is on the books.
  double net_savings_j = 0.0;
  /// Control-stat snapshot for the report (zero for plain levels).
  unsigned long long induced_misses = 0;
  unsigned long long slow_hits = 0;
  unsigned long long wakes = 0;
  unsigned long long decays = 0;
  unsigned long long decay_writebacks = 0;
  double turnoff_ratio = 0.0;
};

/// The schema-3 "total hierarchy leakage" section: per-level breakdowns
/// plus totals.  extra_dynamic_j is global (one activity delta covers the
/// whole machine), so it is subtracted once from the summed level nets,
/// not apportioned.
struct HierarchyEnergy {
  std::vector<LevelEnergy> levels;
  double extra_dynamic_j = 0.0;
  double total_baseline_leakage_j = 0.0;
  double total_technique_leakage_j = 0.0;
  double total_gate_leakage_j = 0.0; ///< technique-run gate total
  double total_net_savings_j = 0.0;  ///< sum of level nets - extra_dynamic
  double total_net_savings_frac = 0.0; ///< of total baseline leakage
};

/// Roll up the hierarchy's leakage.  For the legacy two-level shape
/// (controlled L1D over a plain L2) levels[0]'s baseline/technique/net
/// equal compute_energy's to the bit: both integrate the same residency
/// counters against the same sram_power totals.
HierarchyEnergy compute_hierarchy_energy(const hotleakage::LeakageModel& model,
                                         const std::vector<LevelInput>& levels,
                                         const RunPair& runs,
                                         const wattch::PowerParams& power,
                                         double clock_hz);

} // namespace leakctl
