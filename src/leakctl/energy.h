// Net energy-savings accounting (paper Sec. 2.3 and Sec. 5.1).
//
// The paper's figure of merit is *net* cache-leakage savings: the gross
// leakage saved by standby residency, minus every cost the technique
// introduces:
//   1. dynamic power of the extra hardware (decay counters),
//   2. leakage of that extra hardware,
//   3. dynamic power of mode transitions (and drowsy wake-ups),
//   4. dynamic power of extra execution time and of extra L2 / tag
//      accesses — obtained, as in the paper, by differencing the dynamic
//      energy of the technique run against the baseline run.
//
// All leakage terms come from HotLeakage at the experiment's operating
// point; all dynamic terms from the Wattch-style event energies.
#pragma once

#include "hotleakage/model.h"
#include "leakctl/controlled_cache.h"
#include "sim/core.h"
#include "wattch/power.h"

namespace leakctl {

/// Inputs describing one (baseline, technique) run pair.
struct RunPair {
  sim::RunStats base_run;
  wattch::Activity base_activity;
  sim::RunStats tech_run;
  wattch::Activity tech_activity;
  ControlStats control;
};

/// Energy breakdown in joules plus the paper's reported ratios.
struct EnergyBreakdown {
  double baseline_leakage_j = 0.0;  ///< whole L1D leakage, baseline run
  double technique_leakage_j = 0.0; ///< residual leakage, technique run
  double decay_hw_leakage_j = 0.0;  ///< cost #2
  double extra_dynamic_j = 0.0;     ///< costs #1, #3, #4 (activity delta)
  /// Reliability costs (zero unless fault protection is configured): the
  /// check-bit cells leak alongside the data array in whatever mode the
  /// line is in, and every access pays the encode/check energy.
  double protection_leakage_j = 0.0;
  double protection_dynamic_j = 0.0;
  double gross_savings_j = 0.0;
  double net_savings_j = 0.0;

  /// Paper's y-axes.
  double net_savings_frac = 0.0; ///< of baseline cache leakage energy
  double perf_loss_frac = 0.0;
  double turnoff_ratio = 0.0;
};

/// Compute the breakdown for one benchmark run pair.
/// @p model must already be at the experiment's operating point.
/// @p fault_cfg prices the protection scheme's storage leakage and
/// per-access energy against the net savings; the default (disabled)
/// config adds nothing.
EnergyBreakdown compute_energy(const hotleakage::LeakageModel& model,
                               const hotleakage::CacheGeometry& geom,
                               const wattch::PowerParams& power,
                               const TechniqueParams& technique,
                               const RunPair& runs, double clock_hz,
                               const faults::FaultConfig& fault_cfg = {});

/// The L1 D-cache geometry corresponding to a sim::CacheConfig.
hotleakage::CacheGeometry geometry_of(const sim::CacheConfig& cfg,
                                      std::size_t physical_address_bits = 40);

} // namespace leakctl
