#include "leakctl/technique.h"

namespace leakctl {

TechniqueParams TechniqueParams::drowsy() {
  TechniqueParams t;
  t.name = "drowsy";
  t.mode = hotleakage::StandbyMode::drowsy;
  t.state_preserving = true;
  t.decay_tags = true;
  t.wake_extra_tags_decayed = 3;
  t.wake_extra_tags_awake = 1;
  t.true_miss_extra_tags_decayed = 3;
  t.settle_to_low = 3;
  t.settle_to_high = 3;
  return t;
}

TechniqueParams TechniqueParams::gated_vss() {
  TechniqueParams t;
  t.name = "gated-vss";
  t.mode = hotleakage::StandbyMode::gated;
  t.state_preserving = false;
  t.decay_tags = true;
  // Standby ways cannot hit; there is nothing to wake on the access path.
  t.wake_extra_tags_decayed = 0;
  t.wake_extra_tags_awake = 0;
  t.true_miss_extra_tags_decayed = 0;
  t.settle_to_low = 30; // Table 1: virtual-ground rail discharge is slow
  t.settle_to_high = 3; // overlapped with the L2 access on fills
  return t;
}

TechniqueParams TechniqueParams::rbb() {
  TechniqueParams t;
  t.name = "rbb";
  t.mode = hotleakage::StandbyMode::rbb;
  t.state_preserving = true;
  t.decay_tags = true;
  // Body-bias settling is slower than a drowsy rail swing.
  t.wake_extra_tags_decayed = 4;
  t.wake_extra_tags_awake = 2;
  t.true_miss_extra_tags_decayed = 4;
  t.settle_to_low = 10;
  t.settle_to_high = 4;
  return t;
}

} // namespace leakctl
