#include "faults/fault_injector.h"

#include <cmath>
#include <vector>

namespace faults {
namespace {

// Counter-based splitmix64: a keyed hash, not a stateful stream, so draw
// ordering is the only thing that matters for reproducibility.
uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t mix(uint64_t seed, uint64_t line, uint64_t ordinal, uint64_t salt) {
  return splitmix64(splitmix64(seed ^ (line * 0xd1342543de82ef95ull)) ^
                    splitmix64(ordinal ^ (salt * 0x2545f4914f6cdd1dull)));
}

double uniform01(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Inverse-CDF Poisson draw; @p mean is small in practice (flips per line
/// event), so the linear scan terminates quickly.  Capped at @p max_k.
unsigned poisson(double mean, double u, unsigned max_k) {
  if (mean <= 0.0) {
    return 0;
  }
  double p = std::exp(-mean);
  double cdf = p;
  unsigned k = 0;
  while (u > cdf && k < max_k) {
    ++k;
    p *= mean / static_cast<double>(k);
    cdf += p;
    if (p < 1e-300) { // numeric floor: the tail carries no mass
      break;
    }
  }
  return k;
}

} // namespace

FaultInjector::FaultInjector(const FaultConfig& cfg, std::size_t line_bits)
    : cfg_(cfg), line_bits_(line_bits),
      words_((line_bits + 63) / 64) {}

WordFlipSummary FaultInjector::draw_standby(std::size_t line_index,
                                            uint64_t span_cycles) {
  return draw(cfg_.standby_rate_per_bit_cycle, line_index, span_cycles);
}

WordFlipSummary FaultInjector::draw_active(std::size_t line_index,
                                           uint64_t span_cycles) {
  return draw(cfg_.active_rate_per_bit_cycle, line_index, span_cycles);
}

WordFlipSummary FaultInjector::draw(double rate, std::size_t line_index,
                                    uint64_t span_cycles) {
  WordFlipSummary s;
  if (!cfg_.enabled || rate <= 0.0 || span_cycles == 0) {
    return s;
  }
  ++checks_;
  const uint64_t ordinal = draw_ordinal_++;
  const double mean =
      rate * static_cast<double>(line_bits_) * static_cast<double>(span_cycles);
  const double u = uniform01(mix(cfg_.seed, line_index, ordinal, /*salt=*/1));
  const unsigned flips =
      poisson(mean, u, static_cast<unsigned>(line_bits_));
  if (flips == 0) {
    return s;
  }
  s.total_flips = flips;
  injected_ += flips;

  // Scatter the flips over the protection words; only the per-word counts
  // matter for classification.
  std::vector<unsigned> word_count(words_, 0);
  for (unsigned i = 0; i < flips; ++i) {
    const uint64_t h = mix(cfg_.seed, line_index, ordinal, /*salt=*/2 + i);
    word_count[h % words_]++;
  }
  for (const unsigned c : word_count) {
    if (c == 0) {
      continue;
    }
    if (c == 1) {
      s.words_single++;
    } else if (c == 2) {
      s.words_double++;
    } else {
      s.words_multi++;
    }
    if (c % 2 == 1) {
      s.words_odd++;
    }
  }
  return s;
}

} // namespace faults
