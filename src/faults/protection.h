// Soft-error protection schemes for SRAM arrays (extension; see the
// reliability axis of Bai et al., "Power-Performance Trade-offs in
// Nanometer-Scale Multi-Level Caches Considering Total Leakage").
//
// A drowsy line at ~1.5x Vt has sharply degraded noise margins: "state
// preserving" is only a statistical statement unless the array carries
// detection/correction bits.  Three schemes are modeled, all at the usual
// 64-bit protection-word granularity:
//
//   * none    — flips are consumed silently;
//   * parity  — one check bit per word; detects odd flip counts.  A
//               detected error is *recoverable* only if a clean copy
//               exists below (clean line => refetch from L2);
//   * SECDED  — Hamming (72,64): corrects single-bit flips in place at a
//               latency penalty, detects double flips (recoverable like
//               parity), and is defeated (possible miscorrection) by
//               triple flips.
//
// The scheme's costs — check-bit storage leakage, per-access check energy
// and latency, correction latency — are priced in leakctl/energy.cpp.
#pragma once

#include <cstddef>

namespace faults {

enum class Protection { none, parity, secded };

/// How the flips of one line event distribute over its protection words;
/// sufficient statistics for outcome classification.
struct WordFlipSummary {
  unsigned total_flips = 0;
  unsigned words_single = 0; ///< words with exactly one flip
  unsigned words_double = 0; ///< words with exactly two flips
  unsigned words_multi = 0;  ///< words with three or more flips
  unsigned words_odd = 0;    ///< words with an odd flip count
};

/// What happened when a (possibly) faulty line was consumed.
enum class Outcome {
  clean,               ///< no flips
  corrected,           ///< SECDED fixed every flipped word in place
  recovered,           ///< detected on a clean line: refetch from below
  corruption_detected, ///< detected on a dirty line: data is lost
  corruption_silent,   ///< undetected (or miscorrected) wrong data consumed
};

/// Cost/geometry knobs of one protection scheme.
struct ProtectionParams {
  Protection scheme = Protection::none;
  std::size_t word_bits = 64;         ///< protection granularity
  std::size_t check_bits_per_word = 0;
  unsigned check_latency = 0;      ///< cycles added to every L1 access
  unsigned correction_latency = 0; ///< extra cycles on a SECDED correction
  /// Per-access check energy as a fraction of one L1 read (encode on
  /// writes, decode/syndrome on reads).
  double check_energy_factor = 0.0;
  /// Energy of one in-place correction, as a fraction of one L1 read.
  double correction_energy_factor = 0.0;

  static ProtectionParams for_scheme(Protection p);

  std::size_t words_per_line(std::size_t line_bits) const {
    return (line_bits + word_bits - 1) / word_bits;
  }
  std::size_t check_bits_per_line(std::size_t line_bits) const {
    return words_per_line(line_bits) * check_bits_per_word;
  }
};

/// Classify one line event.  @p dirty decides whether a detected error is
/// recoverable (clean => a valid copy exists in L2).  Precedence when words
/// disagree: a detectable word forces the whole-line detect path (a refetch
/// also wipes any silently corrupt word); only an event whose *worst* word
/// is undetectable goes silent.
Outcome classify(const ProtectionParams& prot, const WordFlipSummary& flips,
                 bool dirty);

} // namespace faults
