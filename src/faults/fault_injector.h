// Deterministic soft-error (SEU) injection for standby cache lines.
//
// The paper's drowsy mode holds cells at ~1.5x Vt, where the critical
// charge — and with it the soft-error immunity — collapses; gated-Vss
// destroys state outright, so it has nothing left to corrupt.  This
// injector materializes that asymmetry: bit flips arrive as a Poisson
// process over per-line standby-residency bit-cycles (and optionally
// active bit-cycles at a much lower rate), drawn lazily at the moment a
// line's contents are consumed (slow hit or dirty-victim writeback).
//
// Determinism: draws use a counter-based splitmix64 generator keyed on
// (seed, line index, per-line draw ordinal), so the same seed and the same
// access stream reproduce byte-identical fault histories — the property
// the replay tests pin down.  No global RNG state is shared with anything
// else in the simulator.
#pragma once

#include <cstdint>

#include "faults/protection.h"

namespace faults {

/// Fault-model configuration.  Rates are *effective* per-bit-cycle upset
/// probabilities at the operating point; the harness derives them from a
/// raw rate via hotleakage::cells::sram_seu_scale (Vdd/temperature
/// scaling).
struct FaultConfig {
  bool enabled = false;
  /// Upset probability per bit per cycle spent in (state-preserving)
  /// standby.
  double standby_rate_per_bit_cycle = 0.0;
  /// Upset probability per bit per cycle spent fully active (default 0:
  /// full-Vdd cells are treated as robust).
  double active_rate_per_bit_cycle = 0.0;
  Protection protection = Protection::none;
  uint64_t seed = 1;
};

class FaultInjector {
public:
  FaultInjector(const FaultConfig& cfg, std::size_t line_bits);

  /// Draw the flips accumulated by @p line_index over @p span_cycles of
  /// standby residency and summarize their distribution over protection
  /// words.  Each call consumes one deterministic draw ordinal.
  WordFlipSummary draw_standby(std::size_t line_index, uint64_t span_cycles);
  /// Same for active residency (active_rate_per_bit_cycle).
  WordFlipSummary draw_active(std::size_t line_index, uint64_t span_cycles);

  /// Total bit flips materialized so far.
  unsigned long long injected() const { return injected_; }
  /// Draws with a nonzero span examined so far.
  unsigned long long checks() const { return checks_; }

  const FaultConfig& config() const { return cfg_; }

private:
  WordFlipSummary draw(double rate, std::size_t line_index,
                       uint64_t span_cycles);

  FaultConfig cfg_;
  std::size_t line_bits_;
  std::size_t words_;
  uint64_t draw_ordinal_ = 0;
  unsigned long long injected_ = 0;
  unsigned long long checks_ = 0;
};

} // namespace faults
