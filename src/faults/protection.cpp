#include "faults/protection.h"

namespace faults {

ProtectionParams ProtectionParams::for_scheme(Protection p) {
  ProtectionParams prot;
  prot.scheme = p;
  switch (p) {
  case Protection::none:
    break;
  case Protection::parity:
    // One parity bit per 64-bit word; the check overlaps the data read, so
    // no latency cost, only the XOR-tree energy.
    prot.check_bits_per_word = 1;
    prot.check_latency = 0;
    prot.check_energy_factor = 0.02;
    break;
  case Protection::secded:
    // Hamming (72,64): 8 check bits per word.  Syndrome generation sits on
    // the read path (1 cycle); a correction re-cycles through the shifter.
    prot.check_bits_per_word = 8;
    prot.check_latency = 1;
    prot.correction_latency = 3;
    prot.check_energy_factor = 0.10;
    prot.correction_energy_factor = 0.30;
    break;
  }
  return prot;
}

Outcome classify(const ProtectionParams& prot, const WordFlipSummary& flips,
                 bool dirty) {
  if (flips.total_flips == 0) {
    return Outcome::clean;
  }
  switch (prot.scheme) {
  case Protection::none:
    return Outcome::corruption_silent;
  case Protection::parity:
    if (flips.words_odd > 0) {
      return dirty ? Outcome::corruption_detected : Outcome::recovered;
    }
    // Every flipped word took an even number of hits: parity is blind.
    return Outcome::corruption_silent;
  case Protection::secded:
    if (flips.words_double > 0) {
      // DED raises the uncorrectable-error flag for the whole line; the
      // refetch (if clean) also wipes any miscorrected >=3-flip word.
      return dirty ? Outcome::corruption_detected : Outcome::recovered;
    }
    if (flips.words_multi > 0) {
      // A >=3-flip word aliases to a valid single-error syndrome: SECDED
      // "corrects" the wrong bit and the bad data escapes.
      return Outcome::corruption_silent;
    }
    return Outcome::corrected;
  }
  return Outcome::corruption_silent;
}

} // namespace faults
