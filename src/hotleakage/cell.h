// Cell library for HotLeakage (paper Sec. 3.1.2).
//
// Two kinds of cells are supported:
//
//  * complementary static gates described by a pull-down / pull-up network
//    pair — the k_n / k_p derivation enumerates every input combination
//    exactly as the paper's two-input NAND worked example does;
//  * "explicit path" cells (the 6T SRAM cell, sense amplifier) whose leakage
//    paths are not a simple complementary gate; these enumerate their
//    internal states and the off devices leaking in each state.
#pragma once

#include <string>
#include <vector>

#include "hotleakage/network.h"

namespace hotleakage {

/// One subthreshold leakage path in an explicit-path cell state: a single
/// off device (optionally stacked) of the given polarity.
struct LeakPath {
  DeviceType type = DeviceType::nmos;
  double w_over_l = 1.0;
  int stack_depth = 1; ///< number of series off devices in this path
};

/// One internal state of an explicit-path cell (e.g. SRAM storing 0 or 1)
/// with the devices that leak in that state.
struct CellState {
  std::vector<LeakPath> paths;
};

/// A library cell.
struct Cell {
  std::string name;
  int n_inputs = 0;   ///< for gate cells; 0 for explicit-path cells
  int n_nmos = 0;
  int n_pmos = 0;
  /// Gate-cell description (valid when n_inputs > 0).
  Network pdn = Network::leaf({});
  Network pun = Network::leaf({});
  bool is_gate = false;
  /// Explicit-path description (valid when !is_gate).
  std::vector<CellState> states;
  /// Total gate width [m] of all devices, for gate-leakage roll-up.
  double total_gate_width = 0.0;
};

/// Built-in cells.  All sizings are conventional relative ratios; the
/// k_design factors absorb them per the paper.
namespace cells {

/// Static CMOS inverter.
Cell inverter(const TechParams& tech);
/// Two-input NAND — the paper's worked k_design example (Fig. 2, Eqs. 7-8).
Cell nand2(const TechParams& tech);
/// Three-input NAND (decoder predecode stage).
Cell nand3(const TechParams& tech);
/// Two-input NOR.
Cell nor2(const TechParams& tech);
/// Six-transistor SRAM cell with precharged-high bitlines: per stored-bit
/// state, one inverter NMOS, one inverter PMOS, and one access NMOS leak.
Cell sram6t(const TechParams& tech);
/// Latch-style sense amplifier (idle, equalized state).
Cell sense_amp(const TechParams& tech);

/// Soft-error susceptibility of the 6T cell at (@p vdd, @p temperature_k),
/// as a multiplier on the raw SER measured at (vdd_nominal, 300 K).
///
/// The critical charge a particle strike must deposit scales with the
/// stored-node voltage, Qcrit ~ Cnode * Vdd, and the SER follows the
/// Hazucha-Svensson empirical law SER ~ exp(-Qcrit / Qs) — so lowering the
/// supply to the drowsy retention level (~1.5x Vt) raises the upset rate
/// exponentially.  Temperature adds a weak linear acceleration (junction
/// collection efficiency rises with T).  This is the hook the fault
/// injector uses to price "state preservation" honestly.
double sram_seu_scale(const TechParams& tech, double vdd,
                      double temperature_k);

} // namespace cells

} // namespace hotleakage
