#include "hotleakage/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace hotleakage {
namespace {

bool gate_high(const NetTransistor& t, uint32_t inputs) {
  const bool raw = (inputs >> t.input) & 1u;
  return t.negated ? !raw : raw;
}

bool device_on(const NetTransistor& t, uint32_t inputs, DeviceType polarity) {
  const bool high = gate_high(t, inputs);
  return polarity == DeviceType::nmos ? high : !high;
}

} // namespace

Network Network::leaf(NetTransistor t) {
  Network n;
  n.kind_ = Kind::leaf;
  n.transistor_ = t;
  return n;
}

Network Network::series(std::vector<Network> children) {
  if (children.empty()) {
    throw std::invalid_argument("Network::series: empty child list");
  }
  Network n;
  n.kind_ = Kind::series;
  n.children_ = std::move(children);
  return n;
}

Network Network::parallel(std::vector<Network> children) {
  if (children.empty()) {
    throw std::invalid_argument("Network::parallel: empty child list");
  }
  Network n;
  n.kind_ = Kind::parallel;
  n.children_ = std::move(children);
  return n;
}

bool Network::conducts(uint32_t inputs, DeviceType polarity) const {
  switch (kind_) {
  case Kind::leaf:
    return device_on(transistor_, inputs, polarity);
  case Kind::series:
    return std::ranges::all_of(children_, [&](const Network& c) {
      return c.conducts(inputs, polarity);
    });
  case Kind::parallel:
    return std::ranges::any_of(children_, [&](const Network& c) {
      return c.conducts(inputs, polarity);
    });
  }
  return false;
}

double Network::off_leakage(uint32_t inputs, DeviceType polarity, double unit,
                            double stack_factor) const {
  switch (kind_) {
  case Kind::leaf:
    if (device_on(transistor_, inputs, polarity)) {
      // A conducting leaf inside an off series chain passes whatever its
      // neighbours leak; represent it as "no additional resistance".
      return std::numeric_limits<double>::infinity();
    }
    return unit * transistor_.w_over_l;
  case Kind::series: {
    // Current through a series chain is limited by its off devices; each
    // additional series off device attenuates by the stack factor.
    double min_off = std::numeric_limits<double>::infinity();
    int off_count = 0;
    for (const Network& c : children_) {
      if (!c.conducts(inputs, polarity)) {
        min_off = std::min(min_off,
                           c.off_leakage(inputs, polarity, unit, stack_factor));
        ++off_count;
      }
    }
    if (off_count == 0) {
      return std::numeric_limits<double>::infinity(); // chain conducts
    }
    return min_off / std::pow(stack_factor, off_count - 1);
  }
  case Kind::parallel: {
    // An off parallel network has every branch off; their leakages add.
    double total = 0.0;
    for (const Network& c : children_) {
      total += c.off_leakage(inputs, polarity, unit, stack_factor);
    }
    return total;
  }
  }
  return 0.0;
}

int Network::device_count() const {
  if (kind_ == Kind::leaf) {
    return 1;
  }
  int total = 0;
  for (const Network& c : children_) {
    total += c.device_count();
  }
  return total;
}

double stack_factor(const TechParams& tech, const OperatingPoint& op) {
  // Two-device stacks suppress subthreshold leakage by roughly 5-10x at room
  // temperature; the benefit erodes at higher temperature because the
  // intermediate node voltage that creates the reverse Vgs shrinks relative
  // to the thermal voltage.  The DIBL strength of the node sets the base.
  const double base = 3.0 + 1.6 * tech.nmos.dibl_b;
  const double temp_scale = kRoomTemperatureK / op.temperature_k;
  return std::max(1.5, base * temp_scale);
}

} // namespace hotleakage
