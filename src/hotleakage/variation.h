// Inter-die parameter variation (paper Sec. 3.3).
//
// Inter-die variation shifts L, tox, Vdd, and Vth equally across a die.  The
// model draws N Gaussian samples per parameter (mean = nominal, sigma from
// the 3-sigma table: L 47 %, tox 16 %, Vdd 10 %, Vth 13 %), evaluates the
// leakage current for each sampled die, and uses the *mean of the leakage
// currents* in subsequent simulation — exactly the procedure the paper
// describes.  Because leakage is convex (exponential) in these parameters,
// the variation-aware mean exceeds the nominal-parameter leakage.
//
// Sampling is deterministic (fixed seed) so experiments reproduce
// bit-for-bit.
#pragma once

#include <cstdint>

#include "hotleakage/bsim3.h"

namespace hotleakage {

/// Configuration of the inter-die Monte Carlo.
struct VariationConfig {
  bool enabled = true;
  int samples = 256;      ///< dies to sample
  uint64_t seed = 0x5eed5eedULL;
  /// Scales all sigmas; 1.0 uses the technology table values.
  double sigma_scale = 1.0;
};

/// Result of the Monte Carlo: a multiplicative factor applied to nominal
/// leakage, plus diagnostics.
struct VariationResult {
  double mean_factor = 1.0;  ///< mean(I_sampled) / I_nominal
  double min_factor = 1.0;
  double max_factor = 1.0;
  double stddev_factor = 0.0;
};

/// Run the inter-die Monte Carlo for a single off device of @p type at
/// @p op and return the leakage scaling statistics.
VariationResult interdie_variation(const TechParams& tech, DeviceType type,
                                   const OperatingPoint& op,
                                   const VariationConfig& cfg = {});

/// Convenience: mean scaling factor averaged over NMOS and PMOS (used to
/// scale structure-level leakage).  Returns 1.0 when disabled.
double variation_scale(const TechParams& tech, const OperatingPoint& op,
                       const VariationConfig& cfg = {});

} // namespace hotleakage
