// Top-level HotLeakage API (paper Sec. 3.4).
//
// A LeakageModel binds a technology node, a variation configuration, and a
// current operating point (temperature, Vdd).  It exposes leakage *power*
// for microarchitectural structures — cache data arrays, tag arrays, edge
// logic, register files — per line and per standby mode, and recomputes the
// underlying currents whenever the operating point changes (supporting DVS
// and thermal feedback, the motivating use cases for moving beyond
// Butts-Sohi's fixed unit leakage).
#pragma once

#include <cstddef>

#include "hotleakage/bsim3.h"
#include "hotleakage/cell.h"
#include "hotleakage/variation.h"

namespace hotleakage {

/// Standby modes the generic line-deactivation abstraction supports
/// (paper Sec. 2.3): the three techniques studied plus fully active.
enum class StandbyMode {
  active, ///< normal operation, full leakage
  drowsy, ///< state-preserving: Vdd lowered to ~1.5x Vth
  gated,  ///< non-state-preserving: high-Vt footer disconnects ground
  rbb,    ///< state-preserving: reverse body bias raises Vth (GIDL-limited)
};

/// Geometry of one cache-like SRAM structure.
struct CacheGeometry {
  std::size_t lines = 1024;     ///< total cache lines (all ways)
  std::size_t line_bytes = 64;  ///< data bytes per line
  std::size_t tag_bits = 28;    ///< tag + state bits per line
  std::size_t assoc = 2;
  /// Rows in the physical SRAM array (sets); columns follow from geometry.
  std::size_t rows() const { return lines / (assoc ? assoc : 1); }
  std::size_t data_bits_per_line() const { return line_bytes * 8; }
};

/// Knobs of the standby-mode circuits.
struct StandbyParams {
  /// Drowsy retention supply as a multiple of NMOS Vth (paper: ~1.5x).
  double drowsy_vdd_over_vth = 1.5;
  /// High-Vt of the gated-Vss footer device [V].
  double gated_footer_vth = 0.35;
  /// Reverse body bias magnitude for RBB mode [V].
  double rbb_bias = 0.40;
  /// Extra Vth shift RBB achieves at the given bias [V].
  double rbb_vth_shift = 0.12;
};

/// A LeakageModel evaluates leakage power for structures at the current
/// operating point.  Copyable value type; all evaluation is const.
class LeakageModel {
public:
  LeakageModel(TechNode node, VariationConfig variation = {},
               StandbyParams standby = {});

  /// Change temperature and/or Vdd; leakage currents are recomputed lazily
  /// at the next query (the recompute is cheap — closed-form equations plus
  /// a cached variation factor).
  void set_operating_point(const OperatingPoint& op);
  const OperatingPoint& operating_point() const { return op_; }
  const TechParams& tech() const { return tech_; }
  const StandbyParams& standby_params() const { return standby_; }

  /// Leakage power [W] of one cache line's data cells in @p mode.
  double data_line_power(const CacheGeometry& geom, StandbyMode mode) const;
  /// Leakage power [W] of one cache line's tag cells in @p mode.
  double tag_line_power(const CacheGeometry& geom, StandbyMode mode) const;
  /// Leakage power [W] of the array's edge logic (decoders, wordline
  /// drivers, sense amps); always active.
  double edge_logic_power(const CacheGeometry& geom) const;
  /// Leakage power [W] of the per-line decay hardware (2-bit counter and
  /// mode latch) added by any dynamic leakage-control technique.
  double decay_hardware_power(const CacheGeometry& geom) const;

  /// Whole structure fully active, including edge logic [W].
  double structure_power(const CacheGeometry& geom) const;

  /// Register-file leakage [W] (HotLeakage also ships a register-file
  /// model): @p entries x @p bits 6T-equivalent cells plus edge logic.
  double register_file_power(std::size_t entries, std::size_t bits) const;

  /// Ratio of standby to active leakage power for @p mode at the current
  /// operating point; the quantity that drives technique effectiveness.
  double standby_ratio(StandbyMode mode) const;

  /// The inter-die variation scaling currently applied.
  double variation_factor() const { return variation_factor_; }

  /// Leakage power [W] of @p n_cells 6T SRAM cells in @p mode.  The
  /// building block for "other cache-like structures" (branch predictor
  /// tables, BTBs, ...) — adding a structure model is one call.
  double sram_power(double n_cells, StandbyMode mode) const;

  /// sram_power decomposed into its subthreshold and gate-tunnelling
  /// components (src/hotleakage/gate_leakage).  By construction
  /// split.total() == sram_power(n_cells, mode): the split applies the
  /// gate fraction of the cell's leakage at the mode's evaluation supply
  /// (the drowsy retention rail for drowsy, the full rail otherwise) to
  /// the mode's total.  Gated-Vss and RBB scale both components by the
  /// same suppression factor — a simplification, since the footer mainly
  /// attenuates the subthreshold path, but one that keeps the split and
  /// the mode totals consistent.  Gate leakage grows relative to
  /// subthreshold at large L2/L3 arrays, which is what makes per-level
  /// accounting matter (Bai et al., PAPERS.md).
  struct LeakagePowerSplit {
    double subthreshold_w = 0.0;
    double gate_w = 0.0;
    double total() const { return subthreshold_w + gate_w; }
  };
  LeakagePowerSplit sram_power_split(double n_cells, StandbyMode mode) const;

private:

  TechParams tech_;
  VariationConfig variation_;
  StandbyParams standby_;
  OperatingPoint op_;
  Cell sram_;
  Cell decoder_gate_;
  Cell senseamp_;
  double variation_factor_ = 1.0;
};

} // namespace hotleakage
