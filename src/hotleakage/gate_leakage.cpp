#include "hotleakage/gate_leakage.h"

#include <cmath>
#include <stdexcept>

namespace hotleakage {

double gate_current_density(const TechParams& tech, const OperatingPoint& op,
                            const GateLeakOverrides& ovr) {
  if (tech.gate_leak_density <= 0.0) {
    return 0.0;
  }
  if (op.vdd < 0.0) {
    throw std::invalid_argument("gate_current_density: Vdd must be >= 0");
  }
  const double tox = ovr.tox > 0.0 ? ovr.tox : tech.tox;
  // Calibration anchor: density = gate_leak_density at (tech.tox,
  // vdd_nominal, 300 K).  Exponential in oxide thinning, power law in Vdd,
  // weak linear temperature dependence.
  const double tox_factor = std::exp(-tech.gate_leak_tox_b * (tox - tech.tox));
  const double vdd_factor =
      op.vdd == 0.0 ? 0.0
                    : std::pow(op.vdd / tech.vdd_nominal, tech.gate_leak_vdd_exp);
  const double temp_factor =
      1.0 + tech.gate_leak_tc * (op.temperature_k - kRoomTemperatureK);
  return tech.gate_leak_density * tox_factor * vdd_factor *
         std::max(temp_factor, 0.0);
}

double gate_current(const TechParams& tech, const OperatingPoint& op,
                    const GateLeakOverrides& ovr) {
  const double width = ovr.width_m > 0.0 ? ovr.width_m : 2.0 * tech.lgate;
  return gate_current_density(tech, op, ovr) * width;
}

double gidl_penalty_factor(const TechParams& tech, double vbb) {
  // GIDL grows roughly exponentially with reverse bias magnitude, and its
  // onset sharpens at thinner oxides.  At 70 nm a -0.5 V body bias roughly
  // doubles the floor leakage; at 180 nm the effect is minor.
  const double severity = 4.0e-9 / tech.tox; // ~3.3 at 70 nm, ~1.0 at 180 nm
  const double bias = std::fabs(vbb);
  return 1.0 + severity * (std::exp(bias) - 1.0) * 0.25;
}

} // namespace hotleakage
