#include "hotleakage/model.h"

#include <cmath>
#include <stdexcept>

#include "hotleakage/gate_leakage.h"
#include "hotleakage/kdesign.h"

namespace hotleakage {

LeakageModel::LeakageModel(TechNode node, VariationConfig variation,
                           StandbyParams standby)
    : tech_(tech_params(node)),
      variation_(variation),
      standby_(standby),
      op_{.temperature_k = 383.15, .vdd = tech_.vdd_nominal},
      sram_(cells::sram6t(tech_)),
      decoder_gate_(cells::nand3(tech_)),
      senseamp_(cells::sense_amp(tech_)) {
  set_operating_point(op_);
}

void LeakageModel::set_operating_point(const OperatingPoint& op) {
  if (op.temperature_k <= 0.0) {
    throw std::invalid_argument("set_operating_point: temperature must be > 0");
  }
  op_ = op;
  variation_factor_ = variation_scale(tech_, op_, variation_);
}

double LeakageModel::sram_power(double n_cells, StandbyMode mode) const {
  switch (mode) {
  case StandbyMode::active: {
    return static_power(tech_, sram_, op_, n_cells) * variation_factor_;
  }
  case StandbyMode::drowsy: {
    // Retention supply ~1.5x Vth: both the subthreshold (via DIBL and the
    // drain term) and the gate tunnelling (Vdd power law) collapse, but the
    // cell keeps its state.
    // The retention supply is a static design choice, set from the nominal
    // (300 K) threshold voltage: Vdd_drowsy ~ 1.5x Vth (paper Sec. 2.2).
    OperatingPoint drowsy_op = op_;
    drowsy_op.vdd = standby_.drowsy_vdd_over_vth *
                    std::max(tech_.nmos.vth0, tech_.pmos.vth0);
    return static_power(tech_, sram_, drowsy_op, n_cells) * variation_factor_;
  }
  case StandbyMode::gated: {
    // The off high-Vt footer stacks with every path in the line.  Residual
    // current is the footer's own subthreshold leakage attenuated by the
    // stack effect; state is lost.
    const double active = static_power(tech_, sram_, op_, n_cells);
    const double vt = thermal_voltage(op_.temperature_k);
    const double vth_n = vth_at_temperature(tech_.nmos, op_.temperature_k);
    const double footer_suppression =
        std::exp((standby_.gated_footer_vth - vth_n) /
                 (tech_.nmos.n_swing * vt));
    const double sf = stack_factor(tech_, op_);
    return active / (footer_suppression * sf) * variation_factor_;
  }
  case StandbyMode::rbb: {
    // RBB raises Vth, cutting subthreshold leakage exponentially, but GIDL
    // claws back part of the benefit at thin-oxide nodes (Sec. 3.2).
    const double in_active = unit_leakage(tech_, DeviceType::nmos, op_);
    DeviceOverrides ovr;
    ovr.vth_delta = standby_.rbb_vth_shift;
    const double in_rbb = subthreshold_current(tech_, DeviceType::nmos, op_, ovr);
    const double sub_ratio = in_active > 0.0 ? in_rbb / in_active : 1.0;
    const double gidl = gidl_penalty_factor(tech_, -standby_.rbb_bias);
    const double active = static_power(tech_, sram_, op_, n_cells);
    return active * sub_ratio * gidl * variation_factor_;
  }
  }
  throw std::invalid_argument("sram_power: unknown standby mode");
}

LeakageModel::LeakagePowerSplit
LeakageModel::sram_power_split(double n_cells, StandbyMode mode) const {
  const double total = sram_power(n_cells, mode);
  OperatingPoint eval_op = op_;
  if (mode == StandbyMode::drowsy) {
    eval_op.vdd = standby_.drowsy_vdd_over_vth *
                  std::max(tech_.nmos.vth0, tech_.pmos.vth0);
  }
  const CellLeakage cell = cell_leakage(tech_, sram_, eval_op);
  const double cell_total = cell.total();
  const double gate_frac = cell_total > 0.0 ? cell.gate / cell_total : 0.0;
  return {.subthreshold_w = total * (1.0 - gate_frac),
          .gate_w = total * gate_frac};
}

double LeakageModel::data_line_power(const CacheGeometry& geom,
                                     StandbyMode mode) const {
  return sram_power(static_cast<double>(geom.data_bits_per_line()), mode);
}

double LeakageModel::tag_line_power(const CacheGeometry& geom,
                                    StandbyMode mode) const {
  return sram_power(static_cast<double>(geom.tag_bits), mode);
}

double LeakageModel::edge_logic_power(const CacheGeometry& geom) const {
  // Decoder: ~2 NAND3 levels per row plus wordline drivers (as inverters);
  // sense amps: one per data column pair (column-muxed 2:1).
  const double rows = static_cast<double>(geom.rows());
  const double cols = static_cast<double>(
      geom.data_bits_per_line() * geom.assoc);
  const double n_decoder = rows * 3.0;
  const double n_senseamp = cols / 2.0;
  const double p_dec =
      static_power(tech_, decoder_gate_, op_, n_decoder);
  const double p_sa = static_power(tech_, senseamp_, op_, n_senseamp);
  return (p_dec + p_sa) * variation_factor_;
}

double LeakageModel::decay_hardware_power(const CacheGeometry& geom) const {
  // Per line: a 2-bit saturating counter (~2 flops ~= 24 transistors) plus a
  // standby latch and the sleep device itself; model as 30 inverter
  // equivalents per line, always active.
  const Cell inv = cells::inverter(tech_);
  const double n = static_cast<double>(geom.lines) * 15.0;
  return static_power(tech_, inv, op_, n) * variation_factor_;
}

double LeakageModel::structure_power(const CacheGeometry& geom) const {
  const double lines = static_cast<double>(geom.lines);
  return lines * (data_line_power(geom, StandbyMode::active) +
                  tag_line_power(geom, StandbyMode::active)) +
         edge_logic_power(geom);
}

double LeakageModel::register_file_power(std::size_t entries,
                                         std::size_t bits) const {
  const double n_cells = static_cast<double>(entries * bits);
  // Multi-ported cells are larger; scale by port overhead (~2x for 6R/3W
  // relative to a 6T cell) and add decoder edge logic per entry.
  const double cell_power = sram_power(n_cells, StandbyMode::active) * 2.0;
  const double p_dec =
      static_power(tech_, decoder_gate_, op_, static_cast<double>(entries) * 2.0) *
      variation_factor_;
  return cell_power + p_dec;
}

double LeakageModel::standby_ratio(StandbyMode mode) const {
  const double active = sram_power(1024.0, StandbyMode::active);
  if (active <= 0.0) {
    return 1.0;
  }
  return sram_power(1024.0, mode) / active;
}

} // namespace hotleakage
