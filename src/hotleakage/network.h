// Series/parallel transistor-network evaluator used to derive k_design
// factors (paper Sec. 3.1.2).
//
// A static-CMOS gate is a pull-down network (PDN) of NMOS devices and a
// complementary pull-up network (PUN) of PMOS devices.  For every input
// combination, exactly one of the networks is cut off; the subthreshold
// current through the off network — including the stack effect when several
// series devices are simultaneously off — is what the k_n / k_p factors
// aggregate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hotleakage/bsim3.h"
#include "hotleakage/tech.h"

namespace hotleakage {

/// One transistor in a network: which input drives its gate and its
/// relative sizing.
struct NetTransistor {
  int input = 0;        ///< index of the driving input signal
  double w_over_l = 1.0;///< aspect ratio (unit leakage scales linearly)
  bool negated = false; ///< gate sees the complement of the input signal
};

/// A series/parallel network expression tree.
class Network {
public:
  /// Leaf: a single transistor.
  static Network leaf(NetTransistor t);
  /// All children conduct for the network to conduct.
  static Network series(std::vector<Network> children);
  /// Any conducting child makes the network conduct.
  static Network parallel(std::vector<Network> children);

  /// True iff the network conducts for @p inputs (bit i = input i high)
  /// when built from devices of @p polarity (NMOS on when gate high,
  /// PMOS on when gate low).
  bool conducts(uint32_t inputs, DeviceType polarity) const;

  /// Leakage current [A] through the network when it is *off* for
  /// @p inputs.  Series stacks of multiple off devices are attenuated by
  /// @p stack_factor per extra off device.  @p unit is the unit leakage of
  /// this polarity at the operating point.  Preconditions: the network does
  /// not conduct for @p inputs.
  double off_leakage(uint32_t inputs, DeviceType polarity, double unit,
                     double stack_factor) const;

  /// Number of transistors in the network.
  int device_count() const;

private:
  enum class Kind { leaf, series, parallel };

  Network() = default;

  Kind kind_ = Kind::leaf;
  NetTransistor transistor_{};
  std::vector<Network> children_;
};

/// Stack-effect attenuation per additional series off device.  Mildly
/// temperature dependent: the stack benefit shrinks as leakage grows with
/// temperature, which is what makes k_design linear in T (paper Sec. 3.1.2).
double stack_factor(const TechParams& tech, const OperatingPoint& op);

} // namespace hotleakage
