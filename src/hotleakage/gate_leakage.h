// Gate (direct-tunnelling) leakage and GIDL modelling (paper Sec. 3.2).
//
// An explicit physical equation for gate tunnelling is neither practical nor
// necessary at the architecture level; like HotLeakage we use a curve fit
// calibrated from circuit simulation.  The 70 nm fit targets 40 nA/um of
// gate width at tox = 1.2 nm, Vdd = 0.9 V, 300 K (ITRS-2001 projection).
// Gate leakage is strongly dependent on tox and Vdd and only weakly on
// temperature.
#pragma once

#include "hotleakage/bsim3.h"
#include "hotleakage/tech.h"

namespace hotleakage {

/// Parameters of the gate-leakage curve fit for what-if studies; defaults
/// come from the technology table.
struct GateLeakOverrides {
  double tox = -1.0;        ///< gate-oxide thickness [m]; <0 uses tech value
  double width_m = -1.0;    ///< device gate width [m]; <0 uses minimum (2 * Lgate)
};

/// Gate tunnelling current [A] for one transistor at the given operating
/// point.  Returns 0 for nodes where the table marks gate leakage
/// negligible (180/130 nm).
double gate_current(const TechParams& tech, const OperatingPoint& op,
                    const GateLeakOverrides& ovr = {});

/// Gate leakage current density [A per metre of gate width]; the quantity
/// the 40 nA/um calibration pins down.
double gate_current_density(const TechParams& tech, const OperatingPoint& op,
                            const GateLeakOverrides& ovr = {});

/// GIDL (gate-induced drain leakage) multiplier applied to subthreshold
/// leakage when a reverse body bias @p vbb (negative for NMOS wells) is
/// applied.  GIDL grows with |Vbb| and erodes the benefit of RBB at small
/// nodes — the reason the paper declines to study RBB at 70 nm.
/// Returns a factor >= 1 to be multiplied into the *residual* leakage of an
/// RBB-standby cell.
double gidl_penalty_factor(const TechParams& tech, double vbb);

} // namespace hotleakage
