// BSIM3-derived subthreshold leakage model (paper Eq. 2).
//
//   I_leak = mu0 * Cox * (W/L) * exp(b * (Vdd - Vdd0)) * vt^2
//            * (1 - exp(-Vdd / vt)) * exp((-|Vth| - Voff) / (n * vt))
//
// Assumptions (paper Sec. 3.1.1):
//   1. Vgs = 0  — the transistor is off;
//   2. Vds = Vdd — single transistor; stack effects are handled by the
//      k_design factors at the cell level (kdesign.h).
//
// Vdd, temperature, and Vth are runtime inputs so that DVS and thermal
// feedback can recompute leakage on the fly; everything else comes from the
// technology tables.
#pragma once

#include "hotleakage/tech.h"

namespace hotleakage {

/// Runtime electrical operating point for a leakage evaluation.
struct OperatingPoint {
  double temperature_k = 383.15; ///< paper default: 110 C
  double vdd = 0.9;              ///< supply voltage [V]

  /// Convenience constructors for the paper's two study temperatures.
  static OperatingPoint at_celsius(double celsius, double vdd) {
    return {.temperature_k = celsius + 273.15, .vdd = vdd};
  }
};

/// Optional per-evaluation overrides (used for what-if sweeps like Fig. 1d
/// and for techniques that manipulate Vth, e.g. RBB).
struct DeviceOverrides {
  double w_over_l = 1.0;   ///< aspect ratio; 1.0 yields the paper's "unit leakage"
  double vth_delta = 0.0;  ///< additive shift applied to |Vth| [V]
  double vth_absolute = -1.0; ///< if >= 0, overrides |Vth| entirely [V]
};

/// Subthreshold leakage current [A] of a single off transistor of
/// @p type, per Eq. 2.  @p op supplies Vdd and temperature;
/// @p ovr supplies W/L and any Vth manipulation.
double subthreshold_current(const TechParams& tech, DeviceType type,
                            const OperatingPoint& op,
                            const DeviceOverrides& ovr = {});

/// The paper's "unit leakage" I-hat: subthreshold current at W/L = 1.
double unit_leakage(const TechParams& tech, DeviceType type,
                    const OperatingPoint& op);

/// Effective threshold voltage used in the evaluation (after temperature
/// dependence and overrides); exposed for tests and the Fig. 1d sweep.
double effective_vth(const TechParams& tech, DeviceType type,
                     const OperatingPoint& op, const DeviceOverrides& ovr = {});

} // namespace hotleakage
