#include "hotleakage/variation.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace hotleakage {
namespace {

/// Evaluate the sampled die: L scales leakage as 1/L and, more importantly,
/// shorter channels have lower Vth (roll-off) and stronger DIBL; tox scales
/// Cox and gate leakage; Vdd and Vth feed Eq. 2 directly.
double sampled_leakage(const TechParams& tech, DeviceType type,
                       const OperatingPoint& op, double dl, double dtox,
                       double dvdd, double dvth) {
  TechParams die = tech;
  // Channel length: W/L grows as L shrinks, and Vth rolls off linearly with
  // length reduction (a standard first-order short-channel approximation).
  const double l_ratio = std::clamp(1.0 + dl, 0.25, 2.0);
  die.tox = tech.tox * std::clamp(1.0 + dtox, 0.25, 2.0);
  const double vth_rolloff = -0.08 * (1.0 - l_ratio); // shorter => lower Vth

  OperatingPoint die_op = op;
  die_op.vdd = std::max(0.0, op.vdd * (1.0 + dvdd));

  DeviceOverrides ovr;
  ovr.w_over_l = 1.0 / l_ratio;
  const DeviceParams& dev = type == DeviceType::nmos ? tech.nmos : tech.pmos;
  ovr.vth_delta = dev.vth0 * dvth + vth_rolloff;
  return subthreshold_current(die, type, die_op, ovr);
}

} // namespace

VariationResult interdie_variation(const TechParams& tech, DeviceType type,
                                   const OperatingPoint& op,
                                   const VariationConfig& cfg) {
  VariationResult result;
  if (!cfg.enabled || cfg.samples <= 0) {
    return result;
  }
  const double nominal = subthreshold_current(tech, type, op);
  if (nominal <= 0.0) {
    return result;
  }
  std::mt19937_64 rng(cfg.seed);
  const VariationSigmas& s3 = tech.sigmas;
  std::normal_distribution<double> dist_l(0.0, cfg.sigma_scale * s3.length3 / 3.0);
  std::normal_distribution<double> dist_tox(0.0, cfg.sigma_scale * s3.tox3 / 3.0);
  std::normal_distribution<double> dist_vdd(0.0, cfg.sigma_scale * s3.vdd3 / 3.0);
  std::normal_distribution<double> dist_vth(0.0, cfg.sigma_scale * s3.vth3 / 3.0);

  double sum = 0.0;
  double sum_sq = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (int i = 0; i < cfg.samples; ++i) {
    const double current = sampled_leakage(tech, type, op, dist_l(rng),
                                           dist_tox(rng), dist_vdd(rng),
                                           dist_vth(rng));
    const double factor = current / nominal;
    sum += factor;
    sum_sq += factor * factor;
    lo = std::min(lo, factor);
    hi = std::max(hi, factor);
  }
  const double n = static_cast<double>(cfg.samples);
  result.mean_factor = sum / n;
  result.min_factor = lo;
  result.max_factor = hi;
  const double var = std::max(0.0, sum_sq / n - result.mean_factor * result.mean_factor);
  result.stddev_factor = std::sqrt(var);
  return result;
}

double variation_scale(const TechParams& tech, const OperatingPoint& op,
                       const VariationConfig& cfg) {
  if (!cfg.enabled) {
    return 1.0;
  }
  const VariationResult n = interdie_variation(tech, DeviceType::nmos, op, cfg);
  const VariationResult p = interdie_variation(tech, DeviceType::pmos, op, cfg);
  return 0.5 * (n.mean_factor + p.mean_factor);
}

} // namespace hotleakage
