#include "hotleakage/options.h"

#include <charconv>
#include <stdexcept>

namespace hotleakage {
namespace {

double parse_double(std::string_view key, std::string_view value) {
  try {
    return std::stod(std::string(value));
  } catch (const std::exception&) {
    throw std::invalid_argument("option '" + std::string(key) +
                                "': expected a number, got '" +
                                std::string(value) + "'");
  }
}

long long parse_int(std::string_view key, std::string_view value) {
  long long out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw std::invalid_argument("option '" + std::string(key) +
                                "': expected an integer, got '" +
                                std::string(value) + "'");
  }
  return out;
}

bool parse_bool(std::string_view key, std::string_view value) {
  if (value == "on" || value == "true" || value == "1") {
    return true;
  }
  if (value == "off" || value == "false" || value == "0") {
    return false;
  }
  throw std::invalid_argument("option '" + std::string(key) +
                              "': expected on/off, got '" +
                              std::string(value) + "'");
}

TechNode parse_node(std::string_view value) {
  if (value == "70" || value == "70nm") return TechNode::nm70;
  if (value == "100" || value == "100nm") return TechNode::nm100;
  if (value == "130" || value == "130nm") return TechNode::nm130;
  if (value == "180" || value == "180nm") return TechNode::nm180;
  throw std::invalid_argument("option 'tech': unknown node '" +
                              std::string(value) +
                              "' (expected 70/100/130/180)");
}

} // namespace

LeakageModel Options::build() const {
  LeakageModel model(node, variation, standby);
  model.set_operating_point(operating_point());
  return model;
}

Options parse_options(std::span<const std::string> args) {
  Options opts;
  for (const std::string& arg : args) {
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("malformed option '" + arg +
                                  "' (expected key=value)");
    }
    const std::string_view key = std::string_view(arg).substr(0, eq);
    const std::string_view value = std::string_view(arg).substr(eq + 1);

    if (key == "tech") {
      opts.node = parse_node(value);
    } else if (key == "temp") {
      opts.temperature_c = parse_double(key, value);
    } else if (key == "vdd") {
      opts.vdd = parse_double(key, value);
      if (opts.vdd < 0.0) {
        throw std::invalid_argument("option 'vdd': must be >= 0");
      }
    } else if (key == "variation") {
      opts.variation.enabled = parse_bool(key, value);
    } else if (key == "samples") {
      const long long n = parse_int(key, value);
      if (n <= 0) {
        throw std::invalid_argument("option 'samples': must be > 0");
      }
      opts.variation.samples = static_cast<int>(n);
    } else if (key == "seed") {
      opts.variation.seed = static_cast<uint64_t>(parse_int(key, value));
    } else if (key == "sigma-scale") {
      opts.variation.sigma_scale = parse_double(key, value);
    } else if (key == "drowsy-vdd-ratio") {
      opts.standby.drowsy_vdd_over_vth = parse_double(key, value);
    } else if (key == "footer-vth") {
      opts.standby.gated_footer_vth = parse_double(key, value);
    } else if (key == "rbb-bias") {
      opts.standby.rbb_bias = parse_double(key, value);
    } else if (key == "rbb-vth-shift") {
      opts.standby.rbb_vth_shift = parse_double(key, value);
    } else {
      throw std::invalid_argument("unknown option '" + std::string(key) +
                                  "'\n" + options_help());
    }
  }
  return opts;
}

std::string options_help() {
  return "HotLeakage options (key=value):\n"
         "  tech=70|100|130|180     technology node [nm] (default 70)\n"
         "  temp=<celsius>          temperature (default 110)\n"
         "  vdd=<volts>             supply (default: node nominal)\n"
         "  variation=on|off        inter-die Monte Carlo (default on)\n"
         "  samples=<n>             Monte Carlo dies (default 256)\n"
         "  seed=<n>                Monte Carlo seed\n"
         "  sigma-scale=<x>         scale the 3-sigma magnitudes\n"
         "  drowsy-vdd-ratio=<x>    drowsy retention Vdd / Vth (default 1.5)\n"
         "  footer-vth=<volts>      gated-Vss footer Vth (default 0.35)\n"
         "  rbb-bias=<volts>        reverse body bias (default 0.40)\n"
         "  rbb-vth-shift=<volts>   RBB Vth shift (default 0.12)\n";
}

} // namespace hotleakage
