#include "hotleakage/bsim3.h"

#include <cmath>
#include <stdexcept>

namespace hotleakage {
namespace {

const DeviceParams& device(const TechParams& tech, DeviceType type) {
  return type == DeviceType::nmos ? tech.nmos : tech.pmos;
}

} // namespace

double effective_vth(const TechParams& tech, DeviceType type,
                     const OperatingPoint& op, const DeviceOverrides& ovr) {
  if (ovr.vth_absolute >= 0.0) {
    return ovr.vth_absolute;
  }
  const double vth_t = vth_at_temperature(device(tech, type), op.temperature_k);
  // RBB-style manipulation raises |Vth|; never allow it to go negative.
  return std::max(vth_t + ovr.vth_delta, 0.0);
}

double subthreshold_current(const TechParams& tech, DeviceType type,
                            const OperatingPoint& op,
                            const DeviceOverrides& ovr) {
  if (op.temperature_k <= 0.0) {
    throw std::invalid_argument("subthreshold_current: temperature must be > 0 K");
  }
  if (op.vdd < 0.0) {
    throw std::invalid_argument("subthreshold_current: Vdd must be >= 0 V");
  }
  if (ovr.w_over_l <= 0.0) {
    throw std::invalid_argument("subthreshold_current: W/L must be > 0");
  }
  const DeviceParams& dev = device(tech, type);
  const double vt = thermal_voltage(op.temperature_k);
  const double vth = effective_vth(tech, type, op, ovr);
  const double cox = oxide_capacitance(tech);

  const double prefactor = dev.mu0 * cox * ovr.w_over_l * vt * vt;
  const double dibl = std::exp(dev.dibl_b * (op.vdd - tech.vdd0));
  const double drain_term = 1.0 - std::exp(-op.vdd / vt);
  const double gate_term = std::exp((-vth - dev.v_off) / (dev.n_swing * vt));
  return prefactor * dibl * drain_term * gate_term;
}

double unit_leakage(const TechParams& tech, DeviceType type,
                    const OperatingPoint& op) {
  return subthreshold_current(tech, type, op, DeviceOverrides{});
}

} // namespace hotleakage
