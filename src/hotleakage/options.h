// Command-line-style configuration of the HotLeakage model (paper Sec. 3.4:
// "the various parameters related to the leakage power modeling and the
// leakage control techniques are specified at the command line ... to use
// HotLeakage with our pre-determined values of k_design, it is only
// necessary to specify the technology parameter").
//
// Keys (all optional; every parameter has a reasonable default):
//   tech=70|100|130|180       technology node [nm]
//   temp=<celsius>            operating temperature
//   vdd=<volts>               supply voltage (default: node nominal)
//   variation=on|off          inter-die Monte Carlo
//   samples=<n>               Monte Carlo dies
//   seed=<n>                  Monte Carlo seed
//   sigma-scale=<x>           scale all 3-sigma magnitudes
//   drowsy-vdd-ratio=<x>      drowsy retention supply as multiple of Vth
//   footer-vth=<volts>        gated-Vss footer threshold
//   rbb-bias=<volts>          reverse body bias magnitude
//   rbb-vth-shift=<volts>     Vth shift RBB achieves
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "hotleakage/model.h"

namespace hotleakage {

/// Everything needed to build a LeakageModel at an operating point.
struct Options {
  TechNode node = TechNode::nm70;
  double temperature_c = 110.0;
  double vdd = -1.0; ///< < 0 means "use the node's nominal supply"
  VariationConfig variation;
  StandbyParams standby;

  /// Resolved supply voltage.
  double resolved_vdd() const {
    return vdd >= 0.0 ? vdd : tech_params(node).vdd_nominal;
  }
  OperatingPoint operating_point() const {
    return OperatingPoint::at_celsius(temperature_c, resolved_vdd());
  }
  /// Construct the configured model, positioned at the operating point.
  LeakageModel build() const;
};

/// Parse "key=value" arguments.  Throws std::invalid_argument with a
/// descriptive message on an unknown key or malformed value.
Options parse_options(std::span<const std::string> args);

/// One-line-per-key usage text.
std::string options_help();

} // namespace hotleakage
