// Technology-node parameter tables for the HotLeakage model.
//
// HotLeakage (Zhang et al., UVa CS-2003-05) ships per-node constants derived
// from BSIM3 v3.2 device models and transistor-level (Cadence / AIM-SPICE)
// curve fitting.  This header provides the equivalent built-in tables for
// 180, 130, 100, and 70 nm.  The constants the paper states explicitly are
// used verbatim:
//
//   * default supply voltage Vdd0: 2.0 / 1.5 / 1.2 / 1.0 V per node,
//   * 70 nm threshold voltages: 0.190 V (NMOS) and 0.213 V (PMOS),
//   * 70 nm gate-leakage target: 40 nA/um at tox = 1.2 nm, Vdd = 0.9 V, 300 K,
//   * 3-sigma inter-die variations (Nassif, ASP-DAC'01): L 47 %, tox 16 %,
//     Vdd 10 %, Vth 13 %.
//
// The remaining fitted coefficients (DIBL factor b, subthreshold swing n,
// BSIM3 Voff, mobility, oxide thickness) are chosen so the resulting unit
// leakage lands in the ITRS-2001 band the paper quotes (leakage ~50 % of
// total power at 70 nm).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace hotleakage {

/// Process generations supported by the built-in tables.
enum class TechNode : int {
  nm180 = 180,
  nm130 = 130,
  nm100 = 100,
  nm70 = 70,
};

/// Which device polarity a parameter set describes.
enum class DeviceType { nmos, pmos };

/// Per-polarity BSIM3-style device parameters (SI units throughout).
struct DeviceParams {
  double mu0;     ///< zero-bias mobility [m^2 / (V s)]
  double vth0;    ///< threshold voltage magnitude at 300 K [V]
  double n_swing; ///< subthreshold swing coefficient (dimensionless)
  double v_off;   ///< BSIM3 empirical offset voltage [V] (negative)
  double dibl_b;  ///< DIBL curve-fit exponent b [1/V]: exp(b * (Vdd - Vdd0))
  double vth_tc;  ///< |dVth/dT| temperature coefficient [V/K] (Vth drops as T rises)
};

/// Inter-die 3-sigma variation magnitudes, as fractions of the mean.
struct VariationSigmas {
  double length3 = 0.47;  ///< transistor length, 3-sigma / mean
  double tox3 = 0.16;     ///< gate-oxide thickness
  double vdd3 = 0.10;     ///< supply voltage
  double vth3 = 0.13;     ///< threshold voltage
};

/// Full per-node technology description.
struct TechParams {
  TechNode node;
  double vdd0;          ///< default (curve-fit reference) supply voltage [V]
  double vdd_nominal;   ///< nominal operating supply for this study [V]
  double tox;           ///< gate-oxide thickness [m]
  double lgate;         ///< drawn gate length [m]
  double freq_hz;       ///< nominal clock frequency for this study [Hz]
  DeviceParams nmos;
  DeviceParams pmos;
  VariationSigmas sigmas;
  /// Gate-leakage curve-fit: density target [A/m of gate width] at
  /// (tox, vdd_nominal, 300 K) plus sensitivities; see gate_leakage.h.
  double gate_leak_density; ///< [A/m] at calibration point; 0 disables
  double gate_leak_tox_b;   ///< exponential tox sensitivity [1/m]
  double gate_leak_vdd_exp; ///< power-law Vdd exponent
  double gate_leak_tc;      ///< linear temperature coefficient [1/K]
};

/// Returns the built-in parameter table for @p node.
/// The tables are immutable; callers copy and modify for what-if studies.
const TechParams& tech_params(TechNode node);

/// Gate-oxide capacitance per unit area, eps_ox / tox [F/m^2].
double oxide_capacitance(const TechParams& tech);

/// Thermal voltage kT/q [V] at absolute temperature @p temperature_k.
double thermal_voltage(double temperature_k);

/// Threshold voltage at temperature, |Vth|(T) = vth0 - vth_tc * (T - 300 K).
/// Clamped at a small positive floor so the model stays defined for
/// pathological inputs.
double vth_at_temperature(const DeviceParams& dev, double temperature_k);

/// Human-readable node name, e.g. "70nm".
std::string_view to_string(TechNode node);

/// All supported nodes, ordered newest (smallest) first.
inline constexpr std::array<TechNode, 4> kAllNodes = {
    TechNode::nm70, TechNode::nm100, TechNode::nm130, TechNode::nm180};

/// Physical constants.
inline constexpr double kBoltzmann = 1.380649e-23; ///< [J/K]
inline constexpr double kElectronCharge = 1.602176634e-19; ///< [C]
inline constexpr double kEpsilonOx = 3.9 * 8.8541878128e-12; ///< SiO2 [F/m]
inline constexpr double kRoomTemperatureK = 300.0;

} // namespace hotleakage
