#include "hotleakage/tech.h"

#include <algorithm>
#include <stdexcept>

namespace hotleakage {
namespace {

// Mobility values follow the usual ~3x NMOS/PMOS ratio and degrade with
// scaling (higher channel doping).  DIBL exponents grow as channels shorten.
// Swing coefficients drift up with scaling as short-channel control worsens.
constexpr TechParams kTech180 = {
    .node = TechNode::nm180,
    .vdd0 = 2.0,
    .vdd_nominal = 2.0,
    .tox = 4.0e-9,
    .lgate = 180e-9,
    .freq_hz = 1.0e9,
    .nmos = {.mu0 = 0.0430, .vth0 = 0.420, .n_swing = 1.32, .v_off = -0.090,
             .dibl_b = 1.10, .vth_tc = 0.70e-3},
    .pmos = {.mu0 = 0.0125, .vth0 = 0.450, .n_swing = 1.36, .v_off = -0.090,
             .dibl_b = 1.00, .vth_tc = 0.70e-3},
    .sigmas = {},
    .gate_leak_density = 0.0, // negligible at 4 nm oxide
    .gate_leak_tox_b = 0.0,
    .gate_leak_vdd_exp = 0.0,
    .gate_leak_tc = 0.0,
};

constexpr TechParams kTech130 = {
    .node = TechNode::nm130,
    .vdd0 = 1.5,
    .vdd_nominal = 1.5,
    .tox = 3.3e-9,
    .lgate = 130e-9,
    .freq_hz = 2.0e9,
    .nmos = {.mu0 = 0.0400, .vth0 = 0.340, .n_swing = 1.36, .v_off = -0.088,
             .dibl_b = 1.55, .vth_tc = 0.73e-3},
    .pmos = {.mu0 = 0.0118, .vth0 = 0.360, .n_swing = 1.40, .v_off = -0.088,
             .dibl_b = 1.40, .vth_tc = 0.73e-3},
    .sigmas = {},
    .gate_leak_density = 0.0,
    .gate_leak_tox_b = 0.0,
    .gate_leak_vdd_exp = 0.0,
    .gate_leak_tc = 0.0,
};

constexpr TechParams kTech100 = {
    .node = TechNode::nm100,
    .vdd0 = 1.2,
    .vdd_nominal = 1.2,
    .tox = 2.0e-9,
    .lgate = 100e-9,
    .freq_hz = 3.5e9,
    .nmos = {.mu0 = 0.0370, .vth0 = 0.260, .n_swing = 1.40, .v_off = -0.085,
             .dibl_b = 2.00, .vth_tc = 0.76e-3},
    .pmos = {.mu0 = 0.0105, .vth0 = 0.280, .n_swing = 1.44, .v_off = -0.085,
             .dibl_b = 1.80, .vth_tc = 0.76e-3},
    .sigmas = {},
    .gate_leak_density = 2.0e-9 / 1.0e-6, // 2 nA/um: tunnelling emerging at 2.0 nm
    .gate_leak_tox_b = 1.2e10,
    .gate_leak_vdd_exp = 3.0,
    .gate_leak_tc = 6.0e-4,
};

// 70 nm: paper-stated Vth (0.190 N / 0.213 P), Vdd0 = 1.0, operating point
// 0.9 V @ 5600 MHz, tox 1.2 nm with a 40 nA/um gate-leakage calibration.
constexpr TechParams kTech70 = {
    .node = TechNode::nm70,
    .vdd0 = 1.0,
    .vdd_nominal = 0.9,
    .tox = 1.2e-9,
    .lgate = 70e-9,
    .freq_hz = 5.6e9,
    .nmos = {.mu0 = 0.0320, .vth0 = 0.190, .n_swing = 1.45, .v_off = -0.080,
             .dibl_b = 2.50, .vth_tc = 0.80e-3},
    .pmos = {.mu0 = 0.0090, .vth0 = 0.213, .n_swing = 1.50, .v_off = -0.080,
             .dibl_b = 2.30, .vth_tc = 0.80e-3},
    .sigmas = {},
    .gate_leak_density = 40.0e-9 / 1.0e-6, // 40 nA per um of width = 0.04 A/m
    .gate_leak_tox_b = 1.4e10,
    .gate_leak_vdd_exp = 3.5,
    .gate_leak_tc = 8.0e-4,
};

} // namespace

const TechParams& tech_params(TechNode node) {
  switch (node) {
  case TechNode::nm180:
    return kTech180;
  case TechNode::nm130:
    return kTech130;
  case TechNode::nm100:
    return kTech100;
  case TechNode::nm70:
    return kTech70;
  }
  throw std::invalid_argument("tech_params: unknown technology node");
}

double oxide_capacitance(const TechParams& tech) {
  return kEpsilonOx / tech.tox;
}

double thermal_voltage(double temperature_k) {
  return kBoltzmann * temperature_k / kElectronCharge;
}

double vth_at_temperature(const DeviceParams& dev, double temperature_k) {
  const double vth = dev.vth0 - dev.vth_tc * (temperature_k - kRoomTemperatureK);
  return std::max(vth, 0.01);
}

std::string_view to_string(TechNode node) {
  switch (node) {
  case TechNode::nm180:
    return "180nm";
  case TechNode::nm130:
    return "130nm";
  case TechNode::nm100:
    return "100nm";
  case TechNode::nm70:
    return "70nm";
  }
  return "unknown";
}

} // namespace hotleakage
