// The double-k_design model (paper Sec. 3.1.2, Eqs. 3-8).
//
// Butts & Sohi's single k_design assumes N and P devices are near-identical;
// HotLeakage found they are not, and uses two factors:
//
//   I_cell = n_n * k_n * I_n  +  n_p * k_p * I_p                       (Eq. 3)
//   k_n = (I_1n + I_2n + ... ) / (N * n_n * I_n)                       (Eq. 5)
//   k_p = (I_1p + I_2p + ... ) / (N * n_p * I_p)                       (Eq. 6)
//
// where the I_kn are the leakage currents for the input combinations that
// turn off the pull-down network (and symmetrically for I_kp), N is the
// total number of input combinations, n_n/n_p the device counts, and
// I_n/I_p the unit leakages.  For explicit-path cells (SRAM) the same
// formula is applied over the cell's internal states.
//
// k_n and k_p come out independent of Vth and (through the stack factor)
// linear in temperature and Vdd — the properties the paper reports.
#pragma once

#include "hotleakage/cell.h"

namespace hotleakage {

/// Computed design factors for a cell at one operating point.
struct KDesign {
  double kn = 0.0;
  double kp = 0.0;
};

/// Derive k_n and k_p for @p cell at @p op by exhaustive enumeration of
/// input combinations (gate cells) or internal states (explicit-path
/// cells).
KDesign compute_kdesign(const TechParams& tech, const Cell& cell,
                        const OperatingPoint& op);

/// Breakdown of a cell's leakage at one operating point.
struct CellLeakage {
  double subthreshold = 0.0; ///< [A], via Eq. 3
  double gate = 0.0;         ///< [A], tunnelling through all gate oxide
  double total() const { return subthreshold + gate; }
};

/// Average leakage current of one instance of @p cell (Eq. 3 plus the gate
/// term), averaged over input combinations / states.
CellLeakage cell_leakage(const TechParams& tech, const Cell& cell,
                         const OperatingPoint& op);

/// Static power of @p n_cells identical cells (Eq. 4):
/// P = Vdd * N_cells * I_cell.
double static_power(const TechParams& tech, const Cell& cell,
                    const OperatingPoint& op, double n_cells);

} // namespace hotleakage
