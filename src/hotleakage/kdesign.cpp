#include "hotleakage/kdesign.h"

#include <cmath>
#include <stdexcept>

#include "hotleakage/gate_leakage.h"

namespace hotleakage {
namespace {

/// Sum of off-network leakages over all input combinations, split by which
/// network is off.  Returns {sum_off_pdn, sum_off_pun}.
struct OffSums {
  double pdn = 0.0;
  double pun = 0.0;
  int combos = 0;
};

OffSums enumerate_gate(const TechParams& tech, const Cell& cell,
                       const OperatingPoint& op) {
  if (cell.n_inputs <= 0 || cell.n_inputs > 16) {
    throw std::invalid_argument("enumerate_gate: bad input count");
  }
  const double in = unit_leakage(tech, DeviceType::nmos, op);
  const double ip = unit_leakage(tech, DeviceType::pmos, op);
  const double sf = stack_factor(tech, op);
  OffSums sums;
  sums.combos = 1 << cell.n_inputs;
  for (uint32_t combo = 0; combo < static_cast<uint32_t>(sums.combos); ++combo) {
    if (!cell.pdn.conducts(combo, DeviceType::nmos)) {
      sums.pdn += cell.pdn.off_leakage(combo, DeviceType::nmos, in, sf);
    }
    if (!cell.pun.conducts(combo, DeviceType::pmos)) {
      sums.pun += cell.pun.off_leakage(combo, DeviceType::pmos, ip, sf);
    }
  }
  return sums;
}

OffSums enumerate_paths(const TechParams& tech, const Cell& cell,
                        const OperatingPoint& op) {
  const double in = unit_leakage(tech, DeviceType::nmos, op);
  const double ip = unit_leakage(tech, DeviceType::pmos, op);
  const double sf = stack_factor(tech, op);
  OffSums sums;
  sums.combos = static_cast<int>(cell.states.size());
  for (const CellState& state : cell.states) {
    for (const LeakPath& path : state.paths) {
      const double unit = path.type == DeviceType::nmos ? in : ip;
      const double attenuation = std::pow(sf, path.stack_depth - 1);
      const double current = unit * path.w_over_l / attenuation;
      (path.type == DeviceType::nmos ? sums.pdn : sums.pun) += current;
    }
  }
  return sums;
}

OffSums enumerate(const TechParams& tech, const Cell& cell,
                  const OperatingPoint& op) {
  return cell.is_gate ? enumerate_gate(tech, cell, op)
                      : enumerate_paths(tech, cell, op);
}

} // namespace

KDesign compute_kdesign(const TechParams& tech, const Cell& cell,
                        const OperatingPoint& op) {
  if (cell.n_nmos <= 0 && cell.n_pmos <= 0) {
    throw std::invalid_argument("compute_kdesign: cell has no devices");
  }
  const OffSums sums = enumerate(tech, cell, op);
  const double in = unit_leakage(tech, DeviceType::nmos, op);
  const double ip = unit_leakage(tech, DeviceType::pmos, op);
  KDesign k;
  if (cell.n_nmos > 0 && in > 0.0) {
    k.kn = sums.pdn / (sums.combos * cell.n_nmos * in);
  }
  if (cell.n_pmos > 0 && ip > 0.0) {
    k.kp = sums.pun / (sums.combos * cell.n_pmos * ip);
  }
  return k;
}

CellLeakage cell_leakage(const TechParams& tech, const Cell& cell,
                         const OperatingPoint& op) {
  const KDesign k = compute_kdesign(tech, cell, op);
  const double in = unit_leakage(tech, DeviceType::nmos, op);
  const double ip = unit_leakage(tech, DeviceType::pmos, op);
  CellLeakage leak;
  leak.subthreshold = cell.n_nmos * k.kn * in + cell.n_pmos * k.kp * ip;
  // Roughly half of a CMOS cell's devices see full gate bias in any state;
  // the curve-fit density already averages over bias conditions.
  leak.gate = gate_current_density(tech, op) * cell.total_gate_width * 0.5;
  return leak;
}

double static_power(const TechParams& tech, const Cell& cell,
                    const OperatingPoint& op, double n_cells) {
  if (n_cells < 0.0) {
    throw std::invalid_argument("static_power: negative cell count");
  }
  return op.vdd * n_cells * cell_leakage(tech, cell, op).total();
}

} // namespace hotleakage
