#include "hotleakage/cell.h"

#include <algorithm>
#include <cmath>

namespace hotleakage::cells {
namespace {

// Conventional relative sizings (W/L) for a minimum-pitch standard cell.
constexpr double kNmosWl = 1.5;
constexpr double kPmosWl = 3.0;  // mobility compensation
// SRAM cell ratios: pull-down strongest for read stability, access mid,
// pull-up weakest.
constexpr double kSramPd = 2.0;
constexpr double kSramAx = 1.2;
constexpr double kSramPu = 1.0;

double gate_width(const TechParams& tech, double wl_sum) {
  return wl_sum * tech.lgate;
}

} // namespace

Cell inverter(const TechParams& tech) {
  Cell c;
  c.name = "inverter";
  c.n_inputs = 1;
  c.n_nmos = 1;
  c.n_pmos = 1;
  c.is_gate = true;
  c.pdn = Network::leaf({.input = 0, .w_over_l = kNmosWl});
  c.pun = Network::leaf({.input = 0, .w_over_l = kPmosWl});
  c.total_gate_width = gate_width(tech, kNmosWl + kPmosWl);
  return c;
}

Cell nand2(const TechParams& tech) {
  Cell c;
  c.name = "nand2";
  c.n_inputs = 2;
  c.n_nmos = 2;
  c.n_pmos = 2;
  c.is_gate = true;
  // Series NMOS pull-down (sized up to match drive), parallel PMOS pull-up.
  c.pdn = Network::series({Network::leaf({.input = 0, .w_over_l = 2 * kNmosWl}),
                           Network::leaf({.input = 1, .w_over_l = 2 * kNmosWl})});
  c.pun = Network::parallel({Network::leaf({.input = 0, .w_over_l = kPmosWl}),
                             Network::leaf({.input = 1, .w_over_l = kPmosWl})});
  c.total_gate_width = gate_width(tech, 4 * kNmosWl + 2 * kPmosWl);
  return c;
}

Cell nand3(const TechParams& tech) {
  Cell c;
  c.name = "nand3";
  c.n_inputs = 3;
  c.n_nmos = 3;
  c.n_pmos = 3;
  c.is_gate = true;
  c.pdn = Network::series({Network::leaf({.input = 0, .w_over_l = 3 * kNmosWl}),
                           Network::leaf({.input = 1, .w_over_l = 3 * kNmosWl}),
                           Network::leaf({.input = 2, .w_over_l = 3 * kNmosWl})});
  c.pun = Network::parallel({Network::leaf({.input = 0, .w_over_l = kPmosWl}),
                             Network::leaf({.input = 1, .w_over_l = kPmosWl}),
                             Network::leaf({.input = 2, .w_over_l = kPmosWl})});
  c.total_gate_width = gate_width(tech, 9 * kNmosWl + 3 * kPmosWl);
  return c;
}

Cell nor2(const TechParams& tech) {
  Cell c;
  c.name = "nor2";
  c.n_inputs = 2;
  c.n_nmos = 2;
  c.n_pmos = 2;
  c.is_gate = true;
  c.pdn = Network::parallel({Network::leaf({.input = 0, .w_over_l = kNmosWl}),
                             Network::leaf({.input = 1, .w_over_l = kNmosWl})});
  c.pun = Network::series({Network::leaf({.input = 0, .w_over_l = 2 * kPmosWl}),
                           Network::leaf({.input = 1, .w_over_l = 2 * kPmosWl})});
  c.total_gate_width = gate_width(tech, 2 * kNmosWl + 4 * kPmosWl);
  return c;
}

Cell sram6t(const TechParams& tech) {
  Cell c;
  c.name = "sram6t";
  c.n_inputs = 0;
  c.n_nmos = 4; // two pull-downs + two access transistors
  c.n_pmos = 2; // two pull-ups
  c.is_gate = false;
  // The cell is symmetric: storing 0 and storing 1 leak identically.  With
  // the wordline low and bitlines precharged high, three paths leak:
  //   * the off pull-down NMOS of the inverter whose output is high,
  //   * the off pull-up PMOS of the inverter whose output is low,
  //   * the access NMOS on the low-storing side (bitline high, node low).
  // The access transistor on the high side has ~0 V across it and is quiet.
  CellState state;
  state.paths = {
      {.type = DeviceType::nmos, .w_over_l = kSramPd, .stack_depth = 1},
      {.type = DeviceType::pmos, .w_over_l = kSramPu, .stack_depth = 1},
      {.type = DeviceType::nmos, .w_over_l = kSramAx, .stack_depth = 1},
  };
  c.states = {state, state}; // storing 0 / storing 1
  c.total_gate_width =
      gate_width(tech, 2 * kSramPd + 2 * kSramAx + 2 * kSramPu);
  return c;
}

Cell sense_amp(const TechParams& tech) {
  Cell c;
  c.name = "sense_amp";
  c.n_inputs = 0;
  c.n_nmos = 4; // cross-coupled pair + enable footer + equalizer
  c.n_pmos = 3; // cross-coupled pair + precharge
  c.is_gate = false;
  // Idle (disabled, equalized): the footer is off, stacking the NMOS pair;
  // the PMOS precharge devices are on, so the PMOS pair leaks singly.
  CellState idle;
  idle.paths = {
      {.type = DeviceType::nmos, .w_over_l = 2.0, .stack_depth = 2},
      {.type = DeviceType::nmos, .w_over_l = 2.0, .stack_depth = 2},
      {.type = DeviceType::pmos, .w_over_l = 2.0, .stack_depth = 1},
  };
  c.states = {idle};
  c.total_gate_width = gate_width(tech, 4 * 2.0 + 3 * 2.0);
  return c;
}

double sram_seu_scale(const TechParams& tech, double vdd,
                      double temperature_k) {
  // Qcrit/Qs slope in the Hazucha-Svensson exponent, expressed per unit of
  // normalized supply: a cell at 1/3 of nominal Vdd (the 70 nm drowsy
  // retention point) is ~50x more upset-prone, matching the order of
  // magnitude reported for reduced-Vdd retention SRAM.
  constexpr double kQcritSlope = 6.0;
  // Weak thermal acceleration of the collected charge, per kelvin.
  constexpr double kThermal = 1.0e-3;
  const double v = std::max(vdd, 0.0);
  const double dv = 1.0 - v / tech.vdd_nominal;
  const double thermal =
      std::max(0.0, 1.0 + kThermal * (temperature_k - kRoomTemperatureK));
  return std::exp(kQcritSlope * dv) * thermal;
}

} // namespace hotleakage::cells
