// Per-structure core dynamic-energy model (Wattch's decomposition).
//
// Wattch attributes dynamic energy to each microarchitectural structure:
// fetch/branch prediction, rename table, the RUU issue window (CAM insert +
// wakeup broadcast), the LSQ, register file reads/writes, functional units,
// result buses, and the unconditionally-switching clock tree and latch
// overhead.  Each per-event energy below is derived from the CACTI-lite
// array/CAM models at the Table 2 geometry, so they scale correctly with
// technology and Vdd.
#pragma once

#include "hotleakage/tech.h"
#include "wattch/cacti_lite.h"

namespace wattch {

/// Per-event energies [J] of the core structures.
struct CoreEnergyParams {
  double fetch_per_inst = 0.0;   ///< fetch queue + PC pipeline share
  double bpred_access = 0.0;     ///< hybrid tables + BTB, per branch
  double rename_per_inst = 0.0;  ///< map-table read + free-list update
  double window_insert = 0.0;    ///< RUU entry write (CAM + payload)
  double window_wakeup = 0.0;    ///< tag broadcast per completing op
  double lsq_insert = 0.0;       ///< LSQ entry write + address CAM
  double regfile_read = 0.0;     ///< per source operand
  double regfile_write = 0.0;    ///< per result
  double int_alu_op = 0.0;
  double mult_op = 0.0;
  double fp_op = 0.0;
  double result_bus = 0.0;       ///< per produced result
  double clock_per_cycle = 0.0;  ///< clock tree + latches, every cycle

  /// Derive from geometry at the technology's nominal supply.
  static CoreEnergyParams for_tech(const hotleakage::TechParams& tech);
};

/// Activity counts of the core structures for one run.
struct CoreActivity {
  unsigned long long fetched = 0;
  unsigned long long branches = 0;
  unsigned long long renamed = 0;
  unsigned long long window_inserts = 0;
  unsigned long long wakeups = 0;
  unsigned long long lsq_inserts = 0;
  unsigned long long regfile_reads = 0;
  unsigned long long regfile_writes = 0;
  unsigned long long int_alu_ops = 0;
  unsigned long long mult_ops = 0;
  unsigned long long fp_ops = 0;
  unsigned long long results = 0;
  unsigned long long cycles = 0;

  double energy(const CoreEnergyParams& p) const;
  CoreActivity& operator+=(const CoreActivity& other);
};

} // namespace wattch
