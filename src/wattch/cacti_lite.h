// CACTI-lite: analytic SRAM-array energy model (Wattch substrate).
//
// Wattch derives per-access capacitances from CACTI.  We reimplement the
// first-order analytic decomposition — decoder, wordline, bitline, sense
// amp, output drive — from the technology's oxide capacitance, gate
// geometry, and per-cell wire pitch.  Absolute joules are approximate; the
// experiments consume *ratios* (L2 access vs. L1 access vs. counter tick),
// which this model gets right by construction.
#pragma once

#include <cstddef>

#include "hotleakage/model.h"
#include "hotleakage/tech.h"

namespace wattch {

/// Physical organization of one SRAM array.
struct ArrayOrganization {
  std::size_t rows = 512;        ///< wordlines (sets, before banking)
  std::size_t cols = 1024;       ///< bitline pairs across all ways
  std::size_t read_out_bits = 512; ///< bits actually sensed per access
  std::size_t banks = 1;         ///< independent banks (divides rows)
};

/// Per-access energy decomposition [J].
struct ArrayEnergies {
  double decode = 0.0;
  double wordline = 0.0;
  double bitline = 0.0;
  double senseamp = 0.0;
  double output = 0.0;
  double total() const {
    return decode + wordline + bitline + senseamp + output;
  }
};

/// Derive the array organization of a cache from its logical geometry:
/// data array (all ways side by side) and tag array.
ArrayOrganization data_array_org(const hotleakage::CacheGeometry& geom);
ArrayOrganization tag_array_org(const hotleakage::CacheGeometry& geom);

/// Per-access read energy of an array at @p vdd.
ArrayEnergies array_read_energy(const hotleakage::TechParams& tech,
                                const ArrayOrganization& org, double vdd);

/// Per-access write energy (full bitline swing on written columns).
ArrayEnergies array_write_energy(const hotleakage::TechParams& tech,
                                 const ArrayOrganization& org, double vdd);

/// Energy to switch one line between active and standby supply rails:
/// charging/discharging the line's virtual rail capacitance through the
/// sleep device.  @p delta_v is the rail voltage change.
double line_transition_energy(const hotleakage::TechParams& tech,
                              const hotleakage::CacheGeometry& geom,
                              double delta_v);

/// Energy of one decay-counter event (2-bit saturating counter increment
/// or reset): a handful of gates switching.
double counter_tick_energy(const hotleakage::TechParams& tech, double vdd);

/// Access-time decomposition [s] — CACTI's other output.  The paper's L2
/// sweep values (5 / 8 / 11 / 17 cycles) correspond to on-chip L2s of
/// different sizes/distances at 5.6 GHz; this model closes that loop.
struct ArrayTiming {
  double decode = 0.0;
  double wordline = 0.0;
  double bitline = 0.0;
  double senseamp = 0.0;
  double output = 0.0;
  double total() const {
    return decode + wordline + bitline + senseamp + output;
  }
};

/// First-order RC access time of an array at @p vdd.
ArrayTiming array_access_time(const hotleakage::TechParams& tech,
                              const ArrayOrganization& org, double vdd);

/// Access latency of a cache (data + tag in parallel) in clock cycles at
/// @p clock_hz, rounded up, minimum 1.
unsigned cache_latency_cycles(const hotleakage::TechParams& tech,
                              const hotleakage::CacheGeometry& geom,
                              double vdd, double clock_hz);

} // namespace wattch
