#include "wattch/cacti_lite.h"

#include <cmath>
#include <stdexcept>

namespace wattch {
namespace {

using hotleakage::TechParams;

/// Gate capacitance of a unit (W/L = 1) transistor [F].
double unit_gate_cap(const TechParams& tech) {
  return hotleakage::oxide_capacitance(tech) * tech.lgate * tech.lgate;
}

/// Drain junction capacitance of a unit transistor [F] (~half the gate cap
/// at these nodes, a standard first-order assumption).
double unit_drain_cap(const TechParams& tech) {
  return 0.5 * unit_gate_cap(tech);
}

/// Wire capacitance per cell pitch [F].  SRAM cell pitch is ~7-8 F (feature
/// sizes) per side; metal cap ~0.2 fF/um.
double wire_cap_per_cell(const TechParams& tech) {
  const double pitch = 7.5 * tech.lgate;
  return 0.2e-15 / 1.0e-6 * pitch;
}

double dyn_energy(double cap, double v_charge, double v_swing) {
  return cap * v_charge * v_swing;
}

} // namespace

ArrayOrganization data_array_org(const hotleakage::CacheGeometry& geom) {
  ArrayOrganization org;
  org.rows = geom.rows();
  org.cols = geom.data_bits_per_line() * geom.assoc;
  org.read_out_bits = geom.data_bits_per_line() * geom.assoc; // read all ways
  // Keep subarrays near-square-ish: bank when rows exceed 512.
  org.banks = org.rows > 512 ? org.rows / 512 : 1;
  return org;
}

ArrayOrganization tag_array_org(const hotleakage::CacheGeometry& geom) {
  ArrayOrganization org;
  org.rows = geom.rows();
  org.cols = geom.tag_bits * geom.assoc;
  org.read_out_bits = org.cols;
  org.banks = org.rows > 512 ? org.rows / 512 : 1;
  return org;
}

ArrayEnergies array_read_energy(const TechParams& tech,
                                const ArrayOrganization& org, double vdd) {
  if (org.rows == 0 || org.cols == 0 || org.banks == 0) {
    throw std::invalid_argument("array_read_energy: degenerate organization");
  }
  const double cg = unit_gate_cap(tech);
  const double cd = unit_drain_cap(tech);
  const double cw = wire_cap_per_cell(tech);
  const double rows = static_cast<double>(org.rows) / org.banks;
  const double cols = static_cast<double>(org.cols);

  ArrayEnergies e;
  // Decoder: log2(rows) address bits drive predecode NAND trees; roughly
  // 4 gate loads per row of decode fan-out plus one wordline driver.
  const double dec_cap = rows * (4.0 * 3.0 * cg) + std::log2(rows) * 20.0 * cg;
  e.decode = dyn_energy(dec_cap, vdd, vdd);
  // Wordline: two access-gate loads plus wire per cell across the row.
  const double wl_cap = cols * (2.0 * 1.2 * cg + cw);
  e.wordline = dyn_energy(wl_cap, vdd, vdd);
  // Bitlines: every column's pair swings by the sense margin (~Vdd/10)
  // during a read; precharge restores it.  Drain cap per cell plus wire.
  const double bl_cap_per_col = rows * (1.2 * cd + cw);
  const double v_sense = vdd * 0.10;
  e.bitline = cols * dyn_energy(bl_cap_per_col, vdd, v_sense) * 2.0; // + precharge
  // Sense amps fire on the sensed columns only.
  const double sa_cap = 12.0 * cg;
  e.senseamp = static_cast<double>(org.read_out_bits) * dyn_energy(sa_cap, vdd, vdd);
  // Output drivers on the selected data, plus the H-tree routing that
  // distributes address/data across banks — the term that makes a large
  // banked L2 access several times more expensive than an L1 access even
  // though its active subarray is the same size.
  const double htree_span =
      std::sqrt(static_cast<double>(org.rows) * cols); // cells per side
  const double htree_cap = htree_span * cw * 4.0;      // addr+data trunks
  e.output = static_cast<double>(org.read_out_bits) *
                 dyn_energy(8.0 * cg + 64.0 * cw, vdd, vdd) +
             static_cast<double>(org.banks) * dyn_energy(htree_cap, vdd, vdd) +
             static_cast<double>(org.read_out_bits) *
                 dyn_energy(htree_span * cw * 0.5, vdd, vdd);
  return e;
}

ArrayEnergies array_write_energy(const TechParams& tech,
                                 const ArrayOrganization& org, double vdd) {
  ArrayEnergies e = array_read_energy(tech, org, vdd);
  // Writes drive the written columns full swing instead of the sense margin.
  const double cd = unit_drain_cap(tech);
  const double cw = wire_cap_per_cell(tech);
  const double rows = static_cast<double>(org.rows) / org.banks;
  const double bl_cap_per_col = rows * (1.2 * cd + cw);
  e.bitline = static_cast<double>(org.read_out_bits) *
              dyn_energy(bl_cap_per_col, vdd, vdd);
  e.senseamp = 0.0;
  return e;
}

double line_transition_energy(const TechParams& tech,
                              const hotleakage::CacheGeometry& geom,
                              double delta_v) {
  // Virtual rail capacitance: source/drain junctions of every cell on the
  // line plus the rail wire.
  const double cd = unit_drain_cap(tech);
  const double cw = wire_cap_per_cell(tech);
  const double cells = static_cast<double>(geom.data_bits_per_line());
  const double rail_cap = cells * (2.0 * cd + cw);
  return rail_cap * delta_v * delta_v;
}

namespace {

/// FO4 inverter delay: the classic ~360 ps per micron of drawn gate length.
double fo4_delay(const TechParams& tech) {
  return 360e-12 * (tech.lgate / 1e-6);
}

/// Cell pitch (same 7.5 F assumption as the capacitance model).
double cell_pitch(const TechParams& tech) { return 7.5 * tech.lgate; }

/// Repeated global wire delay per metre (~220 ps/mm at these nodes).
constexpr double kWireDelayPerMetre = 220e-12 / 1e-3;

/// Subarrays limit bitline length to ~128 rows.
constexpr double kMaxRowsPerBitline = 128.0;

/// SRAM cell read current [A] (pull-down through the access device).
constexpr double kCellReadCurrent = 50e-6;

} // namespace

ArrayTiming array_access_time(const TechParams& tech,
                              const ArrayOrganization& org, double vdd) {
  if (org.rows == 0 || org.cols == 0 || org.banks == 0) {
    throw std::invalid_argument("array_access_time: degenerate organization");
  }
  const double fo4 = fo4_delay(tech);
  const double pitch = cell_pitch(tech);
  const double rows = static_cast<double>(org.rows) / org.banks;
  const double cols = static_cast<double>(org.cols);

  ArrayTiming t;
  // Decoder: a predecode + final stage tree, ~half an FO4 per address bit
  // plus two driver stages.
  t.decode = (1.5 + 0.4 * std::log2(std::max(2.0, rows))) * fo4;
  // Wordline: driver plus distributed-RC Elmore delay of the row wire.
  const double wl_len = cols * pitch;
  const double r_per_m = 0.4 / 1e-6; // ohm/m
  const double c_per_m = 0.2e-15 / 1e-6;
  t.wordline = 2.0 * fo4 + 0.5 * (r_per_m * wl_len) * (c_per_m * wl_len);
  // Bitline: discharge to the sense margin through the cell, limited per
  // subarray.
  const double bl_rows = std::min(rows, kMaxRowsPerBitline);
  const double cd = unit_drain_cap(tech);
  const double cw = wire_cap_per_cell(tech);
  const double c_bl = bl_rows * (1.2 * cd + cw);
  t.bitline = c_bl * (0.10 * vdd) / kCellReadCurrent;
  // Sense amplifier: a couple of gate delays.
  t.senseamp = 1.5 * fo4;
  // Output: route across the banked array (H-tree, there and back counts
  // once — the return shares the pipeline with the next access).
  const double bank_w = cols * pitch;
  const double bank_h = rows * pitch;
  // Single-bank arrays only drive half the array width to the edge;
  // banked arrays pay the H-tree across the whole tile.
  const double route = org.banks > 1
      ? std::sqrt(static_cast<double>(org.banks) * bank_w * bank_h)
      : 0.5 * bank_h;
  t.output = 2.0 * fo4 + route * kWireDelayPerMetre;
  return t;
}

unsigned cache_latency_cycles(const TechParams& tech,
                              const hotleakage::CacheGeometry& geom,
                              double vdd, double clock_hz) {
  const ArrayOrganization data = data_array_org(geom);
  const ArrayOrganization tag = tag_array_org(geom);
  const double t_data = array_access_time(tech, data, vdd).total();
  const double t_tag = array_access_time(tech, tag, vdd).total();
  // Small caches probe tag and data in parallel; large (multi-bank)
  // caches access tags first and only then the selected data bank, plus a
  // cycle of request/reply queueing at the bank interface.
  double total;
  if (data.banks > 1) {
    // Serial tag -> data, plus request/reply queueing at the bank
    // interface (4 cycles at this pipeline depth).
    total = t_tag + t_data + 4.0 / clock_hz;
  } else {
    total = std::max(t_tag, t_data);
  }
  const double cycles = total * clock_hz;
  return std::max(1u, static_cast<unsigned>(std::ceil(cycles)));
}

double counter_tick_energy(const TechParams& tech, double vdd) {
  // A 2-bit saturating counter: ~2 flops + increment logic, ~30 gate
  // equivalents, ~25 % switching activity per tick.
  const double cap = 30.0 * 4.0 * unit_gate_cap(tech) * 0.25;
  return cap * vdd * vdd;
}

} // namespace wattch
