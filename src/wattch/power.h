// Per-event dynamic energy table for the simulated processor (Wattch role).
//
// Wattch attributes dynamic energy to microarchitectural events.  The
// leakage-control experiments need the events enumerated in paper Sec. 2.3 /
// Sec. 5.1: L1 accesses, L2 accesses (induced misses!), tag wake-ups
// (drowsy), decay-counter activity, line mode transitions, and the cost of
// extra runtime (charged at the core's average per-cycle dynamic energy).
#pragma once

#include "hotleakage/model.h"
#include "wattch/cacti_lite.h"
#include "wattch/core_power.h"

namespace wattch {

/// Per-event energies [J] for one processor configuration at one Vdd.
struct PowerParams {
  double l1_read = 0.0;
  double l1_write = 0.0;
  double l1_tag_access = 0.0;
  double l2_access = 0.0;      ///< full read including tags
  double memory_access = 0.0;  ///< off-chip, per access (pins + DRAM share)
  double counter_tick = 0.0;   ///< one 2-bit decay counter increment/reset
  double line_transition = 0.0;///< active <-> standby rail switch
  double drowsy_wake = 0.0;    ///< restore full Vdd on one drowsy line
  /// Per-structure core energies; together with the per-cycle clock floor
  /// they price the extra runtime a technique induces (cost #4 in paper
  /// Sec. 2.3).
  CoreEnergyParams core;

  /// Build the table from geometry at the technology's nominal Vdd.
  static PowerParams for_config(const hotleakage::TechParams& tech,
                                const hotleakage::CacheGeometry& l1d,
                                const hotleakage::CacheGeometry& l2);

  /// Same, at a scaled supply (DVS studies): every event energy follows
  /// its own Vdd dependence (quadratic for switched capacitance).
  static PowerParams for_config_at(const hotleakage::TechParams& tech,
                                   const hotleakage::CacheGeometry& l1d,
                                   const hotleakage::CacheGeometry& l2,
                                   double vdd);
};

/// Activity counters for a run, with an energy roll-up against a
/// PowerParams table.  Plain aggregate: the simulator increments fields
/// directly.
struct Activity {
  unsigned long long l1_reads = 0;
  unsigned long long l1_writes = 0;
  unsigned long long l1_tag_accesses = 0;
  unsigned long long l2_accesses = 0;
  unsigned long long memory_accesses = 0;
  unsigned long long counter_ticks = 0;
  unsigned long long line_transitions = 0;
  unsigned long long drowsy_wakes = 0;
  unsigned long long cycles = 0;
  /// Core-structure activity (fetch/rename/window/regfile/FUs/clock).
  CoreActivity core;

  /// Total dynamic energy [J] of the run under @p p.
  double energy(const PowerParams& p) const;

  Activity& operator+=(const Activity& other);
};

} // namespace wattch
