#include "wattch/power.h"

namespace wattch {

PowerParams PowerParams::for_config(const hotleakage::TechParams& tech,
                                    const hotleakage::CacheGeometry& l1d,
                                    const hotleakage::CacheGeometry& l2) {
  return for_config_at(tech, l1d, l2, tech.vdd_nominal);
}

PowerParams PowerParams::for_config_at(const hotleakage::TechParams& tech,
                                       const hotleakage::CacheGeometry& l1d,
                                       const hotleakage::CacheGeometry& l2,
                                       double vdd) {
  PowerParams p;
  const ArrayOrganization l1_data = data_array_org(l1d);
  const ArrayOrganization l1_tag = tag_array_org(l1d);
  const ArrayOrganization l2_data = data_array_org(l2);
  const ArrayOrganization l2_tag = tag_array_org(l2);

  p.l1_tag_access = array_read_energy(tech, l1_tag, vdd).total();
  p.l1_read = array_read_energy(tech, l1_data, vdd).total() + p.l1_tag_access;
  p.l1_write = array_write_energy(tech, l1_data, vdd).total() + p.l1_tag_access;
  p.l2_access = array_read_energy(tech, l2_data, vdd).total() +
                array_read_energy(tech, l2_tag, vdd).total();
  // Off-chip access: pad + bus + DRAM core share; dominated by I/O swing.
  p.memory_access = p.l2_access * 8.0;
  p.counter_tick = counter_tick_energy(tech, vdd);
  // Drowsy rail swing: Vdd -> ~0.3 V and back.
  p.line_transition = line_transition_energy(tech, l1d, vdd * 0.65);
  p.drowsy_wake = p.line_transition;
  p.core = CoreEnergyParams::for_tech(tech);
  // The core model is built at the nominal supply; rescale quadratically.
  const double v_scale =
      (vdd * vdd) / (tech.vdd_nominal * tech.vdd_nominal);
  p.core.fetch_per_inst *= v_scale;
  p.core.bpred_access *= v_scale;
  p.core.rename_per_inst *= v_scale;
  p.core.window_insert *= v_scale;
  p.core.window_wakeup *= v_scale;
  p.core.lsq_insert *= v_scale;
  p.core.regfile_read *= v_scale;
  p.core.regfile_write *= v_scale;
  p.core.int_alu_op *= v_scale;
  p.core.mult_op *= v_scale;
  p.core.fp_op *= v_scale;
  p.core.result_bus *= v_scale;
  p.core.clock_per_cycle *= v_scale;
  return p;
}

double Activity::energy(const PowerParams& p) const {
  double e = 0.0;
  e += static_cast<double>(l1_reads) * p.l1_read;
  e += static_cast<double>(l1_writes) * p.l1_write;
  e += static_cast<double>(l1_tag_accesses) * p.l1_tag_access;
  e += static_cast<double>(l2_accesses) * p.l2_access;
  e += static_cast<double>(memory_accesses) * p.memory_access;
  e += static_cast<double>(counter_ticks) * p.counter_tick;
  e += static_cast<double>(line_transitions) * p.line_transition;
  e += static_cast<double>(drowsy_wakes) * p.drowsy_wake;
  e += core.energy(p.core);
  return e;
}

Activity& Activity::operator+=(const Activity& other) {
  l1_reads += other.l1_reads;
  l1_writes += other.l1_writes;
  l1_tag_accesses += other.l1_tag_accesses;
  l2_accesses += other.l2_accesses;
  memory_accesses += other.memory_accesses;
  counter_ticks += other.counter_ticks;
  line_transitions += other.line_transitions;
  drowsy_wakes += other.drowsy_wakes;
  cycles += other.cycles;
  core += other.core;
  return *this;
}

} // namespace wattch
