#include "wattch/core_power.h"

#include <cmath>

namespace wattch {
namespace {

using hotleakage::TechParams;

double gate_cap(const TechParams& tech) {
  return hotleakage::oxide_capacitance(tech) * tech.lgate * tech.lgate;
}

/// CAM match energy: every entry's tag comparators see the broadcast.
double cam_match_energy(const TechParams& tech, double entries, double bits,
                        double vdd) {
  const double cap = entries * bits * 4.0 * gate_cap(tech); // XOR + matchline
  return cap * vdd * vdd;
}

/// Small-array read via the CACTI-lite model.
double small_array_read(const TechParams& tech, std::size_t rows,
                        std::size_t bits, double vdd) {
  ArrayOrganization org;
  org.rows = rows;
  org.cols = bits;
  org.read_out_bits = bits;
  org.banks = 1;
  return array_read_energy(tech, org, vdd).total();
}

} // namespace

CoreEnergyParams CoreEnergyParams::for_tech(const TechParams& tech) {
  const double vdd = tech.vdd_nominal;
  const double v2 = vdd * vdd;
  // Structure sizes shrink with the node; effective switched capacitance
  // scales roughly linearly with feature size at constant organization.
  const double s = tech.lgate / 70e-9;
  CoreEnergyParams p;

  // Small learned arrays priced by the CACTI-lite model (these already
  // scale with tech and Vdd).  Multi-ported structures carry a port
  // overhead factor on the single-port array energy.
  const double bpred_tables = small_array_read(tech, 4096 / 64, 64 * 2, vdd) * 3.0 +
                              small_array_read(tech, 512, 96, vdd);
  const double rename_array = small_array_read(tech, 80, 8, vdd);
  const double regfile_array = small_array_read(tech, 80, 64, vdd);
  const double window_payload = small_array_read(tech, 80, 48, vdd);

  // Lumped effective capacitances for the rest (Wattch-style switched-cap
  // models, calibrated so a 4-wide 70 nm core lands near 0.6-0.8 nJ/cycle
  // of dynamic energy at IPC ~0.8 — the weight the net-savings accounting
  // was validated against).
  p.fetch_per_inst = 31e-12 * s * v2;
  p.bpred_access = bpred_tables + 12e-12 * s * v2;
  p.rename_per_inst = 3.0 * rename_array + 25e-12 * s * v2;
  p.window_insert = window_payload + cam_match_energy(tech, 80.0, 8.0, vdd) +
                    55e-12 * s * v2;
  p.window_wakeup = cam_match_energy(tech, 80.0, 8.0, vdd) * 2.0 +
                    48e-12 * s * v2;
  p.lsq_insert = small_array_read(tech, 40, 64, vdd) +
                 cam_match_energy(tech, 40.0, 40.0, vdd) + 30e-12 * s * v2;
  p.regfile_read = regfile_array * 6.0 + 20e-12 * s * v2;
  p.regfile_write = regfile_array * 6.0 + 28e-12 * s * v2;
  p.int_alu_op = 45e-12 * s * v2;
  p.mult_op = 140e-12 * s * v2;
  p.fp_op = 110e-12 * s * v2;
  p.result_bus = 30e-12 * s * v2;
  // Clock tree + pipeline latches: the unconditional per-cycle floor,
  // roughly half the core's dynamic power at these frequencies.
  p.clock_per_cycle = 640e-12 * s * v2;
  return p;
}

double CoreActivity::energy(const CoreEnergyParams& p) const {
  double e = 0.0;
  e += static_cast<double>(fetched) * p.fetch_per_inst;
  e += static_cast<double>(branches) * p.bpred_access;
  e += static_cast<double>(renamed) * p.rename_per_inst;
  e += static_cast<double>(window_inserts) * p.window_insert;
  e += static_cast<double>(wakeups) * p.window_wakeup;
  e += static_cast<double>(lsq_inserts) * p.lsq_insert;
  e += static_cast<double>(regfile_reads) * p.regfile_read;
  e += static_cast<double>(regfile_writes) * p.regfile_write;
  e += static_cast<double>(int_alu_ops) * p.int_alu_op;
  e += static_cast<double>(mult_ops) * p.mult_op;
  e += static_cast<double>(fp_ops) * p.fp_op;
  e += static_cast<double>(results) * p.result_bus;
  e += static_cast<double>(cycles) * p.clock_per_cycle;
  return e;
}

CoreActivity& CoreActivity::operator+=(const CoreActivity& other) {
  fetched += other.fetched;
  branches += other.branches;
  renamed += other.renamed;
  window_inserts += other.window_inserts;
  wakeups += other.wakeups;
  lsq_inserts += other.lsq_inserts;
  regfile_reads += other.regfile_reads;
  regfile_writes += other.regfile_writes;
  int_alu_ops += other.int_alu_ops;
  mult_ops += other.mult_ops;
  fp_ops += other.fp_ops;
  results += other.results;
  cycles += other.cycles;
  return *this;
}

} // namespace wattch
