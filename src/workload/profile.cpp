#include "workload/profile.h"

#include <stdexcept>
#include <string>

namespace workload {
namespace {

// Dormant-gap means are in D-cache accesses; at ~0.5 D-accesses/cycle a
// mean of G accesses puts the knee of the induced-miss curve near 4G
// cycles, spreading the per-benchmark optimal decay intervals across
// 1 k - 64 k cycles as in Table 3.
constexpr std::array<BenchmarkProfile, 11> kProfiles = {{
    {.name = "gcc",
     .f_load = 0.29, .f_store = 0.12, .f_branch = 0.18,
     .dep_mean = 5.0, .br_random_frac = 0.10, .br_taken_bias = 0.60,
     .code_lines = 3000,
     .hot_lines = 450, .footprint_lines = 60000, .p_new = 0.030,
     .zipf_alpha = 0.70, .p_dormant_schedule = 0.18,
     .dormant_gap_mean = 1000.0, .dormant_gap_sigma = 0.8},
    {.name = "gzip",
     .f_load = 0.26, .f_store = 0.08, .f_branch = 0.17,
     .dep_mean = 8.0, .br_random_frac = 0.12, .br_taken_bias = 0.62,
     .code_lines = 250,
     .hot_lines = 500, .footprint_lines = 40000, .p_new = 0.015,
     .zipf_alpha = 0.65, .p_dormant_schedule = 0.20,
     .dormant_gap_mean = 14000.0, .dormant_gap_sigma = 0.7},
    {.name = "parser",
     .f_load = 0.28, .f_store = 0.09, .f_branch = 0.18,
     .dep_mean = 5.0, .br_random_frac = 0.10, .br_taken_bias = 0.61,
     .code_lines = 900,
     .hot_lines = 450, .footprint_lines = 50000, .p_new = 0.020,
     .zipf_alpha = 0.70, .p_dormant_schedule = 0.18,
     .dormant_gap_mean = 4000.0, .dormant_gap_sigma = 0.8},
    {.name = "vortex",
     .f_load = 0.31, .f_store = 0.14, .f_branch = 0.16,
     .dep_mean = 7.0, .br_random_frac = 0.04, .br_taken_bias = 0.64,
     .code_lines = 2000,
     .hot_lines = 500, .footprint_lines = 45000, .p_new = 0.010,
     .zipf_alpha = 0.70, .p_dormant_schedule = 0.18,
     .dormant_gap_mean = 2300.0, .dormant_gap_sigma = 0.8},
    {.name = "gap",
     .f_load = 0.28, .f_store = 0.10, .f_branch = 0.16,
     .dep_mean = 7.0, .br_random_frac = 0.05, .br_taken_bias = 0.65,
     .code_lines = 700,
     .hot_lines = 450, .footprint_lines = 45000, .p_new = 0.015,
     .zipf_alpha = 0.70, .p_dormant_schedule = 0.18,
     .dormant_gap_mean = 4000.0, .dormant_gap_sigma = 0.7},
    {.name = "perl",
     .f_load = 0.30, .f_store = 0.12, .f_branch = 0.17,
     .dep_mean = 6.0, .br_random_frac = 0.08, .br_taken_bias = 0.62,
     .code_lines = 1500,
     .hot_lines = 400, .footprint_lines = 40000, .p_new = 0.020,
     .zipf_alpha = 0.70, .p_dormant_schedule = 0.18,
     .dormant_gap_mean = 1300.0, .dormant_gap_sigma = 0.8},
    {.name = "twolf",
     .f_load = 0.27, .f_store = 0.08, .f_branch = 0.16,
     .dep_mean = 4.0, .br_random_frac = 0.14, .br_taken_bias = 0.58,
     .code_lines = 400,
     .hot_lines = 300, .footprint_lines = 30000, .p_new = 0.040,
     .zipf_alpha = 0.80, .p_dormant_schedule = 0.16,
     .dormant_gap_mean = 1300.0, .dormant_gap_sigma = 0.9},
    {.name = "bzip2",
     .f_load = 0.29, .f_store = 0.10, .f_branch = 0.15,
     .dep_mean = 8.0, .br_random_frac = 0.09, .br_taken_bias = 0.63,
     .code_lines = 250,
     .hot_lines = 500, .footprint_lines = 50000, .p_new = 0.025,
     .zipf_alpha = 0.65, .p_dormant_schedule = 0.18,
     .dormant_gap_mean = 4000.0, .dormant_gap_sigma = 0.8},
    {.name = "vpr",
     .f_load = 0.30, .f_store = 0.11, .f_branch = 0.15,
     .dep_mean = 5.0, .br_random_frac = 0.12, .br_taken_bias = 0.60,
     .code_lines = 500,
     .hot_lines = 350, .footprint_lines = 35000, .p_new = 0.030,
     .zipf_alpha = 0.70, .p_dormant_schedule = 0.18,
     .dormant_gap_mean = 2300.0, .dormant_gap_sigma = 0.8},
    {.name = "mcf",
     .f_load = 0.34, .f_store = 0.09, .f_branch = 0.19,
     .dep_mean = 3.0, .br_random_frac = 0.08, .br_taken_bias = 0.60,
     .code_lines = 150,
     .hot_lines = 200, .footprint_lines = 150000, .p_new = 0.100,
     .zipf_alpha = 0.90, .p_dormant_schedule = 0.12,
     .dormant_gap_mean = 600.0, .dormant_gap_sigma = 0.9},
    {.name = "crafty",
     .f_load = 0.31, .f_store = 0.09, .f_branch = 0.16,
     .dep_mean = 7.0, .br_random_frac = 0.08, .br_taken_bias = 0.62,
     .code_lines = 1200,
     .hot_lines = 600, .footprint_lines = 30000, .p_new = 0.008,
     .zipf_alpha = 0.65, .p_dormant_schedule = 0.20,
     .dormant_gap_mean = 7500.0, .dormant_gap_sigma = 0.7},
}};

} // namespace

const std::array<BenchmarkProfile, 11>& spec2000_profiles() {
  return kProfiles;
}

const BenchmarkProfile& profile_by_name(std::string_view name) {
  for (const BenchmarkProfile& p : kProfiles) {
    if (p.name == name) {
      return p;
    }
  }
  throw std::out_of_range("profile_by_name: unknown benchmark " +
                          std::string(name));
}

} // namespace workload
