#include "workload/interleaver.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace workload {

Interleaver::Interleaver(const std::vector<TenantStream>& streams,
                         uint64_t quantum)
    : quantum_(quantum) {
  if (streams.empty()) {
    throw std::invalid_argument(
        "Interleaver: streams must name at least one tenant");
  }
  if (quantum == 0) {
    throw std::invalid_argument(
        "Interleaver: quantum must be a positive committed-instruction "
        "count, got 0");
  }
  bool seen[sim::kMaxTenants] = {};
  slots_.reserve(streams.size());
  for (const TenantStream& s : streams) {
    if (s.tenant >= sim::kMaxTenants) {
      throw std::invalid_argument(
          "Interleaver: tenant tag " + std::to_string(s.tenant) +
          " exceeds the " + std::to_string(sim::kMaxTenants) +
          "-tenant address-tag budget (sim/tenant.h)");
    }
    if (seen[s.tenant]) {
      throw std::invalid_argument(
          "Interleaver: duplicate tenant tag " + std::to_string(s.tenant) +
          " (tenant address spaces must be disjoint)");
    }
    seen[s.tenant] = true;
    slots_.push_back(Slot{Generator(s.profile, s.seed),
                          sim::tenant_bits(s.tenant)});
  }
}

bool Interleaver::next(sim::MicroOp& op) {
  if (emitted_in_quantum_ == quantum_) {
    emitted_in_quantum_ = 0;
    if (slots_.size() > 1) {
      active_ = (active_ + 1) % slots_.size();
      ++switches_;
    }
  }
  Slot& slot = slots_[active_];
  if (!slot.gen.next(op)) {
    return false;
  }
  ++emitted_in_quantum_;
  if (slot.tag_bits != 0) {
    op.pc |= slot.tag_bits;
    if (sim::is_mem(op.op)) {
      op.mem_addr |= slot.tag_bits;
    }
    if (op.op == sim::OpClass::branch) {
      op.target |= slot.tag_bits;
    }
  }
  return true;
}

std::size_t Interleaver::next_block(sim::MicroOp* out, std::size_t n) {
  std::size_t filled = 0;
  while (filled < n) {
    if (emitted_in_quantum_ == quantum_) {
      emitted_in_quantum_ = 0;
      if (slots_.size() > 1) {
        active_ = (active_ + 1) % slots_.size();
        ++switches_;
      }
    }
    Slot& slot = slots_[active_];
    const uint64_t room = quantum_ - emitted_in_quantum_;
    const std::size_t want = static_cast<std::size_t>(
        std::min<uint64_t>(n - filled, room));
    const std::size_t got = slot.gen.next_block(out + filled, want);
    emitted_in_quantum_ += got;
    if (slot.tag_bits != 0) {
      for (std::size_t i = filled; i < filled + got; ++i) {
        sim::MicroOp& op = out[i];
        op.pc |= slot.tag_bits;
        if (sim::is_mem(op.op)) {
          op.mem_addr |= slot.tag_bits;
        }
        if (op.op == sim::OpClass::branch) {
          op.target |= slot.tag_bits;
        }
      }
    }
    filled += got;
    if (got < want) {
      break; // the active generator ended; so does the merged stream
    }
  }
  return filled;
}

} // namespace workload
