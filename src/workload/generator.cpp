#include "workload/generator.h"

#include <algorithm>
#include <cmath>

namespace workload {
namespace {

constexpr uint64_t kLineBytes = 64;
constexpr uint64_t kDataBase = 0x10000000;
constexpr uint64_t kCodeBase = 0x00400000;

/// Stateless per-PC hash: branch behaviour (bias, randomness, target) must
/// be a stable property of the static branch, or predictors and the BTB
/// could never learn anything.
uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

} // namespace

Generator::Generator(const BenchmarkProfile& profile, uint64_t seed)
    : profile_(profile),
      rng_(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL),
      dormant_gap_(std::log(std::max(1.0, profile.dormant_gap_mean)) -
                       0.5 * profile.dormant_gap_sigma *
                           profile.dormant_gap_sigma,
                   profile.dormant_gap_sigma),
      dep_dist_(1.0 / std::max(1.5, profile.dep_mean)),
      pc_(kCodeBase) {
  recent_.assign(static_cast<std::size_t>(std::max(16, profile.hot_lines)), 0);
  // Seed the recency ring with distinct fresh lines so early Zipf picks are
  // well-defined.
  for (std::size_t i = 0; i < recent_.size(); ++i) {
    recent_[i] = next_fresh_line_++;
  }
  // Zipf CDF over stack distances [1, hot_lines].
  zipf_cdf_.resize(recent_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < zipf_cdf_.size(); ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), profile.zipf_alpha);
    zipf_cdf_[i] = sum;
  }
  for (double& v : zipf_cdf_) {
    v /= sum;
  }
}

uint16_t Generator::dep_distance() {
  const int d = 1 + dep_dist_(rng_);
  return static_cast<uint16_t>(std::min(d, 900));
}

uint64_t Generator::pick_data_line() {
  ++data_accesses_;
  uint64_t line;
  if (!dormant_.empty() && dormant_.top().due <= data_accesses_) {
    line = dormant_.top().line;
    dormant_.pop();
  } else if (uniform_(rng_) < profile_.p_new) {
    line = next_fresh_line_++ %
           static_cast<uint64_t>(profile_.footprint_lines);
  } else {
    // Zipf pick over the recency ring: distance 1 = most recent.
    const double u = uniform_(rng_);
    const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    const std::size_t dist =
        static_cast<std::size_t>(it - zipf_cdf_.begin()); // 0-based
    const std::size_t idx =
        (recent_head_ + recent_.size() - 1 - dist) % recent_.size();
    line = recent_[idx];
  }

  // Update recency ring (approximate move-to-front: append).
  recent_[recent_head_] = line;
  recent_head_ = (recent_head_ + 1) % recent_.size();

  // Possibly schedule a dormant return.
  if (uniform_(rng_) < profile_.p_dormant_schedule) {
    const double gap = std::max(8.0, dormant_gap_(rng_));
    dormant_.push({data_accesses_ + static_cast<uint64_t>(gap), line});
  }
  return line;
}

uint64_t Generator::next_pc(bool taken, uint64_t target) {
  const uint64_t cur = pc_;
  pc_ = taken ? target : pc_ + 4;
  return cur;
}

bool Generator::next(sim::MicroOp& op) {
  op = sim::MicroOp{};
  const double r = uniform_(rng_);
  const BenchmarkProfile& p = profile_;

  double acc = p.f_load;
  if (r < acc) {
    op.op = sim::OpClass::load;
  } else if (r < (acc += p.f_store)) {
    op.op = sim::OpClass::store;
  } else if (r < (acc += p.f_branch)) {
    op.op = sim::OpClass::branch;
  } else if (r < (acc += p.f_mul)) {
    op.op = sim::OpClass::int_mult;
  } else if (r < (acc += p.f_div)) {
    op.op = sim::OpClass::int_div;
  } else if (r < (acc += p.f_fp)) {
    op.op = sim::OpClass::fp_alu;
  } else {
    op.op = sim::OpClass::int_alu;
  }

  op.src1_dist = dep_distance();
  if (uniform_(rng_) < p.dep_second_prob) {
    op.src2_dist = dep_distance();
  }

  bool taken = false;
  uint64_t target = 0;
  if (op.op == sim::OpClass::branch) {
    // Static properties of the branch at the *current* PC.
    const uint64_t h = splitmix64(pc_);
    const bool random_branch =
        static_cast<double>(h % 10000) < p.br_random_frac * 10000.0;
    const bool pc_direction =
        static_cast<double>((h >> 16) % 10000) < p.br_taken_bias * 10000.0;
    if (random_branch) {
      taken = uniform_(rng_) < 0.5; // data-dependent, unlearnable
    } else {
      // Strongly biased toward the branch's static direction.
      taken = uniform_(rng_) < 0.97 ? pc_direction : !pc_direction;
    }
    // Fixed target per static branch.  Targets are skewed toward a hot
    // region (inner loops) so the dynamic branch-site working set matches
    // real programs: a handful of hot branches dominate even in
    // large-code benchmarks like gcc.
    const uint64_t hot_lines_code =
        std::max<uint64_t>(1, static_cast<uint64_t>(p.code_lines) / 16);
    const bool to_hot = ((h >> 8) % 100) < 90;
    const uint64_t line =
        to_hot ? (h >> 32) % hot_lines_code
               : (h >> 32) % static_cast<uint64_t>(p.code_lines);
    target = kCodeBase + line * kLineBytes + ((h >> 52) % 16) * 4;
    op.taken = taken;
    op.target = target;
  }

  op.pc = next_pc(taken, target);
  // Keep the sequential walk inside the code footprint.
  const uint64_t code_end =
      kCodeBase + static_cast<uint64_t>(p.code_lines) * kLineBytes;
  if (pc_ >= code_end) {
    pc_ = kCodeBase;
  }

  if (sim::is_mem(op.op)) {
    const uint64_t line = pick_data_line();
    const uint64_t offset = (static_cast<uint64_t>(uniform_(rng_) * 8.0)) * 8;
    op.mem_addr = kDataBase + line * kLineBytes + offset;
  }
  return true;
}

std::size_t Generator::next_block(sim::MicroOp* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!next(out[i])) {
      return i; // unreachable today (the generator never ends), but the
                // next_block contract must hold for any future profile
    }
  }
  return n;
}

} // namespace workload
