// Deterministic synthetic trace generator (sim::TraceSource implementation).
//
// Mechanics per committed instruction:
//   * op class drawn from the profile's mix;
//   * register dependency distances drawn geometrically (ILP knob);
//   * PCs walk a code footprint with loop-back branches (I-side locality);
//   * branch outcomes are a mix of biased-predictable and data-random
//     (misprediction knob);
//   * data addresses come from a three-way line-generation model:
//       1. due *dormant* lines (scheduled lognormal reuse gaps) — the knob
//          that positions each benchmark's optimal decay interval,
//       2. *hot* reuse via a Zipf-distributed recency-stack pick,
//       3. *fresh* lines (cold misses / streaming, dead-on-eviction data).
//
// Everything is seeded; the same (profile, seed, n) prefix is bit-identical
// across runs, so baseline and technique runs see the same stream.
#pragma once

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/core.h"
#include "workload/profile.h"

namespace workload {

class Generator final : public sim::TraceSource {
public:
  explicit Generator(const BenchmarkProfile& profile, uint64_t seed = 1);

  bool next(sim::MicroOp& op) override;
  /// Native batched pull: the class is final, so the internal next()
  /// calls devirtualize and callers pay one dispatch per block.
  std::size_t next_block(sim::MicroOp* out, std::size_t n) override;

  const BenchmarkProfile& profile() const { return profile_; }
  uint64_t data_accesses() const { return data_accesses_; }

private:
  uint64_t pick_data_line();
  uint64_t next_pc(bool taken, uint64_t target);
  uint16_t dep_distance();

  BenchmarkProfile profile_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::lognormal_distribution<double> dormant_gap_;
  std::geometric_distribution<int> dep_dist_;

  // Data-side state.
  struct DormantEntry {
    uint64_t due;  ///< data-access count at which the line returns
    uint64_t line;
    bool operator>(const DormantEntry& o) const { return due > o.due; }
  };
  std::priority_queue<DormantEntry, std::vector<DormantEntry>,
                      std::greater<DormantEntry>>
      dormant_;
  std::vector<uint64_t> recent_; ///< recency ring of hot lines
  std::size_t recent_head_ = 0;
  uint64_t next_fresh_line_ = 0;
  uint64_t data_accesses_ = 0;

  // Code-side state.
  uint64_t pc_ = 0x400000;

  // Zipf sampling over the recency stack (precomputed CDF).
  std::vector<double> zipf_cdf_;
};

} // namespace workload
