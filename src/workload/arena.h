// Shared trace arena: materialize-once, replay-many instruction streams.
//
// A sweep runs the same (profile, seed, instructions, tenants) stream
// through many cells — the baseline and every technique/interval cell of
// a grid consume bit-identical ops — yet historically each run re-drew
// the stream from workload::Generator at ~150 ns/op, which BENCH_5
// measured as the dominant share of scalar-path cell time.  The arena
// kills that redundancy: the first user of a stream materializes it once
// into a compact structure-of-arrays buffer; every later user (on any
// worker thread) replays the buffer through a cheap cursor reader.
//
// Encoding (lossless for conforming streams, ~17 B/op on the SPEC
// profiles vs sizeof(MicroOp) = 40):
//   * per op: 1 B op-class + taken bit, 2 B src1_dist, 2 B src2_dist,
//     8 B pc;
//   * side arrays in stream order: 8 B mem_addr per load/store, 8 B
//     target per branch — replay walks them with cursors.
// A stream where a non-memory op carries mem_addr or a non-branch op
// carries target would be lossy to encode; materialize() detects that
// and the arena falls back to live generation (Generator / Interleaver
// streams always conform).
//
// Concurrency: slots are handed out under one mutex; the (expensive)
// materialization runs outside the lock under the slot's once_flag, so
// threads needing the same stream block on each other instead of
// duplicating the build, while different streams build in parallel —
// the same shape as the harness baseline memo.  Readers hold the buffer
// via shared_ptr, so eviction never invalidates an in-flight replay.
//
// Budget: total resident bytes are capped (HLCC_TRACE_BUDGET, default
// 1.5 GiB).  Admission evicts least-recently-used streams with no
// outstanding readers; a stream that still cannot fit is returned to its
// builder (correct, just uncached) and later users generate live.
// Streams whose upfront size estimate alone exceeds the budget are never
// built.  HLCC_TRACE_ARENA=0 disables the arena entirely.
//
// Determinism: replay returns exactly the ops the live source emitted,
// so every consumer is bit-identical with the arena on, off, or
// thrashing — the differential tests in tests/test_trace_arena.cpp pin
// this at 1 and N threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/core.h"

namespace workload {

/// One materialized stream in the arena's SoA encoding.  Immutable after
/// materialize(); shared across threads by const reference counting.
class PackedTrace {
public:
  /// Replay position: the op index plus the side-array cursors.
  struct Cursor {
    uint64_t op = 0;
    uint64_t mem = 0;
    uint64_t branch = 0;
  };

  /// Reader over a shared buffer; each reader owns its cursor, so any
  /// number replay the same trace concurrently.
  class Reader final : public sim::TraceSource {
  public:
    explicit Reader(std::shared_ptr<const PackedTrace> trace)
        : trace_(std::move(trace)) {}
    bool next(sim::MicroOp& op) override {
      return trace_->decode(cur_, &op, 1) == 1;
    }
    std::size_t next_block(sim::MicroOp* out, std::size_t n) override {
      return trace_->decode(cur_, out, n);
    }

  private:
    std::shared_ptr<const PackedTrace> trace_;
    Cursor cur_;
  };

  /// Drain up to @p max_ops from @p live into a new buffer.  Returns
  /// nullptr when the stream does not conform to the packed encoding
  /// (see the header notes) — the caller then stays on live generation.
  static std::shared_ptr<const PackedTrace> materialize(
      sim::TraceSource& live, uint64_t max_ops);

  /// Decode up to @p n ops at @p c into @p out; advances the cursor and
  /// returns the count produced (short only at end of trace).
  std::size_t decode(Cursor& c, sim::MicroOp* out, std::size_t n) const;

  uint64_t ops() const { return opbits_.size(); }
  /// Resident heap bytes (vector capacities — what the budget meters).
  std::size_t bytes() const;

  /// Worst-case encoded bytes per op (an op is memory or branch, never
  /// both) — the upfront admission estimate.
  static constexpr uint64_t kMaxBytesPerOp = 1 + 2 + 2 + 8 + 8;

private:
  static constexpr uint8_t kTakenBit = 0x80;

  std::vector<uint8_t> opbits_;    ///< op class | taken << 7
  std::vector<uint16_t> src1_;
  std::vector<uint16_t> src2_;
  std::vector<uint64_t> pc_;
  std::vector<uint64_t> mem_addr_; ///< loads/stores only, stream order
  std::vector<uint64_t> target_;   ///< branches only, stream order
};

/// Arena effectiveness counters (process-cumulative; the sweep engine
/// exports per-run deltas as sweep.trace_arena_* metrics).
struct ArenaStats {
  uint64_t hits = 0;       ///< opens served by a resident stream
  uint64_t misses = 0;     ///< opens that had to materialize
  uint64_t evictions = 0;  ///< streams evicted to make room
  uint64_t fallbacks = 0;  ///< opens that fell back to live generation
  uint64_t bytes = 0;      ///< resident encoded bytes right now
  uint64_t streams = 0;    ///< resident streams right now
};

/// The process-wide keyed store of materialized streams.
class TraceArena {
public:
  /// The arena every simulation site shares (streams are keyed globally,
  /// so one instance maximizes sharing across concurrent sweeps).
  static TraceArena& instance();

  /// Builds the live source for a stream key — invoked at most once per
  /// materialization, from whichever thread wins the build race.
  using LiveFactory =
      std::function<std::unique_ptr<sim::TraceSource>()>;

  /// A fresh replay reader over the stream @p key of @p instructions
  /// ops, materializing via @p live on first use.  Returns nullptr when
  /// the arena is disabled or the stream cannot be held (budget); the
  /// caller falls back to live generation, which is bit-identical.
  std::unique_ptr<sim::TraceSource> open(const std::string& key,
                                         uint64_t instructions,
                                         const LiveFactory& live);

  /// Materialize without reading — the sweep planner's pre-warm hook.
  /// Returns true when the stream is resident after the call.
  bool prefetch(const std::string& key, uint64_t instructions,
                const LiveFactory& live);

  bool enabled() const { return enabled_; }
  uint64_t budget() const;
  ArenaStats stats() const;

  /// Test-and-bench hooks: the env knobs (HLCC_TRACE_ARENA,
  /// HLCC_TRACE_BUDGET) are read once at construction; these override
  /// them for the current process.  set_budget evicts idle streams down
  /// to the new cap immediately.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  void set_budget(uint64_t bytes);
  /// Drop every resident stream (in-flight readers keep theirs alive).
  void clear();

private:
  TraceArena();

  struct Slot {
    std::once_flag once;
    std::shared_ptr<const PackedTrace> trace; ///< null until admitted
    bool failed = false; ///< build refused (estimate/encoding/budget)
    uint64_t last_use = 0;
  };

  std::shared_ptr<const PackedTrace> acquire(const std::string& key,
                                             uint64_t instructions,
                                             const LiveFactory& live);
  /// Evict idle streams (LRU first) until @p need_bytes fit under the
  /// budget or nothing evictable remains.  Caller holds mu_.
  void evict_for(uint64_t need_bytes);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  uint64_t bytes_ = 0;
  uint64_t tick_ = 0;
  uint64_t budget_;
  std::atomic<bool> enabled_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> fallbacks_{0};
};

} // namespace workload
