#include "workload/tracefile.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

namespace workload {
namespace {

constexpr char kMagic[8] = {'H', 'L', 'C', 'C', 'T', 'R', 'C', '1'};
constexpr std::size_t kRecordBytes = 30;

void pack(const sim::MicroOp& op, unsigned char* buf) {
  buf[0] = static_cast<unsigned char>(op.op);
  std::memcpy(buf + 1, &op.pc, 8);
  std::memcpy(buf + 9, &op.mem_addr, 8);
  std::memcpy(buf + 17, &op.src1_dist, 2);
  std::memcpy(buf + 19, &op.src2_dist, 2);
  buf[21] = op.taken ? 1 : 0;
  std::memcpy(buf + 22, &op.target, 8);
}

void unpack(const unsigned char* buf, sim::MicroOp& op) {
  op = sim::MicroOp{};
  op.op = static_cast<sim::OpClass>(buf[0]);
  std::memcpy(&op.pc, buf + 1, 8);
  std::memcpy(&op.mem_addr, buf + 9, 8);
  std::memcpy(&op.src1_dist, buf + 17, 2);
  std::memcpy(&op.src2_dist, buf + 19, 2);
  op.taken = buf[21] != 0;
  std::memcpy(&op.target, buf + 22, 8);
}

} // namespace

uint64_t write_trace(const std::string& path, sim::TraceSource& source,
                     uint64_t count) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw TraceError("write_trace: cannot open " + path);
  }
  // Header with a placeholder count, fixed up at the end.
  uint64_t written = 0;
  if (std::fwrite(kMagic, 1, 8, f) != 8 ||
      std::fwrite(&written, 8, 1, f) != 1) {
    std::fclose(f);
    throw TraceError("write_trace: header write failed");
  }
  sim::MicroOp op;
  std::array<unsigned char, kRecordBytes> buf{};
  while (written < count && source.next(op)) {
    pack(op, buf.data());
    if (std::fwrite(buf.data(), 1, kRecordBytes, f) != kRecordBytes) {
      std::fclose(f);
      throw TraceError("write_trace: record write failed");
    }
    ++written;
  }
  if (std::fseek(f, 8, SEEK_SET) != 0 ||
      std::fwrite(&written, 8, 1, f) != 1 || std::fclose(f) != 0) {
    throw TraceError("write_trace: finalize failed");
  }
  return written;
}

TraceFileReader::TraceFileReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw TraceError("TraceFileReader: cannot open " + path);
  }
  char magic[8];
  if (std::fread(magic, 1, 8, file_) != 8 ||
      std::memcmp(magic, kMagic, 8) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw TraceError("TraceFileReader: bad magic in " + path);
  }
  if (std::fread(&total_, 8, 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    throw TraceError("TraceFileReader: truncated header in " + path);
  }
  // Cross-check the promised record count against the actual file size so
  // a truncated or tampered file fails loudly at open, not mid-replay.
  const long data_start = std::ftell(file_);
  if (data_start != 16 || std::fseek(file_, 0, SEEK_END) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw TraceError("TraceFileReader: seek failed in " + path);
  }
  const long size = std::ftell(file_);
  const long long expected =
      16 + static_cast<long long>(total_) * static_cast<long long>(kRecordBytes);
  if (size < 0 || static_cast<long long>(size) != expected) {
    const std::string detail =
        "header promises " + std::to_string(total_) + " records (" +
        std::to_string(expected) + " bytes) but the file has " +
        std::to_string(size) + " bytes";
    std::fclose(file_);
    file_ = nullptr;
    throw TraceError("TraceFileReader: corrupt " + path + ": " +
                             detail);
  }
  if (std::fseek(file_, data_start, SEEK_SET) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw TraceError("TraceFileReader: seek failed in " + path);
  }
}

TraceFileReader::~TraceFileReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

bool TraceFileReader::next(sim::MicroOp& op) {
  if (read_ >= total_) {
    return false;
  }
  unsigned char buf[kRecordBytes];
  if (std::fread(buf, 1, kRecordBytes, file_) != kRecordBytes) {
    // The size was validated at open, so a short read means the file
    // changed (or the medium failed) under us: never silently end the
    // trace early — a shortened instruction stream corrupts experiments.
    throw TraceError(
        "TraceFileReader: short read at record " + std::to_string(read_) +
        " of " + std::to_string(total_) + " (file truncated mid-stream?)");
  }
  unpack(buf, op);
  ++read_;
  return true;
}

std::size_t TraceFileReader::next_block(sim::MicroOp* out, std::size_t n) {
  const uint64_t avail = total_ - read_;
  const std::size_t take =
      static_cast<std::size_t>(std::min<uint64_t>(n, avail));
  constexpr std::size_t kChunkRecords = 64;
  unsigned char buf[kChunkRecords * kRecordBytes];
  std::size_t done = 0;
  while (done < take) {
    const std::size_t chunk = std::min(kChunkRecords, take - done);
    if (std::fread(buf, kRecordBytes, chunk, file_) != chunk) {
      // Same contract as next(): the size was validated at open, so a
      // short read means the file changed under us — fail loudly.
      throw TraceError(
          "TraceFileReader: short read at record " + std::to_string(read_) +
          " of " + std::to_string(total_) + " (file truncated mid-stream?)");
    }
    for (std::size_t j = 0; j < chunk; ++j) {
      unpack(buf + j * kRecordBytes, out[done + j]);
    }
    read_ += chunk;
    done += chunk;
  }
  return take;
}

void TraceFileReader::rewind() {
  if (std::fseek(file_, 16, SEEK_SET) != 0) {
    throw TraceError("TraceFileReader: rewind failed");
  }
  read_ = 0;
}

} // namespace workload
