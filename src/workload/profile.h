// Per-benchmark workload profiles standing in for SPECint2000.
//
// The paper runs 11 SPECint2000 benchmarks (Alpha binaries, 500 M committed
// instructions after a 2 B skip).  SPEC binaries and reference inputs are
// proprietary, and a functional Alpha simulator is beyond scope; what the
// leakage experiments actually consume is each benchmark's
//
//   * instruction mix and dependency structure (ILP => ability to hide
//     induced-miss latency),
//   * branch predictability (pipeline disruption),
//   * code footprint (I-side behaviour),
//   * and above all its *line-generation* behaviour: how long cache lines
//     stay live, how often dormant lines come back, how much of the cache
//     is dead at any moment (the turnoff-ratio driver).
//
// Each profile below parameterizes a synthetic generator that reproduces
// those characteristics as published for 64 KB 2-way L1 D-caches, with
// dormant-reuse gaps tuned so the per-benchmark optimal decay intervals
// spread over 1 k - 64 k cycles as in the paper's Table 3.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace workload {

struct BenchmarkProfile {
  std::string_view name;

  // Instruction mix (fractions of the committed stream; the remainder is
  // int ALU work).
  double f_load = 0.24;
  double f_store = 0.10;
  double f_branch = 0.16;
  double f_mul = 0.01;
  double f_div = 0.001;
  double f_fp = 0.0;

  // Dependency structure: geometric distance distribution.
  double dep_mean = 6.0;       ///< mean register-dependency distance
  double dep_second_prob = 0.5;///< probability of a second source operand

  // Branch behaviour.
  double br_random_frac = 0.10; ///< branches with data-dependent outcomes
  double br_taken_bias = 0.62;  ///< taken probability of predictable branches

  // Code footprint in 64 B lines (I-cache behaviour).
  int code_lines = 300;

  // Data-side line-generation behaviour.
  int hot_lines = 400;          ///< lines under active (short-gap) reuse
  int footprint_lines = 40000;  ///< total distinct lines touched
  double p_new = 0.02;          ///< fresh-line probability (cold/streaming)
  double zipf_alpha = 1.2;      ///< recency-stack skew of hot reuse
  double p_dormant_schedule = 0.05; ///< chance a touched line goes dormant
  double dormant_gap_mean = 2000.0; ///< mean dormant gap [D-accesses]
  double dormant_gap_sigma = 0.8;   ///< lognormal sigma of that gap
};

/// The paper's 11 SPECint2000 benchmarks, in its Table 3 order.
const std::array<BenchmarkProfile, 11>& spec2000_profiles();

/// Lookup by name ("gcc", "gzip", ...); throws std::out_of_range if absent.
const BenchmarkProfile& profile_by_name(std::string_view name);

} // namespace workload
