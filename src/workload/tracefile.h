// Binary trace capture and replay (SimpleScalar EIO-style).
//
// The synthetic generator is deterministic, but experiments sometimes want
// a fixed artifact: capture a generator's (or any TraceSource's) stream to
// a compact binary file once, then replay it — byte-identical — across
// machines, tool versions, or external consumers.
//
// Format: 16-byte header ("HLCCTRC1" magic + record count), then one
// packed 30-byte record per committed instruction.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "sim/core.h"

namespace workload {

/// Trace capture/replay failure (open, short read, corrupt header...).
/// Distinct from plain std::runtime_error so the sweep engine's error
/// taxonomy can classify it as trace_io — the one failure class that is
/// plausibly transient (shared filesystems) and therefore retried.
class TraceError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Write @p count instructions from @p source to @p path.  Returns the
/// number actually written (the source may end early).  Throws
/// std::runtime_error on I/O failure.
uint64_t write_trace(const std::string& path, sim::TraceSource& source,
                     uint64_t count);

/// Replays a trace file.  Construction validates the header *and* checks
/// the promised record count against the actual file size, so truncated or
/// tampered captures fail loudly at open; next() streams records without
/// loading the file into memory and throws std::runtime_error on a short
/// read (a file shrinking mid-replay) rather than silently ending the
/// trace.
class TraceFileReader final : public sim::TraceSource {
public:
  explicit TraceFileReader(const std::string& path);
  ~TraceFileReader() override;

  TraceFileReader(const TraceFileReader&) = delete;
  TraceFileReader& operator=(const TraceFileReader&) = delete;

  bool next(sim::MicroOp& op) override;
  /// Native batched pull: one fread per chunk of records instead of one
  /// per record.  Same short-read policy as next() — throws TraceError,
  /// never silently ends the trace early.
  std::size_t next_block(sim::MicroOp* out, std::size_t n) override;

  uint64_t total_records() const { return total_; }
  uint64_t records_read() const { return read_; }
  /// Restart from the first record.
  void rewind();

private:
  std::FILE* file_ = nullptr;
  uint64_t total_ = 0;
  uint64_t read_ = 0;
};

} // namespace workload
