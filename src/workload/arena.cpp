#include "workload/arena.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <iterator>
#include <stdexcept>
#include <string_view>

namespace workload {
namespace {

/// Strict positive-integer env parse (same policy as harness/env.h,
/// which this library cannot link): junk, zero, and negatives are
/// configuration errors, never a silent default.
uint64_t env_positive_u64(const char* name, uint64_t dflt,
                          const char* what) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return dflt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' || v[0] == '-' || parsed == 0) {
    throw std::invalid_argument(std::string(name) + " must be a " + what +
                                ", got \"" + v + "\"");
  }
  return parsed;
}

/// HLCC_TRACE_ARENA: unset/"1" = on, "0" = off, anything else rejected.
bool env_arena_enabled() {
  const char* v = std::getenv("HLCC_TRACE_ARENA");
  if (v == nullptr || *v == '\0' || std::string_view(v) == "1") {
    return true;
  }
  if (std::string_view(v) == "0") {
    return false;
  }
  throw std::invalid_argument(
      std::string("HLCC_TRACE_ARENA must be \"0\" or \"1\", got \"") + v +
      "\"");
}

constexpr uint64_t kDefaultBudgetBytes = 3ULL << 29; // 1.5 GiB

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

} // namespace

std::shared_ptr<const PackedTrace> PackedTrace::materialize(
    sim::TraceSource& live, uint64_t max_ops) {
  const auto trace = std::make_shared<PackedTrace>();
  PackedTrace& t = *trace;
  const auto reserve = static_cast<std::size_t>(max_ops);
  t.opbits_.reserve(reserve);
  t.src1_.reserve(reserve);
  t.src2_.reserve(reserve);
  t.pc_.reserve(reserve);

  sim::MicroOp block[256];
  uint64_t total = 0;
  while (total < max_ops) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<uint64_t>(std::size(block), max_ops - total));
    const std::size_t got = live.next_block(block, want);
    for (std::size_t k = 0; k < got; ++k) {
      const sim::MicroOp& op = block[k];
      const bool mem = sim::is_mem(op.op);
      const bool branch = op.op == sim::OpClass::branch;
      if ((!mem && op.mem_addr != 0) || (!branch && op.target != 0) ||
          (static_cast<uint8_t>(op.op) & kTakenBit) != 0) {
        return nullptr; // non-conforming stream: stay on live generation
      }
      t.opbits_.push_back(static_cast<uint8_t>(op.op) |
                          (op.taken ? kTakenBit : 0));
      t.src1_.push_back(op.src1_dist);
      t.src2_.push_back(op.src2_dist);
      t.pc_.push_back(op.pc);
      if (mem) {
        t.mem_addr_.push_back(op.mem_addr);
      } else if (branch) {
        t.target_.push_back(op.target);
      }
    }
    total += got;
    if (got < want) {
      break; // end of stream
    }
  }
  t.opbits_.shrink_to_fit();
  t.src1_.shrink_to_fit();
  t.src2_.shrink_to_fit();
  t.pc_.shrink_to_fit();
  t.mem_addr_.shrink_to_fit();
  t.target_.shrink_to_fit();
  return trace;
}

std::size_t PackedTrace::decode(Cursor& c, sim::MicroOp* out,
                                std::size_t n) const {
  const uint64_t avail = ops() - c.op;
  const std::size_t take =
      static_cast<std::size_t>(std::min<uint64_t>(n, avail));
  uint64_t op_i = c.op;
  uint64_t mem_i = c.mem;
  uint64_t br_i = c.branch;
  for (std::size_t k = 0; k < take; ++k, ++op_i) {
    sim::MicroOp& op = out[k];
    op = sim::MicroOp{};
    const uint8_t bits = opbits_[op_i];
    op.op = static_cast<sim::OpClass>(bits & static_cast<uint8_t>(~kTakenBit));
    op.taken = (bits & kTakenBit) != 0;
    op.src1_dist = src1_[op_i];
    op.src2_dist = src2_[op_i];
    op.pc = pc_[op_i];
    if (sim::is_mem(op.op)) {
      op.mem_addr = mem_addr_[mem_i++];
    } else if (op.op == sim::OpClass::branch) {
      op.target = target_[br_i++];
    }
  }
  c.op = op_i;
  c.mem = mem_i;
  c.branch = br_i;
  return take;
}

std::size_t PackedTrace::bytes() const {
  return vec_bytes(opbits_) + vec_bytes(src1_) + vec_bytes(src2_) +
         vec_bytes(pc_) + vec_bytes(mem_addr_) + vec_bytes(target_);
}

TraceArena::TraceArena()
    : budget_(env_positive_u64("HLCC_TRACE_BUDGET", kDefaultBudgetBytes,
                               "positive byte budget")),
      enabled_(env_arena_enabled()) {}

TraceArena& TraceArena::instance() {
  static TraceArena arena;
  return arena;
}

uint64_t TraceArena::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

void TraceArena::set_budget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
  evict_for(0);
}

void TraceArena::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  bytes_ = 0;
}

ArenaStats TraceArena::stats() const {
  ArenaStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.bytes = bytes_;
  for (const auto& [key, slot] : slots_) {
    if (slot->trace) {
      ++s.streams;
    }
  }
  return s;
}

void TraceArena::evict_for(uint64_t need_bytes) {
  while (bytes_ + need_bytes > budget_) {
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      const Slot& s = *it->second;
      // Evictable = resident with no outstanding readers (the slot's
      // shared_ptr is the only reference).
      if (s.trace && s.trace.use_count() == 1 &&
          (victim == slots_.end() ||
           s.last_use < victim->second->last_use)) {
        victim = it;
      }
    }
    if (victim == slots_.end()) {
      return; // everything resident is in use; over-budget admission fails
    }
    bytes_ -= victim->second->trace->bytes();
    slots_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const PackedTrace> TraceArena::acquire(
    const std::string& key, uint64_t instructions, const LiveFactory& live) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return nullptr; // disabled is not a fallback: nothing was attempted
  }
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Upfront gate: a stream whose worst-case encoding alone exceeds the
    // budget is never worth building (it could not be admitted).
    if (instructions > budget_ / PackedTrace::kMaxBytesPerOp) {
      fallbacks_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    std::shared_ptr<Slot>& entry = slots_[key];
    if (!entry) {
      entry = std::make_shared<Slot>();
    }
    slot = entry;
    slot->last_use = ++tick_;
  }

  // Materialization runs outside the arena lock, under the slot's
  // once_flag: threads needing this stream block here instead of
  // duplicating the build; other streams proceed in parallel.
  std::shared_ptr<const PackedTrace> built;
  std::call_once(slot->once, [&] {
    const std::unique_ptr<sim::TraceSource> src = live();
    built = PackedTrace::materialize(*src, instructions);
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (!built) {
      slot->failed = true; // non-conforming encoding: permanent for key
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t need = built->bytes();
    evict_for(need);
    if (bytes_ + need <= budget_) {
      slot->trace = built;
      bytes_ += need;
    } else {
      // Cannot hold it: the builder keeps its private copy (correct,
      // just uncached) and the slot is dropped so a later acquire may
      // retry once memory pressure eases.
      slot->failed = true;
      const auto it = slots_.find(key);
      if (it != slots_.end() && it->second == slot) {
        slots_.erase(it);
      }
    }
  });
  if (built) {
    return built; // the builder, admitted or not
  }
  if (!slot->failed) {
    std::lock_guard<std::mutex> lock(mu_);
    if (slot->trace) {
      slot->last_use = ++tick_;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return slot->trace;
    }
  }
  // Build refused, or the stream was evicted before this reader attached.
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

std::unique_ptr<sim::TraceSource> TraceArena::open(const std::string& key,
                                                   uint64_t instructions,
                                                   const LiveFactory& live) {
  std::shared_ptr<const PackedTrace> trace = acquire(key, instructions, live);
  if (!trace) {
    return nullptr;
  }
  return std::make_unique<PackedTrace::Reader>(std::move(trace));
}

bool TraceArena::prefetch(const std::string& key, uint64_t instructions,
                          const LiveFactory& live) {
  return acquire(key, instructions, live) != nullptr;
}

} // namespace workload
