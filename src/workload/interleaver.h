// Deterministic multi-programmed trace interleaver (sim::TraceSource).
//
// Merges N per-benchmark Generator streams onto one core under a
// round-robin context-switch schedule: slot 0 runs for `quantum`
// committed instructions, then slot 1, and so on, wrapping around.  Each
// slot owns an independent, seeded Generator, so the merged stream is a
// pure function of (streams, quantum) — bit-identical across runs and
// thread counts, which is what the multi-tenant differential tests pin.
//
// Every emitted op is tagged with its slot's tenant id in the high
// address bits (sim/tenant.h): pc, branch target, and memory address all
// carry the tag, giving each tenant a disjoint address space.  Tenant 0's
// tag is zero, so a single-stream Interleaver forwards its Generator's
// ops unmodified and an N=1 run is bit-identical to the plain
// single-stream path.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/tenant.h"
#include "workload/generator.h"

namespace workload {

/// One tenant's stream: which benchmark it runs, its private generator
/// seed, and the address-space tag its ops carry.
struct TenantStream {
  BenchmarkProfile profile;
  uint64_t seed = 1;
  unsigned tenant = 0; ///< address tag and per-tenant stat index
};

class Interleaver final : public sim::TraceSource {
public:
  /// @throws std::invalid_argument on an empty stream list, a zero
  /// quantum, a tenant tag >= sim::kMaxTenants, or a duplicate tag
  /// (address spaces must be disjoint).
  Interleaver(const std::vector<TenantStream>& streams, uint64_t quantum);

  bool next(sim::MicroOp& op) override;
  /// Native batched pull: fills in chunks capped at the active slot's
  /// quantum remainder, so context switches land on exactly the op
  /// indices the per-op path produces.
  std::size_t next_block(sim::MicroOp* out, std::size_t n) override;

  std::size_t streams() const { return slots_.size(); }
  uint64_t quantum() const { return quantum_; }
  /// Context switches performed so far (always 0 with one stream).
  uint64_t switches() const { return switches_; }

private:
  struct Slot {
    Generator gen;
    uint64_t tag_bits;
  };

  std::vector<Slot> slots_;
  uint64_t quantum_;
  std::size_t active_ = 0;
  uint64_t emitted_in_quantum_ = 0;
  uint64_t switches_ = 0;
};

} // namespace workload
