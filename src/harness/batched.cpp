#include "harness/batched.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "harness/experiment_detail.h"
#include "harness/metrics.h"
#include "sim/lockstep.h"

namespace harness {
namespace {

/// One lane's private memory system.  The CacheLevel and ControlledCache
/// hold pointers into the activities vector, so LaneState is built after
/// that vector's size is final.
struct LaneState {
  std::unique_ptr<sim::MemoryBackend> mem;
  std::unique_ptr<sim::CacheLevel> l2;
  std::unique_ptr<leakctl::ControlledCache> dport;
  wattch::Activity* activity = nullptr;
};

/// The Io policy run_lockstep fans accesses through (contract in
/// sim/lockstep.h).  Owns the one shared L1I: instruction fetch state
/// depends only on the pc stream (identical across lanes), so lane 0's
/// tag lookup decides hit/miss for everyone; each missing lane then
/// fills from its *own* L2 (whose contents differ — the lanes' D-side
/// miss streams diverge).  The per-lane l1_reads the scalar InstrPort
/// would count are accumulated once here and flushed to every lane's
/// activity at the end of the run — the total is stream-determined and
/// equal across lanes.
class BatchedIo {
public:
  BatchedIo(const sim::CacheConfig& l1i_cfg, std::vector<LaneState>& lanes)
      : l1i_(l1i_cfg), l1i_hit_latency_(l1i_cfg.hit_latency), lanes_(lanes) {}

  unsigned ifetch(std::size_t lane, uint64_t pc, uint64_t fetch_cycle) {
    if (lane == 0) {
      ++ifetches_;
      ifetch_hit_ = l1i_.access(pc, /*is_write=*/false, fetch_cycle).hit;
    }
    if (ifetch_hit_) {
      return l1i_hit_latency_;
    }
    return l1i_hit_latency_ +
           lanes_[lane].l2->access(pc, /*is_store=*/false, fetch_cycle);
  }

  unsigned dmem(std::size_t lane, uint64_t addr, bool is_store,
                uint64_t cycle) {
    if (lane == 0) {
      // All lanes share the Table 2 L1D geometry, so one decomposition
      // serves the whole fan-out (lanes are visited in ascending order,
      // at most one memory op per instruction).
      decomp_ = lanes_[0].dport->cache().decompose(addr);
    }
    return lanes_[lane].dport->access_decomposed(addr, decomp_, is_store,
                                                 cycle);
  }

  wattch::Activity* activity(std::size_t lane) {
    return lanes_[lane].activity;
  }

  uint64_t ifetches() const { return ifetches_; }

private:
  sim::Cache l1i_;
  unsigned l1i_hit_latency_;
  std::vector<LaneState>& lanes_;
  bool ifetch_hit_ = false;
  sim::Cache::Decomposed decomp_{};
  uint64_t ifetches_ = 0;
};

} // namespace

bool batchable(const ExperimentConfig& cfg) {
  return !cfg.faults.enabled &&
         cfg.adaptive == ExperimentConfig::AdaptiveScheme::none &&
         cfg.legacy_shape() && !cfg.tenants.enabled();
}

BatchedExperiment::BatchedExperiment(const workload::BenchmarkProfile& profile,
                                     std::vector<ExperimentConfig> cfgs)
    : profile_(profile), cfgs_(std::move(cfgs)) {
  if (cfgs_.empty()) {
    throw std::invalid_argument("BatchedExperiment: empty config list");
  }
  for (std::size_t i = 0; i < cfgs_.size(); ++i) {
    cfgs_[i].validate();
    if (!batchable(cfgs_[i])) {
      throw std::invalid_argument(
          "BatchedExperiment: config " + std::to_string(i) +
          " is not batchable (fault injection, adaptive schemes, and "
          "multi-tenant interleaving run on the scalar path)");
    }
    if (cfgs_[i].seed != cfgs_[0].seed) {
      throw std::invalid_argument(
          "BatchedExperiment: seed mismatch: config " + std::to_string(i) +
          " has seed " + std::to_string(cfgs_[i].seed) + " but config 0 has " +
          std::to_string(cfgs_[0].seed) +
          "; a batch shares one instruction stream");
    }
    if (cfgs_[i].instructions != cfgs_[0].instructions) {
      throw std::invalid_argument(
          "BatchedExperiment: instruction-count mismatch: config " +
          std::to_string(i) + " runs " +
          std::to_string(cfgs_[i].instructions) + " instructions but config "
          "0 runs " + std::to_string(cfgs_[0].instructions) +
          "; a batch shares one instruction stream");
    }
  }
}

std::vector<ExperimentResult> BatchedExperiment::run(
    const sim::CancellationToken* cancel) {
  const std::size_t k = cfgs_.size();
  metrics::ScopedTimer experiment_timer("phase.experiment");

  // Baselines first: memoized per (benchmark, l2_latency, instructions,
  // seed), so lanes sharing an L2 latency share one baseline run.  Each
  // batch member still counts as one experiment.
  std::vector<std::shared_ptr<const detail::BaselineData>> bases(k);
  for (std::size_t i = 0; i < k; ++i) {
    metrics::count("experiments.run");
    bases[i] = detail::baseline_for(profile_, cfgs_[i], cancel);
  }

  // Lane memory systems.  Activities are stable addresses (sized once);
  // each lane's L2 + controlled cache charge it, exactly as a scalar
  // Processor + ControlledCache pair would.
  std::vector<wattch::Activity> activities(k);
  std::vector<sim::ProcessorConfig> pcfgs(k);
  std::vector<leakctl::ControlledCacheConfig> ccfgs(k);
  std::vector<LaneState> lanes(k);
  for (std::size_t i = 0; i < k; ++i) {
    pcfgs[i] = sim::ProcessorConfig::table2(cfgs_[i].l2_latency);
    ccfgs[i] = detail::controlled_config(cfgs_[i], pcfgs[i]);
    lanes[i].activity = &activities[i];
    lanes[i].mem = std::make_unique<sim::MemoryBackend>(
        pcfgs[i].memory_latency, &activities[i]);
    lanes[i].l2 = std::make_unique<sim::CacheLevel>(pcfgs[i].l2, *lanes[i].mem,
                                                    &activities[i]);
    lanes[i].dport = std::make_unique<leakctl::ControlledCache>(
        ccfgs[i], *lanes[i].l2, &activities[i]);
  }

  // The shared front end: table2 varies only the L2 hit latency, so the
  // core and L1I configs agree across lanes by construction.
  BatchedIo io(pcfgs[0].l1i, lanes);
  // The whole batch pulls one stream, built from cfgs_[0]'s seed and
  // instruction count.  The constructor already rejected disagreeing
  // lanes; re-assert here so a config mutated after construction fails
  // loudly instead of silently simulating lane 0's stream for everyone.
  for (std::size_t i = 0; i < k; ++i) {
    if (cfgs_[i].seed != cfgs_[0].seed ||
        cfgs_[i].instructions != cfgs_[0].instructions) {
      throw std::logic_error(
          "BatchedExperiment: lane " + std::to_string(i) +
          " no longer agrees with lane 0 on seed/instructions at run time; "
          "the shared stream would misrepresent it");
    }
  }
  const std::unique_ptr<sim::TraceSource> trace =
      detail::make_trace(profile_, cfgs_[0]);
  std::vector<sim::RunStats> stats;
  {
    metrics::ScopedTimer sim_timer("phase.simulation");
    sim::run_lockstep(pcfgs[0].core, k, io, *trace, cfgs_[0].instructions,
                      cancel, stats);
  }

  std::vector<ExperimentResult> results(k);
  for (std::size_t i = 0; i < k; ++i) {
    activities[i].cycles += stats[i].cycles; // Processor::run does this
    activities[i].l1_reads += io.ifetches(); // scalar InstrPort counting
    lanes[i].dport->finalize(stats[i].cycles);

    ExperimentResult& r = results[i];
    r.benchmark = std::string(profile_.name);
    r.config = cfgs_[i];
    r.base_run = bases[i]->run;
    r.base_l1d_miss_rate = bases[i]->l1d_miss_rate;
    r.tech_run = stats[i];
    r.control = lanes[i].dport->stats();
    detail::finish_energy(r, pcfgs[i], ccfgs[i], *bases[i], activities[i]);
  }
  return results;
}

} // namespace harness
