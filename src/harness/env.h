// Uniformly strict environment-variable parsing.
//
// Every HLCC_* knob used to parse its value with a slightly different
// hand-rolled loop — some rejected trailing garbage, some silently fell
// back to a default (HLCC_INSTRUCTIONS accepted "60000x" as 60000 until
// this helper).  All sites now go through one parser family with one
// contract: the whole string must be the value, junk throws
// std::invalid_argument naming the offending variable, and an unset
// variable returns std::nullopt so the caller's default applies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace harness::env {

/// Strictly-positive integer ("4", not "0", "-3", "5x", "", " 4", or an
/// out-of-range value).  @p name is the environment variable being
/// parsed and appears in the error; @p what describes the expected value
/// ("thread count", "attempt budget", ...).
uint64_t parse_positive_u64(const std::string& name, const std::string& text,
                            const std::string& what);

/// Strictly-positive double, fractional values allowed ("2.5").
double parse_positive_double(const std::string& name, const std::string& text,
                             const std::string& what);

/// getenv + parse_positive_u64; nullopt when @p name is unset.
std::optional<uint64_t> positive_u64(const std::string& name,
                                     const std::string& what);

/// getenv + parse_positive_double; nullopt when @p name is unset.
std::optional<double> positive_double(const std::string& name,
                                      const std::string& what);

/// Boolean flag spelled "0" or "1" only; nullopt when unset.
std::optional<bool> flag01(const std::string& name);

} // namespace harness::env
