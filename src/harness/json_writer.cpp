#include "harness/json_writer.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace harness::json {
namespace {

[[noreturn]] void type_error(const char* want, const Value& v) {
  const char* got = v.is_null()     ? "null"
                    : v.is_bool()   ? "bool"
                    : v.is_number() ? "number"
                    : v.is_string() ? "string"
                    : v.is_array()  ? "array"
                                    : "object";
  throw std::runtime_error(std::string("json: expected ") + want + ", have " +
                           got);
}

/// Largest double magnitude below which every integer is exact.
constexpr double kMaxExactInt = 9007199254740992.0; // 2^53

void write_number(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null"; // NaN/Inf policy: degrade to null (see header)
    return;
  }
  char buf[32];
  if (d == std::floor(d) && std::fabs(d) < kMaxExactInt) {
    const auto [ptr, ec] = std::to_chars(
        buf, buf + sizeof(buf), static_cast<long long>(d));
    os.write(buf, ptr - buf);
    return;
  }
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  os.write(buf, ptr - buf);
}

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
    }
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
    case '{':
      return parse_object();
    case '[':
      return parse_array();
    case '"':
      return Value(parse_string());
    case 't':
      if (consume_literal("true")) {
        return Value(true);
      }
      fail("bad literal");
    case 'f':
      if (consume_literal("false")) {
        return Value(false);
      }
      fail("bad literal");
    case 'n':
      if (consume_literal("null")) {
        return Value(nullptr);
      }
      fail("bad literal");
    default:
      return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': append_unicode_escape(out); break;
      default: fail("unknown escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // Surrogate pair.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("unpaired high surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) {
        fail("bad low surrogate");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("malformed number");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

} // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&v_)) {
    return *b;
  }
  type_error("bool", *this);
}

double Value::as_double() const {
  if (const double* d = std::get_if<double>(&v_)) {
    return *d;
  }
  type_error("number", *this);
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&v_)) {
    return *s;
  }
  type_error("string", *this);
}

const Array& Value::as_array() const {
  if (const Array* a = std::get_if<Array>(&v_)) {
    return *a;
  }
  type_error("array", *this);
}

const Object& Value::as_object() const {
  if (const Object* o = std::get_if<Object>(&v_)) {
    return *o;
  }
  type_error("object", *this);
}

Value& Value::operator[](std::string_view key) {
  if (is_null()) {
    v_ = Object{};
  }
  Object* obj = std::get_if<Object>(&v_);
  if (obj == nullptr) {
    type_error("object", *this);
  }
  for (auto& [k, v] : *obj) {
    if (k == key) {
      return v;
    }
  }
  obj->emplace_back(std::string(key), Value());
  return obj->back().second;
}

const Value& Value::at(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) {
      return v;
    }
  }
  throw std::runtime_error("json: no member named '" + std::string(key) + "'");
}

bool Value::contains(std::string_view key) const {
  if (!is_object()) {
    return false;
  }
  for (const auto& [k, v] : as_object()) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

const Value& Value::at(std::size_t i) const {
  const Array& arr = as_array();
  if (i >= arr.size()) {
    throw std::runtime_error("json: array index " + std::to_string(i) +
                             " out of range (size " +
                             std::to_string(arr.size()) + ")");
  }
  return arr[i];
}

void Value::push_back(Value v) {
  if (is_null()) {
    v_ = Array{};
  }
  Array* arr = std::get_if<Array>(&v_);
  if (arr == nullptr) {
    type_error("array", *this);
  }
  arr->push_back(std::move(v));
}

std::size_t Value::size() const {
  if (const Array* a = std::get_if<Array>(&v_)) {
    return a->size();
  }
  if (const Object* o = std::get_if<Object>(&v_)) {
    return o->size();
  }
  return 0;
}

void escape_string(std::string_view s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\b': out += "\\b"; break;
    case '\f': out += "\\f"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out.push_back(c); // UTF-8 bytes pass through verbatim
      }
    }
  }
  out.push_back('"');
}

void Value::write_impl(std::ostream& os, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent >= 0) {
      os.put('\n');
      for (int i = 0; i < indent * d; ++i) {
        os.put(' ');
      }
    }
  };
  if (is_null()) {
    os << "null";
  } else if (const bool* b = std::get_if<bool>(&v_)) {
    os << (*b ? "true" : "false");
  } else if (const double* d = std::get_if<double>(&v_)) {
    write_number(os, *d);
  } else if (const std::string* s = std::get_if<std::string>(&v_)) {
    std::string esc;
    escape_string(*s, esc);
    os << esc;
  } else if (const Array* arr = std::get_if<Array>(&v_)) {
    if (arr->empty()) {
      os << "[]";
      return;
    }
    os.put('[');
    bool first = true;
    for (const Value& v : *arr) {
      if (!first) {
        os.put(',');
      }
      first = false;
      newline(depth + 1);
      v.write_impl(os, indent, depth + 1);
    }
    newline(depth);
    os.put(']');
  } else {
    const Object& obj = std::get<Object>(v_);
    if (obj.empty()) {
      os << "{}";
      return;
    }
    os.put('{');
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) {
        os.put(',');
      }
      first = false;
      newline(depth + 1);
      std::string esc;
      escape_string(k, esc);
      os << esc << (indent >= 0 ? ": " : ":");
      v.write_impl(os, indent, depth + 1);
    }
    newline(depth);
    os.put('}');
  }
}

void Value::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Value::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

} // namespace harness::json
