// Figure/table renderers: print the paper's rows and series as aligned
// text so each bench binary regenerates one table or figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace harness {

/// One labelled series (e.g. "drowsy", "gated-vss") over the benchmarks.
/// Holds a SuiteResult so renderers use its named accessors instead of
/// re-aggregating raw vectors.
struct Series {
  std::string label;
  SuiteResult results; ///< same benchmark order
};

/// Figure 3/5/7/8/10/12-style: net leakage savings per benchmark + AVG.
void print_savings_figure(std::ostream& os, const std::string& title,
                          const std::vector<Series>& series);

/// Figure 4/6/9/11/13-style: performance loss per benchmark + AVG.
void print_perf_figure(std::ostream& os, const std::string& title,
                       const std::vector<Series>& series);

/// Table 3-style: best decay interval per benchmark per technique.
struct BestIntervalRow {
  std::string benchmark;
  uint64_t drowsy_interval = 0;
  uint64_t gated_interval = 0;
};
void print_best_interval_table(std::ostream& os, const std::string& title,
                               const std::vector<BestIntervalRow>& rows);

/// Reliability columns for fault-injection sweeps: injected flips,
/// detections, corrections, recoveries, corruptions, and net savings per
/// benchmark for each labelled series.
void print_reliability_table(std::ostream& os, const std::string& title,
                             const std::vector<Series>& series);

/// Free-form detail dump of one result (debugging / examples).
void print_result_detail(std::ostream& os, const ExperimentResult& r);

/// Format an interval as the paper does ("1k", "64k").
std::string format_interval(uint64_t cycles);

} // namespace harness
