#include "harness/report_json.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "harness/sweep.h"

#ifndef HLCC_GIT_DESCRIBE
#define HLCC_GIT_DESCRIBE "unknown"
#endif

namespace harness {
namespace {

const char* standby_mode_name(hotleakage::StandbyMode mode) {
  switch (mode) {
  case hotleakage::StandbyMode::active: return "active";
  case hotleakage::StandbyMode::drowsy: return "drowsy";
  case hotleakage::StandbyMode::gated: return "gated";
  case hotleakage::StandbyMode::rbb: return "rbb";
  }
  return "?";
}

const char* policy_name(leakctl::DecayPolicy policy) {
  switch (policy) {
  case leakctl::DecayPolicy::noaccess: return "noaccess";
  case leakctl::DecayPolicy::simple: return "simple";
  case leakctl::DecayPolicy::tenant_color: return "tenant_color";
  }
  return "?";
}

const char* adaptive_name(ExperimentConfig::AdaptiveScheme scheme) {
  switch (scheme) {
  case ExperimentConfig::AdaptiveScheme::none: return "none";
  case ExperimentConfig::AdaptiveScheme::feedback: return "feedback";
  case ExperimentConfig::AdaptiveScheme::amc: return "amc";
  case ExperimentConfig::AdaptiveScheme::per_line: return "per_line";
  }
  return "?";
}

const char* protection_name(faults::Protection p) {
  switch (p) {
  case faults::Protection::none: return "none";
  case faults::Protection::parity: return "parity";
  case faults::Protection::secded: return "secded";
  }
  return "?";
}

json::Value technique_body(const leakctl::TechniqueParams& technique) {
  json::Value tech = json::Value::object();
  tech["name"] = technique.name;
  tech["mode"] = standby_mode_name(technique.mode);
  tech["state_preserving"] = technique.state_preserving;
  tech["decay_tags"] = technique.decay_tags;
  return tech;
}

/// Config serialization *without* the hash field — the form the hash is
/// computed over.
json::Value config_body(const ExperimentConfig& cfg) {
  json::Value v = json::Value::object();
  v["l2_latency"] = cfg.l2_latency;
  v["temperature_c"] = cfg.temperature_c;
  v["vdd"] = cfg.vdd;
  v["technique"] = technique_body(cfg.technique);
  v["policy"] = policy_name(cfg.policy);
  v["decay_interval"] = cfg.decay_interval;
  v["instructions"] = cfg.instructions;
  v["seed"] = cfg.seed;
  v["variation"] = cfg.variation;
  v["adaptive"] = adaptive_name(cfg.adaptive);
  // The *active* adaptive scheme's parameters are part of the cell's
  // identity (bench_ablation_feedback sweeps them); inactive sub-configs
  // cannot affect the result, so they stay out of the canonical form and
  // two configs differing only in dormant knobs hash the same.
  switch (cfg.adaptive) {
  case ExperimentConfig::AdaptiveScheme::none:
    break;
  case ExperimentConfig::AdaptiveScheme::feedback: {
    json::Value fb = json::Value::object();
    fb["window_cycles"] = cfg.feedback.window_cycles;
    fb["target_rate"] = cfg.feedback.target_rate;
    fb["deadband"] = cfg.feedback.deadband;
    fb["min_interval"] = cfg.feedback.min_interval;
    fb["max_interval"] = cfg.feedback.max_interval;
    fb["gain"] = cfg.feedback.gain;
    v["feedback"] = std::move(fb);
    break;
  }
  case ExperimentConfig::AdaptiveScheme::amc: {
    json::Value amc = json::Value::object();
    amc["window_cycles"] = cfg.amc.window_cycles;
    amc["target_ratio"] = cfg.amc.target_ratio;
    amc["band"] = cfg.amc.band;
    amc["min_interval"] = cfg.amc.min_interval;
    amc["max_interval"] = cfg.amc.max_interval;
    v["amc"] = std::move(amc);
    break;
  }
  case ExperimentConfig::AdaptiveScheme::per_line: {
    json::Value pl = json::Value::object();
    pl["min_shift"] = cfg.per_line.min_shift;
    pl["max_shift"] = cfg.per_line.max_shift;
    pl["forget_window_cycles"] = cfg.per_line.forget_window_cycles;
    v["per_line"] = std::move(pl);
    break;
  }
  }
  json::Value faults = json::Value::object();
  faults["enabled"] = cfg.faults.enabled;
  faults["standby_rate_per_bit_cycle"] = cfg.faults.standby_rate_per_bit_cycle;
  faults["active_rate_per_bit_cycle"] = cfg.faults.active_rate_per_bit_cycle;
  faults["protection"] = protection_name(cfg.faults.protection);
  faults["seed"] = cfg.faults.seed;
  v["faults"] = std::move(faults);
  // Multi-tenant runs extend the canonical form with the tenant setup.
  // Single-tenant configs omit the section — and identity tenant_tags are
  // themselves omitted — so every pre-multi-tenant hash is preserved and
  // the two spellings of "no permutation" hash the same.
  if (cfg.tenants.enabled()) {
    json::Value mt = json::Value::object();
    mt["count"] = cfg.tenants.count;
    mt["quantum"] = cfg.tenants.quantum;
    json::Value cob = json::Value::array();
    for (const std::string& b : cfg.tenants.co_benchmarks) {
      cob.push_back(b);
    }
    mt["co_benchmarks"] = std::move(cob);
    bool identity = true;
    for (std::size_t i = 0; i < cfg.tenants.tenant_tags.size(); ++i) {
      identity = identity && cfg.tenants.tenant_tags[i] == i;
    }
    if (!identity) {
      json::Value tags = json::Value::array();
      for (const unsigned t : cfg.tenants.tenant_tags) {
        tags.push_back(t);
      }
      mt["tenant_tags"] = std::move(tags);
    }
    v["tenants"] = std::move(mt);
  }
  // Explicit hierarchies extend the canonical form with the per-level
  // list.  Legacy-shaped configs — including LevelConfig spellings that
  // compare equal to legacy_levels() — omit it, so every pre-hierarchy
  // config hash is preserved.
  if (!cfg.legacy_shape()) {
    json::Value levels = json::Value::array();
    for (const LevelConfig& level : cfg.levels) {
      json::Value lv = json::Value::object();
      lv["name"] = level.name;
      json::Value geom = json::Value::object();
      geom["size_bytes"] = level.geometry.size_bytes;
      geom["assoc"] = level.geometry.assoc;
      geom["line_bytes"] = level.geometry.line_bytes;
      geom["hit_latency"] = level.geometry.hit_latency;
      lv["geometry"] = std::move(geom);
      if (level.control.has_value()) {
        json::Value ctl = json::Value::object();
        ctl["technique"] = technique_body(level.control->technique);
        ctl["policy"] = policy_name(level.control->policy);
        ctl["decay_interval"] = level.control->decay_interval;
        lv["control"] = std::move(ctl);
      }
      levels.push_back(std::move(lv));
    }
    v["levels"] = std::move(levels);
  }
  return v;
}

std::string hex64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

} // namespace

std::string git_describe() { return HLCC_GIT_DESCRIBE; }

uint64_t config_hash(const ExperimentConfig& cfg) {
  const std::string canonical = config_body(cfg).dump();
  uint64_t h = 0xcbf29ce484222325ull; // FNV-1a 64
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

json::Value to_json(const sim::RunStats& run) {
  json::Value v = json::Value::object();
  v["instructions"] = run.instructions;
  v["cycles"] = run.cycles;
  v["loads"] = run.loads;
  v["stores"] = run.stores;
  v["ipc"] = run.ipc();
  v["branches"] = run.branch.branches;
  v["branch_mispredicts"] = run.branch.direction_mispredicts;
  v["btb_misses"] = run.branch.btb_misses;
  return v;
}

sim::RunStats run_stats_from_json(const json::Value& v) {
  sim::RunStats run;
  run.instructions = static_cast<uint64_t>(v.at("instructions").as_double());
  run.cycles = static_cast<uint64_t>(v.at("cycles").as_double());
  run.loads = static_cast<uint64_t>(v.at("loads").as_double());
  run.stores = static_cast<uint64_t>(v.at("stores").as_double());
  run.branch.branches =
      static_cast<unsigned long long>(v.at("branches").as_double());
  run.branch.direction_mispredicts = static_cast<unsigned long long>(
      v.at("branch_mispredicts").as_double());
  run.branch.btb_misses =
      static_cast<unsigned long long>(v.at("btb_misses").as_double());
  return run; // "ipc" is derived, not state
}

json::Value to_json(const leakctl::ControlStats& control) {
  json::Value v = json::Value::object();
  control.for_each_field(
      [&v](const char* name, const unsigned long long& value) {
        v[name] = value;
      });
  v["turnoff_ratio"] = control.turnoff_ratio();
  v["corruptions"] = control.corruptions();
  return v;
}

leakctl::ControlStats control_stats_from_json(const json::Value& v) {
  leakctl::ControlStats control;
  control.for_each_field([&v](const char* name, unsigned long long& value) {
    value = static_cast<unsigned long long>(v.at(name).as_double());
  });
  return control;
}

json::Value to_json(const leakctl::TenantStats& tenant) {
  json::Value v = json::Value::object();
  tenant.for_each_field(
      [&v](const char* name, const unsigned long long& value) {
        v[name] = value;
      });
  return v;
}

std::vector<leakctl::TenantStats> tenant_stats_from_json(
    const json::Value& v) {
  std::vector<leakctl::TenantStats> tenants;
  for (const json::Value& row : v.as_array()) {
    leakctl::TenantStats ts;
    ts.for_each_field([&row](const char* name, unsigned long long& value) {
      value = static_cast<unsigned long long>(row.at(name).as_double());
    });
    tenants.push_back(ts);
  }
  return tenants;
}

json::Value to_json(const leakctl::EnergyBreakdown& energy) {
  json::Value v = json::Value::object();
  v["baseline_leakage_j"] = energy.baseline_leakage_j;
  v["technique_leakage_j"] = energy.technique_leakage_j;
  v["decay_hw_leakage_j"] = energy.decay_hw_leakage_j;
  v["extra_dynamic_j"] = energy.extra_dynamic_j;
  v["protection_leakage_j"] = energy.protection_leakage_j;
  v["protection_dynamic_j"] = energy.protection_dynamic_j;
  v["gross_savings_j"] = energy.gross_savings_j;
  v["net_savings_j"] = energy.net_savings_j;
  v["net_savings_frac"] = energy.net_savings_frac;
  v["perf_loss_frac"] = energy.perf_loss_frac;
  v["turnoff_ratio"] = energy.turnoff_ratio;
  return v;
}

leakctl::EnergyBreakdown energy_from_json(const json::Value& v) {
  leakctl::EnergyBreakdown energy;
  energy.baseline_leakage_j = v.at("baseline_leakage_j").as_double();
  energy.technique_leakage_j = v.at("technique_leakage_j").as_double();
  energy.decay_hw_leakage_j = v.at("decay_hw_leakage_j").as_double();
  energy.extra_dynamic_j = v.at("extra_dynamic_j").as_double();
  energy.protection_leakage_j = v.at("protection_leakage_j").as_double();
  energy.protection_dynamic_j = v.at("protection_dynamic_j").as_double();
  energy.gross_savings_j = v.at("gross_savings_j").as_double();
  energy.net_savings_j = v.at("net_savings_j").as_double();
  energy.net_savings_frac = v.at("net_savings_frac").as_double();
  energy.perf_loss_frac = v.at("perf_loss_frac").as_double();
  energy.turnoff_ratio = v.at("turnoff_ratio").as_double();
  return energy;
}

json::Value to_json(const leakctl::HierarchyEnergy& hierarchy) {
  json::Value v = json::Value::object();
  json::Value levels = json::Value::array();
  for (const leakctl::LevelEnergy& le : hierarchy.levels) {
    json::Value lv = json::Value::object();
    lv["name"] = le.name;
    lv["controlled"] = le.controlled;
    lv["baseline_leakage_j"] = le.baseline_leakage_j;
    lv["technique_leakage_j"] = le.technique_leakage_j;
    lv["baseline_gate_j"] = le.baseline_gate_j;
    lv["technique_gate_j"] = le.technique_gate_j;
    lv["decay_hw_leakage_j"] = le.decay_hw_leakage_j;
    lv["protection_leakage_j"] = le.protection_leakage_j;
    lv["protection_dynamic_j"] = le.protection_dynamic_j;
    lv["net_savings_j"] = le.net_savings_j;
    lv["induced_misses"] = le.induced_misses;
    lv["slow_hits"] = le.slow_hits;
    lv["wakes"] = le.wakes;
    lv["decays"] = le.decays;
    lv["decay_writebacks"] = le.decay_writebacks;
    lv["turnoff_ratio"] = le.turnoff_ratio;
    levels.push_back(std::move(lv));
  }
  v["levels"] = std::move(levels);
  v["extra_dynamic_j"] = hierarchy.extra_dynamic_j;
  v["total_baseline_leakage_j"] = hierarchy.total_baseline_leakage_j;
  v["total_technique_leakage_j"] = hierarchy.total_technique_leakage_j;
  v["total_gate_leakage_j"] = hierarchy.total_gate_leakage_j;
  v["total_net_savings_j"] = hierarchy.total_net_savings_j;
  v["total_net_savings_frac"] = hierarchy.total_net_savings_frac;
  return v;
}

leakctl::HierarchyEnergy hierarchy_from_json(const json::Value& v) {
  leakctl::HierarchyEnergy h;
  for (const json::Value& lv : v.at("levels").as_array()) {
    leakctl::LevelEnergy le;
    le.name = lv.at("name").as_string();
    le.controlled = lv.at("controlled").as_bool();
    le.baseline_leakage_j = lv.at("baseline_leakage_j").as_double();
    le.technique_leakage_j = lv.at("technique_leakage_j").as_double();
    le.baseline_gate_j = lv.at("baseline_gate_j").as_double();
    le.technique_gate_j = lv.at("technique_gate_j").as_double();
    le.decay_hw_leakage_j = lv.at("decay_hw_leakage_j").as_double();
    le.protection_leakage_j = lv.at("protection_leakage_j").as_double();
    le.protection_dynamic_j = lv.at("protection_dynamic_j").as_double();
    le.net_savings_j = lv.at("net_savings_j").as_double();
    le.induced_misses =
        static_cast<unsigned long long>(lv.at("induced_misses").as_double());
    le.slow_hits =
        static_cast<unsigned long long>(lv.at("slow_hits").as_double());
    le.wakes = static_cast<unsigned long long>(lv.at("wakes").as_double());
    le.decays = static_cast<unsigned long long>(lv.at("decays").as_double());
    le.decay_writebacks = static_cast<unsigned long long>(
        lv.at("decay_writebacks").as_double());
    le.turnoff_ratio = lv.at("turnoff_ratio").as_double();
    h.levels.push_back(std::move(le));
  }
  h.extra_dynamic_j = v.at("extra_dynamic_j").as_double();
  h.total_baseline_leakage_j = v.at("total_baseline_leakage_j").as_double();
  h.total_technique_leakage_j = v.at("total_technique_leakage_j").as_double();
  h.total_gate_leakage_j = v.at("total_gate_leakage_j").as_double();
  h.total_net_savings_j = v.at("total_net_savings_j").as_double();
  h.total_net_savings_frac = v.at("total_net_savings_frac").as_double();
  return h;
}

json::Value to_json(const CellInfo& cell) {
  json::Value v = json::Value::object();
  v["status"] = to_string(cell.status);
  v["error_kind"] = to_string(cell.error_kind);
  v["error"] = cell.error;
  v["attempts"] = cell.attempts;
  v["duration_s"] = cell.duration_s;
  v["resumed"] = cell.resumed;
  v["batch"] = cell.batch;
  return v;
}

CellInfo cell_info_from_json(const json::Value& v) {
  CellInfo info;
  info.status = cell_status_from_name(v.at("status").as_string());
  info.error_kind = cell_error_kind_from_name(v.at("error_kind").as_string());
  info.error = v.at("error").as_string();
  info.attempts = static_cast<unsigned>(v.at("attempts").as_double());
  info.duration_s = v.at("duration_s").as_double();
  info.resumed = v.at("resumed").as_bool();
  // Absent in pre-batching journals/reports; default to the scalar path.
  if (v.contains("batch")) {
    info.batch = static_cast<unsigned>(v.at("batch").as_double());
  }
  return info;
}

json::Value to_json(const ExperimentConfig& cfg) {
  json::Value v = config_body(cfg);
  v["hash"] = hex64(config_hash(cfg));
  return v;
}

json::Value to_json(const ExperimentResult& result) {
  json::Value v = json::Value::object();
  v["benchmark"] = result.benchmark;
  v["cell"] = to_json(result.cell);
  v["net_savings_frac"] = result.energy.net_savings_frac;
  v["perf_loss_frac"] = result.energy.perf_loss_frac;
  v["turnoff_ratio"] = result.energy.turnoff_ratio;
  v["base_l1d_miss_rate"] = result.base_l1d_miss_rate;
  v["config"] = to_json(result.config);
  v["energy"] = to_json(result.energy);
  v["hierarchy"] = to_json(result.hierarchy);
  v["base_run"] = to_json(result.base_run);
  v["tech_run"] = to_json(result.tech_run);
  v["control"] = to_json(result.control);
  // Always present since schema 4 (empty array for single-tenant runs),
  // so consumers can distinguish "no tenants" from "old writer".
  json::Value tenants = json::Value::array();
  for (std::size_t i = 0; i < result.tenants.size(); ++i) {
    json::Value ts = to_json(result.tenants[i]);
    ts["tenant"] = i;
    tenants.push_back(std::move(ts));
  }
  v["tenants"] = std::move(tenants);
  return v;
}

namespace {

/// Schema-2 execution rollup: how many cells landed in each status, how
/// many were restored from a journal or needed retries, and whether the
/// suite is complete — the one field a consumer must check before
/// treating a partial (fail_fast=false) sweep as the full grid.
json::Value cells_summary(const std::vector<ExperimentResult>& results) {
  std::size_t ok = 0, failed = 0, timed_out = 0, resumed = 0, retried = 0;
  for (const ExperimentResult& r : results) {
    switch (r.cell.status) {
    case CellStatus::ok: ++ok; break;
    case CellStatus::failed: ++failed; break;
    case CellStatus::timed_out: ++timed_out; break;
    }
    resumed += r.cell.resumed ? 1 : 0;
    retried += r.cell.attempts > 1 ? 1 : 0;
  }
  json::Value v = json::Value::object();
  v["total"] = results.size();
  v["ok"] = ok;
  v["failed"] = failed;
  v["timed_out"] = timed_out;
  v["resumed"] = resumed;
  v["retried"] = retried;
  v["complete"] = ok == results.size();
  return v;
}

} // namespace

json::Value to_json(const SuiteResult& suite) {
  json::Value v = json::Value::object();
  json::Value avg = json::Value::object();
  avg["net_savings_frac"] = suite.mean_net_savings();
  avg["perf_loss_frac"] = suite.mean_slowdown();
  avg["turnoff_ratio"] = suite.mean_turnoff();
  v["averages"] = std::move(avg);
  v["cells"] = cells_summary(suite.results());
  json::Value rows = json::Value::array();
  for (const ExperimentResult& r : suite) {
    rows.push_back(to_json(r));
  }
  v["benchmarks"] = std::move(rows);
  return v;
}

json::Value to_json(const Series& series) {
  json::Value v = to_json(series.results);
  // Label leads; rebuild so it prints first.
  json::Value out = json::Value::object();
  out["label"] = series.label;
  out["averages"] = v.at("averages");
  out["cells"] = v.at("cells");
  out["benchmarks"] = v.at("benchmarks");
  return out;
}

json::Value metrics_json(const metrics::Registry& registry) {
  json::Value v = json::Value::object();
  json::Value counters = json::Value::object();
  for (const auto& [name, value] : registry.counters()) {
    counters[name] = value;
  }
  v["counters"] = std::move(counters);
  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : registry.gauges()) {
    gauges[name] = value;
  }
  v["gauges"] = std::move(gauges);
  json::Value timers = json::Value::object();
  for (const auto& [name, stat] : registry.timers()) {
    json::Value t = json::Value::object();
    t["total_s"] = stat.total_s;
    t["count"] = stat.count;
    timers[name] = std::move(t);
  }
  v["timers"] = std::move(timers);
  return v;
}

json::Value run_metadata() {
  json::Value v = json::Value::object();
  v["generator"] = "hotleakage_cc";
  v["git_describe"] = git_describe();
  unsigned threads = 0;
  try {
    threads = resolve_thread_count(0);
  } catch (const std::invalid_argument&) {
    // A junk HLCC_THREADS fails the sweep itself with a clear error; the
    // metadata block just reports 0 rather than masking that failure.
  }
  v["threads"] = threads;
  v["hardware_concurrency"] = std::thread::hardware_concurrency();
  if (const char* env = std::getenv("HLCC_INSTRUCTIONS")) {
    v["hlcc_instructions_env"] = env;
  } else {
    v["hlcc_instructions_env"] = nullptr;
  }
  return v;
}

json::Value suite_report(const std::string& title,
                         const std::vector<Series>& series) {
  json::Value doc = json::Value::object();
  doc["schema"] = kReportSchemaVersion;
  doc["kind"] = "suite_report";
  doc["title"] = title;
  doc["metadata"] = run_metadata();
  json::Value all = json::Value::array();
  for (const Series& s : series) {
    all.push_back(to_json(s));
  }
  doc["series"] = std::move(all);
  doc["metrics"] = metrics_json();
  return doc;
}

void write_json_file(const std::string& path, const json::Value& doc) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  doc.write(os, /*indent=*/2);
  os << '\n';
  if (!os.flush()) {
    throw std::runtime_error("write to '" + path + "' failed");
  }
}

void write_csv(std::ostream& os, const std::vector<Series>& series) {
  os << "series,benchmark,technique,l2_latency,temperature_c,decay_interval,"
        "config_hash,net_savings_frac,perf_loss_frac,turnoff_ratio,"
        "hits,slow_hits,induced_misses,true_misses,"
        "faults_injected,corruptions,cell_status,cell_attempts\n";
  std::ostringstream row;
  row.precision(17);
  for (const Series& s : series) {
    for (const ExperimentResult& r : s.results) {
      row.str("");
      row << s.label << ',' << r.benchmark << ',' << r.config.technique.name
          << ',' << r.config.l2_latency << ',' << r.config.temperature_c
          << ',' << r.config.decay_interval << ','
          << hex64(config_hash(r.config)) << ',' << r.energy.net_savings_frac
          << ',' << r.energy.perf_loss_frac << ',' << r.energy.turnoff_ratio
          << ',' << r.control.hits << ',' << r.control.slow_hits << ','
          << r.control.induced_misses << ',' << r.control.true_misses << ','
          << r.control.faults_injected << ',' << r.control.corruptions()
          << ',' << to_string(r.cell.status) << ',' << r.cell.attempts
          << '\n';
      os << row.str();
    }
  }
}

void write_csv_file(const std::string& path,
                    const std::vector<Series>& series) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  write_csv(os, series);
  if (!os.flush()) {
    throw std::runtime_error("write to '" + path + "' failed");
  }
}

ReportOptions parse_report_cli(int& argc, char** argv) {
  ReportOptions opts;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string* dest = nullptr;
    std::string_view flag;
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      dest = &opts.json_path;
      flag = "--json";
    } else if (arg == "--csv" || arg.rfind("--csv=", 0) == 0) {
      dest = &opts.csv_path;
      flag = "--csv";
    }
    if (dest == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    if (arg.size() > flag.size()) { // --flag=path form
      *dest = std::string(arg.substr(flag.size() + 1));
    } else if (i + 1 < argc) {
      *dest = argv[++i];
    }
    if (dest->empty()) {
      throw std::invalid_argument(std::string(flag) +
                                  " requires a file path argument");
    }
  }
  argc = out;
  argv[argc] = nullptr;
  if (opts.json_path.empty()) {
    if (const char* env = std::getenv("HLCC_JSON")) {
      opts.json_path = env;
    }
  }
  return opts;
}

void write_reports(const ReportOptions& opts, const std::string& title,
                   const std::vector<Series>& series) {
  if (!opts.json_path.empty()) {
    write_json_file(opts.json_path, suite_report(title, series));
    std::fprintf(stderr, "[report] wrote JSON to %s\n",
                 opts.json_path.c_str());
  }
  if (!opts.csv_path.empty()) {
    write_csv_file(opts.csv_path, series);
    std::fprintf(stderr, "[report] wrote CSV to %s\n", opts.csv_path.c_str());
  }
}

} // namespace harness
