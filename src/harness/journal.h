// Crash-safe checkpoint journal for sweep runs.
//
// A production-scale sweep is hours of work; a crash, OOM kill, or
// pre-empted node must not discard the cells that already finished.  As
// each cell completes, the engine appends one self-contained JSONL
// record — keyed by the cell's identity (config FNV hash + benchmark
// name) and carrying the full serialized result — and fsyncs it, so the
// journal survives SIGKILL at any instant with at most the in-flight
// record torn.  A sweep restarted with the same journal
// (SweepOptions::journal_path or HLCC_RESUME=<path>) loads it, skips
// every cell with an ok record, and reconstructs those cells' results
// bit-identically from the journal (the JSON writer emits
// shortest-round-trip doubles, so deserialization is exact).
//
// Record layout (one compact JSON object per line):
//   {"v": 1, "key": "0x<confighash>:<benchmark>", "status": "ok",
//    "error_kind": "none", "error": "", "attempts": 1,
//    "duration_s": 0.42, "result": {<ExperimentResult row JSON>}}
//
// Load policy: the file is read line by line; a malformed line — the
// torn tail of a killed run, or the newline-terminated scar it leaves
// mid-file once a resume has appended past it — is skipped with a
// warning, never fatal.  Later records win when a key repeats (a failed
// cell re-run on resume appends a fresh record).
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "harness/cell.h"
#include "harness/json_writer.h"

namespace harness {

/// One journal line, decoded.
struct JournalRecord {
  std::string key;
  CellInfo info;      ///< status / error / attempts / duration
  json::Value result; ///< serialized row for ok records; null otherwise
};

/// Thread-safe append-only writer + tolerant reader for the journal.
class SweepJournal {
public:
  /// Open @p path for appending (creating it if needed), terminating a
  /// torn final line first so fresh records never fuse with it; throws
  /// std::runtime_error when the file cannot be opened.
  explicit SweepJournal(std::string path);
  ~SweepJournal();
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Serialize @p rec as one line, append it, fsync.  Thread-safe; a
  /// write failure throws std::runtime_error (the sweep must not keep
  /// pretending its checkpoints are durable).
  void append(const JournalRecord& rec);

  const std::string& path() const { return path_; }

  /// Decode every intact record of @p path (empty map when the file
  /// does not exist).  Never throws on torn or malformed lines — the
  /// intact records are the checkpoint.
  static std::map<std::string, JournalRecord> load(const std::string& path);

private:
  std::string path_;
  int fd_ = -1;
  std::mutex mu_;
};

/// The journal identity of a cell: "0x<16-hex config hash>:<benchmark>".
std::string cell_journal_key(uint64_t config_hash, std::string_view benchmark);

} // namespace harness
