// Per-cell outcome types for the fault-isolated sweep engine.
//
// A production-scale sweep is thousands of independent cells; one bad
// cell must not discard the rest.  Instead of an in-flight rethrow, each
// cell's execution is summarized as a CellInfo (status, structured error
// kind, attempt count, duration) and, for value-returning entry points,
// a CellResult<T> pairing that summary with the cell's value and the
// original exception payload (so fail-fast callers can rethrow it with
// its concrete type intact).
//
// The error taxonomy mirrors how an operator triages a failed grid:
//   config_invalid — the cell could never run (ExperimentConfig /
//                    CacheConfig validation); retrying is pointless.
//   trace_io       — workload trace capture/replay I/O; transient on
//                    shared filesystems, so worth retrying.
//   sim_invariant  — a violated internal invariant (std::logic_error);
//                    deterministic, never retried.
//   timeout        — the cooperative watchdog cancelled the cell
//                    (sim::CancelledError); re-running would hang again.
//   unknown        — anything else; treated as possibly transient.
#pragma once

#include <exception>
#include <string>
#include <string_view>

namespace harness {

enum class CellStatus { ok, failed, timed_out };

enum class CellErrorKind {
  none,
  config_invalid,
  trace_io,
  sim_invariant,
  timeout,
  unknown,
};

/// Stable names used by the JSON report and the checkpoint journal.
const char* to_string(CellStatus status);
const char* to_string(CellErrorKind kind);
/// Inverse mappings (journal load); throw std::invalid_argument on an
/// unrecognized name.
CellStatus cell_status_from_name(std::string_view name);
CellErrorKind cell_error_kind_from_name(std::string_view name);

/// How one cell's execution went — embedded in ExperimentResult (so
/// schema-2 reports carry per-row status) and recorded in the journal.
struct CellInfo {
  CellStatus status = CellStatus::ok;
  CellErrorKind error_kind = CellErrorKind::none;
  std::string error;      ///< final attempt's message; empty when ok
  unsigned attempts = 1;  ///< total tries, including the successful one
  double duration_s = 0.0; ///< wall clock summed over attempts (no backoff)
  bool resumed = false;   ///< satisfied from a checkpoint journal
  /// Lane count of the lockstep batch that produced this cell: 0 for the
  /// scalar path, K >= 2 when the cell rode a K-lane batched trace pass
  /// (harness/batched.h).  Execution metadata only — the payload is
  /// bit-identical either way — and volatile across resumes (a resumed
  /// grid may regroup batches differently).
  unsigned batch = 0;
  bool ok() const { return status == CellStatus::ok; }
};

/// One cell's outcome: summary + value (meaningful when ok()) + the
/// original exception payload (non-null when !ok(), preserving the
/// thrown type for fail-fast rethrow even for non-std::exception
/// payloads).
template <typename T>
struct CellResult {
  CellInfo info;
  T value{};
  std::exception_ptr exception;

  bool ok() const { return info.ok(); }
  CellStatus status() const { return info.status; }
  const std::string& error() const { return info.error; }
};

/// Map a thrown payload onto the taxonomy (none when @p error is null).
CellErrorKind classify_cell_error(const std::exception_ptr& error) noexcept;

/// Human-readable message for a thrown payload: what() for
/// std::exception, a placeholder for anything else.
std::string describe_cell_error(const std::exception_ptr& error);

/// Whether the retry policy applies to a failure of @p kind
/// (trace_io and unknown: possibly transient; the rest: deterministic).
bool cell_error_retryable(CellErrorKind kind);

} // namespace harness
