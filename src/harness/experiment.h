// Experiment driver: one call = one (benchmark x technique x interval x
// L2-latency x temperature) cell of the paper's evaluation.
//
// Every technique run is paired with a baseline run (no leakage control) of
// the *same* instruction stream on the *same* machine configuration; the
// baseline is memoized because it does not depend on the technique,
// interval, or temperature.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_injector.h"
#include "leakctl/adaptive.h"
#include "leakctl/adaptive_modes.h"
#include "leakctl/energy.h"
#include "sim/processor.h"
#include "workload/profile.h"

namespace harness {

struct ExperimentConfig {
  unsigned l2_latency = 11;       ///< paper sweep: 5 / 8 / 11 / 17
  double temperature_c = 110.0;   ///< paper: 85 or 110
  /// Supply voltage; < 0 uses the node nominal (0.9 V at 70 nm).  DVS
  /// studies lower it; the clock scales near-linearly with Vdd.
  double vdd = -1.0;
  leakctl::TechniqueParams technique = leakctl::TechniqueParams::drowsy();
  leakctl::DecayPolicy policy = leakctl::DecayPolicy::noaccess;
  uint64_t decay_interval = 4096; ///< cycles
  uint64_t instructions = 2'000'000;
  uint64_t seed = 1;
  bool variation = true;          ///< inter-die Monte Carlo on
  /// Runtime feedback control of the interval (implies awake tags).
  /// Equivalent to adaptive = AdaptiveScheme::feedback.
  bool adaptive_feedback = false;
  leakctl::FeedbackConfig feedback;

  /// Which runtime adaptive scheme to run, if any (all imply awake tags):
  /// the formal feedback controller [31], Zhou et al.'s adaptive mode
  /// control [33], or Kaxiras et al.'s per-line intervals [19] — the three
  /// methods the paper lists in Sec. 5.4.
  enum class AdaptiveScheme { none, feedback, amc, per_line };
  AdaptiveScheme adaptive = AdaptiveScheme::none;
  leakctl::AmcConfig amc;
  leakctl::PerLineAdaptiveConfig per_line;

  /// Soft-error injection and protection.  The rates here are *raw* (at
  /// the node's nominal supply and 300 K); run_experiment scales them to
  /// the technique's retention voltage and the experiment temperature via
  /// hotleakage::cells::sram_seu_scale before handing them to the cache.
  faults::FaultConfig faults;

  /// Reject nonsense configurations with a std::invalid_argument naming
  /// the offending field.  Called at the top of run_experiment.
  void validate() const;
};

struct ExperimentResult {
  std::string benchmark;
  ExperimentConfig config;
  leakctl::EnergyBreakdown energy;
  sim::RunStats base_run;
  sim::RunStats tech_run;
  leakctl::ControlStats control;
  double base_l1d_miss_rate = 0.0;
};

/// Run one cell.
ExperimentResult run_experiment(const workload::BenchmarkProfile& profile,
                                const ExperimentConfig& cfg);

/// Run the full 11-benchmark suite for one configuration.
std::vector<ExperimentResult> run_suite(const ExperimentConfig& cfg);

/// Sweep decay intervals for one benchmark and return the interval with
/// the highest net savings (the Figs. 12-13 / Table 3 oracle), along with
/// the result at that interval and the whole sweep.
struct IntervalSweepResult {
  uint64_t best_interval = 0;
  ExperimentResult best;
  std::vector<ExperimentResult> sweep; ///< one entry per interval
};
IntervalSweepResult best_interval_sweep(
    const workload::BenchmarkProfile& profile, ExperimentConfig cfg,
    const std::vector<uint64_t>& intervals);

/// The paper's interval grid {1k, 2k, ..., 64k}.
std::vector<uint64_t> paper_interval_grid();

/// Average of net savings / perf loss over a suite (the figures' AVG bar).
struct SuiteAverages {
  double net_savings = 0.0;
  double perf_loss = 0.0;
  double turnoff = 0.0;
};
SuiteAverages averages(const std::vector<ExperimentResult>& results);

/// Clear the memoized baselines (tests use this to bound memory).
void clear_baseline_cache();

} // namespace harness
