// Experiment driver: one call = one (benchmark x technique x interval x
// L2-latency x temperature) cell of the paper's evaluation.
//
// Every technique run is paired with a baseline run (no leakage control) of
// the *same* instruction stream on the *same* machine configuration; the
// baseline is memoized because it does not depend on the technique,
// interval, or temperature.  The memo is mutex-guarded and populated at
// most once per key, so concurrent run_experiment calls (see
// harness/sweep.h) share baselines instead of recomputing them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "faults/fault_injector.h"
#include "harness/cell.h"
#include "leakctl/adaptive.h"
#include "leakctl/adaptive_modes.h"
#include "leakctl/energy.h"
#include "sim/processor.h"
#include "workload/profile.h"

namespace harness {

/// Leakage control carried by one hierarchy level.
struct LevelControl {
  leakctl::TechniqueParams technique = leakctl::TechniqueParams::drowsy();
  leakctl::DecayPolicy policy = leakctl::DecayPolicy::noaccess;
  uint64_t decay_interval = 4096; ///< cycles
  bool operator==(const LevelControl&) const = default;
};

/// One level of the simulated data-side hierarchy: geometry plus optional
/// leakage control.  ExperimentConfig::levels orders these outermost
/// first: index 0 is the L1-D the core talks to, index 1 its backing L2,
/// and so on down to memory.  A level without control is a plain
/// sim::CacheLevel; a level with control is a leakctl::ControlledCache in
/// the matching role.
struct LevelConfig {
  std::string name;    ///< "l1d", "l2", ... — used in validation errors
  sim::CacheConfig geometry;
  std::optional<LevelControl> control;
  bool operator==(const LevelConfig&) const = default;
};

/// Multi-tenant (multi-programmed) trace setup: N seeded benchmark
/// streams interleaved onto the one simulated core by
/// workload::Interleaver under a round-robin context-switch schedule,
/// each stream tagged with a disjoint address-space tenant id
/// (sim/tenant.h).  count == 0 (the default) is single-tenant: no
/// interleaving, no tagging, bit-identical to the pre-multi-tenant run
/// path and config hash.  count == 1 runs the interleaver with one
/// stream — the differential tests pin that this, too, is bit-identical
/// to the plain path.
struct TenantConfig {
  /// Number of tenants sharing the machine (0 = off).
  unsigned count = 0;
  /// Context-switch quantum in committed instructions per turn.
  uint64_t quantum = 50'000;
  /// Benchmarks for tenants 1..count-1 (tenant 0 runs the experiment's
  /// own profile).  Cycled when shorter than count-1; empty means every
  /// tenant runs the same benchmark.  Resolved by workload::find_profile.
  std::vector<std::string> co_benchmarks;
  /// Optional address-tag permutation: tenant_tags[i] is the tag stream
  /// i carries.  Must be a permutation of [0, count); empty means the
  /// identity.  The permutation-invariance differential tests relabel
  /// tenants through this without touching the schedule.
  std::vector<unsigned> tenant_tags;

  bool enabled() const { return count != 0; }
  bool operator==(const TenantConfig&) const = default;
};

struct ExperimentConfig {
  unsigned l2_latency = 11;       ///< paper sweep: 5 / 8 / 11 / 17
  double temperature_c = 110.0;   ///< paper: 85 or 110
  /// Supply voltage; < 0 uses the node nominal (0.9 V at 70 nm).  DVS
  /// studies lower it; the clock scales near-linearly with Vdd.
  double vdd = -1.0;
  leakctl::TechniqueParams technique = leakctl::TechniqueParams::drowsy();
  leakctl::DecayPolicy policy = leakctl::DecayPolicy::noaccess;
  uint64_t decay_interval = 4096; ///< cycles
  uint64_t instructions = 2'000'000;
  uint64_t seed = 1;
  bool variation = true;          ///< inter-die Monte Carlo on

  /// Which runtime adaptive scheme to run, if any (all imply awake tags):
  /// the formal feedback controller [31], Zhou et al.'s adaptive mode
  /// control [33], or Kaxiras et al.'s per-line intervals [19] — the three
  /// methods the paper lists in Sec. 5.4.  This field is the single
  /// spelling; the legacy `adaptive_feedback` bool is retired.
  enum class AdaptiveScheme { none, feedback, amc, per_line };
  AdaptiveScheme adaptive = AdaptiveScheme::none;

  leakctl::FeedbackConfig feedback;
  leakctl::AmcConfig amc;
  leakctl::PerLineAdaptiveConfig per_line;

  /// Soft-error injection and protection.  The rates here are *raw* (at
  /// the node's nominal supply and 300 K); run_experiment scales them to
  /// the technique's retention voltage and the experiment temperature via
  /// hotleakage::cells::sram_seu_scale before handing them to the cache.
  /// With an explicit `levels` list the config applies to every
  /// controlled level, scaled by that level's own standby mode.
  faults::FaultConfig faults;

  /// Multi-tenant trace interleaving (off by default).  When enabled the
  /// trace comes from workload::Interleaver and every controlled level is
  /// told the tenant count so it keeps per-tenant fairness stats
  /// (ExperimentResult::tenants).  DecayPolicy::tenant_color on a shared
  /// level requires this.  Multi-tenant cells are excluded from batched
  /// execution (harness::batchable) — the tenant decode and coloring
  /// remap need original addresses.
  TenantConfig tenants;

  /// Explicit per-level hierarchy, outermost first.  Empty means "legacy
  /// shape": the flat fields above describe the paper's machine — a
  /// controlled L1-D over a plain Table 2 L2 — exactly as before this API
  /// existed.  legacy_levels() is that mapping made explicit, and a
  /// `levels` list equal to it is *still* legacy-shaped: same run path,
  /// same config hash, bit-identical results (tests/test_level_config).
  /// Any other list takes the generalized hierarchy path, where each
  /// controlled level carries its own technique/policy/interval and
  /// per-level energy lands in ExperimentResult::hierarchy.
  std::vector<LevelConfig> levels;

  /// The flat L1-only fields rendered as the two-level list they imply.
  std::vector<LevelConfig> legacy_levels() const;
  /// The canonical level list: `levels` when explicit, legacy_levels()
  /// otherwise.
  std::vector<LevelConfig> resolved_levels() const;
  /// True when this config takes the original L1-only code path (and
  /// keeps the original config hash): levels is empty or merely restates
  /// the flat fields.
  bool legacy_shape() const;
  /// Set the outermost level's decay interval in whichever shape the
  /// config is in; interval sweeps mutate configs through this so they
  /// work on legacy and explicit-levels configs alike.
  void set_l1_decay_interval(uint64_t interval);

  /// Reject nonsense configurations with a std::invalid_argument naming
  /// the offending field.  Called at the top of run_experiment.
  void validate() const;

  class Builder;
  /// Chainable construction:
  ///   auto cfg = ExperimentConfig::make()
  ///                  .l2_latency(8).temperature(85)
  ///                  .technique(leakctl::TechniqueParams::gated_vss())
  ///                  .build();
  /// build() (and the implicit conversion) validate the result, so a
  /// nonsense chain fails at construction rather than mid-sweep.  The
  /// plain struct stays fully usable for existing code.
  static Builder make();
};

class ExperimentConfig::Builder {
public:
  Builder& l2_latency(unsigned cycles) {
    cfg_.l2_latency = cycles;
    return *this;
  }
  Builder& temperature(double celsius) {
    cfg_.temperature_c = celsius;
    return *this;
  }
  Builder& vdd(double volts) {
    cfg_.vdd = volts;
    return *this;
  }
  Builder& technique(leakctl::TechniqueParams t) {
    cfg_.technique = t;
    return *this;
  }
  Builder& policy(leakctl::DecayPolicy p) {
    cfg_.policy = p;
    return *this;
  }
  Builder& decay_interval(uint64_t cycles) {
    cfg_.decay_interval = cycles;
    return *this;
  }
  Builder& instructions(uint64_t count) {
    cfg_.instructions = count;
    return *this;
  }
  Builder& seed(uint64_t s) {
    cfg_.seed = s;
    return *this;
  }
  Builder& variation(bool enabled) {
    cfg_.variation = enabled;
    return *this;
  }
  Builder& adaptive(AdaptiveScheme scheme) {
    cfg_.adaptive = scheme;
    return *this;
  }
  /// Append one hierarchy level (outermost first).  Level 0's control,
  /// when present, is mirrored into the flat technique/policy/interval
  /// fields, and level 1's hit latency into l2_latency — so a two-level
  /// list that restates the legacy machine stays legacy-shaped (identical
  /// config hash, bit-identical results).  Call after any flat setters
  /// you want mirrored over.
  Builder& level(LevelConfig lc) {
    cfg_.levels.push_back(std::move(lc));
    sync_levels();
    return *this;
  }
  /// Replace the whole level list (same mirroring as level()).
  Builder& levels(std::vector<LevelConfig> ls) {
    cfg_.levels = std::move(ls);
    sync_levels();
    return *this;
  }
  /// Configure and enable the feedback controller in one step.
  Builder& feedback(leakctl::FeedbackConfig f) {
    cfg_.feedback = f;
    cfg_.adaptive = AdaptiveScheme::feedback;
    return *this;
  }
  Builder& amc(leakctl::AmcConfig a) {
    cfg_.amc = a;
    cfg_.adaptive = AdaptiveScheme::amc;
    return *this;
  }
  Builder& per_line(leakctl::PerLineAdaptiveConfig p) {
    cfg_.per_line = p;
    cfg_.adaptive = AdaptiveScheme::per_line;
    return *this;
  }
  Builder& faults(faults::FaultConfig f) {
    cfg_.faults = f;
    return *this;
  }
  Builder& tenants(TenantConfig t) {
    cfg_.tenants = std::move(t);
    return *this;
  }

  /// Validate and return the finished config.
  ExperimentConfig build() const {
    cfg_.validate();
    return cfg_;
  }
  operator ExperimentConfig() const { return build(); } // NOLINT(google-explicit-constructor)

private:
  void sync_levels() {
    if (cfg_.levels.empty()) {
      return;
    }
    if (cfg_.levels[0].control) {
      cfg_.technique = cfg_.levels[0].control->technique;
      cfg_.policy = cfg_.levels[0].control->policy;
      cfg_.decay_interval = cfg_.levels[0].control->decay_interval;
    }
    if (cfg_.levels.size() > 1) {
      cfg_.l2_latency = cfg_.levels[1].geometry.hit_latency;
    }
  }

  ExperimentConfig cfg_;
};

inline ExperimentConfig::Builder ExperimentConfig::make() { return {}; }

struct ExperimentResult {
  std::string benchmark;
  ExperimentConfig config;
  /// The flat, L1-centric view the paper's figures use (level 0 only).
  leakctl::EnergyBreakdown energy;
  /// Per-level total-leakage rollup (schema-3 "hierarchy" section).
  /// Populated for every shape: legacy configs get the controlled-L1 +
  /// plain-L2 breakdown whose level-0 numbers match `energy` exactly.
  leakctl::HierarchyEnergy hierarchy;
  sim::RunStats base_run;
  sim::RunStats tech_run;
  /// Level-0 control stats (zero when the outermost level is a plain
  /// cache in an explicit-levels config); deeper levels' stats are in
  /// `hierarchy`.
  leakctl::ControlStats control;
  /// Per-tenant fairness stats from the deepest (shared) controlled
  /// level, indexed by tenant id; empty when config.tenants is off or no
  /// level is controlled.  Schema-4 report section "tenants".
  std::vector<leakctl::TenantStats> tenants;
  double base_l1d_miss_rate = 0.0;
  /// How this cell executed under the sweep engine (status, attempts,
  /// duration, resumed-from-journal).  Defaults to a clean first-try ok
  /// for results produced outside the engine, so direct run_experiment
  /// callers are unaffected.
  CellInfo cell;
};

/// Run one cell.  @p cancel, when non-null, is polled at epoch
/// boundaries by both the baseline and technique simulations; the sweep
/// engine's watchdog uses it to time out hung cells cooperatively.
ExperimentResult run_experiment(const workload::BenchmarkProfile& profile,
                                const ExperimentConfig& cfg,
                                const sim::CancellationToken* cancel);
ExperimentResult run_experiment(const workload::BenchmarkProfile& profile,
                                const ExperimentConfig& cfg);

/// Average of net savings / perf loss over a suite (the figures' AVG bar).
struct SuiteAverages {
  double net_savings = 0.0;
  double perf_loss = 0.0;
  double turnoff = 0.0;
};
SuiteAverages averages(const std::vector<ExperimentResult>& results);

/// A whole-suite run with named accessors, so callers stop re-aggregating
/// raw result vectors by hand.  Behaves as a container of
/// ExperimentResult (indexing, iteration, push_back) for compatibility
/// with figure-rendering code that walks rows.
class SuiteResult {
public:
  SuiteResult() = default;
  explicit SuiteResult(std::vector<ExperimentResult> results)
      : results_(std::move(results)) {}

  // --- container surface (benchmark order) ---
  std::size_t size() const { return results_.size(); }
  bool empty() const { return results_.empty(); }
  const ExperimentResult& operator[](std::size_t i) const {
    return results_[i];
  }
  ExperimentResult& operator[](std::size_t i) { return results_[i]; }
  auto begin() const { return results_.begin(); }
  auto end() const { return results_.end(); }
  auto begin() { return results_.begin(); }
  auto end() { return results_.end(); }
  const ExperimentResult& front() const { return results_.front(); }
  const ExperimentResult& back() const { return results_.back(); }
  void push_back(ExperimentResult r) { results_.push_back(std::move(r)); }
  const std::vector<ExperimentResult>& results() const { return results_; }

  // --- named accessors ---
  /// Per-benchmark lookup; nullptr when the suite has no such benchmark.
  const ExperimentResult* find(std::string_view benchmark) const;
  /// Per-benchmark lookup; throws std::out_of_range naming the benchmark.
  const ExperimentResult& at(std::string_view benchmark) const;
  /// Mean net leakage savings fraction (the figures' AVG bar).
  double mean_net_savings() const;
  /// Mean performance loss fraction (a.k.a. slowdown).
  double mean_slowdown() const;
  /// Mean standby-residency (turnoff) ratio.
  double mean_turnoff() const;
  SuiteAverages averages() const;

private:
  std::vector<ExperimentResult> results_;
};

SuiteAverages averages(const SuiteResult& suite);

/// Run the full 11-benchmark suite for one configuration on the sweep
/// engine (quiet; see harness/sweep.h for an overload with progress and
/// thread-count options).
SuiteResult run_suite(const ExperimentConfig& cfg);

/// Sweep decay intervals for one benchmark and return the interval with
/// the highest net savings (the Figs. 12-13 / Table 3 oracle), along with
/// the result at that interval and the whole sweep.  Engine-backed: the
/// intervals run concurrently, results stay in grid order.
struct IntervalSweepResult {
  uint64_t best_interval = 0;
  ExperimentResult best;
  std::vector<ExperimentResult> sweep; ///< one entry per interval
};
IntervalSweepResult best_interval_sweep(
    const workload::BenchmarkProfile& profile, ExperimentConfig cfg,
    const std::vector<uint64_t>& intervals);

/// The paper's interval grid {1k, 2k, ..., 64k}.
std::vector<uint64_t> paper_interval_grid();

/// Clear the memoized baselines (tests use this to bound memory).
void clear_baseline_cache();

/// Number of distinct baseline keys currently memoized (tests assert the
/// once-per-key guarantee through this).
std::size_t baseline_cache_size();

} // namespace harness
