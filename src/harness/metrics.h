// Process-wide observability registry: counters, gauges, and accumulated
// phase timers, all thread-safe, feeding the JSON result export.
//
// The harness instruments itself through this registry — run_experiment
// times its simulation / leakage-model phases, the baseline memo counts
// hits and misses, and the sweep engine reports cells/sec, queue depth,
// and worker utilization.  Bench binaries snapshot the registry into
// their --json reports (see harness/report_json.h).
//
// Counters and timers accumulate; gauges hold the last value set.  All
// operations take one mutex — the instrumented phases are milliseconds to
// seconds long, so contention is negligible next to the work being timed.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace harness::metrics {

/// Accumulated wall-clock for one named phase.
struct TimerStat {
  double total_s = 0.0;
  uint64_t count = 0; ///< completed spans
};

class Registry {
public:
  /// The process-wide registry every instrumented site reports to.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void count(std::string_view name, uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  void record_time(std::string_view name, double seconds);

  /// Point lookups (0 / empty TimerStat when the name is absent).
  uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  TimerStat timer(std::string_view name) const;

  /// Snapshots (sorted by name — JSON reports are diffable).
  std::map<std::string, uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, TimerStat> timers() const;

  /// Drop everything (tests; also the start of a fresh report window).
  void reset();

private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, TimerStat, std::less<>> timers_;
};

/// Convenience forwarding to Registry::global().
void count(std::string_view name, uint64_t delta = 1);
void set_gauge(std::string_view name, double value);
void record_time(std::string_view name, double seconds);

/// RAII phase timer: records the elapsed wall-clock under @p name when it
/// leaves scope (or at stop(), whichever comes first).
///
///   { metrics::ScopedTimer t("phase.simulation"); proc.run(...); }
class ScopedTimer {
public:
  explicit ScopedTimer(std::string name, Registry* registry = nullptr)
      : name_(std::move(name)),
        registry_(registry != nullptr ? registry : &Registry::global()),
        start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Record now instead of at scope exit; idempotent.
  void stop() {
    if (stopped_) {
      return;
    }
    stopped_ = true;
    registry_->record_time(name_, elapsed_s());
  }

  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

private:
  std::string name_;
  Registry* registry_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

} // namespace harness::metrics
