// Shared internals of the scalar and batched experiment executors.
//
// run_experiment (experiment.cpp) and BatchedExperiment (batched.cpp)
// must produce bit-identical ExperimentResults for the same cell, so the
// pieces that define a cell's semantics — the memoized baseline, the
// ControlledCacheConfig derivation (fault-rate scaling at the operating
// point, the awake-tags rule for adaptive schemes), and the energy-model
// tail — live here as one source of truth instead of being duplicated.
// This header is harness-internal; nothing outside src/harness includes
// it.
#pragma once

#include <memory>
#include <vector>

#include "harness/experiment.h"
#include "leakctl/controlled_cache.h"
#include "leakctl/energy.h"

namespace harness::detail {

/// One memoized baseline: the uncontrolled run of (benchmark,
/// l2_latency, instructions, seed).
struct BaselineData {
  sim::RunStats run;
  wattch::Activity activity;
  double l1d_miss_rate = 0.0;
};

/// The once-per-key baseline memo (mutex + call_once; see
/// experiment.cpp).  The returned pointer keeps the slot alive across
/// clear_baseline_cache().
std::shared_ptr<const BaselineData> baseline_for(
    const workload::BenchmarkProfile& profile, const ExperimentConfig& cfg,
    const sim::CancellationToken* cancel);

/// The trace-arena sharing key: cells whose instruction streams are
/// bit-identical — same profile contents, seed, instruction count, and
/// tenant setup, i.e. exactly the inputs make_trace_live consumes — map
/// to the same key and share one materialized stream.
std::string stream_key(const workload::BenchmarkProfile& profile,
                       const ExperimentConfig& cfg);

/// Build the run's live trace source: the plain seeded Generator when
/// single-tenant, the workload::Interleaver otherwise.
std::unique_ptr<sim::TraceSource> make_trace_live(
    const workload::BenchmarkProfile& profile, const ExperimentConfig& cfg);

/// The trace every simulation site (baseline and technique, scalar and
/// batched, legacy and hierarchy shape) pulls from: an arena replay of
/// the materialized stream when resident, the live source otherwise —
/// bit-identical either way, so paired runs always see the same stream.
std::unique_ptr<sim::TraceSource> make_trace(
    const workload::BenchmarkProfile& profile, const ExperimentConfig& cfg);

/// The ControlledCacheConfig one controlled hierarchy level instantiates:
/// that level's geometry/technique/policy/interval, the role selecting
/// which Activity counters it charges, fault rates scaled to the operating
/// point (per the level's own standby mode), and tags forced awake when an
/// adaptive scheme is active (paper Sec. 5.4).
leakctl::ControlledCacheConfig level_controlled_config(
    const ExperimentConfig& cfg, const LevelConfig& level,
    leakctl::LevelRole role);

/// The legacy-shape specialization: Table 2 L1D geometry with the flat
/// technique/policy/interval fields, value-identical to what it produced
/// before the LevelConfig API existed (bit-identity depends on it).
leakctl::ControlledCacheConfig controlled_config(
    const ExperimentConfig& cfg, const sim::ProcessorConfig& pcfg);

/// Energy-model tail for legacy-shaped cells: fills result.energy from the
/// already-populated base_run/tech_run/control of @p result plus the
/// activity pair, and result.hierarchy with the matching two-level rollup.
/// result.config must be the cell's config (operating point, variation).
void finish_energy(ExperimentResult& result, const sim::ProcessorConfig& pcfg,
                   const leakctl::ControlledCacheConfig& ccfg,
                   const BaselineData& base,
                   const wattch::Activity& tech_activity);

/// Energy-model tail for explicit-hierarchy cells: @p inputs describe each
/// level (outermost first, control stats wired in for controlled levels).
/// Fills result.hierarchy and maps level 0 into the flat result.energy.
void finish_energy_levels(ExperimentResult& result,
                          const sim::ProcessorConfig& pcfg,
                          const std::vector<leakctl::LevelInput>& inputs,
                          const BaselineData& base,
                          const wattch::Activity& tech_activity);

} // namespace harness::detail
