// Shared internals of the scalar and batched experiment executors.
//
// run_experiment (experiment.cpp) and BatchedExperiment (batched.cpp)
// must produce bit-identical ExperimentResults for the same cell, so the
// pieces that define a cell's semantics — the memoized baseline, the
// ControlledCacheConfig derivation (fault-rate scaling at the operating
// point, the awake-tags rule for adaptive schemes), and the energy-model
// tail — live here as one source of truth instead of being duplicated.
// This header is harness-internal; nothing outside src/harness includes
// it.
#pragma once

#include <memory>

#include "harness/experiment.h"
#include "leakctl/controlled_cache.h"

namespace harness::detail {

/// One memoized baseline: the uncontrolled run of (benchmark,
/// l2_latency, instructions, seed).
struct BaselineData {
  sim::RunStats run;
  wattch::Activity activity;
  double l1d_miss_rate = 0.0;
};

/// The once-per-key baseline memo (mutex + call_once; see
/// experiment.cpp).  The returned pointer keeps the slot alive across
/// clear_baseline_cache().
std::shared_ptr<const BaselineData> baseline_for(
    const workload::BenchmarkProfile& profile, const ExperimentConfig& cfg,
    const sim::CancellationToken* cancel);

/// The ControlledCacheConfig a cell instantiates: Table 2 L1D geometry,
/// the technique/policy/interval from @p cfg, fault rates scaled to the
/// operating point, and tags forced awake when an adaptive scheme is
/// active (paper Sec. 5.4).
leakctl::ControlledCacheConfig controlled_config(
    const ExperimentConfig& cfg, const sim::ProcessorConfig& pcfg);

/// Energy-model tail: fills result.energy from the already-populated
/// base_run/tech_run/control of @p result plus the activity pair.
/// result.config must be the cell's config (operating point, variation).
void finish_energy(ExperimentResult& result, const sim::ProcessorConfig& pcfg,
                   const leakctl::ControlledCacheConfig& ccfg,
                   const BaselineData& base,
                   const wattch::Activity& tech_activity);

} // namespace harness::detail
