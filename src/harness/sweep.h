// Parallel sweep engine for the experiment harness.
//
// The paper's evaluation is a large Cartesian grid — benchmarks x
// {drowsy, gated-Vss} x decay intervals x L2 latencies x temperatures —
// and every cell is an independent pair of simulations.  SweepRunner fans
// the cells out across a thread pool and hands the results back in
// *submission order*, so a parallel sweep is a drop-in replacement for
// the serial loop it replaces: same results, same order, byte for byte.
//
// Determinism contract: run_experiment is a pure function of its
// (profile, config) cell — every RNG is locally seeded, and the only
// cross-cell state, the memoized baseline cache, is populated exactly
// once per key under a mutex (see experiment.cpp).  The engine therefore
// guarantees results identical to the serial path at any thread count.
//
// Thread count: SweepOptions::threads if nonzero, else the HLCC_THREADS
// environment variable, else std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace harness {

/// Execution knobs shared by the engine's entry points.
struct SweepOptions {
  /// Worker threads; 0 defers to HLCC_THREADS, then hardware_concurrency.
  unsigned threads = 0;
  /// Progress/throughput reporter on stderr: live cells-completed /
  /// cells-per-second / ETA line while a terminal is attached, plus one
  /// final throughput summary.  HLCC_PROGRESS=0 force-disables, =1
  /// force-enables the live line even without a terminal.
  bool progress = false;
  /// Tag for the progress lines (e.g. the figure being regenerated).
  std::string label = "sweep";
};

/// The thread count an options struct resolves to (>= 1).
unsigned resolve_thread_count(unsigned requested);

/// Run body(0..count-1) across the pool.  Each index runs exactly once;
/// the call returns when all have finished.  Exceptions thrown by the
/// body are captured and the one from the lowest index is rethrown after
/// the pool drains (matching what the serial loop would have thrown
/// first).  With a resolved thread count of 1 the bodies run inline on
/// the calling thread.
void parallel_for_indexed(std::size_t count,
                          const std::function<void(std::size_t)>& body,
                          const SweepOptions& opts = {});

/// Deterministic parallel map: out[i] = fn(items[i]), in order.  The
/// generic escape hatch for sweeps whose cells are not run_experiment
/// calls (I-cache / L2 / predictor-decay studies).  Accepts any
/// random-access container (vector, array, ...).
template <typename Container, typename Fn>
auto sweep_map(const Container& items, Fn&& fn, const SweepOptions& opts = {})
    -> std::vector<decltype(fn(*std::begin(items)))> {
  std::vector<decltype(fn(*std::begin(items)))> out(std::size(items));
  parallel_for_indexed(
      std::size(items),
      [&](std::size_t i) {
        out[i] = fn(*(std::begin(items) + static_cast<std::ptrdiff_t>(i)));
      },
      opts);
  return out;
}

/// One cell of a sweep: a benchmark plus a full experiment configuration.
struct SweepCell {
  workload::BenchmarkProfile profile; ///< by value; profiles are small PODs
  ExperimentConfig config;
};

/// Fans independent (benchmark, ExperimentConfig) cells across a worker
/// pool.  Usage:
///
///   SweepRunner runner({.threads = 0, .progress = true, .label = "fig3"});
///   for (...) runner.submit(profile, cfg);
///   std::vector<ExperimentResult> results = runner.run();
///
/// run() executes every pending cell and returns results in submission
/// order regardless of completion order, then resets the runner for
/// reuse.  A cell that throws (e.g. ExperimentConfig::validate) aborts
/// the sweep after the pool drains, rethrowing the lowest-index error.
class SweepRunner {
public:
  explicit SweepRunner(SweepOptions opts = {}) : opts_(std::move(opts)) {}

  /// Queue one cell; returns its index into the run() result vector.
  std::size_t submit(const workload::BenchmarkProfile& profile,
                     const ExperimentConfig& cfg);

  /// Cells queued since construction or the last run().
  std::size_t pending() const { return cells_.size(); }

  const SweepOptions& options() const { return opts_; }

  /// Execute all pending cells; results land in submission order.
  std::vector<ExperimentResult> run();

private:
  SweepOptions opts_;
  std::vector<SweepCell> cells_;
};

/// run_suite with explicit engine options (progress label, thread count).
SuiteResult run_suite(const ExperimentConfig& cfg, const SweepOptions& opts);

/// Oracle interval sweeps for *all* SPECint benchmarks as one flat
/// benchmark x interval grid — better load balance than per-benchmark
/// sweeps and the workhorse of the Figs. 12-13 / Table 3 binaries.
/// Returned in spec2000_profiles() order.
std::vector<IntervalSweepResult> best_interval_sweeps_all(
    const ExperimentConfig& cfg, const std::vector<uint64_t>& intervals,
    const SweepOptions& opts = {});

} // namespace harness
