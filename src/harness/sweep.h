// Parallel sweep engine for the experiment harness.
//
// The paper's evaluation is a large Cartesian grid — benchmarks x
// {drowsy, gated-Vss} x decay intervals x L2 latencies x temperatures —
// and every cell is an independent pair of simulations.  SweepRunner fans
// the cells out across a thread pool and hands the results back in
// *submission order*, so a parallel sweep is a drop-in replacement for
// the serial loop it replaces: same results, same order, byte for byte.
//
// Determinism contract: run_experiment is a pure function of its
// (profile, config) cell — every RNG is locally seeded, and the only
// cross-cell state, the memoized baseline cache, is populated exactly
// once per key under a mutex (see experiment.cpp).  The engine therefore
// guarantees results identical to the serial path at any thread count.
//
// Batched execution (see DESIGN.md "Batched execution"): before the pool
// starts, a planner groups batchable cells that share one instruction
// stream — same benchmark, instruction count, and seed — into lockstep
// units of up to SweepOptions::batch lanes (HLCC_BATCH; auto default).
// Each unit decodes the trace once and drives K leakage-controlled cache
// replicas through one pass (harness/batched.h), producing results
// bit-identical to the scalar path.  Cells the lockstep pass cannot
// share (fault injection, adaptive schemes, explicit-hierarchy levels)
// and any member of a unit that fails mid-batch fall back to the scalar
// path transparently, where per-cell retry / watchdog / journal
// semantics apply unchanged.
//
// Resilience layer (see DESIGN.md "Sweep resilience"): production-scale
// grids are hours long, so the engine also provides
//  - per-cell fault isolation: each cell's outcome (CellInfo: status +
//    error taxonomy + attempts + duration) is recorded instead of
//    aborting the sweep; the legacy abort-on-first-error behavior is
//    retained behind values()/SweepOptions::fail_fast;
//  - capped-exponential retry for transiently failing cells
//    (deterministic schedule; attempt counts surface in metrics and the
//    schema-2 report);
//  - a cooperative watchdog: cells poll a sim::CancellationToken at
//    epoch boundaries, so a hung or over-budget cell times out cleanly
//    without killing its worker thread (a K-lane batch unit gets K times
//    the per-cell budget);
//  - a crash-safe checkpoint journal (harness/journal.h): completed
//    cells are fsync'd to an append-only JSONL file, and a killed sweep
//    restarted with HLCC_RESUME=<journal> skips them, reproducing the
//    uninterrupted run's results bit-identically.
//
// Entry points: SweepRunner::run() is the single overload set — the
// submitted (profile, config) grid, an index range with a body, or a
// container with a map function — always returning per-cell rows
// (CellResult / CellRun).  values() recovers the old fail-fast
// value-vector behavior.
//
// Thread count: SweepOptions::threads if nonzero, else the HLCC_THREADS
// environment variable, else std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <iterator>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "harness/cell.h"
#include "harness/experiment.h"
#include "sim/cancellation.h"

namespace harness {

/// Retry schedule for transiently failing cells.  The backoff before
/// attempt N+1 is min(base_backoff_ms * 2^(N-1), max_backoff_ms) — a
/// deterministic schedule (no jitter) so reruns are reproducible.
struct RetryPolicy {
  /// Total tries per cell; 0 defers to HLCC_RETRIES, then 1 (no retry).
  unsigned max_attempts = 0;
  unsigned base_backoff_ms = 25;
  unsigned max_backoff_ms = 1000;
};

/// Execution knobs shared by the engine's entry points.
struct SweepOptions {
  /// Worker threads; 0 defers to HLCC_THREADS, then hardware_concurrency.
  unsigned threads = 0;
  /// Progress/throughput reporter on stderr: live cells-completed /
  /// cells-per-second / ETA line while a terminal is attached, plus one
  /// final throughput summary.  HLCC_PROGRESS=0 force-disables, =1
  /// force-enables the live line even without a terminal.
  bool progress = false;
  /// Tag for the progress lines (e.g. the figure being regenerated).
  std::string label = "sweep";
  /// Honored by values() and the value-returning convenience wrappers
  /// (run_suite, best_interval_sweeps_all): when true (default) they
  /// abort after the pool drains by rethrowing the lowest-index error
  /// with its original type; when false failed cells come back as
  /// placeholder results whose CellInfo carries the status/error.
  bool fail_fast = true;
  /// Retry schedule for cells whose failure is classified retryable.
  RetryPolicy retry{};
  /// Cooperative per-cell wall-clock budget in seconds; a cell past it
  /// is cancelled at its next epoch boundary and reported as timed_out.
  /// 0 defers to HLCC_CELL_TIMEOUT, then no timeout.
  double cell_timeout_s = 0.0;
  /// Checkpoint journal path (see harness/journal.h).  Empty defers to
  /// HLCC_RESUME, then no journal.  When set, SweepRunner appends each
  /// completed cell and skips cells already completed in the file.
  std::string journal_path{};
  /// Maximum lanes per lockstep batch unit (grid run() only).  0 defers
  /// to HLCC_BATCH, then the auto default; 1 disables batching; K >= 2
  /// caps units at K lanes.
  unsigned batch = 0;
};

/// The thread count an options struct resolves to (>= 1).
unsigned resolve_thread_count(unsigned requested);

/// The attempt budget a retry policy resolves to (>= 1): the explicit
/// max_attempts, else a strictly-positive-integer HLCC_RETRIES, else 1.
unsigned resolve_max_attempts(const RetryPolicy& retry);

/// The cell timeout an options struct resolves to: the explicit value,
/// else a positive HLCC_CELL_TIMEOUT (seconds, fractional ok), else 0
/// (disabled).  Junk in the env variable throws std::invalid_argument.
double resolve_cell_timeout_s(double requested);

/// The journal path an options struct resolves to: the explicit path,
/// else HLCC_RESUME, else empty (journaling disabled).
std::string resolve_journal_path(const std::string& requested);

/// The batch-lane cap an options struct resolves to (>= 1): the explicit
/// value, else a strictly-positive-integer HLCC_BATCH, else the auto
/// default (16 lanes — past that the per-lane scoreboard work dwarfs the
/// shared front end and wider batches stop paying).
unsigned resolve_batch_limit(unsigned requested);

/// Backoff before retry attempt @p next_attempt (2, 3, ...), in ms.
unsigned retry_backoff_ms(const RetryPolicy& retry, unsigned next_attempt);

/// One cell's execution record from the fault-isolated loop: the
/// summary plus the original exception payload (for fail-fast rethrow
/// with the thrown type intact — even non-std::exception payloads).
struct CellRun {
  CellInfo info;
  std::exception_ptr exception;
};

namespace detail {

/// The engine's one execution primitive: run body(0..count-1, token)
/// across the pool with per-cell fault isolation, retries, watchdog and
/// metrics.  @p on_cell_done fires on the worker as each index settles
/// (checkpointing hook).  @p timeout_weight, when set, scales the
/// watchdog budget of index i by its return value (batch units get K
/// times the per-cell budget).  Public entry points are thin shims over
/// this.
std::vector<CellRun> for_cells(
    std::size_t count,
    const std::function<void(std::size_t, const sim::CancellationToken&)>&
        body,
    const SweepOptions& opts,
    const std::function<void(std::size_t, const CellRun&)>& on_cell_done =
        nullptr,
    const std::function<double(std::size_t)>& timeout_weight = nullptr);

} // namespace detail

/// Unwrap CellResult rows into their values.  With @p fail_fast (the
/// default) the lowest-index failed row's original exception is rethrown
/// first — the serial loop's first throw; without it failed rows yield
/// their placeholder values (identity + CellInfo status, zeroed
/// measurements).
template <typename V>
std::vector<V> values(std::vector<CellResult<V>> rows, bool fail_fast = true) {
  if (fail_fast) {
    for (const CellResult<V>& row : rows) {
      if (row.exception) {
        std::rethrow_exception(row.exception);
      }
    }
  }
  std::vector<V> out;
  out.reserve(rows.size());
  for (CellResult<V>& row : rows) {
    out.push_back(std::move(row.value));
  }
  return out;
}

/// One cell of a sweep: a benchmark plus a full experiment configuration.
struct SweepCell {
  workload::BenchmarkProfile profile; ///< by value; profiles are small PODs
  ExperimentConfig config;
};

/// Fans independent work across a worker pool.  The run() overload set
/// is the engine's whole public surface:
///
///   SweepRunner runner({.threads = 0, .progress = true, .label = "fig3"});
///   for (...) runner.submit(profile, cfg);
///   auto rows = runner.run();                    // grid form
///   auto results = harness::values(std::move(rows));
///
///   auto runs = runner.run(n, [](std::size_t i) { ... });       // index form
///   auto rows = runner.run(items, [](const Item& x) { ... });   // map form
///
/// Every form returns per-cell rows in submission/index order with full
/// fault isolation — a failing cell never throws out of run(); its row
/// carries the status, error taxonomy and original exception.  values()
/// restores fail-fast semantics when wanted.
///
/// The grid form routes batchable same-stream cells through the lockstep
/// batched executor (see the header comment) and everything else through
/// the scalar path; both checkpoint to / resume from the journal when
/// one is configured.
class SweepRunner {
public:
  explicit SweepRunner(SweepOptions opts = {}) : opts_(std::move(opts)) {}

  /// Queue one cell; returns its index into the run() result vector.
  std::size_t submit(const workload::BenchmarkProfile& profile,
                     const ExperimentConfig& cfg);

  /// Cells queued since construction or the last run().
  std::size_t pending() const { return cells_.size(); }

  const SweepOptions& options() const { return opts_; }

  /// Grid form: execute all pending cells (batched where the planner
  /// can, scalar otherwise); every cell's outcome in submission order,
  /// then the runner resets for reuse.  Cells completed in a configured
  /// journal are skipped and restored bit-identically with info.resumed
  /// set.
  std::vector<CellResult<ExperimentResult>> run();

  /// Index form: run body(0..count-1[, token]) across the pool.  The
  /// body may take (std::size_t) or (std::size_t, const
  /// sim::CancellationToken&); bodies that can hang should take the
  /// token and poll it (run_experiment does, at epoch boundaries).
  template <typename Body,
            typename = std::enable_if_t<
                std::is_invocable_v<Body&, std::size_t> ||
                std::is_invocable_v<Body&, std::size_t,
                                    const sim::CancellationToken&>>>
  std::vector<CellRun> run(std::size_t count, Body&& body) {
    if constexpr (std::is_invocable_v<Body&, std::size_t,
                                      const sim::CancellationToken&>) {
      return detail::for_cells(count, body, opts_);
    } else {
      return detail::for_cells(
          count,
          [&body](std::size_t i, const sim::CancellationToken&) { body(i); },
          opts_);
    }
  }

  /// Map form: out[i] pairs fn(items[i]) with its cell outcome, in item
  /// order.  The generic escape hatch for sweeps whose cells are not
  /// run_experiment calls (I-cache / L2 / predictor-decay studies).
  /// Accepts any random-access container (vector, array, ...).
  template <typename Container, typename Fn>
  auto run(const Container& items, Fn&& fn)
      -> std::vector<CellResult<std::decay_t<decltype(fn(*std::begin(items)))>>> {
    using Value = std::decay_t<decltype(fn(*std::begin(items)))>;
    std::vector<CellResult<Value>> out(std::size(items));
    const std::vector<CellRun> runs = detail::for_cells(
        std::size(items),
        [&](std::size_t i, const sim::CancellationToken&) {
          out[i].value =
              fn(*(std::begin(items) + static_cast<std::ptrdiff_t>(i)));
        },
        opts_);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      out[i].info = runs[i].info;
      out[i].exception = runs[i].exception;
    }
    return out;
  }

private:
  SweepOptions opts_;
  std::vector<SweepCell> cells_;
};

/// run_suite with explicit engine options (progress label, thread count).
SuiteResult run_suite(const ExperimentConfig& cfg, const SweepOptions& opts);

/// Oracle interval sweeps for *all* SPECint benchmarks as one flat
/// benchmark x interval grid — better load balance than per-benchmark
/// sweeps and the workhorse of the Figs. 12-13 / Table 3 binaries.
/// Returned in spec2000_profiles() order.
std::vector<IntervalSweepResult> best_interval_sweeps_all(
    const ExperimentConfig& cfg, const std::vector<uint64_t>& intervals,
    const SweepOptions& opts = {});

/// One cell of a joint (L1 interval, L2 interval) hierarchy grid.
struct JointIntervalCell {
  std::string benchmark;
  uint64_t l1_interval = 0;
  uint64_t l2_interval = 0;
  ExperimentResult result;
};

/// Joint (L1-interval x L2-interval) grid over @p profiles through the
/// engine, flattened benchmark-major / L1-major / L2-minor.  @p cfg's
/// resolved level list supplies the hierarchy: level 0 must be
/// controlled; when level 1 is plain it is promoted to a controlled
/// level reusing level 0's technique and policy, so a legacy L1-only
/// config sweeps as "same technique at both levels" without hand-built
/// LevelConfig lists.  Each cell is an explicit-hierarchy config, so the
/// planner routes it scalar (lockstep batching covers legacy-shaped
/// cells only) and per-level energy lands in result.hierarchy.
std::vector<JointIntervalCell> joint_interval_sweep(
    const ExperimentConfig& cfg, const std::vector<uint64_t>& l1_intervals,
    const std::vector<uint64_t>& l2_intervals,
    const std::vector<workload::BenchmarkProfile>& profiles,
    const SweepOptions& opts = {});

/// One cell of a (workload mix x context-switch quantum) multi-tenant
/// grid: @p mix is the '+'-joined benchmark list ("gcc+mcf+gzip+twolf").
struct MultiTenantCell {
  std::string mix;
  uint64_t quantum = 0;
  ExperimentResult result;
};

/// Multi-tenant grid over @p mixes (each a benchmark-name list: entry 0
/// is tenant 0 and names the cell's profile, the rest become
/// TenantConfig::co_benchmarks) and @p quanta, flattened mix-major /
/// quantum-minor through the engine.  Each cell runs @p cfg with
/// tenants.count = mix size and the cell's quantum; everything else —
/// levels, technique, policy (e.g. a tenant_color L2), tags — comes from
/// @p cfg verbatim.  Multi-tenant cells always execute on the scalar
/// path (harness::batchable excludes them).
std::vector<MultiTenantCell> multi_tenant_sweep(
    const ExperimentConfig& cfg,
    const std::vector<std::vector<std::string>>& mixes,
    const std::vector<uint64_t>& quanta, const SweepOptions& opts = {});

} // namespace harness
