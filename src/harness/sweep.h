// Parallel sweep engine for the experiment harness.
//
// The paper's evaluation is a large Cartesian grid — benchmarks x
// {drowsy, gated-Vss} x decay intervals x L2 latencies x temperatures —
// and every cell is an independent pair of simulations.  SweepRunner fans
// the cells out across a thread pool and hands the results back in
// *submission order*, so a parallel sweep is a drop-in replacement for
// the serial loop it replaces: same results, same order, byte for byte.
//
// Determinism contract: run_experiment is a pure function of its
// (profile, config) cell — every RNG is locally seeded, and the only
// cross-cell state, the memoized baseline cache, is populated exactly
// once per key under a mutex (see experiment.cpp).  The engine therefore
// guarantees results identical to the serial path at any thread count.
//
// Resilience layer (see DESIGN.md "Sweep resilience"): production-scale
// grids are hours long, so the engine also provides
//  - per-cell fault isolation: run_cells()/parallel_for_cells record
//    each cell's outcome (CellInfo: status + error taxonomy + attempts +
//    duration) instead of aborting the sweep; the legacy abort-on-first-
//    error behavior is retained behind SweepOptions::fail_fast (default
//    on, so existing callers are unchanged);
//  - capped-exponential retry for transiently failing cells
//    (deterministic schedule; attempt counts surface in metrics and the
//    schema-2 report);
//  - a cooperative watchdog: cells poll a sim::CancellationToken at
//    epoch boundaries, so a hung or over-budget cell times out cleanly
//    without killing its worker thread;
//  - a crash-safe checkpoint journal (harness/journal.h): completed
//    cells are fsync'd to an append-only JSONL file, and a killed sweep
//    restarted with HLCC_RESUME=<journal> skips them, reproducing the
//    uninterrupted run's results bit-identically.
//
// Thread count: SweepOptions::threads if nonzero, else the HLCC_THREADS
// environment variable, else std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "harness/cell.h"
#include "harness/experiment.h"
#include "sim/cancellation.h"

namespace harness {

/// Retry schedule for transiently failing cells.  The backoff before
/// attempt N+1 is min(base_backoff_ms * 2^(N-1), max_backoff_ms) — a
/// deterministic schedule (no jitter) so reruns are reproducible.
struct RetryPolicy {
  /// Total tries per cell; 0 defers to HLCC_RETRIES, then 1 (no retry).
  unsigned max_attempts = 0;
  unsigned base_backoff_ms = 25;
  unsigned max_backoff_ms = 1000;
};

/// Execution knobs shared by the engine's entry points.
struct SweepOptions {
  /// Worker threads; 0 defers to HLCC_THREADS, then hardware_concurrency.
  unsigned threads = 0;
  /// Progress/throughput reporter on stderr: live cells-completed /
  /// cells-per-second / ETA line while a terminal is attached, plus one
  /// final throughput summary.  HLCC_PROGRESS=0 force-disables, =1
  /// force-enables the live line even without a terminal.
  bool progress = false;
  /// Tag for the progress lines (e.g. the figure being regenerated).
  std::string label = "sweep";
  /// When true (default), the value-returning entry points (run(),
  /// run_suite, sweep_map, parallel_for_indexed) abort after the pool
  /// drains by rethrowing the lowest-index error with its original type
  /// — the pre-resilience behavior.  When false they degrade
  /// gracefully: failed cells come back as placeholder results whose
  /// CellInfo carries the status/error, and every other cell's result
  /// is returned.
  bool fail_fast = true;
  /// Retry schedule for cells whose failure is classified retryable.
  RetryPolicy retry{};
  /// Cooperative per-cell wall-clock budget in seconds; a cell past it
  /// is cancelled at its next epoch boundary and reported as timed_out.
  /// 0 defers to HLCC_CELL_TIMEOUT, then no timeout.
  double cell_timeout_s = 0.0;
  /// Checkpoint journal path (see harness/journal.h).  Empty defers to
  /// HLCC_RESUME, then no journal.  When set, SweepRunner appends each
  /// completed cell and skips cells already completed in the file.
  std::string journal_path{};
};

/// The thread count an options struct resolves to (>= 1).
unsigned resolve_thread_count(unsigned requested);

/// The attempt budget a retry policy resolves to (>= 1): the explicit
/// max_attempts, else a strictly-positive-integer HLCC_RETRIES, else 1.
unsigned resolve_max_attempts(const RetryPolicy& retry);

/// The cell timeout an options struct resolves to: the explicit value,
/// else a positive HLCC_CELL_TIMEOUT (seconds, fractional ok), else 0
/// (disabled).  Junk in the env variable throws std::invalid_argument.
double resolve_cell_timeout_s(double requested);

/// The journal path an options struct resolves to: the explicit path,
/// else HLCC_RESUME, else empty (journaling disabled).
std::string resolve_journal_path(const std::string& requested);

/// Backoff before retry attempt @p next_attempt (2, 3, ...), in ms.
unsigned retry_backoff_ms(const RetryPolicy& retry, unsigned next_attempt);

/// One cell's execution record from the fault-isolated loop: the
/// summary plus the original exception payload (for fail-fast rethrow
/// with the thrown type intact — even non-std::exception payloads).
struct CellRun {
  CellInfo info;
  std::exception_ptr exception;
};

/// Run body(0..count-1, token) across the pool with per-cell fault
/// isolation: every cell runs (and is retried / timed out per @p opts)
/// regardless of other cells' failures, and the outcome of each —
/// status, error taxonomy, attempts, duration — is returned by index.
/// Never throws for cell failures; the CellRun is the error channel.
/// The token passed to the body is armed by the watchdog when
/// opts.cell_timeout_s resolves nonzero; bodies that can hang should
/// poll it (run_experiment does, at simulation epoch boundaries).
std::vector<CellRun> parallel_for_cells(
    std::size_t count,
    const std::function<void(std::size_t, const sim::CancellationToken&)>&
        body,
    const SweepOptions& opts = {},
    const std::function<void(std::size_t, const CellRun&)>& on_cell_done =
        nullptr);

/// Run body(0..count-1) across the pool.  Each index runs exactly once
/// per attempt budget; the call returns when all have finished.
/// Exceptions thrown by the body are captured and the one from the
/// lowest index is rethrown — with its original type, whatever it is —
/// after the pool drains (matching what the serial loop would have
/// thrown first).  With a resolved thread count of 1 the bodies run
/// inline on the calling thread.
void parallel_for_indexed(std::size_t count,
                          const std::function<void(std::size_t)>& body,
                          const SweepOptions& opts = {});

/// Deterministic parallel map: out[i] = fn(items[i]), in order.  The
/// generic escape hatch for sweeps whose cells are not run_experiment
/// calls (I-cache / L2 / predictor-decay studies).  Accepts any
/// random-access container (vector, array, ...).  Fail-fast: the
/// lowest-index exception is rethrown after the drain with its original
/// type; use sweep_map_cells for per-item fault isolation.
template <typename Container, typename Fn>
auto sweep_map(const Container& items, Fn&& fn, const SweepOptions& opts = {})
    -> std::vector<decltype(fn(*std::begin(items)))> {
  std::vector<decltype(fn(*std::begin(items)))> out(std::size(items));
  parallel_for_indexed(
      std::size(items),
      [&](std::size_t i) {
        out[i] = fn(*(std::begin(items) + static_cast<std::ptrdiff_t>(i)));
      },
      opts);
  return out;
}

/// Fault-isolated parallel map: every item is attempted (with retries
/// and timeouts per @p opts) and comes back as a CellResult carrying
/// either its value or its failure summary.  Never throws for item
/// failures.
template <typename Container, typename Fn>
auto sweep_map_cells(const Container& items, Fn&& fn,
                     const SweepOptions& opts = {})
    -> std::vector<CellResult<decltype(fn(*std::begin(items)))>> {
  using Value = decltype(fn(*std::begin(items)));
  std::vector<CellResult<Value>> out(std::size(items));
  const std::vector<CellRun> runs = parallel_for_cells(
      std::size(items),
      [&](std::size_t i, const sim::CancellationToken&) {
        out[i].value =
            fn(*(std::begin(items) + static_cast<std::ptrdiff_t>(i)));
      },
      opts);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out[i].info = runs[i].info;
    out[i].exception = runs[i].exception;
  }
  return out;
}

/// One cell of a sweep: a benchmark plus a full experiment configuration.
struct SweepCell {
  workload::BenchmarkProfile profile; ///< by value; profiles are small PODs
  ExperimentConfig config;
};

/// Fans independent (benchmark, ExperimentConfig) cells across a worker
/// pool.  Usage:
///
///   SweepRunner runner({.threads = 0, .progress = true, .label = "fig3"});
///   for (...) runner.submit(profile, cfg);
///   std::vector<ExperimentResult> results = runner.run();
///
/// run() executes every pending cell and returns results in submission
/// order regardless of completion order, then resets the runner for
/// reuse.  With fail_fast (the default) a cell that throws (e.g.
/// ExperimentConfig::validate) aborts the sweep after the pool drains,
/// rethrowing the lowest-index error; with fail_fast=false failed cells
/// become placeholder results whose CellInfo carries the error.
/// run_cells() is the fully fault-isolated form.  Both checkpoint to /
/// resume from the journal when one is configured.
class SweepRunner {
public:
  explicit SweepRunner(SweepOptions opts = {}) : opts_(std::move(opts)) {}

  /// Queue one cell; returns its index into the run() result vector.
  std::size_t submit(const workload::BenchmarkProfile& profile,
                     const ExperimentConfig& cfg);

  /// Cells queued since construction or the last run().
  std::size_t pending() const { return cells_.size(); }

  const SweepOptions& options() const { return opts_; }

  /// Execute all pending cells; results land in submission order.
  std::vector<ExperimentResult> run();

  /// Fault-isolated execution: every cell's outcome in submission
  /// order.  Never throws for cell failures (the CellResult is the
  /// error channel); cells completed in a configured journal are
  /// skipped and restored bit-identically with info.resumed set.
  std::vector<CellResult<ExperimentResult>> run_cells();

private:
  SweepOptions opts_;
  std::vector<SweepCell> cells_;
};

/// run_suite with explicit engine options (progress label, thread count).
SuiteResult run_suite(const ExperimentConfig& cfg, const SweepOptions& opts);

/// Oracle interval sweeps for *all* SPECint benchmarks as one flat
/// benchmark x interval grid — better load balance than per-benchmark
/// sweeps and the workhorse of the Figs. 12-13 / Table 3 binaries.
/// Returned in spec2000_profiles() order.
std::vector<IntervalSweepResult> best_interval_sweeps_all(
    const ExperimentConfig& cfg, const std::vector<uint64_t>& intervals,
    const SweepOptions& opts = {});

} // namespace harness
