#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <tuple>

#include "harness/experiment_detail.h"
#include "harness/metrics.h"
#include "harness/sweep.h"
#include "workload/generator.h"

namespace harness {
namespace {

/// Lowest supply at which a drowsy cell still holds state: the retention
/// voltage the paper's drowsy circuit targets (~1.5x the larger Vth).
/// Operating the array below it makes every mode non-state-preserving.
double retention_floor_v(const hotleakage::TechParams& tech) {
  return hotleakage::StandbyParams{}.drowsy_vdd_over_vth *
         std::max(tech.nmos.vth0, tech.pmos.vth0);
}

struct BaselineKey {
  std::string benchmark;
  unsigned l2_latency;
  uint64_t instructions;
  uint64_t seed;
  auto operator<=>(const BaselineKey&) const = default;
};

/// One cache slot.  The map hands out shared_ptrs under the mutex; the
/// (expensive) baseline simulation itself runs *outside* the lock, under
/// the slot's once_flag, so concurrent sweep cells that need the same
/// baseline block on each other instead of duplicating the run, while
/// cells with different keys proceed in parallel.
struct BaselineSlot {
  std::once_flag once;
  detail::BaselineData rec;
};

std::mutex& baseline_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<BaselineKey, std::shared_ptr<BaselineSlot>>& baseline_cache() {
  static std::map<BaselineKey, std::shared_ptr<BaselineSlot>> cache;
  return cache;
}

} // namespace

namespace detail {

std::shared_ptr<const BaselineData> baseline_for(
    const workload::BenchmarkProfile& profile, const ExperimentConfig& cfg,
    const sim::CancellationToken* cancel) {
  BaselineKey key{std::string(profile.name), cfg.l2_latency,
                  cfg.instructions, cfg.seed};
  std::shared_ptr<BaselineSlot> slot;
  {
    std::lock_guard<std::mutex> lock(baseline_mutex());
    std::shared_ptr<BaselineSlot>& entry = baseline_cache()[std::move(key)];
    if (!entry) {
      entry = std::make_shared<BaselineSlot>();
      metrics::count("baseline_cache.miss");
    } else {
      metrics::count("baseline_cache.hit");
    }
    slot = entry;
  }
  std::call_once(slot->once, [&] {
    metrics::ScopedTimer timer("phase.baseline_sim");
    const sim::ProcessorConfig pcfg =
        sim::ProcessorConfig::table2(cfg.l2_latency);
    sim::Processor proc(pcfg);
    sim::BaselineDataPort dport(pcfg.l1d, proc.l2(), &proc.activity());
    // A cancelled baseline unwinds out of call_once without setting the
    // flag, so the next cell needing this key recomputes it.
    workload::Generator gen(profile, cfg.seed);
    slot->rec.run = proc.run(gen, dport, cfg.instructions, cancel);
    slot->rec.activity = proc.activity();
    slot->rec.l1d_miss_rate = dport.cache().stats().miss_rate();
  });
  return {slot, &slot->rec};
}

leakctl::ControlledCacheConfig controlled_config(
    const ExperimentConfig& cfg, const sim::ProcessorConfig& pcfg) {
  leakctl::ControlledCacheConfig ccfg;
  ccfg.cache = pcfg.l1d;
  ccfg.technique = cfg.technique;
  ccfg.policy = cfg.policy;
  ccfg.decay_interval = cfg.decay_interval;
  if (cfg.faults.enabled) {
    // Scale the raw upset rates to the operating point.  Standby cells sit
    // at the technique's retention voltage: the drowsy supply for drowsy,
    // the full (possibly DVS-lowered) rail for RBB; gated-Vss standby
    // holds no state, so its standby rate is never consulted.
    const hotleakage::TechParams& ftech =
        hotleakage::tech_params(hotleakage::TechNode::nm70);
    const double vdd_op = cfg.vdd > 0.0 ? cfg.vdd : ftech.vdd_nominal;
    const double temp_k = cfg.temperature_c + 273.15;
    const double standby_vdd =
        cfg.technique.mode == hotleakage::StandbyMode::drowsy
            ? retention_floor_v(ftech)
            : vdd_op;
    ccfg.faults = cfg.faults;
    ccfg.faults.standby_rate_per_bit_cycle =
        cfg.faults.standby_rate_per_bit_cycle *
        hotleakage::cells::sram_seu_scale(ftech, standby_vdd, temp_k);
    ccfg.faults.active_rate_per_bit_cycle =
        cfg.faults.active_rate_per_bit_cycle *
        hotleakage::cells::sram_seu_scale(ftech, vdd_op, temp_k);
  }
  if (cfg.adaptive != ExperimentConfig::AdaptiveScheme::none) {
    // All adaptive schemes observe induced misses through the tags, which
    // must therefore stay awake (paper Sec. 5.4).
    ccfg.technique.decay_tags = false;
  }
  return ccfg;
}

void finish_energy(ExperimentResult& result, const sim::ProcessorConfig& pcfg,
                   const leakctl::ControlledCacheConfig& ccfg,
                   const BaselineData& base,
                   const wattch::Activity& tech_activity) {
  const ExperimentConfig& cfg = result.config;
  metrics::ScopedTimer leakage_timer("phase.leakage_model");
  hotleakage::VariationConfig vcfg;
  vcfg.enabled = cfg.variation;
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70, vcfg);
  const double vdd = cfg.vdd > 0.0 ? cfg.vdd : model.tech().vdd_nominal;
  model.set_operating_point(
      hotleakage::OperatingPoint::at_celsius(cfg.temperature_c, vdd));
  const hotleakage::CacheGeometry geom = leakctl::geometry_of(pcfg.l1d);
  const hotleakage::CacheGeometry l2geom = leakctl::geometry_of(pcfg.l2);
  const wattch::PowerParams power =
      wattch::PowerParams::for_config_at(model.tech(), geom, l2geom, vdd);

  leakctl::RunPair runs;
  runs.base_run = base.run;
  runs.base_activity = base.activity;
  runs.tech_run = result.tech_run;
  runs.tech_activity = tech_activity;
  runs.control = result.control;
  // DVS: the clock follows the supply near-linearly; cycle counts are
  // voltage-independent, so only the seconds-per-cycle change.
  const double clock_hz = pcfg.clock_hz * (vdd / model.tech().vdd_nominal);
  result.energy = leakctl::compute_energy(model, geom, power, ccfg.technique,
                                          runs, clock_hz, ccfg.faults);
}

} // namespace detail

void clear_baseline_cache() {
  std::lock_guard<std::mutex> lock(baseline_mutex());
  // In-flight experiments keep their slots alive via shared_ptr.
  baseline_cache().clear();
}

std::size_t baseline_cache_size() {
  std::lock_guard<std::mutex> lock(baseline_mutex());
  return baseline_cache().size();
}

void ExperimentConfig::validate() const {
  if (instructions == 0) {
    throw std::invalid_argument(
        "ExperimentConfig::instructions must be nonzero");
  }
  if (l2_latency == 0) {
    throw std::invalid_argument("ExperimentConfig::l2_latency must be nonzero");
  }
  if (decay_interval == 0 || decay_interval % 4 != 0) {
    throw std::invalid_argument(
        "ExperimentConfig::decay_interval must be a nonzero multiple of 4 "
        "(the epoch quantization), got " +
        std::to_string(decay_interval));
  }
  // The cache geometries this experiment will instantiate (Table 2 at the
  // requested L2 latency) must be coherent before they reach the hot path:
  // sim::CacheConfig::validate() names the offending field instead of
  // letting a zero-set geometry surface as a divide deep in the simulator.
  {
    const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(l2_latency);
    pcfg.l1d.validate();
    pcfg.l1i.validate();
    pcfg.l2.validate();
  }
  const hotleakage::TechParams& tech =
      hotleakage::tech_params(hotleakage::TechNode::nm70);
  const double floor_v = retention_floor_v(tech);
  if (vdd > 0.0 && vdd < floor_v) {
    throw std::invalid_argument(
        "ExperimentConfig::vdd = " + std::to_string(vdd) +
        " V is below the 70 nm retention floor of " + std::to_string(floor_v) +
        " V (cells cannot hold state)");
  }
  if (faults.standby_rate_per_bit_cycle < 0.0 ||
      faults.standby_rate_per_bit_cycle > 1.0) {
    throw std::invalid_argument(
        "ExperimentConfig::faults.standby_rate_per_bit_cycle must be a "
        "probability in [0, 1]");
  }
  if (faults.active_rate_per_bit_cycle < 0.0 ||
      faults.active_rate_per_bit_cycle > 1.0) {
    throw std::invalid_argument(
        "ExperimentConfig::faults.active_rate_per_bit_cycle must be a "
        "probability in [0, 1]");
  }
}

ExperimentResult run_experiment(const workload::BenchmarkProfile& profile,
                                const ExperimentConfig& cfg) {
  return run_experiment(profile, cfg, nullptr);
}

ExperimentResult run_experiment(const workload::BenchmarkProfile& profile,
                                const ExperimentConfig& cfg,
                                const sim::CancellationToken* cancel) {
  cfg.validate();
  metrics::ScopedTimer experiment_timer("phase.experiment");
  metrics::count("experiments.run");
  ExperimentResult result;
  result.benchmark = std::string(profile.name);
  result.config = cfg;

  const std::shared_ptr<const detail::BaselineData> base =
      detail::baseline_for(profile, cfg, cancel);
  result.base_run = base->run;
  result.base_l1d_miss_rate = base->l1d_miss_rate;

  // Technique run: identical machine + instruction stream, controlled L1D.
  const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(cfg.l2_latency);
  sim::Processor proc(pcfg);
  const leakctl::ControlledCacheConfig ccfg =
      detail::controlled_config(cfg, pcfg);
  const ExperimentConfig::AdaptiveScheme scheme = cfg.adaptive;
  leakctl::ControlledCache dport(ccfg, proc.l2(), &proc.activity());
  leakctl::FeedbackController feedback_ctl(cfg.feedback);
  leakctl::AdaptiveModeControl amc_ctl(cfg.amc);
  leakctl::PerLineAdaptiveController per_line_ctl(cfg.per_line);
  switch (scheme) {
  case ExperimentConfig::AdaptiveScheme::feedback:
    feedback_ctl.attach(dport);
    break;
  case ExperimentConfig::AdaptiveScheme::amc:
    amc_ctl.attach(dport);
    break;
  case ExperimentConfig::AdaptiveScheme::per_line:
    per_line_ctl.attach(dport);
    break;
  case ExperimentConfig::AdaptiveScheme::none:
    break;
  }
  workload::Generator gen(profile, cfg.seed);
  {
    metrics::ScopedTimer sim_timer("phase.simulation");
    result.tech_run = proc.run(gen, dport, cfg.instructions, cancel);
  }
  dport.finalize(result.tech_run.cycles);
  result.control = dport.stats();

  // Energy accounting at the experiment's operating point.
  detail::finish_energy(result, pcfg, ccfg, *base, proc.activity());
  return result;
}

// The [[deprecated]] attribute on the declaration also fires inside the
// out-of-line definition; suppress it here — defining a deprecated shim
// is the whole point.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
ExperimentConfig::Builder&
ExperimentConfig::Builder::adaptive_feedback(bool enabled) {
  static std::once_flag warned;
  std::call_once(warned, [] {
    std::fprintf(stderr,
                 "warning: ExperimentConfig::Builder::adaptive_feedback(bool) "
                 "is deprecated; use "
                 "adaptive(ExperimentConfig::AdaptiveScheme::feedback)\n");
  });
  cfg_.adaptive =
      enabled ? AdaptiveScheme::feedback : AdaptiveScheme::none;
  return *this;
}
#pragma GCC diagnostic pop

const ExperimentResult* SuiteResult::find(std::string_view benchmark) const {
  for (const ExperimentResult& r : results_) {
    if (r.benchmark == benchmark) {
      return &r;
    }
  }
  return nullptr;
}

const ExperimentResult& SuiteResult::at(std::string_view benchmark) const {
  const ExperimentResult* r = find(benchmark);
  if (r == nullptr) {
    throw std::out_of_range("SuiteResult::at: no benchmark named '" +
                            std::string(benchmark) + "' in this suite");
  }
  return *r;
}

double SuiteResult::mean_net_savings() const {
  return averages().net_savings;
}

double SuiteResult::mean_slowdown() const { return averages().perf_loss; }

double SuiteResult::mean_turnoff() const { return averages().turnoff; }

SuiteAverages SuiteResult::averages() const {
  return harness::averages(results_);
}

SuiteAverages averages(const SuiteResult& suite) { return suite.averages(); }

SuiteResult run_suite(const ExperimentConfig& cfg) {
  return run_suite(cfg, SweepOptions{}); // engine-backed, quiet
}

IntervalSweepResult best_interval_sweep(
    const workload::BenchmarkProfile& profile, ExperimentConfig cfg,
    const std::vector<uint64_t>& intervals) {
  SweepRunner runner;
  for (const uint64_t interval : intervals) {
    cfg.decay_interval = interval;
    runner.submit(profile, cfg);
  }
  std::vector<ExperimentResult> results = values(runner.run());

  IntervalSweepResult out;
  for (std::size_t k = 0; k < intervals.size(); ++k) {
    ExperimentResult& r = results[k];
    if (k == 0 ||
        r.energy.net_savings_frac > out.best.energy.net_savings_frac) {
      out.best = r;
      out.best_interval = intervals[k];
    }
    out.sweep.push_back(std::move(r));
  }
  return out;
}

std::vector<uint64_t> paper_interval_grid() {
  return {1024, 2048, 4096, 8192, 16384, 32768, 65536};
}

SuiteAverages averages(const std::vector<ExperimentResult>& results) {
  SuiteAverages avg;
  if (results.empty()) {
    return avg;
  }
  for (const ExperimentResult& r : results) {
    avg.net_savings += r.energy.net_savings_frac;
    avg.perf_loss += r.energy.perf_loss_frac;
    avg.turnoff += r.energy.turnoff_ratio;
  }
  const double n = static_cast<double>(results.size());
  avg.net_savings /= n;
  avg.perf_loss /= n;
  avg.turnoff /= n;
  return avg;
}

} // namespace harness
