#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <tuple>

#include "harness/experiment_detail.h"
#include "harness/metrics.h"
#include "harness/sweep.h"
#include "sim/tenant.h"
#include "workload/arena.h"
#include "workload/generator.h"
#include "workload/interleaver.h"

namespace harness {
namespace {

/// Lowest supply at which a drowsy cell still holds state: the retention
/// voltage the paper's drowsy circuit targets (~1.5x the larger Vth).
/// Operating the array below it makes every mode non-state-preserving.
double retention_floor_v(const hotleakage::TechParams& tech) {
  return hotleakage::StandbyParams{}.drowsy_vdd_over_vth *
         std::max(tech.nmos.vth0, tech.pmos.vth0);
}

/// The baseline machine depends only on the level *geometries*, never on
/// which levels carry control — so explicit-hierarchy configs that differ
/// only in technique/interval share one baseline.  Legacy-shaped configs
/// keep an empty signature (and thus the pre-hierarchy cache keys).
std::string levels_signature(const ExperimentConfig& cfg) {
  if (cfg.legacy_shape()) {
    return {};
  }
  std::string sig;
  for (const LevelConfig& lv : cfg.levels) {
    sig += lv.name + ':' + std::to_string(lv.geometry.size_bytes) + '/' +
           std::to_string(lv.geometry.assoc) + '/' +
           std::to_string(lv.geometry.line_bytes) + '/' +
           std::to_string(lv.geometry.hit_latency) + ';';
  }
  return sig;
}

/// Everything the instruction stream depends on beyond (benchmark, seed):
/// multi-tenant runs interleave extra tagged streams, so configs that
/// differ in tenant setup must not share a baseline.  Single-tenant
/// configs keep an empty signature (and thus the pre-multi-tenant keys).
std::string tenants_signature(const ExperimentConfig& cfg) {
  if (!cfg.tenants.enabled()) {
    return {};
  }
  std::string sig = std::to_string(cfg.tenants.count) + '@' +
                    std::to_string(cfg.tenants.quantum);
  for (const std::string& b : cfg.tenants.co_benchmarks) {
    sig += ';';
    sig += b;
  }
  for (const unsigned t : cfg.tenants.tenant_tags) {
    sig += ',' + std::to_string(t);
  }
  return sig;
}

struct BaselineKey {
  std::string benchmark;
  unsigned l2_latency;
  uint64_t instructions;
  uint64_t seed;
  std::string levels_sig;
  std::string tenants_sig;
  auto operator<=>(const BaselineKey&) const = default;
};

/// One cache slot.  The map hands out shared_ptrs under the mutex; the
/// (expensive) baseline simulation itself runs *outside* the lock, under
/// the slot's once_flag, so concurrent sweep cells that need the same
/// baseline block on each other instead of duplicating the run, while
/// cells with different keys proceed in parallel.
struct BaselineSlot {
  std::once_flag once;
  detail::BaselineData rec;
};

std::mutex& baseline_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<BaselineKey, std::shared_ptr<BaselineSlot>>& baseline_cache() {
  static std::map<BaselineKey, std::shared_ptr<BaselineSlot>> cache;
  return cache;
}

/// Exact textual rendering of a double for key-building: %a round-trips
/// every finite value, so profiles differing in any field get distinct
/// stream keys.
void append_hex_double(std::string& s, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a,", v);
  s += buf;
}

/// Every numeric field of the profile, not just its name: a hand-built
/// profile that shares a name with a table entry but differs in contents
/// must not share its materialized stream.
std::string profile_signature(const workload::BenchmarkProfile& p) {
  std::string s(p.name);
  s += '|';
  for (const double v :
       {p.f_load, p.f_store, p.f_branch, p.f_mul, p.f_div, p.f_fp, p.dep_mean,
        p.dep_second_prob, p.br_random_frac, p.br_taken_bias, p.zipf_alpha,
        p.p_new, p.p_dormant_schedule, p.dormant_gap_mean,
        p.dormant_gap_sigma}) {
    append_hex_double(s, v);
  }
  s += std::to_string(p.code_lines) + ',' + std::to_string(p.hot_lines) +
       ',' + std::to_string(p.footprint_lines);
  return s;
}

} // namespace

namespace detail {

std::string stream_key(const workload::BenchmarkProfile& profile,
                       const ExperimentConfig& cfg) {
  return profile_signature(profile) + '#' + std::to_string(cfg.seed) + '#' +
         std::to_string(cfg.instructions) + '#' + tenants_signature(cfg);
}

std::unique_ptr<sim::TraceSource> make_trace_live(
    const workload::BenchmarkProfile& profile, const ExperimentConfig& cfg) {
  if (!cfg.tenants.enabled()) {
    return std::make_unique<workload::Generator>(profile, cfg.seed);
  }
  std::vector<workload::TenantStream> streams(cfg.tenants.count);
  for (unsigned i = 0; i < cfg.tenants.count; ++i) {
    // Tenant 0 runs the experiment's own benchmark; the rest cycle
    // through co_benchmarks (or clone the same benchmark when none are
    // named).  Distinct seeds keep even same-benchmark streams distinct.
    streams[i].profile =
        i == 0 || cfg.tenants.co_benchmarks.empty()
            ? profile
            : workload::profile_by_name(
                  cfg.tenants.co_benchmarks[(i - 1) %
                                            cfg.tenants.co_benchmarks.size()]);
    streams[i].seed = cfg.seed + i;
    streams[i].tenant =
        cfg.tenants.tenant_tags.empty() ? i : cfg.tenants.tenant_tags[i];
  }
  return std::make_unique<workload::Interleaver>(streams, cfg.tenants.quantum);
}

std::unique_ptr<sim::TraceSource> make_trace(
    const workload::BenchmarkProfile& profile, const ExperimentConfig& cfg) {
  workload::TraceArena& arena = workload::TraceArena::instance();
  if (arena.enabled()) {
    std::unique_ptr<sim::TraceSource> replay =
        arena.open(stream_key(profile, cfg), cfg.instructions,
                   [&] { return make_trace_live(profile, cfg); });
    if (replay) {
      return replay;
    }
  }
  return make_trace_live(profile, cfg);
}

std::shared_ptr<const BaselineData> baseline_for(
    const workload::BenchmarkProfile& profile, const ExperimentConfig& cfg,
    const sim::CancellationToken* cancel) {
  BaselineKey key{std::string(profile.name), cfg.l2_latency,
                  cfg.instructions,           cfg.seed,
                  levels_signature(cfg),      tenants_signature(cfg)};
  std::shared_ptr<BaselineSlot> slot;
  {
    std::lock_guard<std::mutex> lock(baseline_mutex());
    std::shared_ptr<BaselineSlot>& entry = baseline_cache()[std::move(key)];
    if (!entry) {
      entry = std::make_shared<BaselineSlot>();
      metrics::count("baseline_cache.miss");
    } else {
      metrics::count("baseline_cache.hit");
    }
    slot = entry;
  }
  std::call_once(slot->once, [&] {
    metrics::ScopedTimer timer("phase.baseline_sim");
    // A cancelled baseline unwinds out of call_once without setting the
    // flag, so the next cell needing this key recomputes it.
    const std::unique_ptr<sim::TraceSource> trace = make_trace(profile, cfg);
    if (cfg.legacy_shape()) {
      const sim::ProcessorConfig pcfg =
          sim::ProcessorConfig::table2(cfg.l2_latency);
      sim::Processor proc(pcfg);
      sim::BaselineDataPort dport(pcfg.l1d, proc.l2(), &proc.activity());
      slot->rec.run = proc.run(*trace, dport, cfg.instructions, cancel);
      slot->rec.activity = proc.activity();
      slot->rec.l1d_miss_rate = dport.cache().stats().miss_rate();
    } else {
      // Explicit hierarchy: stack plain CacheLevels bottom-up with the
      // configured geometries; the I-side shares the level-1 store, as
      // the unified L2 always did.  The Processor's internal L2/I-port
      // go unused (we supply both ports) but keep the core, clock, and
      // activity plumbing identical to the legacy path.
      const std::vector<LevelConfig> lv = cfg.resolved_levels();
      sim::ProcessorConfig pcfg =
          sim::ProcessorConfig::table2(cfg.l2_latency);
      pcfg.l1d = lv[0].geometry;
      pcfg.l2 = lv[1].geometry;
      sim::Processor proc(pcfg);
      sim::MemoryBackend mem(pcfg.memory_latency, &proc.activity());
      std::vector<std::unique_ptr<sim::CacheLevel>> chain;
      sim::BackingStore* below = &mem;
      for (std::size_t i = lv.size(); i-- > 1;) {
        chain.push_back(std::make_unique<sim::CacheLevel>(
            lv[i].geometry, *below, &proc.activity()));
        below = chain.back().get();
      }
      sim::BaselineDataPort dport(lv[0].geometry, *below, &proc.activity());
      sim::InstrPort iport(pcfg.l1i, *below, &proc.activity());
      slot->rec.run =
          proc.run(*trace, dport, iport, cfg.instructions, cancel);
      slot->rec.activity = proc.activity();
      slot->rec.l1d_miss_rate = dport.cache().stats().miss_rate();
    }
  });
  return {slot, &slot->rec};
}

leakctl::ControlledCacheConfig level_controlled_config(
    const ExperimentConfig& cfg, const LevelConfig& level,
    leakctl::LevelRole role) {
  leakctl::ControlledCacheConfig ccfg;
  ccfg.cache = level.geometry;
  ccfg.role = role;
  ccfg.technique = level.control->technique;
  ccfg.policy = level.control->policy;
  ccfg.decay_interval = level.control->decay_interval;
  // Every controlled level of a multi-tenant run keeps per-tenant stats;
  // DecayPolicy::tenant_color additionally partitions its sets.
  ccfg.tenants = cfg.tenants.count;
  if (cfg.faults.enabled) {
    // Scale the raw upset rates to the operating point.  Standby cells sit
    // at the technique's retention voltage: the drowsy supply for drowsy,
    // the full (possibly DVS-lowered) rail for RBB; gated-Vss standby
    // holds no state, so its standby rate is never consulted.
    const hotleakage::TechParams& ftech =
        hotleakage::tech_params(hotleakage::TechNode::nm70);
    const double vdd_op = cfg.vdd > 0.0 ? cfg.vdd : ftech.vdd_nominal;
    const double temp_k = cfg.temperature_c + 273.15;
    const double standby_vdd =
        ccfg.technique.mode == hotleakage::StandbyMode::drowsy
            ? retention_floor_v(ftech)
            : vdd_op;
    ccfg.faults = cfg.faults;
    ccfg.faults.standby_rate_per_bit_cycle =
        cfg.faults.standby_rate_per_bit_cycle *
        hotleakage::cells::sram_seu_scale(ftech, standby_vdd, temp_k);
    ccfg.faults.active_rate_per_bit_cycle =
        cfg.faults.active_rate_per_bit_cycle *
        hotleakage::cells::sram_seu_scale(ftech, vdd_op, temp_k);
  }
  if (cfg.adaptive != ExperimentConfig::AdaptiveScheme::none) {
    // All adaptive schemes observe induced misses through the tags, which
    // must therefore stay awake (paper Sec. 5.4).  Applied to every
    // controlled level: the controller attaches to the outermost one, but
    // a deeper level with decayed tags would blind the same sensors.
    ccfg.technique.decay_tags = false;
  }
  return ccfg;
}

leakctl::ControlledCacheConfig controlled_config(
    const ExperimentConfig& cfg, const sim::ProcessorConfig& pcfg) {
  const LevelConfig legacy_l1{
      .name = "l1d",
      .geometry = pcfg.l1d,
      .control = LevelControl{cfg.technique, cfg.policy, cfg.decay_interval}};
  return level_controlled_config(cfg, legacy_l1, leakctl::LevelRole::l1d);
}

void finish_energy(ExperimentResult& result, const sim::ProcessorConfig& pcfg,
                   const leakctl::ControlledCacheConfig& ccfg,
                   const BaselineData& base,
                   const wattch::Activity& tech_activity) {
  const ExperimentConfig& cfg = result.config;
  metrics::ScopedTimer leakage_timer("phase.leakage_model");
  hotleakage::VariationConfig vcfg;
  vcfg.enabled = cfg.variation;
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70, vcfg);
  const double vdd = cfg.vdd > 0.0 ? cfg.vdd : model.tech().vdd_nominal;
  model.set_operating_point(
      hotleakage::OperatingPoint::at_celsius(cfg.temperature_c, vdd));
  const hotleakage::CacheGeometry geom = leakctl::geometry_of(pcfg.l1d);
  const hotleakage::CacheGeometry l2geom = leakctl::geometry_of(pcfg.l2);
  const wattch::PowerParams power =
      wattch::PowerParams::for_config_at(model.tech(), geom, l2geom, vdd);

  leakctl::RunPair runs;
  runs.base_run = base.run;
  runs.base_activity = base.activity;
  runs.tech_run = result.tech_run;
  runs.tech_activity = tech_activity;
  runs.control = result.control;
  // DVS: the clock follows the supply near-linearly; cycle counts are
  // voltage-independent, so only the seconds-per-cycle change.
  const double clock_hz = pcfg.clock_hz * (vdd / model.tech().vdd_nominal);
  result.energy = leakctl::compute_energy(model, geom, power, ccfg.technique,
                                          runs, clock_hz, ccfg.faults);

  // The per-level rollup for the same machine: a controlled L1-D over a
  // plain L2.  Level 0's totals match result.energy bit for bit (same
  // residency counters against the same sram_power evaluations).
  std::vector<leakctl::LevelInput> inputs(2);
  inputs[0] = {.name = "l1d",
               .geom = geom,
               .controlled = true,
               .technique = ccfg.technique,
               .control = &result.control,
               .faults = ccfg.faults};
  inputs[1] = {.name = "l2", .geom = l2geom};
  result.hierarchy =
      leakctl::compute_hierarchy_energy(model, inputs, runs, power, clock_hz);
}

void finish_energy_levels(ExperimentResult& result,
                          const sim::ProcessorConfig& pcfg,
                          const std::vector<leakctl::LevelInput>& inputs,
                          const BaselineData& base,
                          const wattch::Activity& tech_activity) {
  const ExperimentConfig& cfg = result.config;
  metrics::ScopedTimer leakage_timer("phase.leakage_model");
  hotleakage::VariationConfig vcfg;
  vcfg.enabled = cfg.variation;
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70, vcfg);
  const double vdd = cfg.vdd > 0.0 ? cfg.vdd : model.tech().vdd_nominal;
  model.set_operating_point(
      hotleakage::OperatingPoint::at_celsius(cfg.temperature_c, vdd));
  const wattch::PowerParams power = wattch::PowerParams::for_config_at(
      model.tech(), inputs[0].geom, inputs[1].geom, vdd);

  leakctl::RunPair runs;
  runs.base_run = base.run;
  runs.base_activity = base.activity;
  runs.tech_run = result.tech_run;
  runs.tech_activity = tech_activity;
  runs.control = result.control;
  const double clock_hz = pcfg.clock_hz * (vdd / model.tech().vdd_nominal);
  result.hierarchy =
      leakctl::compute_hierarchy_energy(model, inputs, runs, power, clock_hz);

  // The flat, figure-facing view stays level-0-centric.  A controlled
  // outermost level gets the classic breakdown; a plain one maps its
  // LevelEnergy into the flat shape (net goes negative by the runtime
  // cost — the right answer when only a deeper level is controlled).
  if (inputs[0].controlled) {
    result.energy =
        leakctl::compute_energy(model, inputs[0].geom, power,
                                inputs[0].technique, runs, clock_hz,
                                inputs[0].faults);
  } else {
    const leakctl::LevelEnergy& l0 = result.hierarchy.levels[0];
    leakctl::EnergyBreakdown e;
    e.baseline_leakage_j = l0.baseline_leakage_j;
    e.technique_leakage_j = l0.technique_leakage_j;
    e.extra_dynamic_j = result.hierarchy.extra_dynamic_j;
    e.gross_savings_j = e.baseline_leakage_j - e.technique_leakage_j;
    e.net_savings_j = e.gross_savings_j - e.extra_dynamic_j;
    e.net_savings_frac = e.baseline_leakage_j > 0.0
                             ? e.net_savings_j / e.baseline_leakage_j
                             : 0.0;
    e.perf_loss_frac =
        runs.base_run.cycles
            ? (static_cast<double>(runs.tech_run.cycles) -
               static_cast<double>(runs.base_run.cycles)) /
                  static_cast<double>(runs.base_run.cycles)
            : 0.0;
    result.energy = e;
  }
}

} // namespace detail

void clear_baseline_cache() {
  std::lock_guard<std::mutex> lock(baseline_mutex());
  // In-flight experiments keep their slots alive via shared_ptr.
  baseline_cache().clear();
}

std::size_t baseline_cache_size() {
  std::lock_guard<std::mutex> lock(baseline_mutex());
  return baseline_cache().size();
}

std::vector<LevelConfig> ExperimentConfig::legacy_levels() const {
  const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(l2_latency);
  std::vector<LevelConfig> lv(2);
  lv[0] = {.name = "l1d",
           .geometry = pcfg.l1d,
           .control = LevelControl{technique, policy, decay_interval}};
  lv[1] = {.name = "l2", .geometry = pcfg.l2};
  return lv;
}

std::vector<LevelConfig> ExperimentConfig::resolved_levels() const {
  return levels.empty() ? legacy_levels() : levels;
}

bool ExperimentConfig::legacy_shape() const {
  return levels.empty() || levels == legacy_levels();
}

void ExperimentConfig::set_l1_decay_interval(uint64_t interval) {
  decay_interval = interval;
  if (!levels.empty() && levels[0].control) {
    levels[0].control->decay_interval = interval;
  }
}

void ExperimentConfig::validate() const {
  if (instructions == 0) {
    throw std::invalid_argument(
        "ExperimentConfig::instructions must be nonzero");
  }
  if (l2_latency == 0) {
    throw std::invalid_argument("ExperimentConfig::l2_latency must be nonzero");
  }
  if (decay_interval == 0 || decay_interval % 4 != 0) {
    throw std::invalid_argument(
        "ExperimentConfig::decay_interval must be a nonzero multiple of 4 "
        "(the epoch quantization), got " +
        std::to_string(decay_interval));
  }
  // The cache geometries this experiment will instantiate (Table 2 at the
  // requested L2 latency) must be coherent before they reach the hot path:
  // sim::CacheConfig::validate() names the offending field instead of
  // letting a zero-set geometry surface as a divide deep in the simulator.
  {
    const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(l2_latency);
    pcfg.l1d.validate();
    pcfg.l1i.validate();
    pcfg.l2.validate();
  }
  const hotleakage::TechParams& tech =
      hotleakage::tech_params(hotleakage::TechNode::nm70);
  const double floor_v = retention_floor_v(tech);
  if (vdd > 0.0 && vdd < floor_v) {
    throw std::invalid_argument(
        "ExperimentConfig::vdd = " + std::to_string(vdd) +
        " V is below the 70 nm retention floor of " + std::to_string(floor_v) +
        " V (cells cannot hold state)");
  }
  if (faults.standby_rate_per_bit_cycle < 0.0 ||
      faults.standby_rate_per_bit_cycle > 1.0) {
    throw std::invalid_argument(
        "ExperimentConfig::faults.standby_rate_per_bit_cycle must be a "
        "probability in [0, 1]");
  }
  if (faults.active_rate_per_bit_cycle < 0.0 ||
      faults.active_rate_per_bit_cycle > 1.0) {
    throw std::invalid_argument(
        "ExperimentConfig::faults.active_rate_per_bit_cycle must be a "
        "probability in [0, 1]");
  }
  if (!levels.empty()) {
    if (levels.size() < 2) {
      throw std::invalid_argument(
          "ExperimentConfig::levels must describe at least two levels "
          "(levels[0] = the L1-D, levels[1] = its backing cache); got " +
          std::to_string(levels.size()));
    }
    bool any_control = false;
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const LevelConfig& lv = levels[i];
      const std::string where =
          "ExperimentConfig::levels[" + std::to_string(i) + "]" +
          (lv.name.empty() ? std::string() : " (" + lv.name + ")");
      try {
        lv.geometry.validate();
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(where + ".geometry: " + e.what());
      }
      if (lv.control) {
        any_control = true;
        const uint64_t di = lv.control->decay_interval;
        if (di == 0 || di % 4 != 0) {
          throw std::invalid_argument(
              where +
              ".control->decay_interval must be a nonzero multiple of 4 "
              "(the epoch quantization), got " +
              std::to_string(di));
        }
      }
      if (i > 0) {
        const LevelConfig& outer = levels[i - 1];
        if (lv.geometry.line_bytes != outer.geometry.line_bytes) {
          throw std::invalid_argument(
              where + ".geometry.line_bytes = " +
              std::to_string(lv.geometry.line_bytes) +
              " contradicts ExperimentConfig::levels[" +
              std::to_string(i - 1) + "].geometry.line_bytes = " +
              std::to_string(outer.geometry.line_bytes) +
              " (victim writebacks map whole lines between levels)");
        }
        if (lv.geometry.size_bytes < outer.geometry.size_bytes) {
          throw std::invalid_argument(
              where + ".geometry.size_bytes = " +
              std::to_string(lv.geometry.size_bytes) +
              " is smaller than the ExperimentConfig::levels[" +
              std::to_string(i - 1) + "].geometry.size_bytes = " +
              std::to_string(outer.geometry.size_bytes) +
              " it backs (an inner level cannot be smaller than the outer)");
        }
      }
    }
    if (!any_control) {
      throw std::invalid_argument(
          "ExperimentConfig::levels: at least one level must carry control "
          "(a fully uncontrolled hierarchy is just the baseline; use the "
          "flat fields for that)");
    }
  }

  // --- multi-tenant setup ---
  if (!tenants.enabled()) {
    if (!tenants.co_benchmarks.empty()) {
      throw std::invalid_argument(
          "ExperimentConfig::tenants.co_benchmarks is set but "
          "tenants.count == 0 (multi-tenant interleaving is off; set "
          "tenants.count to enable it)");
    }
    if (!tenants.tenant_tags.empty()) {
      throw std::invalid_argument(
          "ExperimentConfig::tenants.tenant_tags is set but "
          "tenants.count == 0 (multi-tenant interleaving is off; set "
          "tenants.count to enable it)");
    }
  } else {
    if (tenants.count > sim::kMaxTenants) {
      throw std::invalid_argument(
          "ExperimentConfig::tenants.count = " + std::to_string(tenants.count) +
          " exceeds the " + std::to_string(sim::kMaxTenants) +
          "-tenant address-tag budget (sim/tenant.h)");
    }
    if (tenants.quantum == 0) {
      throw std::invalid_argument(
          "ExperimentConfig::tenants.quantum must be a positive "
          "committed-instruction count, got 0");
    }
    for (const std::string& b : tenants.co_benchmarks) {
      try {
        workload::profile_by_name(b);
      } catch (const std::out_of_range&) {
        throw std::invalid_argument(
            "ExperimentConfig::tenants.co_benchmarks names unknown "
            "benchmark '" + b + "'");
      }
    }
    if (!tenants.tenant_tags.empty()) {
      if (tenants.tenant_tags.size() != tenants.count) {
        throw std::invalid_argument(
            "ExperimentConfig::tenants.tenant_tags has " +
            std::to_string(tenants.tenant_tags.size()) +
            " entries but tenants.count = " + std::to_string(tenants.count) +
            " (it must be a permutation of [0, count) or empty)");
      }
      std::vector<bool> seen(tenants.count, false);
      for (const unsigned tag : tenants.tenant_tags) {
        if (tag >= tenants.count || seen[tag]) {
          throw std::invalid_argument(
              "ExperimentConfig::tenants.tenant_tags must be a permutation "
              "of [0, " + std::to_string(tenants.count) + "); tag " +
              std::to_string(tag) +
              (tag < tenants.count ? " repeats" : " is out of range"));
        }
        seen[tag] = true;
      }
    }
  }
  // DecayPolicy::tenant_color placement: only on a shared (non-outermost)
  // level of an explicit hierarchy, with enough tenants and colors.
  if (policy == leakctl::DecayPolicy::tenant_color && levels.empty()) {
    throw std::invalid_argument(
        "ExperimentConfig::policy = tenant_color needs an explicit "
        "ExperimentConfig::levels list: coloring set-partitions a *shared* "
        "level (e.g. the L2), never the flat L1-only shape");
  }
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (!levels[i].control ||
        levels[i].control->policy != leakctl::DecayPolicy::tenant_color) {
      continue;
    }
    const std::string where =
        "ExperimentConfig::levels[" + std::to_string(i) + "]" +
        (levels[i].name.empty() ? std::string()
                                : " (" + levels[i].name + ")");
    if (i == 0) {
      throw std::invalid_argument(
          where + ".control->policy = tenant_color, but the outermost "
          "level is the core's private L1-D; coloring partitions a shared "
          "level (levels[1] or deeper)");
    }
    if (tenants.count < 2) {
      throw std::invalid_argument(
          where + ".control->policy = tenant_color requires "
          "ExperimentConfig::tenants.count >= 2 (got " +
          std::to_string(tenants.count) +
          "): there is nothing to partition among fewer than two tenants");
    }
    const std::size_t sets = levels[i].geometry.sets();
    if (tenants.count > sets) {
      throw std::invalid_argument(
          where + ": ExperimentConfig::tenants.count = " +
          std::to_string(tenants.count) + " exceeds the level's " +
          std::to_string(sets) +
          " sets — no colors left to hand every tenant");
    }
  }
}

ExperimentResult run_experiment(const workload::BenchmarkProfile& profile,
                                const ExperimentConfig& cfg) {
  return run_experiment(profile, cfg, nullptr);
}

namespace {

/// Attach the configured adaptive controller to @p target for the run's
/// lifetime.  The controllers are owned by the caller's frame; attach()
/// installs hooks into the cache, so they must outlive the simulation.
struct AdaptiveControllers {
  leakctl::FeedbackController feedback;
  leakctl::AdaptiveModeControl amc;
  leakctl::PerLineAdaptiveController per_line;

  AdaptiveControllers(const ExperimentConfig& cfg)
      : feedback(cfg.feedback), amc(cfg.amc), per_line(cfg.per_line) {}

  void attach(ExperimentConfig::AdaptiveScheme scheme,
              leakctl::ControlledCache& target) {
    switch (scheme) {
    case ExperimentConfig::AdaptiveScheme::feedback:
      feedback.attach(target);
      break;
    case ExperimentConfig::AdaptiveScheme::amc:
      amc.attach(target);
      break;
    case ExperimentConfig::AdaptiveScheme::per_line:
      per_line.attach(target);
      break;
    case ExperimentConfig::AdaptiveScheme::none:
      break;
    }
  }
};

/// The explicit-hierarchy technique run: stack controlled / plain levels
/// bottom-up over memory, run the trace, and roll up per-level energy.
void run_hierarchy_experiment(const workload::BenchmarkProfile& profile,
                              const ExperimentConfig& cfg,
                              const detail::BaselineData& base,
                              ExperimentResult& result,
                              const sim::CancellationToken* cancel) {
  const std::vector<LevelConfig> lv = cfg.resolved_levels();
  sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(cfg.l2_latency);
  pcfg.l1d = lv[0].geometry;
  pcfg.l2 = lv[1].geometry;
  sim::Processor proc(pcfg);
  sim::MemoryBackend mem(pcfg.memory_latency, &proc.activity());

  // Levels N-1 .. 1 as BackingStores, bottom-up; level 0 is the DataPort.
  std::vector<std::unique_ptr<sim::BackingStore>> chain;
  std::vector<leakctl::ControlledCache*> controlled(lv.size(), nullptr);
  std::vector<leakctl::ControlledCacheConfig> ccfgs(lv.size());
  sim::BackingStore* below = &mem;
  for (std::size_t i = lv.size(); i-- > 1;) {
    if (lv[i].control) {
      ccfgs[i] =
          detail::level_controlled_config(cfg, lv[i], leakctl::LevelRole::l2);
      auto cc = std::make_unique<leakctl::ControlledCache>(ccfgs[i], *below,
                                                           &proc.activity());
      controlled[i] = cc.get();
      below = cc.get();
      chain.push_back(std::move(cc));
    } else {
      auto cl = std::make_unique<sim::CacheLevel>(lv[i].geometry, *below,
                                                  &proc.activity());
      below = cl.get();
      chain.push_back(std::move(cl));
    }
  }
  sim::BackingStore& level1 = *below;

  std::unique_ptr<leakctl::ControlledCache> l1_controlled;
  std::unique_ptr<sim::BaselineDataPort> l1_plain;
  sim::DataPort* dport = nullptr;
  if (lv[0].control) {
    ccfgs[0] =
        detail::level_controlled_config(cfg, lv[0], leakctl::LevelRole::l1d);
    l1_controlled = std::make_unique<leakctl::ControlledCache>(
        ccfgs[0], level1, &proc.activity());
    controlled[0] = l1_controlled.get();
    dport = l1_controlled.get();
  } else {
    l1_plain = std::make_unique<sim::BaselineDataPort>(lv[0].geometry, level1,
                                                       &proc.activity());
    dport = l1_plain.get();
  }
  // The I-side shares the level-1 store, as the unified L2 always did —
  // so I-fetch misses genuinely warm (and wake) a controlled L2.
  sim::InstrPort iport(pcfg.l1i, level1, &proc.activity());

  // Adaptive controllers observe the outermost controlled level.
  AdaptiveControllers adaptive(cfg);
  for (leakctl::ControlledCache* cc : controlled) {
    if (cc != nullptr) {
      adaptive.attach(cfg.adaptive, *cc);
      break;
    }
  }

  const std::unique_ptr<sim::TraceSource> trace =
      detail::make_trace(profile, cfg);
  {
    metrics::ScopedTimer sim_timer("phase.simulation");
    result.tech_run =
        proc.run(*trace, *dport, iport, cfg.instructions, cancel);
  }
  for (leakctl::ControlledCache* cc : controlled) {
    if (cc != nullptr) {
      cc->finalize(result.tech_run.cycles);
    }
  }
  result.control = controlled[0] != nullptr ? controlled[0]->stats()
                                            : leakctl::ControlStats{};
  // The fairness breakdown comes from the deepest controlled level — in a
  // multi-tenant setup that is the shared one (empty when tenants is off).
  for (std::size_t i = lv.size(); i-- > 0;) {
    if (controlled[i] != nullptr) {
      result.tenants = controlled[i]->tenant_stats();
      break;
    }
  }

  std::vector<leakctl::LevelInput> inputs(lv.size());
  for (std::size_t i = 0; i < lv.size(); ++i) {
    inputs[i].name = lv[i].name.empty() ? "level" + std::to_string(i)
                                        : lv[i].name;
    inputs[i].geom = leakctl::geometry_of(lv[i].geometry);
    if (controlled[i] != nullptr) {
      inputs[i].controlled = true;
      inputs[i].technique = ccfgs[i].technique;
      inputs[i].control = &controlled[i]->stats();
      inputs[i].faults = ccfgs[i].faults;
    }
  }
  detail::finish_energy_levels(result, pcfg, inputs, base, proc.activity());
}

} // namespace

ExperimentResult run_experiment(const workload::BenchmarkProfile& profile,
                                const ExperimentConfig& cfg,
                                const sim::CancellationToken* cancel) {
  cfg.validate();
  metrics::ScopedTimer experiment_timer("phase.experiment");
  metrics::count("experiments.run");
  ExperimentResult result;
  result.benchmark = std::string(profile.name);
  result.config = cfg;

  const std::shared_ptr<const detail::BaselineData> base =
      detail::baseline_for(profile, cfg, cancel);
  result.base_run = base->run;
  result.base_l1d_miss_rate = base->l1d_miss_rate;

  if (!cfg.legacy_shape()) {
    run_hierarchy_experiment(profile, cfg, *base, result, cancel);
    return result;
  }

  // Legacy shape: identical machine + instruction stream, controlled L1D.
  // This path is byte-for-byte the pre-LevelConfig code so legacy-shaped
  // configs stay bit-identical across the API redesign.
  const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(cfg.l2_latency);
  sim::Processor proc(pcfg);
  const leakctl::ControlledCacheConfig ccfg =
      detail::controlled_config(cfg, pcfg);
  leakctl::ControlledCache dport(ccfg, proc.l2(), &proc.activity());
  AdaptiveControllers adaptive(cfg);
  adaptive.attach(cfg.adaptive, dport);
  const std::unique_ptr<sim::TraceSource> trace =
      detail::make_trace(profile, cfg);
  {
    metrics::ScopedTimer sim_timer("phase.simulation");
    result.tech_run = proc.run(*trace, dport, cfg.instructions, cancel);
  }
  dport.finalize(result.tech_run.cycles);
  result.control = dport.stats();
  result.tenants = dport.tenant_stats();

  // Energy accounting at the experiment's operating point.
  detail::finish_energy(result, pcfg, ccfg, *base, proc.activity());
  return result;
}

const ExperimentResult* SuiteResult::find(std::string_view benchmark) const {
  for (const ExperimentResult& r : results_) {
    if (r.benchmark == benchmark) {
      return &r;
    }
  }
  return nullptr;
}

const ExperimentResult& SuiteResult::at(std::string_view benchmark) const {
  const ExperimentResult* r = find(benchmark);
  if (r == nullptr) {
    throw std::out_of_range("SuiteResult::at: no benchmark named '" +
                            std::string(benchmark) + "' in this suite");
  }
  return *r;
}

double SuiteResult::mean_net_savings() const {
  return averages().net_savings;
}

double SuiteResult::mean_slowdown() const { return averages().perf_loss; }

double SuiteResult::mean_turnoff() const { return averages().turnoff; }

SuiteAverages SuiteResult::averages() const {
  return harness::averages(results_);
}

SuiteAverages averages(const SuiteResult& suite) { return suite.averages(); }

SuiteResult run_suite(const ExperimentConfig& cfg) {
  return run_suite(cfg, SweepOptions{}); // engine-backed, quiet
}

IntervalSweepResult best_interval_sweep(
    const workload::BenchmarkProfile& profile, ExperimentConfig cfg,
    const std::vector<uint64_t>& intervals) {
  SweepRunner runner;
  for (const uint64_t interval : intervals) {
    cfg.set_l1_decay_interval(interval);
    runner.submit(profile, cfg);
  }
  std::vector<ExperimentResult> results = values(runner.run());

  IntervalSweepResult out;
  for (std::size_t k = 0; k < intervals.size(); ++k) {
    ExperimentResult& r = results[k];
    if (k == 0 ||
        r.energy.net_savings_frac > out.best.energy.net_savings_frac) {
      out.best = r;
      out.best_interval = intervals[k];
    }
    out.sweep.push_back(std::move(r));
  }
  return out;
}

std::vector<uint64_t> paper_interval_grid() {
  return {1024, 2048, 4096, 8192, 16384, 32768, 65536};
}

SuiteAverages averages(const std::vector<ExperimentResult>& results) {
  SuiteAverages avg;
  if (results.empty()) {
    return avg;
  }
  for (const ExperimentResult& r : results) {
    avg.net_savings += r.energy.net_savings_frac;
    avg.perf_loss += r.energy.perf_loss_frac;
    avg.turnoff += r.energy.turnoff_ratio;
  }
  const double n = static_cast<double>(results.size());
  avg.net_savings /= n;
  avg.perf_loss /= n;
  avg.turnoff /= n;
  return avg;
}

} // namespace harness
