// Batched multi-config experiment executor.
//
// One pass over a benchmark's trace drives K decay configurations
// simultaneously: the trace is generated once, each address is
// decomposed into (set, tag) once, and the access fans into K
// leakage-controlled cache replicas riding the lockstep core engine
// (sim/lockstep.h).  Every lane produces an ExperimentResult
// bit-identical to what a scalar run_experiment of the same config
// would return — the lockstep engine shares only stream-determined
// state (see the invariant notes in sim/lockstep.h), and the
// baseline/config/energy derivations are the same detail:: helpers the
// scalar path uses.
//
// Sharing constraints: all configs in a batch must agree on the
// instruction stream, i.e. (benchmark, instructions, seed).  The L2
// latency MAY differ per lane — each lane owns its L2 — which is what
// makes the paper's (interval x L2-latency) product grid batchable as
// one pass.  Configs the lockstep pass cannot share fall back to the
// scalar path (see batchable() below); SweepRunner handles that
// fallback transparently.
#pragma once

#include <vector>

#include "harness/experiment.h"

namespace harness {

/// True when @p cfg can share a lockstep trace pass with siblings:
/// fault injection draws per-access randomness the scalar path
/// interleaves differently, adaptive schemes retune the decay
/// interval through callbacks the lockstep loop does not route, and
/// explicit-hierarchy cells (non-legacy_shape LevelConfig lists) stack
/// controlled levels the lockstep lanes do not model, and multi-tenant
/// cells (TenantConfig::enabled) need the original addresses for tenant
/// decode and coloring remap, which the decompose-once lockstep loop
/// discards — so all four run scalar.
bool batchable(const ExperimentConfig& cfg);

/// Executor for one batch: a benchmark profile plus K batchable
/// configs sharing (instructions, seed).  run() performs the single
/// lockstep trace pass and returns one result per config, in config
/// order.  Construction validates the batch shape; run() may be
/// called once.
class BatchedExperiment {
public:
  /// @throws std::invalid_argument when a config is not batchable or
  /// the configs disagree on instructions/seed.
  BatchedExperiment(const workload::BenchmarkProfile& profile,
                    std::vector<ExperimentConfig> cfgs);

  /// One trace pass, K results.  @p cancel is polled at the same epoch
  /// boundaries as the scalar loop; cancellation aborts the whole
  /// batch with sim::CancelledError.
  std::vector<ExperimentResult> run(
      const sim::CancellationToken* cancel = nullptr);

  std::size_t size() const { return cfgs_.size(); }

private:
  const workload::BenchmarkProfile& profile_;
  std::vector<ExperimentConfig> cfgs_;
};

} // namespace harness
