// Dependency-free JSON document model: build a tree of Values, dump it
// as RFC 8259 text, parse it back.  This is the substrate for the
// machine-readable result export (see harness/report_json.h) and is kept
// deliberately small — no allocator tricks, no SAX interface, just a
// tagged union with an order-preserving object.
//
// Policies:
//  - Objects preserve insertion order, so a dumped report is stable and
//    diffable across runs.
//  - Numbers are doubles.  Integral values with magnitude below 2^53 are
//    printed without a decimal point; everything else uses the shortest
//    round-trippable representation (std::to_chars).
//  - JSON has no NaN/Infinity: non-finite numbers serialize as null (the
//    same policy as Python's json with allow_nan=False would *reject*;
//    we degrade to null so a single bad metric cannot sink a report).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace harness::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered object (linear key lookup; report objects are small).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {} // NOLINT(google-explicit-constructor)
  Value(bool b) : v_(b) {}               // NOLINT(google-explicit-constructor)
  Value(double d) : v_(d) {}             // NOLINT(google-explicit-constructor)
  // One constructor per standard integer width so uint64_t / size_t /
  // unsigned long long all convert without ambiguity.
  Value(int i) : v_(static_cast<double>(i)) {}                // NOLINT
  Value(unsigned u) : v_(static_cast<double>(u)) {}           // NOLINT
  Value(long i) : v_(static_cast<double>(i)) {}               // NOLINT
  Value(unsigned long u) : v_(static_cast<double>(u)) {}      // NOLINT
  Value(long long i) : v_(static_cast<double>(i)) {}          // NOLINT
  Value(unsigned long long u) : v_(static_cast<double>(u)) {} // NOLINT
  Value(const char* s) : v_(std::string(s)) {}      // NOLINT
  Value(std::string s) : v_(std::move(s)) {}        // NOLINT
  Value(std::string_view s) : v_(std::string(s)) {} // NOLINT
  Value(Array a) : v_(std::move(a)) {}              // NOLINT
  Value(Object o) : v_(std::move(o)) {}             // NOLINT

  static Value array() { return Value(Array{}); }
  static Value object() { return Value(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field access.  operator[] inserts (making this an object if
  /// null); at() throws std::runtime_error when the key is missing.
  Value& operator[](std::string_view key);
  const Value& at(std::string_view key) const;
  bool contains(std::string_view key) const;

  /// Array element access (at() throws std::runtime_error out of range).
  const Value& at(std::size_t i) const;
  void push_back(Value v);

  /// Elements of an array / members of an object / 0 for scalars.
  std::size_t size() const;

  /// Serialize.  indent < 0: compact one-liner; indent >= 0: pretty-print
  /// with that many spaces per level.
  std::string dump(int indent = -1) const;
  void write(std::ostream& os, int indent = -1) const;

  /// Parse a complete JSON document; throws std::runtime_error naming the
  /// byte offset on malformed input (including trailing garbage).
  static Value parse(std::string_view text);

private:
  void write_impl(std::ostream& os, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Append @p s to @p out as a quoted JSON string with all mandatory
/// escapes (quote, backslash, control characters).
void escape_string(std::string_view s, std::string& out);

} // namespace harness::json
