#include "harness/sweep.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <tuple>

#include "harness/batched.h"
#include "harness/env.h"
#include "harness/journal.h"
#include "harness/metrics.h"
#include "harness/report_json.h"
#include "harness/experiment_detail.h"
#include "workload/arena.h"
#include "workload/generator.h"

namespace harness {
namespace {

using Clock = std::chrono::steady_clock;

/// HLCC_PROGRESS: unset = live line only on a terminal, "0" = fully
/// quiet, anything else = live line even when stderr is redirected.
enum class ProgressEnv { dflt, off, forced };

ProgressEnv progress_env() {
  const char* env = std::getenv("HLCC_PROGRESS");
  if (env == nullptr) {
    return ProgressEnv::dflt;
  }
  return std::string_view(env) == "0" ? ProgressEnv::off
                                      : ProgressEnv::forced;
}

/// Serializes the cells/sec + ETA line on stderr.  All workers funnel
/// through tick(); the live line is throttled and terminal-gated, the
/// final summary is printed once by finish().
class ProgressReporter {
public:
  ProgressReporter(const SweepOptions& opts, std::size_t total,
                   unsigned threads)
      : total_(total), threads_(threads), label_(opts.label),
        start_(Clock::now()) {
    const ProgressEnv env = progress_env();
    enabled_ = opts.progress && env != ProgressEnv::off;
    live_ = enabled_ &&
            (env == ProgressEnv::forced || isatty(STDERR_FILENO) != 0);
  }

  void tick() {
    if (!enabled_) {
      done_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!live_) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const Clock::time_point now = Clock::now();
    if (done < total_ && now - last_print_ < std::chrono::milliseconds(100)) {
      return;
    }
    last_print_ = now;
    const double secs = elapsed_s(now);
    const double rate = secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
    const double eta = rate > 0.0
                           ? static_cast<double>(total_ - done) / rate
                           : 0.0;
    std::fprintf(stderr, "\r[%s] %zu/%zu cells | %.1f cells/s | ETA %.0f s ",
                 label_.c_str(), done, total_, rate, eta);
    if (done == total_) {
      std::fprintf(stderr, "\n");
    }
    std::fflush(stderr);
  }

  /// One-line throughput summary (also lands in redirected CI logs).
  void finish() const {
    if (!enabled_) {
      return;
    }
    const double secs = elapsed_s(Clock::now());
    const double rate = secs > 0.0 ? static_cast<double>(total_) / secs : 0.0;
    std::fprintf(stderr,
                 "[%s] %zu cells in %.2f s on %u thread%s (%.1f cells/s)\n",
                 label_.c_str(), total_, secs, threads_,
                 threads_ == 1 ? "" : "s", rate);
  }

private:
  double elapsed_s(Clock::time_point now) const {
    return std::chrono::duration<double>(now - start_).count();
  }

  std::size_t total_;
  unsigned threads_;
  std::string label_;
  Clock::time_point start_;
  bool enabled_ = false;
  bool live_ = false;
  std::atomic<std::size_t> done_{0};
  std::mutex mu_;
  Clock::time_point last_print_ = start_;
};

/// The cooperative timeout enforcer: one slot per worker holds the
/// token and deadline of that worker's in-flight attempt, and a single
/// scanner thread cancels any token past its deadline.  The simulation
/// notices at its next epoch boundary and unwinds with CancelledError —
/// the worker thread survives to take the next cell.
class Watchdog {
public:
  Watchdog(double timeout_s, unsigned workers)
      : timeout_s_(timeout_s), slots_(workers) {
    // Scan at a fraction of the budget so overshoot stays small, but
    // never busy-spin on microscopic timeouts.
    const auto poll = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(timeout_s / 8.0));
    poll_ = std::max<Clock::duration>(poll, std::chrono::milliseconds(5));
    poll_ = std::min<Clock::duration>(poll_, std::chrono::milliseconds(500));
    scanner_ = std::thread([this] { scan_loop(); });
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    scanner_.join();
  }

  /// @p weight scales this attempt's budget (a K-lane batch unit gets
  /// K times the per-cell timeout).
  void arm(unsigned worker, sim::CancellationToken* token, double weight) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[worker].token = token;
    slots_[worker].deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout_s_ * weight));
  }

  void disarm(unsigned worker) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[worker].token = nullptr;
  }

private:
  struct Slot {
    sim::CancellationToken* token = nullptr;
    Clock::time_point deadline;
  };

  void scan_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, poll_);
      const Clock::time_point now = Clock::now();
      for (Slot& slot : slots_) {
        if (slot.token != nullptr && now >= slot.deadline) {
          slot.token->cancel();
          metrics::count("sweep.watchdog_cancels");
        }
      }
    }
  }

  double timeout_s_;
  Clock::duration poll_;
  std::vector<Slot> slots_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread scanner_;
};

/// One worker's fault-isolated attempt loop for cell @p i.
void execute_cell(
    std::size_t i, unsigned worker_id,
    const std::function<void(std::size_t, const sim::CancellationToken&)>&
        body,
    unsigned max_attempts, const RetryPolicy& retry, Watchdog* watchdog,
    double timeout_weight, CellRun& out, double& worker_busy_s) {
  double duration_s = 0.0;
  for (unsigned attempt = 1;; ++attempt) {
    sim::CancellationToken token;
    if (watchdog != nullptr) {
      watchdog->arm(worker_id, &token, timeout_weight);
    }
    std::exception_ptr error;
    metrics::ScopedTimer cell_timer("phase.sweep_cell");
    try {
      body(i, token);
    } catch (...) {
      error = std::current_exception();
    }
    cell_timer.stop();
    if (watchdog != nullptr) {
      watchdog->disarm(worker_id);
    }
    duration_s += cell_timer.elapsed_s();
    worker_busy_s += cell_timer.elapsed_s();

    if (!error) {
      out.info.status = CellStatus::ok;
      out.info.error_kind = CellErrorKind::none;
      out.info.attempts = attempt;
      break;
    }
    const CellErrorKind kind = classify_cell_error(error);
    if (cell_error_retryable(kind) && attempt < max_attempts) {
      metrics::count("sweep.retries");
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry_backoff_ms(retry, attempt + 1)));
      continue;
    }
    out.info.status = kind == CellErrorKind::timeout ? CellStatus::timed_out
                                                     : CellStatus::failed;
    out.info.error_kind = kind;
    out.info.error = describe_cell_error(error);
    out.info.attempts = attempt;
    out.exception = error;
    break;
  }
  out.info.duration_s = duration_s;
}

} // namespace

namespace {

/// env::positive_u64 narrowed to unsigned, with the variable named in
/// the out-of-range error just like in the parse errors.
unsigned positive_env_unsigned(const std::string& name,
                               const std::string& what) {
  const std::optional<uint64_t> v = env::positive_u64(name, what);
  if (!v) {
    return 0; // unset; caller's default applies
  }
  if (*v > std::numeric_limits<unsigned>::max()) {
    throw std::invalid_argument(name + " must be a " + what + ", got \"" +
                                std::to_string(*v) + "\"");
  }
  return static_cast<unsigned>(*v);
}

} // namespace

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) {
    return requested;
  }
  // Strict parse (harness/env.h): junk ("abc", "3x", ""), zero, and
  // negatives are configuration errors, not an invitation to silently
  // fall back to the hardware default.
  if (const unsigned v = positive_env_unsigned(
          "HLCC_THREADS", "positive integer thread count")) {
    return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

unsigned resolve_max_attempts(const RetryPolicy& retry) {
  if (retry.max_attempts > 0) {
    return retry.max_attempts;
  }
  if (const unsigned v = positive_env_unsigned(
          "HLCC_RETRIES", "positive integer attempt budget")) {
    return v;
  }
  return 1;
}

double resolve_cell_timeout_s(double requested) {
  if (requested < 0.0) {
    throw std::invalid_argument(
        "SweepOptions::cell_timeout_s must be >= 0, got " +
        std::to_string(requested));
  }
  if (requested > 0.0) {
    return requested;
  }
  return env::positive_double("HLCC_CELL_TIMEOUT",
                              "positive number of seconds")
      .value_or(0.0);
}

unsigned resolve_batch_limit(unsigned requested) {
  if (requested > 0) {
    return requested;
  }
  if (const unsigned v = positive_env_unsigned(
          "HLCC_BATCH", "positive integer batch lane cap")) {
    return v;
  }
  return 16; // auto: see the header note on diminishing returns
}

std::string resolve_journal_path(const std::string& requested) {
  if (!requested.empty()) {
    return requested;
  }
  if (const char* env = std::getenv("HLCC_RESUME")) {
    return env;
  }
  return {};
}

unsigned retry_backoff_ms(const RetryPolicy& retry, unsigned next_attempt) {
  // Deterministic capped exponential: 1x base before attempt 2, 2x
  // before attempt 3, 4x before attempt 4, ...
  if (next_attempt <= 2) {
    return std::min(retry.base_backoff_ms, retry.max_backoff_ms);
  }
  const unsigned shift = std::min(next_attempt - 2, 31u);
  const unsigned long long scaled =
      static_cast<unsigned long long>(retry.base_backoff_ms) << shift;
  return static_cast<unsigned>(
      std::min<unsigned long long>(scaled, retry.max_backoff_ms));
}

namespace detail {

std::vector<CellRun> for_cells(
    std::size_t count,
    const std::function<void(std::size_t, const sim::CancellationToken&)>&
        body,
    const SweepOptions& opts,
    const std::function<void(std::size_t, const CellRun&)>& on_cell_done,
    const std::function<double(std::size_t)>& timeout_weight) {
  std::vector<CellRun> runs(count);
  if (count == 0) {
    return runs;
  }
  const unsigned threads = static_cast<unsigned>(std::min<std::size_t>(
      resolve_thread_count(opts.threads), count));
  const unsigned max_attempts = resolve_max_attempts(opts.retry);
  const double timeout_s = resolve_cell_timeout_s(opts.cell_timeout_s);
  ProgressReporter progress(opts, count, threads);

  // Observability: the registry receives the pool shape up front and the
  // throughput numbers after the drain, so a --json report carries the
  // same cells/sec the progress line shows.
  metrics::set_gauge("sweep.queue_depth", static_cast<double>(count));
  metrics::set_gauge("sweep.threads", threads);
  metrics::count("sweep.cells", count);
  const Clock::time_point sweep_start = Clock::now();
  std::vector<double> worker_busy_s(threads, 0.0);

  std::unique_ptr<Watchdog> watchdog;
  if (timeout_s > 0.0) {
    watchdog = std::make_unique<Watchdog>(timeout_s, threads);
  }

  const auto run_one = [&](std::size_t i, unsigned worker_id) {
    const double weight = timeout_weight ? timeout_weight(i) : 1.0;
    execute_cell(i, worker_id, body, max_attempts, opts.retry,
                 watchdog.get(), weight, runs[i], worker_busy_s[worker_id]);
    if (on_cell_done) {
      on_cell_done(i, runs[i]);
    }
    progress.tick();
  };

  if (threads == 1) {
    // Inline serial path: the reference the parallel path must match.
    for (std::size_t i = 0; i < count; ++i) {
      run_one(i, 0);
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&](unsigned worker_id) {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
          return;
        }
        run_one(i, worker_id);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  const double wall_s =
      std::chrono::duration<double>(Clock::now() - sweep_start).count();
  metrics::record_time("phase.sweep", wall_s);
  if (wall_s > 0.0) {
    metrics::set_gauge("sweep.cells_per_sec",
                       static_cast<double>(count) / wall_s);
    double busy_total = 0.0;
    for (unsigned t = 0; t < threads; ++t) {
      busy_total += worker_busy_s[t];
      metrics::set_gauge("sweep.worker." + std::to_string(t) + ".utilization",
                         worker_busy_s[t] / wall_s);
    }
    metrics::set_gauge("sweep.worker_utilization",
                       busy_total / (wall_s * threads));
  }

  std::size_t ok = 0, failed = 0, timed_out = 0;
  for (const CellRun& run : runs) {
    switch (run.info.status) {
    case CellStatus::ok: ++ok; break;
    case CellStatus::failed: ++failed; break;
    case CellStatus::timed_out: ++timed_out; break;
    }
  }
  metrics::count("sweep.cells_ok", ok);
  if (failed > 0) {
    metrics::count("sweep.cells_failed", failed);
  }
  if (timed_out > 0) {
    metrics::count("sweep.cells_timeout", timed_out);
  }

  progress.finish();
  return runs;
}

} // namespace detail

std::size_t SweepRunner::submit(const workload::BenchmarkProfile& profile,
                                const ExperimentConfig& cfg) {
  cells_.push_back(SweepCell{profile, cfg});
  return cells_.size() - 1;
}

namespace {

/// Rebuild the deterministic payload of a journaled result.  The config
/// and benchmark come from the *submitted* cell (the key proves they
/// match); only the simulated outputs are deserialized.
ExperimentResult result_from_journal(const JournalRecord& rec,
                                     const SweepCell& cell) {
  ExperimentResult r;
  r.benchmark = std::string(cell.profile.name);
  r.config = cell.config;
  if (rec.result.at("benchmark").as_string() != r.benchmark) {
    throw std::runtime_error("journal record benchmark mismatch");
  }
  r.energy = energy_from_json(rec.result.at("energy"));
  // Required since schema 3: a pre-hierarchy journal record throws here
  // and the caller re-runs the cell instead of resuming a result whose
  // hierarchy section it cannot reconstruct.
  r.hierarchy = hierarchy_from_json(rec.result.at("hierarchy"));
  r.base_run = run_stats_from_json(rec.result.at("base_run"));
  r.tech_run = run_stats_from_json(rec.result.at("tech_run"));
  r.control = control_stats_from_json(rec.result.at("control"));
  // Required since schema 4 (empty array for single-tenant cells): a
  // pre-multi-tenant record throws here and the cell re-runs.
  r.tenants = tenant_stats_from_json(rec.result.at("tenants"));
  r.base_l1d_miss_rate = rec.result.at("base_l1d_miss_rate").as_double();
  r.cell = rec.info;
  r.cell.resumed = true;
  return r;
}

} // namespace

std::vector<CellResult<ExperimentResult>> SweepRunner::run() {
  std::vector<SweepCell> cells = std::move(cells_);
  cells_.clear();
  std::vector<CellResult<ExperimentResult>> out(cells.size());

  // --- resume: satisfy cells already completed in the journal ---
  const std::string journal_path = resolve_journal_path(opts_.journal_path);
  std::vector<std::string> keys(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    keys[i] =
        cell_journal_key(config_hash(cells[i].config), cells[i].profile.name);
  }
  std::vector<std::size_t> todo;
  todo.reserve(cells.size());
  std::size_t resumed = 0;
  if (!journal_path.empty()) {
    const std::map<std::string, JournalRecord> completed =
        SweepJournal::load(journal_path);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto it = completed.find(keys[i]);
      bool restored = false;
      if (it != completed.end() && it->second.info.ok()) {
        try {
          out[i].value = result_from_journal(it->second, cells[i]);
          out[i].info = out[i].value.cell;
          restored = true;
          ++resumed;
        } catch (const std::exception& e) {
          std::fprintf(stderr,
                       "[journal] %s: re-running %s (unusable record: %s)\n",
                       journal_path.c_str(), keys[i].c_str(), e.what());
        }
      }
      if (!restored) {
        todo.push_back(i);
      }
    }
    if (resumed > 0) {
      metrics::count("sweep.cells_resumed", resumed);
      std::fprintf(stderr, "[%s] resumed %zu/%zu cells from %s\n",
                   opts_.label.c_str(), resumed, cells.size(),
                   journal_path.c_str());
    }
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      todo.push_back(i);
    }
  }

  std::unique_ptr<SweepJournal> journal;
  if (!journal_path.empty()) {
    journal = std::make_unique<SweepJournal>(journal_path);
  }
  const auto checkpoint = [&](std::size_t i, const CellInfo& info) {
    if (journal) {
      JournalRecord rec;
      rec.key = keys[i];
      rec.info = info;
      if (info.ok()) {
        rec.result = to_json(out[i].value);
      }
      journal->append(rec);
    }
  };

  // --- arena pre-materialization: one build per distinct stream ---
  // Cells sharing a (profile, seed, instructions, tenants) stream replay
  // one packed buffer (workload/arena.h).  Building each distinct stream
  // up front, in parallel, keeps the first wave of workers from
  // serializing on the per-stream build locks.  A failed prefetch is
  // harmless: the cell falls back to live generation, bit-identically.
  const workload::ArenaStats arena_before =
      workload::TraceArena::instance().stats();
  if (workload::TraceArena::instance().enabled() && !todo.empty()) {
    metrics::ScopedTimer prefetch_timer("phase.trace_prefetch");
    std::map<std::string, std::size_t> streams;
    for (const std::size_t i : todo) {
      streams.emplace(detail::stream_key(cells[i].profile, cells[i].config),
                      i);
    }
    std::vector<std::pair<std::string, std::size_t>> work(streams.begin(),
                                                          streams.end());
    std::atomic<std::size_t> next{0};
    const auto prefetch_worker = [&] {
      for (std::size_t w = next.fetch_add(1); w < work.size();
           w = next.fetch_add(1)) {
        const SweepCell& cell = cells[work[w].second];
        try {
          workload::TraceArena::instance().prefetch(
              work[w].first, cell.config.instructions, [&cell] {
                return detail::make_trace_live(cell.profile, cell.config);
              });
        } catch (const std::exception&) {
          // The cell itself will surface the error (or generate live).
        }
      }
    };
    const std::size_t threads = std::min<std::size_t>(
        resolve_thread_count(opts_.threads), work.size());
    std::vector<std::thread> pool;
    for (std::size_t t = 1; t < threads; ++t) {
      pool.emplace_back(prefetch_worker);
    }
    prefetch_worker();
    for (std::thread& th : pool) {
      th.join();
    }
  }

  // --- planner: group batchable same-stream cells into lockstep units ---
  // A unit shares one trace pass, so its members must agree on the
  // instruction stream — (benchmark, instructions, seed); the L2 latency
  // may differ per lane (harness/batched.h).  Everything else — fault
  // injection, adaptive schemes, explicit hierarchies, stream groups of
  // one — runs scalar.
  const unsigned batch_limit = resolve_batch_limit(opts_.batch);
  std::vector<std::vector<std::size_t>> units;
  std::vector<std::size_t> scalar;
  scalar.reserve(todo.size());
  if (batch_limit >= 2) {
    std::map<std::tuple<std::string, uint64_t, uint64_t>,
             std::vector<std::size_t>>
        groups;
    for (const std::size_t i : todo) {
      if (batchable(cells[i].config)) {
        groups[{std::string(cells[i].profile.name),
                cells[i].config.instructions, cells[i].config.seed}]
            .push_back(i);
      } else {
        scalar.push_back(i);
      }
    }
    for (auto& [key, members] : groups) {
      std::size_t p = 0;
      while (members.size() - p >= 2) {
        const std::size_t n =
            std::min<std::size_t>(batch_limit, members.size() - p);
        units.emplace_back(members.begin() + static_cast<std::ptrdiff_t>(p),
                           members.begin() + static_cast<std::ptrdiff_t>(p + n));
        p += n;
      }
      for (; p < members.size(); ++p) {
        scalar.push_back(members[p]); // stream group of one: scalar
      }
    }
  } else {
    scalar = todo;
  }

  // --- phase 1: batch units, one lockstep trace pass each ---
  // A unit runs with a single attempt and a K-scaled watchdog budget;
  // any failure (one member's fault, a timeout, a cancellation) demotes
  // *all* its members to the scalar phase, where the per-cell retry /
  // watchdog / journal semantics apply individually — so one bad member
  // never poisons its siblings' results.
  if (!units.empty()) {
    metrics::count("sweep.batches", units.size());
    SweepOptions unit_opts = opts_;
    unit_opts.retry.max_attempts = 1;
    const auto unit_body = [&](std::size_t u,
                               const sim::CancellationToken& token) {
      const std::vector<std::size_t>& members = units[u];
      std::vector<ExperimentConfig> cfgs;
      cfgs.reserve(members.size());
      for (const std::size_t i : members) {
        cfgs.push_back(cells[i].config);
      }
      const Clock::time_point start = Clock::now();
      BatchedExperiment batch(cells[members.front()].profile,
                              std::move(cfgs));
      std::vector<ExperimentResult> results = batch.run(&token);
      const double per_cell_s =
          std::chrono::duration<double>(Clock::now() - start).count() /
          static_cast<double>(members.size());
      for (std::size_t j = 0; j < members.size(); ++j) {
        const std::size_t i = members[j];
        out[i].value = std::move(results[j]);
        CellInfo info;
        info.attempts = 1;
        info.duration_s = per_cell_s;
        info.batch = static_cast<unsigned>(members.size());
        out[i].info = info;
        out[i].value.cell = info;
        checkpoint(i, info);
      }
    };
    const std::vector<CellRun> unit_runs = detail::for_cells(
        units.size(), unit_body, unit_opts, nullptr,
        [&](std::size_t u) { return static_cast<double>(units[u].size()); });
    std::size_t batched_cells = 0;
    std::size_t fallbacks = 0;
    for (std::size_t u = 0; u < units.size(); ++u) {
      if (unit_runs[u].info.ok()) {
        batched_cells += units[u].size();
      } else {
        fallbacks += units[u].size();
        for (const std::size_t i : units[u]) {
          scalar.push_back(i);
        }
      }
    }
    metrics::count("sweep.batched_cells", batched_cells);
    if (fallbacks > 0) {
      metrics::count("sweep.batch_fallbacks", fallbacks);
    }
  }

  // --- phase 2: scalar cells with per-cell fault isolation ---
  const auto body = [&](std::size_t j, const sim::CancellationToken& token) {
    const std::size_t i = scalar[j];
    out[i].value = run_experiment(cells[i].profile, cells[i].config, &token);
  };
  // Checkpoint from the worker as each cell settles, so a kill at any
  // instant preserves every finished cell.
  const auto on_done = [&](std::size_t j, const CellRun& run) {
    const std::size_t i = scalar[j];
    out[i].value.cell = run.info;
    checkpoint(i, run.info);
  };
  const std::vector<CellRun> runs =
      detail::for_cells(scalar.size(), body, opts_, on_done);

  for (std::size_t j = 0; j < scalar.size(); ++j) {
    const std::size_t i = scalar[j];
    out[i].info = runs[j].info;
    out[i].exception = runs[j].exception;
    if (!runs[j].info.ok()) {
      // Placeholder value: identity + status, zeroed measurements.
      out[i].value = ExperimentResult{};
      out[i].value.benchmark = std::string(cells[i].profile.name);
      out[i].value.config = cells[i].config;
    }
    out[i].value.cell = out[i].info;
  }

  // Arena effectiveness over this run: the counters are process-wide, so
  // export deltas against the entry snapshot; bytes is a point-in-time
  // gauge of resident stream storage.
  const workload::ArenaStats arena_after =
      workload::TraceArena::instance().stats();
  metrics::count("sweep.trace_arena_hits", arena_after.hits - arena_before.hits);
  metrics::count("sweep.trace_arena_misses",
                 arena_after.misses - arena_before.misses);
  metrics::count("sweep.trace_arena_evictions",
                 arena_after.evictions - arena_before.evictions);
  metrics::set_gauge("sweep.trace_arena_bytes",
                     static_cast<double>(arena_after.bytes));
  return out;
}

SuiteResult run_suite(const ExperimentConfig& cfg, const SweepOptions& opts) {
  SweepRunner runner(opts);
  for (const workload::BenchmarkProfile& p : workload::spec2000_profiles()) {
    runner.submit(p, cfg);
  }
  return SuiteResult(values(runner.run(), opts.fail_fast));
}

std::vector<IntervalSweepResult> best_interval_sweeps_all(
    const ExperimentConfig& cfg, const std::vector<uint64_t>& intervals,
    const SweepOptions& opts) {
  const auto& profiles = workload::spec2000_profiles();
  SweepRunner runner(opts);
  for (const workload::BenchmarkProfile& p : profiles) {
    for (const uint64_t interval : intervals) {
      ExperimentConfig cell = cfg;
      cell.set_l1_decay_interval(interval);
      runner.submit(p, cell);
    }
  }
  std::vector<ExperimentResult> flat = values(runner.run(), opts.fail_fast);

  std::vector<IntervalSweepResult> out(profiles.size());
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    IntervalSweepResult& sweep = out[p];
    for (std::size_t k = 0; k < intervals.size(); ++k) {
      ExperimentResult& r = flat[p * intervals.size() + k];
      // Same tie-break as the serial sweep: first strictly-better wins.
      if (k == 0 ||
          r.energy.net_savings_frac > sweep.best.energy.net_savings_frac) {
        sweep.best = r;
        sweep.best_interval = intervals[k];
      }
      sweep.sweep.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<JointIntervalCell> joint_interval_sweep(
    const ExperimentConfig& cfg, const std::vector<uint64_t>& l1_intervals,
    const std::vector<uint64_t>& l2_intervals,
    const std::vector<workload::BenchmarkProfile>& profiles,
    const SweepOptions& opts) {
  if (l1_intervals.empty() || l2_intervals.empty()) {
    throw std::invalid_argument(
        "joint_interval_sweep: interval grids must be non-empty");
  }
  std::vector<LevelConfig> levels = cfg.resolved_levels();
  if (levels.size() < 2) {
    throw std::invalid_argument(
        "joint_interval_sweep: config must resolve to >= 2 levels");
  }
  if (!levels[0].control.has_value()) {
    throw std::invalid_argument(
        "joint_interval_sweep: level 0 must be controlled");
  }
  if (!levels[1].control.has_value()) {
    levels[1].control = *levels[0].control; // promote: same technique at L2
  }

  SweepRunner runner(opts);
  std::vector<JointIntervalCell> out;
  out.reserve(profiles.size() * l1_intervals.size() * l2_intervals.size());
  for (const workload::BenchmarkProfile& p : profiles) {
    for (const uint64_t l1 : l1_intervals) {
      for (const uint64_t l2 : l2_intervals) {
        ExperimentConfig cell = cfg;
        cell.levels = levels;
        cell.set_l1_decay_interval(l1);
        cell.levels[1].control->decay_interval = l2;
        runner.submit(p, cell);
        JointIntervalCell jc;
        jc.benchmark = std::string(p.name);
        jc.l1_interval = l1;
        jc.l2_interval = l2;
        out.push_back(std::move(jc));
      }
    }
  }
  std::vector<ExperimentResult> flat = values(runner.run(), opts.fail_fast);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].result = std::move(flat[i]);
  }
  return out;
}

std::vector<MultiTenantCell> multi_tenant_sweep(
    const ExperimentConfig& cfg,
    const std::vector<std::vector<std::string>>& mixes,
    const std::vector<uint64_t>& quanta, const SweepOptions& opts) {
  if (mixes.empty() || quanta.empty()) {
    throw std::invalid_argument(
        "multi_tenant_sweep: mix and quantum grids must be non-empty");
  }
  SweepRunner runner(opts);
  std::vector<MultiTenantCell> out;
  out.reserve(mixes.size() * quanta.size());
  for (const std::vector<std::string>& mix : mixes) {
    if (mix.empty()) {
      throw std::invalid_argument(
          "multi_tenant_sweep: a mix must name at least one benchmark");
    }
    const workload::BenchmarkProfile& p = workload::profile_by_name(mix[0]);
    std::string label = mix[0];
    for (std::size_t i = 1; i < mix.size(); ++i) {
      label += '+' + mix[i];
    }
    for (const uint64_t quantum : quanta) {
      ExperimentConfig cell = cfg;
      cell.tenants.count = static_cast<unsigned>(mix.size());
      cell.tenants.quantum = quantum;
      cell.tenants.co_benchmarks.assign(mix.begin() + 1, mix.end());
      runner.submit(p, cell);
      MultiTenantCell mc;
      mc.mix = label;
      mc.quantum = quantum;
      out.push_back(std::move(mc));
    }
  }
  std::vector<ExperimentResult> flat = values(runner.run(), opts.fail_fast);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].result = std::move(flat[i]);
  }
  return out;
}

} // namespace harness
