#include "harness/sweep.h"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <limits>
#include <string_view>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "harness/metrics.h"
#include "workload/generator.h"

namespace harness {
namespace {

using Clock = std::chrono::steady_clock;

/// HLCC_PROGRESS: unset = live line only on a terminal, "0" = fully
/// quiet, anything else = live line even when stderr is redirected.
enum class ProgressEnv { dflt, off, forced };

ProgressEnv progress_env() {
  const char* env = std::getenv("HLCC_PROGRESS");
  if (env == nullptr) {
    return ProgressEnv::dflt;
  }
  return std::string_view(env) == "0" ? ProgressEnv::off
                                      : ProgressEnv::forced;
}

/// Serializes the cells/sec + ETA line on stderr.  All workers funnel
/// through tick(); the live line is throttled and terminal-gated, the
/// final summary is printed once by finish().
class ProgressReporter {
public:
  ProgressReporter(const SweepOptions& opts, std::size_t total,
                   unsigned threads)
      : total_(total), threads_(threads), label_(opts.label),
        start_(Clock::now()) {
    const ProgressEnv env = progress_env();
    enabled_ = opts.progress && env != ProgressEnv::off;
    live_ = enabled_ &&
            (env == ProgressEnv::forced || isatty(STDERR_FILENO) != 0);
  }

  void tick() {
    if (!enabled_) {
      done_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!live_) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const Clock::time_point now = Clock::now();
    if (done < total_ && now - last_print_ < std::chrono::milliseconds(100)) {
      return;
    }
    last_print_ = now;
    const double secs = elapsed_s(now);
    const double rate = secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
    const double eta = rate > 0.0
                           ? static_cast<double>(total_ - done) / rate
                           : 0.0;
    std::fprintf(stderr, "\r[%s] %zu/%zu cells | %.1f cells/s | ETA %.0f s ",
                 label_.c_str(), done, total_, rate, eta);
    if (done == total_) {
      std::fprintf(stderr, "\n");
    }
    std::fflush(stderr);
  }

  /// One-line throughput summary (also lands in redirected CI logs).
  void finish() const {
    if (!enabled_) {
      return;
    }
    const double secs = elapsed_s(Clock::now());
    const double rate = secs > 0.0 ? static_cast<double>(total_) / secs : 0.0;
    std::fprintf(stderr,
                 "[%s] %zu cells in %.2f s on %u thread%s (%.1f cells/s)\n",
                 label_.c_str(), total_, secs, threads_,
                 threads_ == 1 ? "" : "s", rate);
  }

private:
  double elapsed_s(Clock::time_point now) const {
    return std::chrono::duration<double>(now - start_).count();
  }

  std::size_t total_;
  unsigned threads_;
  std::string label_;
  Clock::time_point start_;
  bool enabled_ = false;
  bool live_ = false;
  std::atomic<std::size_t> done_{0};
  std::mutex mu_;
  Clock::time_point last_print_ = start_;
};

} // namespace

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("HLCC_THREADS")) {
    // Strict parse: junk ("abc", "3x", ""), zero, and negatives are
    // configuration errors, not an invitation to silently fall back to
    // the hardware default.
    const std::string_view text(env);
    bool all_digits = !text.empty();
    for (const char c : text) {
      all_digits = all_digits && std::isdigit(static_cast<unsigned char>(c));
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (!all_digits || errno == ERANGE || v == 0 ||
        v > std::numeric_limits<unsigned>::max()) {
      throw std::invalid_argument(
          "HLCC_THREADS must be a positive integer thread count, got \"" +
          std::string(text) + "\"");
    }
    return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for_indexed(std::size_t count,
                          const std::function<void(std::size_t)>& body,
                          const SweepOptions& opts) {
  if (count == 0) {
    return;
  }
  const unsigned threads = static_cast<unsigned>(std::min<std::size_t>(
      resolve_thread_count(opts.threads), count));
  ProgressReporter progress(opts, count, threads);
  std::vector<std::exception_ptr> errors(count);

  // Observability: the registry receives the pool shape up front and the
  // throughput numbers after the drain, so a --json report carries the
  // same cells/sec the progress line shows.
  metrics::set_gauge("sweep.queue_depth", static_cast<double>(count));
  metrics::set_gauge("sweep.threads", threads);
  metrics::count("sweep.cells", count);
  const Clock::time_point sweep_start = Clock::now();
  std::vector<double> worker_busy_s(threads, 0.0);

  if (threads == 1) {
    // Inline serial path: the reference the parallel path must match.
    for (std::size_t i = 0; i < count; ++i) {
      metrics::ScopedTimer cell_timer("phase.sweep_cell");
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      cell_timer.stop();
      worker_busy_s[0] += cell_timer.elapsed_s();
      progress.tick();
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&](unsigned worker_id) {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
          return;
        }
        metrics::ScopedTimer cell_timer("phase.sweep_cell");
        try {
          body(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        cell_timer.stop();
        worker_busy_s[worker_id] += cell_timer.elapsed_s();
        progress.tick();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  const double wall_s =
      std::chrono::duration<double>(Clock::now() - sweep_start).count();
  metrics::record_time("phase.sweep", wall_s);
  if (wall_s > 0.0) {
    metrics::set_gauge("sweep.cells_per_sec",
                       static_cast<double>(count) / wall_s);
    double busy_total = 0.0;
    for (unsigned t = 0; t < threads; ++t) {
      busy_total += worker_busy_s[t];
      metrics::set_gauge("sweep.worker." + std::to_string(t) + ".utilization",
                         worker_busy_s[t] / wall_s);
    }
    metrics::set_gauge("sweep.worker_utilization",
                       busy_total / (wall_s * threads));
  }

  progress.finish();
  for (const std::exception_ptr& e : errors) {
    if (e) {
      std::rethrow_exception(e); // lowest index: what the serial loop threw
    }
  }
}

std::size_t SweepRunner::submit(const workload::BenchmarkProfile& profile,
                                const ExperimentConfig& cfg) {
  cells_.push_back(SweepCell{profile, cfg});
  return cells_.size() - 1;
}

std::vector<ExperimentResult> SweepRunner::run() {
  std::vector<SweepCell> cells = std::move(cells_);
  cells_.clear();
  std::vector<ExperimentResult> results(cells.size());
  parallel_for_indexed(
      cells.size(),
      [&](std::size_t i) {
        results[i] = run_experiment(cells[i].profile, cells[i].config);
      },
      opts_);
  return results;
}

SuiteResult run_suite(const ExperimentConfig& cfg, const SweepOptions& opts) {
  SweepRunner runner(opts);
  for (const workload::BenchmarkProfile& p : workload::spec2000_profiles()) {
    runner.submit(p, cfg);
  }
  return SuiteResult(runner.run());
}

std::vector<IntervalSweepResult> best_interval_sweeps_all(
    const ExperimentConfig& cfg, const std::vector<uint64_t>& intervals,
    const SweepOptions& opts) {
  const auto& profiles = workload::spec2000_profiles();
  SweepRunner runner(opts);
  for (const workload::BenchmarkProfile& p : profiles) {
    for (const uint64_t interval : intervals) {
      ExperimentConfig cell = cfg;
      cell.decay_interval = interval;
      runner.submit(p, cell);
    }
  }
  std::vector<ExperimentResult> flat = runner.run();

  std::vector<IntervalSweepResult> out(profiles.size());
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    IntervalSweepResult& sweep = out[p];
    for (std::size_t k = 0; k < intervals.size(); ++k) {
      ExperimentResult& r = flat[p * intervals.size() + k];
      // Same tie-break as the serial sweep: first strictly-better wins.
      if (k == 0 ||
          r.energy.net_savings_frac > sweep.best.energy.net_savings_frac) {
        sweep.best = r;
        sweep.best_interval = intervals[k];
      }
      sweep.sweep.push_back(std::move(r));
    }
  }
  return out;
}

} // namespace harness
