#include "harness/metrics.h"

namespace harness::metrics {

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::count(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void Registry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void Registry::record_time(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), TimerStat{}).first;
  }
  it->second.total_s += seconds;
  it->second.count += 1;
}

uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double Registry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

TimerStat Registry::timer(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = timers_.find(name);
  return it != timers_.end() ? it->second : TimerStat{};
}

std::map<std::string, uint64_t> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, TimerStat> Registry::timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {timers_.begin(), timers_.end()};
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

void count(std::string_view name, uint64_t delta) {
  Registry::global().count(name, delta);
}

void set_gauge(std::string_view name, double value) {
  Registry::global().set_gauge(name, value);
}

void record_time(std::string_view name, double seconds) {
  Registry::global().record_time(name, seconds);
}

} // namespace harness::metrics
