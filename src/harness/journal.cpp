#include "harness/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace harness {

std::string cell_journal_key(uint64_t config_hash,
                             std::string_view benchmark) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(config_hash));
  return std::string(buf) + ":" + std::string(benchmark);
}

SweepJournal::SweepJournal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("SweepJournal: cannot open '" + path_ +
                             "' for appending: " + std::strerror(errno));
  }
  // A SIGKILL mid-write leaves a torn, unterminated final line.  Close
  // it off before appending, so the resume's fresh records start on
  // their own line instead of fusing with the torn one.
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  char last = '\n';
  if (size > 0 && ::pread(fd_, &last, 1, size - 1) == 1 && last != '\n') {
    if (::write(fd_, "\n", 1) != 1) {
      throw std::runtime_error("SweepJournal: cannot repair torn tail of '" +
                               path_ + "': " + std::strerror(errno));
    }
  }
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void SweepJournal::append(const JournalRecord& rec) {
  json::Value line = json::Value::object();
  line["v"] = 1;
  line["key"] = rec.key;
  line["status"] = to_string(rec.info.status);
  line["error_kind"] = to_string(rec.info.error_kind);
  line["error"] = rec.info.error;
  line["attempts"] = rec.info.attempts;
  line["duration_s"] = rec.info.duration_s;
  line["result"] = rec.result;
  const std::string text = line.dump() + "\n";

  std::lock_guard<std::mutex> lock(mu_);
  // One write() per record keeps the only possible corruption a torn
  // tail; the fsync makes the record durable before the cell is
  // considered checkpointed.
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd_, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error("SweepJournal: write to '" + path_ +
                               "' failed: " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("SweepJournal: fsync of '" + path_ +
                             "' failed: " + std::strerror(errno));
  }
}

std::map<std::string, JournalRecord> SweepJournal::load(
    const std::string& path) {
  std::map<std::string, JournalRecord> records;
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return records; // no journal yet: nothing completed
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    JournalRecord rec;
    try {
      const json::Value v = json::Value::parse(line);
      if (!v.is_object() || !v.contains("v") ||
          v.at("v").as_double() != 1.0) {
        throw std::runtime_error("unsupported journal record version");
      }
      rec.key = v.at("key").as_string();
      rec.info.status = cell_status_from_name(v.at("status").as_string());
      rec.info.error_kind =
          cell_error_kind_from_name(v.at("error_kind").as_string());
      rec.info.error = v.at("error").as_string();
      rec.info.attempts = static_cast<unsigned>(v.at("attempts").as_double());
      rec.info.duration_s = v.at("duration_s").as_double();
      rec.result = v.contains("result") ? v.at("result") : json::Value();
    } catch (const std::exception& e) {
      // A malformed line is a torn write (the tail of a killed run, or
      // the newline-repaired scar of one mid-file after a resume).
      // Records are self-contained lines, so skip it and keep reading:
      // records appended after a repaired tear must still count.
      std::fprintf(stderr, "[journal] %s:%zu: skipping malformed record (%s)\n",
                   path.c_str(), line_no, e.what());
      continue;
    }
    records[rec.key] = std::move(rec); // later records win
  }
  return records;
}

} // namespace harness
