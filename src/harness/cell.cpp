#include "harness/cell.h"

#include <ios>
#include <stdexcept>

#include "sim/cancellation.h"
#include "workload/tracefile.h"

namespace harness {

const char* to_string(CellStatus status) {
  switch (status) {
  case CellStatus::ok: return "ok";
  case CellStatus::failed: return "failed";
  case CellStatus::timed_out: return "timed_out";
  }
  return "?";
}

const char* to_string(CellErrorKind kind) {
  switch (kind) {
  case CellErrorKind::none: return "none";
  case CellErrorKind::config_invalid: return "config_invalid";
  case CellErrorKind::trace_io: return "trace_io";
  case CellErrorKind::sim_invariant: return "sim_invariant";
  case CellErrorKind::timeout: return "timeout";
  case CellErrorKind::unknown: return "unknown";
  }
  return "?";
}

CellStatus cell_status_from_name(std::string_view name) {
  for (const CellStatus s :
       {CellStatus::ok, CellStatus::failed, CellStatus::timed_out}) {
    if (name == to_string(s)) {
      return s;
    }
  }
  throw std::invalid_argument("unknown cell status name \"" +
                              std::string(name) + "\"");
}

CellErrorKind cell_error_kind_from_name(std::string_view name) {
  for (const CellErrorKind k :
       {CellErrorKind::none, CellErrorKind::config_invalid,
        CellErrorKind::trace_io, CellErrorKind::sim_invariant,
        CellErrorKind::timeout, CellErrorKind::unknown}) {
    if (name == to_string(k)) {
      return k;
    }
  }
  throw std::invalid_argument("unknown cell error kind name \"" +
                              std::string(name) + "\"");
}

CellErrorKind classify_cell_error(const std::exception_ptr& error) noexcept {
  if (!error) {
    return CellErrorKind::none;
  }
  try {
    std::rethrow_exception(error);
  } catch (const sim::CancelledError&) {
    return CellErrorKind::timeout;
  } catch (const workload::TraceError&) {
    return CellErrorKind::trace_io;
  } catch (const std::ios_base::failure&) {
    return CellErrorKind::trace_io;
  } catch (const std::invalid_argument&) {
    return CellErrorKind::config_invalid;
  } catch (const std::logic_error&) {
    return CellErrorKind::sim_invariant;
  } catch (...) {
    return CellErrorKind::unknown;
  }
}

std::string describe_cell_error(const std::exception_ptr& error) {
  if (!error) {
    return {};
  }
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "(non-std::exception payload)";
  }
}

bool cell_error_retryable(CellErrorKind kind) {
  return kind == CellErrorKind::trace_io || kind == CellErrorKind::unknown;
}

} // namespace harness
