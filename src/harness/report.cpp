#include "harness/report.h"

#include <iomanip>
#include <ostream>

namespace harness {
namespace {

void print_metric_figure(std::ostream& os, const std::string& title,
                         const std::vector<Series>& series, bool savings) {
  os << "== " << title << " ==\n";
  os << std::left << std::setw(10) << "benchmark";
  for (const Series& s : series) {
    os << std::right << std::setw(12) << s.label;
  }
  os << '\n';
  const std::size_t n = series.empty() ? 0 : series.front().results.size();
  os << std::fixed << std::setprecision(2);
  for (std::size_t i = 0; i < n; ++i) {
    os << std::left << std::setw(10) << series.front().results[i].benchmark;
    for (const Series& s : series) {
      const double v = savings ? s.results[i].energy.net_savings_frac
                               : s.results[i].energy.perf_loss_frac;
      os << std::right << std::setw(11) << v * 100.0 << '%';
    }
    os << '\n';
  }
  os << std::left << std::setw(10) << "AVG";
  for (const Series& s : series) {
    const double v =
        savings ? s.results.mean_net_savings() : s.results.mean_slowdown();
    os << std::right << std::setw(11) << v * 100.0 << '%';
  }
  os << "\n\n";
}

} // namespace

void print_savings_figure(std::ostream& os, const std::string& title,
                          const std::vector<Series>& series) {
  print_metric_figure(os, title, series, /*savings=*/true);
}

void print_perf_figure(std::ostream& os, const std::string& title,
                       const std::vector<Series>& series) {
  print_metric_figure(os, title, series, /*savings=*/false);
}

void print_best_interval_table(std::ostream& os, const std::string& title,
                               const std::vector<BestIntervalRow>& rows) {
  os << "== " << title << " ==\n";
  os << std::left << std::setw(10) << "benchmark" << std::right
     << std::setw(10) << "drowsy" << std::setw(12) << "gated-vss" << '\n';
  for (const BestIntervalRow& row : rows) {
    os << std::left << std::setw(10) << row.benchmark << std::right
       << std::setw(10) << format_interval(row.drowsy_interval)
       << std::setw(12) << format_interval(row.gated_interval) << '\n';
  }
  os << '\n';
}

void print_reliability_table(std::ostream& os, const std::string& title,
                             const std::vector<Series>& series) {
  os << "== " << title << " ==\n";
  for (const Series& s : series) {
    os << "-- " << s.label << " --\n";
    os << std::left << std::setw(10) << "benchmark" << std::right
       << std::setw(10) << "injected" << std::setw(10) << "detected"
       << std::setw(11) << "corrected" << std::setw(11) << "recovered"
       << std::setw(10) << "corrupt" << std::setw(9) << "net%" << '\n';
    for (const ExperimentResult& r : s.results) {
      const leakctl::ControlStats& c = r.control;
      os << std::left << std::setw(10) << r.benchmark << std::right
         << std::setw(10) << c.faults_injected << std::setw(10)
         << c.fault_detections << std::setw(11) << c.fault_corrections
         << std::setw(11) << c.fault_recoveries << std::setw(10)
         << c.corruptions() << std::setw(8) << std::fixed
         << std::setprecision(1) << r.energy.net_savings_frac * 100.0 << "%"
         << '\n';
    }
  }
  os << '\n';
}

void print_result_detail(std::ostream& os, const ExperimentResult& r) {
  os << std::fixed << std::setprecision(3);
  os << r.benchmark << " [" << r.config.technique.name
     << ", interval=" << format_interval(r.config.decay_interval)
     << ", L2=" << r.config.l2_latency << "cyc, T=" << r.config.temperature_c
     << "C]\n"
     << "  net savings     " << r.energy.net_savings_frac * 100.0 << " %\n"
     << "  perf loss       " << r.energy.perf_loss_frac * 100.0 << " %\n"
     << "  turnoff ratio   " << r.energy.turnoff_ratio * 100.0 << " %\n"
     << "  baseline leak   " << r.energy.baseline_leakage_j * 1e3 << " mJ\n"
     << "  technique leak  " << r.energy.technique_leakage_j * 1e3 << " mJ\n"
     << "  extra dynamic   " << r.energy.extra_dynamic_j * 1e3 << " mJ\n"
     << "  hits/slow/ind/true  " << r.control.hits << "/" << r.control.slow_hits
     << "/" << r.control.induced_misses << "/" << r.control.true_misses
     << "\n";
  if (r.config.faults.enabled) {
    os << "  faults inj/det/corr/rec  " << r.control.faults_injected << "/"
       << r.control.fault_detections << "/" << r.control.fault_corrections
       << "/" << r.control.fault_recoveries << "\n"
       << "  corruptions     " << r.control.corruptions() << " ("
       << r.control.fault_corruptions_detected << " detected, "
       << r.control.fault_corruptions_silent << " silent)\n"
       << "  protection cost " << (r.energy.protection_leakage_j +
                                   r.energy.protection_dynamic_j) *
                                      1e3
       << " mJ\n";
  }
}

std::string format_interval(uint64_t cycles) {
  if (cycles % 1024 == 0) {
    return std::to_string(cycles / 1024) + "k";
  }
  return std::to_string(cycles);
}

} // namespace harness
