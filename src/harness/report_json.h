// Machine-readable result export (schema version 4).
//
// Turns the harness's result structures — SuiteResult, ExperimentResult,
// ControlStats, EnergyBreakdown — into a json::Value document carrying
// run metadata (config hash, thread count, git describe) and a snapshot
// of the metrics registry (phase timers, sweep throughput), so CI, the
// perf trajectory, and regression tooling can consume and diff a run
// instead of scraping aligned text.
//
// Every bench binary and example shares the same CLI surface on top of
// this layer:
//   --json <path>   write the suite report as JSON (HLCC_JSON env is the
//                   default when the flag is absent)
//   --csv <path>    write the per-benchmark rows as CSV
// parse_report_cli strips those flags out of argv so binaries with their
// own positional arguments keep working unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/json_writer.h"
#include "harness/metrics.h"
#include "harness/report.h"

namespace harness {

/// Version stamp of the JSON document layout ("schema" root field).
/// History:
///   1 — initial export: metadata + series/benchmarks rows + metrics.
///   2 — resilience: every row carries a "cell" execution record
///       (status, error taxonomy, attempts, duration, resumed), and
///       series/suite levels gain a "cells" rollup with a "complete"
///       flag so consumers can tell a partial sweep from a clean one.
///   3 — hierarchy: every row carries a "hierarchy" total-leakage
///       section (per-level baseline/technique/gate energy, induced-miss
///       and wake-up stats, totals), and non-legacy configs serialize
///       their per-level "levels" list.  Legacy-shaped configs keep the
///       schema-2 canonical form, so their hashes are unchanged.
///   4 — multi-tenant: every row carries a "tenants" array (one
///       fairness-stats entry per tenant; empty for single-tenant runs),
///       and multi-tenant configs serialize a "tenants" config section.
///       Single-tenant configs omit it, so their hashes are unchanged.
inline constexpr int kReportSchemaVersion = 4;

/// `git describe` of the build, baked in at configure time ("unknown"
/// outside a git checkout).
std::string git_describe();

/// FNV-1a over the canonical serialized form of a config — the identity
/// of an experiment cell across runs and machines.
uint64_t config_hash(const ExperimentConfig& cfg);

json::Value to_json(const sim::RunStats& run);
json::Value to_json(const leakctl::ControlStats& control);
json::Value to_json(const leakctl::TenantStats& tenant);
json::Value to_json(const leakctl::EnergyBreakdown& energy);
json::Value to_json(const leakctl::HierarchyEnergy& hierarchy);
json::Value to_json(const CellInfo& cell);
json::Value to_json(const ExperimentConfig& cfg);
json::Value to_json(const ExperimentResult& result);
json::Value to_json(const Series& series);
json::Value to_json(const SuiteResult& suite);

/// Parse sides of the serializers above: rebuild the structs from a
/// report (or journal) document.  Exact inverses — the JSON writer emits
/// shortest-round-trip doubles, so serialize/parse is the identity on
/// every field — which is what lets a resumed sweep reconstruct
/// journaled cells bit-identically.  All throw std::runtime_error on a
/// missing field.
leakctl::ControlStats control_stats_from_json(const json::Value& v);
/// Parse a row's "tenants" array (required since schema 4; rows written
/// by older schemas fail with the missing-field error).
std::vector<leakctl::TenantStats> tenant_stats_from_json(
    const json::Value& v);
sim::RunStats run_stats_from_json(const json::Value& v);
leakctl::EnergyBreakdown energy_from_json(const json::Value& v);
leakctl::HierarchyEnergy hierarchy_from_json(const json::Value& v);
CellInfo cell_info_from_json(const json::Value& v);

/// Snapshot of a metrics registry: {"counters": {...}, "gauges": {...},
/// "timers": {name: {"total_s": t, "count": n}}}.
json::Value metrics_json(const metrics::Registry& registry =
                             metrics::Registry::global());

/// Run metadata: schema version, git describe, resolved thread count,
/// hardware concurrency, HLCC_INSTRUCTIONS.
json::Value run_metadata();

/// The full report document every --json run emits:
/// {schema, kind, title, metadata, series: [...], metrics}.
json::Value suite_report(const std::string& title,
                         const std::vector<Series>& series);

/// Write @p doc to @p path (pretty-printed, trailing newline); throws
/// std::runtime_error when the file cannot be written.
void write_json_file(const std::string& path, const json::Value& doc);

/// One CSV row per (series, benchmark): identity, energy fractions, and
/// the access/fault counters.
void write_csv(std::ostream& os, const std::vector<Series>& series);
void write_csv_file(const std::string& path,
                    const std::vector<Series>& series);

/// Where a run should export its results, resolved from the CLI and the
/// HLCC_JSON environment variable.
struct ReportOptions {
  std::string json_path;
  std::string csv_path;
  bool requested() const { return !json_path.empty() || !csv_path.empty(); }
};

/// Extract --json/--csv (both "--json p" and "--json=p" forms) from
/// argv, compacting it in place; all other arguments pass through
/// untouched for the binary's own parsing.  When no --json flag is
/// given, the HLCC_JSON environment variable supplies the path.  Throws
/// std::invalid_argument when a flag is missing its path.
ReportOptions parse_report_cli(int& argc, char** argv);

/// Emit the suite report to every requested destination (no-op when none
/// was requested).
void write_reports(const ReportOptions& opts, const std::string& title,
                   const std::vector<Series>& series);

} // namespace harness
