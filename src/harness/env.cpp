#include "harness/env.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace harness::env {
namespace {

[[noreturn]] void reject(const std::string& name, const std::string& text,
                         const std::string& what) {
  throw std::invalid_argument(name + " must be a " + what + ", got \"" +
                              text + "\"");
}

} // namespace

uint64_t parse_positive_u64(const std::string& name, const std::string& text,
                            const std::string& what) {
  if (text.empty()) {
    reject(name, text, what);
  }
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      reject(name, text, what); // rejects sign, space, trailing garbage
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      reject(name, text, what); // overflow
    }
    value = value * 10 + digit;
  }
  if (value == 0) {
    reject(name, text, what);
  }
  return value;
}

double parse_positive_double(const std::string& name, const std::string& text,
                             const std::string& what) {
  // strtod is lenient about leading whitespace, signs, "inf"/"nan" —
  // all of which are junk for a knob; only a bare digit-or-dot form may
  // open the string.
  if (text.empty() || !((text[0] >= '0' && text[0] <= '9') ||
                        text[0] == '.')) {
    reject(name, text, what);
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(value) || !(value > 0.0)) {
    reject(name, text, what);
  }
  return value;
}

std::optional<uint64_t> positive_u64(const std::string& name,
                                     const std::string& what) {
  const char* text = std::getenv(name.c_str());
  if (text == nullptr) {
    return std::nullopt;
  }
  return parse_positive_u64(name, text, what);
}

std::optional<double> positive_double(const std::string& name,
                                      const std::string& what) {
  const char* text = std::getenv(name.c_str());
  if (text == nullptr) {
    return std::nullopt;
  }
  return parse_positive_double(name, text, what);
}

std::optional<bool> flag01(const std::string& name) {
  const char* text = std::getenv(name.c_str());
  if (text == nullptr) {
    return std::nullopt;
  }
  const std::string value(text);
  if (value == "0") {
    return false;
  }
  if (value == "1") {
    return true;
  }
  throw std::invalid_argument(name + " must be 0 or 1, got \"" + value +
                              "\"");
}

} // namespace harness::env
