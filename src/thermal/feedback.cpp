#include "thermal/feedback.h"

#include <cmath>

namespace thermal {
namespace {

using hotleakage::CacheGeometry;

const CacheGeometry kL1Geom{.lines = 1024, .line_bytes = 64, .tag_bits = 28,
                            .assoc = 2};
const CacheGeometry kL2Geom{.lines = 32768, .line_bytes = 64, .tag_bits = 17,
                            .assoc = 2};

} // namespace

FeedbackResult run_leakage_thermal_loop(hotleakage::LeakageModel& model,
                                        double core_dynamic_w,
                                        double l2_dynamic_w,
                                        const FeedbackConfig& cfg) {
  CoreFloorplan fp = make_core_floorplan();
  const double vdd = model.tech().vdd_nominal;

  FeedbackResult result;
  std::vector<double> power(fp.network.size(), 0.0);
  double prev_max = fp.network.max_temperature_c();

  for (int step = 0; step < cfg.max_steps; ++step) {
    result.steps = step + 1;

    // Re-evaluate leakage at each block's *current* temperature — the
    // HotLeakage runtime-recalculation path.
    model.set_operating_point(hotleakage::OperatingPoint::at_celsius(
        fp.network.temperature_c(fp.l1i), vdd));
    const double l1i_leak = model.structure_power(kL1Geom);
    model.set_operating_point(hotleakage::OperatingPoint::at_celsius(
        fp.network.temperature_c(fp.l1d), vdd));
    const double l1d_leak =
        model.structure_power(kL1Geom) * cfg.l1d_leakage_scale;
    model.set_operating_point(hotleakage::OperatingPoint::at_celsius(
        fp.network.temperature_c(fp.l2), vdd));
    const double l2_leak = model.structure_power(kL2Geom);
    // Core logic leakage: roughly one L1's worth of transistors, at the
    // core's temperature.
    model.set_operating_point(hotleakage::OperatingPoint::at_celsius(
        fp.network.temperature_c(fp.core), vdd));
    const double core_leak = model.structure_power(kL1Geom) * 1.5;

    power[fp.core] = core_dynamic_w + core_leak;
    power[fp.l1i] = 0.6 + l1i_leak; // small dynamic share in the caches
    power[fp.l1d] = 0.9 + l1d_leak;
    power[fp.l2] = l2_dynamic_w + l2_leak;

    fp.network.step(power, cfg.dt);

    const double max_c = fp.network.max_temperature_c();
    result.final_core_c = fp.network.temperature_c(fp.core);
    result.final_l1d_c = fp.network.temperature_c(fp.l1d);
    result.final_l1d_leakage_w = l1d_leak;
    result.final_total_leakage_w = l1i_leak + l1d_leak + l2_leak + core_leak;
    if (max_c > cfg.runaway_c) {
      result.runaway = true;
      return result;
    }
    if (std::fabs(max_c - prev_max) < cfg.converge_eps_c && step > 10) {
      result.converged = true;
      return result;
    }
    prev_max = max_c;
  }
  return result;
}

} // namespace thermal
