// Compact thermal-RC network (HotSpot-style substrate).
//
// HotLeakage's defining feature is recomputing leakage as temperature
// changes at runtime (paper Secs. 1, 3).  To exercise that coupling the
// way the group's companion work (Skadron et al., temperature-aware
// microarchitecture) does, this library provides a small lumped thermal
// model: blocks with heat capacity, thermal resistances between blocks and
// to ambient, forward-Euler integration, and a convergence check.  It is
// deliberately compact — a handful of architectural blocks, not a finite-
// element solver — matching the granularity of the leakage model.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace thermal {

/// One lumped thermal node.
struct Block {
  std::string name;
  double capacitance = 1.0e-3; ///< [J/K]
  double r_to_ambient = 5.0;   ///< [K/W]; <=0 means no ambient path
  double temperature_c = 45.0; ///< state
};

/// Conductive coupling between two blocks.
struct Coupling {
  std::size_t a = 0;
  std::size_t b = 0;
  double resistance = 2.0; ///< [K/W]
};

class RcNetwork {
public:
  explicit RcNetwork(double ambient_c = 45.0);

  /// Add a block; returns its index.
  std::size_t add_block(Block block);
  /// Couple two existing blocks.
  void couple(std::size_t a, std::size_t b, double resistance);

  /// Advance the network by @p dt seconds with @p power_w[i] watts
  /// injected into block i.  Internally substeps to stay stable.
  void step(const std::vector<double>& power_w, double dt);

  /// Steady-state temperatures for constant @p power_w (iterative solve).
  std::vector<double> steady_state(const std::vector<double>& power_w) const;

  double temperature_c(std::size_t block) const {
    return blocks_.at(block).temperature_c;
  }
  void set_temperature_c(std::size_t block, double celsius) {
    blocks_.at(block).temperature_c = celsius;
  }
  double ambient_c() const { return ambient_c_; }
  std::size_t size() const { return blocks_.size(); }
  const Block& block(std::size_t i) const { return blocks_.at(i); }

  /// The hottest block right now.
  double max_temperature_c() const;

private:
  /// Net heat flow into each block [W] at the current state.
  std::vector<double> flows(const std::vector<double>& power_w,
                            const std::vector<double>& temps) const;

  double ambient_c_;
  std::vector<Block> blocks_;
  std::vector<Coupling> couplings_;
};

/// A ready-made floorplan for the Table 2 core: core logic, L1I, L1D, L2.
/// Returns the network plus the block indices.
struct CoreFloorplan {
  RcNetwork network;
  std::size_t core = 0;
  std::size_t l1i = 0;
  std::size_t l1d = 0;
  std::size_t l2 = 0;
};
CoreFloorplan make_core_floorplan(double ambient_c = 45.0);

} // namespace thermal
