#include "thermal/rc_network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace thermal {

RcNetwork::RcNetwork(double ambient_c) : ambient_c_(ambient_c) {}

std::size_t RcNetwork::add_block(Block block) {
  if (block.capacitance <= 0.0) {
    throw std::invalid_argument("add_block: capacitance must be positive");
  }
  blocks_.push_back(std::move(block));
  return blocks_.size() - 1;
}

void RcNetwork::couple(std::size_t a, std::size_t b, double resistance) {
  if (a >= blocks_.size() || b >= blocks_.size() || a == b) {
    throw std::invalid_argument("couple: invalid block indices");
  }
  if (resistance <= 0.0) {
    throw std::invalid_argument("couple: resistance must be positive");
  }
  couplings_.push_back({a, b, resistance});
}

std::vector<double> RcNetwork::flows(const std::vector<double>& power_w,
                                     const std::vector<double>& temps) const {
  std::vector<double> q(blocks_.size(), 0.0);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    q[i] += power_w[i];
    if (blocks_[i].r_to_ambient > 0.0) {
      q[i] -= (temps[i] - ambient_c_) / blocks_[i].r_to_ambient;
    }
  }
  for (const Coupling& c : couplings_) {
    const double flow = (temps[c.a] - temps[c.b]) / c.resistance;
    q[c.a] -= flow;
    q[c.b] += flow;
  }
  return q;
}

void RcNetwork::step(const std::vector<double>& power_w, double dt) {
  if (power_w.size() != blocks_.size()) {
    throw std::invalid_argument("step: power vector size mismatch");
  }
  if (dt <= 0.0) {
    throw std::invalid_argument("step: dt must be positive");
  }
  // Stability: substep so that dt_sub << min(RC).
  double min_rc = 1e9;
  for (const Block& b : blocks_) {
    if (b.r_to_ambient > 0.0) {
      min_rc = std::min(min_rc, b.r_to_ambient * b.capacitance);
    }
  }
  for (const Coupling& c : couplings_) {
    min_rc = std::min(min_rc,
                      c.resistance * std::min(blocks_[c.a].capacitance,
                                              blocks_[c.b].capacitance));
  }
  const int substeps =
      std::max(1, static_cast<int>(std::ceil(dt / (0.05 * min_rc))));
  const double h = dt / substeps;

  std::vector<double> temps(blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    temps[i] = blocks_[i].temperature_c;
  }
  for (int s = 0; s < substeps; ++s) {
    const std::vector<double> q = flows(power_w, temps);
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      temps[i] += q[i] * h / blocks_[i].capacitance;
    }
  }
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    blocks_[i].temperature_c = temps[i];
  }
}

std::vector<double>
RcNetwork::steady_state(const std::vector<double>& power_w) const {
  if (power_w.size() != blocks_.size()) {
    throw std::invalid_argument("steady_state: power vector size mismatch");
  }
  // Gauss-Seidel relaxation on the flow-balance equations.
  std::vector<double> temps(blocks_.size(), ambient_c_);
  for (int iter = 0; iter < 20000; ++iter) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      double conductance = 0.0;
      double inflow = power_w[i];
      if (blocks_[i].r_to_ambient > 0.0) {
        conductance += 1.0 / blocks_[i].r_to_ambient;
        inflow += ambient_c_ / blocks_[i].r_to_ambient;
      }
      for (const Coupling& c : couplings_) {
        if (c.a == i) {
          conductance += 1.0 / c.resistance;
          inflow += temps[c.b] / c.resistance;
        } else if (c.b == i) {
          conductance += 1.0 / c.resistance;
          inflow += temps[c.a] / c.resistance;
        }
      }
      if (conductance <= 0.0) {
        continue; // floating node: leave at ambient
      }
      const double next = inflow / conductance;
      max_delta = std::max(max_delta, std::fabs(next - temps[i]));
      temps[i] = next;
    }
    if (max_delta < 1e-9) {
      break;
    }
  }
  return temps;
}

double RcNetwork::max_temperature_c() const {
  double t = ambient_c_;
  for (const Block& b : blocks_) {
    t = std::max(t, b.temperature_c);
  }
  return t;
}

CoreFloorplan make_core_floorplan(double ambient_c) {
  CoreFloorplan fp{RcNetwork(ambient_c)};
  // Capacitances ~ area x silicon volumetric heat capacity; resistances
  // tuned so a ~30 W core settles near 100-110 C with this package —
  // the operating band the paper evaluates at.
  fp.core = fp.network.add_block(
      {.name = "core", .capacitance = 8e-3, .r_to_ambient = 2.2,
       .temperature_c = ambient_c});
  fp.l1i = fp.network.add_block(
      {.name = "l1i", .capacitance = 2e-3, .r_to_ambient = 6.0,
       .temperature_c = ambient_c});
  fp.l1d = fp.network.add_block(
      {.name = "l1d", .capacitance = 2e-3, .r_to_ambient = 6.0,
       .temperature_c = ambient_c});
  fp.l2 = fp.network.add_block(
      {.name = "l2", .capacitance = 24e-3, .r_to_ambient = 1.4,
       .temperature_c = ambient_c});
  fp.network.couple(fp.core, fp.l1i, 1.0);
  fp.network.couple(fp.core, fp.l1d, 1.0);
  fp.network.couple(fp.l1i, fp.l2, 2.5);
  fp.network.couple(fp.l1d, fp.l2, 2.5);
  return fp;
}

} // namespace thermal
