// Leakage-temperature feedback loop: the closed-loop simulation that the
// Butts-Sohi fixed-unit-leakage model cannot express and HotLeakage can
// (paper Secs. 1 and 3).
//
// Leakage raises temperature; temperature raises leakage exponentially.
// Below a package-dependent power threshold the loop converges; above it,
// it runs away — which is why leakage-control techniques (and DTM) matter
// at 70 nm.  The simulator couples the thermal RC network to a
// LeakageModel, re-evaluating leakage at every step, optionally with a
// leakage-control technique shaving the L1D's contribution.
#pragma once

#include "hotleakage/model.h"
#include "thermal/rc_network.h"

namespace thermal {

struct FeedbackConfig {
  double dt = 1e-3;            ///< step size [s]
  int max_steps = 2000;
  double converge_eps_c = 1e-3;///< max temperature change to declare steady
  double runaway_c = 140.0;    ///< declare thermal runaway above this
  /// Fraction of L1D leakage left after a leakage-control technique
  /// (1.0 = no control; e.g. turnoff x residual for a controlled cache).
  double l1d_leakage_scale = 1.0;
};

struct FeedbackResult {
  bool converged = false;
  bool runaway = false;
  int steps = 0;
  double final_core_c = 0.0;
  double final_l1d_c = 0.0;
  double final_l1d_leakage_w = 0.0;
  double final_total_leakage_w = 0.0;
};

/// Run the coupled loop on the Table 2 floorplan.  @p core_dynamic_w and
/// @p l2_dynamic_w are the (fixed) dynamic powers; cache leakage comes
/// from @p model re-evaluated at each block's temperature.
FeedbackResult run_leakage_thermal_loop(hotleakage::LeakageModel& model,
                                        double core_dynamic_w,
                                        double l2_dynamic_w,
                                        const FeedbackConfig& cfg = {});

} // namespace thermal
