// Reference transistor-level leakage model ("spiceref").
//
// The paper validates its simple architectural unit-leakage equation against
// transistor-level simulation (Cadence / AIM-SPICE with BSIM3/BSIM4
// models) in Fig. 1, sweeping W/L, Vdd, temperature, and Vth.  We do not
// have a SPICE deck or a proprietary process kit, so this library implements
// an *independent, higher-fidelity* numerical device model to serve as the
// reference curve:
//
//   * temperature-dependent mobility  mu(T) = mu0 * (T/300)^-1.5,
//   * full subthreshold drain current with explicit Vds dependence and a
//     DIBL term eta * Vds added to the gate overdrive,
//   * body-effect threshold shift,
//   * reverse-bias junction (diode) leakage floor with its own exponential
//     temperature activation,
//   * gate tunnelling.
//
// The two models agree closely over the normal W/L / Vdd / T ranges (the
// architectural model's fitted constants were chosen against exactly this
// kind of reference), and diverge when Vth is pushed beyond its normal
// range, where mechanisms the simple model omits dominate — the behaviour
// Fig. 1d reports.
#pragma once

#include "hotleakage/bsim3.h"
#include "hotleakage/tech.h"

namespace spiceref {

/// Bias conditions for a reference evaluation.
struct Bias {
  double vgs = 0.0; ///< gate-source voltage [V] (0 for an off device)
  double vds = 0.9; ///< drain-source voltage [V]
  double vsb = 0.0; ///< source-body reverse bias [V]
  double temperature_k = 300.0;
};

/// Geometry/threshold overrides matching hotleakage::DeviceOverrides.
struct RefOverrides {
  double w_over_l = 1.0;
  double vth_absolute = -1.0; ///< if >= 0, overrides |Vth|
};

/// Reference off-state leakage current [A]: subthreshold + junction floor +
/// gate tunnelling.
double reference_leakage(const hotleakage::TechParams& tech,
                         hotleakage::DeviceType type, const Bias& bias,
                         const RefOverrides& ovr = {});

/// Just the subthreshold component (for decomposition in tests).
double reference_subthreshold(const hotleakage::TechParams& tech,
                              hotleakage::DeviceType type, const Bias& bias,
                              const RefOverrides& ovr = {});

/// Just the junction-leakage floor component.
double reference_junction(const hotleakage::TechParams& tech,
                          hotleakage::DeviceType type, const Bias& bias,
                          const RefOverrides& ovr = {});

/// Relative error |model - ref| / ref between the architectural model
/// (hotleakage::subthreshold_current evaluated at the matching operating
/// point) and this reference, at the given sweep point.
double model_vs_reference_error(const hotleakage::TechParams& tech,
                                hotleakage::DeviceType type, double vdd,
                                double temperature_k, double w_over_l,
                                double vth_absolute = -1.0);

} // namespace spiceref
