#include "spiceref/device.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hotleakage/gate_leakage.h"

namespace spiceref {
namespace {

using hotleakage::DeviceParams;
using hotleakage::DeviceType;
using hotleakage::TechParams;
using hotleakage::kRoomTemperatureK;

const DeviceParams& device(const TechParams& tech, DeviceType type) {
  return type == DeviceType::nmos ? tech.nmos : tech.pmos;
}

/// Mobility with the standard power-law lattice-scattering temperature
/// dependence.
double mobility(const DeviceParams& dev, double temperature_k) {
  return dev.mu0 * std::pow(temperature_k / kRoomTemperatureK, -1.5);
}

/// Body-effect-shifted, temperature-shifted threshold voltage.
double vth_full(const TechParams& tech, DeviceType type, const Bias& bias,
                const RefOverrides& ovr) {
  if (ovr.vth_absolute >= 0.0) {
    return ovr.vth_absolute;
  }
  const DeviceParams& dev = device(tech, type);
  double vth = hotleakage::vth_at_temperature(dev, bias.temperature_k);
  // Body effect: gamma * (sqrt(2 phiF + Vsb) - sqrt(2 phiF)).
  constexpr double kGamma = 0.20;   // [V^0.5], typical for thin-oxide nodes
  constexpr double kTwoPhiF = 0.65; // [V]
  if (bias.vsb > 0.0) {
    vth += kGamma * (std::sqrt(kTwoPhiF + bias.vsb) - std::sqrt(kTwoPhiF));
  }
  return vth;
}

} // namespace

double reference_subthreshold(const TechParams& tech, DeviceType type,
                              const Bias& bias, const RefOverrides& ovr) {
  if (bias.temperature_k <= 0.0) {
    throw std::invalid_argument("reference_subthreshold: T must be > 0 K");
  }
  const DeviceParams& dev = device(tech, type);
  const double vt = hotleakage::thermal_voltage(bias.temperature_k);
  const double vth = vth_full(tech, type, bias, ovr);
  const double cox = hotleakage::oxide_capacitance(tech);
  const double mu = mobility(dev, bias.temperature_k);

  // DIBL expressed as an effective Vth reduction eta * Vds.  Match the
  // architectural model's exponential fit at the reference point by setting
  // eta from the fitted b: exp(b * (Vdd - Vdd0)) == exp(eta * Vds / (n vt))
  // to first order around Vdd0.
  const double eta = dev.dibl_b * dev.n_swing *
                     hotleakage::thermal_voltage(kRoomTemperatureK);
  const double overdrive = bias.vgs - vth + eta * (bias.vds - tech.vdd0);

  // Same BSIM3 prefactor family as the architectural model; the difference
  // is the mobility temperature law, the explicit Vds-based DIBL, and the
  // body effect.  The architectural model's constants were fitted against
  // this reference at the calibration point, so the two coincide there and
  // the residual mismatch across sweeps is what Fig. 1 plots.
  const double prefactor = mu * cox * ovr.w_over_l * vt * vt;
  const double gate_term = std::exp((overdrive - dev.v_off) / (dev.n_swing * vt));
  const double drain_term = 1.0 - std::exp(-bias.vds / vt);
  return prefactor * gate_term * drain_term;
}

double reference_junction(const TechParams& tech, DeviceType type,
                          const Bias& bias, const RefOverrides& ovr) {
  (void)type;
  // Reverse-biased drain junction: area ~ W * Ldrain; strong exponential
  // temperature activation (Eg ~ 1.12 eV, generation-dominated => Eg/2).
  constexpr double kJs300 = 2.0e-2; // [A/m^2] at 300 K, generation current
  constexpr double kEgHalf = 0.56;  // [eV]
  const double kT_ev = bias.temperature_k * 8.617333e-5;
  const double kT300_ev = kRoomTemperatureK * 8.617333e-5;
  const double area = ovr.w_over_l * tech.lgate * 2.5 * tech.lgate;
  const double activation =
      std::exp(kEgHalf / kT300_ev - kEgHalf / kT_ev);
  const double bias_factor = 1.0 + 0.15 * bias.vds; // weak Vds dependence
  return kJs300 * area * activation * bias_factor;
}

double reference_leakage(const TechParams& tech, DeviceType type,
                         const Bias& bias, const RefOverrides& ovr) {
  const double sub = reference_subthreshold(tech, type, bias, ovr);
  const double junction = reference_junction(tech, type, bias, ovr);
  hotleakage::OperatingPoint op{.temperature_k = bias.temperature_k,
                                .vdd = bias.vds};
  hotleakage::GateLeakOverrides glovr;
  glovr.width_m = ovr.w_over_l * tech.lgate;
  const double gate = hotleakage::gate_current(tech, op, glovr) * 0.1;
  return sub + junction + gate;
}

double model_vs_reference_error(const TechParams& tech, DeviceType type,
                                double vdd, double temperature_k,
                                double w_over_l, double vth_absolute) {
  const hotleakage::OperatingPoint op{.temperature_k = temperature_k,
                                      .vdd = vdd};
  hotleakage::DeviceOverrides movr;
  movr.w_over_l = w_over_l;
  movr.vth_absolute = vth_absolute;
  const double model = hotleakage::subthreshold_current(tech, type, op, movr);

  Bias bias{.vgs = 0.0, .vds = vdd, .vsb = 0.0, .temperature_k = temperature_k};
  RefOverrides rovr{.w_over_l = w_over_l, .vth_absolute = vth_absolute};
  const double ref = reference_leakage(tech, type, bias, rovr);
  if (ref <= 0.0) {
    return 0.0;
  }
  return std::fabs(model - ref) / ref;
}

} // namespace spiceref
