// Series/parallel network evaluator: conduction logic, off-leakage
// composition, and the stack effect.
#include <gtest/gtest.h>

#include <limits>

#include "hotleakage/network.h"

namespace hotleakage {
namespace {

const TechParams& t70() { return tech_params(TechNode::nm70); }

Network nmos_leaf(int input, double wl = 1.0) {
  return Network::leaf({.input = input, .w_over_l = wl});
}

TEST(Network, LeafConduction) {
  const Network n = nmos_leaf(0);
  EXPECT_TRUE(n.conducts(0b1, DeviceType::nmos));  // gate high, NMOS on
  EXPECT_FALSE(n.conducts(0b0, DeviceType::nmos)); // gate low, NMOS off
  EXPECT_FALSE(n.conducts(0b1, DeviceType::pmos)); // gate high, PMOS off
  EXPECT_TRUE(n.conducts(0b0, DeviceType::pmos));
}

TEST(Network, NegatedLeaf) {
  const Network n = Network::leaf({.input = 0, .w_over_l = 1.0, .negated = true});
  EXPECT_FALSE(n.conducts(0b1, DeviceType::nmos));
  EXPECT_TRUE(n.conducts(0b0, DeviceType::nmos));
}

TEST(Network, SeriesConduction) {
  const Network n = Network::series({nmos_leaf(0), nmos_leaf(1)});
  EXPECT_TRUE(n.conducts(0b11, DeviceType::nmos));
  EXPECT_FALSE(n.conducts(0b01, DeviceType::nmos));
  EXPECT_FALSE(n.conducts(0b10, DeviceType::nmos));
  EXPECT_FALSE(n.conducts(0b00, DeviceType::nmos));
}

TEST(Network, ParallelConduction) {
  const Network n = Network::parallel({nmos_leaf(0), nmos_leaf(1)});
  EXPECT_TRUE(n.conducts(0b11, DeviceType::nmos));
  EXPECT_TRUE(n.conducts(0b01, DeviceType::nmos));
  EXPECT_TRUE(n.conducts(0b10, DeviceType::nmos));
  EXPECT_FALSE(n.conducts(0b00, DeviceType::nmos));
}

TEST(Network, LeafOffLeakageScalesWithWidth) {
  const Network n = nmos_leaf(0, 3.0);
  EXPECT_DOUBLE_EQ(n.off_leakage(0b0, DeviceType::nmos, 1e-8, 5.0), 3e-8);
}

TEST(Network, ParallelOffLeakageAdds) {
  const Network n = Network::parallel({nmos_leaf(0, 1.0), nmos_leaf(1, 2.0)});
  EXPECT_DOUBLE_EQ(n.off_leakage(0b00, DeviceType::nmos, 1e-8, 5.0), 3e-8);
}

TEST(Network, SeriesStackEffect) {
  // Two series off devices: attenuated once by the stack factor.
  const Network n = Network::series({nmos_leaf(0), nmos_leaf(1)});
  const double both_off = n.off_leakage(0b00, DeviceType::nmos, 1e-8, 5.0);
  EXPECT_DOUBLE_EQ(both_off, 1e-8 / 5.0);
  // One off, one on: no attenuation — the off device limits alone.
  const double one_off = n.off_leakage(0b10, DeviceType::nmos, 1e-8, 5.0);
  EXPECT_DOUBLE_EQ(one_off, 1e-8);
}

TEST(Network, TripleStack) {
  const Network n =
      Network::series({nmos_leaf(0), nmos_leaf(1), nmos_leaf(2)});
  const double all_off = n.off_leakage(0b000, DeviceType::nmos, 1e-8, 4.0);
  EXPECT_DOUBLE_EQ(all_off, 1e-8 / 16.0);
}

TEST(Network, SeriesOfParallel) {
  // ((a || b) series c): off when c off, or both a and b off.
  const Network n = Network::series(
      {Network::parallel({nmos_leaf(0), nmos_leaf(1)}), nmos_leaf(2)});
  EXPECT_TRUE(n.conducts(0b101, DeviceType::nmos));
  EXPECT_FALSE(n.conducts(0b011, DeviceType::nmos)); // c off
  // c on, a+b off: leakage is the parallel sum, no stack discount.
  EXPECT_DOUBLE_EQ(n.off_leakage(0b100, DeviceType::nmos, 1e-8, 5.0), 2e-8);
  // everything off: min(parallel sum, leaf) / stack once = 1e-8 / 5.
  EXPECT_DOUBLE_EQ(n.off_leakage(0b000, DeviceType::nmos, 1e-8, 5.0),
                   1e-8 / 5.0);
}

TEST(Network, DeviceCount) {
  const Network n = Network::series(
      {Network::parallel({nmos_leaf(0), nmos_leaf(1)}), nmos_leaf(2)});
  EXPECT_EQ(n.device_count(), 3);
}

TEST(Network, EmptyCompositesRejected) {
  EXPECT_THROW(Network::series({}), std::invalid_argument);
  EXPECT_THROW(Network::parallel({}), std::invalid_argument);
}

TEST(StackFactor, ReasonableRangeAndTemperatureTrend) {
  const OperatingPoint cold{.temperature_k = 300.0, .vdd = 0.9};
  const OperatingPoint hot{.temperature_k = 383.15, .vdd = 0.9};
  const double sf_cold = stack_factor(t70(), cold);
  const double sf_hot = stack_factor(t70(), hot);
  EXPECT_GT(sf_cold, 2.0);
  EXPECT_LT(sf_cold, 15.0);
  EXPECT_LT(sf_hot, sf_cold); // stack benefit erodes when hot
  EXPECT_GE(sf_hot, 1.5);
}

} // namespace
} // namespace hotleakage
