// Figure/table renderers.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.h"

namespace harness {
namespace {

std::vector<Series> fake_series() {
  Series d{"drowsy", {}};
  Series g{"gated-vss", {}};
  for (const char* name : {"gcc", "mcf"}) {
    ExperimentResult rd;
    rd.benchmark = name;
    rd.energy.net_savings_frac = 0.42;
    rd.energy.perf_loss_frac = 0.013;
    d.results.push_back(rd);
    ExperimentResult rg = rd;
    rg.energy.net_savings_frac = 0.55;
    rg.energy.perf_loss_frac = 0.007;
    g.results.push_back(rg);
  }
  return {d, g};
}

TEST(Report, SavingsFigureContainsRowsAndAverage) {
  std::ostringstream os;
  print_savings_figure(os, "Figure 8", fake_series());
  const std::string out = os.str();
  EXPECT_NE(out.find("Figure 8"), std::string::npos);
  EXPECT_NE(out.find("gcc"), std::string::npos);
  EXPECT_NE(out.find("mcf"), std::string::npos);
  EXPECT_NE(out.find("AVG"), std::string::npos);
  EXPECT_NE(out.find("42.00%"), std::string::npos);
  EXPECT_NE(out.find("55.00%"), std::string::npos);
  EXPECT_NE(out.find("drowsy"), std::string::npos);
  EXPECT_NE(out.find("gated-vss"), std::string::npos);
}

TEST(Report, PerfFigureUsesPerfLoss) {
  std::ostringstream os;
  print_perf_figure(os, "Figure 9", fake_series());
  const std::string out = os.str();
  EXPECT_NE(out.find("1.30%"), std::string::npos);
  EXPECT_NE(out.find("0.70%"), std::string::npos);
}

TEST(Report, BestIntervalTable) {
  std::ostringstream os;
  print_best_interval_table(
      os, "Table 3",
      {{"gcc", 1024, 2048}, {"gzip", 2048, 65536}});
  const std::string out = os.str();
  EXPECT_NE(out.find("Table 3"), std::string::npos);
  EXPECT_NE(out.find("1k"), std::string::npos);
  EXPECT_NE(out.find("64k"), std::string::npos);
}

TEST(Report, FormatInterval) {
  EXPECT_EQ(format_interval(1024), "1k");
  EXPECT_EQ(format_interval(65536), "64k");
  EXPECT_EQ(format_interval(1000), "1000");
}

TEST(Report, DetailDump) {
  ExperimentResult r;
  r.benchmark = "vpr";
  r.config.technique = leakctl::TechniqueParams::gated_vss();
  r.config.decay_interval = 8192;
  r.energy.net_savings_frac = 0.5;
  std::ostringstream os;
  print_result_detail(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("vpr"), std::string::npos);
  EXPECT_NE(out.find("gated-vss"), std::string::npos);
  EXPECT_NE(out.find("8k"), std::string::npos);
}

TEST(Report, EmptySeriesSafe) {
  std::ostringstream os;
  EXPECT_NO_THROW(print_savings_figure(os, "empty", {}));
}

} // namespace
} // namespace harness
