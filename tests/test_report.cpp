// Figure/table renderers.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.h"

namespace harness {
namespace {

std::vector<Series> fake_series() {
  Series d{"drowsy", {}};
  Series g{"gated-vss", {}};
  for (const char* name : {"gcc", "mcf"}) {
    ExperimentResult rd;
    rd.benchmark = name;
    rd.energy.net_savings_frac = 0.42;
    rd.energy.perf_loss_frac = 0.013;
    d.results.push_back(rd);
    ExperimentResult rg = rd;
    rg.energy.net_savings_frac = 0.55;
    rg.energy.perf_loss_frac = 0.007;
    g.results.push_back(rg);
  }
  return {d, g};
}

TEST(Report, SavingsFigureContainsRowsAndAverage) {
  std::ostringstream os;
  print_savings_figure(os, "Figure 8", fake_series());
  const std::string out = os.str();
  EXPECT_NE(out.find("Figure 8"), std::string::npos);
  EXPECT_NE(out.find("gcc"), std::string::npos);
  EXPECT_NE(out.find("mcf"), std::string::npos);
  EXPECT_NE(out.find("AVG"), std::string::npos);
  EXPECT_NE(out.find("42.00%"), std::string::npos);
  EXPECT_NE(out.find("55.00%"), std::string::npos);
  EXPECT_NE(out.find("drowsy"), std::string::npos);
  EXPECT_NE(out.find("gated-vss"), std::string::npos);
}

TEST(Report, PerfFigureUsesPerfLoss) {
  std::ostringstream os;
  print_perf_figure(os, "Figure 9", fake_series());
  const std::string out = os.str();
  EXPECT_NE(out.find("1.30%"), std::string::npos);
  EXPECT_NE(out.find("0.70%"), std::string::npos);
}

TEST(Report, BestIntervalTable) {
  std::ostringstream os;
  print_best_interval_table(
      os, "Table 3",
      {{"gcc", 1024, 2048}, {"gzip", 2048, 65536}});
  const std::string out = os.str();
  EXPECT_NE(out.find("Table 3"), std::string::npos);
  EXPECT_NE(out.find("1k"), std::string::npos);
  EXPECT_NE(out.find("64k"), std::string::npos);
}

TEST(Report, FormatInterval) {
  EXPECT_EQ(format_interval(1024), "1k");
  EXPECT_EQ(format_interval(65536), "64k");
  EXPECT_EQ(format_interval(1000), "1000");
}

TEST(Report, DetailDump) {
  ExperimentResult r;
  r.benchmark = "vpr";
  r.config.technique = leakctl::TechniqueParams::gated_vss();
  r.config.decay_interval = 8192;
  r.energy.net_savings_frac = 0.5;
  std::ostringstream os;
  print_result_detail(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("vpr"), std::string::npos);
  EXPECT_NE(out.find("gated-vss"), std::string::npos);
  EXPECT_NE(out.find("8k"), std::string::npos);
}

TEST(Report, EmptySeriesSafe) {
  std::ostringstream os;
  EXPECT_NO_THROW(print_savings_figure(os, "empty", {}));
}

// --- golden snapshots -------------------------------------------------
// The renderers' exact text is an interface: scripts grep it, and the
// figure tables are diffed against the paper.  These snapshots pin every
// byte (alignment, rounding, trailing blank line) on a fixed
// 3-benchmark fixture; a formatting change must update them consciously.

std::vector<Series> golden_series() {
  struct Row {
    const char* name;
    double d_savings, d_loss, g_savings, g_loss;
  };
  // Values chosen to exercise rounding (x.xx5 never lands on a half-ulp)
  // and column width (one 2-digit, one fractional-only percentage).
  const Row rows[] = {
      {"gcc", 0.2512, 0.0123, 0.5500, 0.0075},
      {"mcf", 0.3001, 0.0250, 0.6250, 0.0110},
      {"twolf", 0.1875, 0.0050, 0.4000, 0.0020},
  };
  Series d{"drowsy", {}};
  Series g{"gated-vss", {}};
  for (const Row& row : rows) {
    ExperimentResult rd;
    rd.benchmark = row.name;
    rd.energy.net_savings_frac = row.d_savings;
    rd.energy.perf_loss_frac = row.d_loss;
    d.results.push_back(rd);
    ExperimentResult rg;
    rg.benchmark = row.name;
    rg.energy.net_savings_frac = row.g_savings;
    rg.energy.perf_loss_frac = row.g_loss;
    g.results.push_back(rg);
  }
  return {d, g};
}

TEST(ReportGolden, SavingsFigureExactText) {
  std::ostringstream os;
  print_savings_figure(os, "Golden Fig", golden_series());
  const std::string expected = "== Golden Fig ==\n"
                               "benchmark       drowsy   gated-vss\n"
                               "gcc             25.12%      55.00%\n"
                               "mcf             30.01%      62.50%\n"
                               "twolf           18.75%      40.00%\n"
                               "AVG             24.63%      52.50%\n"
                               "\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ReportGolden, PerfFigureExactText) {
  std::ostringstream os;
  print_perf_figure(os, "Golden Perf", golden_series());
  const std::string expected = "== Golden Perf ==\n"
                               "benchmark       drowsy   gated-vss\n"
                               "gcc              1.23%       0.75%\n"
                               "mcf              2.50%       1.10%\n"
                               "twolf            0.50%       0.20%\n"
                               "AVG              1.41%       0.68%\n"
                               "\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ReportGolden, BestIntervalTableExactText) {
  std::ostringstream os;
  print_best_interval_table(os, "Golden Table 3",
                            {{"gcc", 1024, 8192},
                             {"mcf", 524288, 65536},
                             {"twolf", 2048, 1000}});
  const std::string expected = "== Golden Table 3 ==\n"
                               "benchmark     drowsy   gated-vss\n"
                               "gcc               1k          8k\n"
                               "mcf             512k         64k\n"
                               "twolf             2k        1000\n"
                               "\n";
  EXPECT_EQ(os.str(), expected);
}

} // namespace
} // namespace harness
