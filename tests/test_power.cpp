// PowerParams table and Activity energy roll-up.
#include <gtest/gtest.h>

#include "wattch/power.h"

namespace wattch {
namespace {

using hotleakage::CacheGeometry;
using hotleakage::TechNode;
using hotleakage::tech_params;

PowerParams params() {
  const CacheGeometry l1{.lines = 1024, .line_bytes = 64, .tag_bits = 28,
                         .assoc = 2};
  const CacheGeometry l2{.lines = 32768, .line_bytes = 64, .tag_bits = 17,
                         .assoc = 2};
  return PowerParams::for_config(tech_params(TechNode::nm70), l1, l2);
}

TEST(Power, EventOrdering) {
  const PowerParams p = params();
  // tag < L1 read < L2 access < memory; counter tick tiny.
  EXPECT_LT(p.l1_tag_access, p.l1_read);
  EXPECT_LT(p.l1_read, p.l2_access);
  EXPECT_LT(p.l2_access, p.memory_access);
  EXPECT_LT(p.counter_tick, p.l1_tag_access);
  EXPECT_GT(p.l1_write, 0.0);
  EXPECT_GT(p.line_transition, 0.0);
  // The unconditional clock floor alone dwarfs a single cache access.
  EXPECT_GT(p.core.clock_per_cycle, p.l1_read);
}

TEST(Power, ActivityEnergyLinear) {
  const PowerParams p = params();
  Activity a;
  a.l1_reads = 10;
  const double e10 = a.energy(p);
  a.l1_reads = 20;
  const double e20 = a.energy(p);
  EXPECT_NEAR(e20, 2.0 * e10, 1e-18);
}

TEST(Power, ActivityEnergySumsAllTerms) {
  const PowerParams p = params();
  Activity a;
  a.l1_reads = 1;
  a.l1_writes = 1;
  a.l1_tag_accesses = 1;
  a.l2_accesses = 1;
  a.memory_accesses = 1;
  a.counter_ticks = 1;
  a.line_transitions = 1;
  a.drowsy_wakes = 1;
  a.cycles = 1;
  a.core.cycles = 1;
  const double expected = p.l1_read + p.l1_write + p.l1_tag_access +
                          p.l2_access + p.memory_access + p.counter_tick +
                          p.line_transition + p.drowsy_wake +
                          p.core.clock_per_cycle;
  EXPECT_NEAR(a.energy(p), expected, 1e-18);
}

TEST(Power, EmptyActivityZeroEnergy) {
  EXPECT_DOUBLE_EQ(Activity{}.energy(params()), 0.0);
}

TEST(Power, ActivityAccumulation) {
  Activity a;
  a.l1_reads = 5;
  a.cycles = 100;
  Activity b;
  b.l1_reads = 3;
  b.l2_accesses = 7;
  a += b;
  EXPECT_EQ(a.l1_reads, 8ull);
  EXPECT_EQ(a.l2_accesses, 7ull);
  EXPECT_EQ(a.cycles, 100ull);
}

TEST(Power, RuntimeCostCalibration) {
  // One percent of extra runtime on a ~2M-cycle run must cost the same
  // order as ~10 % of the L1's leakage energy at 85 C — the balance that
  // makes the paper's net-savings arithmetic work (Sec. 5.4: 0.85 % less
  // performance loss buys ~10 points of savings).  Extra runtime costs at
  // least the clock floor plus the re-executed work; the floor alone is
  // the conservative bound checked here (with a 2x work allowance).
  const PowerParams p = params();
  const double extra_runtime_j =
      0.01 * 2.0e6 * p.core.clock_per_cycle * 2.0;
  hotleakage::LeakageModel m(TechNode::nm70,
                             hotleakage::VariationConfig{.enabled = false});
  m.set_operating_point(hotleakage::OperatingPoint::at_celsius(85.0, 0.9));
  const CacheGeometry l1{.lines = 1024, .line_bytes = 64, .tag_bits = 28,
                         .assoc = 2};
  const double leak_j = m.structure_power(l1) * (2.0e6 / 5.6e9);
  const double weight = extra_runtime_j / leak_j;
  EXPECT_GT(weight, 0.03);
  EXPECT_LT(weight, 0.40);
}

} // namespace
} // namespace wattch
