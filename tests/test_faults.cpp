// Fault-injection building blocks: deterministic draws, Poisson sanity,
// protection-outcome classification, and the SEU Vdd/temperature hook.
#include <gtest/gtest.h>

#include "faults/fault_injector.h"
#include "faults/protection.h"
#include "hotleakage/tech.h"
#include "hotleakage/cell.h"

namespace faults {
namespace {

FaultConfig enabled_config(double rate, uint64_t seed = 9) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.standby_rate_per_bit_cycle = rate;
  cfg.seed = seed;
  return cfg;
}

TEST(FaultInjector, DisabledNeverDraws) {
  FaultConfig cfg;
  cfg.standby_rate_per_bit_cycle = 1e-3; // ignored: not enabled
  FaultInjector inj(cfg, 512);
  const WordFlipSummary s = inj.draw_standby(3, 100'000);
  EXPECT_EQ(s.total_flips, 0u);
  EXPECT_EQ(inj.injected(), 0ull);
  EXPECT_EQ(inj.checks(), 0ull);
}

TEST(FaultInjector, ZeroRateNeverDraws) {
  FaultInjector inj(enabled_config(0.0), 512);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inj.draw_standby(i, 1'000'000).total_flips, 0u);
  }
  EXPECT_EQ(inj.injected(), 0ull);
}

TEST(FaultInjector, DeterministicAcrossInstances) {
  FaultInjector a(enabled_config(1e-6, 77), 512);
  FaultInjector b(enabled_config(1e-6, 77), 512);
  for (int i = 0; i < 500; ++i) {
    const WordFlipSummary sa = a.draw_standby(i % 32, 10'000 + i);
    const WordFlipSummary sb = b.draw_standby(i % 32, 10'000 + i);
    ASSERT_EQ(sa.total_flips, sb.total_flips) << i;
    ASSERT_EQ(sa.words_single, sb.words_single) << i;
    ASSERT_EQ(sa.words_double, sb.words_double) << i;
    ASSERT_EQ(sa.words_multi, sb.words_multi) << i;
    ASSERT_EQ(sa.words_odd, sb.words_odd) << i;
  }
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_GT(a.injected(), 0ull);
}

TEST(FaultInjector, SeedChangesTheDrawSequence) {
  FaultInjector a(enabled_config(1e-6, 1), 512);
  FaultInjector b(enabled_config(1e-6, 2), 512);
  unsigned long long diffs = 0;
  for (int i = 0; i < 500; ++i) {
    const unsigned fa = a.draw_standby(i % 32, 20'000).total_flips;
    const unsigned fb = b.draw_standby(i % 32, 20'000).total_flips;
    diffs += fa != fb;
  }
  EXPECT_GT(diffs, 0ull);
}

TEST(FaultInjector, MeanTracksRateTimesExposure) {
  // ~Poisson with mean = rate * bits * span; check the empirical mean over
  // many draws lands within a loose band.
  const double rate = 1e-7;
  const uint64_t span = 50'000;
  const std::size_t bits = 512;
  FaultInjector inj(enabled_config(rate, 5), bits);
  const int n = 4000;
  unsigned long long total = 0;
  for (int i = 0; i < n; ++i) {
    total += inj.draw_standby(i % 64, span).total_flips;
  }
  const double expected = rate * bits * static_cast<double>(span);
  const double mean = static_cast<double>(total) / n;
  EXPECT_GT(mean, expected * 0.8);
  EXPECT_LT(mean, expected * 1.2);
}

TEST(FaultInjector, WordSummaryIsConsistent) {
  FaultInjector inj(enabled_config(5e-6, 3), 512);
  for (int i = 0; i < 300; ++i) {
    const WordFlipSummary s = inj.draw_standby(i % 16, 30'000);
    // Singles + doubles + multi cover every flipped word; flips cover at
    // least one per flipped word and odd words must be flipped words.
    const unsigned flipped_words =
        s.words_single + s.words_double + s.words_multi;
    EXPECT_LE(flipped_words, s.total_flips);
    EXPECT_LE(s.words_odd, flipped_words);
    EXPECT_GE(s.total_flips,
              s.words_single + 2 * s.words_double + 3 * s.words_multi);
  }
}

TEST(Protection, CheckBitGeometry) {
  const ProtectionParams none = ProtectionParams::for_scheme(Protection::none);
  EXPECT_EQ(none.check_bits_per_line(512), 0u);
  const ProtectionParams parity =
      ProtectionParams::for_scheme(Protection::parity);
  EXPECT_EQ(parity.check_bits_per_line(512), 8u); // 1 bit x 8 words
  const ProtectionParams secded =
      ProtectionParams::for_scheme(Protection::secded);
  EXPECT_EQ(secded.check_bits_per_line(512), 64u); // 8 bits x 8 words
  EXPECT_GT(secded.check_latency, 0u);
  EXPECT_GT(secded.correction_latency, 0u);
}

TEST(Protection, ClassifyNone) {
  const ProtectionParams prot = ProtectionParams::for_scheme(Protection::none);
  EXPECT_EQ(classify(prot, {}, false), Outcome::clean);
  WordFlipSummary one{.total_flips = 1, .words_single = 1, .words_odd = 1};
  EXPECT_EQ(classify(prot, one, false), Outcome::corruption_silent);
  EXPECT_EQ(classify(prot, one, true), Outcome::corruption_silent);
}

TEST(Protection, ClassifyParity) {
  const ProtectionParams prot =
      ProtectionParams::for_scheme(Protection::parity);
  WordFlipSummary odd{.total_flips = 1, .words_single = 1, .words_odd = 1};
  EXPECT_EQ(classify(prot, odd, /*dirty=*/false), Outcome::recovered);
  EXPECT_EQ(classify(prot, odd, /*dirty=*/true), Outcome::corruption_detected);
  // Two flips in one word: parity is blind.
  WordFlipSummary even{.total_flips = 2, .words_double = 1};
  EXPECT_EQ(classify(prot, even, false), Outcome::corruption_silent);
}

TEST(Protection, ClassifySecded) {
  const ProtectionParams prot =
      ProtectionParams::for_scheme(Protection::secded);
  WordFlipSummary single{.total_flips = 1, .words_single = 1, .words_odd = 1};
  EXPECT_EQ(classify(prot, single, false), Outcome::corrected);
  EXPECT_EQ(classify(prot, single, true), Outcome::corrected);
  WordFlipSummary dbl{.total_flips = 2, .words_double = 1};
  EXPECT_EQ(classify(prot, dbl, /*dirty=*/false), Outcome::recovered);
  EXPECT_EQ(classify(prot, dbl, /*dirty=*/true), Outcome::corruption_detected);
  WordFlipSummary triple{.total_flips = 3, .words_multi = 1, .words_odd = 1};
  EXPECT_EQ(classify(prot, triple, false), Outcome::corruption_silent);
  // A double-flip word forces the detect path even next to a multi word:
  // the refetch wipes the miscorrected word too.
  WordFlipSummary mixed{.total_flips = 5, .words_double = 1, .words_multi = 1,
                        .words_odd = 1};
  EXPECT_EQ(classify(prot, mixed, false), Outcome::recovered);
}

TEST(SeuScale, NominalIsUnity) {
  const hotleakage::TechParams& tech =
      hotleakage::tech_params(hotleakage::TechNode::nm70);
  EXPECT_NEAR(hotleakage::cells::sram_seu_scale(tech, tech.vdd_nominal, 300.0),
              1.0, 1e-9);
}

TEST(SeuScale, LowerVddRaisesRateExponentially) {
  const hotleakage::TechParams& tech =
      hotleakage::tech_params(hotleakage::TechNode::nm70);
  const double nominal =
      hotleakage::cells::sram_seu_scale(tech, tech.vdd_nominal, 300.0);
  const double drowsy = hotleakage::cells::sram_seu_scale(tech, 0.32, 300.0);
  EXPECT_GT(drowsy, nominal * 10.0); // an order of magnitude or more
  const double half = hotleakage::cells::sram_seu_scale(tech, 0.5, 300.0);
  EXPECT_GT(drowsy, half);
  EXPECT_GT(half, nominal);
}

TEST(SeuScale, TemperatureAccelerates) {
  const hotleakage::TechParams& tech =
      hotleakage::tech_params(hotleakage::TechNode::nm70);
  const double cool = hotleakage::cells::sram_seu_scale(tech, 0.32, 300.0);
  const double hot = hotleakage::cells::sram_seu_scale(tech, 0.32, 383.0);
  EXPECT_GT(hot, cool);
}

} // namespace
} // namespace faults
