// BackingStore abstraction: memory backend and decay stacked at L2.
#include <gtest/gtest.h>

#include "leakctl/controlled_cache.h"
#include "sim/processor.h"
#include "workload/generator.h"

namespace {

TEST(MemoryBackend, FixedLatencyAndCounting) {
  wattch::Activity act;
  sim::MemoryBackend mem(100, &act);
  EXPECT_EQ(mem.access(0x1000, false, 5), 100u);
  EXPECT_EQ(mem.access(0x2000, true, 6), 100u);
  mem.writeback(0x3000, 7);
  EXPECT_EQ(act.memory_accesses, 3ull);
}

TEST(MemoryBackend, NullActivityAllowed) {
  sim::MemoryBackend mem(100, nullptr);
  EXPECT_EQ(mem.access(0x1000, false, 5), 100u);
  EXPECT_NO_THROW(mem.writeback(0x1000, 6));
}

TEST(BackingStore, ControlledCacheServesAsL2) {
  // L1 (plain) -> controlled L2 -> memory: an induced L2 miss costs the
  // memory latency at the L1's miss path.
  const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
  sim::MemoryBackend memory(pcfg.memory_latency, nullptr);
  leakctl::ControlledCacheConfig l2cfg;
  l2cfg.cache = pcfg.l2;
  l2cfg.technique = leakctl::TechniqueParams::gated_vss();
  l2cfg.decay_interval = 4096;
  leakctl::ControlledCache l2(l2cfg, memory, nullptr);
  sim::BaselineDataPort l1(pcfg.l1d, l2, nullptr);

  // Cold miss: L1 (2) + L2 lookup (11) + memory (100).
  EXPECT_EQ(l1.access(0x100000, false, 10), 2u + 11u + 100u);
  // Hot: L1 hit.
  EXPECT_EQ(l1.access(0x100000, false, 20), 2u);
  // Force the line out of L1 but not out of (awake) L2.
  const uint64_t stride = 512 * 64;
  l1.access(0x100000 + stride, false, 30);
  l1.access(0x100000 + 2 * stride, false, 40);
  EXPECT_EQ(l1.access(0x100000, false, 50), 2u + 11u); // L2 hit
  // Idle past the L2 decay interval: the L2 line is destroyed, so the next
  // L1 miss goes all the way to memory (an induced L2 miss).
  l1.access(0x100000 + stride, false, 20'000); // evict from L1 again
  l1.access(0x100000 + 2 * stride, false, 20'010);
  const unsigned lat = l1.access(0x100000, false, 20'020);
  EXPECT_EQ(lat, 2u + 11u + 100u);
  EXPECT_GE(l2.stats().induced_misses, 1ull);
}

TEST(BackingStore, WritebackIntoControlledL2KeepsData) {
  const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
  sim::MemoryBackend memory(pcfg.memory_latency, nullptr);
  leakctl::ControlledCacheConfig l2cfg;
  l2cfg.cache = pcfg.l2;
  l2cfg.technique = leakctl::TechniqueParams::drowsy();
  l2cfg.decay_interval = 1 << 20; // effectively no decay in this test
  leakctl::ControlledCache l2(l2cfg, memory, nullptr);
  sim::BaselineDataPort l1(pcfg.l1d, l2, nullptr);

  l1.access(0x100000, true, 10); // dirty in L1
  const uint64_t stride = 512 * 64;
  l1.access(0x100000 + stride, false, 20);
  l1.access(0x100000 + 2 * stride, false, 30); // dirty victim -> L2
  // The written-back line is an L2 hit afterwards.
  EXPECT_EQ(l1.access(0x100000, false, 40), 2u + 11u);
}

TEST(BackingStore, EndToEndRunWithControlledL2) {
  const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
  wattch::Activity act;
  sim::MemoryBackend memory(pcfg.memory_latency, &act);
  leakctl::ControlledCacheConfig l2cfg;
  l2cfg.cache = pcfg.l2;
  l2cfg.technique = leakctl::TechniqueParams::gated_vss();
  l2cfg.decay_interval = 65536;
  leakctl::ControlledCache l2(l2cfg, memory, nullptr);
  sim::BaselineDataPort dport(pcfg.l1d, l2, &act);
  sim::InstrPort iport(pcfg.l1i, l2, &act);
  sim::OooCore core(pcfg.core, dport, iport, &act);
  workload::Generator gen(workload::profile_by_name("twolf"), 1);
  const sim::RunStats st = core.run(gen, 150'000);
  l2.finalize(st.cycles);
  EXPECT_EQ(st.instructions, 150'000ull);
  EXPECT_GT(l2.stats().accesses(), 0ull);
  // Most of a 2 MB L2 is idle at any moment: high turnoff.
  EXPECT_GT(l2.stats().turnoff_ratio(), 0.5);
}

} // namespace
