// Sweep engine: parallel execution must be bit-identical to the serial
// path, deterministic across thread counts, and must share one baseline
// run per key across workers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "harness/sweep.h"

namespace harness {
namespace {

ExperimentConfig quick_config() {
  return ExperimentConfig::make().instructions(120'000).variation(false);
}

std::vector<ExperimentResult> run_cells(unsigned threads) {
  SweepRunner runner(SweepOptions{.threads = threads});
  for (const char* name : {"gcc", "mcf", "twolf", "gzip"}) {
    ExperimentConfig cfg = quick_config();
    cfg.technique = leakctl::TechniqueParams::drowsy();
    runner.submit(workload::profile_by_name(name), cfg);
    cfg.technique = leakctl::TechniqueParams::gated_vss();
    runner.submit(workload::profile_by_name(name), cfg);
  }
  return values(runner.run());
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.base_run.cycles, b.base_run.cycles);
  EXPECT_EQ(a.tech_run.cycles, b.tech_run.cycles);
  EXPECT_EQ(a.base_run.instructions, b.base_run.instructions);
  EXPECT_EQ(a.control.induced_misses, b.control.induced_misses);
  EXPECT_EQ(a.control.slow_hits, b.control.slow_hits);
  EXPECT_EQ(a.control.decays, b.control.decays);
  EXPECT_EQ(a.control.wakes, b.control.wakes);
  EXPECT_DOUBLE_EQ(a.energy.baseline_leakage_j, b.energy.baseline_leakage_j);
  EXPECT_DOUBLE_EQ(a.energy.technique_leakage_j,
                   b.energy.technique_leakage_j);
  EXPECT_DOUBLE_EQ(a.energy.extra_dynamic_j, b.energy.extra_dynamic_j);
  EXPECT_DOUBLE_EQ(a.energy.net_savings_j, b.energy.net_savings_j);
  EXPECT_DOUBLE_EQ(a.energy.net_savings_frac, b.energy.net_savings_frac);
  EXPECT_DOUBLE_EQ(a.energy.perf_loss_frac, b.energy.perf_loss_frac);
  EXPECT_DOUBLE_EQ(a.energy.turnoff_ratio, b.energy.turnoff_ratio);
  EXPECT_DOUBLE_EQ(a.base_l1d_miss_rate, b.base_l1d_miss_rate);
}

TEST(Sweep, ParallelMatchesSerialBitIdentical) {
  clear_baseline_cache();
  const std::vector<ExperimentResult> serial = run_cells(1);
  clear_baseline_cache();
  const std::vector<ExperimentResult> parallel = run_cells(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(Sweep, DeterministicAcrossRepeatedParallelRuns) {
  clear_baseline_cache();
  const std::vector<ExperimentResult> a = run_cells(3);
  const std::vector<ExperimentResult> b = run_cells(3); // warm cache
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical(a[i], b[i]);
  }
}

TEST(Sweep, ResultsInSubmissionOrder) {
  SweepRunner runner(SweepOptions{.threads = 4});
  const std::vector<const char*> names = {"vpr", "gcc", "crafty", "parser"};
  for (const char* name : names) {
    runner.submit(workload::profile_by_name(name), quick_config());
  }
  EXPECT_EQ(runner.pending(), names.size());
  const std::vector<ExperimentResult> results = values(runner.run());
  ASSERT_EQ(results.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(results[i].benchmark, names[i]);
  }
  EXPECT_EQ(runner.pending(), 0u); // run() drains the queue
}

TEST(Sweep, BaselineSimulatedOncePerKeyUnderContention) {
  clear_baseline_cache();
  ASSERT_EQ(baseline_cache_size(), 0u);
  // 8 cells, all sharing one baseline key (same benchmark, same machine).
  SweepRunner runner(SweepOptions{.threads = 4});
  for (int i = 0; i < 8; ++i) {
    ExperimentConfig cfg = quick_config();
    cfg.decay_interval = 1024u << i; // vary a non-baseline field
    runner.submit(workload::profile_by_name("gap"), cfg);
  }
  const auto results = values(runner.run());
  EXPECT_EQ(baseline_cache_size(), 1u);
  for (const auto& r : results) {
    EXPECT_EQ(r.base_run.cycles, results.front().base_run.cycles);
  }
}

TEST(Sweep, IndexFormCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  SweepRunner runner(SweepOptions{.threads = 8});
  const std::vector<CellRun> runs =
      runner.run(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  ASSERT_EQ(runs.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_EQ(runs[i].info.status, CellStatus::ok) << "index " << i;
  }
}

TEST(Sweep, IndexFormBodyMayTakeTheCancellationToken) {
  std::vector<std::atomic<int>> hits(16);
  SweepRunner runner(SweepOptions{.threads = 4});
  runner.run(hits.size(),
             [&](std::size_t i, const sim::CancellationToken& token) {
               EXPECT_FALSE(token.cancelled());
               hits[i].fetch_add(1);
             });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Sweep, IndexFormIsolatesFailuresPerRow) {
  for (const unsigned threads : {1u, 4u}) {
    SweepRunner runner(SweepOptions{.threads = threads});
    const std::vector<CellRun> runs = runner.run(16, [](std::size_t i) {
      if (i == 3 || i == 11) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    ASSERT_EQ(runs.size(), 16u);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const bool fails = i == 3 || i == 11;
      EXPECT_EQ(runs[i].info.status,
                fails ? CellStatus::failed : CellStatus::ok)
          << "index " << i;
      EXPECT_EQ(static_cast<bool>(runs[i].exception), fails) << "index " << i;
    }
    try {
      std::rethrow_exception(runs[3].exception);
      FAIL() << "expected runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 3");
    }
  }
}

TEST(Sweep, ValuesPreservesThrownType) {
  // The fail-fast rethrow must deliver the *original* exception object,
  // not a flattened std::runtime_error: callers dispatch on type (and
  // on payload fields) to distinguish a bad config from a bad trace.
  struct CustomSweepFault {
    int index;
  };
  const std::vector<int> items = {0, 1, 2, 3};
  for (const unsigned threads : {1u, 2u}) {
    SweepRunner runner(SweepOptions{.threads = threads});
    auto rows = runner.run(items, [](int v) {
      if (v == 1) {
        throw CustomSweepFault{v};
      }
      return v;
    });
    try {
      values(std::move(rows));
      FAIL() << "expected CustomSweepFault at " << threads << " threads";
    } catch (const CustomSweepFault& f) {
      EXPECT_EQ(f.index, 1);
    }
  }
}

TEST(Sweep, ValuesWithoutFailFastYieldsPlaceholders) {
  struct CustomSweepFault {
    int index;
  };
  const std::vector<int> items = {10, 20, 30};
  SweepRunner runner(SweepOptions{.threads = 2});
  auto rows = runner.run(items, [](int v) {
    if (v == 20) {
      throw CustomSweepFault{v};
    }
    return v;
  });
  const std::vector<int> out = values(std::move(rows), /*fail_fast=*/false);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 0); // placeholder: value-initialized
  EXPECT_EQ(out[2], 30);
}

TEST(Sweep, MapFormPreservesOrder) {
  std::vector<int> items(64);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<int>(i);
  }
  SweepRunner runner(SweepOptions{.threads = 4});
  const std::vector<int> squares =
      values(runner.run(items, [](int v) { return v * v; }));
  ASSERT_EQ(squares.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(squares[i], items[i] * items[i]);
  }
}

TEST(Sweep, ResolveThreadCount) {
  ::unsetenv("HLCC_THREADS");
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_GE(resolve_thread_count(0), 1u);

  ::setenv("HLCC_THREADS", "5", 1);
  EXPECT_EQ(resolve_thread_count(0), 5u);
  EXPECT_EQ(resolve_thread_count(2), 2u); // explicit beats env
  ::unsetenv("HLCC_THREADS");
}

TEST(Sweep, ResolveThreadCountRejectsJunkEnv) {
  // A malformed HLCC_THREADS must be a loud error, not a silent fallback
  // to hardware concurrency: the user asked for a specific thread count
  // and did not get it.
  for (const char* junk : {"abc", "garbage", "0", "-3", "5x", "", " 4",
                           "99999999999999999999"}) {
    ::setenv("HLCC_THREADS", junk, 1);
    EXPECT_THROW(resolve_thread_count(0), std::invalid_argument)
        << "HLCC_THREADS=\"" << junk << "\"";
    // An explicit request never consults the env, junk or not.
    EXPECT_EQ(resolve_thread_count(2), 2u)
        << "HLCC_THREADS=\"" << junk << "\"";
  }
  ::unsetenv("HLCC_THREADS");
}

TEST(Sweep, ResolveBatchLimit) {
  ::unsetenv("HLCC_BATCH");
  EXPECT_EQ(resolve_batch_limit(0), 16u); // auto default
  EXPECT_EQ(resolve_batch_limit(1), 1u);  // explicit disable
  EXPECT_EQ(resolve_batch_limit(7), 7u);

  ::setenv("HLCC_BATCH", "4", 1);
  EXPECT_EQ(resolve_batch_limit(0), 4u);
  EXPECT_EQ(resolve_batch_limit(2), 2u); // explicit beats env
  for (const char* junk : {"abc", "0", "-2", "4x", "", " 8", "1.5"}) {
    ::setenv("HLCC_BATCH", junk, 1);
    EXPECT_THROW(resolve_batch_limit(0), std::invalid_argument)
        << "HLCC_BATCH=\"" << junk << "\"";
  }
  ::unsetenv("HLCC_BATCH");
}

TEST(Sweep, RunSuiteMatchesSerialSuite) {
  clear_baseline_cache();
  ExperimentConfig cfg = quick_config();
  cfg.instructions = 60'000;
  const SuiteResult serial = run_suite(cfg, SweepOptions{.threads = 1});
  clear_baseline_cache();
  const SuiteResult parallel = run_suite(cfg, SweepOptions{.threads = 4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
  EXPECT_DOUBLE_EQ(serial.mean_net_savings(), parallel.mean_net_savings());
  EXPECT_DOUBLE_EQ(serial.mean_slowdown(), parallel.mean_slowdown());
}

TEST(Sweep, BuilderProducesSameConfigAsStruct) {
  ExperimentConfig by_hand;
  by_hand.l2_latency = 8;
  by_hand.temperature_c = 85.0;
  by_hand.instructions = 250'000;
  by_hand.technique = leakctl::TechniqueParams::gated_vss();
  by_hand.decay_interval = 8192;
  by_hand.variation = false;
  by_hand.adaptive = ExperimentConfig::AdaptiveScheme::feedback;

  const ExperimentConfig built =
      ExperimentConfig::make()
          .l2_latency(8)
          .temperature(85.0)
          .instructions(250'000)
          .technique(leakctl::TechniqueParams::gated_vss())
          .decay_interval(8192)
          .variation(false)
          .adaptive(ExperimentConfig::AdaptiveScheme::feedback)
          .build();

  EXPECT_EQ(built.l2_latency, by_hand.l2_latency);
  EXPECT_DOUBLE_EQ(built.temperature_c, by_hand.temperature_c);
  EXPECT_EQ(built.instructions, by_hand.instructions);
  EXPECT_EQ(built.technique.mode, by_hand.technique.mode);
  EXPECT_EQ(built.decay_interval, by_hand.decay_interval);
  EXPECT_EQ(built.variation, by_hand.variation);
  EXPECT_EQ(built.adaptive, by_hand.adaptive);
}

TEST(Sweep, BuilderValidatesOnBuild) {
  EXPECT_THROW(ExperimentConfig::make().instructions(0).build(),
               std::invalid_argument);
  // Implicit conversion also validates.
  const auto use = [](const ExperimentConfig& cfg) { return cfg.l2_latency; };
  EXPECT_THROW(use(ExperimentConfig::make().l2_latency(0)),
               std::invalid_argument);
}

} // namespace
} // namespace harness
