// Trace capture and replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/tracefile.h"

namespace workload {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct FileGuard {
  explicit FileGuard(std::string p) : path(std::move(p)) {}
  ~FileGuard() { std::remove(path.c_str()); }
  std::string path;
};

TEST(TraceFile, RoundTripBitExact) {
  const std::string path = temp_path("hlcc_roundtrip.trc");
  FileGuard guard(path);
  Generator gen(profile_by_name("gcc"), 7);
  const uint64_t n = write_trace(path, gen, 20'000);
  EXPECT_EQ(n, 20'000ull);

  Generator ref(profile_by_name("gcc"), 7);
  TraceFileReader reader(path);
  EXPECT_EQ(reader.total_records(), 20'000ull);
  sim::MicroOp a, b;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(reader.next(a));
    ASSERT_TRUE(ref.next(b));
    ASSERT_EQ(static_cast<int>(a.op), static_cast<int>(b.op)) << i;
    ASSERT_EQ(a.pc, b.pc) << i;
    ASSERT_EQ(a.mem_addr, b.mem_addr) << i;
    ASSERT_EQ(a.src1_dist, b.src1_dist) << i;
    ASSERT_EQ(a.src2_dist, b.src2_dist) << i;
    ASSERT_EQ(a.taken, b.taken) << i;
    ASSERT_EQ(a.target, b.target) << i;
  }
  EXPECT_FALSE(reader.next(a)); // exhausted
}

TEST(TraceFile, RewindReplays) {
  const std::string path = temp_path("hlcc_rewind.trc");
  FileGuard guard(path);
  Generator gen(profile_by_name("mcf"), 3);
  write_trace(path, gen, 1'000);

  TraceFileReader reader(path);
  sim::MicroOp first, again, cur;
  ASSERT_TRUE(reader.next(first));
  while (reader.next(cur)) {
  }
  EXPECT_EQ(reader.records_read(), 1'000ull);
  reader.rewind();
  ASSERT_TRUE(reader.next(again));
  EXPECT_EQ(first.pc, again.pc);
  EXPECT_EQ(first.mem_addr, again.mem_addr);
}

TEST(TraceFile, ShortSourceWritesFewer) {
  // A source that ends early: count reflects reality.
  class TwoOps final : public sim::TraceSource {
  public:
    bool next(sim::MicroOp& op) override {
      if (n_ >= 2) return false;
      op = sim::MicroOp{};
      op.pc = 0x1000 + 4 * n_++;
      return true;
    }

  private:
    int n_ = 0;
  } source;
  const std::string path = temp_path("hlcc_short.trc");
  FileGuard guard(path);
  EXPECT_EQ(write_trace(path, source, 100), 2ull);
  TraceFileReader reader(path);
  EXPECT_EQ(reader.total_records(), 2ull);
}

TEST(TraceFile, RejectsMissingAndCorrupt) {
  EXPECT_THROW(TraceFileReader{"/nonexistent/path.trc"}, std::runtime_error);

  const std::string path = temp_path("hlcc_corrupt.trc");
  FileGuard guard(path);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTATRACE_______", f);
  std::fclose(f);
  EXPECT_THROW(TraceFileReader{path}, std::runtime_error);
}

TEST(TraceFile, RejectsTruncatedFileAtOpen) {
  // The header promises N records; chopping the file must fail loudly at
  // construction, not silently end the trace mid-replay.
  const std::string path = temp_path("hlcc_truncated.trc");
  FileGuard guard(path);
  Generator gen(profile_by_name("gcc"), 2);
  write_trace(path, gen, 1'000);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 17); // mid-record chop
  try {
    TraceFileReader reader(path);
    FAIL() << "expected truncated file to be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("1000 records"), std::string::npos)
        << e.what();
  }
}

TEST(TraceFile, RejectsBitFlippedRecordCount) {
  // A flipped bit in the header count desynchronizes count and size.
  const std::string path = temp_path("hlcc_bitflip.trc");
  FileGuard guard(path);
  Generator gen(profile_by_name("mcf"), 4);
  write_trace(path, gen, 500);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0); // first byte of the count
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);
  std::fputc(byte ^ 0x04, f); // 500 -> 496 or 504
  std::fclose(f);
  EXPECT_THROW(TraceFileReader{path}, std::runtime_error);
}

TEST(TraceFile, ThrowsOnMidStreamShortRead) {
  // The file passes validation at open, then shrinks under the reader:
  // next() must throw instead of ending the trace early.
  const std::string path = temp_path("hlcc_shrink.trc");
  FileGuard guard(path);
  Generator gen(profile_by_name("gcc"), 6);
  // Larger than any stdio read-ahead buffer, so the reader must go back
  // to the (shrunk) file mid-stream.
  const uint64_t n = 10'000;
  write_trace(path, gen, n);
  TraceFileReader reader(path);
  sim::MicroOp op;
  ASSERT_TRUE(reader.next(op));
  std::filesystem::resize_file(path, 16 + 10 * 30); // keep only 10 records
  bool threw = false;
  try {
    while (reader.next(op)) {
    }
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("short read"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(threw);
  EXPECT_LT(reader.records_read(), n);
}

TEST(TraceFile, ReplayDrivesIdenticalSimulation) {
  // Replaying a captured trace must give bit-identical simulation results.
  const std::string path = temp_path("hlcc_sim.trc");
  FileGuard guard(path);
  Generator gen(profile_by_name("twolf"), 5);
  write_trace(path, gen, 50'000);

  auto run = [](sim::TraceSource& src) {
    sim::ProcessorConfig cfg = sim::ProcessorConfig::table2(11);
    sim::Processor proc(cfg);
    sim::BaselineDataPort dport(cfg.l1d, proc.l2(), nullptr);
    return proc.run(src, dport, 50'000);
  };
  Generator fresh(profile_by_name("twolf"), 5);
  const sim::RunStats from_gen = run(fresh);
  TraceFileReader reader(path);
  const sim::RunStats from_file = run(reader);
  EXPECT_EQ(from_gen.cycles, from_file.cycles);
  EXPECT_EQ(from_gen.loads, from_file.loads);
  EXPECT_EQ(from_gen.branch.direction_mispredicts,
            from_file.branch.direction_mispredicts);
}

} // namespace
} // namespace workload
