// Resilience layer of the sweep engine: per-cell fault isolation with
// the error taxonomy, deterministic retry, the cooperative watchdog, and
// the crash-safe checkpoint journal — including kill/resume runs that
// must reproduce an uninterrupted sweep bit-identically from a journal
// truncated at arbitrary byte offsets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/journal.h"
#include "harness/metrics.h"
#include "harness/report_json.h"
#include "harness/sweep.h"
#include "sim/cancellation.h"
#include "workload/tracefile.h"

namespace harness {
namespace {

ExperimentConfig quick_config() {
  return ExperimentConfig::make().instructions(60'000).variation(false);
}

/// A config that fails ExperimentConfig::validate deterministically
/// (decay_interval must be a multiple of 4).
ExperimentConfig broken_config() {
  ExperimentConfig cfg = quick_config();
  cfg.decay_interval = 3;
  return cfg;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << text;
  ASSERT_TRUE(os.flush()) << path;
}

/// Bit-identity on the deterministic payload (execution metadata —
/// duration, resumed — is legitimately run-dependent).
void expect_payload_identical(const ExperimentResult& a,
                              const ExperimentResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(config_hash(a.config), config_hash(b.config));
  EXPECT_EQ(a.base_run.cycles, b.base_run.cycles);
  EXPECT_EQ(a.base_run.instructions, b.base_run.instructions);
  EXPECT_EQ(a.base_run.branch.direction_mispredicts,
            b.base_run.branch.direction_mispredicts);
  EXPECT_EQ(a.tech_run.cycles, b.tech_run.cycles);
  EXPECT_EQ(a.control.hits, b.control.hits);
  EXPECT_EQ(a.control.induced_misses, b.control.induced_misses);
  EXPECT_EQ(a.control.decays, b.control.decays);
  EXPECT_EQ(a.control.wakes, b.control.wakes);
  // Exact == on doubles, not near-equality: the journal must round-trip
  // every bit.
  EXPECT_EQ(a.energy.baseline_leakage_j, b.energy.baseline_leakage_j);
  EXPECT_EQ(a.energy.technique_leakage_j, b.energy.technique_leakage_j);
  EXPECT_EQ(a.energy.extra_dynamic_j, b.energy.extra_dynamic_j);
  EXPECT_EQ(a.energy.net_savings_j, b.energy.net_savings_j);
  EXPECT_EQ(a.energy.net_savings_frac, b.energy.net_savings_frac);
  EXPECT_EQ(a.energy.perf_loss_frac, b.energy.perf_loss_frac);
  EXPECT_EQ(a.energy.turnoff_ratio, b.energy.turnoff_ratio);
  EXPECT_EQ(a.base_l1d_miss_rate, b.base_l1d_miss_rate);
}

// --- fault isolation --------------------------------------------------

const std::vector<const char*> kGridNames = {"gcc", "mcf", "twolf",
                                             "gzip", "vpr"};

SweepRunner grid_runner(SweepOptions opts,
                        const std::vector<std::size_t>& broken) {
  SweepRunner runner(std::move(opts));
  for (std::size_t i = 0; i < kGridNames.size(); ++i) {
    bool is_broken = false;
    for (const std::size_t b : broken) {
      is_broken = is_broken || b == i;
    }
    runner.submit(workload::profile_by_name(kGridNames[i]),
                  is_broken ? broken_config() : quick_config());
  }
  return runner;
}

TEST(SweepResilience, FaultIsolationFirstMiddleLast) {
  // Failures at the first, middle, and last cells must not cost any
  // other cell its result — the acceptance case for fail_fast=false.
  const std::vector<std::size_t> broken = {0, 2, kGridNames.size() - 1};
  for (const unsigned threads : {1u, 3u}) {
    SweepRunner clean = grid_runner(SweepOptions{.threads = threads}, {});
    const std::vector<ExperimentResult> want = values(clean.run());

    SweepRunner faulty =
        grid_runner(SweepOptions{.threads = threads}, broken);
    const std::vector<CellResult<ExperimentResult>> got = faulty.run();
    ASSERT_EQ(got.size(), kGridNames.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      bool is_broken = false;
      for (const std::size_t b : broken) {
        is_broken = is_broken || b == i;
      }
      if (is_broken) {
        EXPECT_EQ(got[i].status(), CellStatus::failed) << "cell " << i;
        EXPECT_EQ(got[i].info.error_kind, CellErrorKind::config_invalid);
        EXPECT_NE(got[i].error().find("decay_interval"), std::string::npos);
        EXPECT_TRUE(got[i].exception != nullptr);
        EXPECT_EQ(got[i].info.attempts, 1u); // config errors never retry
      } else {
        EXPECT_TRUE(got[i].ok()) << "cell " << i << ": " << got[i].error();
        expect_payload_identical(got[i].value, want[i]);
      }
    }
  }
}

TEST(SweepResilience, FailFastOffReturnsPlaceholdersInOrder) {
  SweepOptions opts;
  opts.threads = 2;
  opts.fail_fast = false;
  SweepRunner runner = grid_runner(std::move(opts), {1});
  const std::vector<ExperimentResult> results =
      values(runner.run(), /*fail_fast=*/false); // must not throw
  ASSERT_EQ(results.size(), kGridNames.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].benchmark, kGridNames[i]);
    EXPECT_EQ(results[i].cell.status,
              i == 1 ? CellStatus::failed : CellStatus::ok);
  }
  // The placeholder row carries identity but zeroed measurements.
  EXPECT_EQ(results[1].tech_run.cycles, 0u);
  EXPECT_EQ(results[1].cell.error_kind, CellErrorKind::config_invalid);
}

TEST(SweepResilience, FailFastDefaultRethrowsOriginalType) {
  SweepRunner runner = grid_runner(SweepOptions{.threads = 3}, {1});
  EXPECT_EQ(runner.options().fail_fast, true); // unchanged legacy default
  EXPECT_THROW(values(runner.run(), runner.options().fail_fast),
               std::invalid_argument);
}

// --- retry ------------------------------------------------------------

TEST(SweepResilience, TransientFailuresRetryWithAttemptCounts) {
  metrics::Registry& reg = metrics::Registry::global();
  const uint64_t retries_before = reg.counter("sweep.retries");
  std::vector<std::atomic<int>> calls(3);
  SweepOptions opts;
  opts.threads = 2;
  opts.retry.max_attempts = 3;
  opts.retry.base_backoff_ms = 1; // keep the test fast
  SweepRunner runner(opts);
  const std::vector<CellRun> runs = runner.run(
      calls.size(), [&](std::size_t i, const sim::CancellationToken&) {
        const int call = calls[i].fetch_add(1) + 1;
        if (i == 1 && call < 3) {
          throw workload::TraceError("simulated transient trace failure");
        }
      });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_TRUE(runs[0].info.ok());
  EXPECT_EQ(runs[0].info.attempts, 1u);
  EXPECT_TRUE(runs[1].info.ok()); // third attempt succeeded
  EXPECT_EQ(runs[1].info.attempts, 3u);
  EXPECT_EQ(calls[1].load(), 3);
  EXPECT_EQ(reg.counter("sweep.retries"), retries_before + 2);
}

TEST(SweepResilience, ExhaustedRetriesReportTheFinalError) {
  SweepOptions opts;
  opts.retry.max_attempts = 2;
  opts.retry.base_backoff_ms = 1;
  SweepRunner runner(opts);
  const std::vector<CellRun> runs =
      runner.run(1, [](std::size_t, const sim::CancellationToken&) {
        throw workload::TraceError("still broken");
      });
  EXPECT_EQ(runs[0].info.status, CellStatus::failed);
  EXPECT_EQ(runs[0].info.error_kind, CellErrorKind::trace_io);
  EXPECT_EQ(runs[0].info.attempts, 2u);
  EXPECT_EQ(runs[0].info.error, "still broken");
}

TEST(SweepResilience, ConfigAndInvariantErrorsNeverRetry) {
  SweepOptions opts;
  opts.retry.max_attempts = 5;
  opts.retry.base_backoff_ms = 1;
  std::atomic<int> calls{0};
  SweepRunner runner(opts);
  const std::vector<CellRun> runs = runner.run(
      2, [&](std::size_t i, const sim::CancellationToken&) {
        calls.fetch_add(1);
        if (i == 0) {
          throw std::invalid_argument("bad knob");
        }
        throw std::logic_error("invariant violated");
      });
  EXPECT_EQ(runs[0].info.error_kind, CellErrorKind::config_invalid);
  EXPECT_EQ(runs[1].info.error_kind, CellErrorKind::sim_invariant);
  EXPECT_EQ(runs[0].info.attempts, 1u);
  EXPECT_EQ(runs[1].info.attempts, 1u);
  EXPECT_EQ(calls.load(), 2); // a deterministic error reruns nothing
}

TEST(SweepResilience, BackoffScheduleIsDeterministicAndCapped) {
  const RetryPolicy policy{.max_attempts = 8,
                           .base_backoff_ms = 25,
                           .max_backoff_ms = 1000};
  EXPECT_EQ(retry_backoff_ms(policy, 2), 25u);
  EXPECT_EQ(retry_backoff_ms(policy, 3), 50u);
  EXPECT_EQ(retry_backoff_ms(policy, 4), 100u);
  EXPECT_EQ(retry_backoff_ms(policy, 7), 800u);
  EXPECT_EQ(retry_backoff_ms(policy, 8), 1000u);  // capped
  EXPECT_EQ(retry_backoff_ms(policy, 60), 1000u); // shift stays defined
}

// --- watchdog timeout -------------------------------------------------

TEST(SweepResilience, WatchdogTimesOutOverdueCellWithoutRetry) {
  SweepOptions opts;
  opts.threads = 2;
  opts.cell_timeout_s = 0.05;
  opts.retry.max_attempts = 3; // must NOT apply to timeouts
  std::atomic<int> slow_calls{0};
  SweepRunner runner(opts);
  const std::vector<CellRun> runs = runner.run(
      2, [&](std::size_t i, const sim::CancellationToken& token) {
        if (i == 0) {
          return; // fast cell: unaffected by its neighbor's overrun
        }
        slow_calls.fetch_add(1);
        for (;;) { // simulated hang, polling like OooCore::run does
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          token.poll("test cell");
        }
      });
  EXPECT_TRUE(runs[0].info.ok());
  EXPECT_EQ(runs[1].info.status, CellStatus::timed_out);
  EXPECT_EQ(runs[1].info.error_kind, CellErrorKind::timeout);
  EXPECT_EQ(runs[1].info.attempts, 1u);
  EXPECT_EQ(slow_calls.load(), 1);
  EXPECT_NE(runs[1].info.error.find("cancelled"), std::string::npos);
}

TEST(SweepResilience, CancelledTokenUnwindsRunExperiment) {
  sim::CancellationToken token;
  token.cancel();
  EXPECT_THROW(run_experiment(workload::profile_by_name("gcc"),
                              quick_config(), &token),
               sim::CancelledError);
}

// --- knob resolution --------------------------------------------------

TEST(SweepResilience, ResolveMaxAttempts) {
  ::unsetenv("HLCC_RETRIES");
  EXPECT_EQ(resolve_max_attempts(RetryPolicy{}), 1u);
  EXPECT_EQ(resolve_max_attempts(RetryPolicy{.max_attempts = 4}), 4u);
  ::setenv("HLCC_RETRIES", "3", 1);
  EXPECT_EQ(resolve_max_attempts(RetryPolicy{}), 3u);
  EXPECT_EQ(resolve_max_attempts(RetryPolicy{.max_attempts = 2}), 2u);
  for (const char* junk : {"abc", "0", "-1", "2x", ""}) {
    ::setenv("HLCC_RETRIES", junk, 1);
    EXPECT_THROW(resolve_max_attempts(RetryPolicy{}), std::invalid_argument)
        << "HLCC_RETRIES=\"" << junk << "\"";
  }
  ::unsetenv("HLCC_RETRIES");
}

TEST(SweepResilience, ResolveCellTimeout) {
  ::unsetenv("HLCC_CELL_TIMEOUT");
  EXPECT_EQ(resolve_cell_timeout_s(0.0), 0.0);
  EXPECT_EQ(resolve_cell_timeout_s(2.5), 2.5);
  EXPECT_THROW(resolve_cell_timeout_s(-1.0), std::invalid_argument);
  ::setenv("HLCC_CELL_TIMEOUT", "0.5", 1);
  EXPECT_EQ(resolve_cell_timeout_s(0.0), 0.5);
  EXPECT_EQ(resolve_cell_timeout_s(3.0), 3.0); // explicit beats env
  for (const char* junk : {"abc", "0", "-2", "1.5s", ""}) {
    ::setenv("HLCC_CELL_TIMEOUT", junk, 1);
    EXPECT_THROW(resolve_cell_timeout_s(0.0), std::invalid_argument)
        << "HLCC_CELL_TIMEOUT=\"" << junk << "\"";
  }
  ::unsetenv("HLCC_CELL_TIMEOUT");
}

TEST(SweepResilience, ResolveJournalPath) {
  ::unsetenv("HLCC_RESUME");
  EXPECT_EQ(resolve_journal_path(""), "");
  EXPECT_EQ(resolve_journal_path("/tmp/j.jsonl"), "/tmp/j.jsonl");
  ::setenv("HLCC_RESUME", "/tmp/env.jsonl", 1);
  EXPECT_EQ(resolve_journal_path(""), "/tmp/env.jsonl");
  EXPECT_EQ(resolve_journal_path("/tmp/j.jsonl"), "/tmp/j.jsonl");
  ::unsetenv("HLCC_RESUME");
}

// --- journal ----------------------------------------------------------

TEST(SweepJournal, KeyFormat) {
  EXPECT_EQ(cell_journal_key(0xabcu, "gcc"), "0x0000000000000abc:gcc");
  EXPECT_EQ(cell_journal_key(~0ull, "mcf"), "0xffffffffffffffff:mcf");
}

TEST(SweepJournal, AppendLoadRoundTripLaterRecordsWin) {
  const std::string path = temp_path("hlcc_journal_roundtrip.jsonl");
  {
    SweepJournal journal(path);
    JournalRecord ok;
    ok.key = "0x0000000000000001:gcc";
    ok.info.attempts = 2;
    ok.info.duration_s = 0.25;
    ok.result = json::Value::object();
    ok.result["benchmark"] = "gcc";
    journal.append(ok);

    JournalRecord failed;
    failed.key = "0x0000000000000002:mcf";
    failed.info.status = CellStatus::failed;
    failed.info.error_kind = CellErrorKind::trace_io;
    failed.info.error = "short read";
    journal.append(failed);

    JournalRecord retried = failed; // same key, later outcome
    retried.info.status = CellStatus::ok;
    retried.info.error_kind = CellErrorKind::none;
    retried.info.error.clear();
    retried.info.attempts = 3;
    journal.append(retried);
  }
  const auto records = SweepJournal::load(path);
  ASSERT_EQ(records.size(), 2u);
  const JournalRecord& gcc = records.at("0x0000000000000001:gcc");
  EXPECT_TRUE(gcc.info.ok());
  EXPECT_EQ(gcc.info.attempts, 2u);
  EXPECT_EQ(gcc.info.duration_s, 0.25);
  EXPECT_EQ(gcc.result.at("benchmark").as_string(), "gcc");
  const JournalRecord& mcf = records.at("0x0000000000000002:mcf");
  EXPECT_TRUE(mcf.info.ok()) << "later record must win";
  EXPECT_EQ(mcf.info.attempts, 3u);
  std::remove(path.c_str());
}

TEST(SweepJournal, LoadToleratesTruncationAtEveryByteOffset) {
  const std::string path = temp_path("hlcc_journal_full.jsonl");
  {
    SweepJournal journal(path);
    for (int i = 0; i < 3; ++i) {
      JournalRecord rec;
      rec.key = cell_journal_key(static_cast<uint64_t>(i), "gcc");
      rec.info.duration_s = 0.5 * i;
      rec.result = json::Value::object();
      rec.result["i"] = i;
      journal.append(rec);
    }
  }
  const std::string full = read_file(path);
  ASSERT_FALSE(full.empty());
  const std::string cut = temp_path("hlcc_journal_cut.jsonl");
  std::size_t last_count = 0;
  for (std::size_t offset = 0; offset <= full.size(); ++offset) {
    write_file(cut, full.substr(0, offset));
    const auto records = SweepJournal::load(cut); // must never throw
    EXPECT_GE(records.size(), last_count) << "offset " << offset;
    EXPECT_LE(records.size(), 3u) << "offset " << offset;
    if (offset == full.size()) {
      EXPECT_EQ(records.size(), 3u); // every record, once intact
    }
    last_count = records.size() > last_count ? records.size() : last_count;
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(SweepJournal, ReopenRepairsTornTailAndKeepsLaterAppends) {
  const std::string path = temp_path("hlcc_journal_torn.jsonl");
  {
    SweepJournal journal(path);
    JournalRecord rec;
    rec.key = "0x0000000000000001:gcc";
    journal.append(rec);
  }
  // Simulate SIGKILL mid-write: a torn, unterminated second line.
  std::ofstream(path, std::ios::binary | std::ios::app)
      << "{\"v\":1,\"key\":\"0x00000000000000";
  {
    SweepJournal journal(path); // must terminate the torn line first
    JournalRecord rec;
    rec.key = "0x0000000000000002:mcf";
    journal.append(rec);
  }
  const auto records = SweepJournal::load(path);
  ASSERT_EQ(records.size(), 2u); // torn line skipped, both appends intact
  EXPECT_TRUE(records.count("0x0000000000000001:gcc"));
  EXPECT_TRUE(records.count("0x0000000000000002:mcf"));
  std::remove(path.c_str());
}

TEST(SweepJournal, ResultSerializationRoundTripsExactly) {
  // The resume path reconstructs results from journal JSON *text*; every
  // field must survive the double round-trip bit for bit.
  const ExperimentResult want =
      run_experiment(workload::profile_by_name("parser"), quick_config());
  const json::Value doc = json::Value::parse(to_json(want).dump());
  ExperimentResult got;
  got.benchmark = doc.at("benchmark").as_string();
  got.config = want.config;
  got.energy = energy_from_json(doc.at("energy"));
  got.base_run = run_stats_from_json(doc.at("base_run"));
  got.tech_run = run_stats_from_json(doc.at("tech_run"));
  got.control = control_stats_from_json(doc.at("control"));
  got.base_l1d_miss_rate = doc.at("base_l1d_miss_rate").as_double();
  expect_payload_identical(got, want);
  EXPECT_EQ(got.base_run.loads, want.base_run.loads);
  EXPECT_EQ(got.tech_run.branch.btb_misses, want.tech_run.branch.btb_misses);
  EXPECT_EQ(got.energy.gross_savings_j, want.energy.gross_savings_j);
  // CellInfo round-trips through the report row too.
  const CellInfo cell = cell_info_from_json(doc.at("cell"));
  EXPECT_EQ(cell.status, want.cell.status);
  EXPECT_EQ(cell.attempts, want.cell.attempts);
}

// --- kill / resume ----------------------------------------------------

TEST(SweepResilience, ResumeFromTruncatedJournalIsBitIdentical) {
  // Reference: an uninterrupted run (no journal).
  SweepRunner reference = grid_runner(SweepOptions{.threads = 2}, {});
  const std::vector<ExperimentResult> want = values(reference.run());

  // A complete journal from one clean journaled run.
  const std::string full_path = temp_path("hlcc_resume_full.jsonl");
  {
    SweepOptions opts;
    opts.threads = 2;
    opts.journal_path = full_path;
    SweepRunner runner = grid_runner(std::move(opts), {});
    const std::vector<ExperimentResult> journaled = values(runner.run());
    ASSERT_EQ(journaled.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_payload_identical(journaled[i], want[i]);
    }
  }
  const std::string full = read_file(full_path);
  ASSERT_FALSE(full.empty());

  // Kill at several instants (journal truncated at arbitrary offsets,
  // including mid-record), resume at 1 and N threads: the final results
  // must be bit-identical to the uninterrupted run every time.
  metrics::Registry& reg = metrics::Registry::global();
  const std::string cut = temp_path("hlcc_resume_cut.jsonl");
  for (const unsigned threads : {1u, 3u}) {
    for (const double frac : {0.0, 0.3, 0.5, 0.8, 1.0}) {
      const auto offset =
          static_cast<std::size_t>(static_cast<double>(full.size()) * frac);
      write_file(cut, full.substr(0, offset));
      const uint64_t resumed_before = reg.counter("sweep.cells_resumed");
      const uint64_t ran_before = reg.counter("experiments.run");

      SweepOptions opts;
      opts.threads = threads;
      opts.journal_path = cut;
      SweepRunner runner = grid_runner(std::move(opts), {});
      const std::vector<CellResult<ExperimentResult>> got = runner.run();
      ASSERT_EQ(got.size(), want.size());
      std::size_t restored = 0;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_TRUE(got[i].ok()) << "cell " << i << ": " << got[i].error();
        expect_payload_identical(got[i].value, want[i]);
        restored += got[i].info.resumed ? 1 : 0;
      }
      // The journal's intact prefix is exactly what gets skipped.
      EXPECT_EQ(reg.counter("sweep.cells_resumed") - resumed_before,
                restored);
      EXPECT_EQ(reg.counter("experiments.run") - ran_before,
                want.size() - restored);
      if (frac == 1.0) {
        EXPECT_EQ(restored, want.size()) << "full journal must skip all";
      }
    }
  }
  std::remove(full_path.c_str());
  std::remove(cut.c_str());
}

TEST(SweepResilience, ResumeRerunsFailedAndUnusableRecords) {
  // A journal may hold non-ok records (a cell that failed last run) and
  // ok records whose payload cannot be decoded (version skew).  Neither
  // may be trusted on resume: both cells must re-run.
  const std::string path = temp_path("hlcc_resume_failed.jsonl");
  {
    // Complete journal for the whole grid first.
    SweepOptions opts;
    opts.threads = 2;
    opts.journal_path = path;
    SweepRunner runner = grid_runner(std::move(opts), {});
    (void)runner.run();
  }
  {
    // Overwrite two cells' records (later records win): one failed, one
    // ok-but-undecodable.
    SweepJournal journal(path);
    JournalRecord failed;
    failed.key =
        cell_journal_key(config_hash(quick_config()), kGridNames[1]);
    failed.info.status = CellStatus::failed;
    failed.info.error_kind = CellErrorKind::unknown;
    failed.info.error = "died last run";
    journal.append(failed);
    JournalRecord unusable;
    unusable.key =
        cell_journal_key(config_hash(quick_config()), kGridNames[3]);
    unusable.result = json::Value::object(); // ok status, empty payload
    journal.append(unusable);
  }
  metrics::Registry& reg = metrics::Registry::global();
  const uint64_t ran_before = reg.counter("experiments.run");
  SweepOptions opts;
  opts.threads = 2;
  opts.journal_path = path;
  SweepRunner runner = grid_runner(std::move(opts), {});
  const std::vector<CellResult<ExperimentResult>> got = runner.run();
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].ok()) << "cell " << i;
    EXPECT_EQ(got[i].info.resumed, i != 1 && i != 3) << "cell " << i;
  }
  EXPECT_EQ(reg.counter("experiments.run") - ran_before, 2u);
  std::remove(path.c_str());
}

TEST(SweepResilience, ReportCarriesCellRollup) {
  SweepOptions opts;
  opts.threads = 2;
  opts.fail_fast = false;
  SweepRunner runner = grid_runner(std::move(opts), {2});
  std::vector<ExperimentResult> results =
      values(runner.run(), /*fail_fast=*/false);
  const Series series{"resilience", SuiteResult(std::move(results))};
  const json::Value doc = suite_report("partial sweep", {series});
  EXPECT_EQ(doc.at("schema").as_double(),
            static_cast<double>(kReportSchemaVersion));
  const json::Value& s = doc.at("series").at(0);
  EXPECT_EQ(s.at("cells").at("total").as_double(),
            static_cast<double>(kGridNames.size()));
  EXPECT_EQ(s.at("cells").at("failed").as_double(), 1.0);
  EXPECT_EQ(s.at("cells").at("complete").as_bool(), false);
  const json::Value& bad_row = s.at("benchmarks").at(2);
  EXPECT_EQ(bad_row.at("cell").at("status").as_string(), "failed");
  EXPECT_EQ(bad_row.at("cell").at("error_kind").as_string(),
            "config_invalid");
  const json::Value& ok_row = s.at("benchmarks").at(0);
  EXPECT_EQ(ok_row.at("cell").at("status").as_string(), "ok");
}

} // namespace
} // namespace harness
