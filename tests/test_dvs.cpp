// DVS interaction with leakage control (harness vdd knob).
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace {

harness::ExperimentConfig cfg_at_vdd(double vdd,
                                     const leakctl::TechniqueParams& tech) {
  harness::ExperimentConfig cfg;
  cfg.vdd = vdd;
  cfg.technique = tech;
  cfg.instructions = 150'000;
  cfg.variation = false;
  return cfg;
}

TEST(Dvs, LowerVddLowersAbsoluteLeakage) {
  const auto& gcc = workload::profile_by_name("gcc");
  const auto hi = harness::run_experiment(
      gcc, cfg_at_vdd(0.9, leakctl::TechniqueParams::drowsy()));
  const auto lo = harness::run_experiment(
      gcc, cfg_at_vdd(0.7, leakctl::TechniqueParams::drowsy()));
  EXPECT_LT(lo.energy.baseline_leakage_j, hi.energy.baseline_leakage_j);
}

TEST(Dvs, TimingIsVoltageIndependent) {
  // Cycle counts don't change with Vdd (everything scales together); only
  // the energy accounting does.
  const auto& vpr = workload::profile_by_name("vpr");
  const auto hi = harness::run_experiment(
      vpr, cfg_at_vdd(0.9, leakctl::TechniqueParams::gated_vss()));
  const auto lo = harness::run_experiment(
      vpr, cfg_at_vdd(0.7, leakctl::TechniqueParams::gated_vss()));
  EXPECT_EQ(hi.tech_run.cycles, lo.tech_run.cycles);
  EXPECT_DOUBLE_EQ(hi.energy.perf_loss_frac, lo.energy.perf_loss_frac);
}

TEST(Dvs, DrowsyAdvantageCollapsesTowardRetentionVoltage) {
  // Drowsy saves the gap between operating and retention supply; gated
  // disconnects entirely.  Scaling Vdd down must hurt drowsy's relative
  // savings while leaving gated's nearly flat.
  const auto& gcc = workload::profile_by_name("gcc");
  const double d_hi =
      harness::run_experiment(
          gcc, cfg_at_vdd(0.9, leakctl::TechniqueParams::drowsy()))
          .energy.net_savings_frac;
  const double d_lo =
      harness::run_experiment(
          gcc, cfg_at_vdd(0.65, leakctl::TechniqueParams::drowsy()))
          .energy.net_savings_frac;
  const double g_hi =
      harness::run_experiment(
          gcc, cfg_at_vdd(0.9, leakctl::TechniqueParams::gated_vss()))
          .energy.net_savings_frac;
  const double g_lo =
      harness::run_experiment(
          gcc, cfg_at_vdd(0.65, leakctl::TechniqueParams::gated_vss()))
          .energy.net_savings_frac;
  EXPECT_LT(d_lo, d_hi - 0.03); // drowsy clearly degrades
  EXPECT_NEAR(g_lo, g_hi, 0.03); // gated nearly flat
}

TEST(Dvs, NegativeVddMeansNominal) {
  const auto& gap = workload::profile_by_name("gap");
  const auto def = harness::run_experiment(
      gap, cfg_at_vdd(-1.0, leakctl::TechniqueParams::drowsy()));
  const auto nom = harness::run_experiment(
      gap, cfg_at_vdd(0.9, leakctl::TechniqueParams::drowsy()));
  EXPECT_DOUBLE_EQ(def.energy.net_savings_frac, nom.energy.net_savings_frac);
}

TEST(Dvs, PowerParamsScaleQuadratically) {
  const auto& tech = hotleakage::tech_params(hotleakage::TechNode::nm70);
  const hotleakage::CacheGeometry l1{.lines = 1024, .line_bytes = 64,
                                     .tag_bits = 28, .assoc = 2};
  const hotleakage::CacheGeometry l2{.lines = 32768, .line_bytes = 64,
                                     .tag_bits = 17, .assoc = 2};
  const auto p9 = wattch::PowerParams::for_config_at(tech, l1, l2, 0.9);
  const auto p45 = wattch::PowerParams::for_config_at(tech, l1, l2, 0.45);
  EXPECT_NEAR(p9.l1_read / p45.l1_read, 4.0, 0.2);
  EXPECT_NEAR(p9.core.clock_per_cycle / p45.core.clock_per_cycle, 4.0, 0.01);
}

} // namespace
