// LeakageModel: structure-level power, standby modes, DVS/thermal hooks.
#include <gtest/gtest.h>

#include "hotleakage/model.h"

namespace hotleakage {
namespace {

CacheGeometry l1d_geometry() {
  return {.lines = 1024, .line_bytes = 64, .tag_bits = 28, .assoc = 2};
}

LeakageModel model_novar() {
  return LeakageModel(TechNode::nm70, VariationConfig{.enabled = false});
}

TEST(Model, StructurePowerMagnitude) {
  LeakageModel m = model_novar();
  m.set_operating_point(OperatingPoint::at_celsius(110.0, 0.9));
  const double p = m.structure_power(l1d_geometry());
  // A 64 KB L1 at 110 C in the 70 nm high-leak corner: hundreds of mW.
  EXPECT_GT(p, 0.1);
  EXPECT_LT(p, 2.0);
}

TEST(Model, TemperatureRaisesLeakageExponentially) {
  LeakageModel m = model_novar();
  const CacheGeometry g = l1d_geometry();
  m.set_operating_point(OperatingPoint::at_celsius(85.0, 0.9));
  const double p85 = m.structure_power(g);
  m.set_operating_point(OperatingPoint::at_celsius(110.0, 0.9));
  const double p110 = m.structure_power(g);
  // Paper Sec. 5.2: leakage is exponentially temperature dependent.
  EXPECT_GT(p110 / p85, 1.5);
  EXPECT_LT(p110 / p85, 4.0);
}

TEST(Model, DvsReducesLeakage) {
  LeakageModel m = model_novar();
  const CacheGeometry g = l1d_geometry();
  m.set_operating_point({.temperature_k = 383.15, .vdd = 0.9});
  const double p_high = m.structure_power(g);
  m.set_operating_point({.temperature_k = 383.15, .vdd = 0.7});
  const double p_low = m.structure_power(g);
  EXPECT_LT(p_low, p_high);
}

TEST(Model, StandbyRatiosMatchTechniqueCharacter) {
  LeakageModel m = model_novar();
  m.set_operating_point(OperatingPoint::at_celsius(110.0, 0.9));
  const double drowsy = m.standby_ratio(StandbyMode::drowsy);
  const double gated = m.standby_ratio(StandbyMode::gated);
  const double rbb = m.standby_ratio(StandbyMode::rbb);
  // Paper Sec. 2: gated-Vss "almost entirely eliminates" leakage; drowsy
  // and RBB leave a non-trivial residue.
  EXPECT_LT(gated, 0.01);
  EXPECT_GT(drowsy, 0.03);
  EXPECT_LT(drowsy, 0.25);
  EXPECT_GT(rbb, drowsy); // GIDL-limited at 70 nm
  EXPECT_LT(rbb, 0.5);
  EXPECT_DOUBLE_EQ(m.standby_ratio(StandbyMode::active), 1.0);
}

TEST(Model, SramPowerSplitSumsToSramPower) {
  // The split invariant the per-level hierarchy accounting relies on:
  // subthreshold + gate == sram_power for every mode, by construction
  // (the split apportions the mode's total, it does not re-derive it).
  LeakageModel m = model_novar();
  for (double celsius : {27.0, 85.0, 110.0}) {
    m.set_operating_point(OperatingPoint::at_celsius(celsius, 0.9));
    for (StandbyMode mode : {StandbyMode::active, StandbyMode::drowsy,
                             StandbyMode::gated, StandbyMode::rbb}) {
      const double n_cells = 64.0 * 1024.0 * 8.0;
      const LeakageModel::LeakagePowerSplit s =
          m.sram_power_split(n_cells, mode);
      const double total = m.sram_power(n_cells, mode);
      EXPECT_GT(s.subthreshold_w, 0.0);
      EXPECT_GT(s.gate_w, 0.0);
      EXPECT_NEAR(s.subthreshold_w + s.gate_w, total, 1e-12 * total)
          << "mode " << static_cast<int>(mode) << " at " << celsius << " C";
      EXPECT_DOUBLE_EQ(s.total(), s.subthreshold_w + s.gate_w);
    }
  }
}

TEST(Model, SramPowerSplitScalesLinearlyWithCells) {
  // The hierarchy rollup prices each level by its own cell count, so the
  // split must be linear in n_cells: twice the array, twice each
  // component.  (Shares are per-cell properties; totals are not.)
  LeakageModel m = model_novar();
  m.set_operating_point(OperatingPoint::at_celsius(110.0, 0.9));
  const double n = 64.0 * 1024.0 * 8.0;
  for (StandbyMode mode : {StandbyMode::active, StandbyMode::drowsy,
                           StandbyMode::gated}) {
    const LeakageModel::LeakagePowerSplit one = m.sram_power_split(n, mode);
    const LeakageModel::LeakagePowerSplit two =
        m.sram_power_split(2.0 * n, mode);
    EXPECT_NEAR(two.subthreshold_w, 2.0 * one.subthreshold_w,
                1e-12 * two.subthreshold_w);
    EXPECT_NEAR(two.gate_w, 2.0 * one.gate_w, 1e-12 * two.gate_w);
  }
}

TEST(Model, GatedBeatsDrowsyResidualAtAllTemperatures) {
  LeakageModel m = model_novar();
  for (double celsius : {27.0, 60.0, 85.0, 110.0}) {
    m.set_operating_point(OperatingPoint::at_celsius(celsius, 0.9));
    EXPECT_LT(m.standby_ratio(StandbyMode::gated),
              m.standby_ratio(StandbyMode::drowsy))
        << "at " << celsius << " C";
  }
}

TEST(Model, TagPowerSmallerThanDataPower) {
  LeakageModel m = model_novar();
  const CacheGeometry g = l1d_geometry();
  const double data = m.data_line_power(g, StandbyMode::active);
  const double tag = m.tag_line_power(g, StandbyMode::active);
  EXPECT_LT(tag, data);
  // Tags are 28 bits vs 512 data bits.
  EXPECT_NEAR(tag / data, 28.0 / 512.0, 0.01);
}

TEST(Model, TagsAreNontrivialShareOfLineLeakage) {
  // Paper Sec. 5.3: tags account for 5-10 % of cache leakage energy.
  LeakageModel m = model_novar();
  const CacheGeometry g = l1d_geometry();
  const double data = m.data_line_power(g, StandbyMode::active);
  const double tag = m.tag_line_power(g, StandbyMode::active);
  const double share = tag / (tag + data);
  EXPECT_GT(share, 0.03);
  EXPECT_LT(share, 0.12);
}

TEST(Model, EdgeLogicPositiveButMinorityShare) {
  LeakageModel m = model_novar();
  const CacheGeometry g = l1d_geometry();
  const double edge = m.edge_logic_power(g);
  const double total = m.structure_power(g);
  EXPECT_GT(edge, 0.0);
  EXPECT_LT(edge / total, 0.25);
}

TEST(Model, DecayHardwareIsSmallOverhead) {
  // Cost #2 of Sec. 2.3 must not swamp the savings.
  LeakageModel m = model_novar();
  const CacheGeometry g = l1d_geometry();
  EXPECT_LT(m.decay_hardware_power(g), 0.05 * m.structure_power(g));
}

TEST(Model, RegisterFilePower) {
  LeakageModel m = model_novar();
  const double p = m.register_file_power(80, 64);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, m.structure_power(l1d_geometry())); // much smaller than L1
  EXPECT_GT(m.register_file_power(160, 64), p);
}

TEST(Model, VariationScalesPowerUp) {
  LeakageModel plain = model_novar();
  LeakageModel varied(TechNode::nm70, VariationConfig{.enabled = true});
  const OperatingPoint op = OperatingPoint::at_celsius(110.0, 0.9);
  plain.set_operating_point(op);
  varied.set_operating_point(op);
  EXPECT_GT(varied.variation_factor(), 1.0);
  EXPECT_GT(varied.structure_power(l1d_geometry()),
            plain.structure_power(l1d_geometry()));
}

TEST(Model, RejectsNonPositiveTemperature) {
  LeakageModel m = model_novar();
  EXPECT_THROW(m.set_operating_point({.temperature_k = 0.0, .vdd = 0.9}),
               std::invalid_argument);
}

TEST(Model, GeometryHelpers) {
  const CacheGeometry g = l1d_geometry();
  EXPECT_EQ(g.rows(), 512u);
  EXPECT_EQ(g.data_bits_per_line(), 512u);
}

// Standby-ratio sweep across temperature x mode (property-style).
struct RatioCase {
  StandbyMode mode;
  double celsius;
};

class StandbyRatioSweep : public ::testing::TestWithParam<RatioCase> {};

TEST_P(StandbyRatioSweep, RatioInUnitInterval) {
  LeakageModel m = model_novar();
  m.set_operating_point(OperatingPoint::at_celsius(GetParam().celsius, 0.9));
  const double r = m.standby_ratio(GetParam().mode);
  EXPECT_GT(r, 0.0);
  EXPECT_LE(r, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StandbyRatioSweep,
    ::testing::Values(RatioCase{StandbyMode::drowsy, 27.0},
                      RatioCase{StandbyMode::drowsy, 85.0},
                      RatioCase{StandbyMode::drowsy, 110.0},
                      RatioCase{StandbyMode::gated, 27.0},
                      RatioCase{StandbyMode::gated, 85.0},
                      RatioCase{StandbyMode::gated, 110.0},
                      RatioCase{StandbyMode::rbb, 27.0},
                      RatioCase{StandbyMode::rbb, 85.0},
                      RatioCase{StandbyMode::rbb, 110.0}));

} // namespace
} // namespace hotleakage
