// Technique descriptors: Table 1 settle times and Sec. 2 semantics.
#include <gtest/gtest.h>

#include "leakctl/technique.h"

namespace leakctl {
namespace {

TEST(Technique, DrowsyIsStatePreserving) {
  const TechniqueParams t = TechniqueParams::drowsy();
  EXPECT_TRUE(t.state_preserving);
  EXPECT_EQ(t.mode, hotleakage::StandbyMode::drowsy);
  EXPECT_TRUE(t.decay_tags);
}

TEST(Technique, GatedIsNot) {
  const TechniqueParams t = TechniqueParams::gated_vss();
  EXPECT_FALSE(t.state_preserving);
  EXPECT_EQ(t.mode, hotleakage::StandbyMode::gated);
}

TEST(Technique, Table1SettlingTimes) {
  // Table 1: low->high 3 / 3; high->low 3 (drowsy) / 30 (gated).
  const TechniqueParams d = TechniqueParams::drowsy();
  const TechniqueParams g = TechniqueParams::gated_vss();
  EXPECT_EQ(d.settle_to_high, 3u);
  EXPECT_EQ(g.settle_to_high, 3u);
  EXPECT_EQ(d.settle_to_low, 3u);
  EXPECT_EQ(g.settle_to_low, 30u);
}

TEST(Technique, DrowsyTagWakePenalties) {
  // Paper Sec. 2.3: a drowsy access with decayed tags takes at least three
  // extra cycles; with awake tags only the 1-2 cycle data wake.
  const TechniqueParams d = TechniqueParams::drowsy();
  EXPECT_EQ(d.wake_extra_tags_decayed, 3u);
  EXPECT_LT(d.wake_extra_tags_awake, d.wake_extra_tags_decayed);
  EXPECT_EQ(d.true_miss_extra_tags_decayed, 3u);
}

TEST(Technique, GatedPaysNothingOnAccessPath) {
  // Standby gated ways are known misses: no wake on the access path, no
  // tag-wake penalty on true misses (Sec. 5.1).
  const TechniqueParams g = TechniqueParams::gated_vss();
  EXPECT_EQ(g.wake_extra_tags_decayed, 0u);
  EXPECT_EQ(g.true_miss_extra_tags_decayed, 0u);
}

TEST(Technique, RbbIsStatePreservingButSlow) {
  const TechniqueParams r = TechniqueParams::rbb();
  EXPECT_TRUE(r.state_preserving);
  EXPECT_EQ(r.mode, hotleakage::StandbyMode::rbb);
  // Body-bias settling is slower than a drowsy rail swing.
  EXPECT_GT(r.settle_to_low, TechniqueParams::drowsy().settle_to_low);
  EXPECT_GT(r.wake_extra_tags_decayed,
            TechniqueParams::drowsy().wake_extra_tags_decayed);
}

TEST(Technique, Names) {
  EXPECT_EQ(TechniqueParams::drowsy().name, "drowsy");
  EXPECT_EQ(TechniqueParams::gated_vss().name, "gated-vss");
  EXPECT_EQ(TechniqueParams::rbb().name, "rbb");
}

} // namespace
} // namespace leakctl
