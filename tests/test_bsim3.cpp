// Subthreshold-leakage equation (paper Eq. 2): functional dependences the
// Fig. 1 validation relies on, plus error handling.
#include <gtest/gtest.h>

#include <cmath>

#include "hotleakage/bsim3.h"

namespace hotleakage {
namespace {

const TechParams& t70() { return tech_params(TechNode::nm70); }

TEST(Bsim3, UnitLeakageMagnitude70nm) {
  // Tens of nA per off transistor at nominal conditions — the ITRS-2001
  // high-leakage regime the paper targets.
  const OperatingPoint op{.temperature_k = 383.15, .vdd = 0.9};
  const double in = unit_leakage(t70(), DeviceType::nmos, op);
  EXPECT_GT(in, 1e-8);
  EXPECT_LT(in, 5e-6);
}

TEST(Bsim3, LinearInAspectRatio) {
  // Fig. 1a: leakage is exactly proportional to W/L.
  const OperatingPoint op{.temperature_k = 300.0, .vdd = 0.9};
  const double base = subthreshold_current(t70(), DeviceType::nmos, op,
                                           {.w_over_l = 1.0});
  for (double wl : {0.5, 2.0, 4.0, 10.0}) {
    const double i = subthreshold_current(t70(), DeviceType::nmos, op,
                                          {.w_over_l = wl});
    EXPECT_NEAR(i / base, wl, 1e-9 * wl);
  }
}

TEST(Bsim3, IncreasesWithVdd) {
  // Fig. 1b: DIBL makes leakage grow with supply voltage.
  const double t = 300.0;
  double prev = 0.0;
  for (double vdd : {0.5, 0.7, 0.9, 1.1}) {
    const double i = subthreshold_current(
        t70(), DeviceType::nmos, {.temperature_k = t, .vdd = vdd});
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(Bsim3, ExponentialInTemperature) {
  // Fig. 1c: strong superlinear growth with temperature.
  const double i300 = unit_leakage(t70(), DeviceType::nmos,
                                   {.temperature_k = 300.0, .vdd = 0.9});
  const double i383 = unit_leakage(t70(), DeviceType::nmos,
                                   {.temperature_k = 383.15, .vdd = 0.9});
  EXPECT_GT(i383 / i300, 5.0);   // order-of-magnitude class growth
  EXPECT_LT(i383 / i300, 100.0); // but not absurd
}

TEST(Bsim3, ExponentialDecayInVth) {
  // Fig. 1d: each +60..120 mV of Vth cuts leakage by ~10x.
  const OperatingPoint op{.temperature_k = 300.0, .vdd = 0.9};
  const double lo = subthreshold_current(t70(), DeviceType::nmos, op,
                                         {.vth_absolute = 0.2});
  const double hi = subthreshold_current(t70(), DeviceType::nmos, op,
                                         {.vth_absolute = 0.3});
  const double decade_mv =
      100.0 / std::log10(lo / hi); // mV of Vth per decade of leakage
  EXPECT_GT(decade_mv, 50.0);
  EXPECT_LT(decade_mv, 130.0);
}

TEST(Bsim3, PmosLeaksLessThanNmos) {
  const OperatingPoint op{.temperature_k = 383.15, .vdd = 0.9};
  EXPECT_LT(unit_leakage(t70(), DeviceType::pmos, op),
            unit_leakage(t70(), DeviceType::nmos, op));
}

TEST(Bsim3, ZeroVddYieldsZero) {
  const double i = subthreshold_current(t70(), DeviceType::nmos,
                                        {.temperature_k = 300.0, .vdd = 0.0});
  EXPECT_DOUBLE_EQ(i, 0.0); // drain term (1 - e^0) = 0
}

TEST(Bsim3, RejectsBadInputs) {
  EXPECT_THROW(subthreshold_current(t70(), DeviceType::nmos,
                                    {.temperature_k = 0.0, .vdd = 0.9}),
               std::invalid_argument);
  EXPECT_THROW(subthreshold_current(t70(), DeviceType::nmos,
                                    {.temperature_k = 300.0, .vdd = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(subthreshold_current(t70(), DeviceType::nmos,
                                    {.temperature_k = 300.0, .vdd = 0.9},
                                    {.w_over_l = 0.0}),
               std::invalid_argument);
}

TEST(Bsim3, VthDeltaOverride) {
  // RBB-style Vth manipulation reduces leakage exponentially.
  const OperatingPoint op{.temperature_k = 300.0, .vdd = 0.9};
  const double base = subthreshold_current(t70(), DeviceType::nmos, op);
  const double raised = subthreshold_current(t70(), DeviceType::nmos, op,
                                             {.vth_delta = 0.1});
  EXPECT_LT(raised, base / 5.0);
}

TEST(Bsim3, EffectiveVthTracksTemperatureAndOverride) {
  const OperatingPoint hot{.temperature_k = 383.15, .vdd = 0.9};
  const OperatingPoint cold{.temperature_k = 300.0, .vdd = 0.9};
  EXPECT_LT(effective_vth(t70(), DeviceType::nmos, hot),
            effective_vth(t70(), DeviceType::nmos, cold));
  EXPECT_DOUBLE_EQ(
      effective_vth(t70(), DeviceType::nmos, cold, {.vth_absolute = 0.42}),
      0.42);
}

TEST(Bsim3, OlderNodesLeakLess) {
  // At each node's own nominal point, leakage per transistor rises sharply
  // with scaling — the trend motivating the paper.
  double prev = 1e9;
  for (TechNode node : {TechNode::nm70, TechNode::nm100, TechNode::nm130,
                        TechNode::nm180}) {
    const TechParams& t = tech_params(node);
    const double i = unit_leakage(
        t, DeviceType::nmos, {.temperature_k = 383.15, .vdd = t.vdd_nominal});
    EXPECT_LT(i, prev);
    prev = i;
  }
}

// Parameterized sweep: monotone decrease of leakage with Vth at several
// temperatures (property-style, used by the Fig. 1d bench too).
class Bsim3VthSweep : public ::testing::TestWithParam<double> {};

TEST_P(Bsim3VthSweep, MonotoneInVth) {
  const double temp = GetParam();
  double prev = 1e9;
  for (double vth = 0.10; vth <= 0.45; vth += 0.05) {
    const double i =
        subthreshold_current(t70(), DeviceType::nmos,
                             {.temperature_k = temp, .vdd = 0.9},
                             {.vth_absolute = vth});
    EXPECT_LT(i, prev) << "vth=" << vth << " T=" << temp;
    prev = i;
  }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, Bsim3VthSweep,
                         ::testing::Values(300.0, 330.0, 358.15, 383.15));

} // namespace
} // namespace hotleakage
