// The metrics registry and its integration with the experiment driver:
// counter/gauge/timer semantics, ScopedTimer, thread safety, and the
// regression pinning the serialized ControlStats of a --json report to
// the in-process stats() accessor, field by field, for one drowsy and
// one gated-Vss configuration.
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/metrics.h"
#include "harness/report_json.h"

namespace {

using harness::metrics::Registry;
using harness::metrics::ScopedTimer;

TEST(Metrics, CountersAccumulate) {
  Registry reg;
  EXPECT_EQ(reg.counter("x"), 0u);
  reg.count("x");
  reg.count("x", 4);
  reg.count("y");
  EXPECT_EQ(reg.counter("x"), 5u);
  EXPECT_EQ(reg.counter("y"), 1u);
  const auto snap = reg.counters();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("x"), 5u);
}

TEST(Metrics, GaugesHoldLastValue) {
  Registry reg;
  EXPECT_EQ(reg.gauge("depth"), 0.0);
  reg.set_gauge("depth", 7.0);
  reg.set_gauge("depth", 3.5);
  EXPECT_EQ(reg.gauge("depth"), 3.5);
}

TEST(Metrics, TimersAccumulateSpans) {
  Registry reg;
  reg.record_time("phase.a", 0.25);
  reg.record_time("phase.a", 0.75);
  const auto stat = reg.timer("phase.a");
  EXPECT_DOUBLE_EQ(stat.total_s, 1.0);
  EXPECT_EQ(stat.count, 2u);
  EXPECT_EQ(reg.timer("absent").count, 0u);
}

TEST(Metrics, ScopedTimerRecordsOnScopeExit) {
  Registry reg;
  {
    ScopedTimer t("span", &reg);
  }
  EXPECT_EQ(reg.timer("span").count, 1u);
  EXPECT_GE(reg.timer("span").total_s, 0.0);
}

TEST(Metrics, ScopedTimerStopIsIdempotent) {
  Registry reg;
  {
    ScopedTimer t("span", &reg);
    t.stop();
    t.stop();
  } // destructor must not record a second span
  EXPECT_EQ(reg.timer("span").count, 1u);
}

TEST(Metrics, ResetDropsEverything) {
  Registry reg;
  reg.count("c");
  reg.set_gauge("g", 1.0);
  reg.record_time("t", 0.1);
  reg.reset();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.gauges().empty());
  EXPECT_TRUE(reg.timers().empty());
}

TEST(Metrics, ConcurrentCountsDoNotDrop) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.count("shared");
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(reg.counter("shared"),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- the --json-vs-stats() regression (one drowsy, one gated config) ---

void expect_serialized_control_matches(const harness::ExperimentConfig& cfg) {
  const harness::ExperimentResult result =
      harness::run_experiment(workload::profile_by_name("gcc"), cfg);

  // Serialize exactly the way a --json run does, through text.
  harness::Series series{"test", {}};
  series.results.push_back(result);
  const harness::json::Value doc = harness::json::Value::parse(
      harness::suite_report("regression", {series}).dump(2));

  const harness::json::Value& row =
      doc.at("series").at(0).at("benchmarks").at(0);
  const leakctl::ControlStats parsed =
      harness::control_stats_from_json(row.at("control"));

  result.control.for_each_field(
      [&](const char* name, const unsigned long long& want) {
        unsigned long long got = 0;
        parsed.for_each_field(
            [&](const char* n, const unsigned long long& v) {
              if (std::string_view(n) == name) {
                got = v;
              }
            });
        EXPECT_EQ(got, want) << "ControlStats field " << name;
      });
  EXPECT_DOUBLE_EQ(row.at("control").at("turnoff_ratio").as_double(),
                   result.control.turnoff_ratio());
  EXPECT_EQ(row.at("benchmark").as_string(), "gcc");
  const std::string& hash = row.at("config").at("hash").as_string();
  EXPECT_EQ(hash.size(), 18u); // "0x" + 16 hex digits
  EXPECT_EQ(hash.substr(0, 2), "0x");
  // The hash is the config's identity: recomputing it from the result's
  // config must reproduce the serialized string.
  char expect[19];
  std::snprintf(expect, sizeof(expect), "0x%016llx",
                static_cast<unsigned long long>(
                    harness::config_hash(result.config)));
  EXPECT_EQ(hash, expect);
}

TEST(MetricsIntegration, SerializedControlStatsMatchDrowsy) {
  faults::FaultConfig fcfg;
  fcfg.enabled = true;
  fcfg.standby_rate_per_bit_cycle = 2e-9; // exaggerated: nonzero counters
  fcfg.seed = 3;
  expect_serialized_control_matches(
      harness::ExperimentConfig::make()
          .instructions(120'000)
          .technique(leakctl::TechniqueParams::drowsy())
          .faults(fcfg)
          .build());
}

TEST(MetricsIntegration, SerializedControlStatsMatchGated) {
  expect_serialized_control_matches(
      harness::ExperimentConfig::make()
          .instructions(120'000)
          .technique(leakctl::TechniqueParams::gated_vss())
          .build());
}

TEST(MetricsIntegration, RunExperimentPopulatesPhaseTimers) {
  Registry& reg = Registry::global();
  reg.reset();
  (void)harness::run_experiment(
      workload::profile_by_name("gzip"),
      harness::ExperimentConfig::make().instructions(60'000).build());
  EXPECT_GE(reg.timer("phase.experiment").count, 1u);
  EXPECT_GE(reg.timer("phase.simulation").count, 1u);
  EXPECT_GE(reg.timer("phase.leakage_model").count, 1u);
  EXPECT_GE(reg.counter("experiments.run"), 1u);
  // The report snapshot carries the same names.
  const harness::json::Value m = harness::metrics_json(reg);
  EXPECT_TRUE(m.at("timers").contains("phase.experiment"));
  EXPECT_TRUE(m.at("timers").contains("phase.simulation"));
}

} // namespace
