// Feedback controller for adaptive decay intervals (paper Sec. 5.4).
#include <gtest/gtest.h>

#include "leakctl/adaptive.h"
#include "sim/processor.h"

namespace leakctl {
namespace {

struct Fixture {
  Fixture() {
    sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
    cfg.cache = {.size_bytes = 1024, .assoc = 2, .line_bytes = 64,
                 .hit_latency = 2};
    cfg.technique = TechniqueParams::gated_vss();
    cfg.technique.decay_tags = false; // feedback needs awake tags
    cfg.decay_interval = 4096;
    mem = std::make_unique<sim::MemoryBackend>(pcfg.memory_latency, nullptr);
    l2 = std::make_unique<sim::CacheLevel>(pcfg.l2, *mem, nullptr);
    cc = std::make_unique<ControlledCache>(cfg, *l2, nullptr);
  }
  uint64_t addr(uint64_t set, uint64_t tag) const {
    return (tag * 8 + set) * 64;
  }
  ControlledCacheConfig cfg;
  std::unique_ptr<sim::MemoryBackend> mem;
  std::unique_ptr<sim::CacheLevel> l2;
  std::unique_ptr<ControlledCache> cc;
};

TEST(Adaptive, RaisesIntervalWhenInducedRateHigh) {
  Fixture f;
  FeedbackConfig fc;
  fc.window_cycles = 10000;
  fc.target_rate = 1e-4;
  FeedbackController ctl(fc);
  // Manufacture a high induced rate: a line that decays and is re-touched
  // repeatedly (gap just above the interval).
  uint64_t cycle = 0;
  for (int i = 0; i < 30; ++i) {
    f.cc->access(f.addr(0, 1), false, cycle);
    cycle += 6000; // > interval 4096: induced miss every touch
  }
  ctl.on_window(*f.cc, cycle);
  EXPECT_GT(f.cc->decay_interval(), 4096ull);
  EXPECT_EQ(ctl.adjustments_up(), 1ull);
}

TEST(Adaptive, LowersIntervalWhenInducedRateLow) {
  Fixture f;
  FeedbackConfig fc;
  fc.window_cycles = 10000;
  fc.target_rate = 1e-2; // unreachable: rate will look low
  FeedbackController ctl(fc);
  f.cc->access(f.addr(0, 1), false, 100);
  ctl.on_window(*f.cc, 10000);
  EXPECT_LT(f.cc->decay_interval(), 4096ull);
  EXPECT_EQ(ctl.adjustments_down(), 1ull);
}

TEST(Adaptive, RespectsBounds) {
  Fixture f;
  FeedbackConfig fc;
  fc.window_cycles = 1000;
  fc.min_interval = 2048;
  fc.max_interval = 8192;
  FeedbackController ctl(fc);
  // Repeated low-rate windows: interval must floor at min_interval.
  for (int i = 0; i < 10; ++i) {
    ctl.on_window(*f.cc, 1000 * (i + 1));
  }
  EXPECT_EQ(f.cc->decay_interval(), 2048ull);
}

TEST(Adaptive, DeadbandHoldsSteady) {
  Fixture f;
  FeedbackConfig fc;
  fc.window_cycles = 10000;
  fc.target_rate = 1e-3;
  fc.deadband = 0.9; // very wide
  FeedbackController ctl(fc);
  // 12 induced events per 10k cycles = 1.2e-3, inside [1e-4, 1.9e-3].
  uint64_t cycle = 0;
  for (int i = 0; i < 12; ++i) {
    f.cc->access(f.addr(0, 1), false, cycle);
    cycle += 6000;
  }
  // drain counts 11 induced (first access is a cold miss) -> rate 1.1e-3.
  ctl.on_window(*f.cc, cycle);
  EXPECT_EQ(f.cc->decay_interval(), 4096ull);
  EXPECT_EQ(ctl.adjustments_up(), 0ull);
  EXPECT_EQ(ctl.adjustments_down(), 0ull);
}

TEST(Adaptive, AttachInstallsWindowHook) {
  Fixture f;
  FeedbackConfig fc;
  fc.window_cycles = 5000;
  fc.target_rate = 1e-2;
  FeedbackController ctl(fc);
  ctl.attach(*f.cc);
  // Crossing several windows through ordinary accesses triggers downward
  // adjustments automatically.
  f.cc->access(f.addr(0, 1), false, 26000);
  EXPECT_GT(ctl.adjustments_down(), 0ull);
  EXPECT_LT(f.cc->decay_interval(), 4096ull);
}

} // namespace
} // namespace leakctl
