// Workload profiles and the synthetic trace generator.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/generator.h"

namespace workload {
namespace {

TEST(Profiles, ElevenBenchmarks) {
  // The paper's Table 3 set.
  const auto& all = spec2000_profiles();
  EXPECT_EQ(all.size(), 11u);
  const std::set<std::string_view> expected = {
      "gcc", "gzip", "parser", "vortex", "gap", "perl",
      "twolf", "bzip2", "vpr", "mcf", "crafty"};
  std::set<std::string_view> got;
  for (const auto& p : all) got.insert(p.name);
  EXPECT_EQ(got, expected);
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(profile_by_name("mcf").name, "mcf");
  EXPECT_THROW(profile_by_name("nonexistent"), std::out_of_range);
}

TEST(Profiles, SaneParameterRanges) {
  for (const auto& p : spec2000_profiles()) {
    EXPECT_GT(p.f_load, 0.1) << p.name;
    EXPECT_LT(p.f_load + p.f_store + p.f_branch + p.f_mul + p.f_div + p.f_fp,
              0.95)
        << p.name;
    EXPECT_GT(p.hot_lines, 0) << p.name;
    EXPECT_GT(p.footprint_lines, p.hot_lines) << p.name;
    EXPECT_GT(p.dormant_gap_mean, 0.0) << p.name;
    EXPECT_GE(p.p_new, 0.0) << p.name;
    EXPECT_LE(p.p_new, 0.2) << p.name;
  }
}

TEST(Profiles, McfIsTheOutlier) {
  // mcf: biggest footprint, most loads, least ILP.
  const auto& mcf = profile_by_name("mcf");
  for (const auto& p : spec2000_profiles()) {
    if (p.name == "mcf") continue;
    EXPECT_GE(mcf.footprint_lines, p.footprint_lines) << p.name;
    EXPECT_LE(mcf.dep_mean, p.dep_mean) << p.name;
  }
}

TEST(Generator, Deterministic) {
  Generator a(profile_by_name("gcc"), 42);
  Generator b(profile_by_name("gcc"), 42);
  sim::MicroOp oa, ob;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(a.next(oa));
    ASSERT_TRUE(b.next(ob));
    ASSERT_EQ(oa.pc, ob.pc);
    ASSERT_EQ(static_cast<int>(oa.op), static_cast<int>(ob.op));
    ASSERT_EQ(oa.mem_addr, ob.mem_addr);
    ASSERT_EQ(oa.taken, ob.taken);
  }
}

TEST(Generator, SeedChangesStream) {
  Generator a(profile_by_name("gcc"), 1);
  Generator b(profile_by_name("gcc"), 2);
  sim::MicroOp oa, ob;
  int diffs = 0;
  for (int i = 0; i < 1000; ++i) {
    a.next(oa);
    b.next(ob);
    if (oa.mem_addr != ob.mem_addr ||
        static_cast<int>(oa.op) != static_cast<int>(ob.op)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 100);
}

TEST(Generator, MixMatchesProfile) {
  const BenchmarkProfile& p = profile_by_name("gzip");
  Generator gen(p, 7);
  sim::MicroOp op;
  const int n = 200000;
  std::map<sim::OpClass, int> counts;
  for (int i = 0; i < n; ++i) {
    gen.next(op);
    counts[op.op]++;
  }
  EXPECT_NEAR(static_cast<double>(counts[sim::OpClass::load]) / n, p.f_load,
              0.01);
  EXPECT_NEAR(static_cast<double>(counts[sim::OpClass::store]) / n, p.f_store,
              0.01);
  EXPECT_NEAR(static_cast<double>(counts[sim::OpClass::branch]) / n,
              p.f_branch, 0.01);
}

TEST(Generator, MemOpsHaveAddresses) {
  Generator gen(profile_by_name("vortex"), 3);
  sim::MicroOp op;
  for (int i = 0; i < 20000; ++i) {
    gen.next(op);
    if (sim::is_mem(op.op)) {
      EXPECT_GE(op.mem_addr, 0x10000000ull);
    } else {
      EXPECT_EQ(op.mem_addr, 0ull);
    }
  }
}

TEST(Generator, BranchTargetsStablePerPc) {
  // A static branch must always jump to the same place or the BTB could
  // never learn.
  Generator gen(profile_by_name("twolf"), 9);
  sim::MicroOp op;
  std::map<uint64_t, uint64_t> target_of;
  for (int i = 0; i < 300000; ++i) {
    gen.next(op);
    if (op.op == sim::OpClass::branch && op.taken) {
      auto [it, fresh] = target_of.emplace(op.pc, op.target);
      if (!fresh) {
        ASSERT_EQ(it->second, op.target) << "pc " << std::hex << op.pc;
      }
    }
  }
  EXPECT_GT(target_of.size(), 10u);
}

TEST(Generator, CodeFootprintRespected) {
  const BenchmarkProfile& p = profile_by_name("mcf"); // 150 code lines
  Generator gen(p, 5);
  sim::MicroOp op;
  uint64_t max_pc = 0;
  for (int i = 0; i < 100000; ++i) {
    gen.next(op);
    max_pc = std::max(max_pc, op.pc);
  }
  const uint64_t code_base = 0x400000;
  EXPECT_LT(max_pc, code_base + static_cast<uint64_t>(p.code_lines + 1) * 64);
}

TEST(Generator, DataFootprintRespected) {
  const BenchmarkProfile& p = profile_by_name("twolf");
  Generator gen(p, 5);
  sim::MicroOp op;
  std::set<uint64_t> lines;
  for (int i = 0; i < 400000; ++i) {
    gen.next(op);
    if (sim::is_mem(op.op)) {
      lines.insert(op.mem_addr / 64);
    }
  }
  EXPECT_LE(lines.size(),
            static_cast<std::size_t>(p.footprint_lines) + p.hot_lines + 1);
  EXPECT_GT(lines.size(), static_cast<std::size_t>(p.hot_lines));
}

TEST(Generator, ReuseExists) {
  // The same data line must recur (temporal locality).
  Generator gen(profile_by_name("gzip"), 11);
  sim::MicroOp op;
  std::map<uint64_t, int> touches;
  for (int i = 0; i < 100000; ++i) {
    gen.next(op);
    if (sim::is_mem(op.op)) touches[op.mem_addr / 64]++;
  }
  int reused = 0;
  for (const auto& [line, n] : touches) {
    if (n > 1) ++reused;
  }
  EXPECT_GT(reused, 100);
}

TEST(Generator, DormantGapsLongerForGzipThanGcc) {
  // The property behind Table 3: gzip's dormant reuse gaps are much longer
  // than gcc's.  Measure median inter-touch gap of lines with >= 2 touches
  // that exceed a base threshold.
  auto median_long_gap = [](std::string_view name) {
    Generator gen(profile_by_name(name), 17);
    sim::MicroOp op;
    std::map<uint64_t, uint64_t> last;
    std::vector<uint64_t> gaps;
    uint64_t mem_index = 0;
    for (int i = 0; i < 2000000; ++i) {
      gen.next(op);
      if (!sim::is_mem(op.op)) continue;
      ++mem_index;
      auto [it, fresh] = last.emplace(op.mem_addr / 64, mem_index);
      if (!fresh) {
        const uint64_t gap = mem_index - it->second;
        // Gaps above 2000 accesses are dominated by scheduled dormant
        // returns rather than recency-ring churn.
        if (gap > 2000) gaps.push_back(gap);
        it->second = mem_index;
      }
    }
    std::sort(gaps.begin(), gaps.end());
    // Use the 75th percentile: the dormant-return tail, robust against
    // recency-ring noise near the threshold.
    return gaps.empty() ? 0.0
                        : static_cast<double>(gaps[gaps.size() * 3 / 4]);
  };
  const double gcc = median_long_gap("gcc");
  const double gzip = median_long_gap("gzip");
  EXPECT_GT(gzip, 1.8 * gcc);
}

} // namespace
} // namespace workload
