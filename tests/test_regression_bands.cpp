// Regression pins: loose level bands around the headline numbers so that
// refactors of the physics, power, or workload layers cannot silently
// re-weight the study.  Shapes are asserted exactly in
// test_integration.cpp; these bands guard absolute levels.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "wattch/cacti_lite.h"

namespace {

harness::ExperimentConfig cfg_at(unsigned l2, double temp) {
  harness::ExperimentConfig cfg;
  cfg.l2_latency = l2;
  cfg.temperature_c = temp;
  cfg.instructions = 400'000;
  cfg.variation = false;
  return cfg;
}

TEST(RegressionBands, GatedAtFastL2) {
  harness::ExperimentConfig cfg = cfg_at(5, 110.0);
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  const harness::SuiteAverages avg =
      harness::averages(harness::run_suite(cfg));
  EXPECT_GT(avg.net_savings, 0.70);
  EXPECT_LT(avg.net_savings, 0.95);
  EXPECT_LT(avg.perf_loss, 0.02);
}

TEST(RegressionBands, DrowsyAtFastL2) {
  harness::ExperimentConfig cfg = cfg_at(5, 110.0);
  cfg.technique = leakctl::TechniqueParams::drowsy();
  const harness::SuiteAverages avg =
      harness::averages(harness::run_suite(cfg));
  EXPECT_GT(avg.net_savings, 0.60);
  EXPECT_LT(avg.net_savings, 0.90);
  EXPECT_GT(avg.perf_loss, 0.005);
  EXPECT_LT(avg.perf_loss, 0.03);
}

TEST(RegressionBands, GatedPerfLossAtSlowL2) {
  harness::ExperimentConfig cfg = cfg_at(17, 110.0);
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  const harness::SuiteAverages avg =
      harness::averages(harness::run_suite(cfg));
  EXPECT_GT(avg.perf_loss, 0.015);
  EXPECT_LT(avg.perf_loss, 0.06);
}

TEST(RegressionBands, TurnoffRatioBand) {
  harness::ExperimentConfig cfg = cfg_at(11, 85.0);
  cfg.technique = leakctl::TechniqueParams::drowsy();
  const harness::SuiteAverages avg =
      harness::averages(harness::run_suite(cfg));
  EXPECT_GT(avg.turnoff, 0.80);
  EXPECT_LT(avg.turnoff, 0.98);
}

TEST(RegressionBands, L1LeakagePowerBand) {
  // 64 KB at 110 C, no variation: hundreds of mW at the 70 nm high-leak
  // corner (the ITRS regime the paper targets).
  hotleakage::LeakageModel m(hotleakage::TechNode::nm70,
                             hotleakage::VariationConfig{.enabled = false});
  m.set_operating_point(hotleakage::OperatingPoint::at_celsius(110, 0.9));
  const hotleakage::CacheGeometry g{.lines = 1024, .line_bytes = 64,
                                    .tag_bits = 28, .assoc = 2};
  const double p = m.structure_power(g);
  EXPECT_GT(p, 0.3);
  EXPECT_LT(p, 1.2);
}

TEST(RegressionBands, StandbyResiduals) {
  hotleakage::LeakageModel m(hotleakage::TechNode::nm70,
                             hotleakage::VariationConfig{.enabled = false});
  m.set_operating_point(hotleakage::OperatingPoint::at_celsius(110, 0.9));
  const double drowsy = m.standby_ratio(hotleakage::StandbyMode::drowsy);
  const double gated = m.standby_ratio(hotleakage::StandbyMode::gated);
  EXPECT_GT(drowsy, 0.05);
  EXPECT_LT(drowsy, 0.15); // drowsy paper: ~6-12x reduction
  EXPECT_LT(gated, 0.01);  // "almost entirely eliminates"
}

TEST(RegressionBands, Table2LatencyPins) {
  const auto& tech = hotleakage::tech_params(hotleakage::TechNode::nm70);
  const hotleakage::CacheGeometry l1{.lines = 1024, .line_bytes = 64,
                                     .tag_bits = 28, .assoc = 2};
  const hotleakage::CacheGeometry l2{.lines = 32768, .line_bytes = 64,
                                     .tag_bits = 17, .assoc = 2};
  EXPECT_EQ(wattch::cache_latency_cycles(tech, l1, 0.9, 5.6e9), 2u);
  const unsigned l2_cycles = wattch::cache_latency_cycles(tech, l2, 0.9, 5.6e9);
  EXPECT_GE(l2_cycles, 10u);
  EXPECT_LE(l2_cycles, 12u);
}

TEST(RegressionBands, BaselineIpcBands) {
  // Per-benchmark IPC pins (wide): mcf is the memory-bound outlier, gzip
  // the ILP-rich one.
  harness::ExperimentConfig cfg = cfg_at(11, 110.0);
  const harness::ExperimentResult mcf =
      harness::run_experiment(workload::profile_by_name("mcf"), cfg);
  const harness::ExperimentResult gzip =
      harness::run_experiment(workload::profile_by_name("gzip"), cfg);
  EXPECT_LT(mcf.base_run.ipc(), 0.6);
  EXPECT_GT(gzip.base_run.ipc(), 0.9);
  EXPECT_GT(mcf.base_l1d_miss_rate, 3.0 * gzip.base_l1d_miss_rate);
}

} // namespace
