// Cross-module property tests: invariants that must hold over parameter
// grids (parameterized gtest sweeps).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "spiceref/device.h"

namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::run_experiment;

// ---------------------------------------------------------------------------
// Property: for every benchmark, the technique run can never be faster than
// the baseline, turnoff is in [0, 1], and the access classification is
// complete (hits + slow hits + induced + true == all D-accesses).
// ---------------------------------------------------------------------------
struct BenchTechCase {
  const char* bench;
  bool gated;
};

class RunInvariants : public ::testing::TestWithParam<BenchTechCase> {};

TEST_P(RunInvariants, Hold) {
  const BenchTechCase c = GetParam();
  ExperimentConfig cfg;
  cfg.instructions = 120'000;
  cfg.variation = false;
  cfg.technique = c.gated ? leakctl::TechniqueParams::gated_vss()
                          : leakctl::TechniqueParams::drowsy();
  const ExperimentResult r =
      run_experiment(workload::profile_by_name(c.bench), cfg);

  EXPECT_GE(r.tech_run.cycles, r.base_run.cycles);
  EXPECT_GE(r.energy.turnoff_ratio, 0.0);
  EXPECT_LE(r.energy.turnoff_ratio, 1.0);
  EXPECT_EQ(r.control.accesses(),
            r.tech_run.loads + r.tech_run.stores);
  if (c.gated) {
    EXPECT_EQ(r.control.slow_hits, 0ull);
  } else {
    EXPECT_EQ(r.control.induced_misses, 0ull);
  }
  // Wakes can never exceed decays (every standby period started once),
  // though lines still off at the end need no wake.
  EXPECT_LE(r.control.wakes, r.control.decays);
  // Net savings can never exceed the gross ceiling.
  EXPECT_LE(r.energy.net_savings_j, r.energy.gross_savings_j);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, RunInvariants,
    ::testing::Values(BenchTechCase{"gcc", false}, BenchTechCase{"gcc", true},
                      BenchTechCase{"gzip", false},
                      BenchTechCase{"gzip", true},
                      BenchTechCase{"parser", true},
                      BenchTechCase{"vortex", false},
                      BenchTechCase{"gap", true},
                      BenchTechCase{"perl", false},
                      BenchTechCase{"twolf", true},
                      BenchTechCase{"bzip2", false},
                      BenchTechCase{"vpr", true},
                      BenchTechCase{"mcf", false},
                      BenchTechCase{"mcf", true},
                      BenchTechCase{"crafty", false}));

// ---------------------------------------------------------------------------
// Property: longer decay intervals monotonically reduce both the turnoff
// ratio and the number of induced events (fewer premature deactivations).
// ---------------------------------------------------------------------------
class IntervalMonotonicity : public ::testing::TestWithParam<const char*> {};

TEST_P(IntervalMonotonicity, TurnoffAndInducedShrink) {
  ExperimentConfig cfg;
  cfg.instructions = 150'000;
  cfg.variation = false;
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  double prev_turnoff = 1.1;
  unsigned long long prev_induced = ~0ull;
  for (uint64_t interval : {2048ull, 8192ull, 32768ull}) {
    cfg.decay_interval = interval;
    const ExperimentResult r =
        run_experiment(workload::profile_by_name(GetParam()), cfg);
    EXPECT_LT(r.energy.turnoff_ratio, prev_turnoff) << interval;
    EXPECT_LE(r.control.induced_misses, prev_induced) << interval;
    prev_turnoff = r.energy.turnoff_ratio;
    prev_induced = r.control.induced_misses;
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, IntervalMonotonicity,
                         ::testing::Values("gcc", "gzip", "twolf", "mcf"));

// ---------------------------------------------------------------------------
// Property: the architectural model and the SPICE reference agree within a
// fixed band over the whole (Vdd x T) operating grid at nominal Vth.
// ---------------------------------------------------------------------------
struct OpGridCase {
  double vdd;
  double temperature;
};

class ModelRefAgreement : public ::testing::TestWithParam<OpGridCase> {};

TEST_P(ModelRefAgreement, WithinBand) {
  const OpGridCase c = GetParam();
  const double err = spiceref::model_vs_reference_error(
      hotleakage::tech_params(hotleakage::TechNode::nm70),
      hotleakage::DeviceType::nmos, c.vdd, c.temperature, 1.0);
  EXPECT_LT(err, 0.6) << "vdd=" << c.vdd << " T=" << c.temperature;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelRefAgreement,
    ::testing::Values(OpGridCase{0.7, 300.0}, OpGridCase{0.8, 300.0},
                      OpGridCase{0.9, 300.0}, OpGridCase{1.0, 300.0},
                      OpGridCase{0.7, 358.15}, OpGridCase{0.9, 358.15},
                      OpGridCase{0.8, 383.15}, OpGridCase{0.9, 383.15},
                      OpGridCase{1.0, 383.15}));

// ---------------------------------------------------------------------------
// Property: leakage power of every structure is strictly increasing in
// temperature across the whole range (the HotLeakage raison d'etre).
// ---------------------------------------------------------------------------
class LeakageTemperatureMonotone : public ::testing::TestWithParam<int> {};

TEST_P(LeakageTemperatureMonotone, StructurePower) {
  hotleakage::LeakageModel m(hotleakage::TechNode::nm70,
                             hotleakage::VariationConfig{.enabled = false});
  const hotleakage::CacheGeometry g{.lines = 1024, .line_bytes = 64,
                                    .tag_bits = 28, .assoc = 2};
  const double celsius = static_cast<double>(GetParam());
  m.set_operating_point(hotleakage::OperatingPoint::at_celsius(celsius, 0.9));
  const double p1 = m.structure_power(g);
  m.set_operating_point(
      hotleakage::OperatingPoint::at_celsius(celsius + 10.0, 0.9));
  const double p2 = m.structure_power(g);
  EXPECT_GT(p2, p1);
}

INSTANTIATE_TEST_SUITE_P(Celsius, LeakageTemperatureMonotone,
                         ::testing::Values(20, 40, 60, 80, 100, 120));

// ---------------------------------------------------------------------------
// Property: determinism across the whole stack — same config, same result,
// for every benchmark.
// ---------------------------------------------------------------------------
class Determinism : public ::testing::TestWithParam<const char*> {};

TEST_P(Determinism, RunTwiceBitIdentical) {
  ExperimentConfig cfg;
  cfg.instructions = 80'000;
  cfg.variation = true; // include the Monte Carlo path
  const ExperimentResult a =
      run_experiment(workload::profile_by_name(GetParam()), cfg);
  const ExperimentResult b =
      run_experiment(workload::profile_by_name(GetParam()), cfg);
  EXPECT_EQ(a.tech_run.cycles, b.tech_run.cycles);
  EXPECT_DOUBLE_EQ(a.energy.net_savings_frac, b.energy.net_savings_frac);
  EXPECT_DOUBLE_EQ(a.energy.baseline_leakage_j, b.energy.baseline_leakage_j);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, Determinism,
                         ::testing::Values("gcc", "vortex", "mcf", "bzip2"));

} // namespace
