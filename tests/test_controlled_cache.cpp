// ControlledCache: access classification, latencies, residency accounting.
#include <gtest/gtest.h>

#include "leakctl/controlled_cache.h"
#include "sim/processor.h"

namespace leakctl {
namespace {

struct Fixture {
  explicit Fixture(TechniqueParams tech = TechniqueParams::drowsy(),
                   uint64_t interval = 4096,
                   DecayPolicy policy = DecayPolicy::noaccess) {
    sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
    // Small cache so decay is easy to exercise: 8 sets x 2 ways.
    cfg.cache = {.size_bytes = 1024, .assoc = 2, .line_bytes = 64,
                 .hit_latency = 2};
    cfg.technique = tech;
    cfg.policy = policy;
    cfg.decay_interval = interval;
    mem = std::make_unique<sim::MemoryBackend>(pcfg.memory_latency, &activity);
    l2 = std::make_unique<sim::CacheLevel>(pcfg.l2, *mem, &activity);
    cc = std::make_unique<ControlledCache>(cfg, *l2, &activity);
  }

  uint64_t addr(uint64_t set, uint64_t tag) const {
    return (tag * 8 + set) * 64;
  }

  ControlledCacheConfig cfg;
  wattch::Activity activity;
  std::unique_ptr<sim::MemoryBackend> mem;
  std::unique_ptr<sim::CacheLevel> l2;
  std::unique_ptr<ControlledCache> cc;
};

TEST(ControlledCache, ActiveHitNormalLatency) {
  Fixture f;
  f.cc->access(f.addr(0, 1), false, 10); // cold fill
  EXPECT_EQ(f.cc->access(f.addr(0, 1), false, 20), 2u);
  EXPECT_EQ(f.cc->stats().hits, 1ull);
}

TEST(ControlledCache, DrowsySlowHit) {
  Fixture f(TechniqueParams::drowsy());
  f.cc->access(f.addr(0, 1), false, 10);
  // Let the line decay (interval 4096), then access: slow hit with the
  // decayed-tags wake penalty (2 + 3).
  const unsigned lat = f.cc->access(f.addr(0, 1), false, 10000);
  EXPECT_EQ(lat, 5u);
  EXPECT_EQ(f.cc->stats().slow_hits, 1ull);
  EXPECT_EQ(f.cc->stats().induced_misses, 0ull);
  EXPECT_EQ(f.cc->stats().wakes, 1ull);
}

TEST(ControlledCache, DrowsyAwakeTagsCheaperSlowHit) {
  TechniqueParams t = TechniqueParams::drowsy();
  t.decay_tags = false;
  Fixture f(t);
  f.cc->access(f.addr(0, 1), false, 10);
  const unsigned lat = f.cc->access(f.addr(0, 1), false, 10000);
  EXPECT_EQ(lat, 3u); // 2 + wake_extra_tags_awake(1)
}

TEST(ControlledCache, GatedInducedMissGoesToL2) {
  Fixture f(TechniqueParams::gated_vss());
  f.cc->access(f.addr(0, 1), false, 10);
  // Decay destroys the line; re-access must fetch from L2 (hit: filled at
  // cold-miss time): 2 + 11.
  const unsigned lat = f.cc->access(f.addr(0, 1), false, 10000);
  EXPECT_EQ(lat, 13u);
  EXPECT_EQ(f.cc->stats().induced_misses, 1ull);
  EXPECT_EQ(f.cc->stats().slow_hits, 0ull);
}

TEST(ControlledCache, GatedDirtyDecayWritesBack) {
  Fixture f(TechniqueParams::gated_vss());
  f.cc->access(f.addr(0, 1), true, 10); // dirty
  f.cc->access(f.addr(1, 1), false, 10000); // trigger decay sweep
  EXPECT_EQ(f.cc->stats().decay_writebacks, 1ull);
  // The data survived in L2: induced miss still returns it at L2 latency.
  EXPECT_EQ(f.cc->access(f.addr(0, 1), false, 10010), 13u);
}

TEST(ControlledCache, DrowsyTrueMissTagWakePenalty) {
  Fixture f(TechniqueParams::drowsy());
  f.cc->access(f.addr(0, 1), false, 10);
  // After decay, a *different* tag in the same set: true miss, but the
  // drowsy tags must wake first: 2 + 3 + L2(11 hit? no: cold -> +100 mem).
  const unsigned lat = f.cc->access(f.addr(0, 2), false, 10000);
  EXPECT_EQ(lat, 2u + 3u + 11u + 100u);
  EXPECT_EQ(f.cc->stats().true_misses_on_standby_set, 1ull);
}

TEST(ControlledCache, GatedTrueMissNoPenalty) {
  // The Sec. 5.1 asymmetry: gated-Vss starts the L2 access immediately.
  Fixture f(TechniqueParams::gated_vss());
  f.cc->access(f.addr(0, 1), false, 10);
  const unsigned lat = f.cc->access(f.addr(0, 2), false, 10000);
  EXPECT_EQ(lat, 2u + 11u + 100u);
  EXPECT_EQ(f.cc->stats().true_misses_on_standby_set, 1ull);
}

TEST(ControlledCache, GatedGhostStaleAfterFill) {
  Fixture f(TechniqueParams::gated_vss());
  f.cc->access(f.addr(0, 1), false, 10);
  f.cc->access(f.addr(0, 2), false, 20);
  // Both lines of set 0 decay.
  f.cc->access(f.addr(1, 9), false, 10000);
  // Two fills into set 0 (different tags): ghosts go stale.
  f.cc->access(f.addr(0, 3), false, 10010);
  f.cc->access(f.addr(0, 4), false, 10020);
  // Re-access of tag 1: LRU would have evicted it anyway -> true miss.
  f.cc->access(f.addr(0, 1), false, 10030);
  EXPECT_EQ(f.cc->stats().induced_misses, 0ull);
  EXPECT_GE(f.cc->stats().true_misses, 4ull);
}

TEST(ControlledCache, ResidencyIntegralsCloseAtFinalize) {
  Fixture f(TechniqueParams::drowsy());
  f.cc->access(f.addr(0, 1), false, 0);
  f.cc->finalize(100000);
  const ControlStats& s = f.cc->stats();
  // Every line contributes exactly end_cycle line-cycles, plus the settle
  // overlap we deliberately double-count at each decay event.
  const unsigned long long total = s.data_active_cycles + s.data_standby_cycles;
  const unsigned long long expected = 16ull * 100000ull;
  EXPECT_GE(total, expected);
  EXPECT_LE(total, expected + s.decays * 3);
  EXPECT_GT(s.data_standby_cycles, 0ull);
}

TEST(ControlledCache, TurnoffRatioHighForIdleCache) {
  Fixture f(TechniqueParams::drowsy());
  f.cc->access(f.addr(0, 1), false, 0);
  f.cc->finalize(1000000);
  EXPECT_GT(f.cc->stats().turnoff_ratio(), 0.95);
}

TEST(ControlledCache, TurnoffZeroForHotCache) {
  Fixture f(TechniqueParams::drowsy());
  // Touch every line continuously, faster than the interval.
  uint64_t cycle = 0;
  for (int round = 0; round < 200; ++round) {
    for (uint64_t set = 0; set < 8; ++set) {
      for (uint64_t tag = 1; tag <= 2; ++tag) {
        f.cc->access(f.addr(set, tag), false, cycle);
        cycle += 50; // 16 lines x 50 = 800 cycles per round << 4096
      }
    }
  }
  f.cc->finalize(cycle);
  EXPECT_LT(f.cc->stats().turnoff_ratio(), 0.05);
  EXPECT_EQ(f.cc->stats().decays, 0ull);
}

TEST(ControlledCache, TagsAlwaysActiveWhenNotDecayed) {
  TechniqueParams t = TechniqueParams::drowsy();
  t.decay_tags = false;
  Fixture f(t);
  f.cc->access(f.addr(0, 1), false, 0);
  f.cc->finalize(50000);
  EXPECT_EQ(f.cc->stats().tag_standby_cycles, 0ull);
  EXPECT_EQ(f.cc->stats().tag_active_cycles, 16ull * 50000ull);
}

TEST(ControlledCache, CounterTicksReachActivity) {
  Fixture f;
  f.cc->access(f.addr(0, 1), false, 0);
  f.cc->finalize(100000);
  EXPECT_GT(f.cc->stats().counter_ticks, 0ull);
  EXPECT_EQ(f.activity.counter_ticks, f.cc->stats().counter_ticks);
}

TEST(ControlledCache, TransitionsCounted) {
  Fixture f(TechniqueParams::drowsy());
  f.cc->access(f.addr(0, 1), false, 0);
  f.cc->access(f.addr(0, 1), false, 10000); // decay + wake
  f.cc->finalize(20000);
  EXPECT_GE(f.cc->stats().decays, 1ull);
  EXPECT_GE(f.cc->stats().wakes, 1ull);
  EXPECT_EQ(f.activity.line_transitions,
            f.cc->stats().decays + f.cc->stats().wakes);
}

TEST(ControlledCache, AccessAfterFinalizeThrows) {
  Fixture f;
  f.cc->finalize(100);
  EXPECT_THROW(f.cc->access(f.addr(0, 1), false, 200), std::logic_error);
}

TEST(ControlledCache, FinalizeIdempotent) {
  Fixture f;
  f.cc->access(f.addr(0, 1), false, 0);
  f.cc->finalize(1000);
  const unsigned long long a = f.cc->stats().data_active_cycles;
  f.cc->finalize(5000);
  EXPECT_EQ(f.cc->stats().data_active_cycles, a);
}

TEST(ControlledCache, SimplePolicyDecaysHotLines) {
  // Under the simple policy even continuously-touched lines decay every
  // interval — more savings, more slow hits (the drowsy paper trade-off).
  Fixture noaccess(TechniqueParams::drowsy(), 4096, DecayPolicy::noaccess);
  Fixture simple(TechniqueParams::drowsy(), 4096, DecayPolicy::simple);
  for (Fixture* f : {&noaccess, &simple}) {
    uint64_t cycle = 0;
    for (int i = 0; i < 3000; ++i) {
      (*f).cc->access((*f).addr(0, 1), false, cycle);
      cycle += 100;
    }
    (*f).cc->finalize(cycle);
  }
  EXPECT_EQ(noaccess.cc->stats().slow_hits, 0ull);
  EXPECT_GT(simple.cc->stats().slow_hits, 50ull);
}

TEST(ControlledCache, WindowHookFires) {
  Fixture f;
  int fired = 0;
  f.cc->set_window_hook(1000, [&](ControlledCache&, uint64_t) { ++fired; });
  f.cc->access(f.addr(0, 1), false, 5500);
  EXPECT_EQ(fired, 5);
}

TEST(ControlledCache, DrainInducedEvents) {
  Fixture f(TechniqueParams::drowsy());
  f.cc->access(f.addr(0, 1), false, 10);
  f.cc->access(f.addr(0, 1), false, 10000); // slow hit
  EXPECT_EQ(f.cc->drain_induced_events(), 1ull);
  EXPECT_EQ(f.cc->drain_induced_events(), 0ull);
}

TEST(ControlledCache, SetDecayIntervalReanchors) {
  Fixture f;
  f.cc->set_decay_interval(16384);
  EXPECT_EQ(f.cc->decay_interval(), 16384ull);
}

} // namespace
} // namespace leakctl
