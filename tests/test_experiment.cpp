// Experiment harness: run pairing, memoization, sweeps, averages.
// Uses small instruction counts to stay fast; level checks are loose.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "harness/experiment.h"

namespace harness {
namespace {

ExperimentConfig quick_config() {
  ExperimentConfig cfg;
  cfg.instructions = 150'000;
  cfg.variation = false; // skip the Monte Carlo for speed
  return cfg;
}

TEST(Experiment, ProducesConsistentResult) {
  const ExperimentResult r =
      run_experiment(workload::profile_by_name("gcc"), quick_config());
  EXPECT_EQ(r.benchmark, "gcc");
  EXPECT_EQ(r.base_run.instructions, 150'000ull);
  EXPECT_EQ(r.tech_run.instructions, 150'000ull);
  EXPECT_GT(r.tech_run.cycles, r.base_run.cycles); // techniques cost time
  EXPECT_GT(r.energy.baseline_leakage_j, 0.0);
  EXPECT_GT(r.energy.net_savings_frac, 0.0);
  EXPECT_LT(r.energy.net_savings_frac, 1.0);
  EXPECT_GT(r.energy.turnoff_ratio, 0.0);
  EXPECT_GT(r.base_l1d_miss_rate, 0.0);
}

TEST(Experiment, Deterministic) {
  clear_baseline_cache();
  const ExperimentConfig cfg = quick_config();
  const ExperimentResult a =
      run_experiment(workload::profile_by_name("twolf"), cfg);
  const ExperimentResult b =
      run_experiment(workload::profile_by_name("twolf"), cfg);
  EXPECT_DOUBLE_EQ(a.energy.net_savings_frac, b.energy.net_savings_frac);
  EXPECT_EQ(a.tech_run.cycles, b.tech_run.cycles);
}

TEST(Experiment, BaselineSharedAcrossTechniques) {
  ExperimentConfig cfg = quick_config();
  cfg.technique = leakctl::TechniqueParams::drowsy();
  const ExperimentResult d =
      run_experiment(workload::profile_by_name("vpr"), cfg);
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  const ExperimentResult g =
      run_experiment(workload::profile_by_name("vpr"), cfg);
  EXPECT_EQ(d.base_run.cycles, g.base_run.cycles);
}

TEST(Experiment, DrowsyVsGatedClassification) {
  ExperimentConfig cfg = quick_config();
  cfg.technique = leakctl::TechniqueParams::drowsy();
  const ExperimentResult d =
      run_experiment(workload::profile_by_name("gzip"), cfg);
  EXPECT_GT(d.control.slow_hits, 0ull);
  EXPECT_EQ(d.control.induced_misses, 0ull);
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  const ExperimentResult g =
      run_experiment(workload::profile_by_name("gzip"), cfg);
  EXPECT_EQ(g.control.slow_hits, 0ull);
  EXPECT_GT(g.control.induced_misses, 0ull);
}

TEST(Experiment, TemperatureRaisesSavings) {
  ExperimentConfig cfg = quick_config();
  cfg.temperature_c = 85.0;
  const ExperimentResult cool =
      run_experiment(workload::profile_by_name("parser"), cfg);
  cfg.temperature_c = 110.0;
  const ExperimentResult hot =
      run_experiment(workload::profile_by_name("parser"), cfg);
  EXPECT_GT(hot.energy.net_savings_frac, cool.energy.net_savings_frac);
  // Identical timing: temperature only affects the energy model.
  EXPECT_EQ(hot.tech_run.cycles, cool.tech_run.cycles);
}

TEST(Experiment, SuiteCoversAllBenchmarks) {
  ExperimentConfig cfg = quick_config();
  cfg.instructions = 60'000;
  const SuiteResult suite = run_suite(cfg);
  ASSERT_EQ(suite.size(), 11u);
  EXPECT_EQ(suite.front().benchmark, "gcc");
  EXPECT_EQ(suite.back().benchmark, "crafty");
  // Named accessors: per-benchmark lookup and suite-level means.
  EXPECT_EQ(suite.at("mcf").benchmark, "mcf");
  ASSERT_NE(suite.find("twolf"), nullptr);
  EXPECT_EQ(suite.find("nonesuch"), nullptr);
  EXPECT_THROW(suite.at("nonesuch"), std::out_of_range);
  EXPECT_DOUBLE_EQ(suite.mean_net_savings(), averages(suite).net_savings);
  EXPECT_DOUBLE_EQ(suite.mean_slowdown(), averages(suite).perf_loss);
}

TEST(Experiment, AveragesComputed) {
  std::vector<ExperimentResult> fake(2);
  fake[0].energy.net_savings_frac = 0.4;
  fake[1].energy.net_savings_frac = 0.6;
  fake[0].energy.perf_loss_frac = 0.01;
  fake[1].energy.perf_loss_frac = 0.03;
  fake[0].energy.turnoff_ratio = 0.5;
  fake[1].energy.turnoff_ratio = 0.7;
  const SuiteAverages avg = averages(fake);
  EXPECT_DOUBLE_EQ(avg.net_savings, 0.5);
  EXPECT_DOUBLE_EQ(avg.perf_loss, 0.02);
  EXPECT_DOUBLE_EQ(avg.turnoff, 0.6);
  EXPECT_DOUBLE_EQ(averages(std::vector<ExperimentResult>{}).net_savings, 0.0);
  EXPECT_DOUBLE_EQ(SuiteResult{}.mean_net_savings(), 0.0);
}

TEST(Experiment, IntervalSweepFindsBest) {
  ExperimentConfig cfg = quick_config();
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  const std::vector<uint64_t> grid = {2048, 8192, 32768};
  const IntervalSweepResult sweep =
      best_interval_sweep(workload::profile_by_name("twolf"), cfg, grid);
  ASSERT_EQ(sweep.sweep.size(), 3u);
  EXPECT_NE(sweep.best_interval, 0ull);
  for (const ExperimentResult& r : sweep.sweep) {
    EXPECT_LE(r.energy.net_savings_frac, sweep.best.energy.net_savings_frac);
  }
}

TEST(Experiment, PaperIntervalGrid) {
  const std::vector<uint64_t> grid = paper_interval_grid();
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_EQ(grid.front(), 1024ull);
  EXPECT_EQ(grid.back(), 65536ull);
}

TEST(Experiment, AdaptiveFeedbackRuns) {
  ExperimentConfig cfg = quick_config();
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  cfg.adaptive = ExperimentConfig::AdaptiveScheme::feedback;
  cfg.feedback.window_cycles = 20000;
  const ExperimentResult r =
      run_experiment(workload::profile_by_name("gcc"), cfg);
  // Feedback keeps the tags awake.
  EXPECT_EQ(r.control.tag_standby_cycles, 0ull);
  EXPECT_GT(r.energy.net_savings_frac, 0.0);
}

TEST(Experiment, LongerDecayIntervalLowersTurnoff) {
  ExperimentConfig cfg = quick_config();
  cfg.decay_interval = 1024;
  const ExperimentResult fast =
      run_experiment(workload::profile_by_name("gap"), cfg);
  cfg.decay_interval = 65536;
  const ExperimentResult slow =
      run_experiment(workload::profile_by_name("gap"), cfg);
  EXPECT_GT(fast.energy.turnoff_ratio, slow.energy.turnoff_ratio);
}

TEST(ExperimentValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(ExperimentConfig{}.validate());
  EXPECT_NO_THROW(quick_config().validate());
}

TEST(ExperimentValidate, RejectsZeroInstructions) {
  ExperimentConfig cfg = quick_config();
  cfg.instructions = 0;
  EXPECT_THROW(
      {
        try {
          cfg.validate();
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string(e.what()).find("instructions"),
                    std::string::npos);
          throw;
        }
      },
      std::invalid_argument);
  EXPECT_THROW(run_experiment(workload::profile_by_name("gcc"), cfg),
               std::invalid_argument);
}

TEST(ExperimentValidate, RejectsZeroL2Latency) {
  ExperimentConfig cfg = quick_config();
  cfg.l2_latency = 0;
  EXPECT_THROW(
      {
        try {
          cfg.validate();
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string(e.what()).find("l2_latency"),
                    std::string::npos);
          throw;
        }
      },
      std::invalid_argument);
}

TEST(ExperimentValidate, RejectsBadDecayInterval) {
  ExperimentConfig cfg = quick_config();
  cfg.decay_interval = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.decay_interval = 4095; // not a multiple of 4
  EXPECT_THROW(
      {
        try {
          cfg.validate();
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string(e.what()).find("decay_interval"),
                    std::string::npos);
          throw;
        }
      },
      std::invalid_argument);
  cfg.decay_interval = 4096;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ExperimentValidate, RejectsVddBelowRetentionFloor) {
  ExperimentConfig cfg = quick_config();
  cfg.vdd = 0.1; // below ~0.32 V: cells cannot hold state
  EXPECT_THROW(
      {
        try {
          cfg.validate();
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string(e.what()).find("vdd"), std::string::npos);
          EXPECT_NE(std::string(e.what()).find("retention"),
                    std::string::npos);
          throw;
        }
      },
      std::invalid_argument);
  cfg.vdd = 0.7; // a legitimate DVS point
  EXPECT_NO_THROW(cfg.validate());
  cfg.vdd = -1.0; // "use the nominal" sentinel stays legal
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ExperimentValidate, RejectsNonProbabilityFaultRates) {
  ExperimentConfig cfg = quick_config();
  cfg.faults.standby_rate_per_bit_cycle = -1e-9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.faults.standby_rate_per_bit_cycle = 0.0;
  cfg.faults.active_rate_per_bit_cycle = 2.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

} // namespace
} // namespace harness
