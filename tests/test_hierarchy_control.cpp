// Controlled caches stacked across the hierarchy: LevelRole counter
// routing, the writeback-absorption contract (leakctl/controlled_cache.h)
// that makes an L1-over-L2 controlled stack safe to compose without
// double-counting, and the latency asymmetry between a decayed gated-Vss
// L2 (induced miss at full memory latency) and a drowsy one (slow hit).
#include <gtest/gtest.h>

#include <memory>

#include "leakctl/controlled_cache.h"
#include "sim/hierarchy.h"

namespace leakctl {
namespace {

constexpr unsigned kMemLatency = 100;
constexpr uint64_t kNever = 1u << 20; // interval long enough to never decay

ControlledCacheConfig small_l1(TechniqueParams tech, uint64_t interval) {
  ControlledCacheConfig cfg;
  cfg.cache = {.size_bytes = 1024, .assoc = 2, .line_bytes = 64,
               .hit_latency = 2}; // 8 sets x 2 ways
  cfg.role = LevelRole::l1d;
  cfg.technique = tech;
  cfg.decay_interval = interval;
  return cfg;
}

ControlledCacheConfig small_l2(TechniqueParams tech, uint64_t interval) {
  ControlledCacheConfig cfg;
  cfg.cache = {.size_bytes = 4096, .assoc = 2, .line_bytes = 64,
               .hit_latency = 11}; // 32 sets x 2 ways
  cfg.role = LevelRole::l2;
  cfg.technique = tech;
  cfg.decay_interval = interval;
  return cfg;
}

/// A controlled cache in the L2 role directly over memory.
struct L2Fixture {
  explicit L2Fixture(TechniqueParams tech = TechniqueParams::drowsy(),
                     uint64_t interval = 4096)
      : mem(kMemLatency, &activity),
        cc(small_l2(tech, interval), mem, &activity) {}

  /// Address mapping for the 32-set L2.
  uint64_t addr(uint64_t set, uint64_t tag) const {
    return (tag * 32 + set) * 64;
  }

  wattch::Activity activity;
  sim::MemoryBackend mem;
  ControlledCache cc;
};

/// The full two-controlled-level stack: L1 over L2 over memory.
struct StackFixture {
  StackFixture(TechniqueParams l1_tech, uint64_t l1_interval,
               TechniqueParams l2_tech, uint64_t l2_interval)
      : mem(kMemLatency, &activity),
        l2(small_l2(l2_tech, l2_interval), mem, &activity),
        l1(small_l1(l1_tech, l1_interval), l2, &activity) {}

  /// Address mapping for the 8-set L1; the 32-set L2 sees the same
  /// addresses, so same-L1-set strides land in distinct L2 sets.
  uint64_t addr(uint64_t set, uint64_t tag) const {
    return (tag * 8 + set) * 64;
  }

  wattch::Activity activity;
  sim::MemoryBackend mem;
  ControlledCache l2;
  ControlledCache l1;
};

// --- LevelRole counter routing ----------------------------------------

TEST(HierarchyControl, L2RoleChargesL2AccessCounter) {
  L2Fixture f;
  f.cc.access(f.addr(0, 1), false, 10);       // cold miss -> memory
  f.cc.access(f.addr(0, 1), true, 20);        // hit, store
  EXPECT_EQ(f.activity.l2_accesses, 2ull);    // priced like a plain L2
  EXPECT_EQ(f.activity.l1_reads, 0ull);       // never the L1 counters
  EXPECT_EQ(f.activity.l1_writes, 0ull);
  EXPECT_EQ(f.activity.memory_accesses, 1ull);
}

TEST(HierarchyControl, L1RoleChargesL1Counters) {
  wattch::Activity activity;
  sim::MemoryBackend mem(kMemLatency, &activity);
  ControlledCache cc(small_l1(TechniqueParams::drowsy(), kNever), mem,
                     &activity);
  cc.access(64, false, 10);
  cc.access(64, true, 20);
  EXPECT_EQ(activity.l1_reads, 1ull);
  EXPECT_EQ(activity.l1_writes, 1ull);
  EXPECT_EQ(activity.l2_accesses, 0ull);
}

// --- writeback-absorption contract ------------------------------------

TEST(HierarchyControl, WritebackReplayedAsOneClassifiedStore) {
  L2Fixture f(TechniqueParams::drowsy(), kNever);
  // Cold absorption: the victim misses here, so exactly one backing
  // access fetches the line the dirty data lands in.
  f.cc.writeback(f.addr(0, 1), 10);
  EXPECT_EQ(f.cc.stats().true_misses, 1ull);
  EXPECT_EQ(f.activity.l2_accesses, 1ull);
  EXPECT_EQ(f.activity.memory_accesses, 1ull);
  // Warm absorption: a hit is fully absorbed — no memory traffic at all.
  f.cc.writeback(f.addr(0, 1), 20);
  EXPECT_EQ(f.cc.stats().hits, 1ull);
  EXPECT_EQ(f.activity.l2_accesses, 2ull);
  EXPECT_EQ(f.activity.memory_accesses, 1ull);
}

TEST(HierarchyControl, StackedEvictionDoesNotDoubleCountMemory) {
  // Dirty L1 victim -> controlled L2 that already holds the line: the
  // writeback charges one l2_access and nothing at memory, and stays off
  // the evicting access's critical path.
  StackFixture f(TechniqueParams::drowsy(), kNever,
                 TechniqueParams::drowsy(), kNever);
  const uint64_t stride = 8 * 64; // same L1 set, distinct L2 sets
  f.l1.access(f.addr(0, 1), true, 10); // dirty; fills L1 and L2
  f.l1.access(f.addr(0, 1) + stride, false, 20);
  EXPECT_EQ(f.activity.memory_accesses, 2ull);
  EXPECT_EQ(f.activity.l2_accesses, 2ull);
  // Third fill into the 2-way set evicts dirty tag 1 -> writeback.
  const unsigned lat = f.l1.access(f.addr(0, 1) + 2 * stride, false, 30);
  EXPECT_EQ(lat, 2u + 11u + kMemLatency); // writeback adds no latency
  EXPECT_EQ(f.activity.memory_accesses, 3ull); // 3 cold fills, no 4th
  EXPECT_EQ(f.activity.l2_accesses, 4ull);     // 3 misses + 1 absorption
  EXPECT_EQ(f.l2.stats().hits, 1ull);          // the absorbed victim
  // The dirty data survived in the L2: a re-access is an L2 hit.
  EXPECT_EQ(f.l1.access(f.addr(0, 1), false, 40), 2u + 11u);
  EXPECT_EQ(f.activity.memory_accesses, 3ull);
}

TEST(HierarchyControl, L1DecayWritebackWarmsControlledL2) {
  // Gated L1 decays a dirty line; the decay writeback lands in a drowsy
  // L2 whose copy has itself gone to standby (shorter L2 interval) — the
  // absorption is a slow hit that wakes and re-warms that line, so the
  // later L1 induced miss is served by the L2, never by memory.
  StackFixture f(TechniqueParams::gated_vss(), 4096,
                 TechniqueParams::drowsy(), 1024);
  f.l1.access(f.addr(0, 1), true, 10); // dirty in L1, resident in L2
  EXPECT_EQ(f.activity.memory_accesses, 1ull);
  // Past both intervals: advancing time fires the L1 decay sweep, whose
  // dirty victim is replayed into the long-standby L2 line; the same
  // access then finds its gated L1 line destroyed -> induced miss.
  const unsigned lat = f.l1.access(f.addr(0, 1), false, 10000);
  EXPECT_EQ(f.l1.stats().decay_writebacks, 1ull);
  EXPECT_EQ(f.l1.stats().induced_misses, 1ull);
  EXPECT_GE(f.l2.stats().slow_hits, 1ull); // absorbed into a drowsy line
  EXPECT_GE(f.l2.stats().wakes, 1ull);
  // Served at L2 latency (plus at most drowsy wake penalties) — the
  // dirty data survived without a single further memory access.
  EXPECT_LT(lat, 2u + 11u + kMemLatency);
  EXPECT_EQ(f.activity.memory_accesses, 1ull);
}

// --- decayed-L2 service latencies -------------------------------------

TEST(HierarchyControl, GatedL2InducedMissPaysFullMemoryLatency) {
  L2Fixture f(TechniqueParams::gated_vss(), 4096);
  EXPECT_EQ(f.cc.access(f.addr(0, 1), false, 10), 11u + kMemLatency);
  // Decay destroyed the line: the re-access is an induced miss served
  // from memory at full latency, exactly like the cold miss.
  EXPECT_EQ(f.cc.access(f.addr(0, 1), false, 10000), 11u + kMemLatency);
  EXPECT_EQ(f.cc.stats().induced_misses, 1ull);
  EXPECT_EQ(f.activity.memory_accesses, 2ull);
}

TEST(HierarchyControl, DrowsyL2SlowHitAvoidsMemory) {
  L2Fixture f(TechniqueParams::drowsy(), 4096);
  f.cc.access(f.addr(0, 1), false, 10);
  const unsigned lat = f.cc.access(f.addr(0, 1), false, 10000);
  EXPECT_LT(lat, 11u + kMemLatency); // wake penalty, not a memory trip
  EXPECT_EQ(f.cc.stats().slow_hits, 1ull);
  EXPECT_EQ(f.activity.memory_accesses, 1ull);
}

TEST(HierarchyControl, StackedColdMissLatencyComposes) {
  StackFixture f(TechniqueParams::drowsy(), kNever,
                 TechniqueParams::drowsy(), kNever);
  EXPECT_EQ(f.l1.access(f.addr(0, 1), false, 10), 2u + 11u + kMemLatency);
  EXPECT_EQ(f.l1.access(f.addr(0, 1), false, 20), 2u);
}

} // namespace
} // namespace leakctl
