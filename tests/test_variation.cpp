// Inter-die parameter variation (paper Sec. 3.3).
#include <gtest/gtest.h>

#include "hotleakage/variation.h"

namespace hotleakage {
namespace {

const TechParams& t70() { return tech_params(TechNode::nm70); }
const OperatingPoint kOp{.temperature_k = 383.15, .vdd = 0.9};

TEST(Variation, Deterministic) {
  const VariationResult a = interdie_variation(t70(), DeviceType::nmos, kOp);
  const VariationResult b = interdie_variation(t70(), DeviceType::nmos, kOp);
  EXPECT_DOUBLE_EQ(a.mean_factor, b.mean_factor);
  EXPECT_DOUBLE_EQ(a.stddev_factor, b.stddev_factor);
}

TEST(Variation, MeanExceedsNominal) {
  // Leakage is convex in the varied parameters, so Jensen's inequality
  // makes the variation-aware mean exceed the nominal value — the reason
  // ignoring variation underestimates leakage.
  const VariationResult r = interdie_variation(t70(), DeviceType::nmos, kOp);
  EXPECT_GT(r.mean_factor, 1.0);
  EXPECT_LT(r.mean_factor, 3.0); // but not wildly
}

TEST(Variation, SpreadBracketsNominal) {
  const VariationResult r = interdie_variation(t70(), DeviceType::nmos, kOp);
  EXPECT_LT(r.min_factor, 1.0);
  EXPECT_GT(r.max_factor, 1.0);
  EXPECT_GT(r.stddev_factor, 0.0);
}

TEST(Variation, DisabledIsIdentity) {
  VariationConfig cfg;
  cfg.enabled = false;
  EXPECT_DOUBLE_EQ(variation_scale(t70(), kOp, cfg), 1.0);
  const VariationResult r =
      interdie_variation(t70(), DeviceType::nmos, kOp, cfg);
  EXPECT_DOUBLE_EQ(r.mean_factor, 1.0);
}

TEST(Variation, ZeroSigmaIsNearIdentity) {
  VariationConfig cfg;
  cfg.sigma_scale = 0.0;
  const VariationResult r =
      interdie_variation(t70(), DeviceType::nmos, kOp, cfg);
  EXPECT_NEAR(r.mean_factor, 1.0, 1e-9);
  EXPECT_NEAR(r.stddev_factor, 0.0, 1e-9);
}

TEST(Variation, LargerSigmaLargerMean) {
  VariationConfig half;
  half.sigma_scale = 0.5;
  VariationConfig full;
  const double m_half =
      interdie_variation(t70(), DeviceType::nmos, kOp, half).mean_factor;
  const double m_full =
      interdie_variation(t70(), DeviceType::nmos, kOp, full).mean_factor;
  EXPECT_GT(m_full, m_half);
}

TEST(Variation, SampleCountConvergence) {
  // Doubling samples should not move the mean dramatically (law of large
  // numbers sanity check).
  VariationConfig a;
  a.samples = 256;
  VariationConfig b;
  b.samples = 4096;
  const double ma =
      interdie_variation(t70(), DeviceType::nmos, kOp, a).mean_factor;
  const double mb =
      interdie_variation(t70(), DeviceType::nmos, kOp, b).mean_factor;
  EXPECT_NEAR(ma, mb, 0.25 * mb);
}

TEST(Variation, ScaleAveragesPolarities) {
  const double s = variation_scale(t70(), kOp);
  const double n =
      interdie_variation(t70(), DeviceType::nmos, kOp).mean_factor;
  const double p =
      interdie_variation(t70(), DeviceType::pmos, kOp).mean_factor;
  EXPECT_NEAR(s, 0.5 * (n + p), 1e-12);
}

TEST(Variation, SeedChangesSamplesNotRegime) {
  VariationConfig s1;
  VariationConfig s2;
  s2.seed = 123456;
  const double m1 =
      interdie_variation(t70(), DeviceType::nmos, kOp, s1).mean_factor;
  const double m2 =
      interdie_variation(t70(), DeviceType::nmos, kOp, s2).mean_factor;
  EXPECT_NE(m1, m2);
  EXPECT_NEAR(m1, m2, 0.3 * m1);
}

} // namespace
} // namespace hotleakage
