// Hybrid predictor (bimod + GAg + chooser) and BTB.
#include <gtest/gtest.h>

#include "sim/branch.h"

namespace sim {
namespace {

TEST(SatCounter, Saturates) {
  SatCounter2 c;
  for (int i = 0; i < 10; ++i) c.update(true);
  EXPECT_TRUE(c.taken());
  EXPECT_EQ(c.raw(), 3);
  for (int i = 0; i < 10; ++i) c.update(false);
  EXPECT_FALSE(c.taken());
  EXPECT_EQ(c.raw(), 0);
}

TEST(SatCounter, Hysteresis) {
  SatCounter2 c; // starts weakly taken (2)
  c.update(false);
  EXPECT_FALSE(c.taken()); // 1
  c.update(true);
  EXPECT_TRUE(c.taken()); // 2
}

TEST(Hybrid, LearnsAlwaysTaken) {
  HybridPredictor p;
  const uint64_t pc = 0x400100;
  for (int i = 0; i < 100; ++i) p.update(pc, true);
  EXPECT_TRUE(p.predict(pc));
  // After warmup, accuracy should be near-perfect.
  unsigned long long wrong_before = p.stats().direction_mispredicts;
  for (int i = 0; i < 100; ++i) p.update(pc, true);
  EXPECT_EQ(p.stats().direction_mispredicts, wrong_before);
}

TEST(Hybrid, LearnsAlternatingViaHistory) {
  // Bimod cannot learn T/N/T/N, but the 12-bit GAg can; the chooser should
  // migrate to it.
  HybridPredictor p;
  const uint64_t pc = 0x400200;
  bool outcome = false;
  for (int i = 0; i < 2000; ++i) {
    p.update(pc, outcome);
    outcome = !outcome;
  }
  // Measure accuracy over the next 200.
  unsigned long long wrong_before = p.stats().direction_mispredicts;
  for (int i = 0; i < 200; ++i) {
    p.update(pc, outcome);
    outcome = !outcome;
  }
  const unsigned long long wrong =
      p.stats().direction_mispredicts - wrong_before;
  EXPECT_LT(wrong, 20ull); // >90 % on a learnable pattern
}

TEST(Hybrid, RandomBranchNearChance) {
  HybridPredictor p;
  const uint64_t pc = 0x400300;
  uint64_t x = 88172645463325252ull;
  unsigned long long wrong = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const bool outcome = (x & 1) != 0;
    const unsigned long long before = p.stats().direction_mispredicts;
    p.update(pc, outcome);
    wrong += p.stats().direction_mispredicts - before;
  }
  const double rate = static_cast<double>(wrong) / n;
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

TEST(Hybrid, StatsCount) {
  HybridPredictor p;
  for (int i = 0; i < 7; ++i) p.update(0x1000 + 4 * i, true);
  EXPECT_EQ(p.stats().branches, 7ull);
}

TEST(Btb, MissThenHit) {
  Btb btb;
  uint64_t target = 0;
  EXPECT_FALSE(btb.lookup(0x400000, target));
  btb.update(0x400000, 0x400abc);
  EXPECT_TRUE(btb.lookup(0x400000, target));
  EXPECT_EQ(target, 0x400abcull);
}

TEST(Btb, UpdateOverwritesTarget) {
  Btb btb;
  btb.update(0x400000, 0x1);
  btb.update(0x400000, 0x2);
  uint64_t target = 0;
  EXPECT_TRUE(btb.lookup(0x400000, target));
  EXPECT_EQ(target, 0x2ull);
}

TEST(Btb, TwoWaysPerSet) {
  Btb btb;
  // Two PCs mapping to the same set (1 K entries, 512 sets, stride 512*4).
  const uint64_t a = 0x400000;
  const uint64_t b = a + 512 * 4;
  btb.update(a, 0xa);
  btb.update(b, 0xb);
  uint64_t t = 0;
  EXPECT_TRUE(btb.lookup(a, t));
  EXPECT_EQ(t, 0xaull);
  EXPECT_TRUE(btb.lookup(b, t));
  EXPECT_EQ(t, 0xbull);
  // A third conflicting entry evicts one of them, not both.
  const uint64_t c = a + 2 * 512 * 4;
  btb.update(c, 0xc);
  int resident = 0;
  resident += btb.lookup(a, t) ? 1 : 0;
  resident += btb.lookup(b, t) ? 1 : 0;
  EXPECT_TRUE(btb.lookup(c, t));
  EXPECT_EQ(resident, 1);
}

} // namespace
} // namespace sim
