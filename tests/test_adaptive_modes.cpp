// Kaxiras per-line adaptive intervals and Zhou adaptive mode control.
#include <gtest/gtest.h>

#include "leakctl/adaptive_modes.h"
#include "sim/processor.h"

namespace leakctl {
namespace {

struct Fixture {
  explicit Fixture(TechniqueParams tech = TechniqueParams::gated_vss()) {
    sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
    cfg.cache = {.size_bytes = 1024, .assoc = 2, .line_bytes = 64,
                 .hit_latency = 2};
    cfg.technique = tech;
    cfg.technique.decay_tags = false; // adaptive schemes need awake tags
    cfg.decay_interval = 4096;
    mem = std::make_unique<sim::MemoryBackend>(pcfg.memory_latency, nullptr);
    l2 = std::make_unique<sim::CacheLevel>(pcfg.l2, *mem, nullptr);
    cc = std::make_unique<ControlledCache>(cfg, *l2, nullptr);
  }
  uint64_t addr(uint64_t set, uint64_t tag) const {
    return (tag * 8 + set) * 64;
  }
  ControlledCacheConfig cfg;
  std::unique_ptr<sim::MemoryBackend> mem;
  std::unique_ptr<sim::CacheLevel> l2;
  std::unique_ptr<ControlledCache> cc;
};

TEST(PerLine, PromotionOnInducedMiss) {
  Fixture f;
  PerLineAdaptiveController ctl;
  ctl.attach(*f.cc);
  // Touch a line with a gap just above the interval: each re-touch is an
  // induced miss, promoting the line to a longer threshold.
  EXPECT_EQ(f.cc->line_decay_threshold(0), 4u);
  EXPECT_EQ(f.cc->line_decay_threshold(1), 4u);
  uint64_t cycle = 0;
  f.cc->access(f.addr(0, 1), false, cycle);
  cycle += 6000;
  f.cc->access(f.addr(0, 1), false, cycle);
  EXPECT_GT(ctl.promotions(), 0ull);
  // Whichever way of set 0 held the line got promoted.
  EXPECT_TRUE(f.cc->line_decay_threshold(0) == 8u ||
              f.cc->line_decay_threshold(1) == 8u);
  // After promotion the same 6000-cycle gap no longer decays the line.
  cycle += 6000;
  const unsigned lat = f.cc->access(f.addr(0, 1), false, cycle);
  EXPECT_EQ(lat, 2u); // plain hit now
}

TEST(PerLine, PromotionSaturatesAtMaxShift) {
  Fixture f;
  PerLineAdaptiveConfig pcfg;
  pcfg.max_shift = 2;
  pcfg.forget_window_cycles = 100'000'000; // no forgetting in this test
  PerLineAdaptiveController ctl(pcfg);
  ctl.attach(*f.cc);
  uint64_t cycle = 0;
  for (int i = 0; i < 12; ++i) {
    f.cc->access(f.addr(0, 1), false, cycle);
    cycle += 70'000; // always longer than even the longest threshold
  }
  EXPECT_LE(f.cc->line_decay_threshold(0), 4u << 2);
}

TEST(PerLine, ForgettingDemotes) {
  Fixture f;
  PerLineAdaptiveConfig pcfg;
  pcfg.forget_window_cycles = 50'000;
  PerLineAdaptiveController ctl(pcfg);
  ctl.attach(*f.cc);
  uint64_t cycle = 0;
  f.cc->access(f.addr(0, 1), false, cycle);
  cycle = 6000;
  f.cc->access(f.addr(0, 1), false, cycle); // induced -> promote to 8
  EXPECT_TRUE(f.cc->line_decay_threshold(0) == 8u ||
              f.cc->line_decay_threshold(1) == 8u);
  // Cross a forget window: demoted back to 4.
  f.cc->access(f.addr(1, 1), false, 120'000);
  EXPECT_EQ(f.cc->line_decay_threshold(0), 4u);
  EXPECT_EQ(f.cc->line_decay_threshold(1), 4u);
  EXPECT_GT(ctl.demotions(), 0ull);
}

TEST(Amc, RaisesIntervalWhenSleepMissesDominate) {
  Fixture f;
  AmcConfig acfg;
  acfg.window_cycles = 50'000;
  acfg.target_ratio = 0.05;
  AdaptiveModeControl ctl(acfg);
  ctl.attach(*f.cc);
  // Manufacture many induced misses and few true misses.
  uint64_t cycle = 0;
  for (int i = 0; i < 10; ++i) {
    f.cc->access(f.addr(0, 1), false, cycle);
    cycle += 6000;
  }
  // Cross the window boundary.
  f.cc->access(f.addr(0, 1), false, 61'000);
  EXPECT_GT(f.cc->decay_interval(), 4096ull);
  EXPECT_GT(ctl.ups(), 0ull);
}

TEST(Amc, LowersIntervalWhenSleepMissesRare) {
  Fixture f;
  AmcConfig acfg;
  acfg.window_cycles = 20'000;
  acfg.target_ratio = 0.5;
  AdaptiveModeControl ctl(acfg);
  ctl.attach(*f.cc);
  // Many true (cold) misses, no induced.
  uint64_t cycle = 0;
  for (uint64_t t = 1; t <= 12; ++t) {
    f.cc->access(f.addr(t % 8, t + 1), false, cycle);
    cycle += 100;
  }
  f.cc->access(f.addr(0, 99), false, 25'000);
  EXPECT_LT(f.cc->decay_interval(), 4096ull);
  EXPECT_GT(ctl.downs(), 0ull);
}

TEST(Amc, NoSignalNoAdjustment) {
  Fixture f;
  AmcConfig acfg;
  acfg.window_cycles = 10'000;
  AdaptiveModeControl ctl(acfg);
  ctl.attach(*f.cc);
  // A couple of accesses only: below the signal floor.
  f.cc->access(f.addr(0, 1), false, 100);
  f.cc->access(f.addr(0, 1), false, 11'000);
  EXPECT_EQ(f.cc->decay_interval(), 4096ull);
  EXPECT_EQ(ctl.adjustments(), 0ull);
}

TEST(Amc, RespectsBounds) {
  Fixture f;
  AmcConfig acfg;
  acfg.window_cycles = 10'000;
  acfg.target_ratio = 0.5;
  acfg.min_interval = 2048;
  AdaptiveModeControl ctl(acfg);
  ctl.attach(*f.cc);
  uint64_t cycle = 0;
  for (int w = 0; w < 8; ++w) {
    // 12 true misses per window.
    for (uint64_t t = 1; t <= 12; ++t) {
      f.cc->access(f.addr(t % 8, 100 + static_cast<uint64_t>(w) * 16 + t),
                   false, cycle);
      cycle += 100;
    }
    cycle = (w + 1) * 10'000 + 100;
    f.cc->access(f.addr(0, 1), false, cycle);
  }
  EXPECT_GE(f.cc->decay_interval(), 2048ull);
}

} // namespace
} // namespace leakctl
