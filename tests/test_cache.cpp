// Set-associative cache: hits, LRU, write-back, invalidation.
#include <gtest/gtest.h>

#include "sim/cache.h"

namespace sim {
namespace {

CacheConfig small_cfg() {
  // 4 sets x 2 ways x 64 B lines = 512 B, easy to reason about.
  return {.size_bytes = 512, .assoc = 2, .line_bytes = 64, .hit_latency = 2};
}

uint64_t addr_of(uint64_t set, uint64_t tag, const CacheConfig& cfg) {
  return (tag * cfg.sets() + set) * cfg.line_bytes;
}

TEST(Cache, GeometryValidation) {
  EXPECT_NO_THROW(Cache{small_cfg()});
  CacheConfig bad = small_cfg();
  bad.line_bytes = 48; // 512 % 48 != 0
  EXPECT_THROW(Cache{bad}, std::invalid_argument);
  bad = small_cfg();
  bad.assoc = 3; // lines % assoc != 0
  EXPECT_THROW(Cache{bad}, std::invalid_argument);
  bad = small_cfg();
  bad.assoc = 0;
  EXPECT_THROW(Cache{bad}, std::invalid_argument);
}

TEST(Cache, GeometryValidationNamesTheOffendingField) {
  const auto message_of = [](CacheConfig cfg) -> std::string {
    try {
      cfg.validate();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  CacheConfig bad = small_cfg();
  bad.line_bytes = 0;
  EXPECT_NE(message_of(bad).find("line_bytes"), std::string::npos);
  bad = small_cfg();
  bad.assoc = 0;
  EXPECT_NE(message_of(bad).find("assoc"), std::string::npos);
  bad = small_cfg();
  bad.size_bytes = 0;
  EXPECT_NE(message_of(bad).find("size_bytes"), std::string::npos);
  bad = small_cfg();
  bad.assoc = 3;
  EXPECT_NE(message_of(bad).find("assoc"), std::string::npos);
  bad = small_cfg();
  bad.size_bytes = 500; // not a multiple of 64
  EXPECT_NE(message_of(bad).find("multiple of line_bytes"),
            std::string::npos);
  // lines < assoc would otherwise yield sets() == 0 and a silent mod-by-
  // zero on the first access.
  bad = small_cfg();
  bad.size_bytes = 64;
  bad.assoc = 2;
  EXPECT_FALSE(message_of(bad).empty());
}

TEST(Cache, NonPowerOfTwoGeometryFallsBackToDivMod) {
  // 3 sets x 2 ways x 64 B lines: sets() is not a power of two, so the
  // shift/mask fast path does not apply; the div/mod fallback must still
  // behave like a correct set-associative cache.
  const CacheConfig cfg{.size_bytes = 384, .assoc = 2, .line_bytes = 64,
                        .hit_latency = 2};
  EXPECT_NO_THROW(cfg.validate());
  Cache c(cfg);
  EXPECT_EQ(c.config().sets(), 3u);
  const uint64_t a = addr_of(2, 5, cfg);
  EXPECT_EQ(c.set_index(a), 2u);
  EXPECT_EQ(c.tag_of(a), 5ull);
  EXPECT_FALSE(c.access(a, false, 1).hit);
  EXPECT_TRUE(c.access(a, false, 2).hit);
  const uint64_t b = addr_of(2, 6, cfg);
  const uint64_t d = addr_of(2, 7, cfg);
  c.access(b, false, 3);
  c.access(d, false, 4); // evicts a (LRU)
  EXPECT_FALSE(c.probe(a));
  EXPECT_TRUE(c.probe(b));
  EXPECT_TRUE(c.probe(d));
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cfg());
  const uint64_t a = addr_of(1, 7, c.config());
  EXPECT_FALSE(c.access(a, false, 10).hit);
  EXPECT_TRUE(c.access(a, false, 11).hit);
  EXPECT_EQ(c.stats().reads, 2ull);
  EXPECT_EQ(c.stats().read_misses, 1ull);
}

TEST(Cache, SameSetDifferentTags) {
  Cache c(small_cfg());
  const uint64_t a = addr_of(2, 1, c.config());
  const uint64_t b = addr_of(2, 2, c.config());
  c.access(a, false, 1);
  c.access(b, false, 2);
  EXPECT_TRUE(c.access(a, false, 3).hit); // both fit in 2 ways
  EXPECT_TRUE(c.access(b, false, 4).hit);
}

TEST(Cache, LruEviction) {
  Cache c(small_cfg());
  const uint64_t a = addr_of(0, 1, c.config());
  const uint64_t b = addr_of(0, 2, c.config());
  const uint64_t d = addr_of(0, 3, c.config());
  c.access(a, false, 1);
  c.access(b, false, 2);
  c.access(a, false, 3); // a MRU, b LRU
  c.access(d, false, 4); // evicts b
  EXPECT_TRUE(c.access(a, false, 5).hit);
  EXPECT_FALSE(c.probe(b));
  EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyEvictionProducesWriteback) {
  Cache c(small_cfg());
  const uint64_t a = addr_of(0, 1, c.config());
  c.access(a, true, 1); // write-allocate, dirty
  c.access(addr_of(0, 2, c.config()), false, 2);
  const Cache::AccessResult r = c.access(addr_of(0, 3, c.config()), false, 3);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.writeback_addr, a);
  EXPECT_EQ(c.stats().writebacks, 1ull);
}

TEST(Cache, CleanEvictionNoWriteback) {
  Cache c(small_cfg());
  c.access(addr_of(0, 1, c.config()), false, 1);
  c.access(addr_of(0, 2, c.config()), false, 2);
  const Cache::AccessResult r = c.access(addr_of(0, 3, c.config()), false, 3);
  EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitSetsDirty) {
  Cache c(small_cfg());
  const uint64_t a = addr_of(1, 4, c.config());
  const Cache::AccessResult fill = c.access(a, false, 1);
  EXPECT_FALSE(c.line(fill.set, fill.way).dirty);
  c.access(a, true, 2);
  EXPECT_TRUE(c.line(fill.set, fill.way).dirty);
}

TEST(Cache, ProbeDoesNotDisturbState) {
  Cache c(small_cfg());
  const uint64_t a = addr_of(0, 1, c.config());
  const uint64_t b = addr_of(0, 2, c.config());
  c.access(a, false, 1);
  c.access(b, false, 2); // a is LRU
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(c.probe(a)); // probing must not refresh LRU
  }
  c.access(addr_of(0, 3, c.config()), false, 3);
  EXPECT_FALSE(c.probe(a)); // a was still LRU and got evicted
}

TEST(Cache, InvalidateReportsDirty) {
  Cache c(small_cfg());
  const uint64_t a = addr_of(3, 9, c.config());
  const Cache::AccessResult r = c.access(a, true, 1);
  EXPECT_TRUE(c.invalidate(r.set, r.way));
  EXPECT_FALSE(c.probe(a));
  EXPECT_EQ(c.stats().invalidation_writebacks, 1ull);
  // Second invalidation is a no-op.
  EXPECT_FALSE(c.invalidate(r.set, r.way));
}

TEST(Cache, InvalidWayIsPreferredVictim) {
  Cache c(small_cfg());
  const uint64_t a = addr_of(0, 1, c.config());
  const uint64_t b = addr_of(0, 2, c.config());
  const Cache::AccessResult ra = c.access(a, false, 1);
  c.access(b, false, 2);
  c.invalidate(ra.set, ra.way);
  const Cache::AccessResult rc = c.access(addr_of(0, 3, c.config()), false, 3);
  EXPECT_EQ(rc.way, ra.way); // fills the invalidated slot
  EXPECT_TRUE(c.probe(b));   // the valid line survives
}

TEST(Cache, LastAccessCycleTracked) {
  Cache c(small_cfg());
  const uint64_t a = addr_of(2, 5, c.config());
  const Cache::AccessResult r = c.access(a, false, 42);
  EXPECT_EQ(c.line(r.set, r.way).last_access_cycle, 42ull);
  c.access(a, false, 99);
  EXPECT_EQ(c.line(r.set, r.way).last_access_cycle, 99ull);
}

TEST(Cache, LineAddrRoundTrip) {
  Cache c(small_cfg());
  const uint64_t a = addr_of(3, 17, c.config());
  const Cache::AccessResult r = c.access(a, false, 1);
  EXPECT_EQ(c.line_addr(r.set, r.way), a);
}

TEST(Cache, MissRateAccounting) {
  Cache c(small_cfg());
  c.access(addr_of(0, 1, c.config()), false, 1);
  c.access(addr_of(0, 1, c.config()), false, 2);
  c.access(addr_of(0, 1, c.config()), true, 3);
  c.access(addr_of(1, 1, c.config()), true, 4);
  EXPECT_EQ(c.stats().accesses(), 4ull);
  EXPECT_EQ(c.stats().misses(), 2ull);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses(), 0ull);
}

TEST(Cache, Table2Geometries) {
  // The paper's caches must construct cleanly.
  const CacheConfig l1{.size_bytes = 64 * 1024, .assoc = 2, .line_bytes = 64,
                       .hit_latency = 2};
  const CacheConfig l2{.size_bytes = 2 * 1024 * 1024, .assoc = 2,
                       .line_bytes = 64, .hit_latency = 11};
  EXPECT_NO_THROW(Cache{l1});
  EXPECT_NO_THROW(Cache{l2});
}

} // namespace
} // namespace sim
