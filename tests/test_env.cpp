// The one environment-variable parser family every HLCC_* knob resolves
// through (harness/env.h).  The contract under test: the whole string
// must be the value, junk throws std::invalid_argument *naming the
// variable*, and an unset variable yields nullopt so the caller's
// default applies.  Before this family existed each knob had its own
// loop — HLCC_INSTRUCTIONS accepted "60000x" as 60000.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "harness/env.h"

namespace harness::env {
namespace {

TEST(Env, ParsePositiveU64AcceptsWholeStringIntegersOnly) {
  EXPECT_EQ(parse_positive_u64("HLCC_X", "1", "count"), 1u);
  EXPECT_EQ(parse_positive_u64("HLCC_X", "600000", "count"), 600000u);
  EXPECT_EQ(parse_positive_u64("HLCC_X", "18446744073709551615", "count"),
            ~0ull);
  for (const char* junk :
       {"", "0", "-3", "+4", "5x", "x5", " 4", "4 ", "1.5", "0x10",
        "18446744073709551616", "99999999999999999999999"}) {
    EXPECT_THROW(parse_positive_u64("HLCC_X", junk, "count"),
                 std::invalid_argument)
        << "text \"" << junk << "\"";
  }
}

TEST(Env, ParseErrorsNameTheOffendingVariable) {
  try {
    parse_positive_u64("HLCC_THREADS", "abc", "thread count");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("HLCC_THREADS"), std::string::npos) << msg;
    EXPECT_NE(msg.find("thread count"), std::string::npos) << msg;
    EXPECT_NE(msg.find("abc"), std::string::npos) << msg;
  }
  try {
    parse_positive_double("HLCC_CELL_TIMEOUT", "1.5s", "seconds");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("HLCC_CELL_TIMEOUT"),
              std::string::npos);
  }
}

TEST(Env, ParsePositiveDoubleAcceptsFractionsRejectsJunk) {
  EXPECT_DOUBLE_EQ(parse_positive_double("HLCC_X", "2.5", "seconds"), 2.5);
  EXPECT_DOUBLE_EQ(parse_positive_double("HLCC_X", "0.25", "seconds"), 0.25);
  EXPECT_DOUBLE_EQ(parse_positive_double("HLCC_X", "3", "seconds"), 3.0);
  for (const char* junk : {"", "0", "0.0", "-2", "-0.5", "1.5s", "abc",
                           " 1", "1 ", "nan", "inf"}) {
    EXPECT_THROW(parse_positive_double("HLCC_X", junk, "seconds"),
                 std::invalid_argument)
        << "text \"" << junk << "\"";
  }
}

TEST(Env, GetenvWrappersReturnNulloptWhenUnset) {
  ::unsetenv("HLCC_ENVTEST");
  EXPECT_FALSE(positive_u64("HLCC_ENVTEST", "count").has_value());
  EXPECT_FALSE(positive_double("HLCC_ENVTEST", "seconds").has_value());
  EXPECT_FALSE(flag01("HLCC_ENVTEST").has_value());

  ::setenv("HLCC_ENVTEST", "7", 1);
  EXPECT_EQ(positive_u64("HLCC_ENVTEST", "count").value(), 7u);
  EXPECT_DOUBLE_EQ(positive_double("HLCC_ENVTEST", "seconds").value(), 7.0);
  ::unsetenv("HLCC_ENVTEST");
}

TEST(Env, Flag01IsStrict) {
  ::setenv("HLCC_ENVTEST", "0", 1);
  EXPECT_EQ(flag01("HLCC_ENVTEST"), std::optional<bool>(false));
  ::setenv("HLCC_ENVTEST", "1", 1);
  EXPECT_EQ(flag01("HLCC_ENVTEST"), std::optional<bool>(true));
  for (const char* junk : {"", "2", "true", "false", "yes", "no", "01"}) {
    ::setenv("HLCC_ENVTEST", junk, 1);
    EXPECT_THROW(flag01("HLCC_ENVTEST"), std::invalid_argument)
        << "HLCC_ENVTEST=\"" << junk << "\"";
  }
  ::unsetenv("HLCC_ENVTEST");
}

} // namespace
} // namespace harness::env
