// Batched multi-config execution: one lockstep trace pass driving K
// decay configurations must be *bit-identical* to K scalar
// run_experiment calls — same cycles, same control events, same energy
// doubles — for any mix of intervals, techniques, policies and L2
// latencies that legally shares a stream.  Also covers the grid
// planner's fallback rules: non-batchable configs, stream groups of
// one, a faulting batch member, and the HLCC_BATCH=1 kill switch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/batched.h"
#include "harness/metrics.h"
#include "harness/sweep.h"

namespace harness {
namespace {

ExperimentConfig quick_config() {
  return ExperimentConfig::make().instructions(80'000).variation(false);
}

/// Full-payload bit identity: every deterministic field the schema-2
/// report serializes, with exact == on doubles (the batched path must
/// not perturb a single ulp).
void expect_payload_identical(const ExperimentResult& a,
                              const ExperimentResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.base_run.cycles, b.base_run.cycles);
  EXPECT_EQ(a.base_run.instructions, b.base_run.instructions);
  EXPECT_EQ(a.tech_run.cycles, b.tech_run.cycles);
  EXPECT_EQ(a.tech_run.instructions, b.tech_run.instructions);
  EXPECT_EQ(a.tech_run.loads, b.tech_run.loads);
  EXPECT_EQ(a.tech_run.stores, b.tech_run.stores);
  EXPECT_EQ(a.tech_run.branch.direction_mispredicts,
            b.tech_run.branch.direction_mispredicts);
  EXPECT_EQ(a.tech_run.branch.btb_misses, b.tech_run.branch.btb_misses);
  EXPECT_EQ(a.control.hits, b.control.hits);
  EXPECT_EQ(a.control.true_misses, b.control.true_misses);
  EXPECT_EQ(a.control.slow_hits, b.control.slow_hits);
  EXPECT_EQ(a.control.induced_misses, b.control.induced_misses);
  EXPECT_EQ(a.control.decays, b.control.decays);
  EXPECT_EQ(a.control.wakes, b.control.wakes);
  EXPECT_EQ(a.energy.baseline_leakage_j, b.energy.baseline_leakage_j);
  EXPECT_EQ(a.energy.technique_leakage_j, b.energy.technique_leakage_j);
  EXPECT_EQ(a.energy.extra_dynamic_j, b.energy.extra_dynamic_j);
  EXPECT_EQ(a.energy.gross_savings_j, b.energy.gross_savings_j);
  EXPECT_EQ(a.energy.net_savings_j, b.energy.net_savings_j);
  EXPECT_EQ(a.energy.net_savings_frac, b.energy.net_savings_frac);
  EXPECT_EQ(a.energy.perf_loss_frac, b.energy.perf_loss_frac);
  EXPECT_EQ(a.energy.turnoff_ratio, b.energy.turnoff_ratio);
  EXPECT_EQ(a.base_l1d_miss_rate, b.base_l1d_miss_rate);
}

TEST(Batched, SingleLaneBatchMatchesScalar) {
  const workload::BenchmarkProfile prof = workload::profile_by_name("gcc");
  const ExperimentConfig cfg = quick_config();
  clear_baseline_cache();
  const ExperimentResult scalar = run_experiment(prof, cfg);
  clear_baseline_cache();
  BatchedExperiment batch(prof, {cfg});
  const std::vector<ExperimentResult> results = batch.run();
  ASSERT_EQ(results.size(), 1u);
  expect_payload_identical(results[0], scalar);
}

TEST(Batched, MixedTechniqueLanesMatchScalarLaneForLane) {
  // The acceptance grid: drowsy and gated lanes, different intervals,
  // different per-lane L2 latencies — one trace pass, K scalar replays.
  const workload::BenchmarkProfile prof = workload::profile_by_name("mcf");
  std::vector<ExperimentConfig> cfgs;
  const std::vector<uint64_t> intervals = {512, 4096, 32768};
  const std::vector<unsigned> l2_lats = {5, 11, 17};
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    ExperimentConfig cfg = quick_config();
    cfg.decay_interval = intervals[i];
    cfg.l2_latency = l2_lats[i];
    cfg.technique = leakctl::TechniqueParams::drowsy();
    cfgs.push_back(cfg);
    cfg.technique = leakctl::TechniqueParams::gated_vss();
    cfgs.push_back(cfg);
  }
  clear_baseline_cache();
  BatchedExperiment batch(prof, cfgs);
  const std::vector<ExperimentResult> got = batch.run();
  ASSERT_EQ(got.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    clear_baseline_cache();
    const ExperimentResult want = run_experiment(prof, cfgs[i]);
    expect_payload_identical(got[i], want);
  }
}

TEST(Batched, RandomizedGridsMatchScalarAtEveryK) {
  // Property sweep: seeded-random grids of K in {1..8} lanes over the
  // paper's knobs.  Any divergence between the shared front end and a
  // lane's scalar history shows up as a cycle-count or event-count
  // mismatch here.
  std::mt19937 rng(20260807);
  const std::vector<uint64_t> intervals = {256, 1024, 4096, 16384, 65536};
  const std::vector<unsigned> l2_lats = {5, 8, 11, 17};
  const std::vector<const char*> names = {"gzip", "twolf", "parser"};
  for (unsigned k = 1; k <= 8; ++k) {
    const workload::BenchmarkProfile prof =
        workload::profile_by_name(names[rng() % names.size()]);
    std::vector<ExperimentConfig> cfgs;
    for (unsigned lane = 0; lane < k; ++lane) {
      ExperimentConfig cfg = quick_config();
      cfg.instructions = 50'000;
      cfg.decay_interval = intervals[rng() % intervals.size()];
      cfg.l2_latency = l2_lats[rng() % l2_lats.size()];
      cfg.technique = rng() % 2 == 0 ? leakctl::TechniqueParams::drowsy()
                                     : leakctl::TechniqueParams::gated_vss();
      cfg.policy = rng() % 2 == 0 ? leakctl::DecayPolicy::noaccess
                                  : leakctl::DecayPolicy::simple;
      cfgs.push_back(cfg);
    }
    clear_baseline_cache();
    BatchedExperiment batch(prof, cfgs);
    const std::vector<ExperimentResult> got = batch.run();
    ASSERT_EQ(got.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      clear_baseline_cache();
      const ExperimentResult want = run_experiment(prof, cfgs[i]);
      expect_payload_identical(got[i], want);
    }
  }
}

TEST(Batched, ConstructorRejectsIllegalBatches) {
  const workload::BenchmarkProfile prof = workload::profile_by_name("gcc");
  EXPECT_THROW(BatchedExperiment(prof, {}), std::invalid_argument);

  ExperimentConfig adaptive = quick_config();
  adaptive.adaptive = ExperimentConfig::AdaptiveScheme::feedback;
  EXPECT_FALSE(batchable(adaptive));
  EXPECT_THROW(BatchedExperiment(prof, {adaptive}), std::invalid_argument);

  ExperimentConfig faulty = quick_config();
  faulty.faults.enabled = true;
  EXPECT_FALSE(batchable(faulty));
  EXPECT_THROW(BatchedExperiment(prof, {faulty}), std::invalid_argument);

  // Multi-tenant interleaving: lanes would need the original (untagged)
  // addresses back, and coloring remaps per lane — scalar path only.
  ExperimentConfig tenants = quick_config();
  tenants.tenants.count = 2;
  tenants.tenants.co_benchmarks = {"mcf"};
  EXPECT_FALSE(batchable(tenants));
  EXPECT_THROW(BatchedExperiment(prof, {tenants}), std::invalid_argument);

  // Explicit hierarchies run the scalar path: the lockstep replica loop
  // only models the legacy controlled-L1 machine.  A levels list that
  // merely restates the flat fields is still legacy-shaped, hence
  // batchable; one with a controlled L2 is not.
  ExperimentConfig restated = quick_config();
  restated.levels = restated.legacy_levels();
  EXPECT_TRUE(batchable(restated));
  ExperimentConfig hier = quick_config();
  hier.levels = hier.legacy_levels();
  hier.levels[1].control =
      LevelControl{hier.technique, hier.policy, 65536};
  EXPECT_FALSE(batchable(hier));
  EXPECT_THROW(BatchedExperiment(prof, {hier}), std::invalid_argument);

  ExperimentConfig a = quick_config();
  ExperimentConfig b = quick_config();
  b.instructions = a.instructions * 2; // different stream length
  EXPECT_THROW(BatchedExperiment(prof, {a, b}), std::invalid_argument);
  b = quick_config();
  b.seed = a.seed + 1; // different stream
  EXPECT_THROW(BatchedExperiment(prof, {a, b}), std::invalid_argument);
}

TEST(Batched, StreamMismatchErrorsNameTheOffendingField) {
  // The whole batch simulates cfgs[0]'s stream; a lane that disagrees on
  // seed or instruction count must be rejected with an error naming the
  // field and both values, not silently run lane 0's stream.
  const workload::BenchmarkProfile prof = workload::profile_by_name("gcc");
  const ExperimentConfig a = quick_config();
  ExperimentConfig b = quick_config();
  b.seed = a.seed + 1;
  try {
    BatchedExperiment batch(prof, {a, b});
    FAIL() << "seed mismatch accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("seed mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(a.seed)), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(b.seed)), std::string::npos) << what;
  }
  b = quick_config();
  b.instructions = a.instructions * 2;
  try {
    BatchedExperiment batch(prof, {a, b});
    FAIL() << "instruction-count mismatch accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("instruction-count mismatch"), std::string::npos)
        << what;
    EXPECT_NE(what.find(std::to_string(b.instructions)), std::string::npos)
        << what;
  }
}

// --- grid planner ----------------------------------------------------

std::vector<CellResult<ExperimentResult>> run_grid(SweepOptions opts,
                                                   unsigned lanes) {
  SweepRunner runner(std::move(opts));
  for (unsigned i = 0; i < lanes; ++i) {
    ExperimentConfig cfg = quick_config();
    cfg.decay_interval = 1024u << i;
    runner.submit(workload::profile_by_name("vpr"), cfg);
  }
  return runner.run();
}

TEST(Batched, GridBatchedMatchesBatchDisabledBitIdentically) {
  ::unsetenv("HLCC_BATCH");
  clear_baseline_cache();
  const auto scalar = run_grid(SweepOptions{.threads = 2, .batch = 1}, 4);
  clear_baseline_cache();
  const auto batched = run_grid(SweepOptions{.threads = 2, .batch = 4}, 4);
  ASSERT_EQ(scalar.size(), batched.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_TRUE(scalar[i].ok());
    ASSERT_TRUE(batched[i].ok());
    expect_payload_identical(batched[i].value, scalar[i].value);
    // Execution metadata records which path ran.
    EXPECT_EQ(scalar[i].info.batch, 0u);
    EXPECT_EQ(batched[i].info.batch, 4u);
    EXPECT_EQ(batched[i].value.cell.batch, 4u);
  }
}

TEST(Batched, HlccBatchEnvDisablesBatching) {
  ::setenv("HLCC_BATCH", "1", 1);
  clear_baseline_cache();
  const auto rows = run_grid(SweepOptions{.threads = 2}, 3);
  ::unsetenv("HLCC_BATCH");
  for (const auto& row : rows) {
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row.info.batch, 0u);
  }
}

TEST(Batched, BatchLimitChopsGroupsAndLeavesNoSingletonUnits) {
  // 5 same-stream cells at batch=2 -> units of 2+2, remainder of 1 runs
  // scalar (a one-lane lockstep pass would only add overhead).
  ::unsetenv("HLCC_BATCH");
  clear_baseline_cache();
  const auto rows = run_grid(SweepOptions{.threads = 2, .batch = 2}, 5);
  ASSERT_EQ(rows.size(), 5u);
  std::size_t in_pairs = 0, scalar = 0;
  for (const auto& row : rows) {
    ASSERT_TRUE(row.ok());
    if (row.info.batch == 2u) {
      ++in_pairs;
    } else if (row.info.batch == 0u) {
      ++scalar;
    } else {
      FAIL() << "unexpected batch lane count " << row.info.batch;
    }
  }
  EXPECT_EQ(in_pairs, 4u);
  EXPECT_EQ(scalar, 1u);
}

TEST(Batched, NonBatchableConfigsTakeTheScalarPath) {
  ::unsetenv("HLCC_BATCH");
  SweepRunner runner(SweepOptions{.threads = 2});
  const workload::BenchmarkProfile prof = workload::profile_by_name("gap");
  ExperimentConfig plain = quick_config();
  runner.submit(prof, plain);
  plain.decay_interval = 8192;
  runner.submit(prof, plain);
  ExperimentConfig adaptive = quick_config();
  adaptive.adaptive = ExperimentConfig::AdaptiveScheme::amc;
  runner.submit(prof, adaptive);
  clear_baseline_cache();
  const auto rows = runner.run();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].info.batch, 2u); // the two plain cells pair up
  EXPECT_EQ(rows[1].info.batch, 2u);
  EXPECT_EQ(rows[2].info.batch, 0u); // adaptive: scalar path
  ASSERT_TRUE(rows[2].ok());
}

TEST(Batched, MidBatchFaultDemotesUnitWithoutPoisoningSiblings) {
  // One member of a would-be batch carries a config that fails
  // validation.  The unit fails as a whole, every member re-runs on the
  // scalar path, and only the broken cell reports an error — its
  // siblings' results are bit-identical to a clean scalar run.
  ::unsetenv("HLCC_BATCH");
  metrics::Registry& reg = metrics::Registry::global();
  const uint64_t fallbacks_before = reg.counter("sweep.batch_fallbacks");
  const workload::BenchmarkProfile prof = workload::profile_by_name("gcc");

  SweepRunner runner(SweepOptions{.threads = 2});
  ExperimentConfig good = quick_config();
  runner.submit(prof, good);
  ExperimentConfig broken = quick_config();
  broken.decay_interval = 3; // validate(): must be a multiple of 4
  runner.submit(prof, broken);
  ExperimentConfig good2 = quick_config();
  good2.decay_interval = 16384;
  runner.submit(prof, good2);

  clear_baseline_cache();
  const auto rows = runner.run();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_GE(reg.counter("sweep.batch_fallbacks") - fallbacks_before, 3u);

  ASSERT_TRUE(rows[0].ok()) << rows[0].error();
  ASSERT_TRUE(rows[2].ok()) << rows[2].error();
  EXPECT_EQ(rows[1].status(), CellStatus::failed);
  EXPECT_EQ(rows[1].info.error_kind, CellErrorKind::config_invalid);
  EXPECT_NE(rows[1].error().find("decay_interval"), std::string::npos);
  // Demoted members ran scalar.
  EXPECT_EQ(rows[0].info.batch, 0u);
  EXPECT_EQ(rows[2].info.batch, 0u);

  clear_baseline_cache();
  expect_payload_identical(rows[0].value, run_experiment(prof, good));
  clear_baseline_cache();
  expect_payload_identical(rows[2].value, run_experiment(prof, good2));
}

} // namespace
} // namespace harness
