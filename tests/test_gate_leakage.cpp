// Gate-tunnelling model and GIDL penalty (paper Sec. 3.2).
#include <gtest/gtest.h>

#include "hotleakage/gate_leakage.h"

namespace hotleakage {
namespace {

const TechParams& t70() { return tech_params(TechNode::nm70); }

TEST(GateLeak, CalibrationPoint) {
  // 40 nA/um at tox = 1.2 nm, Vdd = 0.9 V, 300 K (paper Sec. 3.2).
  const OperatingPoint op{.temperature_k = 300.0, .vdd = 0.9};
  EXPECT_NEAR(gate_current_density(t70(), op), 40e-9 / 1e-6, 1e-6);
}

TEST(GateLeak, ZeroAtThickOxideNodes) {
  const OperatingPoint op{.temperature_k = 300.0, .vdd = 2.0};
  EXPECT_DOUBLE_EQ(gate_current_density(tech_params(TechNode::nm180), op), 0.0);
  EXPECT_DOUBLE_EQ(gate_current(tech_params(TechNode::nm130), op), 0.0);
}

TEST(GateLeak, StrongToxDependence) {
  // Thinning the oxide by 0.1 nm should raise gate leakage substantially.
  const OperatingPoint op{.temperature_k = 300.0, .vdd = 0.9};
  const double nominal = gate_current_density(t70(), op);
  const double thinner =
      gate_current_density(t70(), op, {.tox = t70().tox - 0.1e-9});
  const double thicker =
      gate_current_density(t70(), op, {.tox = t70().tox + 0.1e-9});
  EXPECT_GT(thinner / nominal, 2.0);
  EXPECT_LT(thicker / nominal, 0.5);
}

TEST(GateLeak, StrongVddDependence) {
  const OperatingPoint lo{.temperature_k = 300.0, .vdd = 0.45};
  const OperatingPoint hi{.temperature_k = 300.0, .vdd = 0.9};
  const double ratio =
      gate_current_density(t70(), hi) / gate_current_density(t70(), lo);
  EXPECT_GT(ratio, 8.0); // ~(2)^3.5
}

TEST(GateLeak, WeakTemperatureDependence) {
  // Paper: "weakly dependent on the temperature".
  const OperatingPoint cold{.temperature_k = 300.0, .vdd = 0.9};
  const OperatingPoint hot{.temperature_k = 383.15, .vdd = 0.9};
  const double ratio =
      gate_current_density(t70(), hot) / gate_current_density(t70(), cold);
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.3);
}

TEST(GateLeak, ZeroVddZeroCurrent) {
  const OperatingPoint op{.temperature_k = 300.0, .vdd = 0.0};
  EXPECT_DOUBLE_EQ(gate_current_density(t70(), op), 0.0);
}

TEST(GateLeak, CurrentScalesWithWidth) {
  const OperatingPoint op{.temperature_k = 300.0, .vdd = 0.9};
  const double w1 = gate_current(t70(), op, {.width_m = 1e-6});
  const double w2 = gate_current(t70(), op, {.width_m = 2e-6});
  EXPECT_NEAR(w2 / w1, 2.0, 1e-9);
}

TEST(GateLeak, RejectsNegativeVdd) {
  EXPECT_THROW(
      gate_current_density(t70(), {.temperature_k = 300.0, .vdd = -0.5}),
      std::invalid_argument);
}

TEST(Gidl, UnityAtZeroBias) {
  EXPECT_DOUBLE_EQ(gidl_penalty_factor(t70(), 0.0), 1.0);
}

TEST(Gidl, GrowsWithBias) {
  double prev = 1.0;
  for (double vbb : {-0.2, -0.4, -0.6}) {
    const double f = gidl_penalty_factor(t70(), vbb);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(Gidl, WorseAtThinnerOxide) {
  // The paper drops RBB from the study because GIDL limits it at future
  // nodes: the penalty must grow as oxides thin.
  const double f70 = gidl_penalty_factor(t70(), -0.4);
  const double f180 = gidl_penalty_factor(tech_params(TechNode::nm180), -0.4);
  EXPECT_GT(f70, f180);
}

} // namespace
} // namespace hotleakage
