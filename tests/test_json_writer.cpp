// The JSON substrate of the result export: exact escape text, the
// NaN/Inf->null policy, number formatting, parser error reporting, and
// serialize -> parse -> compare round trips on randomized documents and
// randomized ControlStats (through the report layer's converters).
#include <cmath>
#include <limits>
#include <random>
#include <string_view>

#include <gtest/gtest.h>

#include "harness/json_writer.h"
#include "harness/report_json.h"

namespace {

using harness::json::Value;

TEST(JsonWriter, ScalarDump) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(nullptr).dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
  EXPECT_EQ(Value(0).dump(), "0");
  EXPECT_EQ(Value(-17).dump(), "-17");
}

TEST(JsonWriter, IntegralDoublesPrintWithoutDecimalPoint) {
  EXPECT_EQ(Value(4096.0).dump(), "4096");
  EXPECT_EQ(Value(-3.0).dump(), "-3");
  EXPECT_EQ(Value(uint64_t{1} << 52).dump(), "4503599627370496");
  // Beyond 2^53 the integer path is unsafe; any round-trippable form is
  // fine, but it must parse back to the same double.
  const double big = 1e300;
  EXPECT_EQ(Value::parse(Value(big).dump()).as_double(), big);
}

TEST(JsonWriter, FractionalRoundTrip) {
  for (const double d : {0.1, -2.5, 3.14159265358979, 1e-12, 6.02e23}) {
    EXPECT_EQ(Value::parse(Value(d).dump()).as_double(), d);
  }
}

TEST(JsonWriter, NanAndInfSerializeAsNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Value(-std::numeric_limits<double>::infinity()).dump(), "null");
  // ...including inside containers.
  Value obj = Value::object();
  obj["x"] = std::nan("");
  EXPECT_EQ(obj.dump(), "{\"x\":null}");
}

TEST(JsonWriter, EscapeHandling) {
  EXPECT_EQ(Value("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Value("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Value("tab\there").dump(), "\"tab\\there\"");
  EXPECT_EQ(Value("line\nfeed").dump(), "\"line\\nfeed\"");
  EXPECT_EQ(Value(std::string("nul\0byte", 8)).dump(), "\"nul\\u0000byte\"");
  EXPECT_EQ(Value("\x01\x1f").dump(), "\"\\u0001\\u001f\"");
  // Escaped text must parse back to the original bytes.
  const std::string nasty("quote\" back\\ tab\t nl\n nul\0 ctl\x02 end", 33);
  EXPECT_EQ(Value::parse(Value(nasty).dump()).as_string(), nasty);
}

TEST(JsonWriter, ParseUnicodeEscapes) {
  EXPECT_EQ(Value::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Value::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");     // é
  EXPECT_EQ(Value::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac"); // €
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Value::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonWriter, ParseErrorsCarryByteOffset) {
  EXPECT_THROW(Value::parse(""), std::runtime_error);
  EXPECT_THROW(Value::parse("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(Value::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Value::parse("\"bad \\q escape\""), std::runtime_error);
  EXPECT_THROW(Value::parse("[1, 2] trailing"), std::runtime_error);
  EXPECT_THROW(Value::parse("{1: 2}"), std::runtime_error);
  try {
    Value::parse("[1, 2, oops]");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

TEST(JsonWriter, ObjectPreservesInsertionOrder) {
  Value v = Value::object();
  v["zebra"] = 1;
  v["apple"] = 2;
  v["mango"] = 3;
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  const Value back = Value::parse(v.dump());
  EXPECT_EQ(back.as_object()[0].first, "zebra");
  EXPECT_EQ(back.as_object()[2].first, "mango");
}

TEST(JsonWriter, PrettyPrint) {
  Value v = Value::object();
  v["a"] = Value::array();
  v["a"].push_back(1);
  v["a"].push_back(2);
  EXPECT_EQ(v.dump(2), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
}

// --- randomized round trips ---

Value random_value(std::mt19937_64& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth > 0 ? 5 : 3);
  switch (kind(rng)) {
  case 0:
    return Value(nullptr);
  case 1:
    return Value(std::bernoulli_distribution(0.5)(rng));
  case 2: {
    if (std::bernoulli_distribution(0.5)(rng)) {
      return Value(std::uniform_int_distribution<long long>(-1'000'000'000,
                                                            1'000'000'000)(rng));
    }
    return Value(std::uniform_real_distribution<double>(-1e6, 1e6)(rng));
  }
  case 3: {
    std::string s;
    const std::size_t len = std::uniform_int_distribution<std::size_t>(0, 24)(rng);
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(
          std::uniform_int_distribution<int>(0, 127)(rng)));
    }
    return Value(std::move(s));
  }
  case 4: {
    Value arr = Value::array();
    const std::size_t len = std::uniform_int_distribution<std::size_t>(0, 4)(rng);
    for (std::size_t i = 0; i < len; ++i) {
      arr.push_back(random_value(rng, depth - 1));
    }
    return arr;
  }
  default: {
    Value obj = Value::object();
    const std::size_t len = std::uniform_int_distribution<std::size_t>(0, 4)(rng);
    for (std::size_t i = 0; i < len; ++i) {
      obj["k" + std::to_string(i)] = random_value(rng, depth - 1);
    }
    return obj;
  }
  }
}

// Structural equality via the canonical dump: insertion order is
// preserved and number formatting is deterministic, so equal documents
// dump to equal text.
TEST(JsonWriter, RandomizedDocumentRoundTrip) {
  std::mt19937_64 rng(0xC0FFEEULL);
  for (int i = 0; i < 200; ++i) {
    const Value v = random_value(rng, 3);
    const std::string text = v.dump();
    const Value back = Value::parse(text);
    EXPECT_EQ(back.dump(), text) << "iteration " << i;
    // Pretty-printed form parses to the same document too.
    EXPECT_EQ(Value::parse(v.dump(2)).dump(), text) << "iteration " << i;
  }
}

TEST(JsonWriter, RandomizedControlStatsRoundTrip) {
  std::mt19937_64 rng(20260806ULL);
  std::uniform_int_distribution<unsigned long long> dist(
      0, 1ull << 48); // well inside the exact-double range
  for (int i = 0; i < 100; ++i) {
    leakctl::ControlStats stats;
    stats.for_each_field(
        [&](const char*, unsigned long long& v) { v = dist(rng); });
    const Value doc = Value::parse(harness::to_json(stats).dump());
    const leakctl::ControlStats back = harness::control_stats_from_json(doc);
    stats.for_each_field([&](const char* name, unsigned long long& v) {
      unsigned long long got = 0;
      back.for_each_field([&](const char* n, const unsigned long long& bv) {
        if (std::string_view(n) == name) {
          got = bv;
        }
      });
      EXPECT_EQ(got, v) << "field " << name << " iteration " << i;
    });
    // Derived fields ride along in the serialized form.
    EXPECT_DOUBLE_EQ(doc.at("turnoff_ratio").as_double(),
                     stats.turnoff_ratio());
    EXPECT_EQ(doc.at("corruptions").as_double(),
              static_cast<double>(stats.corruptions()));
  }
}

TEST(JsonWriter, ControlStatsFromJsonMissingFieldThrows) {
  Value doc = harness::to_json(leakctl::ControlStats{});
  Value broken = Value::object();
  for (const auto& [k, v] : doc.as_object()) {
    if (k != "hits") {
      broken[k] = v;
    }
  }
  EXPECT_THROW(harness::control_stats_from_json(broken), std::runtime_error);
}

} // namespace
