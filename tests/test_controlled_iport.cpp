// Leakage-controlled L1 I-cache (extension).
#include <gtest/gtest.h>

#include "leakctl/controlled_iport.h"
#include "sim/processor.h"
#include "workload/generator.h"

namespace leakctl {
namespace {

struct Fixture {
  explicit Fixture(TechniqueParams tech = TechniqueParams::drowsy()) {
    pcfg = sim::ProcessorConfig::table2(11);
    ccfg.cache = pcfg.l1i; // 64 KB, 2-way, 1-cycle
    ccfg.technique = tech;
    ccfg.decay_interval = 4096;
    mem = std::make_unique<sim::MemoryBackend>(pcfg.memory_latency, nullptr);
    l2 = std::make_unique<sim::CacheLevel>(pcfg.l2, *mem, nullptr);
    iport = std::make_unique<ControlledFetchPort>(ccfg, *l2, nullptr);
  }
  sim::ProcessorConfig pcfg;
  ControlledCacheConfig ccfg;
  std::unique_ptr<sim::MemoryBackend> mem;
  std::unique_ptr<sim::CacheLevel> l2;
  std::unique_ptr<ControlledFetchPort> iport;
};

TEST(ControlledIport, HitAfterFill) {
  Fixture f;
  f.iport->fetch(0x400000, 10);
  EXPECT_EQ(f.iport->fetch(0x400000, 20), 1u);
  EXPECT_EQ(f.iport->stats().hits, 1ull);
}

TEST(ControlledIport, DrowsySlowFetch) {
  Fixture f(TechniqueParams::drowsy());
  f.iport->fetch(0x400000, 10);
  // Idle past the interval: the line is drowsy, fetch pays the wake.
  const unsigned lat = f.iport->fetch(0x400000, 10'000);
  EXPECT_EQ(lat, 1u + 3u);
  EXPECT_EQ(f.iport->stats().slow_hits, 1ull);
}

TEST(ControlledIport, GatedInducedFetchGoesToL2) {
  Fixture f(TechniqueParams::gated_vss());
  f.iport->fetch(0x400000, 10);
  const unsigned lat = f.iport->fetch(0x400000, 10'000);
  EXPECT_EQ(lat, 1u + 11u); // refetch from L2
  EXPECT_EQ(f.iport->stats().induced_misses, 1ull);
  // Instruction lines are clean: decay must never write back.
  EXPECT_EQ(f.iport->stats().decay_writebacks, 0ull);
}

TEST(ControlledIport, DrivesTheCoreEndToEnd) {
  // Run the full core with BOTH sides leakage-controlled.
  Fixture f(TechniqueParams::drowsy());
  sim::Processor proc(f.pcfg);
  ControlledCacheConfig dcfg;
  dcfg.cache = f.pcfg.l1d;
  dcfg.technique = TechniqueParams::drowsy();
  ControlledCache dport(dcfg, proc.l2(), &proc.activity());
  ControlledFetchPort iport(f.ccfg, proc.l2(), &proc.activity());

  workload::Generator gen(workload::profile_by_name("gcc"), 1);
  const sim::RunStats st = proc.run(gen, dport, iport, 100'000);
  dport.finalize(st.cycles);
  iport.finalize(st.cycles);

  EXPECT_EQ(st.instructions, 100'000ull);
  EXPECT_GT(iport.stats().accesses(), 0ull);
  EXPECT_GT(iport.stats().turnoff_ratio(), 0.0);
  EXPECT_GT(dport.stats().turnoff_ratio(), 0.0);
}

TEST(ControlledIport, ICacheDecaySlowsLargeCodeMoreThanSmall) {
  // gcc (large code, I-cache pressure) should see more standby fetch
  // events than mcf (tiny hot loop).
  auto standby_events = [](const char* bench) {
    Fixture f(TechniqueParams::drowsy());
    sim::Processor proc(f.pcfg);
    sim::BaselineDataPort dport(f.pcfg.l1d, proc.l2(), nullptr);
    ControlledFetchPort iport(f.ccfg, proc.l2(), nullptr);
    workload::Generator gen(workload::profile_by_name(bench), 1);
    const sim::RunStats st = proc.run(gen, dport, iport, 150'000);
    iport.finalize(st.cycles);
    return iport.stats().slow_hits + iport.stats().induced_misses;
  };
  EXPECT_GT(standby_events("gcc"), standby_events("mcf"));
}

} // namespace
} // namespace leakctl
