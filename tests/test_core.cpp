// Out-of-order core timing model: bandwidth, dependences, window limits,
// memory latency exposure, and ILP hiding of induced-miss-like latencies.
#include <gtest/gtest.h>

#include <vector>

#include "sim/core.h"
#include "sim/processor.h"

namespace sim {
namespace {

/// TraceSource over a fixed vector.
class VectorTrace final : public TraceSource {
public:
  explicit VectorTrace(std::vector<MicroOp> ops) : ops_(std::move(ops)) {}
  bool next(MicroOp& op) override {
    if (i_ >= ops_.size()) return false;
    op = ops_[i_++];
    return true;
  }

private:
  std::vector<MicroOp> ops_;
  std::size_t i_ = 0;
};

/// DataPort with a fixed latency (no cache behaviour).
class FixedLatencyPort final : public DataPort {
public:
  explicit FixedLatencyPort(unsigned latency) : latency_(latency) {}
  unsigned access(uint64_t, bool, uint64_t) override { return latency_; }

private:
  unsigned latency_;
};

MicroOp alu(uint16_t dep1 = 0, uint16_t dep2 = 0) {
  MicroOp op;
  op.op = OpClass::int_alu;
  op.pc = 0x400000;
  op.src1_dist = dep1;
  op.src2_dist = dep2;
  return op;
}

MicroOp load(uint64_t addr, uint16_t dep1 = 0) {
  MicroOp op;
  op.op = OpClass::load;
  op.pc = 0x400000;
  op.mem_addr = addr;
  op.src1_dist = dep1;
  return op;
}

RunStats run_ops(std::vector<MicroOp> ops, unsigned dport_latency = 2,
                 CoreConfig cfg = {}) {
  ProcessorConfig pcfg = ProcessorConfig::table2();
  pcfg.core = cfg;
  Processor proc(pcfg);
  FixedLatencyPort dport(dport_latency);
  const uint64_t limit = ops.size() + 1;
  VectorTrace trace(std::move(ops));
  return proc.run(trace, dport, limit);
}

TEST(Core, IndependentOpsReachIssueWidth) {
  // 4000 independent ALU ops on a 4-wide machine: IPC should approach 4.
  std::vector<MicroOp> ops(4000, alu());
  const RunStats s = run_ops(ops);
  EXPECT_EQ(s.instructions, 4000ull);
  EXPECT_GT(s.ipc(), 2.5);
  EXPECT_LE(s.ipc(), 4.0 + 1e-9);
}

TEST(Core, SerialChainBoundsIpcToOne) {
  // Every op depends on its predecessor: IPC <= 1.
  std::vector<MicroOp> ops(4000, alu(1));
  const RunStats s = run_ops(ops);
  EXPECT_LT(s.ipc(), 1.05);
  EXPECT_GT(s.ipc(), 0.5);
}

TEST(Core, DivideUnitSerializes) {
  // Unpipelined divide: back-to-back divides cost ~latency each.
  std::vector<MicroOp> ops;
  for (int i = 0; i < 200; ++i) {
    MicroOp op = alu();
    op.op = OpClass::int_div;
    ops.push_back(op);
  }
  const RunStats s = run_ops(ops);
  EXPECT_GT(static_cast<double>(s.cycles), 200.0 * 15.0);
}

TEST(Core, LoadLatencyExposedThroughDependents) {
  // Serial load-use chains see the full memory latency.
  std::vector<MicroOp> slow_ops;
  std::vector<MicroOp> fast_ops;
  for (int i = 0; i < 1000; ++i) {
    slow_ops.push_back(load(0x1000 + 64 * i, 1));
    fast_ops.push_back(load(0x1000 + 64 * i, 1));
  }
  const RunStats fast = run_ops(fast_ops, 2);
  const RunStats slow = run_ops(slow_ops, 13);
  EXPECT_GT(static_cast<double>(slow.cycles),
            1.5 * static_cast<double>(fast.cycles));
}

TEST(Core, IlpHidesLatencyForIndependentLoads) {
  // Independent loads: higher latency must cost far less than the serial
  // case — the mechanism that lets gated-Vss tolerate induced misses
  // (paper Sec. 5.1).
  std::vector<MicroOp> ops;
  for (int i = 0; i < 2000; ++i) {
    ops.push_back(load(0x1000 + 64 * i)); // no deps
  }
  const RunStats fast = run_ops(ops, 2);
  const RunStats slow = run_ops(ops, 13);
  const double slowdown = static_cast<double>(slow.cycles) /
                          static_cast<double>(fast.cycles);
  EXPECT_LT(slowdown, 1.3); // mostly hidden
}

TEST(Core, WindowLimitsMemoryParallelism) {
  // With a tiny RUU, long-latency loads stall dispatch and the same
  // latency costs much more.
  CoreConfig tiny;
  tiny.ruu_size = 8;
  tiny.lsq_size = 4;
  std::vector<MicroOp> ops;
  for (int i = 0; i < 2000; ++i) {
    ops.push_back(load(0x1000 + 64 * i));
  }
  const RunStats big = run_ops(ops, 50);
  const RunStats small = run_ops(ops, 50, tiny);
  EXPECT_GT(static_cast<double>(small.cycles),
            1.5 * static_cast<double>(big.cycles));
}

TEST(Core, MispredictsCostCycles) {
  // Same instruction count, unpredictable branch directions vs none.
  std::vector<MicroOp> plain(3000, alu());
  std::vector<MicroOp> branchy;
  uint64_t x = 12345;
  for (int i = 0; i < 3000; ++i) {
    if (i % 5 == 0) {
      MicroOp b = alu();
      b.op = OpClass::branch;
      x ^= x << 13; x ^= x >> 7; x ^= x << 17;
      b.taken = (x & 1) != 0;
      b.target = 0x400040;
      branchy.push_back(b);
    } else {
      branchy.push_back(alu());
    }
  }
  const RunStats a = run_ops(plain);
  const RunStats b = run_ops(branchy);
  EXPECT_GT(b.cycles, a.cycles);
  EXPECT_GT(b.branch.branches, 0ull);
  EXPECT_GT(b.branch.mispredict_rate(), 0.2);
}

TEST(Core, CountsLoadsAndStores) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 10; ++i) ops.push_back(load(0x1000));
  MicroOp st;
  st.op = OpClass::store;
  st.mem_addr = 0x2000;
  for (int i = 0; i < 7; ++i) ops.push_back(st);
  const RunStats s = run_ops(ops);
  EXPECT_EQ(s.loads, 10ull);
  EXPECT_EQ(s.stores, 7ull);
}

TEST(Core, EmptyTrace) {
  std::vector<MicroOp> ops;
  const RunStats s = run_ops(ops);
  EXPECT_EQ(s.instructions, 0ull);
  EXPECT_EQ(s.cycles, 0ull);
}

TEST(Core, MaxInstructionLimitRespected) {
  ProcessorConfig pcfg = ProcessorConfig::table2();
  Processor proc(pcfg);
  FixedLatencyPort dport(2);
  std::vector<MicroOp> ops(1000, alu());
  VectorTrace trace(ops);
  const RunStats s = proc.run(trace, dport, 300);
  EXPECT_EQ(s.instructions, 300ull);
}

TEST(Core, CommitIsMonotone) {
  // Cycles must grow with instruction count for the same op pattern.
  const RunStats s1 = run_ops(std::vector<MicroOp>(1000, alu(2)));
  const RunStats s2 = run_ops(std::vector<MicroOp>(2000, alu(2)));
  EXPECT_GT(s2.cycles, s1.cycles);
}

} // namespace
} // namespace sim
