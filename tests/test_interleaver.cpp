// Deterministic multi-programmed interleaving (workload::Interleaver).
//
// The multi-tenant differential harness leans on three properties pinned
// here: a single-stream Interleaver is a transparent wrapper around its
// Generator (bit-identical ops, no switches), the round-robin schedule
// and tenant address tags are exact, and the merged stream is a pure
// function of (streams, quantum).
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/tenant.h"
#include "workload/interleaver.h"

namespace workload {
namespace {

void expect_same_op(const sim::MicroOp& a, const sim::MicroOp& b) {
  ASSERT_EQ(a.pc, b.pc);
  ASSERT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
  ASSERT_EQ(a.mem_addr, b.mem_addr);
  ASSERT_EQ(a.target, b.target);
  ASSERT_EQ(a.taken, b.taken);
}

TEST(Interleaver, SingleStreamForwardsGeneratorBitIdentically) {
  // Tenant 0's tag is zero, so N=1 must be indistinguishable from the
  // plain Generator — the anchor of the N=1 bit-identity property.
  const BenchmarkProfile prof = profile_by_name("gcc");
  Interleaver il({{prof, 42, 0}}, /*quantum=*/100);
  Generator ref(prof, 42);
  sim::MicroOp a, b;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(il.next(a));
    ASSERT_TRUE(ref.next(b));
    expect_same_op(a, b);
  }
  EXPECT_EQ(il.switches(), 0u);
}

TEST(Interleaver, RoundRobinScheduleAndTenantTags) {
  // Slot i runs ops [i*q, (i+1)*q) of each round; every op carries its
  // slot's tenant in the high address bits.
  const uint64_t q = 100;
  Interleaver il({{profile_by_name("gcc"), 1, 0},
                  {profile_by_name("mcf"), 2, 1},
                  {profile_by_name("gzip"), 3, 2}},
                 q);
  sim::MicroOp op;
  for (uint64_t i = 0; i < 30 * q; ++i) {
    ASSERT_TRUE(il.next(op));
    const unsigned slot = static_cast<unsigned>((i / q) % 3);
    ASSERT_EQ(sim::tenant_of(op.pc), slot) << "op " << i;
    if (sim::is_mem(op.op)) {
      ASSERT_EQ(sim::tenant_of(op.mem_addr), slot) << "op " << i;
    } else {
      ASSERT_EQ(op.mem_addr, 0ull) << "op " << i;
    }
    if (op.op == sim::OpClass::branch && op.taken) {
      ASSERT_EQ(sim::tenant_of(op.target), slot) << "op " << i;
    }
  }
  // 30 quanta emitted; the boundary after the last one only fires on the
  // next call, so 29 switches have happened.
  EXPECT_EQ(il.switches(), 29u);
}

TEST(Interleaver, SlotsAdvanceTheirOwnGeneratorsIndependently) {
  // Strip the tags and each slot's subsequence must equal its private
  // Generator run in isolation — interleaving never perturbs a stream.
  const uint64_t q = 64;
  Interleaver il({{profile_by_name("twolf"), 7, 0},
                  {profile_by_name("vortex"), 8, 1}},
                 q);
  Generator ref0(profile_by_name("twolf"), 7);
  Generator ref1(profile_by_name("vortex"), 8);
  sim::MicroOp got, want;
  for (uint64_t i = 0; i < 40 * q; ++i) {
    ASSERT_TRUE(il.next(got));
    Generator& ref = ((i / q) % 2 == 0) ? ref0 : ref1;
    ASSERT_TRUE(ref.next(want));
    const uint64_t tag = ((i / q) % 2 == 0) ? 0 : sim::tenant_bits(1);
    ASSERT_EQ(got.pc, want.pc | tag);
    ASSERT_EQ(static_cast<int>(got.op), static_cast<int>(want.op));
    ASSERT_EQ(got.mem_addr,
              sim::is_mem(want.op) ? (want.mem_addr | tag) : want.mem_addr);
    ASSERT_EQ(got.taken, want.taken);
  }
}

TEST(Interleaver, Deterministic) {
  const std::vector<TenantStream> streams = {{profile_by_name("gap"), 5, 0},
                                             {profile_by_name("vpr"), 6, 1}};
  Interleaver a(streams, 97);
  Interleaver b(streams, 97);
  sim::MicroOp oa, ob;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(a.next(oa));
    ASSERT_TRUE(b.next(ob));
    expect_same_op(oa, ob);
  }
  EXPECT_EQ(a.switches(), b.switches());
}

TEST(Interleaver, QuantumBeyondTraceNeverSwitches) {
  Interleaver il({{profile_by_name("gcc"), 1, 0},
                  {profile_by_name("mcf"), 2, 1}},
                 /*quantum=*/1u << 30);
  sim::MicroOp op;
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(il.next(op));
    ASSERT_EQ(sim::tenant_of(op.pc), 0u);
  }
  EXPECT_EQ(il.switches(), 0u);
}

TEST(Interleaver, ConstructorRejectsIllegalStreamLists) {
  const BenchmarkProfile prof = profile_by_name("gcc");
  EXPECT_THROW(Interleaver({}, 100), std::invalid_argument);
  EXPECT_THROW(Interleaver({{prof, 1, 0}}, 0), std::invalid_argument);
  EXPECT_THROW(Interleaver({{prof, 1, sim::kMaxTenants}}, 100),
               std::invalid_argument);
  EXPECT_THROW(Interleaver({{prof, 1, 2}, {prof, 2, 2}}, 100),
               std::invalid_argument);
}

} // namespace
} // namespace workload
