// Branch-predictor decay extension (Hu et al. style).
#include <gtest/gtest.h>

#include "leakctl/predictor_decay.h"

namespace leakctl {
namespace {

TEST(RowDomain, IdleRowsDecayOnce) {
  RowDomain d(4, 4096);
  d.advance(100'000);
  d.finalize(100'000);
  EXPECT_EQ(d.decays(), 4ull);
  EXPECT_EQ(d.wakes(), 0ull);
  EXPECT_GT(d.standby_cycles(), d.active_cycles());
}

TEST(RowDomain, TouchReportsLostState) {
  RowDomain d(2, 4096);
  EXPECT_FALSE(d.touch(0, 100)); // awake: nothing lost
  EXPECT_TRUE(d.touch(0, 50'000)); // decayed in between
  EXPECT_FALSE(d.touch(0, 50'010)); // just woken
  EXPECT_EQ(d.wakes(), 1ull);
}

TEST(RowDomain, HotRowStaysUp) {
  RowDomain d(1, 4096);
  for (uint64_t c = 0; c < 100'000; c += 500) {
    EXPECT_FALSE(d.touch(0, c));
  }
  d.finalize(100'000);
  EXPECT_EQ(d.decays(), 0ull);
  EXPECT_EQ(d.standby_cycles(), 0ull);
}

TEST(PredictorDecay, LearnsLikePlainWhenHot) {
  // A continuously-executed branch keeps its rows awake: accuracy matches
  // the plain predictor.
  PredictorDecayConfig cfg;
  DecayedPredictor decayed(cfg);
  sim::HybridPredictor plain;
  for (int i = 0; i < 3000; ++i) {
    plain.update(0x400100, true);
    decayed.update(0x400100, true, static_cast<uint64_t>(i) * 2);
  }
  EXPECT_EQ(decayed.stats().direction_mispredicts,
            plain.stats().direction_mispredicts);
}

TEST(PredictorDecay, LosesStateAcrossLongIdle) {
  PredictorDecayConfig cfg;
  cfg.decay_interval = 8192;
  DecayedPredictor decayed(cfg);
  // Train a strongly-taken branch, go idle far beyond the interval, then
  // return: the row was reset, so the first predictions after wake use the
  // power-on counters.
  uint64_t cycle = 0;
  for (int i = 0; i < 200; ++i) {
    decayed.update(0x400100, true, cycle);
    cycle += 10;
  }
  const unsigned long long wrong_before =
      decayed.stats().direction_mispredicts;
  cycle += 200'000; // rows decay
  // A not-taken burst: a *trained* predictor would mispredict these; a
  // reset one starts at weakly-taken and adapts after one mistake.
  for (int i = 0; i < 4; ++i) {
    decayed.update(0x400100, false, cycle);
    cycle += 10;
  }
  const unsigned long long wrong =
      decayed.stats().direction_mispredicts - wrong_before;
  EXPECT_GE(decayed.rows_reactivated(), 1ull);
  EXPECT_LE(wrong, 2ull); // reset, not fighting saturated-taken counters
}

TEST(PredictorDecay, TurnoffPositiveForSparseBranches) {
  PredictorDecayConfig cfg;
  cfg.decay_interval = 4096;
  DecayedPredictor decayed(cfg);
  // One hot branch: every other row of the 4K-entry tables stays idle.
  uint64_t cycle = 0;
  for (int i = 0; i < 2000; ++i) {
    decayed.update(0x400100, i % 3 != 0, cycle);
    cycle += 100;
  }
  decayed.finalize(cycle);
  EXPECT_GT(decayed.turnoff_ratio(), 0.8);
}

TEST(PredictorDecay, ExperimentEndToEnd) {
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70,
                                 hotleakage::VariationConfig{.enabled = false});
  PredictorDecayConfig cfg;
  const PredictorDecayResult r = run_predictor_decay_experiment(
      workload::profile_by_name("gcc"), cfg, model, 150'000, 2.0);
  EXPECT_GT(r.plain_mispredict_rate, 0.0);
  EXPECT_GT(r.decayed_mispredict_rate, 0.0);
  // Decay may cost a little accuracy, never a catastrophic amount.
  EXPECT_LT(r.decayed_mispredict_rate, r.plain_mispredict_rate + 0.05);
  EXPECT_GT(r.turnoff_ratio, 0.0);
  EXPECT_LT(r.turnoff_ratio, 1.0);
  EXPECT_GT(r.gross_leakage_savings, 0.0);
  EXPECT_LE(r.gross_leakage_savings, r.turnoff_ratio);
}

TEST(PredictorDecay, LongerIntervalLessTurnoffFewerExtraMispredicts) {
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70,
                                 hotleakage::VariationConfig{.enabled = false});
  PredictorDecayConfig short_cfg;
  short_cfg.decay_interval = 8192;
  PredictorDecayConfig long_cfg;
  long_cfg.decay_interval = 131072;
  const PredictorDecayResult s = run_predictor_decay_experiment(
      workload::profile_by_name("twolf"), short_cfg, model, 150'000, 2.0);
  const PredictorDecayResult l = run_predictor_decay_experiment(
      workload::profile_by_name("twolf"), long_cfg, model, 150'000, 2.0);
  EXPECT_GT(s.turnoff_ratio, l.turnoff_ratio);
  EXPECT_GE(s.decayed_mispredict_rate + 1e-9, l.decayed_mispredict_rate);
}

} // namespace
} // namespace leakctl
