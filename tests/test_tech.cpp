// Technology-table invariants and the paper's stated constants.
#include <gtest/gtest.h>

#include "hotleakage/tech.h"

namespace hotleakage {
namespace {

TEST(Tech, AllNodesHaveTables) {
  for (TechNode node : kAllNodes) {
    const TechParams& t = tech_params(node);
    EXPECT_EQ(t.node, node);
  }
}

TEST(Tech, PaperVdd0PerNode) {
  // Paper Sec. 3.1.1: Vdd0 = 2.0 / 1.5 / 1.2 / 1.0 V.
  EXPECT_DOUBLE_EQ(tech_params(TechNode::nm180).vdd0, 2.0);
  EXPECT_DOUBLE_EQ(tech_params(TechNode::nm130).vdd0, 1.5);
  EXPECT_DOUBLE_EQ(tech_params(TechNode::nm100).vdd0, 1.2);
  EXPECT_DOUBLE_EQ(tech_params(TechNode::nm70).vdd0, 1.0);
}

TEST(Tech, Paper70nmThresholds) {
  // Paper Sec. 2.3: 0.190 V N-type, 0.213 V P-type at 70 nm.
  const TechParams& t = tech_params(TechNode::nm70);
  EXPECT_DOUBLE_EQ(t.nmos.vth0, 0.190);
  EXPECT_DOUBLE_EQ(t.pmos.vth0, 0.213);
}

TEST(Tech, Paper70nmOperatingPoint) {
  // Paper Sec. 4.1: 0.9 V and 5600 MHz at 70 nm.
  const TechParams& t = tech_params(TechNode::nm70);
  EXPECT_DOUBLE_EQ(t.vdd_nominal, 0.9);
  EXPECT_DOUBLE_EQ(t.freq_hz, 5.6e9);
}

TEST(Tech, PaperVariationSigmas) {
  // Paper Sec. 2.3 (from Nassif): L 47 %, tox 16 %, Vdd 10 %, Vth 13 %.
  const VariationSigmas& s = tech_params(TechNode::nm70).sigmas;
  EXPECT_DOUBLE_EQ(s.length3, 0.47);
  EXPECT_DOUBLE_EQ(s.tox3, 0.16);
  EXPECT_DOUBLE_EQ(s.vdd3, 0.10);
  EXPECT_DOUBLE_EQ(s.vth3, 0.13);
}

TEST(Tech, ScalingMonotonicity) {
  // Feature size, oxide, and thresholds shrink with newer nodes.
  const TechParams* prev = nullptr;
  for (TechNode node : {TechNode::nm180, TechNode::nm130, TechNode::nm100,
                        TechNode::nm70}) {
    const TechParams& t = tech_params(node);
    if (prev != nullptr) {
      EXPECT_LT(t.lgate, prev->lgate);
      EXPECT_LT(t.tox, prev->tox);
      EXPECT_LT(t.nmos.vth0, prev->nmos.vth0);
      EXPECT_LT(t.vdd0, prev->vdd0);
      EXPECT_GT(t.freq_hz, prev->freq_hz);
      // Short-channel control worsens: stronger DIBL at smaller nodes.
      EXPECT_GT(t.nmos.dibl_b, prev->nmos.dibl_b);
    }
    prev = &t;
  }
}

TEST(Tech, GateLeakageOnlyAtSmallNodes) {
  EXPECT_EQ(tech_params(TechNode::nm180).gate_leak_density, 0.0);
  EXPECT_EQ(tech_params(TechNode::nm130).gate_leak_density, 0.0);
  EXPECT_GT(tech_params(TechNode::nm100).gate_leak_density, 0.0);
  EXPECT_GT(tech_params(TechNode::nm70).gate_leak_density, 0.0);
}

TEST(Tech, ThermalVoltage) {
  // kT/q ~ 25.85 mV at 300 K, scales linearly.
  EXPECT_NEAR(thermal_voltage(300.0), 0.02585, 1e-4);
  EXPECT_NEAR(thermal_voltage(600.0) / thermal_voltage(300.0), 2.0, 1e-12);
}

TEST(Tech, VthDropsWithTemperature) {
  const TechParams& t = tech_params(TechNode::nm70);
  const double v300 = vth_at_temperature(t.nmos, 300.0);
  const double v383 = vth_at_temperature(t.nmos, 383.15);
  EXPECT_DOUBLE_EQ(v300, t.nmos.vth0);
  EXPECT_LT(v383, v300);
  EXPECT_NEAR(v300 - v383, t.nmos.vth_tc * 83.15, 1e-9);
}

TEST(Tech, VthFloorsAtExtremeTemperature) {
  const TechParams& t = tech_params(TechNode::nm70);
  EXPECT_GT(vth_at_temperature(t.nmos, 2000.0), 0.0);
}

TEST(Tech, OxideCapacitance) {
  const TechParams& t = tech_params(TechNode::nm70);
  // eps_ox / 1.2 nm ~ 0.029 F/m^2.
  EXPECT_NEAR(oxide_capacitance(t), 0.0288, 0.001);
}

TEST(Tech, NodeNames) {
  EXPECT_EQ(to_string(TechNode::nm70), "70nm");
  EXPECT_EQ(to_string(TechNode::nm180), "180nm");
}

TEST(Tech, MobilityOrdering) {
  // NMOS mobility always exceeds PMOS.
  for (TechNode node : kAllNodes) {
    const TechParams& t = tech_params(node);
    EXPECT_GT(t.nmos.mu0, t.pmos.mu0);
  }
}

} // namespace
} // namespace hotleakage
