// TraceSource::next_block contract: for every implementation — the
// default next()-looping shim, Generator, Interleaver, TraceFileReader,
// and the arena's PackedTrace::Reader — a block pull of any size must
// yield the byte-identical op sequence the per-op path produces,
// including partial final blocks, quantum straddles, and the short-count
// end-of-stream rule (a later call returns 0, never resumes).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/core.h"
#include "workload/arena.h"
#include "workload/generator.h"
#include "workload/interleaver.h"
#include "workload/tracefile.h"

namespace workload {
namespace {

void expect_op_eq(const sim::MicroOp& a, const sim::MicroOp& b,
                  uint64_t index) {
  ASSERT_EQ(a.op, b.op) << "op class diverges at index " << index;
  ASSERT_EQ(a.pc, b.pc) << "pc diverges at index " << index;
  ASSERT_EQ(a.mem_addr, b.mem_addr) << "mem_addr diverges at index " << index;
  ASSERT_EQ(a.src1_dist, b.src1_dist) << "src1 diverges at index " << index;
  ASSERT_EQ(a.src2_dist, b.src2_dist) << "src2 diverges at index " << index;
  ASSERT_EQ(a.taken, b.taken) << "taken diverges at index " << index;
  ASSERT_EQ(a.target, b.target) << "target diverges at index " << index;
}

/// Drain @p n ops one at a time.
std::vector<sim::MicroOp> drain_per_op(sim::TraceSource& src, uint64_t n) {
  std::vector<sim::MicroOp> ops;
  ops.reserve(n);
  sim::MicroOp op;
  while (ops.size() < n && src.next(op)) {
    ops.push_back(op);
  }
  return ops;
}

/// Drain @p n ops through next_block with a cycling pattern of awkward
/// block sizes (1, primes, the hot-path 64, >64) so chunk boundaries
/// land everywhere.
std::vector<sim::MicroOp> drain_blocks(sim::TraceSource& src, uint64_t n) {
  static constexpr std::size_t kSizes[] = {1, 3, 64, 7, 257, 13};
  std::vector<sim::MicroOp> ops;
  ops.reserve(n);
  sim::MicroOp buf[512];
  std::size_t pick = 0;
  while (ops.size() < n) {
    const std::size_t want = std::min<uint64_t>(
        kSizes[pick++ % std::size(kSizes)], n - ops.size());
    const std::size_t got = src.next_block(buf, want);
    ops.insert(ops.end(), buf, buf + got);
    if (got < want) {
      break;
    }
  }
  return ops;
}

void expect_streams_equal(const std::vector<sim::MicroOp>& a,
                          const std::vector<sim::MicroOp>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (uint64_t i = 0; i < a.size(); ++i) {
    expect_op_eq(a[i], b[i], i);
  }
}

TEST(NextBlock, GeneratorBlockMatchesPerOp) {
  for (const char* name : {"gzip", "gcc", "mcf"}) {
    Generator per_op(profile_by_name(name), 7);
    Generator blocks(profile_by_name(name), 7);
    expect_streams_equal(drain_blocks(blocks, 20'000),
                         drain_per_op(per_op, 20'000));
  }
}

TEST(NextBlock, InterleaverBlockMatchesPerOpAcrossQuantumBoundaries) {
  const std::vector<TenantStream> streams = {
      {profile_by_name("gzip"), 11, 0},
      {profile_by_name("mcf"), 12, 1},
      {profile_by_name("vpr"), 13, 2},
  };
  // Quantum 37 is coprime to every block size the drain uses, so chunks
  // straddle context switches in all phases.
  Interleaver per_op(streams, 37);
  Interleaver blocks(streams, 37);
  expect_streams_equal(drain_blocks(blocks, 30'000),
                       drain_per_op(per_op, 30'000));
  EXPECT_EQ(blocks.switches(), per_op.switches());
}

TEST(NextBlock, TraceFileReaderBlockMatchesPerOpWithPartialFinalBlock) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hlcc_next_block.trc")
          .string();
  // 5'000 % 64 != 0: the last block pull comes up short.
  Generator gen(profile_by_name("gcc"), 3);
  ASSERT_EQ(write_trace(path, gen, 5'000), 5'000u);

  TraceFileReader per_op(path);
  TraceFileReader blocks(path);
  const auto expect = drain_per_op(per_op, 10'000); // file-limited
  ASSERT_EQ(expect.size(), 5'000u);
  expect_streams_equal(drain_blocks(blocks, 10'000), expect);

  // End-of-stream is final: the next pull yields 0, not a resumed tail.
  sim::MicroOp buf[64];
  EXPECT_EQ(blocks.next_block(buf, 64), 0u);
  std::remove(path.c_str());
}

TEST(NextBlock, PackedTraceReaderBlockMatchesPerOp) {
  Generator live(profile_by_name("parser"), 5);
  const std::shared_ptr<const PackedTrace> trace =
      PackedTrace::materialize(live, 12'000);
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->ops(), 12'000u);

  PackedTrace::Reader per_op(trace);
  PackedTrace::Reader blocks(trace);
  expect_streams_equal(drain_blocks(blocks, 12'000),
                       drain_per_op(per_op, 12'000));
  sim::MicroOp buf[64];
  EXPECT_EQ(blocks.next_block(buf, 64), 0u);
}

/// A source that only implements next(): exercises the base-class shim.
class CountingSource final : public sim::TraceSource {
public:
  explicit CountingSource(uint64_t n) : remaining_(n) {}
  bool next(sim::MicroOp& op) override {
    if (remaining_ == 0) {
      return false;
    }
    op = sim::MicroOp{};
    op.pc = --remaining_;
    return true;
  }

private:
  uint64_t remaining_;
};

TEST(NextBlock, DefaultImplementationLoopsNextAndEndsShort) {
  CountingSource src(100); // 100 = 64 + a partial block of 36
  sim::MicroOp buf[64];
  EXPECT_EQ(src.next_block(buf, 64), 64u);
  EXPECT_EQ(buf[0].pc, 99u);
  EXPECT_EQ(src.next_block(buf, 64), 36u);
  EXPECT_EQ(buf[35].pc, 0u);
  EXPECT_EQ(src.next_block(buf, 64), 0u);
}

} // namespace
} // namespace workload
