// Reference device model and the Fig. 1 validation methodology.
#include <gtest/gtest.h>

#include "spiceref/device.h"

namespace spiceref {
namespace {

using hotleakage::DeviceType;
using hotleakage::TechNode;
using hotleakage::tech_params;

const hotleakage::TechParams& t70() { return tech_params(TechNode::nm70); }

TEST(SpiceRef, AgreesAtCalibrationPoint) {
  // Fig. 1: the architectural model "perfectly matches" the reference at
  // the calibration point.
  const double err =
      model_vs_reference_error(t70(), DeviceType::nmos, 0.9, 300.0, 1.0);
  EXPECT_LT(err, 0.05);
}

TEST(SpiceRef, WlSweepAgreement) {
  // Fig. 1a: both models are linear in W/L, so agreement holds across the
  // sweep.
  for (double wl : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    const double err =
        model_vs_reference_error(t70(), DeviceType::nmos, 0.9, 300.0, wl);
    EXPECT_LT(err, 0.05) << "W/L=" << wl;
  }
}

TEST(SpiceRef, VddSweepAgreement) {
  // Fig. 1b: DIBL representations differ (exponential fit vs eta*Vds), but
  // stay within a modest band over the operating range.
  for (double vdd : {0.6, 0.7, 0.8, 0.9, 1.0}) {
    const double err =
        model_vs_reference_error(t70(), DeviceType::nmos, vdd, 300.0, 1.0);
    EXPECT_LT(err, 0.30) << "Vdd=" << vdd;
  }
}

TEST(SpiceRef, TemperatureSweepAgreement) {
  // Fig. 1c: the mobility temperature law is the main divergence; both
  // models share the dominant exponential terms.
  for (double t : {300.0, 330.0, 358.15, 383.15}) {
    const double err =
        model_vs_reference_error(t70(), DeviceType::nmos, 0.9, t, 1.0);
    EXPECT_LT(err, 0.55) << "T=" << t;
  }
}

TEST(SpiceRef, HighVthDivergence) {
  // Fig. 1d: beyond the normal Vth range the simple model diverges from
  // the reference, whose junction/gate floors dominate.
  const double err_normal =
      model_vs_reference_error(t70(), DeviceType::nmos, 0.9, 300.0, 1.0, 0.19);
  const double err_high =
      model_vs_reference_error(t70(), DeviceType::nmos, 0.9, 300.0, 1.0, 0.45);
  EXPECT_LT(err_normal, 0.05);
  EXPECT_GT(err_high, 0.5);
}

TEST(SpiceRef, LeakageFloorDominatesAtHighVth) {
  // At Vth far above nominal, the subthreshold component collapses but the
  // reference total floors on the junction + gate-tunnelling terms the
  // simple model omits — the Fig. 1d divergence mechanism.
  Bias bias{.vgs = 0.0, .vds = 0.9, .vsb = 0.0, .temperature_k = 300.0};
  RefOverrides high_vth{.w_over_l = 1.0, .vth_absolute = 0.6};
  const double sub = reference_subthreshold(t70(), DeviceType::nmos, bias,
                                            high_vth);
  const double total =
      reference_leakage(t70(), DeviceType::nmos, bias, high_vth);
  EXPECT_GT(total - sub, sub); // floor >> remaining subthreshold
  EXPECT_GT(reference_junction(t70(), DeviceType::nmos, bias, high_vth), 0.0);
}

TEST(SpiceRef, JunctionActivatesWithTemperature) {
  Bias cold{.vgs = 0.0, .vds = 0.9, .vsb = 0.0, .temperature_k = 300.0};
  Bias hot = cold;
  hot.temperature_k = 383.15;
  const double jc = reference_junction(t70(), DeviceType::nmos, cold);
  const double jh = reference_junction(t70(), DeviceType::nmos, hot);
  EXPECT_GT(jh / jc, 10.0); // strongly activated
}

TEST(SpiceRef, BodyBiasReducesSubthreshold) {
  Bias none{.vgs = 0.0, .vds = 0.9, .vsb = 0.0, .temperature_k = 300.0};
  Bias rbb = none;
  rbb.vsb = 0.4;
  const double i0 = reference_subthreshold(t70(), DeviceType::nmos, none);
  const double i1 = reference_subthreshold(t70(), DeviceType::nmos, rbb);
  EXPECT_LT(i1, i0 / 2.0);
}

TEST(SpiceRef, VdsDependence) {
  Bias lo{.vgs = 0.0, .vds = 0.5, .vsb = 0.0, .temperature_k = 300.0};
  Bias hi{.vgs = 0.0, .vds = 1.0, .vsb = 0.0, .temperature_k = 300.0};
  EXPECT_GT(reference_subthreshold(t70(), DeviceType::nmos, hi),
            reference_subthreshold(t70(), DeviceType::nmos, lo));
}

TEST(SpiceRef, RejectsBadTemperature) {
  Bias bad{.vgs = 0.0, .vds = 0.9, .vsb = 0.0, .temperature_k = -1.0};
  EXPECT_THROW(reference_subthreshold(t70(), DeviceType::nmos, bad),
               std::invalid_argument);
}

} // namespace
} // namespace spiceref
