// Full-stack integration: the paper's headline claims at reduced scale.
// These use 400k-instruction runs; levels are checked loosely, signs and
// orderings strictly.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace harness {
namespace {

ExperimentConfig cfg_with(unsigned l2, const leakctl::TechniqueParams& tech,
                          double temp_c = 110.0) {
  ExperimentConfig cfg;
  cfg.l2_latency = l2;
  cfg.technique = tech;
  cfg.temperature_c = temp_c;
  cfg.instructions = 400'000;
  cfg.variation = false;
  return cfg;
}

double avg_savings(unsigned l2, const leakctl::TechniqueParams& tech,
                   double temp = 110.0) {
  return averages(run_suite(cfg_with(l2, tech, temp))).net_savings;
}

double avg_perf_loss(unsigned l2, const leakctl::TechniqueParams& tech) {
  return averages(run_suite(cfg_with(l2, tech))).perf_loss;
}

TEST(Integration, GatedSuperiorAtFastL2) {
  // Paper Sec. 5.1: at a 5-cycle L2, gated-Vss beats drowsy in both energy
  // and performance.
  const auto drowsy = run_suite(cfg_with(5, leakctl::TechniqueParams::drowsy()));
  const auto gated =
      run_suite(cfg_with(5, leakctl::TechniqueParams::gated_vss()));
  const SuiteAverages ad = averages(drowsy);
  const SuiteAverages ag = averages(gated);
  EXPECT_GT(ag.net_savings, ad.net_savings);
  EXPECT_LT(ag.perf_loss, ad.perf_loss);
  // "Almost uniformly superior": gated wins savings on >= 9/11 benchmarks.
  int gated_wins = 0;
  for (std::size_t i = 0; i < drowsy.size(); ++i) {
    if (gated[i].energy.net_savings_frac > drowsy[i].energy.net_savings_frac) {
      ++gated_wins;
    }
  }
  EXPECT_GE(gated_wins, 9);
}

TEST(Integration, DrowsySuperiorAtSlowL2) {
  // Paper Sec. 5.1: at 17 cycles drowsy becomes clearly superior on
  // average.
  EXPECT_GT(avg_savings(17, leakctl::TechniqueParams::drowsy()),
            avg_savings(17, leakctl::TechniqueParams::gated_vss()));
  EXPECT_LT(avg_perf_loss(17, leakctl::TechniqueParams::drowsy()),
            avg_perf_loss(17, leakctl::TechniqueParams::gated_vss()));
}

TEST(Integration, MixedAtElevenCycles) {
  // Paper Sec. 5.1: at 11 cycles the picture is unclear — neither
  // technique dominates.  Encoded robustly: drowsy wins outright on at
  // least one benchmark, is within two points on several more, and gated
  // still wins clearly (>2 points) on others.
  const auto drowsy =
      run_suite(cfg_with(11, leakctl::TechniqueParams::drowsy()));
  const auto gated =
      run_suite(cfg_with(11, leakctl::TechniqueParams::gated_vss()));
  int drowsy_wins = 0;
  int contested = 0; // drowsy within 2 points or better
  int gated_clear = 0;
  for (std::size_t i = 0; i < drowsy.size(); ++i) {
    const double d = drowsy[i].energy.net_savings_frac;
    const double g = gated[i].energy.net_savings_frac;
    if (d > g) ++drowsy_wins;
    if (d > g - 0.02) ++contested;
    if (g > d + 0.02) ++gated_clear;
  }
  EXPECT_GE(drowsy_wins, 1);
  EXPECT_GE(contested, 3);
  EXPECT_GE(gated_clear, 3);
  EXPECT_LE(drowsy_wins, 9);
}

TEST(Integration, GatedPerfLossGrowsWithL2Latency) {
  const double p5 = avg_perf_loss(5, leakctl::TechniqueParams::gated_vss());
  const double p11 = avg_perf_loss(11, leakctl::TechniqueParams::gated_vss());
  const double p17 = avg_perf_loss(17, leakctl::TechniqueParams::gated_vss());
  EXPECT_LT(p5, p11);
  EXPECT_LT(p11, p17);
}

TEST(Integration, DrowsyPerfLossInsensitiveToL2Latency) {
  const double p5 = avg_perf_loss(5, leakctl::TechniqueParams::drowsy());
  const double p17 = avg_perf_loss(17, leakctl::TechniqueParams::drowsy());
  EXPECT_NEAR(p5, p17, 0.01);
}

TEST(Integration, TemperatureRaisesSavingsForBoth) {
  // Paper Sec. 5.2 (Figs. 7 vs 8).
  EXPECT_GT(avg_savings(11, leakctl::TechniqueParams::drowsy(), 110.0),
            avg_savings(11, leakctl::TechniqueParams::drowsy(), 85.0));
  EXPECT_GT(avg_savings(11, leakctl::TechniqueParams::gated_vss(), 110.0),
            avg_savings(11, leakctl::TechniqueParams::gated_vss(), 85.0));
}

TEST(Integration, OracleIntervalsHelpGatedMoreThanDrowsy) {
  // Paper Sec. 5.4: adaptivity primarily benefits gated-Vss.
  ExperimentConfig cfg = cfg_with(11, leakctl::TechniqueParams::gated_vss(),
                                  85.0);
  cfg.instructions = 250'000;
  const std::vector<uint64_t> grid = {2048, 8192, 32768};
  double gated_gain = 0.0;
  double drowsy_gain = 0.0;
  for (const char* name : {"gcc", "gzip", "mcf"}) {
    const auto& prof = workload::profile_by_name(name);
    cfg.technique = leakctl::TechniqueParams::gated_vss();
    cfg.decay_interval = 4096;
    const double g_fixed =
        run_experiment(prof, cfg).energy.net_savings_frac;
    const double g_best =
        best_interval_sweep(prof, cfg, grid).best.energy.net_savings_frac;
    gated_gain += g_best - g_fixed;
    cfg.technique = leakctl::TechniqueParams::drowsy();
    const double d_fixed =
        run_experiment(prof, cfg).energy.net_savings_frac;
    const double d_best =
        best_interval_sweep(prof, cfg, grid).best.energy.net_savings_frac;
    drowsy_gain += d_best - d_fixed;
  }
  EXPECT_GT(gated_gain, drowsy_gain);
  EXPECT_GT(gated_gain, 0.0);
}

TEST(Integration, RbbWorseThanDrowsyAt70nm) {
  // GIDL-limited RBB residual leakage exceeds drowsy's: with comparable
  // latency penalties its net savings must come out lower (the reason the
  // paper drops RBB from the headline comparison).
  ExperimentConfig cfg = cfg_with(11, leakctl::TechniqueParams::rbb());
  const ExperimentResult rbb =
      run_experiment(workload::profile_by_name("gcc"), cfg);
  cfg.technique = leakctl::TechniqueParams::drowsy();
  const ExperimentResult drowsy =
      run_experiment(workload::profile_by_name("gcc"), cfg);
  EXPECT_LT(rbb.energy.net_savings_frac, drowsy.energy.net_savings_frac);
}

TEST(Integration, SimplePolicySavesMoreLosesMore) {
  // Drowsy paper trade-off, reproduced under our noaccess-vs-simple
  // switch: simple has a higher turnoff ratio but a larger performance
  // loss.
  ExperimentConfig cfg = cfg_with(11, leakctl::TechniqueParams::drowsy());
  cfg.policy = leakctl::DecayPolicy::noaccess;
  const ExperimentResult noaccess =
      run_experiment(workload::profile_by_name("gzip"), cfg);
  cfg.policy = leakctl::DecayPolicy::simple;
  const ExperimentResult simple =
      run_experiment(workload::profile_by_name("gzip"), cfg);
  EXPECT_GT(simple.energy.turnoff_ratio, noaccess.energy.turnoff_ratio);
  EXPECT_GT(simple.energy.perf_loss_frac, noaccess.energy.perf_loss_frac);
}

} // namespace
} // namespace harness
