// Per-benchmark characteristics of the synthetic SPECint2000 suite on the
// Table 2 machine (parameterized): every profile must land in a plausible
// band for IPC, L1D miss rate, and branch misprediction, and the suite's
// internal orderings (mcf worst, gzip best, ...) must hold.  These pin the
// workload calibration that Table 3 and the figures depend on.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/processor.h"
#include "workload/generator.h"

namespace {

struct BenchStats {
  double ipc = 0.0;
  double l1d_miss = 0.0;
  double mispredict = 0.0;
};

const BenchStats& stats_for(const std::string& name) {
  static std::map<std::string, BenchStats> cache;
  auto it = cache.find(name);
  if (it != cache.end()) {
    return it->second;
  }
  const sim::ProcessorConfig cfg = sim::ProcessorConfig::table2(11);
  sim::Processor proc(cfg);
  sim::BaselineDataPort dport(cfg.l1d, proc.l2(), nullptr);
  workload::Generator gen(workload::profile_by_name(name), 1);
  const sim::RunStats run = proc.run(gen, dport, 1'000'000);
  BenchStats s;
  s.ipc = run.ipc();
  s.l1d_miss = dport.cache().stats().miss_rate();
  s.mispredict = run.branch.mispredict_rate();
  return cache.emplace(name, s).first->second;
}

class BenchmarkBands : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkBands, InPlausibleRanges) {
  const BenchStats& s = stats_for(GetParam());
  EXPECT_GT(s.ipc, 0.15) << GetParam();
  EXPECT_LT(s.ipc, 2.5) << GetParam();
  EXPECT_GT(s.l1d_miss, 0.001) << GetParam();
  EXPECT_LT(s.l1d_miss, 0.30) << GetParam();
  EXPECT_GT(s.mispredict, 0.02) << GetParam();
  EXPECT_LT(s.mispredict, 0.20) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkBands,
                         ::testing::Values("gcc", "gzip", "parser", "vortex",
                                           "gap", "perl", "twolf", "bzip2",
                                           "vpr", "mcf", "crafty"));

TEST(BenchmarkOrdering, McfIsTheMemoryBoundOutlier) {
  const BenchStats& mcf = stats_for("mcf");
  for (const auto& p : workload::spec2000_profiles()) {
    if (p.name == "mcf") continue;
    const BenchStats& other = stats_for(std::string(p.name));
    EXPECT_LT(mcf.ipc, other.ipc) << p.name;
    EXPECT_GT(mcf.l1d_miss, other.l1d_miss) << p.name;
  }
}

TEST(BenchmarkOrdering, LowMissBenchmarksBelowTwoPercent) {
  // vortex and crafty are the published low-miss-rate SPECint members.
  EXPECT_LT(stats_for("vortex").l1d_miss, 0.02);
  EXPECT_LT(stats_for("crafty").l1d_miss, 0.02);
}

TEST(BenchmarkOrdering, PredictableVsUnpredictableBranches) {
  // vortex (4 % random branches) must mispredict less than twolf (14 %).
  EXPECT_LT(stats_for("vortex").mispredict, stats_for("twolf").mispredict);
}

TEST(BenchmarkOrdering, IlpRichBenchmarksLead) {
  // gzip and bzip2 (long dependency distances) top the IPC table's upper
  // half; both must beat the suite median.
  std::vector<double> ipcs;
  for (const auto& p : workload::spec2000_profiles()) {
    ipcs.push_back(stats_for(std::string(p.name)).ipc);
  }
  std::sort(ipcs.begin(), ipcs.end());
  const double median = ipcs[ipcs.size() / 2];
  EXPECT_GT(stats_for("gzip").ipc, median);
  EXPECT_GE(stats_for("bzip2").ipc, median);
}

TEST(BenchmarkOrdering, SuiteAverageIpcInBand) {
  double sum = 0.0;
  for (const auto& p : workload::spec2000_profiles()) {
    sum += stats_for(std::string(p.name)).ipc;
  }
  const double avg = sum / 11.0;
  EXPECT_GT(avg, 0.5);
  EXPECT_LT(avg, 1.5);
}

} // namespace
