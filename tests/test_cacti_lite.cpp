// CACTI-lite array energy model.
#include <gtest/gtest.h>

#include "wattch/cacti_lite.h"

namespace wattch {
namespace {

using hotleakage::CacheGeometry;
using hotleakage::TechNode;
using hotleakage::tech_params;

const hotleakage::TechParams& t70() { return tech_params(TechNode::nm70); }

CacheGeometry l1_geom() {
  return {.lines = 1024, .line_bytes = 64, .tag_bits = 28, .assoc = 2};
}
CacheGeometry l2_geom() {
  return {.lines = 32768, .line_bytes = 64, .tag_bits = 17, .assoc = 2};
}

TEST(CactiLite, Organizations) {
  const ArrayOrganization d = data_array_org(l1_geom());
  EXPECT_EQ(d.rows, 512u);
  EXPECT_EQ(d.cols, 1024u);
  const ArrayOrganization t = tag_array_org(l1_geom());
  EXPECT_EQ(t.cols, 56u);
  const ArrayOrganization l2 = data_array_org(l2_geom());
  EXPECT_GT(l2.banks, 1u); // large arrays are banked
}

TEST(CactiLite, ReadEnergyComponentsPositive) {
  const ArrayEnergies e =
      array_read_energy(t70(), data_array_org(l1_geom()), 0.9);
  EXPECT_GT(e.decode, 0.0);
  EXPECT_GT(e.wordline, 0.0);
  EXPECT_GT(e.bitline, 0.0);
  EXPECT_GT(e.senseamp, 0.0);
  EXPECT_GT(e.output, 0.0);
  EXPECT_DOUBLE_EQ(e.total(), e.decode + e.wordline + e.bitline + e.senseamp +
                                  e.output);
}

TEST(CactiLite, L1ReadMagnitude) {
  // Tens of pJ for a 64 KB read at 0.9 V / 70 nm.
  const double e = array_read_energy(t70(), data_array_org(l1_geom()), 0.9).total();
  EXPECT_GT(e, 1e-12);
  EXPECT_LT(e, 1e-9);
}

TEST(CactiLite, L2CostsSeveralTimesL1) {
  // The ratio the induced-miss energy cost hinges on.
  const double l1 = array_read_energy(t70(), data_array_org(l1_geom()), 0.9).total();
  const double l2 = array_read_energy(t70(), data_array_org(l2_geom()), 0.9).total();
  EXPECT_GT(l2 / l1, 2.0);
  EXPECT_LT(l2 / l1, 30.0);
}

TEST(CactiLite, WriteFullSwingCostsMoreBitlineEnergy) {
  const ArrayOrganization org = data_array_org(l1_geom());
  const ArrayEnergies r = array_read_energy(t70(), org, 0.9);
  const ArrayEnergies w = array_write_energy(t70(), org, 0.9);
  EXPECT_GT(w.bitline, r.bitline);
  EXPECT_DOUBLE_EQ(w.senseamp, 0.0);
}

TEST(CactiLite, EnergyQuadraticInVdd) {
  const ArrayOrganization org = data_array_org(l1_geom());
  const double e9 = array_read_energy(t70(), org, 0.9).total();
  const double e45 = array_read_energy(t70(), org, 0.45).total();
  EXPECT_NEAR(e9 / e45, 4.0, 0.2);
}

TEST(CactiLite, TagAccessMuchCheaperThanData) {
  const double data = array_read_energy(t70(), data_array_org(l1_geom()), 0.9).total();
  const double tag = array_read_energy(t70(), tag_array_org(l1_geom()), 0.9).total();
  EXPECT_LT(tag, 0.3 * data);
}

TEST(CactiLite, TransitionEnergyScalesWithSwing) {
  const double small = line_transition_energy(t70(), l1_geom(), 0.3);
  const double large = line_transition_energy(t70(), l1_geom(), 0.6);
  EXPECT_NEAR(large / small, 4.0, 1e-6);
}

TEST(CactiLite, CounterTickTiny) {
  // Decay-counter energy must be orders below an L1 access, or cost #1
  // would negate the technique.
  const double tick = counter_tick_energy(t70(), 0.9);
  const double l1 = array_read_energy(t70(), data_array_org(l1_geom()), 0.9).total();
  EXPECT_GT(tick, 0.0);
  EXPECT_LT(tick, 1e-3 * l1);
}

TEST(CactiLite, RejectsDegenerateOrg) {
  ArrayOrganization bad;
  bad.rows = 0;
  EXPECT_THROW(array_read_energy(t70(), bad, 0.9), std::invalid_argument);
  EXPECT_THROW(array_access_time(t70(), bad, 0.9), std::invalid_argument);
}

TEST(CactiTiming, ComponentsPositive) {
  const ArrayTiming t = array_access_time(t70(), data_array_org(l1_geom()), 0.9);
  EXPECT_GT(t.decode, 0.0);
  EXPECT_GT(t.wordline, 0.0);
  EXPECT_GT(t.bitline, 0.0);
  EXPECT_GT(t.senseamp, 0.0);
  EXPECT_GT(t.output, 0.0);
  EXPECT_DOUBLE_EQ(t.total(),
                   t.decode + t.wordline + t.bitline + t.senseamp + t.output);
}

TEST(CactiTiming, Table2LatenciesEmerge) {
  // The paper's configuration values drop out of the geometry: a 64 KB L1
  // is a 2-cycle cache and a 2 MB L2 an ~11-cycle cache at 5.6 GHz/0.9 V.
  EXPECT_EQ(cache_latency_cycles(t70(), l1_geom(), 0.9, 5.6e9), 2u);
  const unsigned l2 = cache_latency_cycles(t70(), l2_geom(), 0.9, 5.6e9);
  EXPECT_GE(l2, 10u);
  EXPECT_LE(l2, 12u);
}

TEST(CactiTiming, MonotoneInCacheSize) {
  const CacheGeometry small{.lines = 8192, .line_bytes = 64, .tag_bits = 19,
                            .assoc = 2}; // 512 KB
  const CacheGeometry large{.lines = 65536, .line_bytes = 64, .tag_bits = 16,
                            .assoc = 2}; // 4 MB
  const unsigned s = cache_latency_cycles(t70(), small, 0.9, 5.6e9);
  const unsigned m = cache_latency_cycles(t70(), l2_geom(), 0.9, 5.6e9);
  const unsigned l = cache_latency_cycles(t70(), large, 0.9, 5.6e9);
  EXPECT_LE(s, m);
  EXPECT_LE(m, l);
  EXPECT_GT(s, cache_latency_cycles(t70(), l1_geom(), 0.9, 5.6e9));
}

TEST(CactiTiming, LowerVddIsSlower) {
  const ArrayOrganization org = data_array_org(l1_geom());
  EXPECT_GT(array_access_time(t70(), org, 0.6).bitline,
            array_access_time(t70(), org, 0.9).bitline * 0.6);
  // Bitline time scales with the sense margin ~ Vdd.
  EXPECT_LT(array_access_time(t70(), org, 0.6).bitline,
            array_access_time(t70(), org, 0.9).bitline);
}

TEST(CactiTiming, SlowerClockFewerCycles) {
  const unsigned fast = cache_latency_cycles(t70(), l2_geom(), 0.9, 5.6e9);
  const unsigned slow = cache_latency_cycles(t70(), l2_geom(), 0.9, 1.0e9);
  EXPECT_LT(slow, fast);
  EXPECT_GE(slow, 1u);
}

} // namespace
} // namespace wattch
