// Trace arena differential + policy tests.
//
// The load-bearing property is bit-identity: an arena replay must equal
// the live Generator / Interleaver stream op-for-op for every profile,
// and whole experiments (scalar, batched, hierarchy, multi-tenant; 1 and
// N threads) must produce identical payloads with the arena on, off, or
// too small to hold anything — the arena is a pure throughput
// optimization with zero semantic surface.  Policy coverage: LRU
// eviction under a tiny budget, the upfront estimate gate, in-flight
// readers surviving eviction/clear, and build-once under concurrency.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "harness/metrics.h"
#include "harness/sweep.h"
#include "workload/arena.h"
#include "workload/generator.h"
#include "workload/interleaver.h"

namespace workload {
namespace {

/// Saves and restores the process-wide arena around each test, starting
/// from a clean, enabled, generously budgeted state.
class TraceArenaTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceArena& ta = TraceArena::instance();
    saved_enabled_ = ta.enabled();
    saved_budget_ = ta.budget();
    ta.set_enabled(true);
    ta.set_budget(1ULL << 30);
    ta.clear();
  }
  void TearDown() override {
    TraceArena& ta = TraceArena::instance();
    ta.set_enabled(saved_enabled_);
    ta.set_budget(saved_budget_);
    ta.clear();
  }

private:
  bool saved_enabled_ = true;
  uint64_t saved_budget_ = 0;
};

void expect_op_eq(const sim::MicroOp& a, const sim::MicroOp& b,
                  uint64_t index) {
  ASSERT_EQ(a.op, b.op) << "op class diverges at index " << index;
  ASSERT_EQ(a.pc, b.pc) << "pc diverges at index " << index;
  ASSERT_EQ(a.mem_addr, b.mem_addr) << "mem_addr diverges at index " << index;
  ASSERT_EQ(a.src1_dist, b.src1_dist) << "src1 diverges at index " << index;
  ASSERT_EQ(a.src2_dist, b.src2_dist) << "src2 diverges at index " << index;
  ASSERT_EQ(a.taken, b.taken) << "taken diverges at index " << index;
  ASSERT_EQ(a.target, b.target) << "target diverges at index " << index;
}

/// Replay through @p replay must equal @p live op-for-op over @p n ops.
void expect_replay_identical(sim::TraceSource& replay, sim::TraceSource& live,
                             uint64_t n) {
  sim::MicroOp a;
  sim::MicroOp b;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(replay.next(a)) << "replay ended early at " << i;
    ASSERT_TRUE(live.next(b)) << "live ended early at " << i;
    expect_op_eq(a, b, i);
  }
  EXPECT_FALSE(replay.next(a)) << "replay is longer than the live stream";
}

TEST_F(TraceArenaTest, ReplayIsBitIdenticalForEveryProfile) {
  TraceArena& ta = TraceArena::instance();
  constexpr uint64_t kOps = 20'000;
  for (const BenchmarkProfile& profile : spec2000_profiles()) {
    const std::unique_ptr<sim::TraceSource> replay =
        ta.open(std::string("test#") + std::string(profile.name), kOps,
                [&] { return std::make_unique<Generator>(profile, 42); });
    ASSERT_NE(replay, nullptr) << profile.name;
    Generator live(profile, 42);
    expect_replay_identical(*replay, live, kOps);
  }
}

TEST_F(TraceArenaTest, ReplayIsBitIdenticalForMultiTenantStream) {
  TraceArena& ta = TraceArena::instance();
  constexpr uint64_t kOps = 30'000;
  const std::vector<TenantStream> streams = {
      {profile_by_name("gzip"), 21, 0},
      {profile_by_name("mcf"), 22, 1},
      {profile_by_name("twolf"), 23, 2},
  };
  const std::unique_ptr<sim::TraceSource> replay =
      ta.open("test#tenants", kOps,
              [&] { return std::make_unique<Interleaver>(streams, 1000); });
  ASSERT_NE(replay, nullptr);
  Interleaver live(streams, 1000);
  expect_replay_identical(*replay, live, kOps);
}

TEST_F(TraceArenaTest, SecondOpenIsAHitAndCountsBytes) {
  TraceArena& ta = TraceArena::instance();
  const ArenaStats before = ta.stats();
  const auto live = [] {
    return std::make_unique<Generator>(profile_by_name("gzip"), 1);
  };
  ASSERT_NE(ta.open("test#hit", 10'000, live), nullptr);
  ASSERT_NE(ta.open("test#hit", 10'000, live), nullptr);
  const ArenaStats after = ta.stats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 1u);
  EXPECT_EQ(after.streams, 1u);
  EXPECT_GT(after.bytes, 0u);
  // ~17 B/op on the SPEC mixes: well under the worst-case estimate.
  EXPECT_LE(after.bytes, 10'000 * PackedTrace::kMaxBytesPerOp);
}

TEST_F(TraceArenaTest, TinyBudgetEvictsLruAndFallsBackBitIdentically) {
  TraceArena& ta = TraceArena::instance();
  constexpr uint64_t kOps = 10'000;
  const auto live_for = [](const char* name, uint64_t seed) {
    return [name, seed] {
      return std::make_unique<Generator>(profile_by_name(name), seed);
    };
  };
  // Size one resident stream, then budget for one-and-a-half: admitting
  // the second stream must evict the idle first.
  ASSERT_NE(ta.open("test#a", kOps, live_for("gzip", 1)), nullptr);
  const uint64_t one_stream = ta.stats().bytes;
  ASSERT_GT(one_stream, 0u);
  ta.set_budget(one_stream + one_stream / 2);

  const ArenaStats before = ta.stats();
  ASSERT_NE(ta.open("test#b", kOps, live_for("gcc", 2)), nullptr);
  const ArenaStats after = ta.stats();
  EXPECT_EQ(after.evictions - before.evictions, 1u);
  EXPECT_EQ(after.streams, 1u);

  // The evicted stream rebuilds on demand, still bit-identical.
  const std::unique_ptr<sim::TraceSource> replay =
      ta.open("test#a", kOps, live_for("gzip", 1));
  ASSERT_NE(replay, nullptr);
  Generator live(profile_by_name("gzip"), 1);
  expect_replay_identical(*replay, live, kOps);
}

TEST_F(TraceArenaTest, EstimateGateRefusesOversizedStreams) {
  TraceArena& ta = TraceArena::instance();
  ta.set_budget(1); // nothing fits
  const ArenaStats before = ta.stats();
  const std::unique_ptr<sim::TraceSource> replay =
      ta.open("test#huge", 1'000'000, [] {
        return std::make_unique<Generator>(profile_by_name("gzip"), 1);
      });
  EXPECT_EQ(replay, nullptr); // caller falls back to live generation
  const ArenaStats after = ta.stats();
  EXPECT_EQ(after.fallbacks - before.fallbacks, 1u);
  EXPECT_EQ(after.misses - before.misses, 0u); // never built
}

TEST_F(TraceArenaTest, DisabledArenaOpensNothingAndCountsNoFallback) {
  TraceArena& ta = TraceArena::instance();
  ta.set_enabled(false);
  const ArenaStats before = ta.stats();
  EXPECT_EQ(ta.open("test#off", 1'000, [] {
    return std::make_unique<Generator>(profile_by_name("gzip"), 1);
  }), nullptr);
  const ArenaStats after = ta.stats();
  EXPECT_EQ(after.fallbacks - before.fallbacks, 0u);
  EXPECT_EQ(after.misses - before.misses, 0u);
}

TEST_F(TraceArenaTest, InFlightReaderSurvivesClearAndEviction) {
  TraceArena& ta = TraceArena::instance();
  constexpr uint64_t kOps = 10'000;
  const std::unique_ptr<sim::TraceSource> replay =
      ta.open("test#held", kOps, [] {
        return std::make_unique<Generator>(profile_by_name("vpr"), 9);
      });
  ASSERT_NE(replay, nullptr);
  ta.clear(); // drops the arena's reference; the reader holds its own
  ta.set_budget(1);
  Generator live(profile_by_name("vpr"), 9);
  expect_replay_identical(*replay, live, kOps);
}

TEST_F(TraceArenaTest, ConcurrentOpensMaterializeExactlyOnce) {
  TraceArena& ta = TraceArena::instance();
  constexpr uint64_t kOps = 20'000;
  constexpr unsigned kThreads = 8;
  const ArenaStats before = ta.stats();
  std::vector<std::thread> pool;
  std::vector<bool> ok(kThreads, false);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const std::unique_ptr<sim::TraceSource> replay =
          ta.open("test#race", kOps, [] {
            return std::make_unique<Generator>(profile_by_name("gcc"), 77);
          });
      if (!replay) {
        return;
      }
      Generator live(profile_by_name("gcc"), 77);
      sim::MicroOp a;
      sim::MicroOp b;
      bool same = true;
      for (uint64_t i = 0; i < kOps; ++i) {
        same = same && replay->next(a) && live.next(b) && a.pc == b.pc &&
               a.mem_addr == b.mem_addr;
      }
      ok[t] = same;
    });
  }
  for (std::thread& th : pool) {
    th.join();
  }
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[t]) << "thread " << t;
  }
  const ArenaStats after = ta.stats();
  EXPECT_EQ(after.misses - before.misses, 1u) << "stream built more than once";
  EXPECT_EQ(after.hits - before.hits, kThreads - 1);
}

// --- whole-experiment differentials ----------------------------------

void expect_payload_identical(const harness::ExperimentResult& a,
                              const harness::ExperimentResult& b) {
  EXPECT_EQ(a.base_run.cycles, b.base_run.cycles);
  EXPECT_EQ(a.tech_run.cycles, b.tech_run.cycles);
  EXPECT_EQ(a.tech_run.loads, b.tech_run.loads);
  EXPECT_EQ(a.tech_run.stores, b.tech_run.stores);
  EXPECT_EQ(a.control.hits, b.control.hits);
  EXPECT_EQ(a.control.true_misses, b.control.true_misses);
  EXPECT_EQ(a.control.induced_misses, b.control.induced_misses);
  EXPECT_EQ(a.control.decays, b.control.decays);
  EXPECT_EQ(a.control.wakes, b.control.wakes);
  EXPECT_EQ(a.energy.net_savings_j, b.energy.net_savings_j);
  EXPECT_EQ(a.energy.net_savings_frac, b.energy.net_savings_frac);
  EXPECT_EQ(a.energy.perf_loss_frac, b.energy.perf_loss_frac);
  EXPECT_EQ(a.base_l1d_miss_rate, b.base_l1d_miss_rate);
}

/// A small mixed grid: batchable same-stream cells, a distinct-stream
/// cell, and a multi-tenant (scalar-path) cell.
std::vector<harness::CellResult<harness::ExperimentResult>> run_mixed_grid(
    unsigned threads) {
  harness::SweepRunner runner(harness::SweepOptions{.threads = threads});
  for (const uint64_t interval : {4096u, 65536u}) {
    harness::ExperimentConfig cfg =
        harness::ExperimentConfig::make().instructions(60'000).variation(
            false);
    cfg.decay_interval = interval;
    runner.submit(workload::profile_by_name("gzip"), cfg);
  }
  harness::ExperimentConfig other =
      harness::ExperimentConfig::make().instructions(60'000).variation(false);
  other.seed = 5;
  runner.submit(workload::profile_by_name("mcf"), other);
  harness::ExperimentConfig tenants =
      harness::ExperimentConfig::make().instructions(60'000).variation(false);
  tenants.tenants.count = 2;
  tenants.tenants.co_benchmarks = {"vortex"};
  runner.submit(workload::profile_by_name("gzip"), tenants);
  return runner.run();
}

void expect_grids_identical(
    const std::vector<harness::CellResult<harness::ExperimentResult>>& a,
    const std::vector<harness::CellResult<harness::ExperimentResult>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok()) << "cell " << i;
    ASSERT_TRUE(b[i].ok()) << "cell " << i;
    expect_payload_identical(a[i].value, b[i].value);
  }
}

TEST_F(TraceArenaTest, SweepIsBitIdenticalWithArenaOnOffAndThrashing) {
  TraceArena& ta = TraceArena::instance();
  for (const unsigned threads : {1u, 4u}) {
    ta.set_enabled(false);
    harness::clear_baseline_cache();
    const auto off = run_mixed_grid(threads);

    ta.set_enabled(true);
    ta.clear();
    harness::clear_baseline_cache();
    const auto on = run_mixed_grid(threads);
    expect_grids_identical(on, off);

    // A budget too small for any stream: every open falls back to live.
    ta.set_budget(1);
    ta.clear();
    harness::clear_baseline_cache();
    const auto thrash = run_mixed_grid(threads);
    expect_grids_identical(thrash, off);
    ta.set_budget(1ULL << 30);
  }
}

TEST_F(TraceArenaTest, SweepExportsArenaEffectivenessMetrics) {
  harness::metrics::Registry::global().reset();
  harness::clear_baseline_cache();
  TraceArena::instance().clear();
  (void)run_mixed_grid(2);
  const auto& reg = harness::metrics::Registry::global();
  // 3 distinct streams (the two gzip cells share one); the baseline and
  // technique arms of each cell replay them, so hits must accrue.
  EXPECT_GT(reg.counter("sweep.trace_arena_hits"), 0u);
  EXPECT_GT(reg.counter("sweep.trace_arena_misses"), 0u);
  EXPECT_GT(reg.gauge("sweep.trace_arena_bytes"), 0.0);
}

TEST_F(TraceArenaTest, RunExperimentMatchesAcrossArenaState) {
  const workload::BenchmarkProfile prof = profile_by_name("parser");
  const harness::ExperimentConfig cfg =
      harness::ExperimentConfig::make().instructions(60'000).variation(false);
  TraceArena& ta = TraceArena::instance();

  ta.set_enabled(false);
  harness::clear_baseline_cache();
  const harness::ExperimentResult off = harness::run_experiment(prof, cfg);

  ta.set_enabled(true);
  ta.clear();
  harness::clear_baseline_cache();
  const harness::ExperimentResult on = harness::run_experiment(prof, cfg);
  expect_payload_identical(on, off);
}

} // namespace
} // namespace workload
