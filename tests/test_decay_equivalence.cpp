// Event-driven decay vs. the retained naive-scan reference (ISSUE 5).
//
// The timing-wheel engine in leakctl::DecayCounters must be *observably
// indistinguishable* from the reference full-scan implementation: same
// decay cycles in the same order, same counter_ticks at every boundary,
// same decayed() state, and — driven through a full ControlledCache stack
// with a real L2 behind it — bit-identical ControlStats / CacheStats and
// an identical call sequence into the next level (deactivation writebacks
// are ordered; the golden snapshots depend on it).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <vector>

#include "leakctl/controlled_cache.h"
#include "leakctl/decay.h"
#include "sim/hierarchy.h"

namespace leakctl {
namespace {

struct DecayEvent {
  std::size_t line;
  uint64_t cycle;
  bool operator==(const DecayEvent& o) const {
    return line == o.line && cycle == o.cycle;
  }
};

/// Drive both engines through one pseudo-random command stream (accesses,
/// advances, interval changes, per-line threshold changes) and compare
/// every observable after every step.
void run_decay_stream(uint64_t interval, DecayPolicy policy, uint32_t seed,
                      bool vary_interval, bool vary_thresholds) {
  const std::size_t lines = 64;
  DecayCounters event(lines, interval, policy, DecayEngine::event);
  DecayCounters ref(lines, interval, policy, DecayEngine::reference);

  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> line_dist(0, lines - 1);
  std::uniform_int_distribution<int> op_dist(0, 99);
  std::uniform_int_distribution<uint64_t> step_dist(1, interval / 2);
  const std::vector<uint64_t> intervals = {interval, interval * 2,
                                           std::max<uint64_t>(4, interval / 4)};
  const std::vector<uint16_t> thresholds = {1, 2, 4, 8, 64};

  uint64_t cycle = 0;
  std::vector<DecayEvent> ev_events;
  std::vector<DecayEvent> ref_events;
  for (int step = 0; step < 3000; ++step) {
    const int op = op_dist(rng);
    if (op < 55) {
      const std::size_t line = line_dist(rng);
      event.on_access(line);
      ref.on_access(line);
    } else if (op < 90) {
      cycle += step_dist(rng);
      ev_events.clear();
      ref_events.clear();
      event.advance(cycle, [&](std::size_t l, uint64_t at) {
        ev_events.push_back({l, at});
      });
      ref.advance(cycle, [&](std::size_t l, uint64_t at) {
        ref_events.push_back({l, at});
      });
      ASSERT_EQ(ev_events.size(), ref_events.size())
          << "decay count diverged at cycle " << cycle << " step " << step;
      for (std::size_t i = 0; i < ev_events.size(); ++i) {
        EXPECT_EQ(ev_events[i].line, ref_events[i].line)
            << "order diverged at cycle " << cycle;
        EXPECT_EQ(ev_events[i].cycle, ref_events[i].cycle);
      }
      ASSERT_EQ(event.counter_ticks(), ref.counter_ticks())
          << "counter_ticks diverged at cycle " << cycle;
    } else if (op < 95 && vary_interval) {
      const uint64_t next = intervals[rng() % intervals.size()];
      event.set_interval(next);
      ref.set_interval(next);
    } else if (vary_thresholds) {
      const std::size_t line = line_dist(rng);
      const uint16_t t = thresholds[rng() % thresholds.size()];
      event.set_line_threshold(line, t);
      ref.set_line_threshold(line, t);
    }
    for (std::size_t l = 0; l < lines; ++l) {
      ASSERT_EQ(event.decayed(l), ref.decayed(l))
          << "line " << l << " state diverged at step " << step;
    }
  }
  EXPECT_EQ(event.counter_ticks(), ref.counter_ticks());
}

struct GridParam {
  uint64_t interval;
  DecayPolicy policy;
};

class DecayEngineGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(DecayEngineGrid, RandomStreamsMatchReference) {
  for (uint32_t seed : {1u, 7u, 1234u}) {
    run_decay_stream(GetParam().interval, GetParam().policy, seed,
                     /*vary_interval=*/false, /*vary_thresholds=*/false);
  }
}

TEST_P(DecayEngineGrid, RandomStreamsWithIntervalAndThresholdChanges) {
  for (uint32_t seed : {3u, 99u}) {
    run_decay_stream(GetParam().interval, GetParam().policy, seed,
                     /*vary_interval=*/true, /*vary_thresholds=*/true);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DecayEngineGrid,
    ::testing::Values(GridParam{512, DecayPolicy::noaccess},
                      GridParam{512, DecayPolicy::simple},
                      GridParam{4096, DecayPolicy::noaccess},
                      GridParam{4096, DecayPolicy::simple},
                      GridParam{65536, DecayPolicy::noaccess},
                      GridParam{65536, DecayPolicy::simple}));

// --- full-stack equivalence --------------------------------------------

/// Backing store that records every call (kind, addr, cycle) as a digest
/// on top of a real L2: if the event engine reordered or dropped a single
/// deactivation writeback relative to the reference, the digests differ
/// even when aggregate counters happen to collide.
class RecordingL2 final : public sim::BackingStore {
public:
  RecordingL2()
      : mem_(/*latency=*/100, nullptr),
        l2_({.size_bytes = 256 * 1024, .assoc = 2, .line_bytes = 64,
             .hit_latency = 11},
            mem_, nullptr) {}

  unsigned access(uint64_t addr, bool is_store, uint64_t cycle) override {
    mix(1, addr, cycle);
    return l2_.access(addr, is_store, cycle);
  }
  void writeback(uint64_t addr, uint64_t cycle) override {
    mix(2, addr, cycle);
    l2_.writeback(addr, cycle);
  }

  uint64_t digest() const { return digest_; }

private:
  void mix(uint64_t kind, uint64_t addr, uint64_t cycle) {
    for (uint64_t v : {kind, addr, cycle}) {
      digest_ ^= v + 0x9e3779b97f4a7c15ull + (digest_ << 6) + (digest_ >> 2);
    }
  }
  sim::MemoryBackend mem_;
  sim::CacheLevel l2_;
  uint64_t digest_ = 0xcbf29ce484222325ull;
};

std::string stats_fingerprint(const ControlStats& s) {
  std::ostringstream os;
  s.for_each_field([&os](const char* name, const unsigned long long& v) {
    os << name << '=' << v << '\n';
  });
  return os.str();
}

void run_cache_stream(uint64_t interval, DecayPolicy policy,
                      const TechniqueParams& tech, uint32_t seed) {
  ControlledCacheConfig cfg;
  cfg.cache = {.size_bytes = 16 * 1024, .assoc = 2, .line_bytes = 64,
               .hit_latency = 2};
  cfg.technique = tech;
  cfg.policy = policy;
  cfg.decay_interval = interval;

  RecordingL2 l2_event;
  RecordingL2 l2_ref;
  cfg.decay_engine = DecayEngine::event;
  ControlledCache event(cfg, l2_event, nullptr);
  cfg.decay_engine = DecayEngine::reference;
  ControlledCache ref(cfg, l2_ref, nullptr);

  std::mt19937 rng(seed);
  // 64 KB footprint over a 16 KB cache: plenty of misses, evictions,
  // decays, wakes and (gated) induced misses.
  std::uniform_int_distribution<uint64_t> addr_dist(0, (64 * 1024 / 64) - 1);
  std::uniform_int_distribution<int> store_dist(0, 3);
  std::uniform_int_distribution<uint64_t> gap_dist(1, interval / 3);
  std::uniform_int_distribution<int> knob_dist(0, 199);

  uint64_t cycle = 0;
  unsigned long long latency_sum_event = 0;
  unsigned long long latency_sum_ref = 0;
  for (int i = 0; i < 20000; ++i) {
    const int knob = knob_dist(rng);
    if (knob == 0) {
      const uint64_t next = rng() % 2 == 0 ? interval * 2 : interval;
      event.set_decay_interval(next);
      ref.set_decay_interval(next);
    } else if (knob == 1) {
      const std::size_t line = addr_dist(rng) % event.lines();
      const uint16_t t = static_cast<uint16_t>(1 + (rng() % 8));
      event.set_line_decay_threshold(line, t);
      ref.set_line_decay_threshold(line, t);
    }
    cycle += gap_dist(rng);
    const uint64_t addr = addr_dist(rng) * 64;
    const bool is_store = store_dist(rng) == 0;
    latency_sum_event += event.access(addr, is_store, cycle);
    latency_sum_ref += ref.access(addr, is_store, cycle);
  }
  event.finalize(cycle + interval * 8);
  ref.finalize(cycle + interval * 8);

  EXPECT_EQ(latency_sum_event, latency_sum_ref);
  EXPECT_EQ(stats_fingerprint(event.stats()), stats_fingerprint(ref.stats()));
  EXPECT_EQ(l2_event.digest(), l2_ref.digest())
      << "next-level call sequence diverged";
  const sim::CacheStats& ce = event.cache().stats();
  const sim::CacheStats& cr = ref.cache().stats();
  EXPECT_EQ(ce.reads, cr.reads);
  EXPECT_EQ(ce.writes, cr.writes);
  EXPECT_EQ(ce.read_misses, cr.read_misses);
  EXPECT_EQ(ce.write_misses, cr.write_misses);
  EXPECT_EQ(ce.writebacks, cr.writebacks);
  EXPECT_EQ(ce.invalidation_writebacks, cr.invalidation_writebacks);
}

struct StackParam {
  uint64_t interval;
  DecayPolicy policy;
  bool gated;
};

class ControlledCacheEquivalence
    : public ::testing::TestWithParam<StackParam> {};

TEST_P(ControlledCacheEquivalence, FullStackStatsBitIdentical) {
  const StackParam& p = GetParam();
  const TechniqueParams tech =
      p.gated ? TechniqueParams::gated_vss() : TechniqueParams::drowsy();
  for (uint32_t seed : {1u, 42u, 20260806u}) {
    run_cache_stream(p.interval, p.policy, tech, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ControlledCacheEquivalence,
    ::testing::Values(StackParam{512, DecayPolicy::noaccess, false},
                      StackParam{512, DecayPolicy::noaccess, true},
                      StackParam{512, DecayPolicy::simple, true},
                      StackParam{4096, DecayPolicy::noaccess, false},
                      StackParam{4096, DecayPolicy::noaccess, true},
                      StackParam{4096, DecayPolicy::simple, false},
                      StackParam{65536, DecayPolicy::noaccess, true},
                      StackParam{65536, DecayPolicy::simple, false}));

// --- per-line thresholds x set_interval (ISSUE 5 satellite) ------------

class ThresholdIntervalEngines
    : public ::testing::TestWithParam<DecayEngine> {};

TEST_P(ThresholdIntervalEngines, ThresholdOneDecaysAtNextBoundaryNoaccess) {
  // threshold=1: one epoch of idleness suffices.  After shrinking the
  // interval mid-run the next boundary comes from the *new* epoch length,
  // anchored at the last completed boundary.
  DecayCounters d(2, 4096, DecayPolicy::noaccess, GetParam());
  std::vector<DecayEvent> events;
  const auto collect = [&](std::size_t l, uint64_t at) {
    events.push_back({l, at});
  };
  d.advance(1024, collect); // boundary at 1024 processed
  ASSERT_TRUE(events.empty());
  d.on_access(0);
  d.set_line_threshold(0, 1);
  d.set_interval(512); // epoch 128, anchored at 1024 -> next boundary 1152
  d.advance(1152, collect);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].line, 0u);
  EXPECT_EQ(events[0].cycle, 1152ull);
  EXPECT_TRUE(d.decayed(0));
  EXPECT_FALSE(d.decayed(1));
}

TEST_P(ThresholdIntervalEngines, ThresholdIgnoredUnderSimplePolicy) {
  // simple keeps no access history: thresholds are inert and every line
  // decays at the full-interval boundary that follows the change.
  DecayCounters d(2, 4096, DecayPolicy::simple, GetParam());
  std::vector<DecayEvent> events;
  const auto collect = [&](std::size_t l, uint64_t at) {
    events.push_back({l, at});
  };
  d.on_access(0);
  d.set_line_threshold(0, 1);
  d.set_interval(512); // full interval = 4 epochs of 128
  d.advance(128, collect); // epoch 1: nothing
  EXPECT_TRUE(events.empty());
  d.advance(512, collect); // epoch 4: everything decays
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].line, 0u);
  EXPECT_EQ(events[0].cycle, 512ull);
  EXPECT_EQ(events[1].line, 1u);
}

INSTANTIATE_TEST_SUITE_P(Engines, ThresholdIntervalEngines,
                         ::testing::Values(DecayEngine::event,
                                           DecayEngine::reference));

/// The same threshold=1 + interval-change scenario through ControlledCache
/// for both techniques: drowsy keeps the data (later access = slow hit),
/// gated-Vss destroys it (later access = induced miss).
void run_threshold_one_stack(const TechniqueParams& tech, DecayPolicy policy,
                             unsigned long long* slow_hits,
                             unsigned long long* induced) {
  ControlledCacheConfig cfg;
  cfg.cache = {.size_bytes = 1024, .assoc = 2, .line_bytes = 64,
               .hit_latency = 2};
  cfg.technique = tech;
  cfg.policy = policy;
  cfg.decay_interval = 4096;
  sim::MemoryBackend mem(100, nullptr);
  ControlledCache cc(cfg, mem, nullptr);

  const uint64_t addr = 0;
  (void)cc.access(addr, /*is_store=*/false, /*cycle=*/10); // fill line
  // The filled line sits at set 0, one of ways {0, 1}: pin both.
  cc.set_line_decay_threshold(0, 1);
  cc.set_line_decay_threshold(1, 1);
  cc.set_decay_interval(512); // epoch 128; next boundary at 128
  // First boundary after the access decays it (threshold 1) for noaccess;
  // simple waits for the full-interval boundary at 512.  Either way it is
  // standby well before cycle 1000.
  const unsigned lat = cc.access(addr, /*is_store=*/false, /*cycle=*/1000);
  (void)lat;
  EXPECT_GE(cc.stats().decays, 1ull);
  cc.finalize(2000);
  *slow_hits = cc.stats().slow_hits;
  *induced = cc.stats().induced_misses;
}

TEST(ThresholdIntervalStack, DrowsySlowHitGatedInducedMiss) {
  for (DecayPolicy policy : {DecayPolicy::noaccess, DecayPolicy::simple}) {
    unsigned long long slow = 0;
    unsigned long long induced = 0;
    run_threshold_one_stack(TechniqueParams::drowsy(), policy, &slow,
                            &induced);
    EXPECT_EQ(slow, 1ull) << "drowsy re-access must be a slow hit";
    EXPECT_EQ(induced, 0ull);
    run_threshold_one_stack(TechniqueParams::gated_vss(), policy, &slow,
                            &induced);
    EXPECT_EQ(slow, 0ull);
    EXPECT_EQ(induced, 1ull) << "gated re-access must be an induced miss";
  }
}

} // namespace
} // namespace leakctl
