// HotLeakage command-line-style configuration (paper Sec. 3.4).
#include <gtest/gtest.h>

#include <vector>

#include "hotleakage/options.h"

namespace hotleakage {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<std::string> v;
  for (const char* a : args) v.emplace_back(a);
  return parse_options(v);
}

TEST(Options, DefaultsAreThePapersSetup) {
  const Options o = parse({});
  EXPECT_EQ(o.node, TechNode::nm70);
  EXPECT_DOUBLE_EQ(o.temperature_c, 110.0);
  EXPECT_DOUBLE_EQ(o.resolved_vdd(), 0.9); // node nominal
  EXPECT_TRUE(o.variation.enabled);
}

TEST(Options, TechSelection) {
  EXPECT_EQ(parse({"tech=130"}).node, TechNode::nm130);
  EXPECT_EQ(parse({"tech=180nm"}).node, TechNode::nm180);
  EXPECT_DOUBLE_EQ(parse({"tech=130"}).resolved_vdd(), 1.5);
}

TEST(Options, NumericKeys) {
  const Options o = parse({"temp=85", "vdd=0.8", "samples=64", "seed=7",
                           "sigma-scale=0.5"});
  EXPECT_DOUBLE_EQ(o.temperature_c, 85.0);
  EXPECT_DOUBLE_EQ(o.resolved_vdd(), 0.8);
  EXPECT_EQ(o.variation.samples, 64);
  EXPECT_EQ(o.variation.seed, 7ull);
  EXPECT_DOUBLE_EQ(o.variation.sigma_scale, 0.5);
}

TEST(Options, StandbyKnobs) {
  const Options o = parse({"drowsy-vdd-ratio=1.8", "footer-vth=0.4",
                           "rbb-bias=0.5", "rbb-vth-shift=0.15"});
  EXPECT_DOUBLE_EQ(o.standby.drowsy_vdd_over_vth, 1.8);
  EXPECT_DOUBLE_EQ(o.standby.gated_footer_vth, 0.4);
  EXPECT_DOUBLE_EQ(o.standby.rbb_bias, 0.5);
  EXPECT_DOUBLE_EQ(o.standby.rbb_vth_shift, 0.15);
}

TEST(Options, VariationToggle) {
  EXPECT_FALSE(parse({"variation=off"}).variation.enabled);
  EXPECT_TRUE(parse({"variation=on"}).variation.enabled);
  EXPECT_FALSE(parse({"variation=0"}).variation.enabled);
}

TEST(Options, Rejections) {
  EXPECT_THROW(parse({"bogus=1"}), std::invalid_argument);
  EXPECT_THROW(parse({"temp"}), std::invalid_argument);
  EXPECT_THROW(parse({"temp=warm"}), std::invalid_argument);
  EXPECT_THROW(parse({"tech=45"}), std::invalid_argument);
  EXPECT_THROW(parse({"samples=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"samples=many"}), std::invalid_argument);
  EXPECT_THROW(parse({"variation=maybe"}), std::invalid_argument);
  EXPECT_THROW(parse({"vdd=-1"}), std::invalid_argument);
}

TEST(Options, BuildProducesConfiguredModel) {
  const Options o = parse({"tech=70", "temp=85", "variation=off"});
  const LeakageModel model = o.build();
  EXPECT_NEAR(model.operating_point().temperature_k, 85.0 + 273.15, 1e-9);
  EXPECT_DOUBLE_EQ(model.variation_factor(), 1.0);
}

TEST(Options, BuildRespectsStandbyKnobs) {
  // A higher drowsy retention voltage leaves more residual leakage.
  const LeakageModel lo = parse({"variation=off"}).build();
  const LeakageModel hi =
      parse({"variation=off", "drowsy-vdd-ratio=2.5"}).build();
  EXPECT_GT(hi.standby_ratio(StandbyMode::drowsy),
            lo.standby_ratio(StandbyMode::drowsy));
}

TEST(Options, HelpMentionsEveryKey) {
  const std::string help = options_help();
  for (const char* key : {"tech", "temp", "vdd", "variation", "samples",
                          "seed", "sigma-scale", "drowsy-vdd-ratio",
                          "footer-vth", "rbb-bias", "rbb-vth-shift"}) {
    EXPECT_NE(help.find(key), std::string::npos) << key;
  }
}

} // namespace
} // namespace hotleakage
