// Double-k_design model (paper Eqs. 3-8) including the NAND2 worked example.
#include <gtest/gtest.h>

#include "hotleakage/kdesign.h"

namespace hotleakage {
namespace {

const TechParams& t70() { return tech_params(TechNode::nm70); }
const OperatingPoint kOp{.temperature_k = 383.15, .vdd = 0.9};

TEST(KDesign, InverterKFactors) {
  // Single devices, W/L folded into k: kn = wl_n / 2, kp = wl_p / 2
  // (each network off for exactly half the input combinations).
  const Cell inv = cells::inverter(t70());
  const KDesign k = compute_kdesign(t70(), inv, kOp);
  EXPECT_NEAR(k.kn, 1.5 / 2.0, 1e-9);
  EXPECT_NEAR(k.kp, 3.0 / 2.0, 1e-9);
}

TEST(KDesign, Nand2MatchesPaperFormula) {
  // Eqs. 7-8 with N = 4: kn = (I1n + I2n + I3n) / (4 * 2 * In),
  // kp = I1p / (4 * 2 * Ip).  With leaf width 2*1.5 = 3 for NMOS and the
  // stack factor sf: I(0,0) = 3*In/sf, I(0,1) = I(1,0) = 3*In.
  const Cell nand = cells::nand2(t70());
  const KDesign k = compute_kdesign(t70(), nand, kOp);
  const double sf = stack_factor(t70(), kOp);
  const double expected_kn = (3.0 / sf + 3.0 + 3.0) / (4.0 * 2.0);
  const double expected_kp = (2.0 * 3.0) / (4.0 * 2.0); // both PMOS leak at 1,1
  EXPECT_NEAR(k.kn, expected_kn, 1e-9);
  EXPECT_NEAR(k.kp, expected_kp, 1e-9);
}

TEST(KDesign, IndependentOfVth) {
  // Paper: "kn and kp are independent of threshold voltage".  Vth scales
  // In and the per-combo currents identically, so k is unchanged.
  const Cell nand = cells::nand2(t70());
  TechParams warped = t70();
  warped.nmos.vth0 += 0.05;
  warped.pmos.vth0 += 0.05;
  const KDesign k1 = compute_kdesign(t70(), nand, kOp);
  const KDesign k2 = compute_kdesign(warped, nand, kOp);
  EXPECT_NEAR(k1.kn, k2.kn, 1e-9);
  EXPECT_NEAR(k1.kp, k2.kp, 1e-9);
}

TEST(KDesign, TemperatureTrend) {
  // Through the stack factor, kn grows mildly with temperature (stacked
  // combos leak relatively more when hot).
  const Cell nand = cells::nand2(t70());
  const KDesign cold =
      compute_kdesign(t70(), nand, {.temperature_k = 300.0, .vdd = 0.9});
  const KDesign hot =
      compute_kdesign(t70(), nand, {.temperature_k = 383.15, .vdd = 0.9});
  EXPECT_GT(hot.kn, cold.kn);
  EXPECT_DOUBLE_EQ(hot.kp, cold.kp); // parallel PUN has no stack
}

TEST(KDesign, ExplicitPathCells) {
  const Cell sram = cells::sram6t(t70());
  const KDesign k = compute_kdesign(t70(), sram, kOp);
  EXPECT_GT(k.kn, 0.0);
  EXPECT_GT(k.kp, 0.0);
  // 4 NMOS of which pull-down (2.0) + access (1.2) leak per state:
  // kn = (2.0 + 1.2) / 4.
  EXPECT_NEAR(k.kn, (2.0 + 1.2) / 4.0, 1e-9);
  EXPECT_NEAR(k.kp, 1.0 / 2.0, 1e-9);
}

TEST(CellLeakage, SramMagnitude) {
  const CellLeakage leak = cell_leakage(t70(), cells::sram6t(t70()), kOp);
  // ~1 uA subthreshold per cell at 110 C in the high-leak 70 nm corner;
  // gate leakage present but an order smaller.
  EXPECT_GT(leak.subthreshold, 1e-7);
  EXPECT_LT(leak.subthreshold, 1e-5);
  EXPECT_GT(leak.gate, 0.0);
  EXPECT_LT(leak.gate, leak.subthreshold);
  EXPECT_DOUBLE_EQ(leak.total(), leak.subthreshold + leak.gate);
}

TEST(StaticPower, Equation4) {
  // P = Vdd * N * I_cell, linear in N.
  const Cell sram = cells::sram6t(t70());
  const double p1 = static_power(t70(), sram, kOp, 1000.0);
  const double p2 = static_power(t70(), sram, kOp, 2000.0);
  EXPECT_NEAR(p2 / p1, 2.0, 1e-9);
  const double i = cell_leakage(t70(), sram, kOp).total();
  EXPECT_NEAR(p1, kOp.vdd * 1000.0 * i, 1e-15);
}

TEST(StaticPower, RejectsNegativeCount) {
  EXPECT_THROW(static_power(t70(), cells::sram6t(t70()), kOp, -1.0),
               std::invalid_argument);
}

TEST(KDesign, RejectsDegenerateCell) {
  Cell empty;
  empty.name = "empty";
  EXPECT_THROW(compute_kdesign(t70(), empty, kOp), std::invalid_argument);
}

// Property sweep: for every built-in gate cell and a grid of operating
// points, the k factors stay in (0, 2] and cell leakage stays positive.
struct KCase {
  const char* cell;
  double temperature;
  double vdd;
};

class KDesignSweep : public ::testing::TestWithParam<KCase> {};

TEST_P(KDesignSweep, FactorsBounded) {
  const KCase c = GetParam();
  const Cell cell = [&] {
    const std::string name = c.cell;
    if (name == "inverter") return cells::inverter(t70());
    if (name == "nand2") return cells::nand2(t70());
    if (name == "nand3") return cells::nand3(t70());
    if (name == "nor2") return cells::nor2(t70());
    if (name == "sram6t") return cells::sram6t(t70());
    return cells::sense_amp(t70());
  }();
  const OperatingPoint op{.temperature_k = c.temperature, .vdd = c.vdd};
  const KDesign k = compute_kdesign(t70(), cell, op);
  EXPECT_GT(k.kn, 0.0);
  EXPECT_LE(k.kn, 4.0);
  EXPECT_GT(k.kp, 0.0);
  EXPECT_LE(k.kp, 4.0);
  EXPECT_GT(cell_leakage(t70(), cell, op).total(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KDesignSweep,
    ::testing::Values(KCase{"inverter", 300.0, 0.9}, KCase{"nand2", 300.0, 0.9},
                      KCase{"nand3", 358.15, 0.9}, KCase{"nor2", 383.15, 0.9},
                      KCase{"sram6t", 383.15, 0.9},
                      KCase{"sense_amp", 383.15, 0.9},
                      KCase{"nand2", 383.15, 0.7}, KCase{"sram6t", 300.0, 1.0},
                      KCase{"nor2", 330.0, 0.8},
                      KCase{"sense_amp", 300.0, 0.6}));

} // namespace
} // namespace hotleakage
