// End-to-end fault injection through the experiment harness: injection
// under drowsy standby, parity/ECC recovery accounting, gated-Vss
// immunity, and byte-identical deterministic replay.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace harness {
namespace {

ExperimentConfig fault_config(double raw_rate, faults::Protection prot,
                              uint64_t seed = 11) {
  ExperimentConfig cfg;
  cfg.instructions = 150'000;
  cfg.variation = false;
  cfg.faults.enabled = true;
  cfg.faults.standby_rate_per_bit_cycle = raw_rate;
  cfg.faults.protection = prot;
  cfg.faults.seed = seed;
  return cfg;
}

void expect_same_stats(const leakctl::ControlStats& a,
                       const leakctl::ControlStats& b) {
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.slow_hits, b.slow_hits);
  EXPECT_EQ(a.induced_misses, b.induced_misses);
  EXPECT_EQ(a.true_misses, b.true_misses);
  EXPECT_EQ(a.data_active_cycles, b.data_active_cycles);
  EXPECT_EQ(a.data_standby_cycles, b.data_standby_cycles);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.fault_checks, b.fault_checks);
  EXPECT_EQ(a.fault_detections, b.fault_detections);
  EXPECT_EQ(a.fault_corrections, b.fault_corrections);
  EXPECT_EQ(a.fault_recoveries, b.fault_recoveries);
  EXPECT_EQ(a.fault_corruptions_detected, b.fault_corruptions_detected);
  EXPECT_EQ(a.fault_corruptions_silent, b.fault_corruptions_silent);
}

TEST(FaultInjection, DrowsyStandbyInjects) {
  const ExperimentResult r = run_experiment(
      workload::profile_by_name("gcc"),
      fault_config(1e-8, faults::Protection::parity));
  EXPECT_GT(r.control.fault_checks, 0ull);
  EXPECT_GT(r.control.faults_injected, 0ull);
}

TEST(FaultInjection, ParityRecoversEveryCleanDetection) {
  // The acceptance identity: every detected error is either recovered
  // (clean line, L2 refetch) or a detected corruption (dirty line); parity
  // has no in-place correction.
  const ExperimentResult r = run_experiment(
      workload::profile_by_name("twolf"),
      fault_config(1e-8, faults::Protection::parity));
  const leakctl::ControlStats& c = r.control;
  EXPECT_GT(c.fault_detections, 0ull);
  EXPECT_GT(c.fault_recoveries, 0ull);
  EXPECT_EQ(c.fault_detections,
            c.fault_recoveries + c.fault_corruptions_detected);
  EXPECT_EQ(c.fault_corrections, 0ull);
}

TEST(FaultInjection, UnprotectedFlipsAreSilent) {
  const ExperimentResult r = run_experiment(
      workload::profile_by_name("twolf"),
      fault_config(1e-8, faults::Protection::none));
  const leakctl::ControlStats& c = r.control;
  EXPECT_GT(c.faults_injected, 0ull);
  EXPECT_EQ(c.fault_detections, 0ull);
  EXPECT_EQ(c.fault_recoveries, 0ull);
  EXPECT_EQ(c.fault_corruptions_detected, 0ull);
  EXPECT_GT(c.fault_corruptions_silent, 0ull);
}

TEST(FaultInjection, SecdedCorrectsSingleBitFlips) {
  // At a rate where every faulty event is a single-bit flip, SECDED must
  // drive corruption to zero while still logging corrections.
  const ExperimentResult r = run_experiment(
      workload::profile_by_name("gcc"),
      fault_config(2e-11, faults::Protection::secded));
  const leakctl::ControlStats& c = r.control;
  EXPECT_GT(c.faults_injected, 0ull);
  EXPECT_GT(c.fault_corrections, 0ull);
  EXPECT_EQ(c.corruptions(), 0ull);
}

TEST(FaultInjection, GatedVssStandbyIsImmune) {
  // Same seed and rate as the drowsy runs: gated-Vss standby holds no
  // state, so no standby faults can ever materialize.
  ExperimentConfig cfg = fault_config(1e-8, faults::Protection::none);
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  const ExperimentResult r =
      run_experiment(workload::profile_by_name("gcc"), cfg);
  EXPECT_GT(r.control.induced_misses, 0ull); // it did decay lines
  EXPECT_EQ(r.control.faults_injected, 0ull);
  EXPECT_EQ(r.control.fault_checks, 0ull);
  EXPECT_EQ(r.control.corruptions(), 0ull);
}

TEST(FaultInjection, ZeroRateInjectsNothing) {
  const ExperimentResult r = run_experiment(
      workload::profile_by_name("gcc"),
      fault_config(0.0, faults::Protection::parity));
  EXPECT_EQ(r.control.faults_injected, 0ull);
  EXPECT_EQ(r.control.fault_checks, 0ull);
  EXPECT_EQ(r.control.corruptions(), 0ull);
}

TEST(FaultInjection, DeterministicReplay) {
  // Same seed + config => identical classification, fault and corruption
  // counts, and timing across two fresh runs.
  const ExperimentConfig cfg =
      fault_config(1e-8, faults::Protection::parity, 1234);
  clear_baseline_cache();
  const ExperimentResult a =
      run_experiment(workload::profile_by_name("vpr"), cfg);
  clear_baseline_cache();
  const ExperimentResult b =
      run_experiment(workload::profile_by_name("vpr"), cfg);
  expect_same_stats(a.control, b.control);
  EXPECT_EQ(a.tech_run.cycles, b.tech_run.cycles);
  EXPECT_DOUBLE_EQ(a.energy.net_savings_frac, b.energy.net_savings_frac);
}

TEST(FaultInjection, SeedChangesFaultHistory) {
  const ExperimentResult a = run_experiment(
      workload::profile_by_name("vpr"),
      fault_config(1e-8, faults::Protection::parity, 1));
  const ExperimentResult b = run_experiment(
      workload::profile_by_name("vpr"),
      fault_config(1e-8, faults::Protection::parity, 2));
  EXPECT_NE(a.control.faults_injected, b.control.faults_injected);
}

TEST(FaultInjection, ProtectionCostsAreCharged) {
  const ExperimentResult none = run_experiment(
      workload::profile_by_name("gcc"),
      fault_config(1e-9, faults::Protection::none));
  const ExperimentResult secded = run_experiment(
      workload::profile_by_name("gcc"),
      fault_config(1e-9, faults::Protection::secded));
  EXPECT_EQ(none.energy.protection_leakage_j, 0.0);
  EXPECT_EQ(none.energy.protection_dynamic_j, 0.0);
  EXPECT_GT(secded.energy.protection_leakage_j, 0.0);
  EXPECT_GT(secded.energy.protection_dynamic_j, 0.0);
  // ECC's storage, energy, and latency must show up as lower net savings.
  EXPECT_LT(secded.energy.net_savings_frac, none.energy.net_savings_frac);
  // The 1-cycle syndrome check sits on every access: runtime grows.
  EXPECT_GE(secded.tech_run.cycles, none.tech_run.cycles);
}

TEST(FaultInjection, DisabledByDefault) {
  ExperimentConfig cfg;
  cfg.instructions = 60'000;
  cfg.variation = false;
  const ExperimentResult r =
      run_experiment(workload::profile_by_name("gcc"), cfg);
  EXPECT_EQ(r.control.faults_injected, 0ull);
  EXPECT_EQ(r.control.fault_checks, 0ull);
  EXPECT_EQ(r.energy.protection_leakage_j, 0.0);
  EXPECT_EQ(r.energy.protection_dynamic_j, 0.0);
}

} // namespace
} // namespace harness
