// Decay-counter machinery: hierarchical-counter semantics (paper Sec. 2.3).
#include <gtest/gtest.h>

#include <vector>

#include "leakctl/decay.h"

namespace leakctl {
namespace {

struct DecayEvent {
  std::size_t line;
  uint64_t cycle;
};

std::vector<DecayEvent> advance_collect(DecayCounters& d, uint64_t cycle) {
  std::vector<DecayEvent> events;
  d.advance(cycle, [&](std::size_t line, uint64_t at) {
    events.push_back({line, at});
  });
  return events;
}

TEST(Decay, ValidatesArguments) {
  EXPECT_THROW(DecayCounters(0, 4096, DecayPolicy::noaccess),
               std::invalid_argument);
  EXPECT_THROW(DecayCounters(4, 2, DecayPolicy::noaccess),
               std::invalid_argument);
}

TEST(Decay, NoaccessDecaysAfterFullInterval) {
  // Interval 4096 => epoch 1024.  A line never accessed decays at the 4th
  // epoch boundary (cycle 4096).
  DecayCounters d(4, 4096, DecayPolicy::noaccess);
  EXPECT_TRUE(advance_collect(d, 4095).empty());
  const auto events = advance_collect(d, 4096);
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].cycle, 4096ull);
}

TEST(Decay, AccessResetsCounter) {
  DecayCounters d(2, 4096, DecayPolicy::noaccess);
  advance_collect(d, 3000); // both counters partly advanced
  d.on_access(0);
  // Line 1 decays at 4096; line 0 was reset at 3000 and survives until its
  // own 4 epochs elapse (first boundary after 3000 is 3072; decay at
  // 3072 + 3 * 1024 = 6144).
  auto events = advance_collect(d, 4096);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].line, 1u);
  events = advance_collect(d, 6144);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].line, 0u);
  EXPECT_EQ(events[0].cycle, 6144ull);
}

TEST(Decay, DecayedFlagTracksState) {
  DecayCounters d(1, 4096, DecayPolicy::noaccess);
  EXPECT_FALSE(d.decayed(0));
  advance_collect(d, 4096);
  EXPECT_TRUE(d.decayed(0));
  d.on_access(0);
  EXPECT_FALSE(d.decayed(0));
}

TEST(Decay, DecayedLineDoesNotReDecay) {
  DecayCounters d(1, 4096, DecayPolicy::noaccess);
  advance_collect(d, 4096);
  EXPECT_TRUE(advance_collect(d, 40960).empty());
}

TEST(Decay, QuantizationWindow) {
  // A line accessed at cycle a decays between a + 3/4 I and a + I + epoch.
  const uint64_t interval = 4096;
  for (uint64_t a : {100ull, 1000ull, 1024ull, 1500ull, 4000ull}) {
    DecayCounters d(1, interval, DecayPolicy::noaccess);
    advance_collect(d, a); // move time forward
    d.on_access(0);
    const auto events = advance_collect(d, a + 2 * interval);
    ASSERT_EQ(events.size(), 1u) << "a=" << a;
    const uint64_t idle = events[0].cycle - a;
    EXPECT_GE(idle, interval * 3 / 4) << "a=" << a;
    EXPECT_LE(idle, interval + interval / 4) << "a=" << a;
  }
}

TEST(Decay, SimplePolicyDecaysEverythingEveryInterval) {
  DecayCounters d(8, 4096, DecayPolicy::simple);
  // Access some lines right before the interval boundary: simple ignores
  // access history.
  advance_collect(d, 4000);
  d.on_access(0);
  d.on_access(5);
  const auto events = advance_collect(d, 4096);
  EXPECT_EQ(events.size(), 8u);
}

TEST(Decay, SimplePolicyReawakensOnAccess) {
  DecayCounters d(2, 4096, DecayPolicy::simple);
  advance_collect(d, 4096);
  EXPECT_TRUE(d.decayed(0));
  d.on_access(0);
  EXPECT_FALSE(d.decayed(0));
  const auto events = advance_collect(d, 8192);
  ASSERT_EQ(events.size(), 1u); // only the reawakened line decays again
  EXPECT_EQ(events[0].line, 0u);
}

TEST(Decay, CounterTicksAccumulate) {
  DecayCounters d(4, 4096, DecayPolicy::noaccess);
  advance_collect(d, 1024); // one epoch, 4 active lines tick
  EXPECT_EQ(d.counter_ticks(), 4ull);
  advance_collect(d, 2048);
  EXPECT_EQ(d.counter_ticks(), 8ull);
  // After decay, dormant lines stop ticking.
  advance_collect(d, 4096);
  const unsigned long long at_decay = d.counter_ticks();
  advance_collect(d, 8192);
  EXPECT_EQ(d.counter_ticks(), at_decay);
}

TEST(Decay, SetIntervalTakesEffect) {
  DecayCounters d(1, 4096, DecayPolicy::noaccess);
  advance_collect(d, 1024);
  d.set_interval(16384);
  EXPECT_EQ(d.interval(), 16384ull);
  // With the longer epoch (4096), decay needs 3 more epochs from the last
  // boundary at 1024: 1024 + 3 * 4096 = 13312.
  const auto events = advance_collect(d, 13312);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(advance_collect(d, 60000).empty());
}

TEST(Decay, SetIntervalValidation) {
  DecayCounters d(1, 4096, DecayPolicy::noaccess);
  EXPECT_THROW(d.set_interval(2), std::invalid_argument);
}

// set_interval re-anchoring (ISSUE 5 satellite): the next boundary must be
// the last *completed* boundary plus the new epoch length — cycle 0 when
// no boundary has been processed yet — for grows and shrinks alike, on
// both engines.
class DecaySetIntervalAnchor : public ::testing::TestWithParam<DecayEngine> {
protected:
  static std::vector<DecayEvent> collect(DecayCounters& d, uint64_t cycle) {
    return advance_collect(d, cycle);
  }
};

TEST_P(DecaySetIntervalAnchor, GrowAtCycleZero) {
  DecayCounters d(1, 4096, DecayPolicy::noaccess, GetParam());
  d.set_interval(16384); // anchor 0: boundaries at 4096, 8192, ...
  EXPECT_TRUE(collect(d, 16383).empty());
  const auto events = collect(d, 16384);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 16384ull);
}

TEST_P(DecaySetIntervalAnchor, ShrinkAtCycleZero) {
  DecayCounters d(1, 65536, DecayPolicy::noaccess, GetParam());
  d.set_interval(512); // anchor 0: boundaries at 128, 256, ...
  EXPECT_TRUE(collect(d, 511).empty());
  const auto events = collect(d, 512);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 512ull);
}

TEST_P(DecaySetIntervalAnchor, ShrinkMidEpoch) {
  // Interval 16384 (epoch 4096): one boundary at 4096, then time moves to
  // mid-epoch before the shrink.  The new epoch length (1024) must anchor
  // at 4096, so the remaining three ticks land at 5120, 6144, 7168.
  DecayCounters d(1, 16384, DecayPolicy::noaccess, GetParam());
  EXPECT_TRUE(collect(d, 5000).empty()); // boundary 4096 processed
  d.set_interval(4096);
  const auto events = collect(d, 7168);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 7168ull);
}

TEST_P(DecaySetIntervalAnchor, GrowMidEpoch) {
  DecayCounters d(1, 4096, DecayPolicy::noaccess, GetParam());
  EXPECT_TRUE(collect(d, 1500).empty()); // boundary 1024 processed
  d.set_interval(16384);                 // anchor 1024; next tick 5120
  EXPECT_TRUE(collect(d, 5119).empty());
  // Three more epochs of 4096 from 1024: decay at 1024 + 3 * 4096.
  const auto events = collect(d, 13312);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 13312ull);
}

INSTANTIATE_TEST_SUITE_P(Engines, DecaySetIntervalAnchor,
                         ::testing::Values(DecayEngine::event,
                                           DecayEngine::reference));

TEST(Decay, AdvanceIsIdempotentForPastCycles) {
  DecayCounters d(2, 4096, DecayPolicy::noaccess);
  advance_collect(d, 5000);
  EXPECT_TRUE(advance_collect(d, 4000).empty());
  EXPECT_TRUE(advance_collect(d, 5000).empty());
}

// Property sweep: for any interval, a never-accessed line decays exactly
// once, at exactly the interval.
class DecayIntervalSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecayIntervalSweep, DecayAtInterval) {
  const uint64_t interval = GetParam();
  DecayCounters d(3, interval, DecayPolicy::noaccess);
  const auto events = advance_collect(d, 10 * interval);
  ASSERT_EQ(events.size(), 3u);
  for (const auto& e : events) {
    EXPECT_EQ(e.cycle, interval);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DecayIntervalSweep,
                         ::testing::Values(1024, 2048, 4096, 8192, 16384,
                                           32768, 65536));

} // namespace
} // namespace leakctl
