// Thermal RC network and the leakage-temperature feedback loop.
#include <gtest/gtest.h>

#include <cmath>

#include "thermal/feedback.h"
#include "thermal/rc_network.h"

namespace thermal {
namespace {

TEST(RcNetwork, NoPowerStaysAtAmbient) {
  RcNetwork net(45.0);
  const std::size_t b = net.add_block(
      {.name = "b", .capacitance = 1e-3, .r_to_ambient = 3.0,
       .temperature_c = 45.0});
  net.step({0.0}, 1.0);
  EXPECT_NEAR(net.temperature_c(b), 45.0, 1e-9);
}

TEST(RcNetwork, SingleBlockSteadyState) {
  // T_ss = T_amb + P * R.
  RcNetwork net(45.0);
  net.add_block({.name = "b", .capacitance = 1e-3, .r_to_ambient = 3.0,
                 .temperature_c = 45.0});
  const std::vector<double> t = net.steady_state({10.0});
  EXPECT_NEAR(t[0], 45.0 + 30.0, 1e-6);
}

TEST(RcNetwork, StepConvergesToSteadyState) {
  RcNetwork net(45.0);
  const std::size_t b = net.add_block(
      {.name = "b", .capacitance = 1e-3, .r_to_ambient = 3.0,
       .temperature_c = 45.0});
  for (int i = 0; i < 200; ++i) {
    net.step({10.0}, 1e-3);
  }
  EXPECT_NEAR(net.temperature_c(b), 75.0, 0.5);
}

TEST(RcNetwork, ExponentialApproach) {
  // After one time constant (RC), ~63 % of the step is covered.
  RcNetwork net(0.0);
  const std::size_t b = net.add_block(
      {.name = "b", .capacitance = 1e-3, .r_to_ambient = 3.0,
       .temperature_c = 0.0});
  net.step({10.0}, 3.0e-3); // dt = RC
  EXPECT_NEAR(net.temperature_c(b), 30.0 * (1.0 - std::exp(-1.0)), 0.5);
}

TEST(RcNetwork, CouplingSpreadsHeat) {
  RcNetwork net(45.0);
  const std::size_t hot = net.add_block(
      {.name = "hot", .capacitance = 1e-3, .r_to_ambient = 3.0,
       .temperature_c = 45.0});
  const std::size_t cold = net.add_block(
      {.name = "cold", .capacitance = 1e-3, .r_to_ambient = 3.0,
       .temperature_c = 45.0});
  net.couple(hot, cold, 1.0);
  const std::vector<double> t = net.steady_state({10.0, 0.0});
  EXPECT_GT(t[hot], t[cold]);
  EXPECT_GT(t[cold], 45.0 + 1.0); // heat leaked across the coupling
}

TEST(RcNetwork, Validation) {
  RcNetwork net(45.0);
  EXPECT_THROW(net.add_block({.name = "bad", .capacitance = 0.0}),
               std::invalid_argument);
  net.add_block({.name = "a"});
  net.add_block({.name = "b"});
  EXPECT_THROW(net.couple(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(net.couple(0, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(net.couple(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(net.step({1.0}, 1e-3), std::invalid_argument); // size mismatch
  EXPECT_THROW(net.step({1.0, 1.0}, 0.0), std::invalid_argument);
}

TEST(Floorplan, CoreHotterThanCachesUnderCoreLoad) {
  CoreFloorplan fp = make_core_floorplan(45.0);
  std::vector<double> power(fp.network.size(), 0.0);
  power[fp.core] = 35.0;
  power[fp.l2] = 4.0;
  const std::vector<double> t = fp.network.steady_state(power);
  EXPECT_GT(t[fp.core], t[fp.l1d]);
  EXPECT_GT(t[fp.l1d], 45.0);
  // A 35 W core should land near the paper's evaluation band.
  EXPECT_GT(t[fp.core], 78.0);
  EXPECT_LT(t[fp.core], 120.0);
}

TEST(Feedback, ConvergesAtModeratePower) {
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70,
                                 hotleakage::VariationConfig{.enabled = false});
  const FeedbackResult r = run_leakage_thermal_loop(model, 25.0, 3.0);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.runaway);
  EXPECT_GT(r.final_core_c, 60.0);
  EXPECT_LT(r.final_core_c, 120.0);
  EXPECT_GT(r.final_total_leakage_w, 1.0);
}

TEST(Feedback, RunsAwayAtExtremePower) {
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70,
                                 hotleakage::VariationConfig{.enabled = false});
  const FeedbackResult r = run_leakage_thermal_loop(model, 200.0, 10.0);
  EXPECT_TRUE(r.runaway);
  EXPECT_FALSE(r.converged);
}

TEST(Feedback, HotterMeansMoreLeakage) {
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70,
                                 hotleakage::VariationConfig{.enabled = false});
  const FeedbackResult cool = run_leakage_thermal_loop(model, 15.0, 2.0);
  const FeedbackResult hot = run_leakage_thermal_loop(model, 35.0, 4.0);
  EXPECT_GT(hot.final_core_c, cool.final_core_c);
  EXPECT_GT(hot.final_total_leakage_w, cool.final_total_leakage_w);
}

TEST(Feedback, LeakageControlCoolsTheCache) {
  // Shaving 90 % of the L1D leakage (a gated cache at high turnoff) must
  // lower its temperature and its final leakage power.
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70,
                                 hotleakage::VariationConfig{.enabled = false});
  FeedbackConfig plain;
  FeedbackConfig controlled;
  controlled.l1d_leakage_scale = 0.1;
  const FeedbackResult a = run_leakage_thermal_loop(model, 28.0, 3.0, plain);
  const FeedbackResult b =
      run_leakage_thermal_loop(model, 28.0, 3.0, controlled);
  EXPECT_LT(b.final_l1d_leakage_w, a.final_l1d_leakage_w);
  EXPECT_LT(b.final_l1d_c, a.final_l1d_c);
}

} // namespace
} // namespace thermal
