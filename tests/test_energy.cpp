// Net energy-savings accounting (paper Sec. 2.3 cost model).
#include <gtest/gtest.h>

#include "leakctl/energy.h"

namespace leakctl {
namespace {

using hotleakage::CacheGeometry;
using hotleakage::LeakageModel;
using hotleakage::TechNode;

struct EnergyFixture {
  EnergyFixture() : model(TechNode::nm70, hotleakage::VariationConfig{.enabled = false}) {
    model.set_operating_point(hotleakage::OperatingPoint::at_celsius(85, 0.9));
    geom = geometry_of(sim::CacheConfig{.size_bytes = 64 * 1024, .assoc = 2,
                                        .line_bytes = 64, .hit_latency = 2});
    const CacheGeometry l2geom = geometry_of(
        sim::CacheConfig{.size_bytes = 2 * 1024 * 1024, .assoc = 2,
                         .line_bytes = 64, .hit_latency = 11});
    power = wattch::PowerParams::for_config(model.tech(), geom, l2geom);
  }

  /// A synthetic run pair: baseline 1M cycles, technique @p tech_cycles,
  /// with @p standby_frac of line-cycles in standby.
  RunPair make_runs(double standby_frac, uint64_t tech_cycles = 1'000'000,
                    uint64_t extra_l2 = 0) const {
    RunPair r;
    r.base_run.cycles = 1'000'000;
    r.base_run.instructions = 1'500'000;
    r.tech_run.cycles = tech_cycles;
    r.tech_run.instructions = 1'500'000;
    r.base_activity.cycles = r.base_run.cycles;
    r.base_activity.core.cycles = r.base_run.cycles;
    r.tech_activity.cycles = r.tech_run.cycles;
    r.tech_activity.core.cycles = r.tech_run.cycles;
    r.tech_activity.l2_accesses = extra_l2;
    const unsigned long long total =
        static_cast<unsigned long long>(geom.lines) * tech_cycles;
    r.control.data_standby_cycles =
        static_cast<unsigned long long>(standby_frac * total);
    r.control.data_active_cycles = total - r.control.data_standby_cycles;
    r.control.tag_standby_cycles = r.control.data_standby_cycles;
    r.control.tag_active_cycles = r.control.data_active_cycles;
    return r;
  }

  LeakageModel model;
  CacheGeometry geom;
  wattch::PowerParams power;
};

TEST(Energy, NoStandbyNoSavings) {
  EnergyFixture s;
  const RunPair runs = s.make_runs(0.0);
  const EnergyBreakdown e =
      compute_energy(s.model, s.geom, s.power, TechniqueParams::drowsy(),
                     runs, 5.6e9);
  EXPECT_NEAR(e.gross_savings_j, 0.0, 1e-9);
  EXPECT_LT(e.net_savings_frac, 0.0); // pays hardware cost for nothing
}

TEST(Energy, FullStandbyApproachesStandbyRatio) {
  EnergyFixture s;
  const RunPair runs = s.make_runs(1.0);
  const EnergyBreakdown e =
      compute_energy(s.model, s.geom, s.power, TechniqueParams::gated_vss(),
                     runs, 5.6e9);
  // Everything except edge logic and the gated residual is saved.
  EXPECT_GT(e.net_savings_frac, 0.75);
  EXPECT_LT(e.net_savings_frac, 1.0);
}

TEST(Energy, GatedSavesMoreLeakageThanDrowsyAtSameTurnoff) {
  EnergyFixture s;
  const RunPair runs = s.make_runs(0.7);
  const EnergyBreakdown drowsy =
      compute_energy(s.model, s.geom, s.power, TechniqueParams::drowsy(),
                     runs, 5.6e9);
  const EnergyBreakdown gated =
      compute_energy(s.model, s.geom, s.power, TechniqueParams::gated_vss(),
                     runs, 5.6e9);
  EXPECT_LT(gated.technique_leakage_j, drowsy.technique_leakage_j);
  EXPECT_GT(gated.net_savings_frac, drowsy.net_savings_frac);
}

TEST(Energy, ExtraRuntimeCostsSavings) {
  EnergyFixture s;
  const EnergyBreakdown fast = compute_energy(
      s.model, s.geom, s.power, TechniqueParams::drowsy(),
      s.make_runs(0.7, 1'000'000), 5.6e9);
  const EnergyBreakdown slow = compute_energy(
      s.model, s.geom, s.power, TechniqueParams::drowsy(),
      s.make_runs(0.7, 1'020'000), 5.6e9);
  EXPECT_GT(slow.extra_dynamic_j, fast.extra_dynamic_j);
  EXPECT_LT(slow.net_savings_frac, fast.net_savings_frac);
  EXPECT_NEAR(slow.perf_loss_frac, 0.02, 1e-9);
}

TEST(Energy, ExtraL2AccessesCostSavings) {
  EnergyFixture s;
  const EnergyBreakdown none = compute_energy(
      s.model, s.geom, s.power, TechniqueParams::gated_vss(),
      s.make_runs(0.7, 1'000'000, 0), 5.6e9);
  const EnergyBreakdown many = compute_energy(
      s.model, s.geom, s.power, TechniqueParams::gated_vss(),
      s.make_runs(0.7, 1'000'000, 50'000), 5.6e9);
  EXPECT_LT(many.net_savings_frac, none.net_savings_frac);
}

TEST(Energy, HigherTemperatureHigherBaseline) {
  EnergyFixture s;
  // Give the technique run a fixed dynamic cost (2 % more cycles): the
  // cost stays constant while the leakage pie grows with temperature, so
  // the net fraction must rise (paper Sec. 5.2).
  const RunPair runs = s.make_runs(0.7, 1'020'000);
  const EnergyBreakdown cool =
      compute_energy(s.model, s.geom, s.power, TechniqueParams::drowsy(),
                     runs, 5.6e9);
  s.model.set_operating_point(hotleakage::OperatingPoint::at_celsius(110, 0.9));
  const EnergyBreakdown hot =
      compute_energy(s.model, s.geom, s.power, TechniqueParams::drowsy(),
                     runs, 5.6e9);
  EXPECT_GT(hot.baseline_leakage_j, 1.5 * cool.baseline_leakage_j);
  // Same dynamic costs but a bigger leakage pie: net fraction rises
  // (paper Sec. 5.2).
  EXPECT_GT(hot.net_savings_frac, cool.net_savings_frac);
}

TEST(Energy, DecayHardwareChargedAgainstSavings) {
  EnergyFixture s;
  const RunPair runs = s.make_runs(0.7);
  const EnergyBreakdown e =
      compute_energy(s.model, s.geom, s.power, TechniqueParams::drowsy(),
                     runs, 5.6e9);
  EXPECT_GT(e.decay_hw_leakage_j, 0.0);
  EXPECT_NEAR(e.net_savings_j,
              e.gross_savings_j - e.decay_hw_leakage_j - e.extra_dynamic_j,
              1e-12);
}

TEST(Energy, GeometryOfCacheConfig) {
  const CacheGeometry g = geometry_of(
      sim::CacheConfig{.size_bytes = 64 * 1024, .assoc = 2, .line_bytes = 64,
                       .hit_latency = 2},
      40);
  EXPECT_EQ(g.lines, 1024u);
  EXPECT_EQ(g.assoc, 2u);
  EXPECT_EQ(g.line_bytes, 64u);
  // 40 - 6 (offset) - 9 (index) = 25 tag bits + 3 state bits.
  EXPECT_EQ(g.tag_bits, 28u);
}

TEST(Energy, RejectsBadClock) {
  EnergyFixture s;
  EXPECT_THROW(compute_energy(s.model, s.geom, s.power,
                              TechniqueParams::drowsy(), s.make_runs(0.5),
                              0.0),
               std::invalid_argument);
}

TEST(Energy, TurnoffRatioPropagated) {
  EnergyFixture s;
  const RunPair runs = s.make_runs(0.6);
  const EnergyBreakdown e =
      compute_energy(s.model, s.geom, s.power, TechniqueParams::drowsy(),
                     runs, 5.6e9);
  EXPECT_NEAR(e.turnoff_ratio, 0.6, 1e-6);
}

} // namespace
} // namespace leakctl
