// Memory-hierarchy plumbing: L1 -> L2 -> memory latencies and activity.
#include <gtest/gtest.h>

#include "sim/hierarchy.h"
#include "sim/processor.h"

namespace sim {
namespace {

struct Fixture {
  wattch::Activity activity;
  ProcessorConfig cfg = ProcessorConfig::table2(11);
  MemoryBackend mem{cfg.memory_latency, &activity};
  CacheLevel l2{cfg.l2, mem, &activity};
  BaselineDataPort dport{cfg.l1d, l2, &activity};
  InstrPort iport{cfg.l1i, l2, &activity};
};

TEST(Hierarchy, L1HitLatency) {
  Fixture f;
  f.dport.access(0x1000, false, 1); // cold miss
  EXPECT_EQ(f.dport.access(0x1000, false, 2), 2u);
}

TEST(Hierarchy, L1MissL2HitLatency) {
  Fixture f;
  f.dport.access(0x1000, false, 1); // fills L2 and L1
  // Evict from L1 (2-way, 512 sets -> same-set stride is 512*64).
  const uint64_t stride = 512 * 64;
  f.dport.access(0x1000 + stride, false, 2);
  f.dport.access(0x1000 + 2 * stride, false, 3);
  // 0x1000 now out of L1 but still in L2: 2 + 11.
  EXPECT_EQ(f.dport.access(0x1000, false, 4), 13u);
}

TEST(Hierarchy, ColdMissGoesToMemory) {
  Fixture f;
  EXPECT_EQ(f.dport.access(0x900000, false, 1), 2u + 11u + 100u);
}

TEST(Hierarchy, IFetchLatencies) {
  Fixture f;
  EXPECT_EQ(f.iport.fetch(0x400000, 1), 1u + 11u + 100u); // cold
  EXPECT_EQ(f.iport.fetch(0x400000, 2), 1u);              // hit
}

TEST(Hierarchy, ActivityCountsAccesses) {
  Fixture f;
  f.dport.access(0x1000, false, 1);
  f.dport.access(0x1000, true, 2);
  EXPECT_EQ(f.activity.l1_reads, 1ull);
  EXPECT_EQ(f.activity.l1_writes, 1ull);
  EXPECT_EQ(f.activity.l2_accesses, 1ull);     // only the miss
  EXPECT_EQ(f.activity.memory_accesses, 1ull); // cold L2 miss
}

TEST(Hierarchy, WritebackUpdatesL2) {
  Fixture f;
  f.l2.writeback(0x5000, 1);
  EXPECT_EQ(f.activity.l2_accesses, 1ull);
  // Line is now resident in L2: a later access is an L2 hit.
  EXPECT_EQ(f.l2.access(0x5000, false, 2), 11u);
}

TEST(Hierarchy, DirtyL1VictimWrittenToL2) {
  Fixture f;
  const uint64_t stride = 512 * 64;
  f.dport.access(0x1000, true, 1); // dirty line
  f.dport.access(0x1000 + stride, false, 2);
  f.dport.access(0x1000 + 2 * stride, false, 3); // evicts dirty 0x1000
  // Writeback keeps L2 coherent: re-fetch is an L2 hit, not memory.
  EXPECT_EQ(f.dport.access(0x1000, false, 4), 13u);
}

TEST(Hierarchy, NullActivityAllowed) {
  ProcessorConfig cfg = ProcessorConfig::table2(5);
  MemoryBackend mem(cfg.memory_latency, nullptr);
  CacheLevel l2(cfg.l2, mem, nullptr);
  BaselineDataPort dport(cfg.l1d, l2, nullptr);
  EXPECT_NO_THROW(dport.access(0x1234, false, 1));
}

TEST(Hierarchy, L2LatencyConfigurable) {
  for (unsigned lat : {5u, 8u, 11u, 17u}) {
    ProcessorConfig cfg = ProcessorConfig::table2(lat);
    MemoryBackend mem(cfg.memory_latency, nullptr);
    CacheLevel l2(cfg.l2, mem, nullptr);
    BaselineDataPort dport(cfg.l1d, l2, nullptr);
    dport.access(0x1000, false, 1);
    const uint64_t stride = 512 * 64;
    dport.access(0x1000 + stride, false, 2);
    dport.access(0x1000 + 2 * stride, false, 3);
    EXPECT_EQ(dport.access(0x1000, false, 4), 2u + lat);
  }
}

TEST(Hierarchy, Table2Defaults) {
  const ProcessorConfig cfg = ProcessorConfig::table2();
  EXPECT_EQ(cfg.l1d.size_bytes, 64u * 1024u);
  EXPECT_EQ(cfg.l1d.assoc, 2u);
  EXPECT_EQ(cfg.l1d.line_bytes, 64u);
  EXPECT_EQ(cfg.l1d.hit_latency, 2u);
  EXPECT_EQ(cfg.l1i.hit_latency, 1u);
  EXPECT_EQ(cfg.l2.size_bytes, 2u * 1024u * 1024u);
  EXPECT_EQ(cfg.l2.hit_latency, 11u);
  EXPECT_EQ(cfg.memory_latency, 100u);
  EXPECT_EQ(cfg.core.ruu_size, 80u);
  EXPECT_EQ(cfg.core.lsq_size, 40u);
  EXPECT_EQ(cfg.core.issue_width, 4u);
  EXPECT_DOUBLE_EQ(cfg.clock_hz, 5.6e9);
}

} // namespace
} // namespace sim
