// Multi-tenant differential harness: the properties that make the
// interleaved/colored machinery trustworthy.
//
//   1. N=1 bit identity: a one-tenant TenantConfig is a no-op — every
//      deterministic payload field equals the plain single-stream run,
//      across techniques, seeds, and quanta.
//   2. Tenant-permutation invariance: relabeling the address tags
//      permutes the per-tenant stats and changes *nothing else* — global
//      timing, control totals, and energy are bit-identical, colored or
//      not, at one thread and many.
//   3. validate() names the offending field for every multi-tenant
//      misconfiguration, and DecayPolicy::tenant_color enforces its
//      placement rules (shared level only, enough tenants, enough sets).
//   4. ControlledCache coloring semantics: partition gating is driven by
//      context switches, not decay intervals, and books per-tenant.
//   5. Schema-4 report plumbing: the "tenants" section round-trips and
//      multi_tenant_sweep populates it for every cell.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "harness/batched.h"
#include "harness/experiment.h"
#include "harness/report_json.h"
#include "harness/sweep.h"
#include "leakctl/controlled_cache.h"
#include "sim/processor.h"
#include "sim/tenant.h"

namespace harness {
namespace {

ExperimentConfig quick_config() {
  return ExperimentConfig::make().instructions(60'000).variation(false);
}

/// Plain L1-D over a controlled drowsy L2 — the shared-level shape the
/// multi-tenant scenarios run on.  Built by struct mutation because
/// tenant_color only validates once tenants.count is set.
ExperimentConfig shared_l2_config(leakctl::DecayPolicy policy,
                                  uint64_t l2_interval = 65536) {
  ExperimentConfig cfg = quick_config();
  const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
  cfg.technique = leakctl::TechniqueParams::drowsy();
  cfg.levels = {
      {.name = "l1d", .geometry = pcfg.l1d, .control = std::nullopt},
      {.name = "l2",
       .geometry = pcfg.l2,
       .control = LevelControl{leakctl::TechniqueParams::drowsy(), policy,
                               l2_interval}}};
  return cfg;
}

ExperimentConfig multi_tenant(ExperimentConfig cfg, unsigned count,
                              uint64_t quantum,
                              std::vector<unsigned> tags = {}) {
  cfg.tenants.count = count;
  cfg.tenants.quantum = quantum;
  cfg.tenants.co_benchmarks = {"mcf", "gzip", "twolf"};
  cfg.tenants.tenant_tags = std::move(tags);
  return cfg;
}

void expect_tenant_stats_equal(const leakctl::TenantStats& a,
                               const leakctl::TenantStats& b) {
  a.for_each_field([&](const char* name, unsigned long long va) {
    unsigned long long vb = 0;
    b.for_each_field([&](const char* n2, unsigned long long v2) {
      if (std::string(name) == n2) {
        vb = v2;
      }
    });
    EXPECT_EQ(va, vb) << "TenantStats::" << name;
  });
}

/// Every deterministic tenant-blind payload field, exact == on doubles.
void expect_payload_identical(const ExperimentResult& a,
                              const ExperimentResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.base_run.cycles, b.base_run.cycles);
  EXPECT_EQ(a.base_run.instructions, b.base_run.instructions);
  EXPECT_EQ(a.tech_run.cycles, b.tech_run.cycles);
  EXPECT_EQ(a.tech_run.instructions, b.tech_run.instructions);
  EXPECT_EQ(a.tech_run.loads, b.tech_run.loads);
  EXPECT_EQ(a.tech_run.stores, b.tech_run.stores);
  EXPECT_EQ(a.tech_run.branch.direction_mispredicts,
            b.tech_run.branch.direction_mispredicts);
  EXPECT_EQ(a.tech_run.branch.btb_misses, b.tech_run.branch.btb_misses);
  a.control.for_each_field([&](const char* name, unsigned long long va) {
    unsigned long long vb = 0;
    b.control.for_each_field([&](const char* n2, unsigned long long v2) {
      if (std::string(name) == n2) {
        vb = v2;
      }
    });
    EXPECT_EQ(va, vb) << "ControlStats::" << name;
  });
  EXPECT_EQ(a.energy.baseline_leakage_j, b.energy.baseline_leakage_j);
  EXPECT_EQ(a.energy.technique_leakage_j, b.energy.technique_leakage_j);
  EXPECT_EQ(a.energy.extra_dynamic_j, b.energy.extra_dynamic_j);
  EXPECT_EQ(a.energy.net_savings_j, b.energy.net_savings_j);
  EXPECT_EQ(a.energy.net_savings_frac, b.energy.net_savings_frac);
  EXPECT_EQ(a.energy.perf_loss_frac, b.energy.perf_loss_frac);
  EXPECT_EQ(a.energy.turnoff_ratio, b.energy.turnoff_ratio);
  EXPECT_EQ(a.hierarchy.total_baseline_leakage_j,
            b.hierarchy.total_baseline_leakage_j);
  EXPECT_EQ(a.hierarchy.total_technique_leakage_j,
            b.hierarchy.total_technique_leakage_j);
  EXPECT_EQ(a.hierarchy.total_net_savings_j,
            b.hierarchy.total_net_savings_j);
  EXPECT_EQ(a.base_l1d_miss_rate, b.base_l1d_miss_rate);
}

// --- property 1: N=1 bit identity -------------------------------------

TEST(MultiTenant, SingleTenantBitIdenticalToPlainRun) {
  const workload::BenchmarkProfile prof = workload::profile_by_name("gcc");
  const std::vector<leakctl::TechniqueParams> techs = {
      leakctl::TechniqueParams::drowsy(), leakctl::TechniqueParams::gated_vss()};
  // Quantum beyond the trace and quantum far below it: with one stream
  // there is nothing to switch to, so both degenerate to the plain path.
  const std::vector<uint64_t> quanta = {uint64_t{1} << 30, 512};
  for (const leakctl::TechniqueParams& tech : techs) {
    for (const uint64_t seed : {1ull, 7ull}) {
      ExperimentConfig plain = quick_config();
      plain.technique = tech;
      plain.seed = seed;
      clear_baseline_cache();
      const ExperimentResult want = run_experiment(prof, plain);
      EXPECT_TRUE(want.tenants.empty());
      for (const uint64_t quantum : quanta) {
        ExperimentConfig mt = plain;
        mt.tenants.count = 1;
        mt.tenants.quantum = quantum;
        clear_baseline_cache();
        const ExperimentResult got = run_experiment(prof, mt);
        expect_payload_identical(got, want);
        // The one tenant owns the whole books.
        ASSERT_EQ(got.tenants.size(), 1u);
        EXPECT_EQ(got.tenants[0].accesses,
                  got.control.hits + got.control.slow_hits +
                      got.control.induced_misses + got.control.true_misses);
        EXPECT_EQ(got.tenants[0].switch_outs, 0ull);
      }
    }
  }
}

TEST(MultiTenant, SingleTenantHierarchyBitIdenticalToPlainRun) {
  // Same property through the explicit-hierarchy path: the shared
  // controlled L2 books the stats, and the totals still match the
  // tenant-free run exactly.
  const workload::BenchmarkProfile prof = workload::profile_by_name("mcf");
  const ExperimentConfig plain = shared_l2_config(leakctl::DecayPolicy::noaccess);
  clear_baseline_cache();
  const ExperimentResult want = run_experiment(prof, plain);
  ExperimentConfig mt = plain;
  mt.tenants.count = 1;
  mt.tenants.quantum = 4096;
  clear_baseline_cache();
  const ExperimentResult got = run_experiment(prof, mt);
  expect_payload_identical(got, want);
  ASSERT_EQ(got.tenants.size(), 1u);
  EXPECT_GT(got.tenants[0].fills, 0ull);
}

// --- property 2: tenant-permutation invariance ------------------------

// Relabeling tenants through tenant_tags moves each stream's address
// space to a different tag (and, colored, a different partition of equal
// size), which must permute the per-tenant books and change nothing
// global.  Checked for the tag-blind noaccess L2 and the tag-aware
// colored L2.
void permutation_invariance(leakctl::DecayPolicy policy) {
  const workload::BenchmarkProfile prof = workload::profile_by_name("gcc");
  const std::vector<unsigned> perm = {2, 0, 3, 1};
  const ExperimentConfig base = shared_l2_config(policy);
  const ExperimentConfig id = multi_tenant(base, 4, 5000);
  const ExperimentConfig pm = multi_tenant(base, 4, 5000, perm);
  clear_baseline_cache();
  const ExperimentResult a = run_experiment(prof, id);
  clear_baseline_cache();
  const ExperimentResult b = run_experiment(prof, pm);
  expect_payload_identical(a, b);
  ASSERT_EQ(a.tenants.size(), 4u);
  ASSERT_EQ(b.tenants.size(), 4u);
  uint64_t slow_hits = 0, induced = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    // Stream i carries tag i in the identity run and tag perm[i] in the
    // permuted run; its books move with the tag.
    expect_tenant_stats_equal(a.tenants[i], b.tenants[perm[i]]);
    EXPECT_GT(a.tenants[i].accesses, 0ull) << "tenant " << i;
    slow_hits += a.tenants[i].slow_hits;
    induced += a.tenants[i].induced_misses;
  }
  // Per-tenant books partition the shared L2's control events.
  ASSERT_EQ(a.hierarchy.levels.size(), 2u);
  EXPECT_EQ(slow_hits, a.hierarchy.levels[1].slow_hits);
  EXPECT_EQ(induced, a.hierarchy.levels[1].induced_misses);
}

TEST(MultiTenant, PermutationInvarianceUncolored) {
  permutation_invariance(leakctl::DecayPolicy::noaccess);
}

TEST(MultiTenant, PermutationInvarianceColored) {
  permutation_invariance(leakctl::DecayPolicy::tenant_color);
}

TEST(MultiTenant, SweepThreadCountDoesNotPerturbResults) {
  // The engine half of the differential harness: the same two cells
  // (identity and permuted tags, colored L2) through SweepRunner at one
  // worker and at four are bit-identical to scalar run_experiment.
  const workload::BenchmarkProfile prof = workload::profile_by_name("gcc");
  const ExperimentConfig base = shared_l2_config(leakctl::DecayPolicy::tenant_color);
  const std::vector<ExperimentConfig> cfgs = {
      multi_tenant(base, 4, 5000), multi_tenant(base, 4, 5000, {2, 0, 3, 1})};
  std::vector<ExperimentResult> scalar;
  for (const ExperimentConfig& cfg : cfgs) {
    clear_baseline_cache();
    scalar.push_back(run_experiment(prof, cfg));
  }
  for (const unsigned threads : {1u, 4u}) {
    SweepRunner runner(SweepOptions{.threads = threads});
    for (const ExperimentConfig& cfg : cfgs) {
      runner.submit(prof, cfg);
    }
    clear_baseline_cache();
    const std::vector<CellResult<ExperimentResult>> rows = runner.run();
    ASSERT_EQ(rows.size(), cfgs.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_TRUE(rows[i].ok()) << rows[i].error();
      // Multi-tenant cells must have taken the scalar path.
      EXPECT_EQ(rows[i].info.batch, 0u);
      expect_payload_identical(rows[i].value, scalar[i]);
      ASSERT_EQ(rows[i].value.tenants.size(), scalar[i].tenants.size());
      for (std::size_t t = 0; t < scalar[i].tenants.size(); ++t) {
        expect_tenant_stats_equal(rows[i].value.tenants[t],
                                  scalar[i].tenants[t]);
      }
    }
  }
}

// --- property 3: validate() names the field ---------------------------

std::string validate_error(const ExperimentConfig& cfg) {
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

void expect_contains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "expected \"" << needle << "\" in:\n" << haystack;
}

TEST(MultiTenantValidate, RejectsLeftoversWhileDisabled) {
  ExperimentConfig cfg = quick_config();
  cfg.tenants.co_benchmarks = {"mcf"};
  expect_contains(validate_error(cfg),
                  "ExperimentConfig::tenants.co_benchmarks is set but "
                  "tenants.count == 0");
  cfg = quick_config();
  cfg.tenants.tenant_tags = {0};
  expect_contains(validate_error(cfg),
                  "ExperimentConfig::tenants.tenant_tags is set but "
                  "tenants.count == 0");
}

TEST(MultiTenantValidate, RejectsZeroQuantum) {
  ExperimentConfig cfg = multi_tenant(quick_config(), 2, 1);
  cfg.tenants.quantum = 0;
  expect_contains(validate_error(cfg),
                  "ExperimentConfig::tenants.quantum must be a positive");
}

TEST(MultiTenantValidate, RejectsTooManyTenants) {
  const ExperimentConfig cfg =
      multi_tenant(quick_config(), sim::kMaxTenants + 1, 4096);
  const std::string msg = validate_error(cfg);
  expect_contains(msg, "ExperimentConfig::tenants.count = " +
                           std::to_string(sim::kMaxTenants + 1));
}

TEST(MultiTenantValidate, RejectsUnknownCoBenchmark) {
  ExperimentConfig cfg = multi_tenant(quick_config(), 2, 4096);
  cfg.tenants.co_benchmarks = {"not-a-benchmark"};
  const std::string msg = validate_error(cfg);
  expect_contains(msg, "ExperimentConfig::tenants.co_benchmarks");
  expect_contains(msg, "not-a-benchmark");
}

TEST(MultiTenantValidate, RejectsBadTagPermutations) {
  ExperimentConfig cfg = multi_tenant(quick_config(), 3, 4096, {0, 1});
  expect_contains(validate_error(cfg),
                  "ExperimentConfig::tenants.tenant_tags has 2 entries but "
                  "tenants.count = 3");
  cfg = multi_tenant(quick_config(), 3, 4096, {0, 1, 1});
  expect_contains(validate_error(cfg), "must be a permutation");
  cfg = multi_tenant(quick_config(), 3, 4096, {0, 1, 3});
  expect_contains(validate_error(cfg), "must be a permutation");
}

TEST(MultiTenantValidate, ColoringNeedsAnExplicitHierarchy) {
  ExperimentConfig cfg = quick_config();
  cfg.policy = leakctl::DecayPolicy::tenant_color;
  expect_contains(validate_error(cfg), "needs an explicit");
}

TEST(MultiTenantValidate, ColoringRejectedOnThePrivateOutermostLevel) {
  ExperimentConfig cfg = multi_tenant(quick_config(), 2, 4096);
  cfg.levels = cfg.legacy_levels();
  cfg.levels[0].control =
      LevelControl{leakctl::TechniqueParams::drowsy(),
                   leakctl::DecayPolicy::tenant_color, 65536};
  const std::string msg = validate_error(cfg);
  expect_contains(msg, "levels[0]");
  expect_contains(msg, "outermost");
}

TEST(MultiTenantValidate, ColoringNeedsAtLeastTwoTenants) {
  const ExperimentConfig cfg =
      shared_l2_config(leakctl::DecayPolicy::tenant_color);
  expect_contains(validate_error(cfg), "tenants.count >= 2");
}

TEST(MultiTenantValidate, ColoringNeedsOneColorPerTenant) {
  ExperimentConfig cfg = multi_tenant(
      shared_l2_config(leakctl::DecayPolicy::tenant_color), 64, 4096);
  // Crank the L2's associativity until only 32 sets remain: 64 tenants
  // no longer fit one color each.
  cfg.levels[1].geometry.assoc = cfg.levels[1].geometry.lines() / 32;
  const std::string msg = validate_error(cfg);
  expect_contains(msg, "exceeds the level's 32 sets");
}

// --- property 4: ControlledCache coloring semantics -------------------

struct MtFixture {
  explicit MtFixture(leakctl::TechniqueParams tech, unsigned tenants) {
    sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
    // 8 sets x 2 ways; a colossal decay interval proves that partition
    // gating is switch-driven, never counter-driven.
    cfg.cache = {.size_bytes = 1024, .assoc = 2, .line_bytes = 64,
                 .hit_latency = 2};
    cfg.technique = tech;
    cfg.policy = leakctl::DecayPolicy::tenant_color;
    cfg.decay_interval = uint64_t{1} << 40;
    cfg.tenants = tenants;
    mem = std::make_unique<sim::MemoryBackend>(pcfg.memory_latency, &activity);
    l2 = std::make_unique<sim::CacheLevel>(pcfg.l2, *mem, &activity);
    cc = std::make_unique<leakctl::ControlledCache>(cfg, *l2, &activity);
  }

  leakctl::ControlledCacheConfig cfg;
  wattch::Activity activity;
  std::unique_ptr<sim::MemoryBackend> mem;
  std::unique_ptr<sim::CacheLevel> l2;
  std::unique_ptr<leakctl::ControlledCache> cc;
};

TEST(ControlledCacheColoring, SwitchDrowsesTheOutgoingPartition) {
  MtFixture f(leakctl::TechniqueParams::drowsy(), 2);
  const uint64_t a0 = 512;                        // tenant 0
  const uint64_t a1 = sim::tenant_bits(1) | 512;  // tenant 1, same raw line
  f.cc->access(a0, false, 10); // cold fill in tenant 0's colors
  f.cc->access(a1, false, 20); // context switch: tenant 0 drowsed
  // Tenant 0 returns: its line survived in standby (state-preserving),
  // so this is a slow hit at the decayed-tags wake penalty (2 + 3) —
  // despite the decay interval never elapsing.
  EXPECT_EQ(f.cc->access(a0, false, 30), 5u);
  const auto& ts = f.cc->tenant_stats();
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].accesses, 2ull);
  EXPECT_EQ(ts[0].slow_hits, 1ull);
  EXPECT_EQ(ts[0].fills, 1ull);
  EXPECT_EQ(ts[0].switch_outs, 1ull);
  EXPECT_EQ(ts[1].accesses, 1ull);
  EXPECT_EQ(ts[1].fills, 1ull);
  EXPECT_EQ(ts[1].switch_outs, 1ull);
}

TEST(ControlledCacheColoring, GatedSwitchDestroysTheOutgoingPartition) {
  MtFixture f(leakctl::TechniqueParams::gated_vss(), 2);
  const uint64_t a0 = 512;
  const uint64_t a1 = sim::tenant_bits(1) | 512;
  f.cc->access(a0, false, 10);
  f.cc->access(a1, false, 20);
  // Gated-Vss loses the data at switch-out: the return trip is an
  // induced miss served from the next level (2 + 11).
  EXPECT_EQ(f.cc->access(a0, false, 30), 13u);
  EXPECT_EQ(f.cc->tenant_stats()[0].induced_misses, 1ull);
  EXPECT_EQ(f.cc->tenant_stats()[0].slow_hits, 0ull);
}

TEST(ControlledCacheColoring, PartitionsAreDisjoint) {
  // Two tenants touching the *same* raw addresses never alias: the
  // color remap keeps every fill inside the owner's half of the sets.
  MtFixture f(leakctl::TechniqueParams::drowsy(), 2);
  for (uint64_t line = 0; line < 16; ++line) {
    f.cc->access(line * 64, false, 10 + line);
  }
  for (uint64_t line = 0; line < 16; ++line) {
    f.cc->access(sim::tenant_bits(1) | (line * 64), false, 100 + line);
  }
  const auto& ts = f.cc->tenant_stats();
  // Each tenant got 8 of the 16 lines' worth of colors (4 of 8 sets).
  EXPECT_EQ(ts[0].accesses, 16ull);
  EXPECT_EQ(ts[1].accesses, 16ull);
  // Tenant 1's fills never evicted tenant 0's partition: re-touching
  // tenant 0's hot half hits (slow, post-switch) instead of missing.
  unsigned survivors = 0;
  for (uint64_t line = 8; line < 16; ++line) {
    const unsigned lat = f.cc->access(line * 64, false, 200 + line);
    if (lat < 13) { // anything but a round trip to the next level
      ++survivors;
    }
  }
  EXPECT_GT(survivors, 0u);
}

TEST(ControlledCacheColoring, RejectsOutOfRangeTenantTags) {
  MtFixture f(leakctl::TechniqueParams::drowsy(), 2);
  EXPECT_THROW(f.cc->access(sim::tenant_bits(2) | 512, false, 10),
               std::out_of_range);
}

TEST(ControlledCacheColoring, ConstructorRejectsImpossiblePartitions) {
  const auto make = [](unsigned tenants, leakctl::DecayPolicy policy) {
    MtFixture f(leakctl::TechniqueParams::drowsy(), 2);
    leakctl::ControlledCacheConfig cfg = f.cfg;
    cfg.policy = policy;
    cfg.tenants = tenants;
    wattch::Activity activity;
    return std::make_unique<leakctl::ControlledCache>(cfg, *f.l2, &activity);
  };
  EXPECT_THROW(make(sim::kMaxTenants + 1, leakctl::DecayPolicy::noaccess),
               std::invalid_argument);
  EXPECT_THROW(make(0, leakctl::DecayPolicy::tenant_color), std::invalid_argument);
  EXPECT_THROW(make(9, leakctl::DecayPolicy::tenant_color), // 9 tenants, 8 sets
               std::invalid_argument);
}

// --- property 5: schema-4 report plumbing -----------------------------

TEST(MultiTenant, TenantStatsJsonGoldenAndRoundTrip) {
  leakctl::TenantStats ts;
  ts.accesses = 10;
  ts.hits = 4;
  ts.slow_hits = 3;
  ts.induced_misses = 2;
  ts.true_misses = 1;
  ts.fills = 5;
  ts.switch_outs = 6;
  ts.colors = 7;
  ts.occupancy_line_cycles = 8;
  ts.standby_line_cycles = 9;
  // The exact serialized text is an interface (scripts and the schema
  // checker read it); a field rename or reorder must show up here.
  EXPECT_EQ(to_json(ts).dump(),
            "{\"accesses\":10,\"hits\":4,\"slow_hits\":3,"
            "\"induced_misses\":2,\"true_misses\":1,\"fills\":5,"
            "\"switch_outs\":6,\"colors\":7,\"occupancy_line_cycles\":8,"
            "\"standby_line_cycles\":9}");

  ExperimentResult r;
  r.benchmark = "gcc";
  r.tenants = {ts, leakctl::TenantStats{}};
  const json::Value doc = json::Value::parse(to_json(r).dump());
  ASSERT_TRUE(doc.contains("tenants"));
  const auto& rows = doc.at("tenants").as_array();
  ASSERT_EQ(rows.size(), 2u);
  // Rows are indexed for humans reading the report...
  EXPECT_EQ(rows[0].at("tenant").as_double(), 0.0);
  EXPECT_EQ(rows[1].at("tenant").as_double(), 1.0);
  // ...and round-trip losslessly for the journal.
  const std::vector<leakctl::TenantStats> back =
      tenant_stats_from_json(doc.at("tenants"));
  ASSERT_EQ(back.size(), 2u);
  expect_tenant_stats_equal(back[0], ts);
  expect_tenant_stats_equal(back[1], leakctl::TenantStats{});
}

TEST(MultiTenant, ResultJsonAlwaysCarriesTheTenantsSection) {
  // Schema 4: the section is present (empty) even for single-tenant
  // rows, so consumers need no presence probes.
  const json::Value v = to_json(ExperimentResult{});
  ASSERT_TRUE(v.contains("tenants"));
  EXPECT_TRUE(v.at("tenants").as_array().empty());
  EXPECT_EQ(kReportSchemaVersion, 4);
}

TEST(MultiTenant, SingleTenantConfigHashesUnchanged) {
  // The "tenants" config section only exists when enabled, so every
  // pre-multi-tenant journal and perf baseline keeps its hash.
  const ExperimentConfig cfg = quick_config();
  ExperimentConfig off = cfg;
  off.tenants = TenantConfig{};
  EXPECT_EQ(config_hash(cfg), config_hash(off));
  EXPECT_FALSE(to_json(cfg).contains("tenants"));
  ExperimentConfig on = cfg;
  on.tenants.count = 2;
  on.tenants.co_benchmarks = {"mcf"};
  EXPECT_NE(config_hash(cfg), config_hash(on));
  // Identity tags hash like no tags at all: same schedule, same run.
  ExperimentConfig tagged = on;
  tagged.tenants.tenant_tags = {0, 1};
  EXPECT_EQ(config_hash(on), config_hash(tagged));
  ExperimentConfig permuted = on;
  permuted.tenants.tenant_tags = {1, 0};
  EXPECT_NE(config_hash(on), config_hash(permuted));
}

TEST(MultiTenant, MultiTenantSweepPopulatesEveryCell) {
  ExperimentConfig base = shared_l2_config(leakctl::DecayPolicy::tenant_color);
  base.instructions = 30'000;
  clear_baseline_cache();
  const std::vector<MultiTenantCell> cells =
      multi_tenant_sweep(base, {{"gcc", "mcf"}, {"gzip", "twolf", "vpr"}},
                         {2000, 8000}, SweepOptions{.threads = 2});
  ASSERT_EQ(cells.size(), 4u); // mix-major, quantum-minor
  EXPECT_EQ(cells[0].mix, "gcc+mcf");
  EXPECT_EQ(cells[0].quantum, 2000ull);
  EXPECT_EQ(cells[1].mix, "gcc+mcf");
  EXPECT_EQ(cells[1].quantum, 8000ull);
  EXPECT_EQ(cells[2].mix, "gzip+twolf+vpr");
  EXPECT_EQ(cells[3].quantum, 8000ull);
  for (const MultiTenantCell& cell : cells) {
    const std::size_t n = cell.mix.find("vpr") == std::string::npos ? 2 : 3;
    ASSERT_EQ(cell.result.tenants.size(), n) << cell.mix;
    EXPECT_EQ(cell.result.config.tenants.quantum, cell.quantum);
    uint64_t colors = 0;
    for (const leakctl::TenantStats& ts : cell.result.tenants) {
      EXPECT_GT(ts.accesses, 0ull);
      colors += ts.colors;
    }
    // tenant_color hands out every set exactly once.
    EXPECT_EQ(colors, cell.result.config.levels[1].geometry.sets());
  }
}

} // namespace
} // namespace harness
