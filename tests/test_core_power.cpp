// Per-structure Wattch core-energy model.
#include <gtest/gtest.h>

#include "sim/processor.h"
#include "wattch/core_power.h"
#include "workload/generator.h"

namespace wattch {
namespace {

using hotleakage::TechNode;
using hotleakage::tech_params;

TEST(CorePower, AllEnergiesPositive) {
  const CoreEnergyParams p =
      CoreEnergyParams::for_tech(tech_params(TechNode::nm70));
  EXPECT_GT(p.fetch_per_inst, 0.0);
  EXPECT_GT(p.bpred_access, 0.0);
  EXPECT_GT(p.rename_per_inst, 0.0);
  EXPECT_GT(p.window_insert, 0.0);
  EXPECT_GT(p.window_wakeup, 0.0);
  EXPECT_GT(p.lsq_insert, 0.0);
  EXPECT_GT(p.regfile_read, 0.0);
  EXPECT_GT(p.regfile_write, 0.0);
  EXPECT_GT(p.int_alu_op, 0.0);
  EXPECT_GT(p.result_bus, 0.0);
  EXPECT_GT(p.clock_per_cycle, 0.0);
}

TEST(CorePower, RelativeMagnitudes) {
  const CoreEnergyParams p =
      CoreEnergyParams::for_tech(tech_params(TechNode::nm70));
  EXPECT_GT(p.mult_op, p.int_alu_op);     // multiplier >> ALU
  EXPECT_GT(p.clock_per_cycle, p.window_insert); // clock dominates
  EXPECT_GT(p.regfile_write, 0.5 * p.regfile_read);
}

TEST(CorePower, ScalesWithTechnology) {
  const CoreEnergyParams p70 =
      CoreEnergyParams::for_tech(tech_params(TechNode::nm70));
  const CoreEnergyParams p180 =
      CoreEnergyParams::for_tech(tech_params(TechNode::nm180));
  // Older node: bigger devices, higher supply -> more energy per event.
  EXPECT_GT(p180.clock_per_cycle, p70.clock_per_cycle);
  EXPECT_GT(p180.int_alu_op, p70.int_alu_op);
}

TEST(CorePower, ActivityEnergyLinearAndAdditive) {
  const CoreEnergyParams p =
      CoreEnergyParams::for_tech(tech_params(TechNode::nm70));
  CoreActivity a;
  a.fetched = 100;
  a.cycles = 50;
  const double e1 = a.energy(p);
  CoreActivity b = a;
  b += a;
  EXPECT_NEAR(b.energy(p), 2.0 * e1, 1e-18);
  EXPECT_EQ(b.fetched, 200ull);
  EXPECT_EQ(b.cycles, 100ull);
}

TEST(CorePower, SimulationPopulatesCounters) {
  sim::ProcessorConfig cfg = sim::ProcessorConfig::table2(11);
  sim::Processor proc(cfg);
  sim::BaselineDataPort dport(cfg.l1d, proc.l2(), &proc.activity());
  workload::Generator gen(workload::profile_by_name("gcc"), 1);
  const sim::RunStats st = proc.run(gen, dport, 50'000);

  const CoreActivity& c = proc.activity().core;
  EXPECT_EQ(c.fetched, st.instructions);
  EXPECT_EQ(c.renamed, st.instructions);
  EXPECT_EQ(c.window_inserts, st.instructions);
  EXPECT_EQ(c.lsq_inserts, st.loads + st.stores);
  EXPECT_EQ(c.branches, st.branch.branches);
  EXPECT_GT(c.regfile_reads, st.instructions / 2); // ~1.5 operands/inst
  EXPECT_GT(c.regfile_writes, 0ull);
  EXPECT_EQ(c.cycles, st.cycles);
  // Decomposition covers every instruction exactly once.
  EXPECT_EQ(c.int_alu_ops + c.mult_ops + c.fp_ops, st.instructions);
}

TEST(CorePower, PerCycleEnergyInCalibratedBand) {
  // The net-savings accounting was validated against ~0.5-0.9 nJ/cycle of
  // core dynamic energy; drifting far outside this band would silently
  // re-weight every figure.
  sim::ProcessorConfig cfg = sim::ProcessorConfig::table2(11);
  sim::Processor proc(cfg);
  sim::BaselineDataPort dport(cfg.l1d, proc.l2(), &proc.activity());
  workload::Generator gen(workload::profile_by_name("gzip"), 1);
  const sim::RunStats st = proc.run(gen, dport, 100'000);
  const CoreEnergyParams p =
      CoreEnergyParams::for_tech(tech_params(TechNode::nm70));
  const double nj_per_cycle =
      proc.activity().core.energy(p) / static_cast<double>(st.cycles) * 1e9;
  EXPECT_GT(nj_per_cycle, 0.4);
  EXPECT_LT(nj_per_cycle, 1.2);
}

TEST(CorePower, ClockFloorDominatesWhenStalled) {
  // A low-IPC (memory-bound) run spends relatively more of its energy in
  // the unconditional clock term than a high-IPC run.
  const CoreEnergyParams p =
      CoreEnergyParams::for_tech(tech_params(TechNode::nm70));
  auto clock_share = [&](const char* bench) {
    sim::ProcessorConfig cfg = sim::ProcessorConfig::table2(11);
    sim::Processor proc(cfg);
    sim::BaselineDataPort dport(cfg.l1d, proc.l2(), &proc.activity());
    workload::Generator gen(workload::profile_by_name(bench), 1);
    proc.run(gen, dport, 100'000);
    const CoreActivity& c = proc.activity().core;
    return static_cast<double>(c.cycles) * p.clock_per_cycle / c.energy(p);
  };
  EXPECT_GT(clock_share("mcf"), clock_share("gzip"));
}

} // namespace
} // namespace wattch
