// Cell library: structure of the built-in cells.
#include <gtest/gtest.h>

#include "hotleakage/cell.h"

namespace hotleakage {
namespace {

const TechParams& t70() { return tech_params(TechNode::nm70); }

TEST(Cells, InverterStructure) {
  const Cell c = cells::inverter(t70());
  EXPECT_TRUE(c.is_gate);
  EXPECT_EQ(c.n_inputs, 1);
  EXPECT_EQ(c.n_nmos, 1);
  EXPECT_EQ(c.n_pmos, 1);
  // Complementary: exactly one network off per input value.
  for (uint32_t in : {0u, 1u}) {
    EXPECT_NE(c.pdn.conducts(in, DeviceType::nmos),
              c.pun.conducts(in, DeviceType::pmos));
  }
}

TEST(Cells, Nand2TruthTable) {
  // The paper's worked example (Fig. 2): PDN off for 3 of 4 combos.
  const Cell c = cells::nand2(t70());
  int pdn_off = 0;
  int pun_off = 0;
  for (uint32_t in = 0; in < 4; ++in) {
    const bool pdn_on = c.pdn.conducts(in, DeviceType::nmos);
    const bool pun_on = c.pun.conducts(in, DeviceType::pmos);
    EXPECT_NE(pdn_on, pun_on) << "combo " << in; // complementary
    pdn_off += pdn_on ? 0 : 1;
    pun_off += pun_on ? 0 : 1;
  }
  EXPECT_EQ(pdn_off, 3);
  EXPECT_EQ(pun_off, 1); // only X=1,Y=1
}

TEST(Cells, Nand3TruthTable) {
  const Cell c = cells::nand3(t70());
  int pun_off = 0;
  for (uint32_t in = 0; in < 8; ++in) {
    if (!c.pun.conducts(in, DeviceType::pmos)) {
      ++pun_off;
      EXPECT_EQ(in, 7u); // all-high is the only PUN-off combo
    }
  }
  EXPECT_EQ(pun_off, 1);
}

TEST(Cells, Nor2TruthTable) {
  const Cell c = cells::nor2(t70());
  int pdn_off = 0;
  for (uint32_t in = 0; in < 4; ++in) {
    EXPECT_NE(c.pdn.conducts(in, DeviceType::nmos),
              c.pun.conducts(in, DeviceType::pmos));
    if (!c.pdn.conducts(in, DeviceType::nmos)) {
      ++pdn_off;
      EXPECT_EQ(in, 0u); // NOR PDN only off when both inputs low
    }
  }
  EXPECT_EQ(pdn_off, 1);
}

TEST(Cells, Sram6tStructure) {
  const Cell c = cells::sram6t(t70());
  EXPECT_FALSE(c.is_gate);
  EXPECT_EQ(c.n_nmos + c.n_pmos, 6);
  ASSERT_EQ(c.states.size(), 2u); // storing 0 / storing 1
  // Symmetric cell: both states leak through the same path set.
  ASSERT_EQ(c.states[0].paths.size(), c.states[1].paths.size());
  EXPECT_EQ(c.states[0].paths.size(), 3u); // pull-down, pull-up, access
}

TEST(Cells, SenseAmpIdleStacked) {
  const Cell c = cells::sense_amp(t70());
  ASSERT_FALSE(c.states.empty());
  bool has_stack = false;
  for (const LeakPath& p : c.states[0].paths) {
    if (p.stack_depth > 1) {
      has_stack = true;
    }
  }
  EXPECT_TRUE(has_stack); // disabled footer stacks the NMOS pair
}

TEST(Cells, GateWidthsPositiveAndScaleWithNode) {
  for (TechNode node : kAllNodes) {
    const TechParams& t = tech_params(node);
    EXPECT_GT(cells::sram6t(t).total_gate_width, 0.0);
    EXPECT_GT(cells::nand2(t).total_gate_width, 0.0);
  }
  EXPECT_LT(cells::sram6t(tech_params(TechNode::nm70)).total_gate_width,
            cells::sram6t(tech_params(TechNode::nm180)).total_gate_width);
}

} // namespace
} // namespace hotleakage
