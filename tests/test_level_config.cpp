// LevelConfig API: the compatibility contract between the flat L1-only
// fields and the explicit per-level hierarchy.
//
// Three guarantees pinned here:
//   1. A levels list that merely restates the flat fields is *still*
//      legacy-shaped: same run path (bit-identical ExperimentResult) and
//      same config hash as the flat form, so journals and perf baselines
//      survive the API redesign.
//   2. validate() rejects contradictory per-level geometries with errors
//      that name the offending field (ExperimentConfig::levels[i]
//      (name).geometry...), not a generic "bad config".
//   3. joint_interval_sweep runs explicit two-controlled-level cells end
//      to end through SweepRunner, in benchmark-major / L1-major /
//      L2-minor grid order, promoting a plain level 1 to controlled.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report_json.h"
#include "harness/sweep.h"

namespace harness {
namespace {

ExperimentConfig quick_config() {
  return ExperimentConfig::make().instructions(100'000).variation(false);
}

/// The flat config's two-level restatement, as an explicit list.
ExperimentConfig explicit_legacy(const ExperimentConfig& flat) {
  ExperimentConfig cfg = flat;
  cfg.levels = flat.legacy_levels();
  return cfg;
}

/// A genuinely hierarchical config: control at both levels.
ExperimentConfig controlled_l2_config(const ExperimentConfig& flat,
                                      uint64_t l2_interval = 65536) {
  ExperimentConfig cfg = flat;
  cfg.levels = flat.legacy_levels();
  cfg.levels[1].control =
      LevelControl{cfg.technique, cfg.policy, l2_interval};
  return cfg;
}

std::string validate_error(const ExperimentConfig& cfg) {
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

void expect_contains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "expected \"" << needle << "\" in:\n" << haystack;
}

// --- shape detection --------------------------------------------------

TEST(LevelConfig, EmptyLevelsIsLegacyShape) {
  EXPECT_TRUE(quick_config().legacy_shape());
}

TEST(LevelConfig, RestatedLevelsStayLegacyShape) {
  EXPECT_TRUE(explicit_legacy(quick_config()).legacy_shape());
}

TEST(LevelConfig, ControlledL2IsNotLegacyShape) {
  EXPECT_FALSE(controlled_l2_config(quick_config()).legacy_shape());
}

TEST(LevelConfig, ResolvedLevelsFallBackToLegacy) {
  const ExperimentConfig flat = quick_config();
  const std::vector<LevelConfig> resolved = flat.resolved_levels();
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved, flat.legacy_levels());
  EXPECT_EQ(resolved[0].name, "l1d");
  EXPECT_EQ(resolved[1].name, "l2");
  ASSERT_TRUE(resolved[0].control.has_value());
  EXPECT_FALSE(resolved[1].control.has_value());
  EXPECT_EQ(resolved[0].control->decay_interval, flat.decay_interval);
  EXPECT_EQ(resolved[1].geometry.hit_latency, flat.l2_latency);
}

TEST(LevelConfig, SetL1DecayIntervalUpdatesBothShapes) {
  ExperimentConfig flat = quick_config();
  flat.set_l1_decay_interval(8192);
  EXPECT_EQ(flat.decay_interval, 8192ull);

  ExperimentConfig expl = explicit_legacy(quick_config());
  expl.set_l1_decay_interval(8192);
  EXPECT_EQ(expl.decay_interval, 8192ull);
  ASSERT_TRUE(expl.levels[0].control.has_value());
  EXPECT_EQ(expl.levels[0].control->decay_interval, 8192ull);
  // Still coherent, so still legacy-shaped at the new interval.
  EXPECT_TRUE(expl.legacy_shape());
}

// --- builder mirroring ------------------------------------------------

TEST(LevelConfig, BuilderMirrorsLevelZeroControlIntoFlatFields) {
  ExperimentConfig base;
  base.l2_latency = 17;
  std::vector<LevelConfig> lv = base.legacy_levels();
  lv[0].control =
      LevelControl{leakctl::TechniqueParams::gated_vss(),
                   leakctl::DecayPolicy::simple, 16384};
  const ExperimentConfig cfg = ExperimentConfig::make()
                                   .instructions(100'000)
                                   .variation(false)
                                   .levels(lv);
  EXPECT_EQ(cfg.technique, leakctl::TechniqueParams::gated_vss());
  EXPECT_EQ(cfg.policy, leakctl::DecayPolicy::simple);
  EXPECT_EQ(cfg.decay_interval, 16384ull);
  EXPECT_EQ(cfg.l2_latency, 17u); // level 1's hit latency mirrored over
  // Mirroring makes the restated list legacy-shaped again.
  EXPECT_TRUE(cfg.legacy_shape());
}

TEST(LevelConfig, BuilderLevelAppendsOneAtATime) {
  const std::vector<LevelConfig> lv = quick_config().legacy_levels();
  const ExperimentConfig cfg = ExperimentConfig::make()
                                   .instructions(100'000)
                                   .variation(false)
                                   .level(lv[0])
                                   .level(lv[1]);
  EXPECT_EQ(cfg.levels.size(), 2u);
  EXPECT_TRUE(cfg.legacy_shape());
}

// --- bit identity and hash identity -----------------------------------

TEST(LevelConfig, RestatedLevelsBitIdenticalToFlat) {
  const workload::BenchmarkProfile prof = workload::profile_by_name("gzip");
  const ExperimentConfig flat = quick_config();
  const ExperimentConfig expl = explicit_legacy(flat);
  clear_baseline_cache();
  const ExperimentResult a = run_experiment(prof, flat);
  clear_baseline_cache();
  const ExperimentResult b = run_experiment(prof, expl);

  // Exact == on doubles: both forms must take the same code path.
  EXPECT_EQ(a.tech_run.cycles, b.tech_run.cycles);
  EXPECT_EQ(a.base_run.cycles, b.base_run.cycles);
  a.control.for_each_field([&](const char* name, unsigned long long va) {
    unsigned long long vb = 0;
    b.control.for_each_field([&](const char* n2, unsigned long long v2) {
      if (std::string(name) == n2) {
        vb = v2;
      }
    });
    EXPECT_EQ(va, vb) << "ControlStats::" << name;
  });
  EXPECT_EQ(a.energy.baseline_leakage_j, b.energy.baseline_leakage_j);
  EXPECT_EQ(a.energy.technique_leakage_j, b.energy.technique_leakage_j);
  EXPECT_EQ(a.energy.extra_dynamic_j, b.energy.extra_dynamic_j);
  EXPECT_EQ(a.energy.net_savings_j, b.energy.net_savings_j);
  EXPECT_EQ(a.energy.net_savings_frac, b.energy.net_savings_frac);
  EXPECT_EQ(a.energy.perf_loss_frac, b.energy.perf_loss_frac);
  ASSERT_EQ(a.hierarchy.levels.size(), b.hierarchy.levels.size());
  for (std::size_t i = 0; i < a.hierarchy.levels.size(); ++i) {
    EXPECT_EQ(a.hierarchy.levels[i].baseline_leakage_j,
              b.hierarchy.levels[i].baseline_leakage_j);
    EXPECT_EQ(a.hierarchy.levels[i].technique_leakage_j,
              b.hierarchy.levels[i].technique_leakage_j);
    EXPECT_EQ(a.hierarchy.levels[i].net_savings_j,
              b.hierarchy.levels[i].net_savings_j);
  }
  EXPECT_EQ(a.hierarchy.total_net_savings_frac,
            b.hierarchy.total_net_savings_frac);
}

TEST(LevelConfig, RestatedLevelsHashIdenticalToFlat) {
  const ExperimentConfig flat = quick_config();
  EXPECT_EQ(config_hash(flat), config_hash(explicit_legacy(flat)));
}

TEST(LevelConfig, HierarchyConfigHashesDifferently) {
  const ExperimentConfig flat = quick_config();
  EXPECT_NE(config_hash(flat), config_hash(controlled_l2_config(flat)));
  // ... and the L2 interval is part of the identity.
  EXPECT_NE(config_hash(controlled_l2_config(flat, 65536)),
            config_hash(controlled_l2_config(flat, 262144)));
}

TEST(LevelConfig, LegacyConfigJsonOmitsLevelsKey) {
  // Schema-3 promise: legacy-shaped configs keep the schema-2 canonical
  // form, which is what keeps their hashes (above) unchanged.
  EXPECT_FALSE(to_json(quick_config()).contains("levels"));
  EXPECT_FALSE(to_json(explicit_legacy(quick_config())).contains("levels"));
  const json::Value v = to_json(controlled_l2_config(quick_config()));
  ASSERT_TRUE(v.contains("levels"));
  EXPECT_EQ(v.at("levels").as_array().size(), 2u);
}

// --- validate(): field-naming rejection -------------------------------

TEST(LevelConfigValidate, RejectsSingleLevelList) {
  ExperimentConfig cfg = quick_config();
  cfg.levels = {cfg.legacy_levels()[0]};
  expect_contains(validate_error(cfg), "at least two levels");
}

TEST(LevelConfigValidate, RejectsLineSizeContradictionNamingBothLevels) {
  ExperimentConfig cfg = explicit_legacy(quick_config());
  cfg.levels[1].geometry.line_bytes = 32;
  const std::string msg = validate_error(cfg);
  expect_contains(msg,
                  "ExperimentConfig::levels[1] (l2).geometry.line_bytes = 32");
  expect_contains(msg, "levels[0].geometry.line_bytes = 64");
}

TEST(LevelConfigValidate, RejectsInnerLevelSmallerThanOuter) {
  ExperimentConfig cfg = explicit_legacy(quick_config());
  cfg.levels[1].geometry.size_bytes = 1024; // smaller than the 64 KB L1
  const std::string msg = validate_error(cfg);
  expect_contains(msg,
                  "ExperimentConfig::levels[1] (l2).geometry.size_bytes = "
                  "1024");
  expect_contains(msg, "smaller");
}

TEST(LevelConfigValidate, RejectsBadGeometryWithLevelPrefix) {
  ExperimentConfig cfg = explicit_legacy(quick_config());
  cfg.levels[0].geometry.assoc = 0;
  expect_contains(validate_error(cfg),
                  "ExperimentConfig::levels[0] (l1d).geometry: ");
}

TEST(LevelConfigValidate, UnnamedLevelErrorsOmitTheParenthetical) {
  ExperimentConfig cfg = explicit_legacy(quick_config());
  cfg.levels[0].name.clear();
  cfg.levels[0].geometry.assoc = 0;
  expect_contains(validate_error(cfg),
                  "ExperimentConfig::levels[0].geometry: ");
}

TEST(LevelConfigValidate, RejectsUnquantizedPerLevelDecayInterval) {
  ExperimentConfig cfg = controlled_l2_config(quick_config());
  cfg.levels[1].control->decay_interval = 6;
  const std::string msg = validate_error(cfg);
  expect_contains(msg, "ExperimentConfig::levels[1] (l2)");
  expect_contains(msg, "control->decay_interval must be a nonzero multiple "
                       "of 4");
}

TEST(LevelConfigValidate, RejectsFullyUncontrolledHierarchy) {
  ExperimentConfig cfg = explicit_legacy(quick_config());
  cfg.levels[0].control.reset();
  expect_contains(validate_error(cfg),
                  "at least one level must carry control");
}

// --- schema-3 hierarchy round trip ------------------------------------

TEST(LevelConfig, HierarchyEnergyJsonRoundTripIsIdentity) {
  ExperimentConfig cfg = controlled_l2_config(quick_config(), 16384);
  cfg.instructions = 60'000;
  clear_baseline_cache();
  const ExperimentResult r =
      run_experiment(workload::profile_by_name("mcf"), cfg);
  ASSERT_EQ(r.hierarchy.levels.size(), 2u);
  EXPECT_TRUE(r.hierarchy.levels[1].controlled);

  // Serialize, print, reparse, deserialize: every field must survive
  // (the writer emits shortest-round-trip doubles).
  const json::Value doc = json::Value::parse(to_json(r.hierarchy).dump());
  const leakctl::HierarchyEnergy back = hierarchy_from_json(doc);
  ASSERT_EQ(back.levels.size(), r.hierarchy.levels.size());
  for (std::size_t i = 0; i < back.levels.size(); ++i) {
    const leakctl::LevelEnergy& want = r.hierarchy.levels[i];
    const leakctl::LevelEnergy& got = back.levels[i];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.controlled, want.controlled);
    EXPECT_EQ(got.baseline_leakage_j, want.baseline_leakage_j);
    EXPECT_EQ(got.technique_leakage_j, want.technique_leakage_j);
    EXPECT_EQ(got.baseline_gate_j, want.baseline_gate_j);
    EXPECT_EQ(got.technique_gate_j, want.technique_gate_j);
    EXPECT_EQ(got.decay_hw_leakage_j, want.decay_hw_leakage_j);
    EXPECT_EQ(got.protection_leakage_j, want.protection_leakage_j);
    EXPECT_EQ(got.protection_dynamic_j, want.protection_dynamic_j);
    EXPECT_EQ(got.net_savings_j, want.net_savings_j);
    EXPECT_EQ(got.induced_misses, want.induced_misses);
    EXPECT_EQ(got.slow_hits, want.slow_hits);
    EXPECT_EQ(got.wakes, want.wakes);
    EXPECT_EQ(got.decays, want.decays);
    EXPECT_EQ(got.decay_writebacks, want.decay_writebacks);
    EXPECT_EQ(got.turnoff_ratio, want.turnoff_ratio);
  }
  EXPECT_EQ(back.extra_dynamic_j, r.hierarchy.extra_dynamic_j);
  EXPECT_EQ(back.total_baseline_leakage_j,
            r.hierarchy.total_baseline_leakage_j);
  EXPECT_EQ(back.total_technique_leakage_j,
            r.hierarchy.total_technique_leakage_j);
  EXPECT_EQ(back.total_gate_leakage_j, r.hierarchy.total_gate_leakage_j);
  EXPECT_EQ(back.total_net_savings_j, r.hierarchy.total_net_savings_j);
  EXPECT_EQ(back.total_net_savings_frac,
            r.hierarchy.total_net_savings_frac);
}

// --- joint sweep through the engine -----------------------------------

TEST(JointIntervalSweep, RunsEndToEndInGridOrder) {
  ExperimentConfig cfg = quick_config();
  cfg.instructions = 50'000;
  SweepOptions opts;
  opts.threads = 2;
  const std::vector<workload::BenchmarkProfile> profiles = {
      workload::profile_by_name("gzip"), workload::profile_by_name("mcf")};
  clear_baseline_cache();
  const std::vector<JointIntervalCell> cells = joint_interval_sweep(
      cfg, {2048, 4096}, {16384, 65536}, profiles, opts);
  ASSERT_EQ(cells.size(), 8u);

  // Benchmark-major, L1-major, L2-minor.
  EXPECT_EQ(cells[0].benchmark, "gzip");
  EXPECT_EQ(cells[0].l1_interval, 2048ull);
  EXPECT_EQ(cells[0].l2_interval, 16384ull);
  EXPECT_EQ(cells[1].l2_interval, 65536ull);
  EXPECT_EQ(cells[2].l1_interval, 4096ull);
  EXPECT_EQ(cells[4].benchmark, "mcf");

  for (const JointIntervalCell& c : cells) {
    SCOPED_TRACE(c.benchmark + " " + std::to_string(c.l1_interval) + "/" +
                 std::to_string(c.l2_interval));
    // Ran through the engine cleanly.
    EXPECT_TRUE(c.result.cell.ok());
    // The cell took the hierarchy path: a plain legacy L2 was promoted to
    // a controlled one carrying the grid's L2 interval.
    EXPECT_FALSE(c.result.config.legacy_shape());
    ASSERT_EQ(c.result.config.levels.size(), 2u);
    ASSERT_TRUE(c.result.config.levels[1].control.has_value());
    EXPECT_EQ(c.result.config.levels[1].control->decay_interval,
              c.l2_interval);
    EXPECT_EQ(c.result.config.decay_interval, c.l1_interval);
    // ... and the rollup priced both levels.
    ASSERT_EQ(c.result.hierarchy.levels.size(), 2u);
    EXPECT_TRUE(c.result.hierarchy.levels[0].controlled);
    EXPECT_TRUE(c.result.hierarchy.levels[1].controlled);
    EXPECT_GT(c.result.hierarchy.levels[1].baseline_leakage_j, 0.0);
    EXPECT_GT(c.result.hierarchy.total_baseline_leakage_j,
              c.result.hierarchy.levels[0].baseline_leakage_j);
  }
}

TEST(JointIntervalSweep, RejectsEmptyGridsAndUncontrolledLevelZero) {
  const ExperimentConfig cfg = quick_config();
  const std::vector<workload::BenchmarkProfile> profiles = {
      workload::profile_by_name("gzip")};
  EXPECT_THROW(joint_interval_sweep(cfg, {}, {4096}, profiles),
               std::invalid_argument);
  EXPECT_THROW(joint_interval_sweep(cfg, {4096}, {}, profiles),
               std::invalid_argument);

  // Control only at the L2: level 0 has no interval for the L1 grid to
  // sweep, so the call must refuse rather than silently promote.
  ExperimentConfig l2_only = explicit_legacy(cfg);
  l2_only.levels[0].control.reset();
  l2_only.levels[1].control =
      LevelControl{cfg.technique, cfg.policy, 65536};
  EXPECT_THROW(joint_interval_sweep(l2_only, {4096}, {65536}, profiles),
               std::invalid_argument);
}

} // namespace
} // namespace harness
