#!/usr/bin/env python3
"""Validate a --json suite report (schema versions 1 through 4).

Usage: check_report_schema.py REPORT.json [REPORT2.json ...]

Stdlib only, so it runs anywhere CI has a python3.  Checks the contract
documented in DESIGN.md: the schema stamp, run metadata, per-series
benchmark rows (net savings, slowdown, config hash), and the metrics
snapshot with its phase timers.  Schema-2 reports additionally carry a
per-row "cell" execution record (status / error taxonomy / attempts /
duration / resumed) and a per-series "cells" rollup whose "complete"
flag distinguishes a partial (fail_fast=false) sweep from a clean one;
both are validated.  Schema-3 rows additionally carry a "hierarchy"
total-leakage section (one entry per cache level with the
baseline/technique/gate energy split and control stats, plus hierarchy
totals), and non-legacy configs serialize their per-level "levels" list;
both are validated too.  Schema-4 rows additionally carry a "tenants"
array — one per-tenant fairness entry (accesses decomposed into
hits / slow hits / induced / true misses, fills, switch-outs, colors,
occupancy and standby residency), empty for single-tenant runs — and
multi-tenant configs serialize a "tenants" config section.  Exits
non-zero naming the first violation.
"""

import json
import re
import sys

HASH_RE = re.compile(r"^0x[0-9a-f]{16}$")
CELL_STATUSES = {"ok", "failed", "timed_out"}
CELL_ERROR_KINDS = {"none", "config_invalid", "trace_io", "sim_invariant",
                    "timeout", "unknown"}


class SchemaError(Exception):
    pass


def require(cond, where, what):
    if not cond:
        raise SchemaError(f"{where}: {what}")


def check_number(obj, key, where):
    require(key in obj, where, f"missing '{key}'")
    require(isinstance(obj[key], (int, float)) and not isinstance(obj[key], bool),
            where, f"'{key}' must be a number, got {type(obj[key]).__name__}")


def check_cell(cell, where):
    require(isinstance(cell, dict), where, "'cell' must be an object")
    require(cell.get("status") in CELL_STATUSES, where,
            f"cell.status must be one of {sorted(CELL_STATUSES)}, "
            f"got {cell.get('status')!r}")
    require(cell.get("error_kind") in CELL_ERROR_KINDS, where,
            f"cell.error_kind must be one of {sorted(CELL_ERROR_KINDS)}, "
            f"got {cell.get('error_kind')!r}")
    require(isinstance(cell.get("error"), str), where,
            "cell.error must be a string")
    check_number(cell, "attempts", where)
    require(cell["attempts"] >= 1, where, "cell.attempts must be >= 1")
    check_number(cell, "duration_s", where)
    require(isinstance(cell.get("resumed"), bool), where,
            "cell.resumed must be a boolean")
    # Lockstep-batch lane count: 0 = scalar path, K >= 2 = a K-lane
    # batched trace pass.  Absent is fine (pre-batching reports).
    if "batch" in cell:
        check_number(cell, "batch", where)
        require(cell["batch"] == int(cell["batch"]) and cell["batch"] >= 0,
                where, "cell.batch must be a non-negative integer")
        require(cell["batch"] != 1, where,
                "cell.batch is a lane count: 0 (scalar) or >= 2 (batched)")
    if cell["status"] == "ok":
        require(cell["error_kind"] == "none", where,
                "an ok cell must have error_kind 'none'")
    else:
        require(cell["error_kind"] != "none", where,
                "a non-ok cell must name its error_kind")


def check_cells_rollup(cells, nrows, where):
    require(isinstance(cells, dict), where, "'cells' must be an object")
    for key in ("total", "ok", "failed", "timed_out", "resumed", "retried"):
        check_number(cells, key, where)
    require(isinstance(cells.get("complete"), bool), where,
            "cells.complete must be a boolean")
    require(cells["total"] == nrows, where,
            f"cells.total is {cells['total']} but the series has "
            f"{nrows} benchmark rows")
    require(cells["ok"] + cells["failed"] + cells["timed_out"]
            == cells["total"], where, "cell status counts must sum to total")
    require(cells["complete"] == (cells["ok"] == cells["total"]), where,
            "cells.complete must equal (ok == total)")


LEVEL_NUMBER_KEYS = ("baseline_leakage_j", "technique_leakage_j",
                     "baseline_gate_j", "technique_gate_j",
                     "decay_hw_leakage_j", "protection_leakage_j",
                     "protection_dynamic_j", "net_savings_j",
                     "induced_misses", "slow_hits", "wakes", "decays",
                     "decay_writebacks", "turnoff_ratio")
HIERARCHY_TOTAL_KEYS = ("extra_dynamic_j", "total_baseline_leakage_j",
                        "total_technique_leakage_j", "total_gate_leakage_j",
                        "total_net_savings_j", "total_net_savings_frac")


def check_hierarchy(hierarchy, where):
    require(isinstance(hierarchy, dict), where,
            "'hierarchy' must be an object")
    levels = hierarchy.get("levels")
    require(isinstance(levels, list) and len(levels) >= 2, where,
            "hierarchy.levels must be an array of >= 2 levels")
    for i, lv in enumerate(levels):
        lw = f"{where}.levels[{i}]"
        require(isinstance(lv, dict), lw, "level must be an object")
        require(isinstance(lv.get("name"), str) and lv["name"], lw,
                "missing level name")
        require(isinstance(lv.get("controlled"), bool), lw,
                "'controlled' must be a boolean")
        for key in LEVEL_NUMBER_KEYS:
            check_number(lv, key, lw)
        require(lv["baseline_leakage_j"] > 0, lw,
                "every level leaks in the baseline")
        if not lv["controlled"]:
            require(lv["decay_hw_leakage_j"] == 0, lw,
                    "a plain level carries no decay hardware")
            require(lv["slow_hits"] == 0 and lv["induced_misses"] == 0, lw,
                    "a plain level has no control events")
    require(any(lv["controlled"] for lv in levels), where,
            "at least one hierarchy level must be controlled")
    for key in HIERARCHY_TOTAL_KEYS:
        check_number(hierarchy, key, where)
    total = sum(lv["baseline_leakage_j"] for lv in levels)
    require(abs(hierarchy["total_baseline_leakage_j"] - total)
            <= 1e-9 * max(total, 1e-30), where,
            "total_baseline_leakage_j must equal the per-level sum")


def check_config_levels(levels, where):
    require(isinstance(levels, list) and len(levels) >= 2, where,
            "config.levels must be an array of >= 2 levels")
    for i, lv in enumerate(levels):
        lw = f"{where}[{i}]"
        require(isinstance(lv, dict), lw, "level must be an object")
        require(isinstance(lv.get("name"), str), lw, "missing level name")
        geom = lv.get("geometry")
        require(isinstance(geom, dict), lw, "missing 'geometry'")
        for key in ("size_bytes", "assoc", "line_bytes", "hit_latency"):
            check_number(geom, key, f"{lw}.geometry")
        if "control" in lv:
            control = lv["control"]
            require(isinstance(control, dict), lw,
                    "'control' must be an object")
            require(isinstance(control.get("technique"), dict),
                    f"{lw}.control", "missing 'technique'")
            require(isinstance(control.get("policy"), str),
                    f"{lw}.control", "missing 'policy'")
            check_number(control, "decay_interval", f"{lw}.control")


TENANT_NUMBER_KEYS = ("tenant", "accesses", "hits", "slow_hits",
                      "induced_misses", "true_misses", "fills",
                      "switch_outs", "colors", "occupancy_line_cycles",
                      "standby_line_cycles")


def check_tenants(tenants, where):
    require(isinstance(tenants, list), where, "'tenants' must be an array")
    for i, ts in enumerate(tenants):
        tw = f"{where}[{i}]"
        require(isinstance(ts, dict), tw, "tenant entry must be an object")
        for key in TENANT_NUMBER_KEYS:
            check_number(ts, key, tw)
        require(ts["tenant"] == i, tw,
                f"tenant entries must be indexed in order, got {ts['tenant']}")
        decomposed = (ts["hits"] + ts["slow_hits"] + ts["induced_misses"]
                      + ts["true_misses"])
        require(ts["accesses"] == decomposed, tw,
                f"accesses ({ts['accesses']}) must decompose into hits + "
                f"slow_hits + induced_misses + true_misses ({decomposed})")


def check_config_tenants(tenants, where):
    require(isinstance(tenants, dict), where,
            "config.tenants must be an object")
    check_number(tenants, "count", where)
    require(tenants["count"] >= 1, where,
            "a serialized tenants section implies count >= 1")
    check_number(tenants, "quantum", where)
    require(tenants["quantum"] >= 1, where, "quantum must be positive")
    require(isinstance(tenants.get("co_benchmarks"), list), where,
            "missing 'co_benchmarks'")


def check_benchmark_row(row, where, schema):
    require(isinstance(row, dict), where, "benchmark row must be an object")
    require(isinstance(row.get("benchmark"), str) and row["benchmark"],
            where, "missing benchmark name")
    if schema >= 2:
        require("cell" in row, where, "schema-2 row is missing 'cell'")
        check_cell(row["cell"], f"{where}.cell")
    if schema >= 3:
        require("hierarchy" in row, where,
                "schema-3 row is missing 'hierarchy'")
        check_hierarchy(row["hierarchy"], f"{where}.hierarchy")
    if schema >= 4:
        require("tenants" in row, where, "schema-4 row is missing 'tenants'")
        check_tenants(row["tenants"], f"{where}.tenants")
    for key in ("net_savings_frac", "perf_loss_frac", "turnoff_ratio"):
        check_number(row, key, where)
    config = row.get("config")
    require(isinstance(config, dict), where, "missing 'config'")
    require(HASH_RE.match(config.get("hash", "")) is not None, where,
            f"config.hash must be 0x + 16 hex digits, got {config.get('hash')!r}")
    if "levels" in config:
        check_config_levels(config["levels"], f"{where}.config.levels")
    if "tenants" in config:
        check_config_tenants(config["tenants"], f"{where}.config.tenants")
    control = row.get("control")
    require(isinstance(control, dict), where, "missing 'control'")
    for key in ("hits", "slow_hits", "induced_misses", "true_misses",
                "faults_injected", "corruptions"):
        check_number(control, key, f"{where}.control")


def check_report(doc, path):
    require(isinstance(doc, dict), path, "top level must be an object")
    schema = doc.get("schema")
    require(schema in (1, 2, 3, 4), path,
            f"schema must be 1, 2, 3 or 4, got {schema!r}")
    require(doc.get("kind") == "suite_report", path,
            f"kind must be 'suite_report', got {doc.get('kind')!r}")
    require(isinstance(doc.get("title"), str) and doc["title"], path,
            "missing title")

    meta = doc.get("metadata")
    require(isinstance(meta, dict), path, "missing 'metadata'")
    require(isinstance(meta.get("git_describe"), str), f"{path}.metadata",
            "missing git_describe")
    check_number(meta, "threads", f"{path}.metadata")
    check_number(meta, "hardware_concurrency", f"{path}.metadata")

    series = doc.get("series")
    require(isinstance(series, list), path, "'series' must be an array")
    for i, s in enumerate(series):
        where = f"{path}.series[{i}]"
        require(isinstance(s, dict), where, "series entry must be an object")
        require(isinstance(s.get("label"), str) and s["label"], where,
                "missing label")
        averages = s.get("averages")
        require(isinstance(averages, dict), where, "missing 'averages'")
        for key in ("net_savings_frac", "perf_loss_frac", "turnoff_ratio"):
            check_number(averages, key, f"{where}.averages")
        benchmarks = s.get("benchmarks")
        require(isinstance(benchmarks, list), where,
                "'benchmarks' must be an array")
        if schema >= 2:
            require("cells" in s, where, "schema-2 series is missing 'cells'")
            check_cells_rollup(s["cells"], len(benchmarks), f"{where}.cells")
        for j, row in enumerate(benchmarks):
            check_benchmark_row(row, f"{where}.benchmarks[{j}]", schema)

    metrics = doc.get("metrics")
    require(isinstance(metrics, dict), path, "missing 'metrics'")
    for section in ("counters", "gauges", "timers"):
        require(isinstance(metrics.get(section), dict), f"{path}.metrics",
                f"missing '{section}'")
    for name, stat in metrics["timers"].items():
        where = f"{path}.metrics.timers[{name}]"
        require(isinstance(stat, dict), where, "timer must be an object")
        check_number(stat, "total_s", where)
        check_number(stat, "count", where)

    # A report produced by an actual run must carry phase timings; an
    # empty-series metadata-only export is exempt.
    if any(s.get("benchmarks") for s in series):
        require("phase.experiment" in metrics["timers"] or
                "phase.simulation" in metrics["timers"],
                f"{path}.metrics.timers",
                "report with results is missing phase timings")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            check_report(doc, path)
        except (OSError, json.JSONDecodeError, SchemaError) as e:
            print(f"schema check FAILED: {e}", file=sys.stderr)
            return 1
        print(f"schema check OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
